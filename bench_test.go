// Benchmarks regenerating every table and figure of the paper, plus the
// engine micro-benchmarks. Each paper benchmark runs a reduced-effort but
// structurally complete version of the experiment (full sweeps with a
// shorter horizon), so `go test -bench=.` both times the harness and
// exercises every code path behind EXPERIMENTS.md.
package repro_test

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/field"
	"repro/internal/petri"
	"repro/internal/sensornode"
	"repro/internal/shard"
	"repro/internal/sweepd"
)

// benchOptions returns reduced-effort sweep options sized for benchmarking.
func benchOptions() experiments.Options {
	opt := experiments.Default()
	opt.Base.SimTime = 200
	opt.Base.Warmup = 20
	opt.Base.Replications = 2
	return opt
}

func BenchmarkTable1Structure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	opt := benchOptions()
	opt.PDTs = []float64{0, 0.5, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	opt := benchOptions()
	opt.PDTs = []float64{0, 0.5, 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErlangAblation(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ErlangAblation(opt, []int{1, 8, 32}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyAblation(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PolicyAblation(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadComparison(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WorkloadComparison(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCTMCCrossCheck(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CTMCCrossCheck(opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLifetime(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Lifetime(opt, []float64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Runner batch benchmarks: the Figure-4 PDT sweep through RunBatch at
// different worker counts, seeding the sequential-vs-parallel perf
// trajectory.

func benchmarkRunBatch(b *testing.B, parallelism int) {
	cfg := repro.PaperConfig()
	cfg.SimTime = 200
	cfg.Warmup = 20
	cfg.Replications = 2
	// Memoization off: the sequential and parallel variants replay the
	// same effective configs (as do b.N ramp-up rounds and -count reruns),
	// and this benchmark must measure evaluation, not cache lookups —
	// BenchmarkRunBatchMemoized covers the cached path.
	runner, err := repro.New(
		repro.WithConfig(cfg),
		repro.WithSeed(1),
		repro.WithParallelism(parallelism),
		repro.WithCache(false),
	)
	if err != nil {
		b.Fatal(err)
	}
	// The Figure-4 x axis: PDT from 0 to 1 in 0.1 steps at PUD = 1 ms.
	scenarios := make([]repro.Scenario, 11)
	for i := range scenarios {
		c := cfg
		c.PDT = 0.1 * float64(i)
		scenarios[i] = repro.Scenario{Config: c}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh per-iteration seed gives every scenario a new result
		// cache key, so the benchmark measures actual evaluation rather
		// than memoized lookups (see BenchmarkRunBatchMemoized for those).
		for j := range scenarios {
			scenarios[j].Config.Seed = uint64(i + 1)
		}
		if _, err := runner.RunAll(ctx, scenarios); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunBatchSequential(b *testing.B) { benchmarkRunBatch(b, 1) }

func BenchmarkRunBatchParallel(b *testing.B) { benchmarkRunBatch(b, runtime.GOMAXPROCS(0)) }

// BenchmarkRunBatchMemoized times the Figure-4 sweep when every grid point
// is already in the result cache — the cost Figure 5 pays after Figure 4
// has run.
func BenchmarkRunBatchMemoized(b *testing.B) {
	cfg := repro.PaperConfig()
	cfg.SimTime = 200
	cfg.Warmup = 20
	cfg.Replications = 2
	runner, err := repro.New(repro.WithConfig(cfg), repro.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	scenarios := make([]repro.Scenario, 11)
	for i := range scenarios {
		c := cfg
		c.PDT = 0.1 * float64(i)
		scenarios[i] = repro.Scenario{Config: c}
	}
	ctx := context.Background()
	if _, err := runner.RunAll(ctx, scenarios); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunAll(ctx, scenarios); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Engine micro-benchmarks

// BenchmarkPetriEngineCPU measures raw EDSPN execution speed on the
// Figure-3 net: one simulated 1000 s day of the paper's workload. The net
// is compiled once outside the loop — the usage pattern of the replication
// and sweep layers, which compile a net once per replication set.
func BenchmarkPetriEngineCPU(b *testing.B) {
	cfg := core.PaperConfig()
	c, err := petri.Compile(core.BuildCPUNet(cfg))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Simulate(petri.SimOptions{Seed: uint64(i), Duration: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPetriCompile measures the one-time Compile step itself.
func BenchmarkPetriCompile(b *testing.B) {
	n := core.BuildCPUNet(core.PaperConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := petri.Compile(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationEstimator measures the event-driven simulator via the
// public estimator API.
func BenchmarkSimulationEstimator(b *testing.B) {
	cfg := core.PaperConfig()
	cfg.SimTime = 1000
	cfg.Warmup = 0
	cfg.Replications = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := (core.Simulation{}).Estimate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarkovEstimator measures the closed-form evaluation (it should
// be orders of magnitude faster than any simulation — the paper's stated
// advantage of analytic models).
func BenchmarkMarkovEstimator(b *testing.B) {
	cfg := core.PaperConfig()
	for i := 0; i < b.N; i++ {
		if _, err := (core.Markov{}).Estimate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCTMCSolveExpNet measures exact reachability + stationary solve
// of the exponentialized CPU net.
func BenchmarkCTMCSolveExpNet(b *testing.B) {
	cfg := core.PaperConfig()
	cfg.PUD = 0.3
	n := core.BuildCPUNetExp(cfg, 40)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := petri.SolveCTMC(n, petri.ReachOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientCPU measures replicated transient analysis of the
// Figure-3 net (experiment X-7).
func BenchmarkTransientCPU(b *testing.B) {
	cfg := core.PaperConfig()
	n := core.BuildCPUNet(cfg)
	for i := 0; i < b.N; i++ {
		if _, err := petri.SimulateTransient(n, petri.TransientOptions{
			Seed: uint64(i), Horizon: 10, Step: 1, Replications: 50,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedNet measures the closed-workload net (experiment X-8),
// compiled once.
func BenchmarkClosedNet(b *testing.B) {
	cfg := core.PaperConfig()
	c, err := petri.Compile(core.BuildClosedCPUNet(cfg, 3, 1.0))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Simulate(petri.SimOptions{Seed: uint64(i), Duration: 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkLifetime measures the X-9 topology analysis.
func BenchmarkNetworkLifetime(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NetworkLifetime(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldSimulate measures the event-driven field simulator on a
// 100-node 4-ary tree: 100 compiled nets under one scheduler, every
// delivered packet relayed hop by hop to the sink. The topology is built
// once outside the loop — the usage pattern of the field estimator, which
// reuses one placed node set across scenarios.
func BenchmarkFieldSimulate(b *testing.B) {
	nodes := field.TreeTopology(100, 4, 0.05, 10)
	cfg := field.DefaultConfig(nodes)
	cfg.Horizon = 50
	cfg.Warmup = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := field.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldSimulate1000 scales the field simulator to a 1000-node
// 4-ary tree over a shorter horizon: same per-event work, 10x the sessions
// under one global scheduler, so it regresses on anything superlinear in
// node count (scheduler merging, per-session bookkeeping) that the 100-node
// benchmark would hide.
func BenchmarkFieldSimulate1000(b *testing.B) {
	nodes := field.TreeTopology(1000, 4, 0.05, 10)
	cfg := field.DefaultConfig(nodes)
	cfg.Horizon = 10
	cfg.Warmup = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := field.Simulate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFieldSimulateDeath measures the field simulator's depletion
// path: the same 100-node 4-ary tree as BenchmarkFieldSimulate but on
// batteries starved so nodes start dying mid-run — the run prices death
// scheduling, session teardown at the crossing, subtree rerouting and the
// orphaned-traffic bookkeeping on top of the healthy-field baseline.
func BenchmarkFieldSimulateDeath(b *testing.B) {
	nodes := field.TreeTopology(100, 4, 0.05, 10)
	cfg := field.DefaultConfig(nodes)
	cfg.Horizon = 50
	cfg.Warmup = 5
	// ~2 J at 3 V: the busiest nodes cross zero around the middle of the
	// run, so a healthy prefix and a decaying suffix are both exercised.
	cfg.Battery = energy.Battery{CapacitymAh: 0.19, Volts: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := field.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Deaths) == 0 {
			b.Fatal("death benchmark ran without deaths")
		}
	}
}

// BenchmarkSensorNode measures the composite CPU+radio net.
func BenchmarkSensorNode(b *testing.B) {
	cfg := sensornode.DefaultConfig()
	cfg.CPU.SimTime = 500
	cfg.CPU.Warmup = 0
	for i := 0; i < b.N; i++ {
		cfg.CPU.Seed = uint64(i)
		if _, err := sensornode.Estimate(cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeSweepLocal measures the sweep service's orchestration
// overhead: an in-process coordinator and one worker, submitting and
// completing a whole Figure 5 sweep per iteration over loopback HTTP. The
// shared result cache is warmed before the timer, so every iteration's
// scenarios are cache hits and the protocol — submit, lease, heartbeat
// bookkeeping, result submission, merge, status polling — dominates, not
// the simulations.
func BenchmarkServeSweepLocal(b *testing.B) {
	coord := sweepd.NewCoordinator(sweepd.Options{DefaultPartitions: 4})
	srv := httptest.NewServer(sweepd.Handler(coord))
	defer srv.Close()

	cfg := repro.PaperConfig()
	cfg.SimTime = 30
	cfg.Warmup = 3
	cfg.Replications = 1
	spec := shard.RunnerSpec{Base: cfg, Seed: cfg.Seed, Methods: []string{"markov"}, DeriveSeeds: true}
	scenarios := make([]core.Scenario, 12)
	for i := range scenarios {
		c := cfg
		c.PDT = 0.1 * float64(i)
		scenarios[i] = core.Scenario{Config: c}
	}
	manifest, err := shard.NewManifest("bench", spec, scenarios, 1)
	if err != nil {
		b.Fatal(err)
	}
	client, err := sweepd.NewClient(srv.URL, srv.Client())
	if err != nil {
		b.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- sweepd.Work(ctx, sweepd.WorkerOptions{
			Coordinator: srv.URL,
			Name:        "bench",
			Parallelism: 2,
			Client:      srv.Client(),
			Backoff:     sweepd.Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond, Factor: 2},
		})
	}()
	runSweep := func() {
		id, err := client.Submit(sweepd.SubmitRequest{Manifest: manifest})
		if err != nil {
			b.Fatal(err)
		}
		for {
			st, err := client.SweepStatus(id)
			if err != nil {
				b.Fatal(err)
			}
			if st.State == sweepd.StateDone {
				return
			}
			if st.State == sweepd.StateFailed {
				b.Fatalf("sweep failed: %s", st.Error)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	runSweep() // warm the shared result cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSweep()
	}
	b.StopTimer()
	coord.Drain()
	cancel()
	<-workerDone
}
