// End-to-end tests of the three command-line tools, exercised exactly the
// way a user would run them.
package repro_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// runCLI executes `go run ./cmd/<tool> args...` and returns stdout.
func runCLI(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	cmd.Dir = "."
	out, err := cmd.Output()
	if err != nil {
		stderr := ""
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = string(ee.Stderr)
		}
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, stderr)
	}
	return string(out)
}

// runCLIExpectError executes a tool and asserts a non-zero exit.
func runCLIExpectError(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/" + tool}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", tool, args, out)
	}
	return string(out)
}

func TestWsnenergyTable3(t *testing.T) {
	out := runCLI(t, "wsnenergy", "-experiment", "table3")
	for _, want := range []string{"PXA271", "17.000", "192.442"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table3 output missing %q:\n%s", want, out)
		}
	}
}

func TestWsnenergyTable4ReducedCSV(t *testing.T) {
	out := runCLI(t, "wsnenergy", "-experiment", "table4",
		"-simtime", "100", "-reps", "2", "-format", "csv")
	if !strings.Contains(out, "Power Up Delay (sec)") {
		t.Fatalf("table4 CSV missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 PUD rows
		t.Fatalf("table4 CSV has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestWsnenergyUnknownExperiment(t *testing.T) {
	out := runCLIExpectError(t, "wsnenergy", "-experiment", "nope")
	if !strings.Contains(out, "unknown experiment") {
		t.Fatalf("missing error message:\n%s", out)
	}
}

func TestWsnenergyRejectsUnstableConfig(t *testing.T) {
	out := runCLIExpectError(t, "wsnenergy", "-lambda", "20", "-mu", "10", "-experiment", "table2")
	if !strings.Contains(out, "unstable") {
		t.Fatalf("missing stability error:\n%s", out)
	}
}

func TestPetrisimInvariants(t *testing.T) {
	out := runCLI(t, "petrisim", "-paper", "-invariants")
	for _, want := range []string{"Stand_By", "Power_Up", "CPU_ON", "= 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("invariants output missing %q:\n%s", want, out)
		}
	}
}

func TestPetrisimDumpAndReload(t *testing.T) {
	dump := runCLI(t, "petrisim", "-paper", "-dump", "-pdt", "0.25")
	dir := t.TempDir()
	path := filepath.Join(dir, "cpu.json")
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "petrisim", "-net", path, "-time", "200", "-reps", "2")
	for _, want := range []string{"CPU_Buffer", "Transition throughput", "SR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("simulation output missing %q:\n%s", want, out)
		}
	}
}

func TestPetrisimDOT(t *testing.T) {
	out := runCLI(t, "petrisim", "-paper", "-dot")
	if !strings.HasPrefix(out, "digraph") || !strings.Contains(out, "odot") {
		t.Fatalf("DOT output malformed:\n%.200s", out)
	}
}

func TestPetrisimSolveRejectsDSPN(t *testing.T) {
	// The paper net has deterministic transitions; exact CTMC must refuse.
	out := runCLIExpectError(t, "petrisim", "-paper", "-solve")
	if !strings.Contains(out, "non-exponential") {
		t.Fatalf("missing ErrNotMarkovian message:\n%s", out)
	}
}

func TestSweepCSV(t *testing.T) {
	out := runCLI(t, "sweep",
		"-pdts", "0,0.5", "-puds", "0.001", "-methods", "markov,erlang4",
		"-simtime", "100", "-reps", "1")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header + 2 PDTs x 1 PUD x 2 methods.
	if len(lines) != 5 {
		t.Fatalf("sweep produced %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "method,pdt,pud") {
		t.Fatalf("sweep header wrong: %s", lines[0])
	}
	if !strings.Contains(out, "ErlangMarkov(K=4)") {
		t.Fatalf("sweep missing erlang rows:\n%s", out)
	}
}

func TestSweepRejectsBadRange(t *testing.T) {
	out := runCLIExpectError(t, "sweep", "-pdts", "1:0:0.1")
	if !strings.Contains(out, "invalid range") {
		t.Fatalf("missing range error:\n%s", out)
	}
}

func TestSweepRejectsUnknownMethod(t *testing.T) {
	out := runCLIExpectError(t, "sweep", "-methods", "quantum")
	if !strings.Contains(out, "unknown method") {
		t.Fatalf("missing method error:\n%s", out)
	}
}
