// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so CI can persist benchmark results (ns/op, B/op, allocs/op) as
// an artifact and the performance trajectory of the simulation engine stays
// machine-readable across PRs:
//
//	go test -run '^$' -bench 'PetriEngine|RunBatch' -benchmem ./... | benchjson > BENCH.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored. When a benchmark appears several times (-count > 1), every run
// is kept; consumers aggregate as they see fit.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line. Pkg is the most recent "pkg:" header seen
// before the line, so results keep their provenance when several `go test`
// streams are concatenated.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func main() {
	doc := Document{Context: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Pkg: pkg, Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				if f, err := strconv.ParseFloat(val, 64); err == nil {
					r.NsPerOp = f
					ok = true
				}
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = &v
				}
			}
		}
		if ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
