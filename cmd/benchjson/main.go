// Command benchjson converts `go test -bench` output on stdin into a JSON
// document, so CI can persist benchmark results (ns/op, B/op, allocs/op) as
// an artifact and the performance trajectory of the simulation engine stays
// machine-readable across PRs:
//
//	go test -run '^$' -bench 'PetriEngine|RunBatch' -benchmem ./... | benchjson > BENCH.json
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// ignored. When a benchmark appears several times (-count > 1), every run
// is kept; consumers aggregate as they see fit.
//
// With -compare, benchjson additionally gates the parsed results against a
// committed snapshot and exits non-zero on regression, which is how CI
// keeps the engine's perf trajectory monotone:
//
//	go test -run '^$' -bench ... -count=3 . | benchjson \
//	    -compare BENCH_PR3.json -threshold 0.25 \
//	    -match 'BenchmarkPetriEngineCPU$|BenchmarkRunBatch' > BENCH_NEW.json
//
// Comparison aggregates repeated runs by their minimum ns/op (the standard
// noise floor), strips the -GOMAXPROCS name suffix so snapshots transfer
// between machines with different core counts, and fails if any gated
// benchmark got more than threshold slower — or vanished from the new run,
// so a rename cannot silently disable the gate. Before the gate verdict it
// prints a %Δ table covering every benchmark in either document — gated or
// not — so CI logs carry the full perf trajectory even on green runs.
//
// Gated benchmarks that were (near-)allocation-free in the snapshot — best
// allocs/op at most 100 — are additionally gated on allocs/op with zero
// tolerance: allocation counts are deterministic, so any increase is a real
// regression of the engine's allocation-free promise, not machine noise.
// Dropping -benchmem for such a benchmark fails the gate too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Pkg is the most recent "pkg:" header seen
// before the line, so results keep their provenance when several `go test`
// streams are concatenated.
type Result struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  *int64  `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64  `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON shape.
type Document struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

// parseBench reads `go test -bench` text and collects benchmark results.
func parseBench(r io.Reader) (Document, error) {
	doc := Document{Context: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			_, v, _ := strings.Cut(line, ":")
			pkg = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			doc.Context[k] = strings.TrimSpace(v)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Pkg: pkg, Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val := fields[i]
			switch fields[i+1] {
			case "ns/op":
				if f, err := strconv.ParseFloat(val, 64); err == nil {
					r.NsPerOp = f
					ok = true
				}
			case "B/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.BytesPerOp = &v
				}
			case "allocs/op":
				if v, err := strconv.ParseInt(val, 10, 64); err == nil {
					r.AllocsPerOp = &v
				}
			}
		}
		if ok {
			doc.Results = append(doc.Results, r)
		}
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	return doc, nil
}

// gomaxprocsSuffix matches the "-8" parallelism suffix `go test` appends to
// benchmark names; stripping it lets snapshots from machines with
// different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalizeName(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// bestNs aggregates a document into the minimum ns/op per normalized
// benchmark name — repeated -count runs collapse to their noise floor.
func bestNs(doc Document) map[string]float64 {
	best := map[string]float64{}
	for _, r := range doc.Results {
		name := normalizeName(r.Name)
		if cur, ok := best[name]; !ok || r.NsPerOp < cur {
			best[name] = r.NsPerOp
		}
	}
	return best
}

// allocGateCeiling is the allocs/op level up to which a benchmark counts as
// "(near-)allocation-free" and gets the strict alloc gate: the engine's
// promise for those is a constant handful of result-object allocations, so
// ANY increase is a regression, not noise — alloc counts are deterministic,
// unlike ns/op. Benchmarks above the ceiling (whole-pipeline sweeps) are
// only gated on time.
const allocGateCeiling = 100

// bestAllocs aggregates the minimum allocs/op per normalized benchmark
// name, for the runs that reported them (-benchmem).
func bestAllocs(doc Document) map[string]int64 {
	best := map[string]int64{}
	for _, r := range doc.Results {
		if r.AllocsPerOp == nil {
			continue
		}
		name := normalizeName(r.Name)
		if cur, ok := best[name]; !ok || *r.AllocsPerOp < cur {
			best[name] = *r.AllocsPerOp
		}
	}
	return best
}

// deltaTable renders the full per-benchmark comparison against the
// snapshot — every normalized name in either document, not just the gated
// ones — so CI logs show the whole perf trajectory even when the gate
// passes. Benchmarks absent from the snapshot are marked "new", snapshot
// benchmarks absent from the fresh run "gone"; allocs/op deltas are shown
// when both sides reported them.
func deltaTable(snapshot, fresh Document) []string {
	oldBest, newBest := bestNs(snapshot), bestNs(fresh)
	oldAllocs, newAllocs := bestAllocs(snapshot), bestAllocs(fresh)
	seen := map[string]bool{}
	names := make([]string, 0, len(oldBest)+len(newBest))
	for name := range oldBest {
		seen[name] = true
		names = append(names, name)
	}
	for name := range newBest {
		if !seen[name] {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	width := 0
	for _, name := range names {
		if len(name) > width {
			width = len(name)
		}
	}
	table := make([]string, 0, len(names))
	for _, name := range names {
		o, hasOld := oldBest[name]
		n, hasNew := newBest[name]
		var line string
		switch {
		case !hasOld:
			line = fmt.Sprintf("%-*s  %12s  %12.0f ns/op       new", width, name, "-", n)
		case !hasNew:
			line = fmt.Sprintf("%-*s  %12.0f  %12s ns/op      gone", width, name, o, "-")
		default:
			line = fmt.Sprintf("%-*s  %12.0f  %12.0f ns/op  %+7.1f%%", width, name, o, n, (n/o-1)*100)
			if oa, ok := oldAllocs[name]; ok {
				if na, ok := newAllocs[name]; ok && na != oa {
					line += fmt.Sprintf("  (allocs %d -> %d)", oa, na)
				}
			}
		}
		table = append(table, line)
	}
	return table
}

// compareDocs gates fresh against the snapshot: benchmarks whose
// normalized name matches the pattern fail the gate when their best ns/op
// regressed by more than threshold (fractional, e.g. 0.25 = 25%), or when
// they exist in the snapshot but not in the fresh run. Gated benchmarks
// that were (near-)allocation-free in the snapshot (best allocs/op at most
// allocGateCeiling) are additionally held to "no increase at all" on
// allocs/op — losing -benchmem data for such a benchmark also fails, so the
// alloc gate cannot be disabled silently. The returned report has one line
// per gated quantity; failed tells the caller to exit non-zero.
func compareDocs(snapshot, fresh Document, threshold float64, match *regexp.Regexp) (report []string, failed bool) {
	oldBest, newBest := bestNs(snapshot), bestNs(fresh)
	oldAllocs, newAllocs := bestAllocs(snapshot), bestAllocs(fresh)
	names := make([]string, 0, len(oldBest))
	for name := range oldBest {
		if match.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		o := oldBest[name]
		n, ok := newBest[name]
		if !ok {
			report = append(report, fmt.Sprintf("FAIL %s: in snapshot (%.0f ns/op) but missing from the new run", name, o))
			failed = true
			continue
		}
		ratio := n / o
		verdict := "ok"
		if n > o*(1+threshold) {
			verdict = "FAIL"
			failed = true
		}
		report = append(report, fmt.Sprintf("%s %s: %.0f -> %.0f ns/op (%+.1f%%, threshold +%.0f%%)",
			verdict, name, o, n, (ratio-1)*100, threshold*100))

		oa, hasOld := oldAllocs[name]
		if !hasOld || oa > allocGateCeiling {
			continue
		}
		na, hasNew := newAllocs[name]
		switch {
		case !hasNew:
			report = append(report, fmt.Sprintf("FAIL %s: snapshot has %d allocs/op but the new run reports none (run with -benchmem)", name, oa))
			failed = true
		case na > oa:
			report = append(report, fmt.Sprintf("FAIL %s: %d -> %d allocs/op (near-0-alloc benchmarks may not regress at all)", name, oa, na))
			failed = true
		default:
			report = append(report, fmt.Sprintf("ok %s: %d -> %d allocs/op", name, oa, na))
		}
	}
	if len(names) == 0 {
		report = append(report, fmt.Sprintf("FAIL no benchmark in the snapshot matches %q — nothing gated", match))
		failed = true
	}
	return report, failed
}

func main() {
	var (
		compare   = flag.String("compare", "", "path to a snapshot JSON; gate the new results against it and exit 1 on regression")
		threshold = flag.Float64("threshold", 0.25, "allowed fractional ns/op regression before the gate fails (with -compare)")
		match     = flag.String("match", ".", "regexp of (suffix-stripped) benchmark names the gate applies to (with -compare)")
	)
	flag.Parse()

	doc, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *compare == "" {
		return
	}
	matchRe, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -match: %v\n", err)
		os.Exit(1)
	}
	raw, err := os.ReadFile(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var old Document
	if err := json.Unmarshal(raw, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *compare, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmark deltas vs %s (best-of ns/op):\n", *compare)
	for _, line := range deltaTable(old, doc) {
		fmt.Fprintln(os.Stderr, line)
	}
	report, failed := compareDocs(old, doc, *threshold, matchRe)
	for _, line := range report {
		fmt.Fprintln(os.Stderr, line)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchjson: benchmark regression vs %s\n", *compare)
		os.Exit(1)
	}
}
