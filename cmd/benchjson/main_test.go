package main

import (
	"regexp"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro
cpu: test-cpu
BenchmarkPetriEngineCPU-8   	     100	    100000 ns/op	      21 B/op	       3 allocs/op
BenchmarkPetriEngineCPU-8   	     100	     98000 ns/op	      21 B/op	       3 allocs/op
BenchmarkRunBatchParallel-8 	      10	   5000000 ns/op
PASS
ok  	repro	1.0s
`

func parsed(t *testing.T, text string) Document {
	t.Helper()
	doc, err := parseBench(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseBench(t *testing.T) {
	doc := parsed(t, benchText)
	if len(doc.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Results))
	}
	if doc.Context["cpu"] != "test-cpu" || doc.Context["goos"] != "linux" {
		t.Fatalf("context not captured: %v", doc.Context)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkPetriEngineCPU-8" || r.Pkg != "repro" || r.NsPerOp != 100000 {
		t.Fatalf("first result wrong: %+v", r)
	}
	if r.AllocsPerOp == nil || *r.AllocsPerOp != 3 {
		t.Fatalf("allocs not captured: %+v", r)
	}
}

func TestBestNsAggregatesMinAndStripsSuffix(t *testing.T) {
	best := bestNs(parsed(t, benchText))
	if got := best["BenchmarkPetriEngineCPU"]; got != 98000 {
		t.Fatalf("best ns = %v, want the 98000 minimum under the suffix-stripped name", got)
	}
	if _, ok := best["BenchmarkPetriEngineCPU-8"]; ok {
		t.Fatal("suffixed name leaked into the aggregate")
	}
}

// gate runs compareDocs with the CI gate's match pattern.
func gate(t *testing.T, snapshot, fresh string) (report []string, failed bool) {
	t.Helper()
	match := regexp.MustCompile(`BenchmarkPetriEngineCPU$|BenchmarkRunBatch`)
	return compareDocs(parsed(t, snapshot), parsed(t, fresh), 0.25, match)
}

func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	// 100000 -> 130000 ns/op is a 30% regression: over the 25% threshold.
	slower := strings.ReplaceAll(benchText, "    100000 ns/op", "    130000 ns/op")
	slower = strings.ReplaceAll(slower, "     98000 ns/op", "    130000 ns/op")
	report, failed := gate(t, benchText, slower)
	if !failed {
		t.Fatalf("30%% regression passed the 25%% gate:\n%s", strings.Join(report, "\n"))
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "FAIL BenchmarkPetriEngineCPU") {
		t.Fatalf("report does not name the regressed benchmark:\n%s", joined)
	}
}

func TestCompareAllowsRegressionUnderThreshold(t *testing.T) {
	// 98000 -> 120000 best-of ns/op is ~22%: inside the 25% allowance.
	slightly := strings.ReplaceAll(benchText, "    100000 ns/op", "    121000 ns/op")
	slightly = strings.ReplaceAll(slightly, "     98000 ns/op", "    120000 ns/op")
	if report, failed := gate(t, benchText, slightly); failed {
		t.Fatalf("22%% regression tripped the 25%% gate:\n%s", strings.Join(report, "\n"))
	}
}

func TestComparePassesOnIdenticalAndImprovedRuns(t *testing.T) {
	if report, failed := gate(t, benchText, benchText); failed {
		t.Fatalf("identical runs failed the gate:\n%s", strings.Join(report, "\n"))
	}
	faster := strings.ReplaceAll(benchText, "   5000000 ns/op", "   2000000 ns/op")
	if report, failed := gate(t, benchText, faster); failed {
		t.Fatalf("improvement failed the gate:\n%s", strings.Join(report, "\n"))
	}
}

func TestCompareFailsWhenGatedBenchmarkDisappears(t *testing.T) {
	// Dropping BenchmarkRunBatchParallel must fail: a rename or deleted
	// benchmark silently disabling the gate is itself a regression.
	var kept []string
	for _, line := range strings.Split(benchText, "\n") {
		if !strings.Contains(line, "RunBatch") {
			kept = append(kept, line)
		}
	}
	report, failed := gate(t, benchText, strings.Join(kept, "\n"))
	if !failed {
		t.Fatal("missing gated benchmark passed the gate")
	}
	if !strings.Contains(strings.Join(report, "\n"), "missing from the new run") {
		t.Fatalf("report does not explain the missing benchmark:\n%s", strings.Join(report, "\n"))
	}
}

func TestCompareFailsOnSyntheticAllocRegression(t *testing.T) {
	// 3 -> 4 allocs/op on a near-0-alloc benchmark: the ns/op is unchanged
	// and far inside the threshold, but the alloc gate has zero tolerance.
	leaky := strings.ReplaceAll(benchText, "3 allocs/op", "4 allocs/op")
	report, failed := gate(t, benchText, leaky)
	if !failed {
		t.Fatalf("alloc regression passed the gate:\n%s", strings.Join(report, "\n"))
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "3 -> 4 allocs/op") {
		t.Fatalf("report does not show the alloc regression:\n%s", joined)
	}
}

func TestCompareAllowsAllocImprovementAndEquality(t *testing.T) {
	if report, failed := gate(t, benchText, benchText); failed {
		t.Fatalf("identical allocs failed the gate:\n%s", strings.Join(report, "\n"))
	}
	leaner := strings.ReplaceAll(benchText, "3 allocs/op", "2 allocs/op")
	if report, failed := gate(t, benchText, leaner); failed {
		t.Fatalf("alloc improvement failed the gate:\n%s", strings.Join(report, "\n"))
	}
}

func TestCompareFailsWhenAllocDataDisappears(t *testing.T) {
	// Dropping -benchmem would silently disable the alloc gate; treat the
	// missing data as a failure.
	var kept []string
	for _, line := range strings.Split(benchText, "\n") {
		if strings.Contains(line, "PetriEngineCPU") {
			line = strings.Split(line, " ns/op")[0] + " ns/op"
		}
		kept = append(kept, line)
	}
	report, failed := gate(t, benchText, strings.Join(kept, "\n"))
	if !failed {
		t.Fatal("missing alloc data passed the gate")
	}
	if !strings.Contains(strings.Join(report, "\n"), "-benchmem") {
		t.Fatalf("report does not explain the missing alloc data:\n%s", strings.Join(report, "\n"))
	}
}

func TestCompareDoesNotAllocGateHighAllocBenchmarks(t *testing.T) {
	// A benchmark far above the near-0-alloc ceiling only gates on time:
	// alloc noise from pipeline-level benchmarks must not fail CI.
	base := strings.ReplaceAll(benchText, "      21 B/op	       3 allocs/op", "  131072 B/op	    4000 allocs/op")
	worse := strings.ReplaceAll(base, "4000 allocs/op", "4100 allocs/op")
	if report, failed := gate(t, base, worse); failed {
		t.Fatalf("alloc-heavy benchmark tripped the zero-tolerance gate:\n%s", strings.Join(report, "\n"))
	}
}

func TestCompareFailsWhenPatternMatchesNothing(t *testing.T) {
	match := regexp.MustCompile(`BenchmarkDoesNotExist`)
	_, failed := compareDocs(parsed(t, benchText), parsed(t, benchText), 0.25, match)
	if !failed {
		t.Fatal("empty gate set passed — the gate would be a no-op")
	}
}

func TestDeltaTableCoversAllBenchmarks(t *testing.T) {
	// The fresh run improves the engine benchmark (ungated names included),
	// gains one benchmark and loses another; the table must show all of
	// them even though the gate only watches a subset.
	fresh := strings.ReplaceAll(benchText, "     98000 ns/op", "     49000 ns/op")
	fresh = strings.ReplaceAll(fresh, "BenchmarkRunBatchParallel-8 	      10	   5000000 ns/op",
		"BenchmarkFreshOnly-8 	      10	   5000000 ns/op")
	table := deltaTable(parsed(t, benchText), parsed(t, fresh))
	if len(table) != 3 {
		t.Fatalf("table rows = %d, want 3:\n%s", len(table), strings.Join(table, "\n"))
	}
	joined := strings.Join(table, "\n")
	for _, want := range []string{
		"BenchmarkPetriEngineCPU", "-50.0%", // 98000 -> 49000 best-of
		"BenchmarkFreshOnly", "new",
		"BenchmarkRunBatchParallel", "gone",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("table missing %q:\n%s", want, joined)
		}
	}
}

func TestDeltaTableShowsAllocDrift(t *testing.T) {
	leaky := strings.ReplaceAll(benchText, "3 allocs/op", "5 allocs/op")
	joined := strings.Join(deltaTable(parsed(t, benchText), parsed(t, leaky)), "\n")
	if !strings.Contains(joined, "allocs 3 -> 5") {
		t.Fatalf("table does not show the alloc drift:\n%s", joined)
	}
	same := strings.Join(deltaTable(parsed(t, benchText), parsed(t, benchText)), "\n")
	if strings.Contains(same, "allocs") {
		t.Fatalf("unchanged allocs should not clutter the table:\n%s", same)
	}
}
