// Command petrisim is a generic stochastic Petri-net tool in the spirit of
// TimeNet: it loads a net from JSON, and simulates it, solves it exactly as
// a CTMC (when all timed transitions are exponential), analyzes its
// invariants, or renders it to Graphviz DOT.
//
// Usage:
//
//	petrisim -net cpu.json -time 1000 -reps 10        # simulate
//	petrisim -net cpu.json -solve                     # exact CTMC analysis
//	petrisim -net cpu.json -invariants                # P/T-invariants
//	petrisim -net cpu.json -dot > cpu.dot             # visualization
//	petrisim -paper -dump > cpu.json                  # emit the Figure-3 net
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/petri"
	"repro/internal/report"
)

func main() {
	var (
		netPath    = flag.String("net", "", "path to a net in JSON format")
		paper      = flag.Bool("paper", false, "use the paper's Figure-3 CPU net instead of -net")
		dump       = flag.Bool("dump", false, "print the net as JSON and exit")
		dot        = flag.Bool("dot", false, "print the net as Graphviz DOT and exit")
		invariants = flag.Bool("invariants", false, "print P- and T-invariants and exit")
		solve      = flag.Bool("solve", false, "solve exactly as a CTMC (exponential nets only)")
		transient  = flag.Bool("transient", false, "transient analysis: expected tokens on a time grid")
		step       = flag.Float64("step", 0, "transient grid step (default time/20)")
		simTime    = flag.Float64("time", 1000, "simulated duration (s)")
		warmup     = flag.Float64("warmup", 0, "warmup before measurement (s)")
		reps       = flag.Int("reps", 1, "independent replications")
		seed       = flag.Uint64("seed", 1, "random seed")
		lambda     = flag.Float64("lambda", 1, "arrival rate for -paper")
		mu         = flag.Float64("mu", 10, "service rate for -paper")
		pdt        = flag.Float64("pdt", 0.5, "power down threshold for -paper")
		pud        = flag.Float64("pud", 0.001, "power up delay for -paper")
	)
	flag.Parse()

	var n *petri.Net
	switch {
	case *paper:
		cfg := repro.PaperConfig()
		cfg.Lambda, cfg.Mu, cfg.PDT, cfg.PUD = *lambda, *mu, *pdt, *pud
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		n = repro.BuildCPUNet(cfg)
	case *netPath != "":
		data, err := os.ReadFile(*netPath)
		if err != nil {
			fatal(err)
		}
		n, err = petri.UnmarshalJSON(data)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("provide -net FILE or -paper (see -help)"))
	}

	switch {
	case *dump:
		data, err := petri.MarshalJSON(n)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case *dot:
		fmt.Print(petri.DOT(n))
	case *invariants:
		printInvariants(n)
	case *solve:
		solveCTMC(n)
	case *transient:
		gridStep := *step
		if gridStep <= 0 {
			gridStep = *simTime / 20
		}
		transientAnalysis(n, *seed, *simTime, gridStep, *reps)
	default:
		simulate(n, petri.SimOptions{Seed: *seed, Warmup: *warmup, Duration: *simTime}, *reps)
	}
}

func transientAnalysis(n *petri.Net, seed uint64, horizon, step float64, reps int) {
	if reps < 10 {
		reps = 200 // transient estimation needs replications, not duration
	}
	res, err := petri.SimulateTransient(n, petri.TransientOptions{
		Seed: seed, Horizon: horizon, Step: step, Replications: reps,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Transient analysis of %q: %d replications, grid step %g s\n\n", n.Name, res.Replications, step)
	cols := []string{"t (s)"}
	for _, p := range n.Places {
		cols = append(cols, p.Name)
	}
	t := report.NewTable("E[tokens] over time", cols...)
	for i, tm := range res.Times {
		row := []string{report.F(tm, 3)}
		for p := range n.Places {
			row = append(row, report.F(res.PlaceMean[p][i], 4))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.ASCII())
}

func printInvariants(n *petri.Net) {
	pinvs, err := petri.PInvariants(n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("P-invariants of %q (token-weighted place sums conserved by every firing):\n", n.Name)
	if len(pinvs) == 0 {
		fmt.Println("  (none)")
	}
	m0 := n.InitialMarking()
	for _, y := range pinvs {
		first := true
		fmt.Print("  ")
		for p, w := range y {
			if w == 0 {
				continue
			}
			if !first {
				fmt.Print(" + ")
			}
			first = false
			if w != 1 {
				fmt.Printf("%d*", w)
			}
			fmt.Print(n.Places[p].Name)
		}
		fmt.Printf(" = %d\n", petri.InvariantValue(m0, y))
	}
	tinvs, err := petri.TInvariants(n)
	if err != nil {
		fatal(err)
	}
	fmt.Println("T-invariants (firing-count vectors that restore the marking):")
	if len(tinvs) == 0 {
		fmt.Println("  (none)")
	}
	for _, x := range tinvs {
		first := true
		fmt.Print("  ")
		for ti, c := range x {
			if c == 0 {
				continue
			}
			if !first {
				fmt.Print(" + ")
			}
			first = false
			if c != 1 {
				fmt.Printf("%d*", c)
			}
			fmt.Print(n.Transitions[ti].Name)
		}
		fmt.Println()
	}
}

func solveCTMC(n *petri.Net) {
	res, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Exact CTMC solution of %q: %d tangible markings\n\n", n.Name, len(res.Markings))
	t := report.NewTable("Stationary place statistics", "Place", "E[tokens]", "P(non-empty)")
	for p, place := range n.Places {
		t.AddRow(place.Name, report.F(res.PlaceAvg[p], 6), report.F(res.PlaceNonEmpty[p], 6))
	}
	fmt.Print(t.ASCII())
	fmt.Println()
	tt := report.NewTable("Stationary transition throughput", "Transition", "Firings/s")
	for ti, tr := range n.Transitions {
		tt.AddRow(tr.Name, report.F(res.Throughput[ti], 6))
	}
	fmt.Print(tt.ASCII())
}

func simulate(n *petri.Net, opt petri.SimOptions, reps int) {
	rep, err := petri.SimulateReplications(n, opt, reps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Simulated %q: %d replications x %g s (warmup %g s)\n\n",
		n.Name, reps, opt.Duration, opt.Warmup)
	t := report.NewTable("Time-averaged place statistics", "Place", "E[tokens]", "±95%", "P(non-empty)")
	for p, place := range n.Places {
		t.AddRow(place.Name,
			report.F(rep.PlaceAvg[p].Mean(), 6),
			report.F(rep.PlaceAvg[p].CI(0.95), 6),
			report.F(rep.PlaceNonEmpty[p].Mean(), 6))
	}
	fmt.Print(t.ASCII())
	fmt.Println()
	tt := report.NewTable("Transition throughput", "Transition", "Firings/s", "±95%")
	for ti, tr := range n.Transitions {
		tt.AddRow(tr.Name,
			report.F(rep.Throughput[ti].Mean(), 6),
			report.F(rep.Throughput[ti].CI(0.95), 6))
	}
	fmt.Print(tt.ASCII())
	if rep.Deadlocks > 0 {
		fmt.Printf("\nwarning: %d/%d replications deadlocked\n", rep.Deadlocks, reps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "petrisim:", err)
	os.Exit(1)
}
