// Command sweep runs a two-dimensional (PDT x PUD) parameter sweep of the
// CPU energy model and emits one CSV row per grid point and estimator —
// the raw data behind Figures 4/5 and Tables 4/5, suitable for external
// plotting tools.
//
// Usage:
//
//	sweep -pdts 0:1:0.1 -puds 0.001,0.3,10 -methods sim,markov,petri > grid.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
)

func main() {
	var (
		pdts    = flag.String("pdts", "0:1:0.1", "PDT values: comma list or lo:hi:step range")
		puds    = flag.String("puds", "0.001,0.3,10", "PUD values: comma list or lo:hi:step range")
		methods = flag.String("methods", "sim,markov,petri,erlang16", "comma list: sim, markov, petri, erlangK")
		lambda  = flag.Float64("lambda", 1, "arrival rate (jobs/s)")
		mu      = flag.Float64("mu", 10, "service rate (jobs/s)")
		simTime = flag.Float64("simtime", 1000, "measured horizon (s)")
		warmup  = flag.Float64("warmup", 100, "warmup (s)")
		reps    = flag.Int("reps", 10, "replications for stochastic methods")
		seed    = flag.Uint64("seed", 20080901, "master seed")
	)
	flag.Parse()

	pdtVals, err := parseValues(*pdts)
	if err != nil {
		fatal(fmt.Errorf("-pdts: %w", err))
	}
	pudVals, err := parseValues(*puds)
	if err != nil {
		fatal(fmt.Errorf("-puds: %w", err))
	}
	ests, err := parseMethods(*methods)
	if err != nil {
		fatal(err)
	}

	fmt.Println("method,pdt,pud,standby,powerup,idle,active,energy_j,energy_ci_j,mean_jobs,mean_latency_s")
	for _, pud := range pudVals {
		for _, pdt := range pdtVals {
			cfg := core.PaperConfig()
			cfg.Lambda, cfg.Mu = *lambda, *mu
			cfg.PDT, cfg.PUD = pdt, pud
			cfg.SimTime, cfg.Warmup = *simTime, *warmup
			cfg.Replications = *reps
			cfg.Seed = *seed
			if err := cfg.Validate(); err != nil {
				fatal(err)
			}
			for _, est := range ests {
				r, err := est.Estimate(cfg)
				if err != nil {
					fatal(fmt.Errorf("%s at PDT=%v PUD=%v: %w", est.Name(), pdt, pud, err))
				}
				fmt.Printf("%s,%g,%g,%.6f,%.6f,%.6f,%.6f,%.4f,%.4f,%.5f,%.5f\n",
					r.Method, pdt, pud,
					r.Fractions[energy.Standby], r.Fractions[energy.PowerUp],
					r.Fractions[energy.Idle], r.Fractions[energy.Active],
					r.EnergyJ, r.EnergyCIJ, r.MeanJobs, r.MeanLatency)
			}
		}
	}
}

// parseValues accepts "a,b,c" or "lo:hi:step".
func parseValues(spec string) ([]float64, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range must be lo:hi:step, got %q", spec)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
			return nil, fmt.Errorf("invalid range %q", spec)
		}
		var vals []float64
		// A small epsilon keeps the endpoint included despite rounding.
		for v := lo; v <= hi+step/1e9; v += step {
			vals = append(vals, v)
		}
		return vals, nil
	}
	var vals []float64
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid value %q", f)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no values in %q", spec)
	}
	return vals, nil
}

func parseMethods(spec string) ([]core.Estimator, error) {
	var ests []core.Estimator
	for _, m := range strings.Split(spec, ",") {
		m = strings.TrimSpace(strings.ToLower(m))
		switch {
		case m == "sim" || m == "simulation":
			ests = append(ests, core.Simulation{})
		case m == "markov":
			ests = append(ests, core.Markov{})
		case m == "petri" || m == "petrinet" || m == "pn":
			ests = append(ests, core.PetriNet{})
		case strings.HasPrefix(m, "erlang"):
			k := 16
			if rest := strings.TrimPrefix(m, "erlang"); rest != "" {
				v, err := strconv.Atoi(rest)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("invalid Erlang method %q (use erlangK, e.g. erlang16)", m)
				}
				k = v
			}
			ests = append(ests, core.ErlangMarkov{K: k})
		default:
			return nil, fmt.Errorf("unknown method %q", m)
		}
	}
	if len(ests) == 0 {
		return nil, fmt.Errorf("no methods given")
	}
	return ests, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
