// Command sweep runs a two-dimensional (PDT x PUD) parameter sweep of the
// CPU energy model and emits one CSV row per grid point and estimator —
// the raw data behind Figures 4/5 and Tables 4/5, suitable for external
// plotting tools. Grid points are evaluated concurrently by the facade's
// Runner; Ctrl-C aborts the sweep mid-replication (the cancellation
// reaches the simulation event loops) while keeping every row already
// written.
//
// Usage:
//
//	sweep -pdts 0:1:0.1 -puds 0.001,0.3,10 -methods sim,markov,petri > grid.csv
//
// Methods are resolved through the estimator registry: sim, markov, petri,
// erlangK (e.g. erlang16), plus anything registered by extensions.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"repro"
	"repro/internal/energy"
)

func main() {
	var (
		pdts     = flag.String("pdts", "0:1:0.1", "PDT values: comma list or lo:hi:step range")
		puds     = flag.String("puds", "0.001,0.3,10", "PUD values: comma list or lo:hi:step range")
		methods  = flag.String("methods", "sim,markov,petri,erlang16", "comma list of registered methods: sim, markov, petri, erlangK")
		lambda   = flag.Float64("lambda", 1, "arrival rate (jobs/s)")
		mu       = flag.Float64("mu", 10, "service rate (jobs/s)")
		simTime  = flag.Float64("simtime", 1000, "measured horizon (s)")
		warmup   = flag.Float64("warmup", 100, "warmup (s)")
		reps     = flag.Int("reps", 10, "replications for stochastic methods")
		seed     = flag.Uint64("seed", 20080901, "master seed")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = all CPUs)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pdtVals, err := parseValues(*pdts)
	if err != nil {
		fatal(fmt.Errorf("-pdts: %w", err))
	}
	pudVals, err := parseValues(*puds)
	if err != nil {
		fatal(fmt.Errorf("-puds: %w", err))
	}
	var specs []string
	for _, m := range strings.Split(*methods, ",") {
		specs = append(specs, strings.TrimSpace(m))
	}

	base := repro.PaperConfig()
	base.Lambda, base.Mu = *lambda, *mu
	base.SimTime, base.Warmup = *simTime, *warmup
	base.Replications = *reps
	base.Seed = *seed

	runner, err := repro.New(
		repro.WithConfig(base), // base.Seed doubles as the master seed
		repro.WithMethods(specs...),
		repro.WithParallelism(*parallel), // 0 = all CPUs; negative errors
	)
	if err != nil {
		fatal(err)
	}

	// One scenario per (PUD, PDT) grid point, PUD-major like the old
	// sequential loop so the CSV row order is unchanged.
	var scenarios []repro.Scenario
	for _, pud := range pudVals {
		for _, pdt := range pdtVals {
			cfg := base
			cfg.PDT, cfg.PUD = pdt, pud
			scenarios = append(scenarios, repro.Scenario{
				Name:   fmt.Sprintf("PDT=%g PUD=%g", pdt, pud),
				Config: cfg,
			})
		}
	}
	ch, err := runner.RunBatch(ctx, scenarios)
	if err != nil {
		fatal(err)
	}

	// Stream rows in grid order as soon as the next-in-order scenario
	// completes, so an interrupted or failing sweep keeps every row
	// already written instead of discarding the whole grid.
	fmt.Println("method,pdt,pud,standby,powerup,idle,active,energy_j,energy_ci_j,mean_jobs,mean_latency_s")
	pending := make(map[int]repro.Result)
	next := 0
	emit := func(res repro.Result) {
		for _, r := range res.Estimates {
			fmt.Printf("%s,%g,%g,%.6f,%.6f,%.6f,%.6f,%.4f,%.4f,%.5f,%.5f\n",
				r.Method, res.Scenario.Config.PDT, res.Scenario.Config.PUD,
				r.Fractions[energy.Standby], r.Fractions[energy.PowerUp],
				r.Fractions[energy.Idle], r.Fractions[energy.Active],
				r.EnergyJ, r.EnergyCIJ, r.MeanJobs, r.MeanLatency)
		}
	}
	var firstErr error
	for res := range ch {
		if res.Err != nil {
			if firstErr == nil {
				firstErr = res.Err
			}
			continue
		}
		pending[res.Index] = res
		for {
			res, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(res)
			next++
		}
	}
	if firstErr != nil {
		fatal(firstErr)
	}
	if err := ctx.Err(); err != nil {
		fatal(fmt.Errorf("sweep interrupted after %d of %d grid points: %w", next, len(scenarios), err))
	}
}

// parseValues accepts "a,b,c" or "lo:hi:step".
func parseValues(spec string) ([]float64, error) {
	if strings.Contains(spec, ":") {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("range must be lo:hi:step, got %q", spec)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo {
			return nil, fmt.Errorf("invalid range %q", spec)
		}
		var vals []float64
		// A small epsilon keeps the endpoint included despite rounding.
		for v := lo; v <= hi+step/1e9; v += step {
			vals = append(vals, v)
		}
		return vals, nil
	}
	var vals []float64
	for _, f := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid value %q", f)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no values in %q", spec)
	}
	return vals, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
