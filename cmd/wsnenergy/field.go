// The field subcommand simulates a whole sensor field on the event-driven
// internal/field simulator:
//
//	wsnenergy field -nodes 100 -topology tree -rate 0.5
//	wsnenergy field -nodes 25 -topology line -spacing 20 -format csv
//
// The headline metrics run through the Runner/RunBatch machinery (the
// field estimator is a registered method, so results hit the shared
// result cache); the per-node table comes from a direct simulation of the
// same field, with the analytic network model's CPU-only lifetime printed
// alongside as a sanity column.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"

	"repro"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/field"
	"repro/internal/network"
	"repro/internal/report"
)

func fieldMain(args []string) {
	fs := flag.NewFlagSet("wsnenergy field", flag.ExitOnError)
	var (
		nodes    = fs.Int("nodes", 100, "number of nodes in the field")
		topology = fs.String("topology", "tree", "topology: line, star or tree")
		fanout   = fs.Int("fanout", 4, "tree fanout")
		rate     = fs.Float64("rate", 0.05, "per-node sample rate (samples/s); keep nodes*rate below mu or the sink saturates")
		spacing  = fs.Float64("spacing", 10, "inter-node spacing / star radius (m)")
		simTime  = fs.Float64("simtime", 200, "measured horizon (s)")
		warmup   = fs.Float64("warmup", 20, "simulated warmup before measurement (s)")
		seed     = fs.Uint64("seed", 20080901, "master random seed")
		battery  = fs.Float64("battery", 2850, "per-node battery capacity in mAh at 3 V; starve it (fractions of a mAh) to watch nodes die and traffic reroute")
		top      = fs.Int("top", 10, "per-node table rows (hottest nodes first)")
		format   = fs.String("format", "text", "output format: text, csv or md")
	)
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := fieldRun(ctx, *nodes, *topology, *fanout, *rate, *spacing, *simTime, *warmup, *seed, *battery, *top, *format); err != nil {
		fatal(err)
	}
}

func fieldRun(ctx context.Context, nodes int, topology string, fanout int, rate, spacing, simTime, warmup float64, seed uint64, battery float64, top int, format string) error {
	est := field.DefaultEstimator(nodes)
	est.Topology = topology
	est.Fanout = fanout
	est.Spacing = spacing
	est.Battery = energy.Battery{CapacitymAh: battery, Volts: 3}

	cfg := repro.PaperConfig()
	cfg.Lambda = rate
	cfg.SimTime = simTime
	cfg.Warmup = warmup
	cfg.Seed = seed
	if err := cfg.Validate(); err != nil {
		return err
	}

	// Headline numbers through the Runner: the estimator path RunBatch,
	// shards and caches use.
	r, err := core.NewRunner(core.WithConfig(cfg), core.WithEstimators(est))
	if err != nil {
		return err
	}
	results, err := r.RunAll(ctx, []core.Scenario{{Name: fmt.Sprintf("field n=%d rate=%g", nodes, rate)}})
	if err != nil {
		return err
	}
	if results[0].Err != nil {
		return results[0].Err
	}
	head := results[0].Estimates[0]

	// The same field once more, directly, for the per-node breakdown.
	placed, err := est.Nodes(rate)
	if err != nil {
		return err
	}
	res, err := field.SimulateContext(ctx, field.Config{
		Nodes:   placed,
		CPU:     cfg,
		Radio:   est.Radio,
		Battery: est.Battery,
		Horizon: simTime,
		Warmup:  warmup,
		Seed:    seed,
	})
	if err != nil {
		return err
	}

	// Analytic cross-check: the static network model with the same tree
	// and CPU parameters, radio zeroed (CPU-only lifetimes). It rejects
	// overloaded nodes, so a saturated field simply drops the column.
	analytic := map[int]float64{}
	analyticNet := math.NaN()
	{
		anNodes := make([]network.Node, len(placed))
		for i, n := range placed {
			parent := n.Parent
			if parent == n.ID {
				parent = -1
			}
			anNodes[i] = network.Node{ID: n.ID, Parent: parent, SampleRate: n.SampleRate}
		}
		an, err := network.Analyze(network.Config{
			Nodes:        anNodes,
			CPU:          cfg,
			TxTime:       1e-9,
			RxTime:       1e-9,
			ListenPeriod: 1,
			Battery:      est.Battery,
		})
		if err == nil {
			for _, nr := range an.Nodes {
				analytic[nr.ID] = nr.LifetimeSeconds
			}
			analyticNet = an.LifetimeSeconds
		}
	}

	byDraw := make([]*field.NodeResult, len(res.Nodes))
	for i := range res.Nodes {
		byDraw[i] = &res.Nodes[i]
	}
	sort.Slice(byDraw, func(i, j int) bool {
		if byDraw[i].AvgPowerMW != byDraw[j].AvgPowerMW {
			return byDraw[i].AvgPowerMW > byDraw[j].AvgPowerMW
		}
		return byDraw[i].ID < byDraw[j].ID
	})
	if top <= 0 || top > len(byDraw) {
		top = len(byDraw)
	}
	t := report.NewTable(
		fmt.Sprintf("Sensor field: %d nodes (%s), %g samples/s — lifetime %.1f days (bottleneck node %d), %.2f pkt/s delivered, %.1f J total",
			nodes, topology, rate, res.LifetimeDays(), res.Bottleneck, float64(res.Delivered)/res.Time, res.TotalEnergyJ),
		"Node", "Parent", "Processed (job/s)", "Tx (pkt/s)", "Rx (pkt/s)", "Draw (mW)", "Lifetime (days)", "Analytic CPU-only (days)")
	for _, nr := range byDraw[:top] {
		anCol := "n/a"
		if life, ok := analytic[nr.ID]; ok {
			anCol = report.F(life/86400, 1)
		}
		t.AddRow(
			fmt.Sprintf("%d", nr.ID),
			fmt.Sprintf("%d", nr.Parent),
			report.F(float64(nr.Processed)/res.Time, 2),
			report.F(float64(nr.TxPackets)/res.Time, 2),
			report.F(float64(nr.RxPackets)/res.Time, 2),
			report.F(nr.AvgPowerMW, 3),
			report.F(nr.LifetimeDays(), 1),
			anCol)
	}
	if err := emitTable(t, format); err != nil {
		return err
	}
	// When batteries actually ran out mid-run, append the measured death
	// timeline; a healthy field (the default AA pair) prints exactly the
	// table above and nothing more.
	if len(res.Deaths) > 0 {
		if format == "text" {
			fmt.Println()
		}
		dt := report.NewTable(
			fmt.Sprintf("Death timeline: first death at %.3f s (node %d); %d dropped in dying nodes, %d unroutable",
				res.FirstDeathSeconds, res.Bottleneck, res.DroppedInFlight, res.DroppedNoRoute),
			"Death", "Node", "Time (s)", "Dropped with node", "Delivered before")
		byID := map[int]*field.NodeResult{}
		for i := range res.Nodes {
			byID[res.Nodes[i].ID] = &res.Nodes[i]
		}
		for i, d := range res.Deaths {
			var delivered uint64
			if nr := byID[d.ID]; nr != nil {
				delivered = nr.DeliveredBefore
			}
			dt.AddRow(
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%d", d.ID),
				report.F(d.Time, 3),
				fmt.Sprintf("%d", d.Dropped),
				fmt.Sprintf("%d", delivered))
		}
		if err := emitTable(dt, format); err != nil {
			return err
		}
	}
	if format == "text" {
		fmt.Printf("\nRunner headline: bottleneck %.3f mW, network lifetime %.1f days, %.2f pkt/s at the sink",
			head.Node.TotalAvgMW, head.Node.LifetimeSeconds/86400, head.Node.PacketsPerSecond)
		if !math.IsNaN(analyticNet) {
			fmt.Printf(" (analytic CPU-only lifetime %.1f days)", analyticNet/86400)
		}
		fmt.Println()
	}
	return nil
}
