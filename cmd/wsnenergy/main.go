// Command wsnenergy regenerates every table and figure of the paper
// "Energy Modeling of Processors in Wireless Sensor Networks based on Petri
// Nets" (Shareef & Zhu, 2008), plus the extension experiments documented in
// DESIGN.md.
//
// Usage:
//
//	wsnenergy -experiment all                 # everything, text format
//	wsnenergy -experiment fig5 -format csv    # one artifact as CSV
//	wsnenergy -experiment table4 -reps 30     # higher precision
//
// Experiments: table1 table2 table3 fig4 fig5 table4 table5
// erlang policy workload ctmc lifetime fieldlife fieldbreakdown fielddeath all
//
// The sweep artifacts (fig4, fig5, table4, table5) can also be split
// across worker processes with the `shard` subcommand — see shard.go:
//
//	wsnenergy shard plan  -experiment table4 -shards 4 -out plan.json
//	wsnenergy shard run   -plan plan.json -shard 0 -cache cachedir -out r0.json
//	wsnenergy shard merge -plan plan.json r0.json r1.json r2.json r3.json
//
// Whole sensor fields are simulated with the `field` subcommand — see
// field.go:
//
//	wsnenergy field -nodes 100 -topology tree -rate 0.5
//
// Sweeps can also run as a long-lived coordinator/worker service with the
// `serve`, `work` and `sweep` subcommands — see sweepd.go:
//
//	wsnenergy serve -listen 127.0.0.1:8080
//	wsnenergy work  -join http://127.0.0.1:8080
//	wsnenergy sweep -join http://127.0.0.1:8080 -experiment table4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro"
	"repro/internal/experiments"
	"repro/internal/report"
)

// modelFlags groups the model-configuration flags shared by the direct
// experiment runner and `shard plan`, so a plan built from the same flag
// values parameterizes exactly the sweep a direct run would evaluate.
// Execution-local knobs (-parallel) are deliberately not model flags: a
// plan records what to compute, each process decides how hard to run it.
type modelFlags struct {
	lambda, mu, pdt, pud, simTime, warmup *float64
	reps                                  *int
	seed                                  *uint64
}

// addModelFlags registers the model flags on a flag set.
func addModelFlags(fs *flag.FlagSet) *modelFlags {
	return &modelFlags{
		lambda:  fs.Float64("lambda", 1, "arrival rate (jobs/s)"),
		mu:      fs.Float64("mu", 10, "service rate (jobs/s); paper: mean service 0.1 s"),
		pdt:     fs.Float64("pdt", 0.5, "power down threshold (s) for non-sweep experiments"),
		pud:     fs.Float64("pud", 0.001, "power up delay (s) for Figure 4/5 sweeps"),
		simTime: fs.Float64("simtime", 1000, "measured horizon (s), Table 2: 1000"),
		warmup:  fs.Float64("warmup", 100, "simulated warmup before measurement (s)"),
		reps:    fs.Int("reps", 10, "replications for stochastic estimators"),
		seed:    fs.Uint64("seed", 20080901, "master random seed"),
	}
}

// options materializes the experiment options from the parsed flags.
func (m *modelFlags) options() (experiments.Options, error) {
	cfg := repro.PaperConfig()
	cfg.Lambda = *m.lambda
	cfg.Mu = *m.mu
	cfg.PDT = *m.pdt
	cfg.PUD = *m.pud
	cfg.SimTime = *m.simTime
	cfg.Warmup = *m.warmup
	cfg.Replications = *m.reps
	cfg.Seed = *m.seed
	if err := cfg.Validate(); err != nil {
		return experiments.Options{}, err
	}
	opt := experiments.Default()
	opt.Base = cfg
	opt.PUDs = []float64{*m.pud, 0.3, 10.0}
	if *m.pud != 0.001 {
		opt.PUDs = []float64{*m.pud}
	}
	return opt, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		shardMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "field" {
		fieldMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "work" {
		workMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "sweep" {
		sweepMain(os.Args[2:])
		return
	}
	var (
		experiment = flag.String("experiment", "all", "which artifact to regenerate (table1..table5, fig4, fig5, erlang, policy, workload, ctmc, lifetime, all)")
		format     = flag.String("format", "text", "output format: text, csv or md")
		model      = addModelFlags(flag.CommandLine)
		parallel   = flag.Int("parallel", 0, "sweep worker pool size (0 = all CPUs)")
		chartW     = flag.Int("chartwidth", 72, "ASCII chart width for figures in text mode")
		chartH     = flag.Int("chartheight", 20, "ASCII chart height")
	)
	flag.Parse()

	// Ctrl-C aborts sweeps mid-replication via the Runner's context: the
	// cancellation reaches the simulation event loops, not just the
	// scenario boundaries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt, err := model.options()
	if err != nil {
		fatal(err)
	}
	opt.Parallelism = *parallel

	names := strings.Split(*experiment, ",")
	if *experiment == "all" {
		names = []string{"table1", "table2", "table3", "fig4", "fig5", "table4", "table5",
			"erlang", "policy", "workload", "ctmc", "lifetime", "convergence", "transient", "network",
			"fieldlife", "fieldbreakdown", "fielddeath"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if err := run(ctx, strings.TrimSpace(name), opt, *format, *chartW, *chartH); err != nil {
			fatal(err)
		}
	}
}

func run(ctx context.Context, name string, opt experiments.Options, format string, chartW, chartH int) error {
	switch name {
	case "table1":
		return emitTable(experiments.Table1(), format)
	case "table2":
		return emitTable(experiments.Table2(opt.Base), format)
	case "table3":
		return emitTable(experiments.Table3(opt.Base.Power), format)
	case "fig4":
		fig, err := experiments.Figure4Ctx(ctx, opt)
		if err != nil {
			return err
		}
		return emitFigure(fig, format, chartW, chartH)
	case "fig5":
		fig, err := experiments.Figure5Ctx(ctx, opt)
		if err != nil {
			return err
		}
		return emitFigure(fig, format, chartW, chartH)
	case "table4":
		t, err := experiments.Table4Ctx(ctx, opt)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "table5":
		t, err := experiments.Table5Ctx(ctx, opt)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "erlang":
		t, err := experiments.ErlangAblationCtx(ctx, opt, nil)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "policy":
		t, err := experiments.PolicyAblation(opt)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "workload":
		t, err := experiments.WorkloadComparisonCtx(ctx, opt)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "ctmc":
		t, err := experiments.CTMCCrossCheck(opt)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "lifetime":
		t, err := experiments.LifetimeCtx(ctx, opt, nil)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "convergence":
		t, err := experiments.Convergence(opt, nil)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "transient":
		fig, err := experiments.Transient(opt, 0, 0, 0)
		if err != nil {
			return err
		}
		return emitFigure(fig, format, chartW, chartH)
	case "network":
		t, err := experiments.NetworkLifetime(opt)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "fieldlife":
		t, err := experiments.FieldLifetimeCtx(ctx, opt, nil, nil)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "fieldbreakdown":
		t, err := experiments.FieldBreakdownCtx(ctx, opt, 0)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "fielddeath":
		t, err := experiments.FieldDeathCtx(ctx, opt, 0)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	default:
		return fmt.Errorf("unknown experiment %q (try -experiment all)", name)
	}
}

func emitTable(t *report.Table, format string) error {
	switch format {
	case "text":
		fmt.Print(t.ASCII())
	case "csv":
		fmt.Print(t.CSV())
	case "md":
		fmt.Print(t.Markdown())
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

func emitFigure(f *report.Figure, format string, w, h int) error {
	switch format {
	case "text":
		fmt.Print(f.ASCIIChart(w, h))
	case "csv":
		fmt.Print(f.CSV())
	case "md":
		fmt.Printf("**%s**\n\n```\n%s```\n\nCSV:\n\n```\n%s```\n", f.Title, f.ASCIIChart(w, h), f.CSV())
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wsnenergy:", err)
	os.Exit(1)
}
