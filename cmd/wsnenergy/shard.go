// The shard subcommand splits the sweep artifacts (fig4, fig5, table4,
// table5) across worker processes:
//
//	wsnenergy shard plan  -experiment table4 -shards 2 -out plan.json \
//	    [model flags: -lambda -mu -pud -simtime -warmup -reps -seed]
//	wsnenergy shard run   -plan plan.json -shard 0 -cache cachedir -out r0.json
//	wsnenergy shard run   -plan plan.json -shard 1 -cache cachedir -out r1.json
//	wsnenergy shard merge -plan plan.json -format csv r0.json r1.json
//
// plan partitions the artifact's scenario grid deterministically and
// records the Runner parameters every worker must share; run evaluates one
// shard (optionally through a file-backed result cache shared by all
// workers, so overlapping grid points are simulated once per fleet); merge
// reassembles the result streams in input order, detects conflicts, and
// renders output byte-identical to a single-process run with the same
// flags. Scenario seeds are derived from configuration content, never from
// placement, so the guarantee holds for any shard count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/shard"
)

// sweepExtra is the coordinator context stored in the manifest's Extra
// field: the sweep axes the merge-time renderer needs.
type sweepExtra struct {
	PDTs []float64 `json:"pdts"`
	PUDs []float64 `json:"puds"`
}

func shardMain(args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("shard needs a subcommand: plan, run or merge"))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var err error
	switch args[0] {
	case "plan":
		err = shardPlan(args[1:])
	case "run":
		err = shardRun(ctx, args[1:])
	case "merge":
		err = shardMerge(args[1:])
	default:
		err = fmt.Errorf("unknown shard subcommand %q (want plan, run or merge)", args[0])
	}
	if err != nil {
		fatal(err)
	}
}

// shardPlan partitions an artifact's scenario grid into a manifest.
func shardPlan(args []string) error {
	fs := flag.NewFlagSet("shard plan", flag.ExitOnError)
	experiment := fs.String("experiment", "", "sweep artifact to shard: fig4, fig5, table4 or table5")
	shards := fs.Int("shards", 2, "number of worker shards")
	out := fs.String("out", "plan.json", "manifest output path")
	model := addModelFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt, err := model.options()
	if err != nil {
		return err
	}
	m, err := buildManifest(*experiment, *shards, opt)
	if err != nil {
		return err
	}
	if err := shard.WriteManifest(*out, m); err != nil {
		return err
	}
	fmt.Printf("planned %s: %d scenarios across %d shards -> %s\n",
		*experiment, m.Total, len(m.Shards), *out)
	return nil
}

// buildManifest plans an artifact's scenario grid into a manifest —
// shared by `shard plan` and the `sweep` service client.
func buildManifest(experiment string, shards int, opt experiments.Options) (*shard.Manifest, error) {
	scenarios, err := experiments.GridScenarios(experiment, opt)
	if err != nil {
		return nil, err
	}
	spec := shard.RunnerSpec{
		Base: opt.Base,
		// The in-process sweeps do not set an explicit master seed, so the
		// Runner defaults it to the base configuration's: workers must do
		// the same for merged output to match a single-process run.
		Seed: opt.Base.Seed,
		// The estimator set of every shardable sweep artifact, recorded by
		// spec so workers resolve the identical list through the registry.
		Methods:     core.MethodSpecs(),
		DeriveSeeds: true,
	}
	m, err := shard.NewManifest(experiment, spec, scenarios, shards)
	if err != nil {
		return nil, err
	}
	if m.Extra, err = json.Marshal(sweepExtra{PDTs: opt.PDTs, PUDs: opt.PUDs}); err != nil {
		return nil, err
	}
	return m, nil
}

// shardRun evaluates one shard of a plan and writes its result set.
func shardRun(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("shard run", flag.ExitOnError)
	plan := fs.String("plan", "plan.json", "manifest written by `shard plan`")
	index := fs.Int("shard", 0, "which shard of the plan to run")
	cacheDir := fs.String("cache", "", "shared file-backed result cache directory (optional)")
	out := fs.String("out", "", "result-set output path (default results<shard>.json)")
	parallel := fs.Int("parallel", 0, "worker pool size within this process (0 = all CPUs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := shard.ReadManifest(*plan)
	if err != nil {
		return err
	}
	sh, err := m.Shard(*index)
	if err != nil {
		return err
	}
	opts := []core.RunnerOption{core.WithParallelism(*parallel)}
	if *cacheDir != "" {
		backend, err := core.NewFileBackend(*cacheDir)
		if err != nil {
			return err
		}
		opts = append(opts, core.WithCacheBackend(backend))
	}
	r, err := m.Runner.NewRunner(opts...)
	if err != nil {
		return err
	}
	rs, err := shard.RunShard(ctx, r, sh)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("results%d.json", *index)
	}
	if err := shard.WriteResultSet(path, rs); err != nil {
		return err
	}
	fmt.Printf("shard %d/%d: %d scenarios -> %s\n", *index, len(m.Shards), len(rs.Results), path)
	return nil
}

// shardMerge reassembles worker result sets and renders the artifact.
func shardMerge(args []string) error {
	fs := flag.NewFlagSet("shard merge", flag.ExitOnError)
	plan := fs.String("plan", "plan.json", "manifest written by `shard plan`")
	format := fs.String("format", "text", "output format: text, csv or md")
	chartW := fs.Int("chartwidth", 72, "ASCII chart width for figures in text mode")
	chartH := fs.Int("chartheight", 20, "ASCII chart height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("shard merge needs the result-set files as arguments")
	}
	m, err := shard.ReadManifest(*plan)
	if err != nil {
		return err
	}
	sets := make([]*shard.ResultSet, fs.NArg())
	for i, path := range fs.Args() {
		if sets[i], err = shard.ReadResultSet(path); err != nil {
			return err
		}
	}
	results, err := shard.Merge(m, sets)
	if err != nil {
		return err
	}
	return renderExperiment(m, results, *format, *chartW, *chartH)
}

// renderExperiment renders a sweep artifact from merged results, using the
// manifest to reconstruct the renderer's options — shared by `shard merge`
// and the `sweep` service client, so both emit byte-identical artifacts.
func renderExperiment(m *shard.Manifest, results []core.Result, format string, chartW, chartH int) error {
	opt, err := mergeOptions(m)
	if err != nil {
		return err
	}
	switch m.Experiment {
	case "fig4":
		fig, err := experiments.Figure4FromResults(opt, results)
		if err != nil {
			return err
		}
		return emitFigure(fig, format, chartW, chartH)
	case "fig5":
		fig, err := experiments.Figure5FromResults(opt, results)
		if err != nil {
			return err
		}
		return emitFigure(fig, format, chartW, chartH)
	case "table4":
		t, err := experiments.Table4FromResults(opt, results)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	case "table5":
		t, err := experiments.Table5FromResults(opt, results)
		if err != nil {
			return err
		}
		return emitTable(t, format)
	default:
		return fmt.Errorf("manifest plans unknown experiment %q", m.Experiment)
	}
}

// mergeOptions reconstructs the experiment options a renderer needs from
// the manifest: the shared base config, the sweep axes from Extra, and the
// estimators resolved from the Runner spec.
func mergeOptions(m *shard.Manifest) (experiments.Options, error) {
	var extra sweepExtra
	if len(m.Extra) == 0 {
		return experiments.Options{}, fmt.Errorf("manifest carries no sweep axes (written by an incompatible planner?)")
	}
	if err := json.Unmarshal(m.Extra, &extra); err != nil {
		return experiments.Options{}, fmt.Errorf("decoding manifest sweep axes: %w", err)
	}
	ests, err := core.NewEstimators(m.Runner.Methods...)
	if err != nil {
		return experiments.Options{}, err
	}
	return experiments.Options{
		Base:       m.Runner.Base,
		PDTs:       extra.PDTs,
		PUDs:       extra.PUDs,
		Estimators: ests,
	}, nil
}
