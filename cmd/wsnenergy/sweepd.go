// The sweep-service subcommands turn the sweep artifacts into a
// long-running coordinator/worker fleet:
//
//	wsnenergy serve -listen 127.0.0.1:8080 [-state-dir dir] [-lease 30s]
//	wsnenergy work  -join http://127.0.0.1:8080 [-name w1] [-parallel N]
//	wsnenergy sweep -join http://127.0.0.1:8080 -experiment table4 \
//	    -format csv [model flags]
//
// serve hosts the coordinator: it accepts sweeps, re-plans them against
// the cost model its workers report, leases partitions with heartbeat
// deadlines, replans exactly what crashed workers leave missing, and hosts
// the fleet's shared result cache. With -state-dir every transition is
// write-ahead journaled and a restarted coordinator recovers its sweeps
// exactly where they stopped; SIGTERM drains gracefully (stop leasing,
// wait bounded time for in-flight work, journal a clean shutdown). work
// joins a worker that polls with bounded exponential backoff until the
// coordinator drains; its first SIGTERM finishes the current lease and
// exits, a second aborts the lease (cleanly failed back). sweep submits
// an artifact's grid, waits, and renders the merged output —
// byte-identical to running the same artifact in one process, whatever
// happens to the fleet mid-run; -detach and -attach split submission from
// rendering across coordinator restarts.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/sweepd"
)

// serveMain runs the sweep coordinator until interrupted.
func serveMain(args []string) {
	fs := newFlagSet("serve")
	var (
		listen       = fs.String("listen", "127.0.0.1:8080", "address to serve the coordinator API on")
		lease        = fs.Duration("lease", sweepd.DefaultLeaseTTL, "lease TTL: a worker silent this long loses its partition")
		attempts     = fs.Int("attempts", sweepd.DefaultAttempts, "attempts per partition before its sweep fails")
		partitions   = fs.Int("partitions", sweepd.DefaultPartitions, "default lease partitions per sweep")
		stateDir     = fs.String("state-dir", "", "journal every transition under this directory and recover from it at startup (also hosts the result cache)")
		drainWait    = fs.Duration("drain", 30*time.Second, "on SIGTERM, wait this long for in-flight leases before exiting")
		speculate    = fs.Bool("speculate", true, "re-issue predicted straggler partitions as shadow leases")
		cacheDir     = fs.String("cache", "", "back the shared result cache with this directory (default: in-memory LRU, or state-dir/cache)")
		cacheEntries = fs.Int("cache-entries", 0, "entry bound for the in-memory result cache (0 = 65536)")
		quiet        = fs.Bool("quiet", false, "suppress progress logging")
	)
	parseFlags(fs, args)

	opts := sweepd.Options{
		LeaseTTL:          *lease,
		MaxAttempts:       *attempts,
		DefaultPartitions: *partitions,
		StateDir:          *stateDir,
		NoSpeculation:     !*speculate,
		CacheEntries:      *cacheEntries,
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "serve: "+format+"\n", a...)
		}
	}
	if *cacheDir != "" {
		backend, err := core.NewFileBackend(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts.Cache = backend
	}
	coord, err := sweepd.Open(opts)
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// Announce the resolved address (meaningful with -listen :0) on stdout
	// so scripts and tests can discover the port.
	fmt.Printf("listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: sweepd.Handler(coord)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Replay the journal while the listener already answers /v1/healthz;
	// /v1/readyz flips to 200 (and leasing starts) when this returns.
	if err := coord.Recover(); err != nil {
		fatal(err)
	}

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		// Graceful drain: refuse new leases, wait (bounded) for in-flight
		// ones, journal the clean shutdown, then close the listener.
		coord.Shutdown(*drainWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		<-serveErr
	}
}

// workMain joins the fleet as a worker.
func workMain(args []string) {
	fs := newFlagSet("work")
	var (
		join     = fs.String("join", "", "coordinator base URL (required)")
		name     = fs.String("name", "", "worker name in coordinator status (default host:pid)")
		parallel = fs.Int("parallel", 0, "scenario pool size within this worker (0 = all CPUs)")
		idle     = fs.Int("idle-exit", 0, "exit after this many consecutive empty polls (0 = stay)")
		cacheDir = fs.String("local-cache", "", "use a local file-backed result cache instead of the coordinator's")
		noCache  = fs.Bool("no-remote-cache", false, "do not use the coordinator's shared result cache")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
	)
	parseFlags(fs, args)
	if *join == "" {
		fatal(errors.New("work needs -join <coordinator URL>"))
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	opts := sweepd.WorkerOptions{
		Coordinator:        *join,
		Name:               *name,
		Parallelism:        *parallel,
		MaxIdlePolls:       *idle,
		CacheDir:           *cacheDir,
		DisableRemoteCache: *noCache,
	}
	if !*quiet {
		opts.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "work %s: "+format+"\n", append([]any{*name}, a...)...)
		}
	}
	// First SIGTERM/SIGINT: graceful drain — finish the current lease,
	// then exit. Second: abort the lease mid-run (the worker cleanly fails
	// it back so the coordinator requeues it immediately).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	drain := make(chan struct{})
	opts.Drain = drain
	go func() {
		<-sigc
		close(drain)
		<-sigc
		cancel()
	}()
	if err := sweepd.Work(ctx, opts); err != nil {
		fatal(err)
	}
}

// sweepMain submits a sweep, waits for the fleet, and renders the merged
// artifact.
func sweepMain(args []string) {
	fs := newFlagSet("sweep")
	var (
		join       = fs.String("join", "", "coordinator base URL (required)")
		experiment = fs.String("experiment", "", "sweep artifact: fig4, fig5, table4 or table5")
		partitions = fs.Int("partitions", 0, "lease partitions for this sweep (0 = coordinator default)")
		format     = fs.String("format", "text", "output format: text, csv or md")
		chartW     = fs.Int("chartwidth", 72, "ASCII chart width for figures in text mode")
		chartH     = fs.Int("chartheight", 20, "ASCII chart height")
		poll       = fs.Duration("poll", 500*time.Millisecond, "status poll interval while waiting")
		timeout    = fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
		detach     = fs.Bool("detach", false, "submit, print the sweep id on stdout, and exit without waiting")
		attach     = fs.String("attach", "", "wait on this already-submitted sweep id instead of submitting (experiment and model flags must match the original submission)")
		model      = addModelFlags(fs)
	)
	parseFlags(fs, args)
	if *join == "" {
		fatal(errors.New("sweep needs -join <coordinator URL>"))
	}
	opt, err := model.options()
	if err != nil {
		fatal(err)
	}
	// The manifest's own partition is advisory (the coordinator re-plans),
	// so plan with 1 shard and let -partitions steer the service.
	m, err := buildManifest(*experiment, 1, opt)
	if err != nil {
		fatal(err)
	}
	client, err := sweepd.NewClient(*join, nil)
	if err != nil {
		fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := runSweep(ctx, client, m, *partitions, *poll, *format, *chartW, *chartH, *attach, *detach); err != nil {
		fatal(err)
	}
}

// runSweep drives one sweep through the service and renders the result.
// A non-empty attach id skips submission and waits on an existing sweep
// (rendering validates the stream against the locally built manifest, so
// the attach must use the same experiment and model flags); detach
// submits, prints the id, and returns without waiting.
func runSweep(ctx context.Context, client *sweepd.Client, m *shard.Manifest, partitions int, poll time.Duration, format string, chartW, chartH int, attach string, detach bool) error {
	id := attach
	if id == "" {
		var err error
		id, err = client.Submit(sweepd.SubmitRequest{Manifest: m, Partitions: partitions})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep %s submitted: %s, %d scenarios\n", id, m.Experiment, m.Total)
		if detach {
			// The id on stdout is the handle a later -attach (possibly after
			// a coordinator restart) picks the sweep back up with.
			fmt.Println(id)
			return nil
		}
	} else {
		fmt.Fprintf(os.Stderr, "sweep %s: attached (%s, %d scenarios expected)\n", id, m.Experiment, m.Total)
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		st, err := client.SweepStatus(id)
		if err != nil {
			return err
		}
		switch st.State {
		case sweepd.StateDone:
			return renderSweep(client, m, id, format, chartW, chartH)
		case sweepd.StateFailed:
			return fmt.Errorf("sweep %s failed: %s", id, st.Error)
		}
		fmt.Fprintf(os.Stderr, "sweep %s: %d/%d scenarios (%d queued, %d leased)\n",
			id, st.Completed, st.Total, st.Queued, st.Leased)
		select {
		case <-ctx.Done():
			return fmt.Errorf("sweep %s: gave up waiting: %w (the sweep keeps running server-side)", id, ctx.Err())
		case <-ticker.C:
		}
	}
}

// renderSweep fetches a completed sweep's results and renders the artifact
// through the same local merge `shard merge` uses, re-validating the
// stream against the submitted manifest on the way.
func renderSweep(client *sweepd.Client, m *shard.Manifest, id, format string, chartW, chartH int) error {
	resp, err := client.SweepResults(id)
	if err != nil {
		return err
	}
	if !resp.Complete {
		return fmt.Errorf("sweep %s reported done but streams incomplete results", id)
	}
	rs := &shard.ResultSet{Version: shard.ResultSetVersion, Results: resp.Results}
	results, err := shard.Merge(m, []*shard.ResultSet{rs})
	if err != nil {
		return err
	}
	return renderExperiment(m, results, format, chartW, chartH)
}

// newFlagSet builds a subcommand flag set that exits on parse errors.
func newFlagSet(name string) *flag.FlagSet {
	return flag.NewFlagSet("wsnenergy "+name, flag.ExitOnError)
}

// parseFlags parses or dies; ExitOnError flag sets only return nil.
func parseFlags(fs *flag.FlagSet, args []string) {
	_ = fs.Parse(args)
}
