// batchsweep demonstrates the streaming side of the Runner API: a PDT x PUD
// grid fanned out over a worker pool, results consumed as they complete,
// and a deadline that cleanly cuts the batch short — the shape of any
// large-scale scenario study built on this package.
//
//	go run ./examples/batchsweep
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro"
)

func main() {
	cfg := repro.PaperConfig()
	cfg.SimTime = 400 // demo-sized horizon
	cfg.Warmup = 50
	cfg.Replications = 3

	runner, err := repro.New(
		repro.WithConfig(cfg),
		repro.WithSeed(7),
		repro.WithParallelism(4),
		repro.WithMethods("markov", "petrinet"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 33 grid points: the Figure-4/5 PDT axis at the Table-4/5 PUD set.
	var scenarios []repro.Scenario
	for _, pud := range []float64{0.001, 0.3, 10} {
		for i := 0; i <= 10; i++ {
			c := cfg
			c.PDT, c.PUD = 0.1*float64(i), pud
			scenarios = append(scenarios, repro.Scenario{
				Name:   fmt.Sprintf("PDT=%.1f PUD=%g", c.PDT, pud),
				Config: c,
			})
		}
	}

	// A deadline stands in for any external cancellation signal. When it
	// fires, unstarted scenarios are dropped, in-flight estimators abort
	// mid-replication (the context reaches the simulation event loops),
	// and the result channel closes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	start := time.Now()
	ch, err := runner.RunBatch(ctx, scenarios)
	if err != nil {
		log.Fatal(err)
	}

	var done []repro.Result
	for res := range ch {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		done = append(done, res) // arrives in completion order
	}
	sort.Slice(done, func(i, j int) bool { return done[i].Index < done[j].Index })

	fmt.Printf("completed %d/%d scenarios in %v on %d workers (seed-stable at any parallelism)\n\n",
		len(done), len(scenarios), time.Since(start).Round(time.Millisecond), runner.Parallelism())
	fmt.Println("scenario            Markov (J)   PetriNet (J)")
	for _, res := range done {
		fmt.Printf("%-18s  %9.2f   %10.2f\n",
			res.Scenario.Name, res.Estimates[0].EnergyJ, res.Estimates[1].EnergyJ)
	}
	if len(done) < len(scenarios) {
		fmt.Printf("\n%d scenarios were cut off by the deadline — rerun with a longer timeout.\n",
			len(scenarios)-len(done))
	}
}
