// closedworkload contrasts the paper's open (interrupt-driven) workload
// with a closed (lock-step) generator at a matched average rate, the
// distinction drawn in Section 4.1.
//
//	go run ./examples/closedworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	const (
		serviceMean = 0.1
		pdt         = 0.5
		pud         = 0.001
		horizon     = 5000.0
	)
	service := dist.ExpMean(serviceMean)

	t := report.NewTable("Open vs closed workload (PXA271, PDT 0.5 s, PUD 1 ms)",
		"Workload", "Jobs/s", "Standby %", "Idle %", "Active %", "Energy (J/1000s)", "Latency (s)")

	run := func(name string, c cpu.Config) {
		c.Service = service
		c.PDT = pdt
		c.PUD = pud
		c.SimTime = horizon
		c.Warmup = 200
		c.Seed = 11
		rep, err := cpu.RunReplications(c, 8)
		if err != nil {
			log.Fatal(err)
		}
		f := rep.MeanFractions()
		jobsPerSec := f[energy.Active] / serviceMean
		t.AddRow(name,
			report.F(jobsPerSec, 3),
			report.F(f[energy.Standby]*100, 2),
			report.F(f[energy.Idle]*100, 2),
			report.F(f[energy.Active]*100, 2),
			report.F(energy.PXA271.EnergyJoules(f, 1000), 2),
			report.F(rep.MeanLatency.Mean(), 4))
	}

	// Open: Poisson at 1 job/s — jobs arrive regardless of CPU state.
	run("open Poisson (1/s)", cpu.Config{Arrivals: workload.NewPoisson(1)})

	// Closed: one customer thinks for 0.9 s after each completion, so the
	// cycle time is 0.9 + 0.1 = 1 s — the same average rate, but the CPU
	// never sees two queued jobs.
	run("closed N=1 (think 0.9 s)", cpu.Config{
		Closed: &workload.Closed{Customers: 1, Think: dist.ExpMean(0.9)},
	})

	// Closed with a larger population approaches the open behaviour.
	run("closed N=4 (think 3.9 s)", cpu.Config{
		Closed: &workload.Closed{Customers: 4, Think: dist.ExpMean(3.9)},
	})

	fmt.Print(t.ASCII())
	fmt.Println("\nReading: at the same average rate the closed workload has no queueing")
	fmt.Println("(a customer waits for its own completion), so latency is lower, while the")
	fmt.Println("energy split is driven purely by the gap distribution seen by the PDT timer.")
}
