// customnet shows the general Petri-net API on a model that is not the
// paper's CPU: a bounded producer-consumer pipeline. It runs structural
// analysis (P/T-invariants), exact CTMC analysis and simulation, and checks
// they agree.
//
//	go run ./examples/customnet
package main

import (
	"fmt"
	"log"

	"repro/internal/petri"
	"repro/internal/report"
)

func main() {
	// A producer fills a 5-slot buffer; a consumer drains it. Slots are
	// modeled explicitly so the net is conservative (invariant:
	// buffer + free = 5).
	n := petri.NewNet("producer-consumer")
	free := n.AddPlaceInit("Free", 5)
	full := n.AddPlace("Full")
	produce := n.AddExponential("Produce", 4) // items/s
	n.Input(produce, free, 1)
	n.Output(produce, full, 1)
	consume := n.AddExponential("Consume", 5)
	n.Input(consume, full, 1)
	n.Output(consume, free, 1)

	fmt.Println("Net:", n.Name)
	pinvs, err := petri.PInvariants(n)
	if err != nil {
		log.Fatal(err)
	}
	m0 := n.InitialMarking()
	for _, y := range pinvs {
		fmt.Printf("P-invariant: %d*Free + %d*Full = %d\n", y[free], y[full], petri.InvariantValue(m0, y))
	}
	tinvs, err := petri.TInvariants(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T-invariants: %v (produce and consume once each restores the marking)\n\n", tinvs)

	// Exact analysis: the buffer is an M/M/1/5 queue.
	exact, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Simulation of the very same net.
	sim, err := petri.SimulateReplications(n, petri.SimOptions{
		Seed: 7, Warmup: 100, Duration: 20000,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Exact CTMC vs simulation",
		"Quantity", "Exact", "Simulated", "±95%")
	fullID, _ := n.PlaceByName("Full")
	consumeID, _ := n.TransitionByName("Consume")
	t.AddRow("E[items buffered]",
		report.F(exact.PlaceAvg[fullID], 5),
		report.F(sim.PlaceAvg[fullID].Mean(), 5),
		report.F(sim.PlaceAvg[fullID].CI(0.95), 5))
	t.AddRow("P(buffer non-empty)",
		report.F(exact.PlaceNonEmpty[fullID], 5),
		report.F(sim.PlaceNonEmpty[fullID].Mean(), 5),
		report.F(sim.PlaceNonEmpty[fullID].CI(0.95), 5))
	t.AddRow("Consumer throughput (/s)",
		report.F(exact.Throughput[consumeID], 5),
		report.F(sim.Throughput[consumeID].Mean(), 5),
		report.F(sim.Throughput[consumeID].CI(0.95), 5))
	fmt.Print(t.ASCII())

	fmt.Printf("\nReachability graph: %d tangible markings (M/M/1/5 birth-death chain)\n", len(exact.Markings))
	fmt.Println("Render the net: go run ./examples/customnet | true; use petri.DOT(n) for Graphviz.")
}
