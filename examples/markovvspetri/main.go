// markovvspetri reproduces the paper's headline finding interactively: as
// the constant Power Up Delay grows, the closed-form Markov approximation
// drifts away from the simulated truth while the Petri net stays on it —
// and the Erlang phase-type extension repairs the Markov chain.
//
//	go run ./examples/markovvspetri
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/report"
)

func main() {
	cfg := core.PaperConfig()
	cfg.SimTime = 2000
	cfg.Replications = 8

	t := report.NewTable(
		"Total |Δ| vs simulation across the four state probabilities (percentage points)",
		"Power Up Delay (s)", "Markov (eq. 11-24)", "Petri net", "ErlangMarkov K=32")
	for _, pud := range []float64{0.001, 0.1, 0.3, 1, 3, 10} {
		c := cfg
		c.PUD = pud
		sim, err := core.Simulation{}.Estimate(c)
		if err != nil {
			log.Fatal(err)
		}
		row := []string{fmt.Sprintf("%g", pud)}
		for _, est := range []core.Estimator{core.Markov{}, core.PetriNet{}, core.ErlangMarkov{K: 32}} {
			r, err := est.Estimate(c)
			if err != nil {
				log.Fatal(err)
			}
			d := 0.0
			for _, s := range energy.States {
				d += math.Abs(r.Fractions[s]-sim.Fractions[s]) * 100
			}
			row = append(row, report.F(d, 2))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.ASCII())
	fmt.Println("\nReading: the supplementary-variable Markov model is exact for PUD -> 0")
	fmt.Println("but its constant-delay approximation collapses by PUD = 10 s, while the")
	fmt.Println("Petri net and the Erlang phase expansion keep tracking the simulator.")
}
