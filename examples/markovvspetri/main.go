// markovvspetri reproduces the paper's headline finding interactively: as
// the constant Power Up Delay grows, the closed-form Markov approximation
// drifts away from the simulated truth while the Petri net stays on it —
// and the Erlang phase-type extension repairs the Markov chain. The whole
// PUD sweep runs concurrently through the Runner's worker pool.
//
//	go run ./examples/markovvspetri
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/energy"
	"repro/internal/report"
)

func main() {
	cfg := repro.PaperConfig()
	cfg.SimTime = 2000
	cfg.Replications = 8

	// Estimator 0 (the simulator) is the reference the others are
	// measured against; "erlang32" comes from the registry.
	runner, err := repro.New(
		repro.WithConfig(cfg),
		repro.WithMethods("sim", "markov", "petrinet", "erlang32"),
	)
	if err != nil {
		log.Fatal(err)
	}

	puds := []float64{0.001, 0.1, 0.3, 1, 3, 10}
	scenarios := make([]repro.Scenario, len(puds))
	for i, pud := range puds {
		c := cfg
		c.PUD = pud
		scenarios[i] = repro.Scenario{Name: fmt.Sprintf("PUD=%g", pud), Config: c}
	}
	results, err := runner.RunAll(context.Background(), scenarios)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable(
		"Total |Δ| vs simulation across the four state probabilities (percentage points)",
		"Power Up Delay (s)", "Markov (eq. 11-24)", "Petri net", "ErlangMarkov K=32")
	for i, res := range results {
		sim := res.Estimates[0]
		row := []string{fmt.Sprintf("%g", puds[i])}
		for _, r := range res.Estimates[1:] {
			d := 0.0
			for _, s := range energy.States {
				d += math.Abs(r.Fractions[s]-sim.Fractions[s]) * 100
			}
			row = append(row, report.F(d, 2))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.ASCII())
	fmt.Println("\nReading: the supplementary-variable Markov model is exact for PUD -> 0")
	fmt.Println("but its constant-delay approximation collapses by PUD = 10 s, while the")
	fmt.Println("Petri net and the Erlang phase expansion keep tracking the simulator.")
}
