// network analyzes multi-hop sensor-network lifetime: nodes near the sink
// relay everyone else's packets and set the network's lifetime — the
// funneling effect that makes per-node energy models (this paper's topic)
// matter at network scale.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"

	"repro/internal/energy"
	"repro/internal/network"
	"repro/internal/report"
)

func main() {
	cfg := network.DefaultConfig(6) // 6-node line, node 0 is the sink
	res, err := network.Analyze(cfg)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("6-node line, 0.5 samples/s per node (node 0 = sink)",
		"Node", "Relays for", "CPU load (/s)", "Tx (/s)", "Rx (/s)", "Total mW", "Lifetime (days)")
	for _, nr := range res.Nodes {
		t.AddRow(
			fmt.Sprintf("%d", nr.ID),
			fmt.Sprintf("%d", nr.Subtree),
			report.F(nr.ProcessRate, 2),
			report.F(nr.TxRate, 2),
			report.F(nr.RxRate, 2),
			report.F(nr.TotalMW, 2),
			report.F(nr.LifetimeSeconds/86400, 1))
	}
	fmt.Print(t.ASCII())
	fmt.Printf("\nNetwork lifetime (first node death): %.1f days — node %d dies first.\n",
		res.LifetimeDays(), res.Bottleneck)

	// With a PXA271 the CPU dominates and the sink (which processes every
	// packet) is always the bottleneck. On a low-power MCU the radio
	// dominates and topology starts to matter: the first relay of a line
	// transmits everything, while a star has no relays at all.
	fmt.Println("\nTopology comparison at equal population, low-power MCU (radio-dominated):")
	t2 := report.NewTable("", "Topology", "Bottleneck", "Lifetime (days)")
	for _, topo := range []struct {
		name  string
		nodes []network.Node
	}{
		{"line (8 nodes)", network.LineTopology(8, 0.5)},
		{"star (8 nodes)", network.StarTopology(8, 0.5)},
		{"binary tree depth 2 (7 nodes)", network.BinaryTreeTopology(2, 0.5)},
	} {
		c := network.DefaultConfig(0)
		c.Nodes = topo.nodes
		c.CPU.Power = energy.MSP430F1611
		r, err := network.Analyze(c)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(topo.name, fmt.Sprintf("node %d", r.Bottleneck), report.F(r.LifetimeDays(), 1))
	}
	fmt.Print(t2.ASCII())
	fmt.Println("\nReading: under a CPU-dominated budget (PXA271) only total traffic matters;")
	fmt.Println("once the radio dominates (MSP430-class MCU), relay-heavy topologies die at")
	fmt.Println("the funnel. The per-node model underneath is the paper's Petri-net CPU model.")
}
