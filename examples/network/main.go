// network simulates multi-hop sensor-network lifetime on the event-driven
// field simulator: nodes near the sink relay everyone else's packets and
// set the network's lifetime — the funneling effect that makes per-node
// energy models (this paper's topic) matter at network scale. The static
// analytic model is printed alongside as a sanity column.
//
//	go run ./examples/network
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/energy"
	"repro/internal/field"
	"repro/internal/network"
	"repro/internal/report"
)

// analyzeCPUOnly runs the static network model over the same tree with the
// radio zeroed out, so its per-node lifetimes are directly comparable to a
// field simulation whose Radio coefficients are zero. Returns per-node
// lifetimes keyed by ID plus the network lifetime, or NaN on overload.
func analyzeCPUOnly(nodes []field.Node, cfg field.Config) (map[int]float64, float64) {
	anNodes := make([]network.Node, len(nodes))
	for i, n := range nodes {
		parent := n.Parent
		if parent == n.ID {
			parent = -1 // field marks the sink as its own parent
		}
		anNodes[i] = network.Node{ID: n.ID, Parent: parent, SampleRate: n.SampleRate}
	}
	res, err := network.Analyze(network.Config{
		Nodes:        anNodes,
		CPU:          cfg.CPU,
		TxTime:       1e-9,
		RxTime:       1e-9,
		ListenPeriod: 1,
		Battery:      cfg.Battery,
	})
	if err != nil {
		return nil, math.NaN()
	}
	lives := make(map[int]float64, len(res.Nodes))
	for _, nr := range res.Nodes {
		lives[nr.ID] = nr.LifetimeSeconds
	}
	return lives, res.LifetimeSeconds
}

func main() {
	// A 6-node line at 0.5 samples/s: every node runs its own compiled
	// Petri-net CPU model, and each delivered packet hops node by node
	// toward the sink (node 0), charging radio energy per hop. The radio
	// is zeroed here so the simulation is directly checkable against the
	// static analytic model — the funneling shows up in CPU load alone.
	nodes := field.LineTopology(6, 0.5, 10)
	cfg := field.DefaultConfig(nodes)
	cfg.Radio = energy.Radio{PacketBits: cfg.Radio.PacketBits}
	cfg.Horizon = 2000
	cfg.Warmup = 200
	res, err := field.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	analytic, analyticNet := analyzeCPUOnly(nodes, cfg)

	t := report.NewTable("6-node line, 0.5 samples/s per node (node 0 = sink), simulated 2000 s",
		"Node", "Processed (job/s)", "Tx (pkt/s)", "Rx (pkt/s)", "Total mW", "Lifetime (days)", "Analytic (days)")
	for _, nr := range res.Nodes {
		anCol := "n/a"
		if life, ok := analytic[nr.ID]; ok {
			anCol = report.F(life/86400, 1)
		}
		t.AddRow(
			fmt.Sprintf("%d", nr.ID),
			report.F(float64(nr.Processed)/res.Time, 2),
			report.F(float64(nr.TxPackets)/res.Time, 2),
			report.F(float64(nr.RxPackets)/res.Time, 2),
			report.F(nr.AvgPowerMW, 2),
			report.F(nr.LifetimeDays(), 1),
			anCol)
	}
	fmt.Print(t.ASCII())
	fmt.Printf("\nNetwork lifetime (first node death): %.1f days — node %d dies first",
		res.LifetimeDays(), res.Bottleneck)
	if !math.IsNaN(analyticNet) {
		fmt.Printf(" (analytic: %.1f days)", analyticNet/86400)
	}
	fmt.Println(".")

	// With the first-order radio switched on, distance starts to matter:
	// a star pays e_amp·d² for its long spokes, a line pays relaying at
	// the funnel, and a tree spreads the relay load across branches.
	fmt.Println("\nTopology comparison at equal population, first-order radio, 40 m span:")
	t2 := report.NewTable("", "Topology", "Bottleneck", "Delivered (pkt/s)", "Lifetime (days)")
	for _, topo := range []struct {
		name  string
		nodes []field.Node
	}{
		{"line (8 nodes, 5.7 m hops)", field.LineTopology(8, 0.5, 40.0/7)},
		{"star (8 nodes, 40 m spokes)", field.StarTopology(8, 0.5, 40)},
		{"binary tree (8 nodes, 20 m hops)", field.TreeTopology(8, 2, 0.5, 20)},
	} {
		c := field.DefaultConfig(topo.nodes)
		c.Horizon = 500
		c.Warmup = 50
		r, err := field.Simulate(c)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(topo.name,
			fmt.Sprintf("node %d", r.Bottleneck),
			report.F(float64(r.Delivered)/r.Time, 2),
			report.F(r.LifetimeDays(), 1))
	}
	fmt.Print(t2.ASCII())
	fmt.Println("\nReading: under a CPU-dominated budget (PXA271) only total processing load")
	fmt.Println("matters, so the sink dies first everywhere; the simulated lifetimes track")
	fmt.Println("the analytic column within sampling noise. The per-node model underneath")
	fmt.Println("is the paper's Petri-net CPU model, one compiled net per node.")
}
