// Quickstart: estimate the energy of a power-managed WSN processor with
// the paper's three methods and print a side-by-side comparison, using the
// public Runner API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/energy"
	"repro/internal/report"
)

func main() {
	// The paper's operating point: Poisson arrivals at 1 job/s, mean
	// service 0.1 s, PXA271 power table, 1000 s horizon.
	cfg := repro.PaperConfig()
	cfg.PDT = 0.5   // power down after half a second of idleness
	cfg.PUD = 0.001 // 1 ms wake-up

	fmt.Printf("CPU model: lambda=%g/s, mu=%g/s (rho=%.0f%%), PDT=%gs, PUD=%gs\n\n",
		cfg.Lambda, cfg.Mu, cfg.Rho()*100, cfg.PDT, cfg.PUD)

	// A Runner owns the configuration and the estimator set; methods are
	// resolved by name through the registry.
	runner, err := repro.New(
		repro.WithConfig(cfg),
		repro.WithMethods("sim", "markov", "petrinet"),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(context.Background(), repro.Scenario{Name: "paper operating point"})
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("Steady-state comparison over 1000 s",
		"Method", "Standby %", "PowerUp %", "Idle %", "Active %", "Energy (J)", "Mean jobs")
	for _, e := range res.Estimates {
		t.AddRow(e.Method,
			report.F(e.Fractions[energy.Standby]*100, 2),
			report.F(e.Fractions[energy.PowerUp]*100, 2),
			report.F(e.Fractions[energy.Idle]*100, 2),
			report.F(e.Fractions[energy.Active]*100, 2),
			report.F(e.EnergyJ, 2),
			report.F(e.MeanJobs, 4))
	}
	fmt.Print(t.ASCII())

	fmt.Println("\nThe Petri net behind the PetriNet method (Graphviz DOT):")
	fmt.Println("run `go run ./cmd/petrisim -paper -dot` to render Figure 3.")
}
