// sensornode estimates whole-node battery lifetime: the Figure-3 CPU net
// composed with a duty-cycled radio, swept across sensing rates — the
// network-lifetime question that motivates the paper.
//
//	go run ./examples/sensornode
package main

import (
	"fmt"
	"log"

	"repro/internal/report"
	"repro/internal/sensornode"
)

func main() {
	base := sensornode.DefaultConfig()
	base.CPU.SimTime = 2000
	base.CPU.Replications = 5

	fmt.Printf("Node: PXA271 CPU + CC2420-class radio, 2xAA battery (%.0f mAh @ %.1f V)\n",
		base.Battery.CapacitymAh, base.Battery.Volts)
	fmt.Printf("Radio duty cycle: listen %.0f ms every %.1f s; packet tx %.0f ms\n\n",
		base.ListenWindow*1000, base.ListenPeriod, base.TxTime*1000)

	t := report.NewTable("Lifetime vs sensing rate",
		"Samples/s", "CPU mW", "Radio mW", "Total mW", "Packets/s", "Lifetime (days)")
	for _, lambda := range []float64{0.1, 0.5, 1, 2, 5} {
		cfg := base
		cfg.CPU.Lambda = lambda
		res, err := sensornode.Estimate(cfg, 5)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(fmt.Sprintf("%g", lambda),
			report.F(res.CPUAvgMW, 2),
			report.F(res.RadioAvgMW, 2),
			report.F(res.TotalAvgMW, 2),
			report.F(res.PacketsPerSecond, 2),
			report.F(res.LifetimeDays(), 1))
	}
	fmt.Print(t.ASCII())

	// Show the knob the paper studies: the Power Down Threshold.
	fmt.Println()
	t2 := report.NewTable("Lifetime vs Power Down Threshold (1 sample/s)",
		"PDT (s)", "Total mW", "Lifetime (days)")
	for _, pdt := range []float64{0, 0.25, 0.5, 1.0, 2.0} {
		cfg := base
		cfg.CPU.PDT = pdt
		res, err := sensornode.Estimate(cfg, 5)
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(fmt.Sprintf("%g", pdt),
			report.F(res.TotalAvgMW, 2),
			report.F(res.LifetimeDays(), 1))
	}
	fmt.Print(t2.ASCII())
	fmt.Println("\nA smaller Power Down Threshold saves energy (the CPU sleeps sooner),")
	fmt.Println("at the cost of more wake-ups — the trade-off of the paper's Figure 5.")
}
