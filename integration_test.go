// Integration tests across the whole stack: the public facade, the
// estimator agreement structure the paper reports, and end-to-end
// serialization of the Figure-3 net.
package repro_test

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro"
	"repro/internal/energy"
	"repro/internal/petri"

	// Registers the field estimators ("field", "fieldline", "fieldstar")
	// with the method registry used by repro.WithMethods.
	_ "repro/internal/field"
)

func TestFacadePaperConfig(t *testing.T) {
	cfg := repro.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if repro.PXA271.Name != "PXA271" {
		t.Fatal("facade power table wrong")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := repro.PaperConfig()
	cfg.SimTime = 500
	cfg.Warmup = 50
	cfg.Replications = 3
	ests, err := repro.CompareAll(cfg, repro.Methods())
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates = %d, want 3", len(ests))
	}
	for _, e := range ests {
		if err := e.Fractions.Validate(1e-6); err != nil {
			t.Errorf("%s: %v", e.Method, err)
		}
		if e.EnergyJ < 17*0.5 || e.EnergyJ > 193*0.5 {
			t.Errorf("%s: energy %v J outside physical bounds for 500 s", e.Method, e.EnergyJ)
		}
	}
}

// TestPaperShapeEndToEnd is the one-test summary of the reproduction: runs
// the three methods at small and large PUD and asserts the paper's
// qualitative conclusions.
func TestPaperShapeEndToEnd(t *testing.T) {
	small := repro.PaperConfig()
	small.SimTime = 2000
	small.Replications = 5
	small.PUD = 0.001

	large := small
	large.PUD = 10

	diff := func(a, b *repro.Estimate) float64 {
		d := 0.0
		for s := energy.State(0); s < energy.NumStates; s++ {
			d += math.Abs(a.Fractions[s] - b.Fractions[s])
		}
		return d
	}

	for name, cfg := range map[string]repro.Config{"small": small, "large": large} {
		ests, err := repro.CompareAll(cfg, repro.Methods())
		if err != nil {
			t.Fatal(err)
		}
		sim, mkv, pn := ests[0], ests[1], ests[2]
		switch name {
		case "small":
			// Conclusion 1 (Table 4 row 1): all three agree at small D.
			if d := diff(sim, mkv); d > 0.05 {
				t.Errorf("small D: Sim-Markov = %v", d)
			}
			if d := diff(sim, pn); d > 0.05 {
				t.Errorf("small D: Sim-PN = %v", d)
			}
		case "large":
			// Conclusion 2 (Table 4 row 3): Markov collapses, PN holds.
			if dm, dp := diff(sim, mkv), diff(sim, pn); dm < 5*dp {
				t.Errorf("large D: Sim-Markov (%v) should dwarf Sim-PN (%v)", dm, dp)
			}
		}
	}
}

// TestFigure3NetThroughTheFacade exercises the exported net builder with
// the generic engine and validates the queueing identity throughput(SR) =
// lambda.
func TestFigure3NetThroughTheFacade(t *testing.T) {
	cfg := repro.PaperConfig()
	n := repro.BuildCPUNet(cfg)
	res, err := petri.Simulate(n, petri.SimOptions{Seed: 9, Warmup: 100, Duration: 5000})
	if err != nil {
		t.Fatal(err)
	}
	srID, ok := n.TransitionByName("SR")
	if !ok {
		t.Fatal("SR missing")
	}
	if math.Abs(res.Throughput[srID]-cfg.Lambda) > 0.05 {
		t.Fatalf("service throughput = %v, want ~lambda = %v", res.Throughput[srID], cfg.Lambda)
	}
	arID, _ := n.TransitionByName("AR")
	t1ID, _ := n.TransitionByName("T1")
	if res.Firings[arID] != res.Firings[t1ID] {
		t.Fatalf("every arrival must be admitted exactly once: AR=%d T1=%d",
			res.Firings[arID], res.Firings[t1ID])
	}
}

// TestFieldThroughRunBatch streams a 100-node sensor-field simulation
// through the public Runner batch path: the field estimator resolves from
// the registry like any paper method, so whole-field scenarios ride the
// same worker pool, cache and cancellation as single-node sweeps.
func TestFieldThroughRunBatch(t *testing.T) {
	cfg := repro.PaperConfig()
	cfg.Lambda = 0.05 // per-node sample rate; 100 nodes funnel 5 job/s into the sink
	cfg.SimTime = 30
	cfg.Warmup = 5
	r, err := repro.New(repro.WithConfig(cfg), repro.WithMethods("field100"))
	if err != nil {
		t.Fatal(err)
	}
	scenarios := []repro.Scenario{{Name: "flat"}}
	dense := cfg
	dense.Lambda = 0.09
	scenarios = append(scenarios, repro.Scenario{Name: "dense", Config: dense})

	ch, err := r.RunBatch(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]*repro.Estimate{}
	for res := range ch {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Scenario.Name, res.Err)
		}
		if len(res.Estimates) != 1 {
			t.Fatalf("%s: %d estimates, want 1", res.Scenario.Name, len(res.Estimates))
		}
		got[res.Scenario.Name] = res.Estimates[0]
	}
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	for name, e := range got {
		if !strings.Contains(e.Method, "n=100") {
			t.Errorf("%s: method %q does not name the 100-node field", name, e.Method)
		}
		if e.EnergyJ <= 0 || math.IsNaN(e.EnergyJ) {
			t.Errorf("%s: field energy %v", name, e.EnergyJ)
		}
		if e.Node.LifetimeSeconds <= 0 || math.IsInf(e.Node.LifetimeSeconds, 1) {
			t.Errorf("%s: network lifetime %v", name, e.Node.LifetimeSeconds)
		}
		if e.Node.PacketsPerSecond <= 0 {
			t.Errorf("%s: sink throughput %v", name, e.Node.PacketsPerSecond)
		}
	}
	// More traffic per node costs more energy across the whole field.
	if got["dense"].EnergyJ <= got["flat"].EnergyJ {
		t.Errorf("dense field energy %v <= flat %v", got["dense"].EnergyJ, got["flat"].EnergyJ)
	}
}

// TestEnergyMonotoneInPDTEndToEnd checks the Figure-5 trend through the
// facade for all three methods.
func TestEnergyMonotoneInPDTEndToEnd(t *testing.T) {
	prev := map[string]float64{}
	for _, pdt := range []float64{0, 0.5, 1.0} {
		cfg := repro.PaperConfig()
		cfg.PDT = pdt
		cfg.SimTime = 2000
		cfg.Replications = 5
		ests, err := repro.CompareAll(cfg, repro.Methods())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ests {
			if last, ok := prev[e.Method]; ok && e.EnergyJ <= last {
				t.Errorf("%s: energy not increasing at PDT=%v: %v <= %v", e.Method, pdt, e.EnergyJ, last)
			}
			prev[e.Method] = e.EnergyJ
		}
	}
}
