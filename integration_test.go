// Integration tests across the whole stack: the public facade, the
// estimator agreement structure the paper reports, and end-to-end
// serialization of the Figure-3 net.
package repro_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/energy"
	"repro/internal/petri"
)

func TestFacadePaperConfig(t *testing.T) {
	cfg := repro.PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if repro.PXA271.Name != "PXA271" {
		t.Fatal("facade power table wrong")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := repro.PaperConfig()
	cfg.SimTime = 500
	cfg.Warmup = 50
	cfg.Replications = 3
	ests, err := repro.CompareAll(cfg, repro.Methods())
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 3 {
		t.Fatalf("estimates = %d, want 3", len(ests))
	}
	for _, e := range ests {
		if err := e.Fractions.Validate(1e-6); err != nil {
			t.Errorf("%s: %v", e.Method, err)
		}
		if e.EnergyJ < 17*0.5 || e.EnergyJ > 193*0.5 {
			t.Errorf("%s: energy %v J outside physical bounds for 500 s", e.Method, e.EnergyJ)
		}
	}
}

// TestPaperShapeEndToEnd is the one-test summary of the reproduction: runs
// the three methods at small and large PUD and asserts the paper's
// qualitative conclusions.
func TestPaperShapeEndToEnd(t *testing.T) {
	small := repro.PaperConfig()
	small.SimTime = 2000
	small.Replications = 5
	small.PUD = 0.001

	large := small
	large.PUD = 10

	diff := func(a, b *repro.Estimate) float64 {
		d := 0.0
		for s := energy.State(0); s < energy.NumStates; s++ {
			d += math.Abs(a.Fractions[s] - b.Fractions[s])
		}
		return d
	}

	for name, cfg := range map[string]repro.Config{"small": small, "large": large} {
		ests, err := repro.CompareAll(cfg, repro.Methods())
		if err != nil {
			t.Fatal(err)
		}
		sim, mkv, pn := ests[0], ests[1], ests[2]
		switch name {
		case "small":
			// Conclusion 1 (Table 4 row 1): all three agree at small D.
			if d := diff(sim, mkv); d > 0.05 {
				t.Errorf("small D: Sim-Markov = %v", d)
			}
			if d := diff(sim, pn); d > 0.05 {
				t.Errorf("small D: Sim-PN = %v", d)
			}
		case "large":
			// Conclusion 2 (Table 4 row 3): Markov collapses, PN holds.
			if dm, dp := diff(sim, mkv), diff(sim, pn); dm < 5*dp {
				t.Errorf("large D: Sim-Markov (%v) should dwarf Sim-PN (%v)", dm, dp)
			}
		}
	}
}

// TestFigure3NetThroughTheFacade exercises the exported net builder with
// the generic engine and validates the queueing identity throughput(SR) =
// lambda.
func TestFigure3NetThroughTheFacade(t *testing.T) {
	cfg := repro.PaperConfig()
	n := repro.BuildCPUNet(cfg)
	res, err := petri.Simulate(n, petri.SimOptions{Seed: 9, Warmup: 100, Duration: 5000})
	if err != nil {
		t.Fatal(err)
	}
	srID, ok := n.TransitionByName("SR")
	if !ok {
		t.Fatal("SR missing")
	}
	if math.Abs(res.Throughput[srID]-cfg.Lambda) > 0.05 {
		t.Fatalf("service throughput = %v, want ~lambda = %v", res.Throughput[srID], cfg.Lambda)
	}
	arID, _ := n.TransitionByName("AR")
	t1ID, _ := n.TransitionByName("T1")
	if res.Firings[arID] != res.Firings[t1ID] {
		t.Fatalf("every arrival must be admitted exactly once: AR=%d T1=%d",
			res.Firings[arID], res.Firings[t1ID])
	}
}

// TestEnergyMonotoneInPDTEndToEnd checks the Figure-5 trend through the
// facade for all three methods.
func TestEnergyMonotoneInPDTEndToEnd(t *testing.T) {
	prev := map[string]float64{}
	for _, pdt := range []float64{0, 0.5, 1.0} {
		cfg := repro.PaperConfig()
		cfg.PDT = pdt
		cfg.SimTime = 2000
		cfg.Replications = 5
		ests, err := repro.CompareAll(cfg, repro.Methods())
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ests {
			if last, ok := prev[e.Method]; ok && e.EnergyJ <= last {
				t.Errorf("%s: energy not increasing at PDT=%v: %v <= %v", e.Method, pdt, e.EnergyJ, last)
			}
			prev[e.Method] = e.EnergyJ
		}
	}
}
