package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"repro/internal/xrand"
)

// ---------------------------------------------------------------------------
// Result memoization
//
// Every estimator is a pure function of its Config (the effective seed is
// part of the Config and is derived from the master seed and the Config's
// own content), so a (config, method) pair fully determines its Estimate.
// Experiments re-evaluate identical grid points constantly — Figure 4 and
// Figure 5 run the same PDT×PUD sweep, Tables 4 and 5 repeat it per PUD —
// and separate Runners are no obstacle to sharing: equal effective configs
// mean equal results regardless of which Runner computed them. Nor are
// separate processes: a sweep sharded across workers (internal/shard,
// `wsnenergy shard`) shares one FileBackend so no grid point is simulated
// twice across the fleet.
//
// The cache is therefore pluggable behind CacheBackend, keyed by CacheKey:
// the full config value plus the estimator's method name and concrete Go
// type (the type guards against two unrelated estimators that happen to
// share a Name; two estimators of the same type whose Name hides differing
// behavior must opt out via WithCache(false)). The default backend is a
// process-wide in-memory map bounded with epoch eviction.

// CacheKeyVersion is the schema version of the canonical key encoding.
// Bump it whenever the wire shape of CacheKey (including Config's field
// set) changes: decoders reject foreign versions, so stale entries written
// by an older binary read as misses instead of silently aliasing new keys.
//
// The wire form additionally stamps xrand.StreamVersion (the simulators'
// draw law) into every key: an engine change that redraws the same seeds
// differently — like the version-3 ziggurat exponential — invalidates all
// cached simulation results without a schema bump, because both the hash
// (file backends store under it) and the decode check cover the stamp.
const CacheKeyVersion = 1

// CacheKey identifies one memoized estimator result: the effective model
// configuration, the estimator's method name, and the estimator's concrete
// implementation identity. The zero value is not a valid key; Runners
// derive keys internally and backends treat them as opaque.
type CacheKey struct {
	// Config is the full effective configuration the estimate was (or
	// would be) computed from, including the effective seed.
	Config Config
	// Method is the estimator's Name().
	Method string
	// Estimator is the implementation identity — the estimator's Go type
	// path (through the AdaptEstimator shim), e.g.
	// "repro/internal/core.Simulation".
	Estimator string
}

// cacheKeyWire is the canonical serialized form of a CacheKey. Field order
// is fixed by declaration order (encoding/json emits struct fields in
// order), so equal keys encode to equal bytes.
type cacheKeyWire struct {
	Version   int    `json:"v"`
	DrawLaw   int    `json:"drawlaw"`
	Estimator string `json:"estimator"`
	Method    string `json:"method"`
	Config    Config `json:"config"`
}

// Encode renders the key in its canonical, versioned wire form. Equal keys
// encode to equal bytes, so the encoding (or a digest of it — see Hash) can
// index shared stores across processes. Configurations containing NaN or
// infinite values are not encodable.
func (k CacheKey) Encode() ([]byte, error) {
	b, err := json.Marshal(cacheKeyWire{
		Version:   CacheKeyVersion,
		DrawLaw:   xrand.StreamVersion,
		Estimator: k.Estimator,
		Method:    k.Method,
		Config:    k.Config,
	})
	if err != nil {
		return nil, fmt.Errorf("core: encoding cache key: %w", err)
	}
	return b, nil
}

// DecodeCacheKey parses a canonical key encoding. Keys written under a
// different CacheKeyVersion — or carrying fields this version does not
// know, i.e. written by a newer schema — are rejected.
func DecodeCacheKey(data []byte) (CacheKey, error) {
	var w cacheKeyWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return CacheKey{}, fmt.Errorf("core: decoding cache key: %w", err)
	}
	if w.Version != CacheKeyVersion {
		return CacheKey{}, fmt.Errorf("core: cache key version %d, want %d", w.Version, CacheKeyVersion)
	}
	if w.DrawLaw != xrand.StreamVersion {
		// Entries computed under another sampling law (a missing field
		// decodes as 0) describe different trajectories for the same seeds.
		return CacheKey{}, fmt.Errorf("core: cache key draw-law version %d, want %d", w.DrawLaw, xrand.StreamVersion)
	}
	return CacheKey{Config: w.Config, Method: w.Method, Estimator: w.Estimator}, nil
}

// Hash returns the hex SHA-256 digest of the canonical encoding — the
// fixed-length form file and KV backends use as the storage key.
func (k CacheKey) Hash() (string, error) {
	b, err := k.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CacheStats reports the observable state of a cache backend.
type CacheStats struct {
	// Entries is the number of results currently stored.
	Entries int
	// Hits counts successful Gets served by this backend instance (for
	// shared stores, hits are counted per process, not globally).
	Hits uint64
	// Evictions counts entries dropped by the backend's bounding policy
	// (LRU eviction, epoch eviction); unbounded backends report 0.
	Evictions uint64
}

// CacheBackend stores memoized estimator results. Implementations must be
// safe for concurrent use by multiple goroutines; backends backed by
// shared storage (FileBackend) must additionally tolerate concurrent use
// from multiple processes.
//
// The Runner treats the cache as strictly best-effort: a Get error is a
// miss (the estimate is recomputed) and a Put error drops the entry, so a
// degraded backend can slow a sweep down but never change its results.
type CacheBackend interface {
	// Get returns the estimate stored under key, if any.
	Get(key CacheKey) (Estimate, bool, error)
	// Put stores est under key, overwriting any previous entry.
	Put(key CacheKey, est Estimate) error
	// Reset drops every entry and zeroes the hit counter.
	Reset() error
	// Stats reports the entry and hit counts.
	Stats() (CacheStats, error)
}

// estimateCacheMax bounds the number of memoized results in a
// MemoryBackend (~64k entries; an Estimate is a small value struct).
const estimateCacheMax = 1 << 16

// MemoryBackend is the default CacheBackend: a process-local map bounded
// by epoch eviction. When the entry count reaches its cap, the map is
// dropped wholesale and the current workload repopulates it — long-running
// sweep services keep memoizing their recent grid instead of being pinned
// to the first 64k points.
type MemoryBackend struct {
	mu     sync.Mutex
	m      map[CacheKey]Estimate
	hits   uint64
	evicts uint64
	max    int
}

// NewMemoryBackend returns an empty in-memory backend with the default
// entry bound.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{m: make(map[CacheKey]Estimate), max: estimateCacheMax}
}

// Get implements CacheBackend. Estimate carries no reference types, so the
// returned value copy keeps the cache immune to caller mutation.
func (b *MemoryBackend) Get(key CacheKey) (Estimate, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	est, ok := b.m[key]
	if !ok {
		return Estimate{}, false, nil
	}
	b.hits++
	return est, true, nil
}

// Put implements CacheBackend. A zero-value MemoryBackend works too: the
// map is allocated lazily and an unset bound means the default, so direct
// struct construction cannot silently degrade to a one-entry cache.
func (b *MemoryBackend) Put(key CacheKey, est Estimate) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	max := b.max
	if max <= 0 {
		max = estimateCacheMax
	}
	if len(b.m) >= max {
		// Epoch eviction: drop everything and let the workload repopulate.
		b.evicts += uint64(len(b.m))
		b.m = nil
	}
	if b.m == nil {
		b.m = make(map[CacheKey]Estimate)
	}
	b.m[key] = est
	return nil
}

// Reset implements CacheBackend.
func (b *MemoryBackend) Reset() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m = make(map[CacheKey]Estimate)
	b.hits = 0
	b.evicts = 0
	return nil
}

// Stats implements CacheBackend.
func (b *MemoryBackend) Stats() (CacheStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return CacheStats{Entries: len(b.m), Hits: b.hits, Evictions: b.evicts}, nil
}

// defaultCache is the process-wide backend Runners use unless
// WithCacheBackend overrides it.
var defaultCache CacheBackend = NewMemoryBackend()

// DefaultCacheBackend returns the process-wide backend shared by every
// Runner that does not configure its own via WithCacheBackend.
func DefaultCacheBackend() CacheBackend { return defaultCache }

// ResetEstimateCache empties the process-wide default result cache (used
// by tests and by long-lived services that change estimator
// implementations at runtime — the cache assumes an estimator name always
// denotes the same pure function). Runners configured with their own
// backend are unaffected; reset those through Runner.ResetEstimateCache.
func ResetEstimateCache() {
	// The default backend's Reset cannot fail.
	_ = defaultCache.Reset()
}

// EstimateCacheStats reports the current entry and hit counts of the
// process-wide default result cache.
func EstimateCacheStats() (entries int, hits uint64) {
	s, err := defaultCache.Stats()
	if err != nil {
		return 0, 0
	}
	return s.Entries, s.Hits
}

// estimatorID derives the cache identity of an estimator: its concrete Go
// type path, looking through the AdaptEstimator shim so an adapted
// estimator shares cache entries with (and only with) its underlying
// implementation.
func estimatorID(e Estimator) string {
	var t reflect.Type
	if a, ok := e.(interface{ Unwrap() LegacyEstimator }); ok {
		t = reflect.TypeOf(a.Unwrap())
	} else {
		t = reflect.TypeOf(e)
	}
	prefix := ""
	for t != nil && t.Kind() == reflect.Pointer {
		prefix += "*"
		t = t.Elem()
	}
	if t == nil {
		return prefix
	}
	if p := t.PkgPath(); p != "" {
		return prefix + p + "." + t.Name()
	}
	return prefix + t.String()
}
