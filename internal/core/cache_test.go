package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/energy"
	"repro/internal/xrand"
)

// randomConfig draws an arbitrary (not necessarily valid) configuration:
// the key encoding must round-trip any representable config, not just ones
// that pass Validate.
func randomConfig(rng *rand.Rand) Config {
	f := func() float64 {
		switch rng.Intn(5) {
		case 0:
			return 0
		case 1:
			return -0.0 // sign must survive the round trip
		case 2:
			return rng.Float64() * 1e6
		case 3:
			return math.SmallestNonzeroFloat64 * float64(1+rng.Intn(1000))
		default:
			// Full-precision mantissas: shortest-representation JSON
			// encoding must restore these bit for bit.
			return rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
	}
	cfg := Config{
		Lambda:       f(),
		Mu:           f(),
		PDT:          f(),
		PUD:          f(),
		SimTime:      f(),
		Warmup:       f(),
		Replications: rng.Intn(100),
		Seed:         rng.Uint64(),
	}
	cfg.Power.Name = fmt.Sprintf("cpu-%d", rng.Intn(10))
	for i := range cfg.Power.MW {
		cfg.Power.MW[i] = f()
	}
	return cfg
}

// TestCacheKeyRoundTripProperty: encode→decode restores the key exactly
// for 500 random configurations, and equal keys share canonical bytes and
// hashes.
func TestCacheKeyRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20080901))
	for i := 0; i < 500; i++ {
		key := CacheKey{
			Config:    randomConfig(rng),
			Method:    fmt.Sprintf("method-%d", rng.Intn(5)),
			Estimator: "repro/internal/core.Simulation",
		}
		data, err := key.Encode()
		if err != nil {
			t.Fatalf("iteration %d: encode: %v", i, err)
		}
		got, err := DecodeCacheKey(data)
		if err != nil {
			t.Fatalf("iteration %d: decode: %v", i, err)
		}
		if got != key {
			t.Fatalf("iteration %d: round trip changed the key\n in: %+v\nout: %+v", i, key, got)
		}
		// Canonical: re-encoding the decoded key yields identical bytes,
		// so the hash is stable across processes.
		data2, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Fatalf("iteration %d: encoding not canonical:\n%s\n%s", i, data, data2)
		}
		h1, err := key.Hash()
		if err != nil {
			t.Fatal(err)
		}
		h2, err := got.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 || len(h1) != 64 {
			t.Fatalf("iteration %d: hash unstable or malformed: %q vs %q", i, h1, h2)
		}
	}
}

// TestCacheKeyDistinguishes: any change to config, method or estimator
// identity must change the canonical encoding.
func TestCacheKeyDistinguishes(t *testing.T) {
	base := CacheKey{Config: PaperConfig(), Method: "Simulation", Estimator: "core.Simulation"}
	variants := []CacheKey{base, base, base, base}
	variants[1].Method = "Markov"
	variants[2].Estimator = "core.Markov"
	variants[3].Config.PDT += 1e-9
	seen := map[string]int{}
	for i, k := range variants[1:] {
		h, err := k.Hash()
		if err != nil {
			t.Fatal(err)
		}
		baseHash, _ := base.Hash()
		if h == baseHash {
			t.Fatalf("variant %d collides with the base key", i+1)
		}
		seen[h]++
	}
	if len(seen) != 3 {
		t.Fatalf("variants collide among themselves: %v", seen)
	}
}

// TestCacheKeyVersionBumpRejected: a key encoded under any other schema
// version must not decode.
func TestCacheKeyVersionBumpRejected(t *testing.T) {
	key := CacheKey{Config: PaperConfig(), Method: "Simulation", Estimator: "core.Simulation"}
	data, err := key.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, CacheKeyVersion + 1, -1} {
		bumped := strings.Replace(string(data),
			fmt.Sprintf(`"v":%d`, CacheKeyVersion), fmt.Sprintf(`"v":%d`, v), 1)
		if bumped == string(data) {
			t.Fatalf("test setup: version marker not found in %s", data)
		}
		if _, err := DecodeCacheKey([]byte(bumped)); err == nil {
			t.Fatalf("version %d decoded without error", v)
		}
	}
}

// TestCacheKeyDrawLawChangeMisses: keys written under a different sampling
// law — older binaries whose encodings carry no "drawlaw" stamp (pre-ziggurat
// PR-2..6 file caches), or an explicit other version — must neither decode
// nor share a storage hash with current keys, so stale simulation results
// read as misses instead of silently mixing streams.
func TestCacheKeyDrawLawChangeMisses(t *testing.T) {
	key := CacheKey{Config: PaperConfig(), Method: "Simulation", Estimator: "core.Simulation"}
	data, err := key.Encode()
	if err != nil {
		t.Fatal(err)
	}
	curMarker := fmt.Sprintf(`"drawlaw":%d`, xrand.StreamVersion)
	if !strings.Contains(string(data), curMarker) {
		t.Fatalf("encoding does not stamp the draw law: %s", data)
	}
	// A same-schema key under another law version must be refused.
	old := strings.Replace(string(data), curMarker, `"drawlaw":2`, 1)
	if _, err := DecodeCacheKey([]byte(old)); err == nil {
		t.Fatal("key with draw-law 2 decoded without error")
	}
	// A pre-stamp encoding (exact PR-5-era wire shape, no drawlaw field)
	// must be refused too: the missing field decodes as law 0.
	legacy := strings.Replace(string(data), curMarker+`,`, ``, 1)
	if strings.Contains(legacy, "drawlaw") {
		t.Fatalf("test setup: stamp not removed from %s", legacy)
	}
	if _, err := DecodeCacheKey([]byte(legacy)); err == nil {
		t.Fatal("legacy pre-draw-law key decoded without error")
	}
	// File backends address records by the encoding's hash, so the stamped
	// and legacy byte forms can never alias one another's files.
	if string(data) == legacy || string(data) == old {
		t.Fatal("stamped and unstamped encodings are byte-identical")
	}
}

// TestCacheKeyUnknownFieldsRejected: a key written by a richer (future)
// schema that forgot to bump the version must still be refused rather
// than silently dropping the unknown field.
func TestCacheKeyUnknownFieldsRejected(t *testing.T) {
	key := CacheKey{Config: PaperConfig(), Method: "Simulation", Estimator: "core.Simulation"}
	data, err := key.Encode()
	if err != nil {
		t.Fatal(err)
	}
	withExtra := strings.Replace(string(data), `"method":`, `"voltage":1.8,"method":`, 1)
	if _, err := DecodeCacheKey([]byte(withExtra)); err == nil {
		t.Fatal("key with unknown field decoded without error")
	}
}

// TestCacheKeyNaNUnencodable: configurations containing NaN have no
// canonical form and must error instead of storing garbage.
func TestCacheKeyNaNUnencodable(t *testing.T) {
	key := CacheKey{Config: PaperConfig(), Method: "m", Estimator: "e"}
	key.Config.Lambda = math.NaN()
	if _, err := key.Encode(); err == nil {
		t.Fatal("NaN config encoded without error")
	}
	if _, err := key.Hash(); err == nil {
		t.Fatal("NaN config hashed without error")
	}
}

// TestMemoryBackendZeroValue: a directly constructed backend must behave
// like a default one, not evict on every Put.
func TestMemoryBackendZeroValue(t *testing.T) {
	var b MemoryBackend
	for i := 0; i < 3; i++ {
		cfg := PaperConfig()
		cfg.Seed = uint64(i)
		if err := b.Put(CacheKey{Config: cfg, Method: "m", Estimator: "e"}, Estimate{EnergyJ: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := b.Stats(); st.Entries != 3 {
		t.Fatalf("zero-value backend holds %d entries, want 3", st.Entries)
	}
}

func TestMemoryBackendBasics(t *testing.T) {
	b := NewMemoryBackend()
	key := CacheKey{Config: PaperConfig(), Method: "m", Estimator: "e"}
	if _, ok, err := b.Get(key); ok || err != nil {
		t.Fatalf("empty backend: ok=%v err=%v", ok, err)
	}
	want := Estimate{Method: "m", EnergyJ: 42}
	if err := b.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get(key)
	if !ok || err != nil || got != want {
		t.Fatalf("Get = %+v, %v, %v; want the stored estimate", got, ok, err)
	}
	st, err := b.Stats()
	if err != nil || st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, %v; want 1 entry, 1 hit", st, err)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if st, _ := b.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("reset left %+v", st)
	}
}

// TestMemoryBackendEpochEviction: hitting the entry bound drops the whole
// epoch rather than refusing new entries.
func TestMemoryBackendEpochEviction(t *testing.T) {
	b := &MemoryBackend{m: make(map[CacheKey]Estimate), max: 3}
	mk := func(i int) CacheKey {
		cfg := PaperConfig()
		cfg.Seed = uint64(i)
		return CacheKey{Config: cfg, Method: "m", Estimator: "e"}
	}
	for i := 0; i < 3; i++ {
		if err := b.Put(mk(i), Estimate{EnergyJ: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The 4th insert crosses the bound: the epoch resets and only the new
	// entry survives.
	if err := b.Put(mk(3), Estimate{EnergyJ: 3}); err != nil {
		t.Fatal(err)
	}
	st, _ := b.Stats()
	if st.Entries != 1 {
		t.Fatalf("after eviction: %d entries, want 1", st.Entries)
	}
	if _, ok, _ := b.Get(mk(3)); !ok {
		t.Fatal("the entry that triggered eviction was not stored")
	}
	if _, ok, _ := b.Get(mk(0)); ok {
		t.Fatal("evicted entry still present")
	}
}

// TestEstimatorIDIdentities pins the cache-identity derivation: concrete
// type paths, the AdaptEstimator unwrap, and pointer receivers.
func TestEstimatorIDIdentities(t *testing.T) {
	if got := estimatorID(Simulation{}); got != "repro/internal/core.Simulation" {
		t.Fatalf("Simulation id = %q", got)
	}
	if got := estimatorID(&Simulation{}); got != "*repro/internal/core.Simulation" {
		t.Fatalf("*Simulation id = %q", got)
	}
	// An adapted legacy estimator must share identity with its wrapped
	// implementation, not with the shim.
	var calls atomic.Int64
	adapted := AdaptEstimator(countingEstimator{calls: &calls})
	if got := estimatorID(adapted); !strings.HasSuffix(got, ".countingEstimator") {
		t.Fatalf("adapted id = %q, want the wrapped type's", got)
	}
}

// TestDefaultBackendFacade: the package-level reset/stats helpers operate
// on the process-wide default backend.
func TestDefaultBackendFacade(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	key := CacheKey{Config: PaperConfig(), Method: "m", Estimator: "e"}
	if err := DefaultCacheBackend().Put(key, Estimate{EnergyJ: 1}); err != nil {
		t.Fatal(err)
	}
	if entries, _ := EstimateCacheStats(); entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	ResetEstimateCache()
	if entries, _ := EstimateCacheStats(); entries != 0 {
		t.Fatalf("after reset entries = %d", entries)
	}
}

// TestCacheKeyWireShapeStable pins the canonical field order: changing it
// silently would orphan every shared cache in the field, so it must fail a
// test instead.
func TestCacheKeyWireShapeStable(t *testing.T) {
	key := CacheKey{Method: "m", Estimator: "e"}
	key.Config.Power = energy.PXA271
	data, err := key.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var probe struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(data, &probe); err != nil || probe.V != CacheKeyVersion {
		t.Fatalf("wire form lost the version marker: %s", data)
	}
	for _, marker := range []string{`"v":`, `"estimator":"e"`, `"method":"m"`, `"config":{`, `"Lambda":`, `"MW":[`} {
		if !strings.Contains(string(data), marker) {
			t.Fatalf("wire form missing %s:\n%s", marker, data)
		}
	}
	if !strings.HasPrefix(string(data), `{"v":`) {
		t.Fatalf("version must lead the wire form for cheap inspection:\n%s", data)
	}
}
