package core

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/petri"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func TestClosedNetValidates(t *testing.T) {
	n := BuildClosedCPUNet(PaperConfig(), 3, 1.0)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClosedNetRejectsBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { BuildClosedCPUNet(PaperConfig(), 0, 1) },
		func() { BuildClosedCPUNet(PaperConfig(), 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad closed-net args accepted")
				}
			}()
			f()
		}()
	}
}

// TestClosedNetPopulationInvariant: Thinking + CPU_Buffer + Active = N both
// structurally and under random execution.
func TestClosedNetPopulationInvariant(t *testing.T) {
	const customers = 5
	n := BuildClosedCPUNet(PaperConfig(), customers, 1.0)
	invs, err := petri.PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	thinkID, _ := n.PlaceByName(PlaceThinking)
	bufID, _ := n.PlaceByName(PlaceCPUBuffer)
	actID, _ := n.PlaceByName(PlaceActive)
	found := false
	for _, y := range invs {
		if y[thinkID] == 1 && y[bufID] == 1 && y[actID] == 1 {
			if petri.InvariantValue(n.InitialMarking(), y) == customers {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("population invariant not found in %v", invs)
	}
	// Dynamic check.
	m := n.InitialMarking()
	r := xrand.New(17)
	for step := 0; step < 3000; step++ {
		var enabled []petri.TransitionID
		for ti := range n.Transitions {
			if n.Enabled(m, petri.TransitionID(ti)) {
				enabled = append(enabled, petri.TransitionID(ti))
			}
		}
		if len(enabled) == 0 {
			t.Fatalf("closed net deadlocked at step %d", step)
		}
		n.Fire(m, enabled[r.Intn(len(enabled))])
		if got := m[thinkID] + m[bufID] + m[actID]; got != customers {
			t.Fatalf("population = %d at step %d, want %d", got, step, customers)
		}
	}
}

// TestClosedNetMatchesClosedSimulator: the closed Petri net and the
// internal/cpu closed-workload simulator encode the same process; compare
// their state fractions.
func TestClosedNetMatchesClosedSimulator(t *testing.T) {
	const (
		customers = 3
		thinkMean = 1.0
	)
	cfg := PaperConfig()
	cfg.PDT = 0.5
	cfg.PUD = 0.3

	n := BuildClosedCPUNet(cfg, customers, thinkMean)
	pn, err := petri.SimulateReplications(n, petri.SimOptions{
		Seed: 31, Warmup: 100, Duration: 4000,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cpu.RunReplications(cpu.Config{
		Closed:  &workload.Closed{Customers: customers, Think: dist.ExpMean(thinkMean)},
		Service: dist.ExpMean(1 / cfg.Mu),
		PDT:     cfg.PDT,
		PUD:     cfg.PUD,
		SimTime: 4000,
		Warmup:  100,
		Seed:    32,
	}, 6)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.MeanFractions()
	for s, place := range statePlaces() {
		id, _ := n.PlaceByName(place)
		got := pn.PlaceAvg[id].Mean()
		tol := 3*(pn.PlaceAvg[id].CI(0.95)+rep.FractionCI(s)) + 0.02
		if math.Abs(got-f[s]) > tol {
			t.Errorf("state %s: closed net %v vs closed simulator %v (tol %v)", s, got, f[s], tol)
		}
	}
}

// TestClosedNetSingleCustomerUtilization: with one customer, utilization is
// E[S] / (E[S] + E[think] + wake-up effects); with negligible PUD and a
// huge PDT it is exactly E[S]/(E[S]+think).
func TestClosedNetSingleCustomerUtilization(t *testing.T) {
	cfg := PaperConfig()
	cfg.PDT = 50 // effectively never sleeps
	cfg.PUD = 1e-9
	n := BuildClosedCPUNet(cfg, 1, 0.9)
	res, err := petri.Simulate(n, petri.SimOptions{Seed: 33, Warmup: 100, Duration: 20000})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 / (0.1 + 0.9)
	if math.Abs(res.PlaceAvgByName(n, PlaceActive)-want) > 0.01 {
		t.Fatalf("single-customer utilization = %v, want ~%v",
			res.PlaceAvgByName(n, PlaceActive), want)
	}
	// One customer can never be queued behind itself: buffer average is
	// tiny (only transient powerup queueing).
	if res.PlaceAvgByName(n, PlaceCPUBuffer) > 0.01 {
		t.Fatalf("buffer average = %v for one customer", res.PlaceAvgByName(n, PlaceCPUBuffer))
	}
}

// TestClosedNetExactCTMC: exponentializing the closed net gives a finite
// GSPN that SolveCTMC handles without any capacity annotations; the exact
// solution matches simulation of the same net.
func TestClosedNetExactCTMC(t *testing.T) {
	cfg := PaperConfig()
	cfg.PDT = 0.5
	cfg.PUD = 0.3
	const customers = 3
	// Build the exponentialized closed variant by swapping the two
	// deterministic transitions for exponentials of equal mean.
	n := BuildClosedCPUNet(cfg, customers, 1.0)
	pdtID, _ := n.TransitionByName(TransPDT)
	putID, _ := n.TransitionByName(TransPUT)
	n.Transitions[pdtID].Delay = dist.ExpMean(cfg.PDT)
	n.Transitions[putID].Delay = dist.ExpMean(cfg.PUD)

	exact, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := petri.Simulate(n, petri.SimOptions{Seed: 35, Warmup: 200, Duration: 40000})
	if err != nil {
		t.Fatal(err)
	}
	for p := range n.Places {
		if d := math.Abs(exact.PlaceAvg[p] - sim.PlaceAvg[p]); d > 0.03 {
			t.Errorf("place %s: exact %v vs sim %v", n.Places[p].Name, exact.PlaceAvg[p], sim.PlaceAvg[p])
		}
	}
	// The closed net is structurally bounded: exact analysis needs only a
	// modest state space.
	if len(exact.Markings) > 200 {
		t.Fatalf("unexpectedly large closed-net state space: %d", len(exact.Markings))
	}
	_ = energy.States
}
