// Package core is the paper's primary contribution as a library: energy
// modeling of a power-managed wireless-sensor-node processor by three
// interchangeable methods —
//
//   - Simulation: the event-driven software simulator (internal/cpu), the
//     paper's ground truth;
//   - Markov: the closed-form supplementary-variable model
//     (internal/markov), equations 11–24;
//   - PetriNet: the Figure-3 EDSPN executed by the stochastic Petri-net
//     engine (internal/petri), with energy from equation 25.
//
// All three consume the same Config and produce the same Estimate, which is
// what makes the paper's Figures 4–5 and Tables 4–5 one-line comparisons
// (see internal/experiments).
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/energy"
)

// Config is the shared parameterization of the CPU energy model.
type Config struct {
	// Lambda is the Poisson arrival rate in jobs/s (Table 2: 1/s).
	Lambda float64
	// Mu is the exponential service rate in jobs/s. The paper's Table 2
	// lists "Service Rate .1 per sec", which must be read as a mean
	// service time of 0.1 s (mu = 10/s) for the queue to be stable; see
	// DESIGN.md §2.
	Mu float64
	// PDT is the Power Down Threshold in seconds.
	PDT float64
	// PUD is the Power Up Delay in seconds.
	PUD float64
	// Power is the per-state power table (Table 3: PXA271).
	Power energy.PowerModel
	// SimTime is the measured horizon in seconds (Table 2: 1000 s).
	SimTime float64
	// Warmup is the simulated-but-unmeasured prefix for the stochastic
	// estimators.
	Warmup float64
	// Replications is the number of independent runs for the stochastic
	// estimators (default 10).
	Replications int
	// Seed drives all randomness.
	Seed uint64
}

// PaperConfig returns the configuration of the paper's evaluation:
// Table 2 arrival/service rates and horizon, Table 3 PXA271 powers, and the
// Figure 4/5 baseline delays (PDT swept in experiments, PUD = 0.001 s).
func PaperConfig() Config {
	return Config{
		Lambda:       1,
		Mu:           10,
		PDT:          0.5,
		PUD:          0.001,
		Power:        energy.PXA271,
		SimTime:      1000,
		Warmup:       100,
		Replications: 10,
		Seed:         20080901, // the paper's publication month
	}
}

// Validate checks parameter ranges and queue stability.
func (c Config) Validate() error {
	if c.Lambda <= 0 || math.IsNaN(c.Lambda) {
		return fmt.Errorf("core: Lambda must be positive, got %v", c.Lambda)
	}
	if c.Mu <= 0 || math.IsNaN(c.Mu) {
		return fmt.Errorf("core: Mu must be positive, got %v", c.Mu)
	}
	if c.Lambda >= c.Mu {
		return fmt.Errorf("core: unstable queue: rho = %v >= 1", c.Lambda/c.Mu)
	}
	if c.PDT < 0 || c.PUD < 0 {
		return fmt.Errorf("core: PDT and PUD must be non-negative, got %v and %v", c.PDT, c.PUD)
	}
	if c.SimTime <= 0 {
		return fmt.Errorf("core: SimTime must be positive, got %v", c.SimTime)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("core: Warmup must be non-negative, got %v", c.Warmup)
	}
	if c.Replications < 0 {
		return fmt.Errorf("core: Replications must be non-negative, got %d", c.Replications)
	}
	return nil
}

// withDefaults fills unset optional fields.
func (c Config) withDefaults() Config {
	if c.Replications == 0 {
		c.Replications = 10
	}
	if c.Power.Name == "" {
		c.Power = energy.PXA271
	}
	return c
}

// Rho returns the offered load.
func (c Config) Rho() float64 { return c.Lambda / c.Mu }

// Estimate is the common result shape of every estimator.
type Estimate struct {
	// Method names the estimator that produced the result.
	Method string
	// Fractions is the steady-state share of time per power state
	// (Figure 4's y axis).
	Fractions energy.Fractions
	// FractionsCI holds 95% half-widths per state; zero for analytic
	// methods.
	FractionsCI energy.Fractions
	// EnergyJ is the total energy over the configured horizon in Joules
	// (Figure 5's y axis).
	EnergyJ float64
	// EnergyCIJ is the 95% half-width of EnergyJ; zero for analytic
	// methods.
	EnergyCIJ float64
	// MeanJobs is the mean number of jobs in the system.
	MeanJobs float64
	// MeanLatency is the mean per-job sojourn time in seconds.
	MeanLatency float64
	// Node carries whole-sensor-node outputs for estimators that model
	// more than the CPU (the sensornode lifetime estimator); zero for the
	// paper's CPU-only methods. A flat value struct keeps Estimate free of
	// reference types, which the result cache's copy-on-read safety relies
	// on.
	Node NodeMetrics
}

// NodeMetrics is the node-level slice of an Estimate: average power by
// subsystem, radio throughput, and battery lifetime.
type NodeMetrics struct {
	// CPUAvgMW, RadioAvgMW and TotalAvgMW are average power draws in
	// milliwatts.
	CPUAvgMW, RadioAvgMW, TotalAvgMW float64
	// PacketsPerSecond is the radio transmit throughput.
	PacketsPerSecond float64
	// LifetimeSeconds is the battery lifetime at TotalAvgMW.
	LifetimeSeconds float64
}

// Estimator computes an Estimate for a Config. Implementations: Simulation,
// Markov, PetriNet, ErlangMarkov.
//
// EstimateContext is the primary entry point: estimators observe the
// context and abort long simulations mid-replication when it is cancelled.
// Estimate is the context-free convenience form (equivalent to
// EstimateContext with context.Background()). Pre-context implementations
// that only have the old Estimate signature are upgraded with
// AdaptEstimator.
type Estimator interface {
	// Name identifies the method in tables and figures.
	Name() string
	// Estimate runs the method to completion.
	Estimate(cfg Config) (*Estimate, error)
	// EstimateContext runs the method under a context; a cancelled context
	// aborts the run and returns an error wrapping ctx.Err().
	EstimateContext(ctx context.Context, cfg Config) (*Estimate, error)
}

// LegacyEstimator is the pre-context estimator contract: Name plus the old
// Estimate(cfg) signature. AdaptEstimator upgrades one to the full
// Estimator interface.
type LegacyEstimator interface {
	Name() string
	Estimate(cfg Config) (*Estimate, error)
}

// adaptedEstimator is the compatibility shim behind AdaptEstimator.
type adaptedEstimator struct {
	inner LegacyEstimator
}

func (a adaptedEstimator) Name() string { return a.inner.Name() }

func (a adaptedEstimator) Estimate(cfg Config) (*Estimate, error) { return a.inner.Estimate(cfg) }

// EstimateContext checks the context once up front and then runs the
// wrapped estimator to completion: a legacy estimator cannot be interrupted
// mid-run, but a cancelled batch still skips it before it starts.
func (a adaptedEstimator) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return a.inner.Estimate(cfg)
}

// Unwrap exposes the wrapped estimator, so the result cache can key on the
// concrete implementation type rather than on the shim.
func (a adaptedEstimator) Unwrap() LegacyEstimator { return a.inner }

// AdaptEstimator upgrades a pre-context estimator to the Estimator
// interface. If e already implements Estimator it is returned unchanged;
// otherwise the returned shim forwards Estimate, and EstimateContext checks
// the context once before delegating (no mid-run cancellation — implement
// EstimateContext natively for that).
func AdaptEstimator(e LegacyEstimator) Estimator {
	if full, ok := e.(Estimator); ok {
		return full
	}
	return adaptedEstimator{inner: e}
}

// MethodSpecs returns the registry specs of the paper's three methods in
// presentation order (simulation first, as the benchmark) — the single
// source of that list, shared by Methods and by coordinators that must
// record the estimator set for other processes (shard manifests).
func MethodSpecs() []string { return []string{"simulation", "markov", "petrinet"} }

// Methods returns the paper's three estimators in presentation order,
// resolved through the registry.
func Methods() []Estimator {
	ests, err := NewEstimators(MethodSpecs()...)
	if err != nil {
		// The three paper methods register in this package's init; a
		// lookup failure is a programming error, not a runtime condition.
		panic(err)
	}
	return ests
}

// CompareAll runs every estimator on the same configuration; see
// CompareAllContext.
func CompareAll(cfg Config, ests []Estimator) ([]*Estimate, error) {
	return CompareAllContext(context.Background(), cfg, ests)
}

// CompareAllContext runs every estimator on the same configuration through
// the Runner — the single scenario-evaluation code path — so one-off
// comparisons share the worker pool, the process-wide result cache, and
// cancellation with batch sweeps. The configuration's own Seed is used
// verbatim (no per-scenario seed derivation), preserving the historical
// CompareAll contract that equal configs reproduce bit-identical results.
func CompareAllContext(ctx context.Context, cfg Config, ests []Estimator) ([]*Estimate, error) {
	r, err := NewRunner(
		WithConfig(cfg),
		WithEstimators(ests...),
		WithSeedDerivation(false),
	)
	if err != nil {
		return nil, err
	}
	res, err := r.Run(ctx, Scenario{})
	if err != nil {
		return nil, err
	}
	return res.Estimates, nil
}
