package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/energy"
	"repro/internal/petri"
	"repro/internal/xrand"
)

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Lambda != 1 || cfg.Mu != 10 || cfg.SimTime != 1000 {
		t.Fatalf("paper config drifted: %+v", cfg)
	}
	if cfg.Power.Name != "PXA271" {
		t.Fatalf("paper power model = %q", cfg.Power.Name)
	}
	if cfg.Rho() != 0.1 {
		t.Fatalf("rho = %v, want 0.1", cfg.Rho())
	}
}

func TestConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Mu = 0 },
		func(c *Config) { c.Lambda = c.Mu }, // rho = 1
		func(c *Config) { c.PDT = -1 },
		func(c *Config) { c.PUD = -1 },
		func(c *Config) { c.SimTime = 0 },
		func(c *Config) { c.Warmup = -1 },
		func(c *Config) { c.Replications = -1 },
	}
	for i, mutate := range mutations {
		cfg := PaperConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNetStructureMatchesTable1(t *testing.T) {
	n := BuildCPUNet(PaperConfig())
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(n.Places) != 9 {
		t.Fatalf("places = %d, want 9", len(n.Places))
	}
	if len(n.Transitions) != 8 {
		t.Fatalf("transitions = %d, want 8", len(n.Transitions))
	}
	// Table 1 priorities.
	wantPrio := map[string]int{TransT1: 4, TransT6: 3, TransT5: 2, TransT2: 1}
	for name, prio := range wantPrio {
		id, ok := n.TransitionByName(name)
		if !ok {
			t.Fatalf("missing transition %s", name)
		}
		tr := n.Transitions[id]
		if tr.Kind != petri.Immediate || tr.Priority != prio {
			t.Fatalf("%s: kind=%v priority=%d, want immediate priority %d", name, tr.Kind, tr.Priority, prio)
		}
	}
	// Table 1 firing distributions.
	for name, wantDelay := range map[string]string{
		TransAR:  "Exp(rate=1)",
		TransSR:  "Exp(rate=10)",
		TransPDT: "Det(0.5)",
		TransPUT: "Det(0.001)",
	} {
		id, _ := n.TransitionByName(name)
		if got := n.Transitions[id].Delay.String(); got != wantDelay {
			t.Fatalf("%s delay = %s, want %s", name, got, wantDelay)
		}
	}
	// PDT carries the two inhibitor arcs of Figure 3.
	pdtID, _ := n.TransitionByName(TransPDT)
	if len(n.Transitions[pdtID].Inhibitors) != 2 {
		t.Fatalf("PDT inhibitors = %d, want 2", len(n.Transitions[pdtID].Inhibitors))
	}
}

// TestNetFusedChains pins the vanishing-chain fusion the compiled engine
// derives for Figure 3: the paper's immediate cascade behind each timed
// transition collapses into that transition's firing program, guarded by
// runtime preconditions on the pre-firing marking.
func TestNetFusedChains(t *testing.T) {
	n := BuildCPUNet(PaperConfig())
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	assertChain := func(name string, wantChain, wantPre []string) {
		t.Helper()
		id, ok := n.TransitionByName(name)
		if !ok {
			t.Fatalf("no transition %s", name)
		}
		var chain []string
		for _, f := range c.FusedChain(id) {
			chain = append(chain, n.Transitions[f].Name)
		}
		if fmt.Sprint(chain) != fmt.Sprint(wantChain) {
			t.Errorf("%s fused chain = %v, want %v", name, chain, wantChain)
		}
		pre := append([]string(nil), c.FusedPreconds(id)...)
		sortStrings(pre)
		want := append([]string(nil), wantPre...)
		sortStrings(want)
		if fmt.Sprint(pre) != fmt.Sprint(want) {
			t.Errorf("%s chain preconditions = %v, want %v", name, pre, want)
		}
	}
	// An arrival at an on-and-idle CPU runs the whole T1→T5→T2 cascade:
	// admit the job, discard the power-up notice, start service — one
	// event, net effect Idle−1/Active+1.
	assertChain(TransAR, []string{TransT1, TransT5, TransT2}, []string{
		PlaceStandBy + " < 1", PlaceCPUOn + " >= 1", PlaceIdle + " >= 1",
	})
	// A service completion immediately starts the next buffered job.
	assertChain(TransSR, []string{TransT2}, []string{
		PlaceCPUBuffer + " >= 1", PlaceCPUOn + " >= 1",
	})
	// Power-up with a buffered job starts service at once. (P6 < 2: a
	// second pending notice would re-enable T5 first.)
	assertChain(TransPUT, []string{TransT2}, []string{
		PlaceP6 + " < 2", PlaceCPUBuffer + " >= 1",
	})
	// Power-down leads nowhere provable: T6 needs a P6 token, but any
	// marking with P6 ≥ 1 and the CPU on would have fired T5 already, so
	// the candidate chain contradicts tangibility and is refused.
	assertChain(TransPDT, nil, nil)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestNetPInvariants verifies the three structural conservation laws of
// DESIGN.md §4 directly from the incidence matrix.
func TestNetPInvariants(t *testing.T) {
	n := BuildCPUNet(PaperConfig())
	invs, err := petri.PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	m0 := n.InitialMarking()
	find := func(desc string, want map[string]int, wantVal int) {
		t.Helper()
		for _, y := range invs {
			match := true
			for i, p := range n.Places {
				if y[i] != want[p.Name] {
					match = false
					break
				}
			}
			if match {
				if got := petri.InvariantValue(m0, y); got != wantVal {
					t.Fatalf("%s: initial invariant value %d, want %d", desc, got, wantVal)
				}
				return
			}
		}
		t.Fatalf("%s: invariant not found in %v", desc, invs)
	}
	// M(P0) + M(P1) = 1: one arrival timer.
	find("generator", map[string]int{PlaceP0: 1, PlaceP1: 1}, 1)
	// M(Stand_By) + M(Power_Up) + M(CPU_ON) = 1: one power-state token.
	find("power state", map[string]int{PlaceStandBy: 1, PlacePowerUp: 1, PlaceCPUOn: 1}, 1)
	// M(Idle) + M(Active) - M(CPU_ON) = 0 is a non-negative-combination
	// variant: Idle + Active + Stand_By + Power_Up = 1.
	find("processor occupancy", map[string]int{
		PlaceIdle: 1, PlaceActive: 1, PlaceStandBy: 1, PlacePowerUp: 1,
	}, 1)
}

// TestNetInvariantsHoldUnderRandomExecution fires random enabled
// transitions and checks every invariant value stays constant — the dynamic
// counterpart of the structural test.
func TestNetInvariantsHoldUnderRandomExecution(t *testing.T) {
	n := BuildCPUNet(PaperConfig())
	invs, err := petri.PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) == 0 {
		t.Fatal("no invariants found")
	}
	m := n.InitialMarking()
	want := make([]int, len(invs))
	for i, y := range invs {
		want[i] = petri.InvariantValue(m, y)
	}
	r := xrand.New(99)
	for step := 0; step < 5000; step++ {
		var enabled []petri.TransitionID
		for ti := range n.Transitions {
			if n.Enabled(m, petri.TransitionID(ti)) {
				enabled = append(enabled, petri.TransitionID(ti))
			}
		}
		if len(enabled) == 0 {
			t.Fatalf("CPU net deadlocked at step %d, marking %v", step, m)
		}
		n.Fire(m, enabled[r.Intn(len(enabled))])
		for i, y := range invs {
			if got := petri.InvariantValue(m, y); got != want[i] {
				t.Fatalf("invariant %d broke at step %d: %d -> %d (marking %v)", i, step, want[i], got, m)
			}
		}
		// Physical sanity: the state places are 0/1.
		for _, name := range []string{PlaceStandBy, PlacePowerUp, PlaceCPUOn, PlaceIdle, PlaceActive} {
			id, _ := n.PlaceByName(name)
			if m[id] < 0 || m[id] > 1 {
				t.Fatalf("place %s has %d tokens at step %d", name, m[id], step)
			}
		}
	}
}

func TestMethodsList(t *testing.T) {
	ms := Methods()
	if len(ms) != 3 {
		t.Fatalf("Methods() returned %d estimators", len(ms))
	}
	names := []string{ms[0].Name(), ms[1].Name(), ms[2].Name()}
	want := []string{"Simulation", "Markov", "PetriNet"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Methods() order = %v, want %v", names, want)
		}
	}
}

// quickCfg returns a reduced-effort configuration for agreement tests.
func quickCfg(pdt, pud float64) Config {
	cfg := PaperConfig()
	cfg.PDT = pdt
	cfg.PUD = pud
	cfg.SimTime = 3000
	cfg.Warmup = 100
	cfg.Replications = 6
	return cfg
}

// TestThreeWayAgreementSmallD reproduces the headline of Table 4 row 1: at
// PUD = 0.001 all three methods agree on the steady-state percentages.
func TestThreeWayAgreementSmallD(t *testing.T) {
	cfg := quickCfg(0.5, 0.001)
	ests, err := CompareAll(cfg, Methods())
	if err != nil {
		t.Fatal(err)
	}
	sim, mkv, pn := ests[0], ests[1], ests[2]
	for _, s := range energy.States {
		if d := math.Abs(sim.Fractions[s] - mkv.Fractions[s]); d > 0.03 {
			t.Errorf("state %s: |Sim-Markov| = %v", s, d)
		}
		if d := math.Abs(sim.Fractions[s] - pn.Fractions[s]); d > 0.03 {
			t.Errorf("state %s: |Sim-PN| = %v", s, d)
		}
	}
	if d := math.Abs(sim.EnergyJ - mkv.EnergyJ); d > 2 {
		t.Errorf("|Sim-Markov| energy = %v J", d)
	}
	if d := math.Abs(sim.EnergyJ - pn.EnergyJ); d > 2 {
		t.Errorf("|Sim-PN| energy = %v J", d)
	}
}

// TestMarkovDivergesAtLargeD reproduces the paper's core finding (Tables 4
// and 5): at PUD = 10 s the Markov approximation deviates from simulation
// while the Petri net stays close.
func TestMarkovDivergesAtLargeD(t *testing.T) {
	cfg := quickCfg(0.5, 10)
	ests, err := CompareAll(cfg, Methods())
	if err != nil {
		t.Fatal(err)
	}
	sim, mkv, pn := ests[0], ests[1], ests[2]
	simMarkov, simPN := 0.0, 0.0
	for _, s := range energy.States {
		simMarkov += math.Abs(sim.Fractions[s] - mkv.Fractions[s])
		simPN += math.Abs(sim.Fractions[s] - pn.Fractions[s])
	}
	if simPN > 0.06 {
		t.Errorf("Petri net drifted from simulation at large D: total |Δ| = %v", simPN)
	}
	if simMarkov < 3*simPN || simMarkov < 0.1 {
		t.Errorf("expected Markov to diverge at D=10: Sim-Markov=%v, Sim-PN=%v", simMarkov, simPN)
	}
}

// TestPetriMatchesSimulationExactly: the Figure-3 net and the event
// simulator encode the same stochastic process, so their distributions
// agree within Monte-Carlo noise for every state at every delay scale.
func TestPetriMatchesSimulationAcrossD(t *testing.T) {
	for _, pud := range []float64{0.001, 0.3, 10} {
		cfg := quickCfg(0.5, pud)
		sim, err := Simulation{}.Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pn, err := PetriNet{}.Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range energy.States {
			tol := 3*(sim.FractionsCI[s]+pn.FractionsCI[s]) + 0.02
			if d := math.Abs(sim.Fractions[s] - pn.Fractions[s]); d > tol {
				t.Errorf("PUD=%v state %s: |Sim-PN| = %v > tol %v", pud, s, d, tol)
			}
		}
	}
}

// TestErlangMarkovBeatsPlainMarkovAtLargeD: the phase-type extension fixes
// the constant-delay weakness the paper identifies.
func TestErlangMarkovBeatsPlainMarkovAtLargeD(t *testing.T) {
	cfg := quickCfg(0.5, 10)
	cfg.SimTime = 5000
	cfg.Replications = 8
	sim, err := Simulation{}.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mkv, err := Markov{}.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	erl, err := ErlangMarkov{K: 32}.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	errMkv, errErl := 0.0, 0.0
	for _, s := range energy.States {
		errMkv += math.Abs(sim.Fractions[s] - mkv.Fractions[s])
		errErl += math.Abs(sim.Fractions[s] - erl.Fractions[s])
	}
	if errErl >= errMkv/2 {
		t.Fatalf("Erlang-Markov error %v not clearly better than Markov %v", errErl, errMkv)
	}
}

// TestCTMCCrossValidation (experiment X-4): the exponentialized net solved
// exactly as a CTMC agrees with (a) its own simulation and (b) the K=1
// Erlang chain built independently in internal/markov.
func TestCTMCCrossValidation(t *testing.T) {
	cfg := quickCfg(0.5, 0.3)
	const cap = 40
	n := BuildCPUNetExp(cfg, cap)
	exact, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := petri.Simulate(n, petri.SimOptions{Seed: 4, Warmup: 200, Duration: 30000})
	if err != nil {
		t.Fatal(err)
	}
	erl, err := ErlangMarkov{K: 1}.Estimate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s, place := range statePlaces() {
		want := exact.PlaceAvgByName(n, place)
		if d := math.Abs(simRes.PlaceAvgByName(n, place) - want); d > 0.02 {
			t.Errorf("state %s: net simulation %v vs CTMC %v", s, simRes.PlaceAvgByName(n, place), want)
		}
		if d := math.Abs(erl.Fractions[s] - want); d > 0.005 {
			t.Errorf("state %s: ErlangMarkov(K=1) %v vs net CTMC %v", s, erl.Fractions[s], want)
		}
	}
}

func TestEstimatorsRejectInvalidConfig(t *testing.T) {
	bad := PaperConfig()
	bad.Mu = 0.5 // rho > 1
	for _, e := range append(Methods(), ErlangMarkov{}) {
		if _, err := e.Estimate(bad); err == nil {
			t.Errorf("%s accepted unstable config", e.Name())
		}
	}
}

func TestCompareAllPropagatesError(t *testing.T) {
	// Invalid configurations fail fast at Runner construction, before any
	// estimator runs.
	bad := PaperConfig()
	bad.SimTime = -1
	if _, err := CompareAll(bad, Methods()); err == nil || !strings.Contains(err.Error(), "SimTime") {
		t.Fatalf("want config validation error, got %v", err)
	}
	// Estimator-level failures keep the estimator's name in the error.
	failing := AdaptEstimator(failingEstimator{})
	if _, err := CompareAll(PaperConfig(), []Estimator{failing}); err == nil ||
		!strings.Contains(err.Error(), "Failing") {
		t.Fatalf("want wrapped estimator error, got %v", err)
	}
}

// failingEstimator always errors; used to pin error propagation.
type failingEstimator struct{}

func (failingEstimator) Name() string { return "Failing" }

func (failingEstimator) Estimate(cfg Config) (*Estimate, error) {
	return nil, fmt.Errorf("deliberate failure")
}

// TestCompareAllObservesCancellation pins the deprecated-shim fix: the
// one-off comparison path must flow through the context-aware Runner.
func TestCompareAllObservesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareAllContext(ctx, PaperConfig(), Methods()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled CompareAllContext returned %v, want context.Canceled", err)
	}
}

func TestEstimateFractionsSumToOne(t *testing.T) {
	cfg := quickCfg(0.3, 0.3)
	for _, e := range append(Methods(), ErlangMarkov{K: 8}) {
		est, err := e.Estimate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := est.Fractions.Validate(1e-6); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

func TestDOTExportOfCPUNet(t *testing.T) {
	n := BuildCPUNet(PaperConfig())
	d := petri.DOT(n)
	for _, name := range []string{PlaceCPUBuffer, PlaceStandBy, TransPDT, "odot"} {
		if !strings.Contains(d, name) {
			t.Fatalf("DOT output missing %q", name)
		}
	}
}

func TestCPUNetJSONRoundTrip(t *testing.T) {
	n := BuildCPUNet(PaperConfig())
	data, err := petri.MarshalJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := petri.UnmarshalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := petri.Simulate(n, petri.SimOptions{Seed: 1, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := petri.Simulate(n2, petri.SimOptions{Seed: 1, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.PlaceAvg {
		if r1.PlaceAvg[i] != r2.PlaceAvg[i] {
			t.Fatal("JSON round-trip changed simulation behaviour")
		}
	}
}
