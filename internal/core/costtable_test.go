package core

import (
	"context"
	"encoding/json"
	"testing"
)

// TestCostSnapshotExport: running scenarios trains the model, and the
// snapshot prices work the way the Runner's own scheduler does.
func TestCostSnapshotExport(t *testing.T) {
	cfg := PaperConfig()
	cfg.SimTime = 20
	cfg.Warmup = 2
	cfg.Replications = 1
	r, err := NewRunner(WithConfig(cfg), WithMethods("markov"), WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CostSnapshot(); len(got) != 0 {
		t.Fatalf("untrained snapshot not empty: %+v", got)
	}
	if _, err := r.Run(context.Background(), Scenario{Name: "train"}); err != nil {
		t.Fatal(err)
	}
	table := r.CostSnapshot()
	ids, err := EstimatorIDs("markov")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("EstimatorIDs = %v", ids)
	}
	sample, ok := table[ids[0]]
	if !ok {
		t.Fatalf("snapshot %v has no sample under id %q", table, ids[0])
	}
	if sample.AbsSeconds <= 0 || sample.PerWorkSeconds <= 0 {
		t.Fatalf("non-positive trained sample: %+v", sample)
	}
	// Prediction mirrors the scheduler: min(work-scaled, absolute).
	secs, ok := table.PredictSeconds(ids[0], ConfigWork(cfg))
	if !ok || secs <= 0 {
		t.Fatalf("PredictSeconds = (%v, %v)", secs, ok)
	}
	if secs > sample.AbsSeconds+1e-12 {
		t.Fatalf("prediction %v exceeds absolute estimate %v", secs, sample.AbsSeconds)
	}
	if s := table.ScenarioSeconds(cfg, ids); s != secs {
		t.Fatalf("ScenarioSeconds %v != single-estimator prediction %v", s, secs)
	}
	if s := table.ScenarioSeconds(cfg, []string{"unknown"}); s != 0 {
		t.Fatalf("unsampled estimator priced at %v, want 0", s)
	}
	// The snapshot is a copy: mutating it does not touch the Runner.
	table[ids[0]] = CostSample{}
	if again := r.CostSnapshot(); again[ids[0]].AbsSeconds != sample.AbsSeconds {
		t.Fatal("snapshot aliases the Runner's model")
	}
}

// TestCostTableMergeAndJSON: Merge follows the EWMA rule and the table
// round-trips through its wire form.
func TestCostTableMergeAndJSON(t *testing.T) {
	a := CostTable{"e1": {PerWorkSeconds: 2, AbsSeconds: 4}}
	b := CostTable{
		"e1": {PerWorkSeconds: 4, AbsSeconds: 8},
		"e2": {PerWorkSeconds: 1, AbsSeconds: 1},
	}
	merged := a.Merge(b)
	if got := merged["e1"]; got.PerWorkSeconds != 3 || got.AbsSeconds != 6 {
		t.Fatalf("EWMA merge: %+v", got)
	}
	if got := merged["e2"]; got != b["e2"] {
		t.Fatalf("new sample not adopted: %+v", got)
	}
	data, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	var back CostTable
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back["e1"] != merged["e1"] || back["e2"] != merged["e2"] {
		t.Fatalf("JSON round trip changed the table: %+v", back)
	}
}

// TestEstimatorIDsUnknown: unknown specs fail loudly.
func TestEstimatorIDsUnknown(t *testing.T) {
	if _, err := EstimatorIDs("quantum"); err == nil {
		t.Fatal("unknown method accepted")
	}
}
