package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// sleepEstimator burns a fixed wall-clock duration per run (respecting
// cancellation) and counts invocations — the knob the deadline tests use
// to train the Runner's cost model deterministically.
type sleepEstimator struct {
	d     time.Duration
	calls *atomic.Int64
}

func (s sleepEstimator) Name() string { return "sleepy" }

func (s sleepEstimator) Estimate(cfg Config) (*Estimate, error) {
	return s.EstimateContext(context.Background(), cfg)
}

func (s sleepEstimator) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	s.calls.Add(1)
	select {
	case <-time.After(s.d):
		return &Estimate{Method: "sleepy", EnergyJ: cfg.PDT}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// trainRunner runs one scenario without a deadline so the Runner's cost
// model learns the estimator's duration.
func trainRunner(t *testing.T, r *Runner, cfg Config) {
	t.Helper()
	if _, err := r.RunAll(context.Background(), []Scenario{{Name: "train", Config: cfg}}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineSkipReportedAndNeverCached is the satellite cancellation
// test: once the cost model knows a scenario outlasts the deadline, the
// scenario must be reported as skipped — Result.Skipped set, Err wrapping
// ErrDeadlineSkipped — without ever invoking the estimator or touching the
// cache.
func TestDeadlineSkipReportedAndNeverCached(t *testing.T) {
	var calls atomic.Int64
	backend := NewMemoryBackend()
	r, err := NewRunner(
		WithConfig(PaperConfig()),
		WithEstimators(sleepEstimator{d: 300 * time.Millisecond, calls: &calls}),
		WithCacheBackend(backend),
	)
	if err != nil {
		t.Fatal(err)
	}
	trainRunner(t, r, r.BaseConfig())
	if got := calls.Load(); got != 1 {
		t.Fatalf("training ran the estimator %d times, want 1", got)
	}
	entriesAfterTraining, _ := EstimateCacheStatsOf(backend)

	// A fresh grid point under a deadline far shorter than the trained
	// 300 ms cost must be refused up front.
	fresh := r.BaseConfig()
	fresh.PDT = 0.123
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ch, err := r.RunBatch(ctx, []Scenario{{Name: "doomed", Config: fresh}})
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	for res := range ch {
		got = append(got, res)
	}
	if len(got) != 1 {
		t.Fatalf("batch emitted %d results, want 1", len(got))
	}
	res := got[0]
	if !res.Skipped {
		t.Fatalf("scenario not marked skipped: %+v", res)
	}
	if !errors.Is(res.Err, ErrDeadlineSkipped) {
		t.Fatalf("skip error = %v, want ErrDeadlineSkipped", res.Err)
	}
	if res.Estimates != nil {
		t.Fatalf("skipped scenario carries estimates: %+v", res.Estimates)
	}
	if callsNow := calls.Load(); callsNow != 1 {
		t.Fatalf("skipped scenario still invoked the estimator (%d calls)", callsNow)
	}
	if entries, _ := EstimateCacheStatsOf(backend); entries != entriesAfterTraining {
		t.Fatalf("skip changed the cache: %d entries, want %d", entries, entriesAfterTraining)
	}
}

// TestDeadlineSkipSparesCachedScenarios: prefill runs before the skip
// check, so a scenario the cache can answer completes even when its
// compute cost would exceed the deadline.
func TestDeadlineSkipSparesCachedScenarios(t *testing.T) {
	var calls atomic.Int64
	backend := NewMemoryBackend()
	r, err := NewRunner(
		WithConfig(PaperConfig()),
		WithEstimators(sleepEstimator{d: 300 * time.Millisecond, calls: &calls}),
		WithCacheBackend(backend),
	)
	if err != nil {
		t.Fatal(err)
	}
	trainRunner(t, r, r.BaseConfig())

	// Same scenario, impossible deadline: the cached estimate must land.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	results, err := r.RunAll(ctx, []Scenario{{Name: "train", Config: r.BaseConfig()}})
	if err != nil {
		t.Fatalf("cached scenario under deadline failed: %v", err)
	}
	if results[0].Skipped || results[0].Err != nil || len(results[0].Estimates) != 1 {
		t.Fatalf("cached scenario mishandled: %+v", results[0])
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("cached scenario recomputed (%d calls)", got)
	}
}

// TestDeadlineSkippingDisabled: WithDeadlineSkipping(false) restores the
// try-and-abort behaviour — the estimator starts and the deadline kills it
// mid-run.
func TestDeadlineSkippingDisabled(t *testing.T) {
	var calls atomic.Int64
	r, err := NewRunner(
		WithConfig(PaperConfig()),
		WithEstimators(sleepEstimator{d: 300 * time.Millisecond, calls: &calls}),
		WithCacheBackend(NewMemoryBackend()),
		WithDeadlineSkipping(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	trainRunner(t, r, r.BaseConfig())

	fresh := r.BaseConfig()
	fresh.PDT = 0.123
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = r.RunAll(ctx, []Scenario{{Name: "doomed", Config: fresh}})
	if err == nil {
		t.Fatal("impossible deadline succeeded")
	}
	if errors.Is(err, ErrDeadlineSkipped) {
		t.Fatalf("skipping disabled but scenario was skipped: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("estimator should have been attempted (%d calls, want 2)", got)
	}
}

// TestUntrainedRunnerNeverSkips: with no observed costs the model predicts
// nothing, so even a tight (but sufficient) deadline runs the scenario.
func TestUntrainedRunnerNeverSkips(t *testing.T) {
	var calls atomic.Int64
	r, err := NewRunner(
		WithConfig(PaperConfig()),
		WithEstimators(sleepEstimator{d: 10 * time.Millisecond, calls: &calls}),
		WithCacheBackend(NewMemoryBackend()),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results, err := r.RunAll(ctx, []Scenario{{}})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Skipped {
		t.Fatal("untrained runner skipped a scenario")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("estimator ran %d times, want 1", got)
	}
}

// TestCostModelEWMA pins the moving-average fold and the
// min(work-scaled, absolute) prediction.
func TestCostModelEWMA(t *testing.T) {
	var c costModel
	if _, ok := c.predict("x", 1); ok {
		t.Fatal("empty model predicted")
	}
	c.observe("x", 100*time.Millisecond, 1)
	if d, ok := c.predict("x", 1); !ok || d != 100*time.Millisecond {
		t.Fatalf("first observation: %v, %v", d, ok)
	}
	c.observe("x", 300*time.Millisecond, 1)
	if d, _ := c.predict("x", 1); d != 200*time.Millisecond {
		t.Fatalf("EWMA fold: %v, want 200ms", d)
	}
	// Scaling a trained model up is capped by the absolute average (the
	// analytic-solver case: O(1) cost must not extrapolate linearly)...
	if d, _ := c.predict("x", 10); d != 200*time.Millisecond {
		t.Fatalf("scale-up must cap at the absolute EWMA: %v, want 200ms", d)
	}
	// ...while scaling down follows the per-work rate (the simulator
	// case: short scenarios predict proportionally cheaper).
	if d, _ := c.predict("x", 0.01); d != 2*time.Millisecond {
		t.Fatalf("work scaling down: %v, want 2ms", d)
	}
}

// TestDeadlineSkipAnalyticScaleUp: an estimator whose cost does NOT grow
// with the horizon (analytic solvers), trained on a short scenario, must
// not be skipped on a long-horizon scenario — the absolute cost bound
// caps the work-scaled extrapolation.
func TestDeadlineSkipAnalyticScaleUp(t *testing.T) {
	var calls atomic.Int64
	r, err := NewRunner(
		WithConfig(PaperConfig()),
		WithEstimators(sleepEstimator{d: 50 * time.Millisecond, calls: &calls}),
		WithCacheBackend(NewMemoryBackend()),
	)
	if err != nil {
		t.Fatal(err)
	}
	short := r.BaseConfig()
	short.SimTime = 10
	short.Warmup = 0
	short.Replications = 1
	trainRunner(t, r, short)

	long := short
	long.SimTime = 100000 // 10000x the work; linear extrapolation says 500s
	long.PDT = 0.123
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	results, err := r.RunAll(ctx, []Scenario{{Name: "long-analytic", Config: long}})
	if err != nil {
		t.Fatalf("flat-cost estimator skipped on scale-up: %v", err)
	}
	if results[0].Skipped {
		t.Fatal("flat-cost estimator skipped on scale-up")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("estimator ran %d times, want 2", got)
	}
}

// TestDeadlineSkipScalesWithWork: a model trained on an expensive
// long-horizon scenario must not skip a cheap short-horizon one — the
// prediction is per unit of simulated work, so a scenario asking for
// 1000x less work predicts 1000x cheaper and fits the deadline.
func TestDeadlineSkipScalesWithWork(t *testing.T) {
	var calls atomic.Int64
	r, err := NewRunner(
		WithConfig(PaperConfig()),
		// The estimator's wall clock is fixed, which for the model reads
		// as "cost proportional to nothing": training on the long config
		// sets a small per-work rate, so the short config predicts far
		// under the deadline. The point is the direction of the error —
		// toward attempting, never toward skipping.
		WithEstimators(sleepEstimator{d: 200 * time.Millisecond, calls: &calls}),
		WithCacheBackend(NewMemoryBackend()),
	)
	if err != nil {
		t.Fatal(err)
	}
	long := r.BaseConfig()
	long.SimTime = 100000 // work ~ 100100*10 units in 200ms
	trainRunner(t, r, long)

	short := r.BaseConfig()
	short.SimTime = 1
	short.Warmup = 0
	short.Replications = 1
	short.PDT = 0.123
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results, err := r.RunAll(ctx, []Scenario{{Name: "cheap", Config: short}})
	if err != nil {
		t.Fatalf("cheap scenario under a generous deadline failed: %v", err)
	}
	if results[0].Skipped {
		t.Fatal("cheap scenario skipped on a model trained by an expensive one")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("estimator ran %d times, want 2", got)
	}
}

// EstimateCacheStatsOf is a tiny helper over a backend's Stats for tests.
func EstimateCacheStatsOf(b CacheBackend) (int, uint64) {
	st, err := b.Stats()
	if err != nil {
		return -1, 0
	}
	return st.Entries, st.Hits
}
