package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/markov"
	"repro/internal/petri"
	"repro/internal/workload"
)

// The paper's three methods plus the phase-type extension self-register so
// that Methods, NewEstimator and the facade's Runner find them by name.
func init() {
	simple := func(e Estimator) Factory {
		return func(arg string) (Estimator, error) {
			if arg != "" {
				return nil, fmt.Errorf("method %s takes no argument, got %q", e.Name(), arg)
			}
			return e, nil
		}
	}
	MustRegister("simulation", simple(Simulation{}), "sim")
	MustRegister("markov", simple(Markov{}))
	MustRegister("petrinet", simple(PetriNet{}), "petri", "pn")
	MustRegister("erlang", func(arg string) (Estimator, error) {
		k := 0 // ErlangMarkov defaults K to 16
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("invalid Erlang phase count %q (use erlangK, e.g. erlang16)", arg)
			}
			k = v
		}
		return ErlangMarkov{K: k}, nil
	}, "erlangmarkov")
}

// Simulation is the event-driven software simulator backend — the
// reproduction of the paper's Matlab benchmark.
type Simulation struct{}

// Name implements Estimator.
func (Simulation) Name() string { return "Simulation" }

// Estimate implements Estimator by running replicated event simulations.
func (s Simulation) Estimate(cfg Config) (*Estimate, error) {
	return s.EstimateContext(context.Background(), cfg)
}

// EstimateContext implements Estimator; a cancelled context aborts the
// replicated simulations mid-run.
func (Simulation) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	base := cpu.Config{
		Arrivals: workload.NewPoisson(cfg.Lambda),
		Service:  dist.ExpMean(1 / cfg.Mu),
		PDT:      cfg.PDT,
		PUD:      cfg.PUD,
		SimTime:  cfg.SimTime,
		Warmup:   cfg.Warmup,
		Seed:     cfg.Seed,
	}
	rep, err := cpu.RunReplicationsContext(ctx, base, cfg.Replications)
	if err != nil {
		return nil, err
	}
	est := &Estimate{
		Method:      "Simulation",
		Fractions:   rep.MeanFractions(),
		EnergyJ:     rep.EnergyJoules(cfg.Power, cfg.SimTime),
		EnergyCIJ:   rep.EnergyJoulesCI(cfg.Power, cfg.SimTime),
		MeanJobs:    rep.MeanJobs.Mean(),
		MeanLatency: rep.MeanLatency.Mean(),
	}
	for _, s := range energy.States {
		est.FractionsCI[s] = rep.FractionCI(s)
	}
	return est, nil
}

// Markov is the closed-form supplementary-variable backend (equations
// 11–24).
type Markov struct{}

// Name implements Estimator.
func (Markov) Name() string { return "Markov" }

// Estimate implements Estimator by evaluating the paper's closed forms.
// Energy follows equation 24 with N = lambda * SimTime jobs, the paper's
// accounting for the Figure-5 horizon.
func (m Markov) Estimate(cfg Config) (*Estimate, error) {
	return m.EstimateContext(context.Background(), cfg)
}

// EstimateContext implements Estimator. The closed forms evaluate in
// microseconds, so the context is only checked once up front.
func (Markov) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	m := markov.CPUModel{Lambda: cfg.Lambda, Mu: cfg.Mu, T: cfg.PDT, D: cfg.PUD}
	n := int(cfg.Lambda * cfg.SimTime)
	return &Estimate{
		Method:      "Markov",
		Fractions:   m.StateProbs(),
		EnergyJ:     m.EnergyJoules(cfg.Power, n),
		MeanJobs:    m.MeanJobs(),
		MeanLatency: m.MeanLatency(),
	}, nil
}

// PetriNet is the Figure-3 EDSPN backend, executed by the stochastic
// Petri-net engine with race-enabling memory.
type PetriNet struct{}

// Name implements Estimator.
func (PetriNet) Name() string { return "PetriNet" }

// Estimate implements Estimator by simulating the net and reading the
// steady-state percentages off the time-averaged token counts (paper §4.2),
// then applying equation 25.
func (p PetriNet) Estimate(cfg Config) (*Estimate, error) {
	return p.EstimateContext(context.Background(), cfg)
}

// EstimateContext implements Estimator; a cancelled context aborts the
// Petri-net replications mid-simulation.
func (PetriNet) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := BuildCPUNet(cfg)
	rep, err := petri.SimulateReplicationsContext(ctx, n, petri.SimOptions{
		Seed:     cfg.Seed + 0x5bf03635,
		Warmup:   cfg.Warmup,
		Duration: cfg.SimTime,
	}, cfg.Replications)
	if err != nil {
		return nil, err
	}
	var f, ci energy.Fractions
	for s, place := range statePlaces() {
		id, ok := n.PlaceByName(place)
		if !ok {
			return nil, fmt.Errorf("core: net is missing place %q", place)
		}
		f[s] = rep.PlaceAvg[id].Mean()
		ci[s] = rep.PlaceAvg[id].CI(0.95)
	}
	bufID, _ := n.PlaceByName(PlaceCPUBuffer)
	actID, _ := n.PlaceByName(PlaceActive)
	meanJobs := rep.PlaceAvg[bufID].Mean() + rep.PlaceAvg[actID].Mean()
	energyCI := 0.0
	for s := range ci {
		energyCI += ci[s] * cfg.Power.MW[s]
	}
	return &Estimate{
		Method:      "PetriNet",
		Fractions:   f,
		FractionsCI: ci,
		EnergyJ:     cfg.Power.EnergyJoules(f, cfg.SimTime),
		EnergyCIJ:   energyCI * cfg.SimTime / 1000,
		MeanJobs:    meanJobs,
		MeanLatency: meanJobs / cfg.Lambda,
	}, nil
}

// statePlaces maps each power state to the Figure-3 place whose average
// token count measures it.
func statePlaces() map[energy.State]string {
	return map[energy.State]string{
		energy.Standby: PlaceStandBy,
		energy.PowerUp: PlacePowerUp,
		energy.Idle:    PlaceIdle,
		energy.Active:  PlaceActive,
	}
}

// ErlangMarkov is the phase-type extension (experiment X-1): an exact CTMC
// whose Erlang-K stages approximate the deterministic delays, implementing
// the "constant delays in Markov chains" method the paper's conclusion asks
// for.
type ErlangMarkov struct {
	// K is the number of phases per deterministic delay (default 16).
	K int
}

// Name implements Estimator.
func (e ErlangMarkov) Name() string { return fmt.Sprintf("ErlangMarkov(K=%d)", e.k()) }

func (e ErlangMarkov) k() int {
	if e.K == 0 {
		return 16
	}
	return e.K
}

// Estimate implements Estimator by solving the phase-expanded CTMC.
func (e ErlangMarkov) Estimate(cfg Config) (*Estimate, error) {
	return e.EstimateContext(context.Background(), cfg)
}

// EstimateContext implements Estimator. The context is threaded into the
// stationary solve's linear-algebra iterations, so a cancelled context
// aborts the phase-expanded CTMC mid-factorization (which dominates the
// call at large K), not just up front.
func (e ErlangMarkov) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	res, err := markov.ErlangCPU{
		Lambda: cfg.Lambda, Mu: cfg.Mu, T: cfg.PDT, D: cfg.PUD, K: e.k(),
	}.SolveContext(ctx)
	if err != nil {
		return nil, err
	}
	return &Estimate{
		Method:      e.Name(),
		Fractions:   res.Fractions,
		EnergyJ:     res.EnergyJoulesOver(cfg.Power, cfg.SimTime),
		MeanJobs:    res.MeanJobs,
		MeanLatency: res.MeanJobs / cfg.Lambda,
	}, nil
}
