package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
)

// ExampleCompareAll runs the paper's three methods on one configuration.
func ExampleCompareAll() {
	cfg := core.PaperConfig()
	cfg.PDT = 0.5
	cfg.PUD = 0.001
	cfg.SimTime = 2000
	cfg.Replications = 5

	ests, err := core.CompareAll(cfg, core.Methods())
	if err != nil {
		panic(err)
	}
	for _, e := range ests {
		fmt.Printf("%-10s active %.2f\n", e.Method, e.Fractions[energy.Active])
	}
	// Output:
	// Simulation active 0.10
	// Markov     active 0.10
	// PetriNet   active 0.10
}

// ExampleMarkov evaluates the closed form alone — microseconds instead of
// a simulation run.
func ExampleMarkov() {
	cfg := core.PaperConfig()
	est, err := core.Markov{}.Estimate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mean latency %.4f s\n", est.MeanLatency)
	// Output: mean latency 0.1112 s
}
