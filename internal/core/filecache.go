package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// FileBackend is a CacheBackend over a directory of one-file-per-entry
// JSON records, shareable by concurrent processes: the shard workers of a
// split sweep (`wsnenergy shard run`) point at one cache directory and
// each grid point is simulated by whichever worker reaches it first.
//
// Entries are written atomically (temp file + rename on the same
// filesystem), so readers never observe a partial record; concurrent
// writers of the same key race benignly because equal keys always carry
// equal estimates. Each record embeds its full canonical key, and Get
// verifies it against the requested key, so a hash collision or a stale
// schema version degrades to a miss rather than a wrong result.
type FileBackend struct {
	dir  string
	hits atomic.Uint64
	seq  atomic.Uint64 // temp-file uniquifier within this process
}

// fileEntryVersion versions the on-disk record envelope (independent of
// CacheKeyVersion, which versions the key inside it).
const fileEntryVersion = 1

// fileEntry is the on-disk record: the canonical key encoding it was
// stored under, plus the estimate.
type fileEntry struct {
	Version  int             `json:"version"`
	Key      json.RawMessage `json:"key"`
	Estimate Estimate        `json:"estimate"`
}

// cacheFileSuffix names the committed entry files; in-flight writes carry
// an extra ".tmp.*" suffix so a directory scan over *.cache.json never
// sees one.
const cacheFileSuffix = ".cache.json"

// NewFileBackend opens (creating if needed) a file-backed result cache
// rooted at dir.
func NewFileBackend(dir string) (*FileBackend, error) {
	if dir == "" {
		return nil, errors.New("core: file cache directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: creating cache directory: %w", err)
	}
	return &FileBackend{dir: dir}, nil
}

// Dir returns the backend's root directory.
func (b *FileBackend) Dir() string { return b.dir }

// encodeAndPath canonically encodes the key once and derives its entry
// file from the digest of those same bytes (both Get and Put need the
// encoding *and* the path, so the key is marshaled exactly once per
// operation).
func (b *FileBackend) encodeAndPath(key CacheKey) (keyBytes []byte, path string, err error) {
	keyBytes, err = key.Encode()
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(keyBytes)
	return keyBytes, filepath.Join(b.dir, hex.EncodeToString(sum[:])+cacheFileSuffix), nil
}

// Get implements CacheBackend.
func (b *FileBackend) Get(key CacheKey) (Estimate, bool, error) {
	want, path, err := b.encodeAndPath(key)
	if err != nil {
		return Estimate{}, false, err
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return Estimate{}, false, nil
	}
	if err != nil {
		return Estimate{}, false, fmt.Errorf("core: reading cache entry: %w", err)
	}
	var entry fileEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		return Estimate{}, false, fmt.Errorf("core: corrupt cache entry %s: %w", filepath.Base(path), err)
	}
	if entry.Version != fileEntryVersion {
		// A foreign envelope version is not corruption, just a different
		// era of the store: miss.
		return Estimate{}, false, nil
	}
	// Verify the stored canonical key byte-for-byte against the requested
	// one: collisions and stale key schemas read as misses.
	if !bytes.Equal(bytes.TrimSpace(entry.Key), want) {
		return Estimate{}, false, nil
	}
	b.hits.Add(1)
	return entry.Estimate, true, nil
}

// Put implements CacheBackend.
func (b *FileBackend) Put(key CacheKey, est Estimate) error {
	keyBytes, path, err := b.encodeAndPath(key)
	if err != nil {
		return err
	}
	data, err := json.Marshal(fileEntry{Version: fileEntryVersion, Key: keyBytes, Estimate: est})
	if err != nil {
		return fmt.Errorf("core: encoding cache entry: %w", err)
	}
	// Write-to-temp + rename: the entry appears atomically under its final
	// name. The temp name is unique per (process, write) so concurrent
	// writers — including other processes sharing the directory — never
	// collide on it.
	tmp := fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), b.seq.Add(1))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: writing cache entry: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("core: committing cache entry: %w", err)
	}
	return nil
}

// Reset implements CacheBackend: it removes every committed entry in the
// directory — plus any orphaned temp files left behind by writers that
// crashed between write and rename, which nothing else ever collects —
// and zeroes this process's hit counter. A concurrent writer whose temp
// file Reset sweeps away fails its rename, which Put callers already
// treat as a dropped (best-effort) store.
func (b *FileBackend) Reset() error {
	des, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("core: listing cache directory: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.Contains(name, cacheFileSuffix) {
			continue // committed entries and their temp files only
		}
		if err := os.Remove(filepath.Join(b.dir, name)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("core: resetting cache: %w", err)
		}
	}
	b.hits.Store(0)
	return nil
}

// Stats implements CacheBackend. Entries counts committed records in the
// shared directory; Hits counts this process's successful Gets.
func (b *FileBackend) Stats() (CacheStats, error) {
	names, err := b.entries()
	if err != nil {
		return CacheStats{}, err
	}
	return CacheStats{Entries: len(names), Hits: b.hits.Load()}, nil
}

// entries lists the committed entry files in the cache directory.
func (b *FileBackend) entries() ([]string, error) {
	des, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, fmt.Errorf("core: listing cache directory: %w", err)
	}
	var names []string
	for _, de := range des {
		if name := de.Name(); strings.HasSuffix(name, cacheFileSuffix) && !de.IsDir() {
			names = append(names, name)
		}
	}
	return names, nil
}
