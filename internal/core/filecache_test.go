package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func fileKey(i int) CacheKey {
	cfg := PaperConfig()
	cfg.Seed = uint64(i)
	return CacheKey{Config: cfg, Method: "m", Estimator: "repro/internal/core.test"}
}

func TestFileBackendRoundTrip(t *testing.T) {
	b, err := NewFileBackend(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	key := fileKey(1)
	if _, ok, err := b.Get(key); ok || err != nil {
		t.Fatalf("empty cache: ok=%v err=%v", ok, err)
	}
	want := Estimate{Method: "m", EnergyJ: 123.456, MeanJobs: 0.1}
	if err := b.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := b.Get(key)
	if err != nil || !ok || got != want {
		t.Fatalf("Get = %+v, %v, %v", got, ok, err)
	}
	st, err := b.Stats()
	if err != nil || st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if st, _ := b.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("reset left %+v", st)
	}
	if _, ok, _ := b.Get(key); ok {
		t.Fatal("entry survived Reset")
	}
}

// TestFileBackendSharedDirectory: two backends over one directory see each
// other's entries — the cross-process sharing contract of sharded sweeps,
// exercised here with two independent backend values.
func TestFileBackendSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	writer, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := fileKey(7)
	want := Estimate{Method: "m", EnergyJ: 7}
	if err := writer.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := reader.Get(key)
	if err != nil || !ok || got != want {
		t.Fatalf("second backend missed the shared entry: %+v, %v, %v", got, ok, err)
	}
}

// TestFileBackendConcurrentGetPut hammers one shared directory from many
// goroutines through two backend instances (as two processes would); run
// with -race this is the concurrency test of the satellite checklist.
// Readers must only ever observe complete records.
func TestFileBackendConcurrentGetPut(t *testing.T) {
	dir := t.TempDir()
	a, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		keys       = 16
		rounds     = 30
	)
	var torn atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		backend := a
		if g%2 == 1 {
			backend = b
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % keys
				key := fileKey(i)
				// Writers racing on the same key always write the same
				// value, mirroring the determinism contract of the sweep.
				if err := backend.Put(key, Estimate{Method: "m", EnergyJ: float64(i)}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, ok, err := backend.Get(key)
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if ok && got.EnergyJ != float64(i) {
					torn.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d reads observed a value that was never written (torn or aliased entry)", n)
	}
	st, err := a.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != keys {
		t.Fatalf("directory holds %d entries, want %d", st.Entries, keys)
	}
	// No temp droppings left behind.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !strings.HasSuffix(de.Name(), cacheFileSuffix) {
			t.Fatalf("leftover non-entry file %s", de.Name())
		}
	}
}

// TestFileBackendCorruptEntry: a truncated record must read as an error
// (which the Runner treats as a miss), never as a wrong estimate.
func TestFileBackendCorruptEntry(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := fileKey(3)
	if err := b.Put(key, Estimate{EnergyJ: 3}); err != nil {
		t.Fatal(err)
	}
	_, path, err := b.encodeAndPath(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"version":1,"key":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.Get(key); ok || err == nil {
		t.Fatalf("corrupt entry: ok=%v err=%v, want miss with error", ok, err)
	}
}

// TestFileBackendKeyMismatchIsMiss: a record stored under this hash but
// encoding a different canonical key (collision, or a schema the current
// binary does not understand) must read as a miss.
func TestFileBackendKeyMismatchIsMiss(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key, other := fileKey(1), fileKey(2)
	if err := b.Put(other, Estimate{EnergyJ: 2}); err != nil {
		t.Fatal(err)
	}
	// Graft other's record onto key's path: the embedded canonical key no
	// longer matches what Get asks for.
	_, otherPath, _ := b.encodeAndPath(other)
	_, keyPath, _ := b.encodeAndPath(key)
	data, err := os.ReadFile(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(keyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.Get(key); ok || err != nil {
		t.Fatalf("aliased entry served: ok=%v err=%v, want clean miss", ok, err)
	}
}

// TestRunnerWithFileBackend: a Runner over a FileBackend memoizes across
// Runner instances sharing the directory, and Runner.ResetEstimateCache
// resets that backend — not the process-wide default.
func TestRunnerWithFileBackend(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	dir := t.TempDir()
	var calls atomic.Int64
	newRunner := func() *Runner {
		backend, err := NewFileBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(
			WithConfig(PaperConfig()),
			WithSeed(77),
			WithEstimators(AdaptEstimator(countingEstimator{calls: &calls})),
			WithCacheBackend(backend),
		)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	scenarios := pdtSweep(PaperConfig(), []float64{0, 0.25, 0.5})

	r1 := newRunner()
	first, err := r1.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("first runner ran the estimator %d times, want 3", got)
	}
	// A second Runner with its own backend value over the same directory —
	// the shape of a second worker process — must answer entirely from the
	// shared store.
	r2 := newRunner()
	second, err := r2.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("shared file cache missed: %d total calls, want 3", got)
	}
	for i := range first {
		if *first[i].Estimates[0] != *second[i].Estimates[0] {
			t.Fatalf("scenario %d: file-cached estimate differs", i)
		}
	}
	// The process-wide default cache must have stayed untouched.
	if entries, _ := EstimateCacheStats(); entries != 0 {
		t.Fatalf("file-backed runner leaked %d entries into the default cache", entries)
	}
	// Runner-level reset drains the configured backend...
	if err := r2.ResetEstimateCache(); err != nil {
		t.Fatal(err)
	}
	if st, _ := r2.CacheBackend().Stats(); st.Entries != 0 {
		t.Fatalf("Runner.ResetEstimateCache left %d entries in the file backend", st.Entries)
	}
	// ...so the next batch recomputes.
	if _, err := r2.RunAll(context.Background(), scenarios); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("after backend reset: %d total calls, want 6", got)
	}
}

// TestFileBackendUnencodableEstimate: an estimate that cannot serialize
// (infinite lifetime) fails Put cleanly; the Runner treats that as
// "don't cache" and the sweep still completes.
func TestFileBackendUnencodableEstimate(t *testing.T) {
	b, err := NewFileBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inf := Estimate{Method: "m"}
	inf.Node.LifetimeSeconds = math.Inf(1)
	if err := b.Put(fileKey(1), inf); err == nil {
		t.Fatal("infinite estimate serialized without error")
	}
	if st, _ := b.Stats(); st.Entries != 0 {
		t.Fatalf("failed Put left %d entries", st.Entries)
	}
}

// TestFileBackendResetSweepsOrphanedTmp: a writer killed between write
// and rename leaves a temp file; Reset is the collection point for those
// orphans, while unrelated files in the directory are left alone.
func TestFileBackendResetSweepsOrphanedTmp(t *testing.T) {
	dir := t.TempDir()
	b, err := NewFileBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put(fileKey(1), Estimate{EnergyJ: 1}); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(dir, "deadbeef"+cacheFileSuffix+".tmp.12345.1")
	if err := os.WriteFile(orphan, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	unrelated := filepath.Join(dir, "README")
	if err := os.WriteFile(unrelated, []byte("docs"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("Reset left the orphaned temp file behind")
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Fatal("Reset removed an unrelated file")
	}
	if st, _ := b.Stats(); st.Entries != 0 {
		t.Fatalf("Reset left %d entries", st.Entries)
	}
}

// TestNewFileBackendRejectsEmptyDir pins the constructor's validation.
func TestNewFileBackendRejectsEmptyDir(t *testing.T) {
	if _, err := NewFileBackend(""); err == nil {
		t.Fatal("empty directory accepted")
	}
	// A directory that cannot be created must surface the error.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileBackend(filepath.Join(file, "sub")); err == nil {
		t.Fatal("uncreatable directory accepted")
	}
}

// TestWithCacheBackendValidation: nil backends are a construction error.
func TestWithCacheBackendValidation(t *testing.T) {
	if _, err := NewRunner(WithCacheBackend(nil)); err == nil {
		t.Fatal("nil backend accepted")
	}
}
