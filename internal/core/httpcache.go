package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// HTTPBackend is a CacheBackend over a remote HTTP key-value endpoint —
// the memoization story for a worker fleet with no shared filesystem: a
// sweep coordinator hosts CacheHandler over its own backend, every worker
// points an HTTPBackend at it, and a grid point is simulated by whichever
// worker reaches it first, fleet-wide.
//
// The wire protocol reuses the canonical CacheKey encoding end to end: a
// lookup POSTs the encoded key, a store POSTs the same entry envelope the
// file backend persists (canonical key bytes + estimate), and Get verifies
// the returned key byte-for-byte against the requested one — so a
// confused server, a stale schema, or a draw-law mismatch degrades to a
// miss rather than a wrong result, exactly like the file backend.
//
// All methods are best-effort from the Runner's point of view: a network
// error is surfaced, and the Runner already treats backend errors as
// misses (Get) or dropped stores (Put), so an unreachable coordinator
// slows a sweep down but never changes its results.
type HTTPBackend struct {
	base   string // endpoint root, no trailing slash
	client *http.Client
	hits   atomic.Uint64
}

// NewHTTPBackend opens a remote cache rooted at base (e.g.
// "http://coordinator:8080/v1/cache"). A nil client uses a dedicated
// client with a conservative timeout; cache lookups must never stall a
// worker longer than recomputing the entry would.
func NewHTTPBackend(base string, client *http.Client) (*HTTPBackend, error) {
	if base == "" {
		return nil, errors.New("core: http cache base URL must not be empty")
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &HTTPBackend{base: strings.TrimRight(base, "/"), client: client}, nil
}

// Base returns the backend's endpoint root.
func (b *HTTPBackend) Base() string { return b.base }

// post sends body to the given cache endpoint and returns the response.
func (b *HTTPBackend) post(path string, body []byte) (*http.Response, error) {
	resp, err := b.client.Post(b.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("core: http cache %s: %w", path, err)
	}
	return resp, nil
}

// Get implements CacheBackend: POST the canonical key encoding to /get;
// 404 is a miss, 200 returns the stored entry envelope whose embedded key
// must round-trip byte-identically.
func (b *HTTPBackend) Get(key CacheKey) (Estimate, bool, error) {
	want, err := key.Encode()
	if err != nil {
		return Estimate{}, false, err
	}
	resp, err := b.post("/get", want)
	if err != nil {
		return Estimate{}, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotFound:
		return Estimate{}, false, nil
	case http.StatusOK:
	default:
		return Estimate{}, false, fmt.Errorf("core: http cache get: unexpected status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return Estimate{}, false, fmt.Errorf("core: http cache get: %w", err)
	}
	var entry fileEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		return Estimate{}, false, fmt.Errorf("core: http cache get: corrupt entry: %w", err)
	}
	if entry.Version != fileEntryVersion {
		return Estimate{}, false, nil
	}
	if !bytes.Equal(bytes.TrimSpace(entry.Key), want) {
		// A server answering with a different key is serving a different
		// entry (or a different schema era): miss, never a wrong result.
		return Estimate{}, false, nil
	}
	b.hits.Add(1)
	return entry.Estimate, true, nil
}

// Put implements CacheBackend: POST the file-backend entry envelope to
// /put.
func (b *HTTPBackend) Put(key CacheKey, est Estimate) error {
	keyBytes, err := key.Encode()
	if err != nil {
		return err
	}
	body, err := json.Marshal(fileEntry{Version: fileEntryVersion, Key: keyBytes, Estimate: est})
	if err != nil {
		return fmt.Errorf("core: encoding cache entry: %w", err)
	}
	resp, err := b.post("/put", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("core: http cache put: unexpected status %s", resp.Status)
	}
	return nil
}

// Reset implements CacheBackend: POST /reset drops every entry on the
// server and zeroes this client's hit counter.
func (b *HTTPBackend) Reset() error {
	resp, err := b.post("/reset", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("core: http cache reset: unexpected status %s", resp.Status)
	}
	b.hits.Store(0)
	return nil
}

// Stats implements CacheBackend. Entries counts the server's store; Hits
// counts this client's successful Gets, mirroring FileBackend's per-process
// accounting.
func (b *HTTPBackend) Stats() (CacheStats, error) {
	resp, err := b.client.Get(b.base + "/stats")
	if err != nil {
		return CacheStats{}, fmt.Errorf("core: http cache stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CacheStats{}, fmt.Errorf("core: http cache stats: unexpected status %s", resp.Status)
	}
	var remote cacheStatsWire
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&remote); err != nil {
		return CacheStats{}, fmt.Errorf("core: http cache stats: %w", err)
	}
	return CacheStats{Entries: remote.Entries, Hits: b.hits.Load(), Evictions: remote.Evictions}, nil
}

// cacheStatsWire is the JSON shape of the /stats endpoint. Hits reports
// the server-side backend's counter — useful for fleet observability even
// though the client's own Stats() surfaces local hits. Evictions reports
// the server-side bounding policy's drop count (0 for unbounded backends).
type cacheStatsWire struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// CacheHandler serves any CacheBackend over HTTP as the remote-KV protocol
// HTTPBackend speaks: POST /get (body: canonical key encoding), POST /put
// (body: entry envelope), POST /reset, GET /stats. Every entry passing
// through is re-validated with DecodeCacheKey, so a client from a
// different schema or draw-law era is rejected at the boundary instead of
// polluting the store.
//
// Mount it wherever fits the deployment, e.g.:
//
//	mux.Handle("/v1/cache/", http.StripPrefix("/v1/cache", core.CacheHandler(backend)))
func CacheHandler(b CacheBackend) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /get", func(w http.ResponseWriter, r *http.Request) {
		keyBytes, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		key, err := DecodeCacheKey(keyBytes)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		est, ok, err := b.Get(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if !ok {
			http.NotFound(w, r)
			return
		}
		// Re-encode the key rather than echoing the request bytes: the
		// entry the client verifies is exactly what the backend stores.
		stored, err := key.Encode()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeCacheJSON(w, fileEntry{Version: fileEntryVersion, Key: stored, Estimate: est})
	})
	mux.HandleFunc("POST /put", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var entry fileEntry
		if err := json.Unmarshal(body, &entry); err != nil {
			http.Error(w, "corrupt cache entry: "+err.Error(), http.StatusBadRequest)
			return
		}
		if entry.Version != fileEntryVersion {
			http.Error(w, fmt.Sprintf("cache entry version %d, want %d", entry.Version, fileEntryVersion), http.StatusBadRequest)
			return
		}
		key, err := DecodeCacheKey(entry.Key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := b.Put(key, entry.Estimate); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /reset", func(w http.ResponseWriter, r *http.Request) {
		if err := b.Reset(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		s, err := b.Stats()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeCacheJSON(w, cacheStatsWire{Entries: s.Entries, Hits: s.Hits, Evictions: s.Evictions})
	})
	return mux
}

// writeCacheJSON writes v as a JSON response body.
func writeCacheJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encoding errors after the header is out can only be logged by the
	// http server; the value shapes here cannot fail to marshal.
	_ = json.NewEncoder(w).Encode(v)
}
