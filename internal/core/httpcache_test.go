package core

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newCachePair starts a CacheHandler over a fresh MemoryBackend and
// returns an HTTPBackend client pointed at it.
func newCachePair(t *testing.T) (*HTTPBackend, *MemoryBackend) {
	t.Helper()
	mem := NewMemoryBackend()
	srv := httptest.NewServer(CacheHandler(mem))
	t.Cleanup(srv.Close)
	client, err := NewHTTPBackend(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return client, mem
}

// testCacheKey builds a valid key for the cache tests.
func testCacheKey(seed uint64) CacheKey {
	cfg := PaperConfig()
	cfg.Seed = seed
	return CacheKey{Config: cfg, Method: "sim", Estimator: "repro/internal/core.Simulation"}
}

func TestHTTPBackendRoundTrip(t *testing.T) {
	client, mem := newCachePair(t)
	key := testCacheKey(1)

	if _, ok, err := client.Get(key); err != nil || ok {
		t.Fatalf("empty cache Get = (%v, %v), want miss", ok, err)
	}
	want := Estimate{Method: "sim", EnergyJ: 42.5, MeanJobs: 0.125}
	if err := client.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := client.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put = (%v, %v)", ok, err)
	}
	if got != want {
		t.Fatalf("round trip changed the estimate: %+v != %+v", got, want)
	}
	// The server's store holds the entry under the decoded key, so a
	// second client (another worker) hits it too.
	if est, ok, _ := mem.Get(key); !ok || est != want {
		t.Fatal("entry did not land in the server-side backend")
	}

	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 1 || stats.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 local hit", stats)
	}
	if err := client.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := client.Get(key); ok {
		t.Fatal("entry survived Reset")
	}
	if stats, _ = client.Stats(); stats.Entries != 0 || stats.Hits != 0 {
		t.Fatalf("stats after reset = %+v", stats)
	}
}

// TestHTTPBackendCrossWorkerSharing: two clients over one server share
// entries — the fleet-memoization contract.
func TestHTTPBackendCrossWorkerSharing(t *testing.T) {
	mem := NewMemoryBackend()
	srv := httptest.NewServer(CacheHandler(mem))
	defer srv.Close()
	w1, _ := NewHTTPBackend(srv.URL, srv.Client())
	w2, _ := NewHTTPBackend(srv.URL, srv.Client())
	key := testCacheKey(7)
	est := Estimate{Method: "sim", EnergyJ: 7}
	if err := w1.Put(key, est); err != nil {
		t.Fatal(err)
	}
	got, ok, err := w2.Get(key)
	if err != nil || !ok || got != est {
		t.Fatalf("worker 2 missed worker 1's entry: (%+v, %v, %v)", got, ok, err)
	}
}

// TestHTTPBackendThroughRunner: a Runner memoizing through the HTTP
// backend computes once and serves the repeat from the remote cache.
func TestHTTPBackendThroughRunner(t *testing.T) {
	client, _ := newCachePair(t)
	cfg := PaperConfig()
	cfg.SimTime = 20
	cfg.Warmup = 2
	cfg.Replications = 1
	r, err := NewRunner(WithConfig(cfg), WithMethods("markov"), WithCacheBackend(client))
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Run(context.Background(), Scenario{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	again, err := r.Run(context.Background(), Scenario{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if *first.Estimates[0] != *again.Estimates[0] {
		t.Fatal("remote-cached repeat differs from the computed run")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits == 0 {
		t.Fatal("repeat run did not hit the remote cache")
	}
}

// TestHTTPBackendRejectsForeignEntries: the server validates entries at
// the boundary — a put from a different key schema or entry version is
// rejected, and garbage bodies are 400s, not stored entries.
func TestHTTPBackendRejectsForeignEntries(t *testing.T) {
	_, mem := newCachePair(t)
	srv := httptest.NewServer(CacheHandler(mem))
	defer srv.Close()

	post := func(path, body string) int {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/get", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage key accepted: %d", code)
	}
	if code := post("/get", `{"v":999,"drawlaw":0,"estimator":"e","method":"m","config":{}}`); code != http.StatusBadRequest {
		t.Fatalf("foreign key version accepted: %d", code)
	}
	if code := post("/put", `{"version":999,"key":{},"estimate":{}}`); code != http.StatusBadRequest {
		t.Fatalf("foreign entry version accepted: %d", code)
	}
	if code := post("/put", "{not json"); code != http.StatusBadRequest {
		t.Fatalf("garbage entry accepted: %d", code)
	}
	if s, _ := mem.Stats(); s.Entries != 0 {
		t.Fatalf("rejected entries landed in the store: %+v", s)
	}
}

// TestHTTPBackendUnreachable: a dead coordinator yields errors, which the
// Runner treats as misses — never wrong results, never a panic.
func TestHTTPBackendUnreachable(t *testing.T) {
	srv := httptest.NewServer(CacheHandler(NewMemoryBackend()))
	url := srv.URL
	srv.Close() // now unreachable
	client, err := NewHTTPBackend(url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := client.Get(testCacheKey(1)); err == nil || ok {
		t.Fatal("Get against a dead server must error")
	}
	if err := client.Put(testCacheKey(1), Estimate{}); err == nil {
		t.Fatal("Put against a dead server must error")
	}
	if _, err := client.Stats(); err == nil {
		t.Fatal("Stats against a dead server must error")
	}
	if _, err := NewHTTPBackend("", nil); err == nil {
		t.Fatal("empty base URL accepted")
	}
}
