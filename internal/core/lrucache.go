package core

import (
	"container/list"
	"sync"
)

// DefaultLRUEntries is the entry bound an LRUBackend falls back to when
// constructed with a non-positive capacity — the same order of magnitude as
// the MemoryBackend's epoch bound, but evicted one entry at a time.
const DefaultLRUEntries = 1 << 16

// LRUBackend is a CacheBackend bounded by least-recently-used eviction:
// when the entry count would exceed the capacity, the entry that has gone
// longest without a Get or Put is dropped and counted in
// CacheStats.Evictions. It is the backend for long-lived services — a sweep
// coordinator hosting its result cache for weeks must not grow without
// bound, and unlike the MemoryBackend's epoch eviction (drop everything,
// repopulate), LRU keeps the working set of the sweeps currently in flight
// warm while old grids age out.
//
// All methods are safe for concurrent use.
type LRUBackend struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	m      map[CacheKey]*list.Element
	hits   uint64
	evicts uint64
}

// lruEntry is one resident cache entry (the list element value).
type lruEntry struct {
	key CacheKey
	est Estimate
}

// NewLRUBackend returns an empty LRU-bounded backend holding at most max
// entries (non-positive: DefaultLRUEntries).
func NewLRUBackend(max int) *LRUBackend {
	if max <= 0 {
		max = DefaultLRUEntries
	}
	return &LRUBackend{max: max, ll: list.New(), m: make(map[CacheKey]*list.Element)}
}

// Get implements CacheBackend; a hit refreshes the entry's recency.
func (b *LRUBackend) Get(key CacheKey) (Estimate, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.m[key]
	if !ok {
		return Estimate{}, false, nil
	}
	b.ll.MoveToFront(el)
	b.hits++
	return el.Value.(*lruEntry).est, true, nil
}

// Put implements CacheBackend, evicting the least recently used entry when
// the backend is full.
func (b *LRUBackend) Put(key CacheKey, est Estimate) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.m[key]; ok {
		el.Value.(*lruEntry).est = est
		b.ll.MoveToFront(el)
		return nil
	}
	for b.ll.Len() >= b.max {
		oldest := b.ll.Back()
		if oldest == nil {
			break
		}
		b.ll.Remove(oldest)
		delete(b.m, oldest.Value.(*lruEntry).key)
		b.evicts++
	}
	b.m[key] = b.ll.PushFront(&lruEntry{key: key, est: est})
	return nil
}

// Reset implements CacheBackend.
func (b *LRUBackend) Reset() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ll = list.New()
	b.m = make(map[CacheKey]*list.Element)
	b.hits = 0
	b.evicts = 0
	return nil
}

// Stats implements CacheBackend.
func (b *LRUBackend) Stats() (CacheStats, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return CacheStats{Entries: b.ll.Len(), Hits: b.hits, Evictions: b.evicts}, nil
}
