package core

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// lruKey builds a distinct cache key per index.
func lruKey(i int) CacheKey {
	cfg := Config{Lambda: 1, Mu: 2, PDT: float64(i + 1)}
	return CacheKey{Config: cfg, Method: "markov", Estimator: "test.Estimator"}
}

func TestLRUBackendEviction(t *testing.T) {
	b := NewLRUBackend(3)
	for i := 0; i < 3; i++ {
		if err := b.Put(lruKey(i), Estimate{EnergyJ: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the least recently used.
	if _, ok, _ := b.Get(lruKey(0)); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	if err := b.Put(lruKey(3), Estimate{EnergyJ: 3}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := b.Get(lruKey(1)); ok {
		t.Fatal("least recently used key survived eviction")
	}
	for _, i := range []int{0, 2, 3} {
		if est, ok, _ := b.Get(lruKey(i)); !ok || est.EnergyJ != float64(i) {
			t.Fatalf("key %d = (%+v, %v), want resident", i, est, ok)
		}
	}
	s, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries != 3 || s.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 entries, 1 eviction", s)
	}

	// Updating a resident key evicts nothing and refreshes its recency.
	if err := b.Put(lruKey(2), Estimate{EnergyJ: 22}); err != nil {
		t.Fatal(err)
	}
	if s, _ := b.Stats(); s.Entries != 3 || s.Evictions != 1 {
		t.Fatalf("update-in-place changed bounds: %+v", s)
	}
	if est, ok, _ := b.Get(lruKey(2)); !ok || est.EnergyJ != 22 {
		t.Fatalf("update-in-place lost the new value: (%+v, %v)", est, ok)
	}

	if err := b.Reset(); err != nil {
		t.Fatal(err)
	}
	if s, _ := b.Stats(); s.Entries != 0 || s.Hits != 0 || s.Evictions != 0 {
		t.Fatalf("reset left state behind: %+v", s)
	}
}

func TestLRUBackendDefaultBound(t *testing.T) {
	b := NewLRUBackend(0)
	if b.max != DefaultLRUEntries {
		t.Fatalf("default bound = %d, want %d", b.max, DefaultLRUEntries)
	}
}

// TestLRUEvictionsOverHTTP: the eviction counter of a server-side bounded
// backend is visible through the cache wire protocol's /stats.
func TestLRUEvictionsOverHTTP(t *testing.T) {
	backend := NewLRUBackend(2)
	srv := httptest.NewServer(CacheHandler(backend))
	defer srv.Close()
	remote, err := NewHTTPBackend(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := remote.Put(lruKey(i), Estimate{EnergyJ: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Entries != 2 || s.Evictions != 2 {
		t.Fatalf("remote stats = %+v, want 2 entries, 2 evictions", s)
	}
	// The wire shape reports evictions explicitly.
	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire struct {
		Evictions uint64 `json:"evictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Evictions != 2 {
		t.Fatalf("wire evictions = %d, want 2", wire.Evictions)
	}
}
