package core

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/petri"
)

// Place and transition names of the Figure-3 net, exported so callers can
// query simulation results by the paper's names.
const (
	PlaceP0        = "P0"
	PlaceP1        = "P1"
	PlaceP6        = "P6"
	PlaceCPUBuffer = "CPU_Buffer"
	PlaceStandBy   = "Stand_By"
	PlacePowerUp   = "Power_Up"
	PlaceCPUOn     = "CPU_ON"
	PlaceIdle      = "Idle"
	PlaceActive    = "Active"

	TransAR  = "AR"  // Arrival_Rate: exponential(lambda)
	TransT1  = "T1"  // immediate, priority 4: admit job
	TransT6  = "T6"  // immediate, priority 3: standby -> power up
	TransT5  = "T5"  // immediate, priority 2: discard arrival notice when ON
	TransT2  = "T2"  // immediate, priority 1: start service
	TransSR  = "SR"  // Service_Rate: exponential(mu)
	TransPDT = "PDT" // Power_Down_Threshold: deterministic(T)
	TransPUT = "PUT" // Power_Up_Delay: deterministic(D)
)

// BuildCPUNet constructs the paper's Figure-3 EDSPN with Table-1 transition
// parameters. Two completions of the paper's prose are applied (see
// DESIGN.md §4): PUT deposits the Idle token and PDT consumes it, so that
// the time-averaged token count of each state place equals the steady-state
// fraction of time in that state.
func BuildCPUNet(cfg Config) *petri.Net {
	return buildCPUNet(cfg, dist.NewDeterministic(cfg.PDT), dist.NewDeterministic(cfg.PUD), 0)
}

// BuildCPUNetExp is the exponentialized variant used by the numerical
// cross-check (experiment X-4): the two deterministic delays are replaced
// by exponentials of the same mean and the open places are capped so the
// reachability graph is finite. With these substitutions the net is a GSPN
// solvable exactly via petri.SolveCTMC.
func BuildCPUNetExp(cfg Config, queueCap int) *petri.Net {
	var pdt, put dist.Distribution
	if cfg.PDT > 0 {
		pdt = dist.ExpMean(cfg.PDT)
	} else {
		pdt = dist.NewDeterministic(0)
	}
	if cfg.PUD > 0 {
		put = dist.ExpMean(cfg.PUD)
	} else {
		put = dist.NewDeterministic(0)
	}
	return buildCPUNet(cfg, pdt, put, queueCap)
}

// PlaceThinking is the customer pool of the closed-workload net variant.
const PlaceThinking = "Thinking"

// TransThinkDone submits a closed-workload job after its think time.
const TransThinkDone = "TD"

// BuildClosedCPUNet builds the closed-workload variant of the CPU model
// (paper §4.1: "a new task will not arrive until the current task has been
// completed"). customers tokens circulate between a Thinking pool — an
// infinite-server exponential transition, one think clock per customer —
// and the CPU, whose power-management subnet (T6/T5/T2/SR/PDT/PUT) is
// identical to Figure 3. The net carries the population invariant
// M(Thinking) + M(CPU_Buffer) + M(Active) = customers.
func BuildClosedCPUNet(cfg Config, customers int, thinkMean float64) *petri.Net {
	if customers < 1 {
		panic(fmt.Sprintf("core: closed workload needs >= 1 customers, got %d", customers))
	}
	if thinkMean <= 0 {
		panic(fmt.Sprintf("core: think time must be positive, got %v", thinkMean))
	}
	n := petri.NewNet("cpu-closed")

	thinking := n.AddPlaceInit(PlaceThinking, customers)
	p6 := n.AddPlace(PlaceP6)
	buffer := n.AddPlace(PlaceCPUBuffer)
	standBy := n.AddPlaceInit(PlaceStandBy, 1)
	powerUp := n.AddPlace(PlacePowerUp)
	cpuOn := n.AddPlace(PlaceCPUOn)
	idle := n.AddPlace(PlaceIdle)
	active := n.AddPlace(PlaceActive)

	// TD: each thinking customer independently finishes its think time
	// and submits a job (notification + work item), so the transition is
	// infinite-server.
	td := n.AddTimed(TransThinkDone, dist.ExpMean(thinkMean))
	n.Input(td, thinking, 1)
	n.Output(td, p6, 1)
	n.Output(td, buffer, 1)
	n.SetInfiniteServer(td)

	t6 := n.AddImmediate(TransT6, 3)
	n.Input(t6, standBy, 1)
	n.Input(t6, p6, 1)
	n.Output(t6, powerUp, 1)
	n.Output(t6, p6, 1)

	t5 := n.AddImmediate(TransT5, 2)
	n.Input(t5, p6, 1)
	n.Input(t5, cpuOn, 1)
	n.Output(t5, cpuOn, 1)

	t2 := n.AddImmediate(TransT2, 1)
	n.Input(t2, buffer, 1)
	n.Input(t2, cpuOn, 1)
	n.Input(t2, idle, 1)
	n.Output(t2, active, 1)
	n.Output(t2, cpuOn, 1)

	// SR returns the completed customer to the thinking pool.
	sr := n.AddTimed(TransSR, dist.NewExponential(cfg.Mu))
	n.Input(sr, active, 1)
	n.Output(sr, idle, 1)
	n.Output(sr, thinking, 1)

	pdt := n.AddTimed(TransPDT, dist.NewDeterministic(cfg.PDT))
	n.Input(pdt, cpuOn, 1)
	n.Input(pdt, idle, 1)
	n.Output(pdt, standBy, 1)
	n.Inhibitor(pdt, active, 1)
	n.Inhibitor(pdt, buffer, 1)

	put := n.AddTimed(TransPUT, dist.NewDeterministic(cfg.PUD))
	n.Input(put, powerUp, 1)
	n.Input(put, p6, 1)
	n.Output(put, cpuOn, 1)
	n.Output(put, idle, 1)

	return n
}

func buildCPUNet(cfg Config, pdtDelay, putDelay dist.Distribution, queueCap int) *petri.Net {
	n := petri.NewNet("cpu-figure3")

	p0 := n.AddPlaceInit(PlaceP0, 1)
	p1 := n.AddPlace(PlaceP1)
	p6 := n.AddPlace(PlaceP6)
	buffer := n.AddPlace(PlaceCPUBuffer)
	standBy := n.AddPlaceInit(PlaceStandBy, 1)
	powerUp := n.AddPlace(PlacePowerUp)
	cpuOn := n.AddPlace(PlaceCPUOn)
	idle := n.AddPlace(PlaceIdle)
	active := n.AddPlace(PlaceActive)
	if queueCap > 0 {
		n.SetCapacity(buffer, queueCap)
		n.SetCapacity(p6, queueCap+1)
	}

	// AR: open-workload generator. The token cycling through P0/P1 keeps
	// exactly one pending arrival timer.
	ar := n.AddTimed(TransAR, dist.NewExponential(cfg.Lambda))
	n.Input(ar, p0, 1)
	n.Output(ar, p1, 1)

	// T1 (priority 4): admit the job — re-arm the generator, notify the
	// power manager (P6) and enqueue the work item.
	t1 := n.AddImmediate(TransT1, 4)
	n.Input(t1, p1, 1)
	n.Output(t1, p0, 1)
	n.Output(t1, p6, 1)
	n.Output(t1, buffer, 1)

	// T6 (priority 3): a notification while in standby starts the wake-up;
	// the notification token is kept for PUT.
	t6 := n.AddImmediate(TransT6, 3)
	n.Input(t6, standBy, 1)
	n.Input(t6, p6, 1)
	n.Output(t6, powerUp, 1)
	n.Output(t6, p6, 1)

	// T5 (priority 2): when the CPU is already on, arrival notifications
	// are discarded so P6 cannot accumulate tokens unboundedly (paper
	// step 7).
	t5 := n.AddImmediate(TransT5, 2)
	n.Input(t5, p6, 1)
	n.Input(t5, cpuOn, 1)
	n.Output(t5, cpuOn, 1)

	// T2 (priority 1): an idle, powered-on CPU picks the next buffered job.
	t2 := n.AddImmediate(TransT2, 1)
	n.Input(t2, buffer, 1)
	n.Input(t2, cpuOn, 1)
	n.Input(t2, idle, 1)
	n.Output(t2, active, 1)
	n.Output(t2, cpuOn, 1)

	// SR: service completion.
	sr := n.AddTimed(TransSR, dist.NewExponential(cfg.Mu))
	n.Input(sr, active, 1)
	n.Output(sr, idle, 1)

	// PDT: after a contiguous idle interval (no job active, buffer empty —
	// the inhibitor arcs drawn as small circles in Figure 3) the CPU
	// powers down. Race-enabling memory restarts this timer whenever a
	// job arrives, exactly the threshold semantics of the paper.
	pdt := n.AddTimed(TransPDT, pdtDelay)
	n.Input(pdt, cpuOn, 1)
	n.Input(pdt, idle, 1)
	n.Output(pdt, standBy, 1)
	n.Inhibitor(pdt, active, 1)
	n.Inhibitor(pdt, buffer, 1)

	// PUT: the constant wake-up delay, consuming the pending notification.
	put := n.AddTimed(TransPUT, putDelay)
	n.Input(put, powerUp, 1)
	n.Input(put, p6, 1)
	n.Output(put, cpuOn, 1)
	n.Output(put, idle, 1)

	return n
}
