package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds an Estimator from an optional method-specific argument.
// The argument is the suffix of a method spec after the registered name:
// "erlang16" resolves the "erlang" factory with arg "16". Factories must
// reject arguments they do not understand.
type Factory func(arg string) (Estimator, error)

// registry maps lowercased names and aliases to factories. Estimators
// self-register from init functions; user code may add its own methods with
// Register before building a Runner.
var registry = struct {
	sync.RWMutex
	byName    map[string]Factory
	canonical []string // canonical names in registration order
}{byName: make(map[string]Factory)}

// Register adds an estimator factory under a canonical name and optional
// aliases. Names are case-insensitive. Registering a name or alias twice is
// an error, so independent packages cannot silently shadow each other.
func Register(name string, f Factory, aliases ...string) error {
	if f == nil {
		return fmt.Errorf("core: Register(%q) with nil factory", name)
	}
	keys := make([]string, 0, 1+len(aliases))
	for _, k := range append([]string{name}, aliases...) {
		keys = append(keys, strings.ToLower(strings.TrimSpace(k)))
	}
	registry.Lock()
	defer registry.Unlock()
	for i, k := range keys {
		if k == "" {
			return fmt.Errorf("core: Register(%q) with empty name or alias", name)
		}
		if _, dup := registry.byName[k]; dup {
			return fmt.Errorf("core: estimator %q already registered", k)
		}
		for _, prev := range keys[:i] {
			if k == prev {
				return fmt.Errorf("core: Register(%q) lists %q twice", name, k)
			}
		}
	}
	for _, k := range keys {
		registry.byName[k] = f
	}
	registry.canonical = append(registry.canonical, name)
	return nil
}

// MustRegister is Register for init-time use; it panics on error.
func MustRegister(name string, f Factory, aliases ...string) {
	if err := Register(name, f, aliases...); err != nil {
		panic(err)
	}
}

// Lookup returns the factory registered under the given name or alias.
func Lookup(name string) (Factory, bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.byName[strings.ToLower(strings.TrimSpace(name))]
	return f, ok
}

// MethodNames returns the canonical names of all registered estimators in
// sorted order.
func MethodNames() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := append([]string(nil), registry.canonical...)
	sort.Strings(out)
	return out
}

// NewEstimator resolves a method spec of the form name[arg] — a registered
// name or alias with an optional trailing argument, e.g. "markov", "sim",
// or "erlang16" (the "erlang" factory with arg "16"). An exact registered
// name always wins over the name+argument reading, so methods whose names
// contain digits stay resolvable.
func NewEstimator(spec string) (Estimator, error) {
	s := strings.ToLower(strings.TrimSpace(spec))
	name, arg := s, ""
	f, ok := Lookup(name)
	if !ok {
		// Split at the first digit: the prefix names the method, the
		// suffix parameterizes it.
		if i := strings.IndexFunc(s, func(r rune) bool { return r >= '0' && r <= '9' }); i > 0 {
			name, arg = s[:i], s[i:]
			f, ok = Lookup(name)
		}
	}
	if !ok {
		return nil, fmt.Errorf("core: unknown method %q (registered: %s)",
			spec, strings.Join(MethodNames(), ", "))
	}
	est, err := f(arg)
	if err != nil {
		return nil, fmt.Errorf("core: method %q: %w", spec, err)
	}
	return est, nil
}

// NewEstimators resolves a list of method specs in order.
func NewEstimators(specs ...string) ([]Estimator, error) {
	out := make([]Estimator, 0, len(specs))
	for _, s := range specs {
		est, err := NewEstimator(s)
		if err != nil {
			return nil, err
		}
		out = append(out, est)
	}
	return out, nil
}
