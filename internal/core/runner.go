package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xrand"
)

// Scenario is one evaluation point of a batch: a named model configuration.
// A zero-valued Config means "use the Runner's base configuration"; for a
// variation on the base, copy Runner.BaseConfig and modify it:
//
//	c := runner.BaseConfig()
//	c.PDT = 0.3
//	s := Scenario{Name: "PDT=0.3", Config: c}
type Scenario struct {
	// Name labels the scenario in results and logs. Optional.
	Name string
	// Config is the full model configuration for this point. The zero
	// value means the Runner's base configuration; a partially filled
	// Config (no Lambda but other fields set) is rejected rather than
	// guessed at.
	Config Config
}

// Result is the outcome of one scenario. Estimates is parallel to the
// Runner's estimator list; Err is non-nil if any estimator failed, in which
// case Estimates is nil.
type Result struct {
	// Index is the scenario's position in the RunBatch input, so consumers
	// can reorder the completion-ordered channel.
	Index int
	// Scenario echoes the input scenario.
	Scenario Scenario
	// Seed is the effective seed the scenario ran with, derived
	// deterministically from the Runner's master seed and the scenario's
	// configuration content.
	Seed uint64
	// Estimates holds one result per estimator, in estimator order.
	Estimates []*Estimate
	// Skipped reports that deadline-aware scheduling refused to start the
	// scenario because its estimated cost exceeded the remaining context
	// deadline; Err wraps ErrDeadlineSkipped and Estimates is nil.
	Skipped bool
	// Err reports the first estimator failure for this scenario.
	Err error
}

// Runner evaluates batches of scenarios across a fixed estimator set with a
// bounded worker pool. Construct it with NewRunner; a Runner is safe for
// concurrent use and reusable across batches.
type Runner struct {
	base        Config
	seed        uint64
	parallelism int
	estimators  []Estimator
	// estIDs caches each estimator's implementation identity (parallel to
	// estimators): deriving it needs reflection and string building, which
	// must not run once per cache lookup on the memoized fast path.
	estIDs       []string
	cache        bool
	backend      CacheBackend
	deriveSeeds  bool
	deadlineSkip bool
	costs        costModel
}

// runnerSettings accumulates option values before the Runner is sealed.
type runnerSettings struct {
	base           Config
	seed           uint64
	seedSet        bool
	parallelism    int
	estimators     []Estimator
	noCache        bool
	backend        CacheBackend
	rawSeeds       bool
	noDeadlineSkip bool
}

// ErrDeadlineSkipped marks a scenario that deadline-aware scheduling
// refused to start: its estimated cost exceeded the time remaining before
// the context deadline. Skipped scenarios are reported with Result.Skipped
// set, wrap this error, and are never cached.
var ErrDeadlineSkipped = errors.New("estimated cost exceeds the remaining context deadline")

// costModel tracks the observed wall-clock cost of each estimator (keyed
// by the same implementation identity the result cache uses) as two
// exponentially weighted moving averages: cost per unit of simulated work
// and absolute cost per run. A prediction is the *minimum* of the
// work-scaled and the absolute estimate, so every modeling error biases
// toward attempting, never toward skipping: a work-proportional simulator
// trained on long horizons predicts short scenarios proportionally
// (absolute would over-predict), and an O(1) analytic solver trained on
// short horizons predicts long scenarios by its flat cost (work-scaled
// would over-predict). The worst case is an under-prediction that lets a
// doomed scenario start — which the deadline then aborts, exactly the
// pre-skip behaviour. The model powers deadline-aware scheduling and is
// per-Runner so unrelated workloads (and tests) never train each other.
type costModel struct {
	mu sync.Mutex
	m  map[string]costEstimate
}

// costEstimate is one estimator's trained state: EWMA seconds per unit of
// work and EWMA seconds per run.
type costEstimate struct {
	perWork float64
	abs     float64
}

// ConfigWork scores how much simulation a config asks for: horizon times
// replications, the quantity stochastic estimators scale roughly linearly
// in. It is the work unit of the cost model, exported so planners holding
// a CostTable can price scenarios the same way the Runner does.
func ConfigWork(cfg Config) float64 {
	work := cfg.SimTime + cfg.Warmup
	if work <= 0 {
		work = 1
	}
	if cfg.Replications > 1 {
		work *= float64(cfg.Replications)
	}
	return work
}

// observe folds one completed run into the estimator's moving averages.
func (c *costModel) observe(id string, d time.Duration, work float64) {
	secs := d.Seconds()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]costEstimate)
	}
	if prev, ok := c.m[id]; ok {
		c.m[id] = costEstimate{
			perWork: (prev.perWork + secs/work) / 2,
			abs:     (prev.abs + secs) / 2,
		}
	} else {
		c.m[id] = costEstimate{perWork: secs / work, abs: secs}
	}
}

// predict returns the cost estimate for running an estimator over the
// given amount of work: min(work-scaled, absolute). ok is false until at
// least one run has been observed (an untrained model never causes a
// skip).
func (c *costModel) predict(id string, work float64) (time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	est, ok := c.m[id]
	if !ok {
		return 0, false
	}
	secs := est.perWork * work
	if est.abs < secs {
		secs = est.abs
	}
	return time.Duration(secs * float64(time.Second)), true
}

// CostSample is one estimator's exported cost-model state: EWMA seconds
// per unit of ConfigWork and EWMA seconds per run. The JSON shape is the
// wire form sweep workers ship their trained models to a coordinator in.
type CostSample struct {
	PerWorkSeconds float64 `json:"per_work_seconds"`
	AbsSeconds     float64 `json:"abs_seconds"`
}

// CostTable is a serializable snapshot of a Runner's trained cost model,
// keyed by estimator implementation identity (the same key the result
// cache uses — see EstimatorIDs to derive keys from method specs). A
// coordinator merges the tables its workers report and feeds predictions
// into cost-weighted shard planning.
type CostTable map[string]CostSample

// CostSnapshot exports the Runner's current cost model. The snapshot is a
// copy: later observations do not mutate it.
func (r *Runner) CostSnapshot() CostTable {
	r.costs.mu.Lock()
	defer r.costs.mu.Unlock()
	t := make(CostTable, len(r.costs.m))
	for id, est := range r.costs.m {
		t[id] = CostSample{PerWorkSeconds: est.perWork, AbsSeconds: est.abs}
	}
	return t
}

// PredictSeconds prices one estimator's run over the given amount of work
// the way the Runner's scheduler does: min(work-scaled, absolute), biasing
// every modeling error toward under- rather than over-prediction. ok is
// false for estimators the table has no sample for.
func (t CostTable) PredictSeconds(id string, work float64) (float64, bool) {
	est, ok := t[id]
	if !ok {
		return 0, false
	}
	secs := est.PerWorkSeconds * work
	if est.AbsSeconds < secs {
		secs = est.AbsSeconds
	}
	return secs, true
}

// ScenarioSeconds prices a whole scenario across estimator ids: the
// slowest single estimator (they run concurrently under the Runner's
// pair-level fan-out), scaled to the config's work. Unsampled estimators
// price as zero, so a partially trained table under-predicts — the safe
// direction for both deadline skipping and load balancing.
func (t CostTable) ScenarioSeconds(cfg Config, ids []string) float64 {
	work := ConfigWork(cfg)
	worst := 0.0
	for _, id := range ids {
		if secs, ok := t.PredictSeconds(id, work); ok && secs > worst {
			worst = secs
		}
	}
	return worst
}

// Merge folds another table into this one with the cost model's own EWMA
// rule — samples present in both average, new samples copy — and returns
// the receiver for chaining. A coordinator calls it once per worker
// report, so repeated reports converge the same way repeated observations
// do inside a Runner.
func (t CostTable) Merge(other CostTable) CostTable {
	for id, n := range other {
		if prev, ok := t[id]; ok {
			t[id] = CostSample{
				PerWorkSeconds: (prev.PerWorkSeconds + n.PerWorkSeconds) / 2,
				AbsSeconds:     (prev.AbsSeconds + n.AbsSeconds) / 2,
			}
		} else {
			t[id] = n
		}
	}
	return t
}

// EstimatorIDs resolves method specs through the registry to the estimator
// implementation identities CostTable and the result cache are keyed by.
func EstimatorIDs(specs ...string) ([]string, error) {
	ests, err := NewEstimators(specs...)
	if err != nil {
		return nil, err
	}
	ids := make([]string, len(ests))
	for i, e := range ests {
		ids[i] = estimatorID(e)
	}
	return ids, nil
}

// RunnerOption configures a Runner under construction.
type RunnerOption func(*runnerSettings) error

// WithConfig sets the base model configuration (default PaperConfig).
func WithConfig(cfg Config) RunnerOption {
	return func(s *runnerSettings) error {
		s.base = cfg
		return nil
	}
}

// WithSeed sets the master seed from which every scenario's RNG seed is
// derived (default: the base configuration's seed). Two Runners with equal
// seeds produce bit-identical results for equal batches, at any parallelism.
func WithSeed(seed uint64) RunnerOption {
	return func(s *runnerSettings) error {
		s.seed = seed
		s.seedSet = true
		return nil
	}
}

// WithParallelism bounds the number of scenarios evaluated concurrently
// (default runtime.GOMAXPROCS(0); 1 forces sequential execution).
func WithParallelism(n int) RunnerOption {
	return func(s *runnerSettings) error {
		if n < 0 {
			return fmt.Errorf("core: parallelism must be >= 0, got %d", n)
		}
		s.parallelism = n
		return nil
	}
}

// WithEstimators sets the estimator list (default Methods(), the paper's
// three in presentation order).
func WithEstimators(ests ...Estimator) RunnerOption {
	return func(s *runnerSettings) error {
		if len(ests) == 0 {
			return fmt.Errorf("core: WithEstimators needs at least one estimator")
		}
		for i, e := range ests {
			if e == nil {
				return fmt.Errorf("core: estimator %d is nil", i)
			}
		}
		s.estimators = append([]Estimator(nil), ests...)
		return nil
	}
}

// WithCache enables or disables result memoization (default enabled).
// With memoization on, a scenario whose effective configuration and
// estimator name match a previously computed result — in this Runner or
// any other — returns the cached Estimate instead of re-running the
// estimator. Disable it for estimators whose Name does not uniquely
// identify a pure function of the Config.
func WithCache(enabled bool) RunnerOption {
	return func(s *runnerSettings) error {
		s.noCache = !enabled
		return nil
	}
}

// WithCacheBackend routes the Runner's result memoization through a
// specific backend instead of the process-wide default — typically a
// FileBackend shared with other processes running shards of the same
// sweep. Setting a backend implies WithCache(true) unless WithCache(false)
// is also given.
func WithCacheBackend(b CacheBackend) RunnerOption {
	return func(s *runnerSettings) error {
		if b == nil {
			return fmt.Errorf("core: WithCacheBackend needs a non-nil backend")
		}
		s.backend = b
		return nil
	}
}

// WithDeadlineSkipping enables or disables deadline-aware scheduling
// (default enabled). When the batch context carries a deadline and the
// Runner has already observed how long an estimator takes, a scenario
// whose predicted cost exceeds the remaining time is not started: it is
// reported immediately with Result.Skipped set and an error wrapping
// ErrDeadlineSkipped, and nothing is cached for it. Scenarios answered
// entirely from the cache are never skipped. Disable it to force every
// scenario to be attempted until the deadline actually expires.
func WithDeadlineSkipping(enabled bool) RunnerOption {
	return func(s *runnerSettings) error {
		s.noDeadlineSkip = !enabled
		return nil
	}
}

// WithSeedDerivation enables or disables per-scenario seed derivation
// (default enabled). With derivation on, every scenario's effective Seed is
// derived from the Runner's master seed and the scenario's configuration
// content, so distinct grid points draw independent random streams. With
// derivation off, scenarios run with their Config.Seed exactly as given —
// the contract of the fixed-seed experiments (ErlangAblation,
// WorkloadComparison, Lifetime, CompareAll), where every method must see
// the same seed for cross-method comparability and results must reproduce
// the pre-Runner tables bit for bit.
func WithSeedDerivation(enabled bool) RunnerOption {
	return func(s *runnerSettings) error {
		s.rawSeeds = !enabled
		return nil
	}
}

// WithMethods resolves estimators by registered name through the registry,
// e.g. WithMethods("sim", "markov", "erlang32").
func WithMethods(specs ...string) RunnerOption {
	return func(s *runnerSettings) error {
		ests, err := NewEstimators(specs...)
		if err != nil {
			return err
		}
		s.estimators = ests
		return nil
	}
}

// NewRunner builds a Runner from functional options.
func NewRunner(opts ...RunnerOption) (*Runner, error) {
	s := runnerSettings{base: PaperConfig()}
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if !s.seedSet {
		s.seed = s.base.Seed
	}
	if s.parallelism == 0 {
		s.parallelism = runtime.GOMAXPROCS(0)
	}
	if len(s.estimators) == 0 {
		s.estimators = Methods()
	}
	if err := s.base.Validate(); err != nil {
		return nil, err
	}
	if s.backend == nil {
		s.backend = defaultCache
	}
	estIDs := make([]string, len(s.estimators))
	for i, e := range s.estimators {
		estIDs[i] = estimatorID(e)
	}
	return &Runner{
		base:         s.base,
		seed:         s.seed,
		parallelism:  s.parallelism,
		estimators:   s.estimators,
		estIDs:       estIDs,
		cache:        !s.noCache,
		backend:      s.backend,
		deriveSeeds:  !s.rawSeeds,
		deadlineSkip: !s.noDeadlineSkip,
	}, nil
}

// BaseConfig returns a copy of the Runner's base configuration — the
// starting point for scenario variations.
func (r *Runner) BaseConfig() Config { return r.base }

// Estimators returns the Runner's estimator list.
func (r *Runner) Estimators() []Estimator {
	return append([]Estimator(nil), r.estimators...)
}

// Parallelism returns the configured worker count.
func (r *Runner) Parallelism() int { return r.parallelism }

// CacheBackend returns the backend this Runner memoizes results through —
// the process-wide default unless WithCacheBackend overrode it. It is the
// handle tests and services use to inspect or reset exactly the cache this
// Runner sees.
func (r *Runner) CacheBackend() CacheBackend { return r.backend }

// ResetEstimateCache empties the Runner's cache backend — whichever
// backend that is, not just the process-wide default map. Tests that swap
// in a FileBackend (or any custom backend) reset it through here.
func (r *Runner) ResetEstimateCache() error { return r.backend.Reset() }

// scenarioSeed derives the deterministic RNG seed of a scenario from the
// master seed and the scenario's configuration content, diffused through
// SplitMix64 (via xrand.NewStream). Seeding by content rather than batch
// index means a grid point reproduces bit-for-bit when re-run alone or
// inside a different grid, results never depend on worker scheduling, and
// distinct points still draw statistically independent streams. By the
// same token, scenarios with identical configurations produce identical
// results; for independent replicates of one configuration, vary
// Config.Seed per scenario — it participates in the hash.
func (r *Runner) scenarioSeed(cfg Config) uint64 {
	h := r.seed
	mix := func(bits uint64) { h = xrand.NewStream(h, bits).Uint64() }
	for _, v := range []float64{
		cfg.Lambda, cfg.Mu, cfg.PDT, cfg.PUD, cfg.SimTime, cfg.Warmup,
	} {
		mix(math.Float64bits(v))
	}
	mix(uint64(cfg.Replications))
	mix(cfg.Seed)
	for _, mw := range cfg.Power.MW {
		mix(math.Float64bits(mw))
	}
	return h
}

// effectiveConfig materializes a scenario's configuration against the base.
func (r *Runner) effectiveConfig(s Scenario) (Config, error) {
	cfg := s.Config
	if cfg == (Config{}) {
		cfg = r.base
	} else if cfg.Lambda == 0 {
		// A half-filled Config (some knobs set, no arrival rate) is
		// ambiguous: refusing beats silently substituting base values.
		return Config{}, fmt.Errorf("partial scenario config (Lambda unset); copy Runner.BaseConfig() and modify it")
	}
	if r.deriveSeeds {
		cfg.Seed = r.scenarioSeed(cfg)
	}
	return cfg, nil
}

// cacheKey derives the canonical cache key of the ei-th estimator's unit
// of work on cfg.
func (r *Runner) cacheKey(cfg Config, ei int) CacheKey {
	return CacheKey{Config: cfg, Method: r.estimators[ei].Name(), Estimator: r.estIDs[ei]}
}

// cacheLookup consults the Runner's backend; a backend error is a miss
// (the cache is best-effort — a degraded backend slows the sweep down but
// never fails or changes it).
func (r *Runner) cacheLookup(key CacheKey) (*Estimate, bool) {
	est, ok, err := r.backend.Get(key)
	if err != nil || !ok {
		return nil, false
	}
	return &est, true
}

// runPair evaluates one (scenario config, estimator) unit of work, through
// the result cache when enabled. Cancelled or failed runs are never stored,
// so a mid-replication abort cannot poison the cache; completed runs train
// the Runner's cost model for deadline-aware scheduling.
func (r *Runner) runPair(ctx context.Context, cfg Config, ei int) (*Estimate, error) {
	key := r.cacheKey(cfg, ei)
	if r.cache {
		if est, ok := r.cacheLookup(key); ok {
			return est, nil
		}
	}
	start := time.Now()
	est, err := r.estimators[ei].EstimateContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	r.costs.observe(r.estIDs[ei], time.Since(start), ConfigWork(cfg))
	if r.cache {
		// Best-effort store: a backend write failure just means the next
		// evaluation of this point recomputes it.
		_ = r.backend.Put(key, *est)
	}
	return est, nil
}

// predictScenarioCost returns the Runner's cost estimate for the given
// pending estimator units of a scenario: the slowest single unit (with
// full parallelism a scenario cannot finish faster than that), scaled to
// the scenario's configured amount of work. Estimators the model has
// never observed predict as free, so an untrained Runner never skips.
func (r *Runner) predictScenarioCost(cfg Config, pending []int) time.Duration {
	work := ConfigWork(cfg)
	var worst time.Duration
	for _, ei := range pending {
		if d, ok := r.costs.predict(r.estIDs[ei], work); ok && d > worst {
			worst = d
		}
	}
	return worst
}

// scenarioState tracks the in-flight assembly of one scenario's Result
// while its estimator units run concurrently. Each unit writes its own
// slot of ests/errs; the atomic pending counter makes the last finisher —
// which observes all earlier writes — assemble and emit the Result.
type scenarioState struct {
	res     Result
	cfg     Config
	ests    []*Estimate
	errs    []error
	pending atomic.Int32
	// failed short-circuits the scenario's remaining units after the first
	// estimator error, matching the sequential runner's skip-the-rest
	// behaviour without cancelling the whole batch.
	failed atomic.Bool
}

// finish assembles the scenario's Result once every unit has reported. On
// error the lowest-indexed estimator failure is surfaced (the one a
// sequential run would have hit first) and Estimates is nil.
func (st *scenarioState) finish() Result {
	for _, err := range st.errs {
		if err != nil {
			st.res.Err = fmt.Errorf("core: scenario %d (%s): %w",
				st.res.Index, st.res.Scenario.Name, err)
			return st.res
		}
	}
	st.res.Estimates = st.ests
	return st.res
}

// RunBatch fans the batch out over the worker pool and streams results as
// scenarios complete, in arbitrary order (Result.Index restores input
// order). The unit of work is one (scenario, estimator) pair, so a single
// scenario's estimators also run concurrently — a one-scenario,
// many-estimator comparison saturates the pool just like a sweep does.
//
// The returned channel is closed when all scenarios have finished or the
// context is cancelled; after cancellation, unstarted work is dropped and
// incomplete scenarios are never emitted. The context is propagated into
// every estimator via EstimateContext, so cancellation aborts in-flight
// simulations mid-replication (between events), not just between scenarios.
func (r *Runner) RunBatch(ctx context.Context, scenarios []Scenario) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nE := len(r.estimators)
	out := make(chan Result)

	// Materialize every scenario's effective config up front: it is cheap,
	// deterministic, and lets config errors surface as immediate results
	// without occupying workers.
	states := make([]*scenarioState, len(scenarios))
	for i, s := range scenarios {
		st := &scenarioState{res: Result{Index: i, Scenario: s}}
		cfg, err := r.effectiveConfig(s)
		if err == nil {
			err = cfg.Validate()
		}
		if err != nil {
			st.res.Err = fmt.Errorf("core: scenario %d (%s): %w", i, s.Name, err)
		} else {
			st.cfg = cfg
			st.res.Seed = cfg.Seed
			st.ests = make([]*Estimate, nE)
			st.errs = make([]error, nE)
			st.pending.Store(int32(nE))
		}
		states[i] = st
	}

	type unit struct{ si, ei int }
	jobs := make(chan unit)
	workers := r.parallelism
	if max := len(scenarios) * nE; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	// The WaitGroup covers the workers and the feeder: both send on out
	// (workers emit completed scenarios, the feeder emits config errors
	// and fully-cached scenarios), so out may only close after all of
	// them have returned.
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	emit := func(res Result) {
		select {
		case out <- res:
		case <-ctx.Done():
		}
	}
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for u := range jobs {
				st := states[u.si]
				if !st.failed.Load() {
					est, err := r.runPair(ctx, st.cfg, u.ei)
					if err != nil {
						st.errs[u.ei] = fmt.Errorf("estimator %s: %w", r.estimators[u.ei].Name(), err)
						st.failed.Store(true)
					} else {
						st.ests[u.ei] = est
					}
				}
				if st.pending.Add(-1) == 0 {
					emit(st.finish())
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	go func() {
		defer wg.Done()
		defer close(jobs)
		for si, st := range states {
			if st.res.Err != nil {
				// Config-level failure: no units to run, emit directly.
				emit(st.res)
				continue
			}
			if r.cache {
				// Feed-time prefill: resolve cache hits before dispatching,
				// so memoized scenarios — the Figure-4/Figure-5 sharing
				// pattern — complete without a worker round-trip per
				// estimator. None of the scenario's units have been fed
				// yet, so the feeder owns its state exclusively here.
				for ei := range r.estimators {
					if est, ok := r.cacheLookup(r.cacheKey(st.cfg, ei)); ok {
						st.ests[ei] = est
						st.pending.Add(-1)
					}
				}
				if st.pending.Load() == 0 {
					emit(st.finish())
					continue
				}
			}
			if r.deadlineSkip {
				// Deadline-aware scheduling: a scenario predicted (from
				// this Runner's observed estimator costs) to outlast the
				// context deadline is refused up front — reported as
				// skipped, never started, never cached — instead of being
				// run and aborted mid-replication. Prefill ran first, so a
				// scenario the cache can answer completes regardless.
				if deadline, ok := ctx.Deadline(); ok {
					var pending []int
					for ei := range r.estimators {
						if st.ests[ei] == nil {
							pending = append(pending, ei)
						}
					}
					if cost := r.predictScenarioCost(st.cfg, pending); cost > 0 && cost > time.Until(deadline) {
						st.res.Skipped = true
						st.res.Err = fmt.Errorf("core: scenario %d (%s): %w (predicted %v)",
							si, st.res.Scenario.Name, ErrDeadlineSkipped, cost.Round(time.Millisecond))
						st.res.Estimates = nil
						emit(st.res)
						continue
					}
				}
			}
			for ei := 0; ei < nE; ei++ {
				if st.ests[ei] != nil {
					continue // prefilled from the cache
				}
				select {
				case jobs <- unit{si, ei}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// RunAll is RunBatch for consumers that want the whole batch: it blocks
// until every scenario has finished, returns results ordered by scenario
// index, and fails on context cancellation or the first scenario error —
// in which case the remaining unstarted scenarios are abandoned rather
// than run to completion.
func (r *Runner) RunAll(ctx context.Context, scenarios []Scenario) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := r.RunBatch(runCtx, scenarios)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(scenarios))
	seen := 0
	var firstErr error
	for res := range ch {
		results[res.Index] = res
		seen++
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
			cancel() // drop the rest of the batch
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if seen != len(scenarios) {
		return nil, fmt.Errorf("core: batch incomplete: %d of %d scenarios ran", seen, len(scenarios))
	}
	return results, nil
}

// Run evaluates a single scenario synchronously — the one-point convenience
// form of RunBatch.
func (r *Runner) Run(ctx context.Context, s Scenario) (Result, error) {
	results, err := r.RunAll(ctx, []Scenario{s})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}
