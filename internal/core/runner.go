package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/xrand"
)

// Scenario is one evaluation point of a batch: a named model configuration.
// A zero-valued Config means "use the Runner's base configuration"; for a
// variation on the base, copy Runner.BaseConfig and modify it:
//
//	c := runner.BaseConfig()
//	c.PDT = 0.3
//	s := Scenario{Name: "PDT=0.3", Config: c}
type Scenario struct {
	// Name labels the scenario in results and logs. Optional.
	Name string
	// Config is the full model configuration for this point. The zero
	// value means the Runner's base configuration; a partially filled
	// Config (no Lambda but other fields set) is rejected rather than
	// guessed at.
	Config Config
}

// Result is the outcome of one scenario. Estimates is parallel to the
// Runner's estimator list; Err is non-nil if any estimator failed, in which
// case Estimates is nil.
type Result struct {
	// Index is the scenario's position in the RunBatch input, so consumers
	// can reorder the completion-ordered channel.
	Index int
	// Scenario echoes the input scenario.
	Scenario Scenario
	// Seed is the effective seed the scenario ran with, derived
	// deterministically from the Runner's master seed and the scenario's
	// configuration content.
	Seed uint64
	// Estimates holds one result per estimator, in estimator order.
	Estimates []*Estimate
	// Err reports the first estimator failure for this scenario.
	Err error
}

// Runner evaluates batches of scenarios across a fixed estimator set with a
// bounded worker pool. Construct it with NewRunner; a Runner is safe for
// concurrent use and reusable across batches.
type Runner struct {
	base        Config
	seed        uint64
	parallelism int
	estimators  []Estimator
	cache       bool
	deriveSeeds bool
}

// runnerSettings accumulates option values before the Runner is sealed.
type runnerSettings struct {
	base        Config
	seed        uint64
	seedSet     bool
	parallelism int
	estimators  []Estimator
	noCache     bool
	rawSeeds    bool
}

// ---------------------------------------------------------------------------
// Result memoization
//
// Every estimator is a pure function of its Config (the effective seed is
// part of the Config and is derived from the master seed and the Config's
// own content), so a (config, method) pair fully determines its Estimate.
// Experiments re-evaluate identical grid points constantly — Figure 4 and
// Figure 5 run the same PDT×PUD sweep, Tables 4 and 5 repeat it per PUD —
// and separate Runners are no obstacle to sharing: equal effective configs
// mean equal results regardless of which Runner computed them. The cache
// is therefore process-wide, keyed by the full config value plus the
// estimator's concrete type and name (the type guards against two
// unrelated estimators that happen to share a Name; two estimators of the
// same type whose Name hides differing behavior must opt out via
// WithCache(false)). The cache is bounded with epoch eviction.

type estimateCacheKey struct {
	cfg    Config
	method string
	typ    reflect.Type
}

// estimateCacheMax bounds the number of memoized results (~64k entries; an
// Estimate is a small value struct).
const estimateCacheMax = 1 << 16

var estimateCache = struct {
	sync.Mutex
	m    map[estimateCacheKey]Estimate
	hits uint64
}{m: make(map[estimateCacheKey]Estimate)}

func estimateCacheLookup(k estimateCacheKey) (*Estimate, bool) {
	estimateCache.Lock()
	defer estimateCache.Unlock()
	est, ok := estimateCache.m[k]
	if !ok {
		return nil, false
	}
	estimateCache.hits++
	// Copy out: Estimate carries no reference types, so a value copy keeps
	// the cache immune to caller mutation.
	out := est
	return &out, true
}

func estimateCacheStore(k estimateCacheKey, est *Estimate) {
	estimateCache.Lock()
	defer estimateCache.Unlock()
	if len(estimateCache.m) >= estimateCacheMax {
		// Epoch eviction: drop everything and let the current workload
		// repopulate. Long-running sweep services keep memoizing their
		// recent grid instead of being pinned to the first 64k points.
		estimateCache.m = make(map[estimateCacheKey]Estimate)
	}
	estimateCache.m[k] = *est
}

// ResetEstimateCache empties the process-wide result cache (used by tests
// and by long-lived services that change estimator implementations at
// runtime — the cache assumes an estimator name always denotes the same
// pure function).
func ResetEstimateCache() {
	estimateCache.Lock()
	defer estimateCache.Unlock()
	estimateCache.m = make(map[estimateCacheKey]Estimate)
	estimateCache.hits = 0
}

// EstimateCacheStats reports the current entry and hit counts of the
// process-wide result cache.
func EstimateCacheStats() (entries int, hits uint64) {
	estimateCache.Lock()
	defer estimateCache.Unlock()
	return len(estimateCache.m), estimateCache.hits
}

// RunnerOption configures a Runner under construction.
type RunnerOption func(*runnerSettings) error

// WithConfig sets the base model configuration (default PaperConfig).
func WithConfig(cfg Config) RunnerOption {
	return func(s *runnerSettings) error {
		s.base = cfg
		return nil
	}
}

// WithSeed sets the master seed from which every scenario's RNG seed is
// derived (default: the base configuration's seed). Two Runners with equal
// seeds produce bit-identical results for equal batches, at any parallelism.
func WithSeed(seed uint64) RunnerOption {
	return func(s *runnerSettings) error {
		s.seed = seed
		s.seedSet = true
		return nil
	}
}

// WithParallelism bounds the number of scenarios evaluated concurrently
// (default runtime.GOMAXPROCS(0); 1 forces sequential execution).
func WithParallelism(n int) RunnerOption {
	return func(s *runnerSettings) error {
		if n < 0 {
			return fmt.Errorf("core: parallelism must be >= 0, got %d", n)
		}
		s.parallelism = n
		return nil
	}
}

// WithEstimators sets the estimator list (default Methods(), the paper's
// three in presentation order).
func WithEstimators(ests ...Estimator) RunnerOption {
	return func(s *runnerSettings) error {
		if len(ests) == 0 {
			return fmt.Errorf("core: WithEstimators needs at least one estimator")
		}
		for i, e := range ests {
			if e == nil {
				return fmt.Errorf("core: estimator %d is nil", i)
			}
		}
		s.estimators = append([]Estimator(nil), ests...)
		return nil
	}
}

// WithCache enables or disables result memoization (default enabled).
// With memoization on, a scenario whose effective configuration and
// estimator name match a previously computed result — in this Runner or
// any other — returns the cached Estimate instead of re-running the
// estimator. Disable it for estimators whose Name does not uniquely
// identify a pure function of the Config.
func WithCache(enabled bool) RunnerOption {
	return func(s *runnerSettings) error {
		s.noCache = !enabled
		return nil
	}
}

// WithSeedDerivation enables or disables per-scenario seed derivation
// (default enabled). With derivation on, every scenario's effective Seed is
// derived from the Runner's master seed and the scenario's configuration
// content, so distinct grid points draw independent random streams. With
// derivation off, scenarios run with their Config.Seed exactly as given —
// the contract of the fixed-seed experiments (ErlangAblation,
// WorkloadComparison, Lifetime, CompareAll), where every method must see
// the same seed for cross-method comparability and results must reproduce
// the pre-Runner tables bit for bit.
func WithSeedDerivation(enabled bool) RunnerOption {
	return func(s *runnerSettings) error {
		s.rawSeeds = !enabled
		return nil
	}
}

// WithMethods resolves estimators by registered name through the registry,
// e.g. WithMethods("sim", "markov", "erlang32").
func WithMethods(specs ...string) RunnerOption {
	return func(s *runnerSettings) error {
		ests, err := NewEstimators(specs...)
		if err != nil {
			return err
		}
		s.estimators = ests
		return nil
	}
}

// NewRunner builds a Runner from functional options.
func NewRunner(opts ...RunnerOption) (*Runner, error) {
	s := runnerSettings{base: PaperConfig()}
	for _, opt := range opts {
		if err := opt(&s); err != nil {
			return nil, err
		}
	}
	if !s.seedSet {
		s.seed = s.base.Seed
	}
	if s.parallelism == 0 {
		s.parallelism = runtime.GOMAXPROCS(0)
	}
	if len(s.estimators) == 0 {
		s.estimators = Methods()
	}
	if err := s.base.Validate(); err != nil {
		return nil, err
	}
	return &Runner{
		base:        s.base,
		seed:        s.seed,
		parallelism: s.parallelism,
		estimators:  s.estimators,
		cache:       !s.noCache,
		deriveSeeds: !s.rawSeeds,
	}, nil
}

// BaseConfig returns a copy of the Runner's base configuration — the
// starting point for scenario variations.
func (r *Runner) BaseConfig() Config { return r.base }

// Estimators returns the Runner's estimator list.
func (r *Runner) Estimators() []Estimator {
	return append([]Estimator(nil), r.estimators...)
}

// Parallelism returns the configured worker count.
func (r *Runner) Parallelism() int { return r.parallelism }

// scenarioSeed derives the deterministic RNG seed of a scenario from the
// master seed and the scenario's configuration content, diffused through
// SplitMix64 (via xrand.NewStream). Seeding by content rather than batch
// index means a grid point reproduces bit-for-bit when re-run alone or
// inside a different grid, results never depend on worker scheduling, and
// distinct points still draw statistically independent streams. By the
// same token, scenarios with identical configurations produce identical
// results; for independent replicates of one configuration, vary
// Config.Seed per scenario — it participates in the hash.
func (r *Runner) scenarioSeed(cfg Config) uint64 {
	h := r.seed
	mix := func(bits uint64) { h = xrand.NewStream(h, bits).Uint64() }
	for _, v := range []float64{
		cfg.Lambda, cfg.Mu, cfg.PDT, cfg.PUD, cfg.SimTime, cfg.Warmup,
	} {
		mix(math.Float64bits(v))
	}
	mix(uint64(cfg.Replications))
	mix(cfg.Seed)
	for _, mw := range cfg.Power.MW {
		mix(math.Float64bits(mw))
	}
	return h
}

// effectiveConfig materializes a scenario's configuration against the base.
func (r *Runner) effectiveConfig(s Scenario) (Config, error) {
	cfg := s.Config
	if cfg == (Config{}) {
		cfg = r.base
	} else if cfg.Lambda == 0 {
		// A half-filled Config (some knobs set, no arrival rate) is
		// ambiguous: refusing beats silently substituting base values.
		return Config{}, fmt.Errorf("partial scenario config (Lambda unset); copy Runner.BaseConfig() and modify it")
	}
	if r.deriveSeeds {
		cfg.Seed = r.scenarioSeed(cfg)
	}
	return cfg, nil
}

// estimatorType returns the cache-identity type of an estimator, looking
// through the AdaptEstimator shim so an adapted estimator shares cache
// entries with (and only with) its underlying implementation.
func estimatorType(e Estimator) reflect.Type {
	if a, ok := e.(interface{ Unwrap() LegacyEstimator }); ok {
		return reflect.TypeOf(a.Unwrap())
	}
	return reflect.TypeOf(e)
}

// runPair evaluates one (scenario config, estimator) unit of work, through
// the result cache when enabled. Cancelled or failed runs are never stored,
// so a mid-replication abort cannot poison the cache.
func (r *Runner) runPair(ctx context.Context, cfg Config, e Estimator) (*Estimate, error) {
	key := estimateCacheKey{cfg: cfg, method: e.Name(), typ: estimatorType(e)}
	if r.cache {
		if est, ok := estimateCacheLookup(key); ok {
			return est, nil
		}
	}
	est, err := e.EstimateContext(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if r.cache {
		estimateCacheStore(key, est)
	}
	return est, nil
}

// scenarioState tracks the in-flight assembly of one scenario's Result
// while its estimator units run concurrently. Each unit writes its own
// slot of ests/errs; the atomic pending counter makes the last finisher —
// which observes all earlier writes — assemble and emit the Result.
type scenarioState struct {
	res     Result
	cfg     Config
	ests    []*Estimate
	errs    []error
	pending atomic.Int32
	// failed short-circuits the scenario's remaining units after the first
	// estimator error, matching the sequential runner's skip-the-rest
	// behaviour without cancelling the whole batch.
	failed atomic.Bool
}

// finish assembles the scenario's Result once every unit has reported. On
// error the lowest-indexed estimator failure is surfaced (the one a
// sequential run would have hit first) and Estimates is nil.
func (st *scenarioState) finish() Result {
	for _, err := range st.errs {
		if err != nil {
			st.res.Err = fmt.Errorf("core: scenario %d (%s): %w",
				st.res.Index, st.res.Scenario.Name, err)
			return st.res
		}
	}
	st.res.Estimates = st.ests
	return st.res
}

// RunBatch fans the batch out over the worker pool and streams results as
// scenarios complete, in arbitrary order (Result.Index restores input
// order). The unit of work is one (scenario, estimator) pair, so a single
// scenario's estimators also run concurrently — a one-scenario,
// many-estimator comparison saturates the pool just like a sweep does.
//
// The returned channel is closed when all scenarios have finished or the
// context is cancelled; after cancellation, unstarted work is dropped and
// incomplete scenarios are never emitted. The context is propagated into
// every estimator via EstimateContext, so cancellation aborts in-flight
// simulations mid-replication (between events), not just between scenarios.
func (r *Runner) RunBatch(ctx context.Context, scenarios []Scenario) (<-chan Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nE := len(r.estimators)
	out := make(chan Result)

	// Materialize every scenario's effective config up front: it is cheap,
	// deterministic, and lets config errors surface as immediate results
	// without occupying workers.
	states := make([]*scenarioState, len(scenarios))
	for i, s := range scenarios {
		st := &scenarioState{res: Result{Index: i, Scenario: s}}
		cfg, err := r.effectiveConfig(s)
		if err == nil {
			err = cfg.Validate()
		}
		if err != nil {
			st.res.Err = fmt.Errorf("core: scenario %d (%s): %w", i, s.Name, err)
		} else {
			st.cfg = cfg
			st.res.Seed = cfg.Seed
			st.ests = make([]*Estimate, nE)
			st.errs = make([]error, nE)
			st.pending.Store(int32(nE))
		}
		states[i] = st
	}

	type unit struct{ si, ei int }
	jobs := make(chan unit)
	workers := r.parallelism
	if max := len(scenarios) * nE; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	// The WaitGroup covers the workers and the feeder: both send on out
	// (workers emit completed scenarios, the feeder emits config errors
	// and fully-cached scenarios), so out may only close after all of
	// them have returned.
	var wg sync.WaitGroup
	wg.Add(workers + 1)
	emit := func(res Result) {
		select {
		case out <- res:
		case <-ctx.Done():
		}
	}
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for u := range jobs {
				st := states[u.si]
				if !st.failed.Load() {
					e := r.estimators[u.ei]
					est, err := r.runPair(ctx, st.cfg, e)
					if err != nil {
						st.errs[u.ei] = fmt.Errorf("estimator %s: %w", e.Name(), err)
						st.failed.Store(true)
					} else {
						st.ests[u.ei] = est
					}
				}
				if st.pending.Add(-1) == 0 {
					emit(st.finish())
				}
				if ctx.Err() != nil {
					return
				}
			}
		}()
	}
	go func() {
		defer wg.Done()
		defer close(jobs)
		for si, st := range states {
			if st.res.Err != nil {
				// Config-level failure: no units to run, emit directly.
				emit(st.res)
				continue
			}
			if r.cache {
				// Feed-time prefill: resolve cache hits before dispatching,
				// so memoized scenarios — the Figure-4/Figure-5 sharing
				// pattern — complete without a worker round-trip per
				// estimator. None of the scenario's units have been fed
				// yet, so the feeder owns its state exclusively here.
				for ei, e := range r.estimators {
					key := estimateCacheKey{cfg: st.cfg, method: e.Name(), typ: estimatorType(e)}
					if est, ok := estimateCacheLookup(key); ok {
						st.ests[ei] = est
						st.pending.Add(-1)
					}
				}
				if st.pending.Load() == 0 {
					emit(st.finish())
					continue
				}
			}
			for ei := 0; ei < nE; ei++ {
				if st.ests[ei] != nil {
					continue // prefilled from the cache
				}
				select {
				case jobs <- unit{si, ei}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// RunAll is RunBatch for consumers that want the whole batch: it blocks
// until every scenario has finished, returns results ordered by scenario
// index, and fails on context cancellation or the first scenario error —
// in which case the remaining unstarted scenarios are abandoned rather
// than run to completion.
func (r *Runner) RunAll(ctx context.Context, scenarios []Scenario) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := r.RunBatch(runCtx, scenarios)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(scenarios))
	seen := 0
	var firstErr error
	for res := range ch {
		results[res.Index] = res
		seen++
		if res.Err != nil && firstErr == nil {
			firstErr = res.Err
			cancel() // drop the rest of the batch
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if seen != len(scenarios) {
		return nil, fmt.Errorf("core: batch incomplete: %d of %d scenarios ran", seen, len(scenarios))
	}
	return results, nil
}

// Run evaluates a single scenario synchronously — the one-point convenience
// form of RunBatch.
func (r *Runner) Run(ctx context.Context, s Scenario) (Result, error) {
	results, err := r.RunAll(ctx, []Scenario{s})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}
