package core

import (
	"context"
	"sync/atomic"
	"testing"
)

// countingEstimator counts Estimate invocations and returns a result
// derived deterministically from the config. It deliberately implements
// only the legacy (context-free) estimator shape, so the cache tests also
// exercise the AdaptEstimator shim path.
type countingEstimator struct {
	calls *atomic.Int64
}

func (c countingEstimator) Name() string { return "counting" }

func (c countingEstimator) Estimate(cfg Config) (*Estimate, error) {
	c.calls.Add(1)
	return &Estimate{Method: "counting", EnergyJ: cfg.PDT * 100, MeanJobs: cfg.Rho()}, nil
}

func cacheTestRunner(t *testing.T, calls *atomic.Int64, opts ...RunnerOption) *Runner {
	t.Helper()
	r, err := NewRunner(append([]RunnerOption{
		WithConfig(PaperConfig()),
		WithSeed(77),
		WithEstimators(AdaptEstimator(countingEstimator{calls: calls})),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// pdtSweep builds the Figure-4-style scenario grid.
func pdtSweep(base Config, pdts []float64) []Scenario {
	out := make([]Scenario, len(pdts))
	for i, pdt := range pdts {
		cfg := base
		cfg.PDT = pdt
		out[i] = Scenario{Config: cfg}
	}
	return out
}

func TestRunnerMemoizesRepeatedScenarios(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	var calls atomic.Int64
	r := cacheTestRunner(t, &calls)
	scenarios := pdtSweep(r.BaseConfig(), []float64{0, 0.25, 0.5})

	first, err := r.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("first batch ran the estimator %d times, want 3", got)
	}
	// The same grid again — the Figure 4 / Figure 5 sharing pattern — must
	// be answered entirely from the cache, including through a *different*
	// Runner with the same seed.
	r2 := cacheTestRunner(t, &calls)
	second, err := r2.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("repeat batch re-ran the estimator (%d total calls, want 3)", got)
	}
	for i := range first {
		if *first[i].Estimates[0] != *second[i].Estimates[0] {
			t.Fatalf("scenario %d: cached estimate differs from computed one", i)
		}
	}
	if entries, hits := EstimateCacheStats(); entries != 3 || hits != 3 {
		t.Fatalf("cache stats entries=%d hits=%d, want 3 and 3", entries, hits)
	}
}

func TestRunnerCacheRespectsSeedAndConfig(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	var calls atomic.Int64
	scenarios := pdtSweep(PaperConfig(), []float64{0, 0.5})

	r1 := cacheTestRunner(t, &calls)
	if _, err := r1.RunAll(context.Background(), scenarios); err != nil {
		t.Fatal(err)
	}
	// A different master seed derives different effective configs: no
	// cache hits, two more estimator runs.
	r2 := cacheTestRunner(t, &calls, WithSeed(78))
	if _, err := r2.RunAll(context.Background(), scenarios); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("distinct seeds shared cache entries: %d calls, want 4", got)
	}
}

func TestRunnerCacheDisabled(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	var calls atomic.Int64
	r := cacheTestRunner(t, &calls, WithCache(false))
	scenarios := pdtSweep(r.BaseConfig(), []float64{0.5})
	for i := 0; i < 2; i++ {
		if _, err := r.RunAll(context.Background(), scenarios); err != nil {
			t.Fatal(err)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("WithCache(false) still memoized: %d calls, want 2", got)
	}
	if entries, _ := EstimateCacheStats(); entries != 0 {
		t.Fatalf("WithCache(false) populated the cache: %d entries", entries)
	}
}

func TestRunnerCacheMutationSafe(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	var calls atomic.Int64
	r := cacheTestRunner(t, &calls)
	scenarios := pdtSweep(r.BaseConfig(), []float64{0.5})
	first, err := r.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	first[0].Estimates[0].EnergyJ = -1 // caller scribbles on the result
	second, err := r.RunAll(context.Background(), scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if second[0].Estimates[0].EnergyJ == -1 {
		t.Fatal("cache returned the mutated Estimate")
	}
}
