package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// longConfig is a scenario that would simulate for minutes of wall clock if
// cancellation failed to reach the event loop.
func longConfig() Config {
	cfg := PaperConfig()
	cfg.SimTime = 5e7
	cfg.Warmup = 0
	cfg.Replications = 2
	return cfg
}

// TestRunBatchCancelsMidReplication is the tentpole's acceptance test: a
// cancelled batch must abort inside a running replication — bounded by
// wall clock, not by the simulation horizon — returning ctx.Err(), and the
// aborted run must leave nothing behind in the estimate cache.
func TestRunBatchCancelsMidReplication(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	for _, method := range []string{"simulation", "petrinet"} {
		t.Run(method, func(t *testing.T) {
			r, err := NewRunner(WithConfig(longConfig()), WithMethods(method))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = r.RunAll(ctx, []Scenario{{Name: "long"}})
			elapsed := time.Since(start)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled RunAll returned %v, want context.Canceled", err)
			}
			// The 5e7 s horizon takes minutes uncancelled; the abort must
			// land within the event-loop polling latency plus scheduling
			// slack.
			if elapsed > 10*time.Second {
				t.Fatalf("cancellation took %v — not mid-replication", elapsed)
			}
		})
	}
	if entries, _ := EstimateCacheStats(); entries != 0 {
		t.Fatalf("cancelled runs stored %d cache entries, want 0", entries)
	}
}

// TestCacheIntactAfterCancellation: after a cancelled sweep, re-running the
// same scenario to completion must produce the same estimate as a
// cache-free evaluation — a cancelled run may neither poison the cache nor
// leave a partial result behind.
func TestCacheIntactAfterCancellation(t *testing.T) {
	ResetEstimateCache()
	t.Cleanup(ResetEstimateCache)
	cfg := PaperConfig()
	cfg.SimTime = 120
	cfg.Warmup = 10
	cfg.Replications = 2

	// Cancel a batch over the same configuration mid-flight.
	r, err := NewRunner(WithConfig(cfg), WithMethods("petrinet"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunAll(ctx, []Scenario{{}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunAll returned %v", err)
	}

	// The completed re-run must match an uncached evaluation bit for bit.
	cached, err := r.Run(context.Background(), Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	rNoCache, err := NewRunner(WithConfig(cfg), WithMethods("petrinet"), WithCache(false))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := rNoCache.Run(context.Background(), Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if *cached.Estimates[0] != *direct.Estimates[0] {
		t.Fatalf("post-cancellation estimate differs from direct evaluation:\ncached: %+v\ndirect: %+v",
			*cached.Estimates[0], *direct.Estimates[0])
	}
}

// TestSeedDerivationToggle pins WithSeedDerivation: off means the
// scenario's Config.Seed runs verbatim (the fixed-seed experiments'
// contract), on means it is replaced by a derived stream.
func TestSeedDerivationToggle(t *testing.T) {
	cfg := PaperConfig()
	cfg.SimTime = 60
	cfg.Warmup = 5
	cfg.Replications = 1

	raw, err := NewRunner(WithConfig(cfg), WithMethods("markov"), WithSeedDerivation(false))
	if err != nil {
		t.Fatal(err)
	}
	res, err := raw.Run(context.Background(), Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed != cfg.Seed {
		t.Fatalf("WithSeedDerivation(false): scenario ran with seed %d, want the config's %d", res.Seed, cfg.Seed)
	}

	derived, err := NewRunner(WithConfig(cfg), WithMethods("markov"))
	if err != nil {
		t.Fatal(err)
	}
	res, err = derived.Run(context.Background(), Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seed == cfg.Seed {
		t.Fatalf("default derivation left the raw config seed %d in place", res.Seed)
	}
}

// TestEstimatorFanOutWithinScenario: the pair-level refactor must run a
// single scenario's estimators concurrently. Each estimator blocks until
// released, and the release only happens once all four have reported in —
// under the old scenario-granular dispatch only one would ever start, and
// the test would time out.
func TestEstimatorFanOutWithinScenario(t *testing.T) {
	const fan = 4
	started := make(chan int, fan)
	release := make(chan struct{})
	ests := make([]Estimator, fan)
	for i := range ests {
		ests[i] = blockingEstimator{id: i, started: started, release: release}
	}
	r, err := NewRunner(
		WithEstimators(ests...),
		WithParallelism(fan),
		WithCache(false),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := r.Run(context.Background(), Scenario{})
		done <- err
	}()
	deadline := time.After(30 * time.Second)
	for i := 0; i < fan; i++ {
		select {
		case <-started:
		case <-deadline:
			t.Fatalf("only %d of %d estimators in flight concurrently", i, fan)
		}
	}
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-deadline:
		t.Fatal("single-scenario batch did not complete after release")
	}
}

// blockingEstimator announces that it started and waits until release is
// closed, proving concurrent dispatch of its scenario's sibling
// estimators.
type blockingEstimator struct {
	id      int
	started chan int
	release chan struct{}
}

func (b blockingEstimator) Name() string { return "blocking" }

func (b blockingEstimator) Estimate(cfg Config) (*Estimate, error) {
	return b.EstimateContext(context.Background(), cfg)
}

func (b blockingEstimator) EstimateContext(ctx context.Context, cfg Config) (*Estimate, error) {
	b.started <- b.id
	select {
	case <-b.release:
		return &Estimate{Method: "blocking", EnergyJ: float64(b.id)}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
