package cpu

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/workload"
)

func longRunConfig() Config {
	return Config{
		Arrivals: workload.NewPoisson(1),
		Service:  dist.ExpMean(0.1),
		PDT:      0.5,
		PUD:      0.001,
		SimTime:  5e7, // minutes of wall clock if cancellation fails
		Seed:     1,
	}
}

// TestRunContextCancelsMidSimulation: the event loop must abort between
// events with ctx.Err() instead of running to the horizon.
func TestRunContextCancelsMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunContext(ctx, longRunConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v — not mid-simulation", elapsed)
	}
}

// TestRunReplicationsContextCancels covers both replication paths: the
// parallel (closed/stateless) fan-out and the sequential stateful-source
// loop.
func TestRunReplicationsContextCancels(t *testing.T) {
	t.Run("open-source-sequential", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		_, err := RunReplicationsContext(ctx, longRunConfig(), 4)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("returned %v, want context.Canceled", err)
		}
	})
	t.Run("closed-parallel", func(t *testing.T) {
		cfg := longRunConfig()
		cfg.Arrivals = nil
		cfg.Closed = &workload.Closed{Customers: 2, Think: dist.ExpMean(1)}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		_, err := RunReplicationsContext(ctx, cfg, 4)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("returned %v, want context.Canceled", err)
		}
	})
}

// TestRunContextUncancelledMatchesRun: threading a live context through the
// event loop must not change results.
func TestRunContextUncancelledMatchesRun(t *testing.T) {
	cfg := longRunConfig()
	cfg.SimTime = 500
	cfg.Warmup = 50
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fractions != b.Fractions || a.JobsServed != b.JobsServed || a.MeanJobs != b.MeanJobs {
		t.Fatalf("RunContext diverged from Run:\n%+v\n%+v", a, b)
	}
}
