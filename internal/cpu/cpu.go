// Package cpu is the event-driven software simulator of the power-managed
// processor — the reproduction of the paper's Matlab simulator, which the
// paper treats as ground truth for both the Markov model and the Petri net.
//
// The simulated semantics follow Section 4 exactly: jobs arrive from an
// open (or closed) workload into a FIFO queue served at exponential (or
// general) service times; when the queue empties the CPU idles, and after a
// contiguous idle interval of PDT seconds it drops to standby; an arrival
// finding the CPU in standby triggers a constant PUD-second power-up before
// service resumes. The simulator reports the time fraction spent in each of
// the four power states (standby, power-up, idle, active), from which
// equation 25 yields energy.
package cpu

import (
	"context"
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Policy selects the power-management strategy.
type Policy int

const (
	// PolicyTimeout powers down after PDT seconds of contiguous idleness
	// (the paper's model).
	PolicyTimeout Policy = iota
	// PolicyNeverSleep keeps the CPU on forever (PDT = +Inf): the plain
	// M/M/1 baseline.
	PolicyNeverSleep
	// PolicyAlwaysSleep powers down the instant the queue empties
	// (PDT = 0).
	PolicyAlwaysSleep
)

func (p Policy) String() string {
	switch p {
	case PolicyTimeout:
		return "timeout"
	case PolicyNeverSleep:
		return "never-sleep"
	case PolicyAlwaysSleep:
		return "always-sleep"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Arrivals is the open-workload source. Exactly one of Arrivals and
	// Closed must be set.
	Arrivals workload.Source
	// Closed, when non-nil, selects a closed workload instead.
	Closed *workload.Closed
	// Service is the per-job service time distribution.
	Service dist.Distribution
	// PDT is the Power Down Threshold in seconds (used by PolicyTimeout).
	PDT float64
	// PUD is the Power Up Delay in seconds.
	PUD float64
	// Policy is the power-management policy (default PolicyTimeout).
	Policy Policy
	// SimTime is the measured simulation horizon in seconds.
	SimTime float64
	// Warmup is simulated before measurement starts.
	Warmup float64
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if (c.Arrivals == nil) == (c.Closed == nil) {
		return fmt.Errorf("cpu: exactly one of Arrivals and Closed must be set")
	}
	if c.Closed != nil {
		if err := c.Closed.Validate(); err != nil {
			return err
		}
	}
	if c.Service == nil {
		return fmt.Errorf("cpu: Service distribution is required")
	}
	if c.PDT < 0 || math.IsNaN(c.PDT) {
		return fmt.Errorf("cpu: PDT must be non-negative, got %v", c.PDT)
	}
	if c.PUD < 0 || math.IsNaN(c.PUD) {
		return fmt.Errorf("cpu: PUD must be non-negative, got %v", c.PUD)
	}
	if c.SimTime <= 0 {
		return fmt.Errorf("cpu: SimTime must be positive, got %v", c.SimTime)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("cpu: Warmup must be non-negative, got %v", c.Warmup)
	}
	return nil
}

// Result reports one simulation run.
type Result struct {
	// Fractions is the measured share of time per power state.
	Fractions energy.Fractions
	// JobsArrived and JobsServed count jobs during the measured period.
	JobsArrived, JobsServed uint64
	// MeanJobs is the time-averaged number of jobs in the system.
	MeanJobs float64
	// MeanLatency is the mean sojourn time of jobs completed during the
	// measured period.
	MeanLatency float64
	// MaxQueue is the largest number of jobs simultaneously in the system.
	MaxQueue int
	// PowerCycles counts standby -> power-up transitions.
	PowerCycles uint64
}

// EnergyJoules applies equation 25 over the measured horizon.
func (r *Result) EnergyJoules(p energy.PowerModel, seconds float64) float64 {
	return p.EnergyJoules(r.Fractions, seconds)
}

// job tracks one queued task.
type job struct {
	arrival  float64
	customer int // closed-workload customer id, -1 for open
}

// sim is the run state.
type sim struct {
	cfg   Config
	rng   *xrand.Rand
	des   *des.Simulator
	state energy.State
	queue []job
	trace *traceCollector

	pdtHandle des.Handle

	lastT   float64
	fracAcc [energy.NumStates]float64
	// warmupQueueIntegral snapshots the queue-length integral at the
	// warmup boundary so MeanJobs covers only the measured window.
	warmupQueueIntegral float64
	queueAcc            stats.TimeWeighted
	latency             stats.Summary
	arrived             uint64
	served              uint64
	maxQueue            int
	cycles              uint64
	exhausted           bool // open-workload source returned +Inf
}

// Run executes one simulation and returns the measured result.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: the event loop polls the
// context every few hundred dispatched events and a cancelled context
// aborts the run mid-simulation with ctx.Err().
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return runInternal(ctx, cfg, nil)
}

// runInternal is the shared body of Run and RunWithTrace; trace may be nil.
func runInternal(ctx context.Context, cfg Config, trace *traceCollector) (*Result, error) {
	s := &sim{
		cfg:   cfg,
		rng:   xrand.NewStream(cfg.Seed, 0),
		des:   des.New(),
		state: energy.Standby,
		trace: trace,
	}
	s.queueAcc.Start(0, 0)
	if trace != nil {
		trace.onState(0, s.state)
	}

	if cfg.Closed != nil {
		for c := 0; c < cfg.Closed.Customers; c++ {
			customer := c
			s.des.Schedule(cfg.Closed.Think.Sample(s.rng), 0, func() { s.arrive(customer) })
		}
	} else {
		s.scheduleNextArrival()
	}

	horizon := cfg.Warmup + cfg.SimTime
	if _, err := s.des.RunUntilContext(ctx, horizon); err != nil {
		return nil, err
	}
	s.integrateTo(horizon)
	s.queueAcc.Advance(horizon)

	res := &Result{
		JobsArrived: s.arrived,
		JobsServed:  s.served,
		MeanLatency: s.latency.Mean(),
		MaxQueue:    s.maxQueue,
		PowerCycles: s.cycles,
	}
	for i := range s.fracAcc {
		res.Fractions[i] = s.fracAcc[i] / cfg.SimTime
	}
	// Queue integral over the measured window only.
	res.MeanJobs = (s.queueAcc.Integral(horizon) - s.warmupQueueIntegral) / cfg.SimTime
	return res, nil
}

// warmupQueueIntegral is captured when the clock first passes the warmup
// boundary; see integrateTo.
func (s *sim) integrateTo(now float64) {
	from := s.lastT
	if from < s.cfg.Warmup {
		from = s.cfg.Warmup
	}
	if now > from {
		s.fracAcc[s.state] += now - from
	}
	if s.lastT < s.cfg.Warmup && now >= s.cfg.Warmup {
		s.warmupQueueIntegral = s.queueAcc.Integral(s.cfg.Warmup)
	}
	s.lastT = now
}

// setState accumulates elapsed time in the old state and switches.
func (s *sim) setState(ns energy.State) {
	s.integrateTo(s.des.Now())
	s.state = ns
	if s.trace != nil {
		s.trace.onState(s.des.Now(), ns)
	}
}

func (s *sim) setQueueLen(n int) {
	s.queueAcc.Set(s.des.Now(), float64(n))
	if n > s.maxQueue {
		s.maxQueue = n
	}
}

func (s *sim) scheduleNextArrival() {
	gap := s.cfg.Arrivals.Next(s.rng)
	if math.IsInf(gap, 1) {
		s.exhausted = true
		return
	}
	s.des.ScheduleAfter(gap, 0, func() { s.arrive(-1) })
}

// arrive handles a job arrival (customer >= 0 for closed workloads).
func (s *sim) arrive(customer int) {
	now := s.des.Now()
	if now >= s.cfg.Warmup {
		s.arrived++
	}
	s.queue = append(s.queue, job{arrival: now, customer: customer})
	s.setQueueLen(len(s.queue))
	if customer < 0 {
		s.scheduleNextArrival()
	}
	switch s.state {
	case energy.Standby:
		s.setState(energy.PowerUp)
		s.cycles++
		s.des.ScheduleAfter(s.cfg.PUD, 0, s.powerUpDone)
	case energy.Idle:
		// Cancel the pending power-down timer and begin service.
		s.des.Cancel(s.pdtHandle)
		s.startService()
	case energy.PowerUp, energy.Active:
		// Job waits in the queue.
	}
}

func (s *sim) powerUpDone() {
	if len(s.queue) > 0 {
		s.startService()
		return
	}
	// Unreachable under the paper's semantics (power-up is triggered by an
	// arrival and nothing drains the queue during it), but harmless:
	s.becomeIdle()
}

func (s *sim) startService() {
	s.setState(energy.Active)
	service := s.cfg.Service.Sample(s.rng)
	s.des.ScheduleAfter(service, 0, s.depart)
}

func (s *sim) depart() {
	now := s.des.Now()
	j := s.queue[0]
	s.queue = s.queue[1:]
	s.setQueueLen(len(s.queue))
	if now >= s.cfg.Warmup {
		s.served++
		s.latency.Add(now - j.arrival)
	}
	if s.cfg.Closed != nil {
		customer := j.customer
		s.des.ScheduleAfter(s.cfg.Closed.Think.Sample(s.rng), 0, func() { s.arrive(customer) })
	}
	if len(s.queue) > 0 {
		s.startService()
		return
	}
	s.becomeIdle()
}

func (s *sim) becomeIdle() {
	switch s.cfg.Policy {
	case PolicyNeverSleep:
		s.setState(energy.Idle)
	case PolicyAlwaysSleep:
		s.setState(energy.Standby)
	default:
		if s.cfg.PDT == 0 {
			s.setState(energy.Standby)
			return
		}
		s.setState(energy.Idle)
		s.pdtHandle = s.des.ScheduleAfter(s.cfg.PDT, 0, func() {
			s.setState(energy.Standby)
		})
	}
}
