package cpu

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/queueing"
	"repro/internal/workload"
)

// paperConfig returns the paper's Table 2 operating point.
func paperConfig(pdt, pud float64) Config {
	return Config{
		Arrivals: workload.NewPoisson(1),
		Service:  dist.ExpMean(0.1),
		PDT:      pdt,
		PUD:      pud,
		SimTime:  20000,
		Warmup:   100,
		Seed:     1,
	}
}

func TestValidate(t *testing.T) {
	good := paperConfig(0.5, 0.001)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Arrivals = nil },
		func(c *Config) { c.Closed = &workload.Closed{Customers: 1, Think: dist.ExpMean(1)} }, // both set
		func(c *Config) { c.Service = nil },
		func(c *Config) { c.PDT = -1 },
		func(c *Config) { c.PUD = -1 },
		func(c *Config) { c.SimTime = 0 },
		func(c *Config) { c.Warmup = -1 },
	}
	for i, mutate := range cases {
		c := paperConfig(0.5, 0.001)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFractionsSumToOne(t *testing.T) {
	res, err := Run(paperConfig(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Fractions.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationIsRho: work conservation fixes the active share at
// lambda/mu regardless of the power policy.
func TestUtilizationIsRho(t *testing.T) {
	for _, pud := range []float64{0.001, 0.3, 10} {
		res, err := Run(paperConfig(0.5, pud))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Fractions[energy.Active]-0.1) > 0.01 {
			t.Fatalf("PUD=%v: active = %v, want ~0.1", pud, res.Fractions[energy.Active])
		}
	}
}

// TestIdleStandbySplit: with negligible PUD, idle periods are Exp(lambda)
// and split at the threshold: idle share : standby share =
// (1 - e^{-λT}) : e^{-λT} of the non-busy time.
func TestIdleStandbySplit(t *testing.T) {
	const T = 0.5
	res, err := Run(paperConfig(T, 1e-6))
	if err != nil {
		t.Fatal(err)
	}
	idle, standby := res.Fractions[energy.Idle], res.Fractions[energy.Standby]
	gotRatio := idle / standby
	wantRatio := math.Expm1(T) // λ = 1
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.08 {
		t.Fatalf("idle:standby = %v, want ~%v", gotRatio, wantRatio)
	}
}

// TestMM1LimitNeverSleep: PolicyNeverSleep turns the model into M/M/1.
func TestMM1LimitNeverSleep(t *testing.T) {
	cfg := paperConfig(0.5, 0.001)
	cfg.Policy = PolicyNeverSleep
	cfg.Arrivals = workload.NewPoisson(2)
	cfg.Service = dist.ExpMean(0.25) // rho = 0.5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := queueing.MM1{Lambda: 2, Mu: 4}
	if math.Abs(res.Fractions[energy.Active]-ref.Rho()) > 0.01 {
		t.Fatalf("utilization = %v, want %v", res.Fractions[energy.Active], ref.Rho())
	}
	if res.Fractions[energy.Standby] != 0 || res.Fractions[energy.PowerUp] != 0 {
		t.Fatal("never-sleep policy entered standby/powerup")
	}
	if math.Abs(res.MeanJobs-ref.MeanJobs())/ref.MeanJobs() > 0.06 {
		t.Fatalf("L = %v, want ~%v", res.MeanJobs, ref.MeanJobs())
	}
	if math.Abs(res.MeanLatency-ref.MeanLatency())/ref.MeanLatency() > 0.06 {
		t.Fatalf("W = %v, want ~%v", res.MeanLatency, ref.MeanLatency())
	}
}

// TestLittlesLaw: L = lambda W must hold within noise for the measured
// window.
func TestLittlesLaw(t *testing.T) {
	res, err := Run(paperConfig(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	lambdaEff := float64(res.JobsServed) / 20000
	if math.Abs(res.MeanJobs-lambdaEff*res.MeanLatency)/res.MeanJobs > 0.05 {
		t.Fatalf("Little's law: L=%v vs λW=%v", res.MeanJobs, lambdaEff*res.MeanLatency)
	}
}

// TestAlwaysSleepMatchesSetupQueue: PolicyAlwaysSleep with exponential
// wake-up is the classical M/M/1-with-setup queue; compare E[N] with the
// closed form.
func TestAlwaysSleepMatchesSetupQueue(t *testing.T) {
	const lambda, mu, theta = 1.0, 5.0, 2.0
	cfg := Config{
		Arrivals: workload.NewPoisson(lambda),
		Service:  dist.ExpMean(1 / mu),
		Policy:   PolicyAlwaysSleep,
		// Exponential PUD is modeled by giving PUD as the mean of an
		// exponential via a trick below; Run uses constant PUD, so here
		// we check only the OffProb/SetupProb structure with constant
		// setup ~ small and fall back to the M/M/1 limit.
		PUD:     1e-9,
		SimTime: 20000,
		Warmup:  100,
		Seed:    3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With negligible setup time, always-sleep looks like M/M/1 for jobs;
	// the CPU is in standby whenever the system is empty.
	ref := queueing.MM1{Lambda: lambda, Mu: mu}
	if math.Abs(res.Fractions[energy.Standby]-(1-ref.Rho())) > 0.01 {
		t.Fatalf("standby = %v, want %v", res.Fractions[energy.Standby], 1-ref.Rho())
	}
	if math.Abs(res.MeanJobs-ref.MeanJobs())/ref.MeanJobs() > 0.06 {
		t.Fatalf("L = %v, want ~%v", res.MeanJobs, ref.MeanJobs())
	}
	_ = theta // theta reserved for the Erlang/exponential setup variant (X-4)
}

// TestConstantSetupQueueLength: with PDT=0 and constant setup D, mean queue
// length grows with D; sanity-check against the M/G/1-type lower bound
// (M/M/1 value) and a generous upper bound.
func TestConstantSetupBacklogGrowsWithD(t *testing.T) {
	prev := -1.0
	for _, d := range []float64{0.001, 0.5, 2, 10} {
		cfg := paperConfig(0, d)
		cfg.Seed = 7
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanJobs <= prev {
			t.Fatalf("MeanJobs did not grow with D=%v: %v <= %v", d, res.MeanJobs, prev)
		}
		prev = res.MeanJobs
	}
}

func TestPowerUpFractionMatchesCycleAnalysis(t *testing.T) {
	// With PDT=0 every busy period is preceded by one power-up of D
	// seconds, and cycles repeat: E[standby] = 1/λ, E[powerup] = D,
	// busy = work of jobs arriving during (powerup + busy). For D small,
	// powerup fraction ≈ D/(1/λ + D + busyE) where busyE ≈ ρ(...)
	// Rather than the full algebra we verify the powerup share equals
	// cycles*D / simtime.
	cfg := paperConfig(0, 0.3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(res.PowerCycles) * 0.3 / 20000
	if math.Abs(res.Fractions[energy.PowerUp]-want) > 0.01 {
		t.Fatalf("powerup share %v, want ~cycles*D/T = %v", res.Fractions[energy.PowerUp], want)
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := Run(paperConfig(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(paperConfig(0.5, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fractions != r2.Fractions || r1.JobsServed != r2.JobsServed {
		t.Fatal("same seed gave different results")
	}
	cfg := paperConfig(0.5, 0.3)
	cfg.Seed = 999
	r3, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fractions == r3.Fractions {
		t.Fatal("different seeds gave identical results")
	}
}

func TestWarmupExcludesTransient(t *testing.T) {
	// Starting in standby biases early measurements toward standby; a
	// warmup long enough wipes the bias. Compare a long-warmup short
	// window against theory at T=0 (standby = 1-rho).
	cfg := paperConfig(0, 1e-9)
	cfg.Warmup = 5000
	cfg.SimTime = 20000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fractions[energy.Standby]-0.9) > 0.01 {
		t.Fatalf("standby = %v, want ~0.9", res.Fractions[energy.Standby])
	}
}

func TestClosedWorkload(t *testing.T) {
	// A single customer alternating think (mean 1) and service (mean
	// 0.1): utilization = 0.1/(1.1) by renewal-reward (with no power
	// management interference when PDT is large).
	cfg := Config{
		Closed:  &workload.Closed{Customers: 1, Think: dist.ExpMean(1)},
		Service: dist.ExpMean(0.1),
		Policy:  PolicyNeverSleep,
		SimTime: 20000,
		Warmup:  100,
		Seed:    5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.1 / 1.1
	if math.Abs(res.Fractions[energy.Active]-want) > 0.01 {
		t.Fatalf("closed utilization = %v, want ~%v", res.Fractions[energy.Active], want)
	}
	// A single customer can never queue behind itself.
	if res.MaxQueue > 1 {
		t.Fatalf("MaxQueue = %d for a single closed customer", res.MaxQueue)
	}
}

func TestClosedWorkloadMoreCustomersMoreLoad(t *testing.T) {
	util := func(n int) float64 {
		cfg := Config{
			Closed:  &workload.Closed{Customers: n, Think: dist.ExpMean(1)},
			Service: dist.ExpMean(0.1),
			Policy:  PolicyNeverSleep,
			SimTime: 10000,
			Warmup:  100,
			Seed:    6,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Fractions[energy.Active]
	}
	if !(util(1) < util(4) && util(4) < util(16)) {
		t.Fatal("closed-workload utilization not increasing in population")
	}
}

func TestTraceWorkloadStops(t *testing.T) {
	cfg := Config{
		Arrivals: workload.NewTrace([]float64{1, 1, 1}),
		Service:  dist.NewDeterministic(0.5),
		PDT:      0.25,
		PUD:      0.125,
		SimTime:  100,
		Seed:     1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsServed != 3 {
		t.Fatalf("served %d jobs from a 3-job trace", res.JobsServed)
	}
	// After the trace ends the CPU must end up in standby.
	if res.Fractions[energy.Standby] < 0.9 {
		t.Fatalf("standby share = %v; CPU did not settle", res.Fractions[energy.Standby])
	}
}

func TestReplications(t *testing.T) {
	cfg := paperConfig(0.5, 0.3)
	cfg.SimTime = 1000
	rep, err := RunReplications(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 16 {
		t.Fatalf("Replications = %d", rep.Replications)
	}
	f := rep.MeanFractions()
	if err := f.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	if rep.FractionCI(energy.Active) <= 0 {
		t.Fatal("zero CI over 16 replications")
	}
	if math.Abs(f[energy.Active]-0.1) > 3*rep.FractionCI(energy.Active)+0.01 {
		t.Fatalf("active = %v ± %v, want ~0.1", f[energy.Active], rep.FractionCI(energy.Active))
	}
}

func TestReplicationsValidation(t *testing.T) {
	if _, err := RunReplications(paperConfig(0.5, 0.3), 0); err == nil {
		t.Fatal("zero replications accepted")
	}
}

func TestEnergyJoules(t *testing.T) {
	res, err := Run(paperConfig(0.5, 0.001))
	if err != nil {
		t.Fatal(err)
	}
	e := res.EnergyJoules(energy.PXA271, 1000)
	if e < 17 || e > 193 {
		t.Fatalf("energy = %v J outside [17, 193]", e)
	}
}

// TestMD1MatchesPollaczekKhinchine: deterministic service under
// never-sleep is an M/D/1 queue; the simulated mean latency must match the
// Pollaczek–Khinchine formula.
func TestMD1MatchesPollaczekKhinchine(t *testing.T) {
	const lambda, es = 2.0, 0.25 // rho = 0.5
	cfg := Config{
		Arrivals: workload.NewPoisson(lambda),
		Service:  dist.NewDeterministic(es),
		Policy:   PolicyNeverSleep,
		SimTime:  40000,
		Warmup:   200,
		Seed:     41,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := queueing.MG1{Lambda: lambda, ES: es, ES2: es * es}
	wantW := ref.MeanWait() + es
	if math.Abs(res.MeanLatency-wantW)/wantW > 0.04 {
		t.Fatalf("M/D/1 latency = %v, want ~%v (PK)", res.MeanLatency, wantW)
	}
	if math.Abs(res.MeanJobs-ref.MeanJobs())/ref.MeanJobs() > 0.05 {
		t.Fatalf("M/D/1 E[N] = %v, want ~%v", res.MeanJobs, ref.MeanJobs())
	}
}

// TestMH2MatchesPollaczekKhinchine: hyper-exponential service (CV > 1)
// against the same formula, covering the other side of M/M/1.
func TestMH2MatchesPollaczekKhinchine(t *testing.T) {
	const lambda = 1.0
	h := dist.NewHyperExponential([]float64{0.6, 0.4}, []float64{10, 1})
	es := h.Mean()
	es2 := h.Var() + es*es
	cfg := Config{
		Arrivals: workload.NewPoisson(lambda),
		Service:  h,
		Policy:   PolicyNeverSleep,
		SimTime:  60000,
		Warmup:   200,
		Seed:     42,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := queueing.MG1{Lambda: lambda, ES: es, ES2: es2}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	wantW := ref.MeanWait() + es
	if math.Abs(res.MeanLatency-wantW)/wantW > 0.06 {
		t.Fatalf("M/H2/1 latency = %v, want ~%v (PK)", res.MeanLatency, wantW)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyTimeout.String() != "timeout" || PolicyNeverSleep.String() != "never-sleep" || PolicyAlwaysSleep.String() != "always-sleep" {
		t.Fatal("Policy.String wrong")
	}
}

func BenchmarkRunPaperSecond(b *testing.B) {
	cfg := paperConfig(0.5, 0.001)
	cfg.SimTime = 1000
	cfg.Warmup = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
