package cpu

import (
	"context"
	"fmt"

	"repro/internal/energy"
	"repro/internal/stats"
	"repro/internal/xsync"
)

// Replicated aggregates independent replications of a CPU simulation.
type Replicated struct {
	Replications int
	// Fractions summarizes the per-replication time share of each state.
	Fractions [energy.NumStates]stats.Summary
	// MeanJobs, MeanLatency and PowerCycles summarize the corresponding
	// per-replication results.
	MeanJobs    stats.Summary
	MeanLatency stats.Summary
	PowerCycles stats.Summary
}

// MeanFractions returns the across-replication mean of each state share.
func (r *Replicated) MeanFractions() energy.Fractions {
	var f energy.Fractions
	for i := range f {
		f[i] = r.Fractions[i].Mean()
	}
	return f
}

// FractionCI returns the 95% half-width for the given state's share.
func (r *Replicated) FractionCI(s energy.State) float64 {
	return r.Fractions[s].CI(0.95)
}

// EnergyJoules applies equation 25 to the mean fractions.
func (r *Replicated) EnergyJoules(p energy.PowerModel, seconds float64) float64 {
	return p.EnergyJoules(r.MeanFractions(), seconds)
}

// EnergyJoulesCI propagates the per-state confidence half-widths through
// the linear energy formula, giving a conservative half-width in Joules.
func (r *Replicated) EnergyJoulesCI(p energy.PowerModel, seconds float64) float64 {
	hw := 0.0
	for i := range r.Fractions {
		hw += r.Fractions[i].CI(0.95) * p.MW[i]
	}
	return hw * seconds / 1000
}

// RunReplications executes reps independent runs, deriving each stream from
// (cfg.Seed, replication index). Runs execute in parallel across CPUs;
// folding in index order keeps the aggregate bit-identical to a sequential
// execution.
//
// Caution: open-workload Sources may be stateful (an MMPP's phase, a
// trace's position) and are therefore consumed sequentially, shared across
// replications in index order — exactly the pre-parallel behaviour. Closed
// workloads carry only immutable distributions and run in parallel.
func RunReplications(cfg Config, reps int) (*Replicated, error) {
	return RunReplicationsContext(context.Background(), cfg, reps)
}

// RunReplicationsContext is RunReplications with cooperative cancellation:
// every replication polls the context inside its event loop, so a cancelled
// context aborts the whole set mid-replication (in-flight runs included)
// and the call returns an error wrapping ctx.Err().
func RunReplicationsContext(ctx context.Context, cfg Config, reps int) (*Replicated, error) {
	if reps < 1 {
		return nil, fmt.Errorf("cpu: replications must be >= 1, got %d", reps)
	}
	results := make([]*Result, reps)
	errs := make([]error, reps)
	runOne := func(rep int) {
		c := cfg
		c.Seed = cfg.Seed + uint64(rep)*0x9e3779b97f4a7c15
		results[rep], errs[rep] = RunContext(ctx, c)
	}
	if cfg.Arrivals != nil {
		// The open-workload Source interface permits stateful
		// implementations (MMPP phase, trace position), which cannot be
		// shared across goroutines.
		for rep := 0; rep < reps; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runOne(rep)
		}
	} else {
		xsync.ParallelFor(reps, runOne)
	}
	out := &Replicated{Replications: reps}
	for rep := 0; rep < reps; rep++ {
		if errs[rep] != nil {
			return nil, fmt.Errorf("cpu: replication %d: %w", rep, errs[rep])
		}
		res := results[rep]
		for i := range res.Fractions {
			out.Fractions[i].Add(res.Fractions[i])
		}
		out.MeanJobs.Add(res.MeanJobs)
		out.MeanLatency.Add(res.MeanLatency)
		out.PowerCycles.Add(float64(res.PowerCycles))
	}
	return out, nil
}
