package cpu

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/energy"
)

// Segment is one maximal interval the CPU spent in a single power state.
type Segment struct {
	Start, End float64
	State      energy.State
}

// Duration returns the segment length.
func (s Segment) Duration() float64 { return s.End - s.Start }

// Trace is a chronological state timeline of one simulation run.
type Trace []Segment

// TotalIn returns the summed duration spent in the given state.
func (tr Trace) TotalIn(s energy.State) float64 {
	total := 0.0
	for _, seg := range tr {
		if seg.State == s {
			total += seg.Duration()
		}
	}
	return total
}

// Validate checks the structural timeline invariants: segments are
// contiguous, non-negative, and adjacent segments change state.
func (tr Trace) Validate() error {
	for i, seg := range tr {
		if seg.End < seg.Start {
			return fmt.Errorf("cpu: segment %d runs backwards: [%v, %v]", i, seg.Start, seg.End)
		}
		if i > 0 {
			if seg.Start != tr[i-1].End {
				return fmt.Errorf("cpu: gap between segments %d and %d: %v != %v", i-1, i, tr[i-1].End, seg.Start)
			}
			if seg.State == tr[i-1].State {
				return fmt.Errorf("cpu: segments %d and %d share state %s", i-1, i, seg.State)
			}
		}
	}
	return nil
}

// Gantt renders the trace as a one-line ASCII Gantt chart with one
// character per cell of the given duration: S=standby, P=powerup, I=idle,
// A=active.
func (tr Trace) Gantt(cell float64) string {
	if len(tr) == 0 || cell <= 0 {
		return ""
	}
	glyph := map[energy.State]byte{
		energy.Standby: 'S',
		energy.PowerUp: 'P',
		energy.Idle:    'I',
		energy.Active:  'A',
	}
	var b strings.Builder
	end := tr[len(tr)-1].End
	seg := 0
	for t := tr[0].Start; t < end; t += cell {
		for seg < len(tr)-1 && t >= tr[seg].End {
			seg++
		}
		b.WriteByte(glyph[tr[seg].State])
	}
	return b.String()
}

// RunWithTrace executes one simulation like Run and additionally returns
// the full state timeline over [0, Warmup+SimTime]. Tracing is intended
// for debugging and visualization; statistics in Result are identical to
// an untraced Run with the same configuration.
func RunWithTrace(cfg Config) (*Result, Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	collector := &traceCollector{}
	res, err := runInternal(context.Background(), cfg, collector)
	if err != nil {
		return nil, nil, err
	}
	collector.close(cfg.Warmup + cfg.SimTime)
	return res, collector.trace, nil
}

// traceCollector accumulates state-change events into segments.
type traceCollector struct {
	trace Trace
	open  bool
	cur   Segment
}

func (c *traceCollector) onState(t float64, s energy.State) {
	if c.open {
		if s == c.cur.State {
			return
		}
		c.cur.End = t
		if c.cur.Duration() > 0 {
			c.trace = append(c.trace, c.cur)
		}
	}
	c.cur = Segment{Start: t, State: s}
	c.open = true
}

func (c *traceCollector) close(t float64) {
	if c.open {
		c.cur.End = t
		if c.cur.Duration() > 0 {
			c.trace = append(c.trace, c.cur)
		}
		c.open = false
	}
}
