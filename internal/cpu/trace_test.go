package cpu

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/workload"
)

func TestRunWithTraceMatchesRun(t *testing.T) {
	cfg := paperConfig(0.5, 0.3)
	cfg.SimTime = 1000
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traced, trace, err := RunWithTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fractions != traced.Fractions || plain.JobsServed != traced.JobsServed {
		t.Fatal("tracing changed simulation results")
	}
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
}

func TestTraceCoversFullHorizon(t *testing.T) {
	cfg := paperConfig(0.5, 0.3)
	cfg.SimTime = 500
	cfg.Warmup = 100
	_, trace, err := RunWithTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace[0].Start != 0 {
		t.Fatalf("trace starts at %v, want 0", trace[0].Start)
	}
	if end := trace[len(trace)-1].End; math.Abs(end-600) > 1e-9 {
		t.Fatalf("trace ends at %v, want 600", end)
	}
	total := 0.0
	for _, s := range energy.States {
		total += trace.TotalIn(s)
	}
	if math.Abs(total-600) > 1e-9 {
		t.Fatalf("segments sum to %v, want 600", total)
	}
}

func TestTraceTotalsMatchFractions(t *testing.T) {
	// With zero warmup, the measured fractions must equal the traced
	// per-state totals divided by the horizon.
	cfg := paperConfig(0.5, 0.3)
	cfg.SimTime = 800
	cfg.Warmup = 0
	res, trace, err := RunWithTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range energy.States {
		want := trace.TotalIn(s) / 800
		if math.Abs(res.Fractions[s]-want) > 1e-9 {
			t.Fatalf("state %s: fraction %v vs trace %v", s, res.Fractions[s], want)
		}
	}
}

func TestTraceStartsInStandby(t *testing.T) {
	cfg := paperConfig(0.5, 0.3)
	cfg.SimTime = 100
	_, trace, err := RunWithTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if trace[0].State != energy.Standby {
		t.Fatalf("first segment state = %s, want standby", trace[0].State)
	}
}

func TestTraceStateOrderIsLegal(t *testing.T) {
	// Legal transitions: standby->powerup, powerup->active (or idle),
	// active->idle or active->standby (PDT=0), idle->active,
	// idle->standby.
	cfg := paperConfig(0.5, 0.3)
	cfg.SimTime = 2000
	_, trace, err := RunWithTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	legal := map[energy.State][]energy.State{
		energy.Standby: {energy.PowerUp},
		energy.PowerUp: {energy.Active, energy.Idle},
		energy.Active:  {energy.Idle, energy.Standby},
		energy.Idle:    {energy.Active, energy.Standby},
	}
	for i := 1; i < len(trace); i++ {
		from, to := trace[i-1].State, trace[i].State
		ok := false
		for _, allowed := range legal[from] {
			if to == allowed {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("illegal transition %s -> %s at segment %d (t=%v)", from, to, i, trace[i].Start)
		}
	}
}

func TestTraceDeterministicScenario(t *testing.T) {
	// One job at t=1, service exactly 0.5 s, PDT 0.25, PUD 0.125:
	// standby [0,1), powerup [1,1.125), active [1.125,1.625),
	// idle [1.625,1.875), standby [1.875, 3].
	cfg := Config{
		Arrivals: workload.NewTrace([]float64{1}),
		Service:  dist.NewDeterministic(0.5),
		PDT:      0.25,
		PUD:      0.125,
		SimTime:  3,
		Seed:     1,
	}
	_, trace, err := RunWithTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []Segment{
		{0, 1, energy.Standby},
		{1, 1.125, energy.PowerUp},
		{1.125, 1.625, energy.Active},
		{1.625, 1.875, energy.Idle},
		{1.875, 3, energy.Standby},
	}
	if len(trace) != len(want) {
		t.Fatalf("trace = %+v, want %d segments", trace, len(want))
	}
	for i, seg := range want {
		got := trace[i]
		if got.State != seg.State || math.Abs(got.Start-seg.Start) > 1e-9 || math.Abs(got.End-seg.End) > 1e-9 {
			t.Fatalf("segment %d = %+v, want %+v", i, got, seg)
		}
	}
}

func TestGantt(t *testing.T) {
	trace := Trace{
		{0, 2, energy.Standby},
		{2, 3, energy.PowerUp},
		{3, 5, energy.Active},
		{5, 6, energy.Idle},
	}
	g := trace.Gantt(1)
	if g != "SSPAAI" {
		t.Fatalf("Gantt = %q, want SSPAAI", g)
	}
	if trace.Gantt(0) != "" {
		t.Fatal("zero cell should render empty")
	}
}

func TestTraceValidateCatchesCorruption(t *testing.T) {
	bad := Trace{{0, 1, energy.Standby}, {2, 3, energy.Idle}} // gap
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not detected: %v", err)
	}
	bad2 := Trace{{0, 1, energy.Standby}, {1, 2, energy.Standby}} // no change
	if err := bad2.Validate(); err == nil {
		t.Fatal("repeated state not detected")
	}
	bad3 := Trace{{1, 0, energy.Standby}} // backwards
	if err := bad3.Validate(); err == nil {
		t.Fatal("backwards segment not detected")
	}
}
