// Package des is a minimal, fast discrete-event simulation kernel: a
// simulation clock plus a cancellable pending-event set ordered by
// (time, priority, insertion sequence). Both the CPU software simulator
// (internal/cpu) and the Petri-net execution engine (internal/petri) are
// built on it.
//
// Determinism: given the same sequence of Schedule/Cancel calls, the kernel
// pops events in an identical order on every run. Ties in time are broken by
// priority (lower value first) and then by insertion sequence, so
// simultaneous events never reorder nondeterministically.
package des

import (
	"container/heap"
	"context"
	"fmt"
	"math"
)

// Event is a scheduled callback. The kernel never interprets the payload; it
// only orders and dispatches.
type Event struct {
	// Time is the simulation time at which the event fires.
	Time float64
	// Priority breaks ties at equal times; lower fires first.
	Priority int
	// Action is invoked when the event is dispatched.
	Action func()

	seq   uint64
	index int // heap index; -1 when not queued
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ ev *Event }

// Valid reports whether the handle refers to a still-pending event.
func (h Handle) Valid() bool { return h.ev != nil && h.ev.index >= 0 }

// eventHeap implements heap.Interface over *Event.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator owns the clock and the pending-event set.
type Simulator struct {
	now     float64
	queue   eventHeap
	seq     uint64
	stopped bool
	// Dispatched counts events executed; useful for throughput benchmarks.
	Dispatched uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Pending returns the number of scheduled events.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers action to run at absolute time t. It panics if t is in
// the past or not finite. The returned handle can cancel the event.
func (s *Simulator) Schedule(t float64, priority int, action func()) Handle {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduled time must be finite, got %v", t))
	}
	if t < s.now {
		panic(fmt.Sprintf("des: cannot schedule in the past: %v < now %v", t, s.now))
	}
	ev := &Event{Time: t, Priority: priority, Action: action, seq: s.seq, index: -1}
	s.seq++
	heap.Push(&s.queue, ev)
	return Handle{ev: ev}
}

// ScheduleAfter registers action to run delay time units from now.
func (s *Simulator) ScheduleAfter(delay float64, priority int, action func()) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	return s.Schedule(s.now+delay, priority, action)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(h Handle) bool {
	if !h.Valid() {
		return false
	}
	heap.Remove(&s.queue, h.ev.index)
	h.ev.index = -1
	return true
}

// Step dispatches the next event, advancing the clock to its time. It
// returns false when no events remain.
func (s *Simulator) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*Event)
	if ev.Time < s.now {
		panic(fmt.Sprintf("des: event time %v behind clock %v", ev.Time, s.now))
	}
	s.now = ev.Time
	s.Dispatched++
	ev.Action()
	return true
}

// PeekTime returns the time of the next pending event; ok is false when the
// queue is empty.
func (s *Simulator) PeekTime() (t float64, ok bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].Time, true
}

// Stop makes Run return after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run dispatches events until the queue is empty or Stop is called. It
// returns the number of events dispatched by this call.
func (s *Simulator) Run() uint64 {
	s.stopped = false
	start := s.Dispatched
	for !s.stopped && s.Step() {
	}
	return s.Dispatched - start
}

// RunUntil dispatches events with time <= horizon and then sets the clock to
// the horizon. Events scheduled beyond the horizon remain pending. It
// returns the number of events dispatched by this call.
func (s *Simulator) RunUntil(horizon float64) uint64 {
	n, _ := s.RunUntilContext(nil, horizon)
	return n
}

// ctxCheckStride is how many dispatched events pass between context polls in
// RunUntilContext: frequent enough that cancellation lands within
// microseconds of wall clock, rare enough that the poll never shows up in
// event-loop profiles.
const ctxCheckStride = 1024

// RunUntilContext is RunUntil with cooperative cancellation: every
// ctxCheckStride dispatched events the context is polled, and a cancelled
// context stops the loop mid-simulation with ctx.Err() — the clock stays at
// the last dispatched event instead of jumping to the horizon. A nil context
// disables polling.
func (s *Simulator) RunUntilContext(ctx context.Context, horizon float64) (uint64, error) {
	if horizon < s.now {
		panic(fmt.Sprintf("des: horizon %v is before now %v", horizon, s.now))
	}
	s.stopped = false
	start := s.Dispatched
	countdown := ctxCheckStride
	for !s.stopped {
		if ctx != nil {
			if countdown--; countdown <= 0 {
				countdown = ctxCheckStride
				if err := ctx.Err(); err != nil {
					return s.Dispatched - start, err
				}
			}
		}
		t, ok := s.PeekTime()
		if !ok || t > horizon {
			break
		}
		s.Step()
	}
	if !s.stopped && s.now < horizon {
		s.now = horizon
	}
	return s.Dispatched - start, nil
}
