package des

import (
	"context"
	"errors"
	"testing"
)

// TestRunUntilContextCancelsMidLoop: a cancelled context must stop the
// dispatch loop within one polling stride and report ctx.Err(), leaving the
// clock at the last dispatched event instead of the horizon.
func TestRunUntilContextCancelsMidLoop(t *testing.T) {
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	// A self-rescheduling event: an infinite supply of work.
	var tick func()
	fired := 0
	tick = func() {
		fired++
		if fired == 100 {
			cancel()
		}
		s.ScheduleAfter(1, 0, tick)
	}
	s.ScheduleAfter(1, 0, tick)
	n, err := s.RunUntilContext(ctx, 1e12)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunUntilContext returned %v, want context.Canceled", err)
	}
	// The loop polls every ctxCheckStride events: it must stop within one
	// stride of the cancellation, far short of the 1e12 horizon.
	if n > 100+2*ctxCheckStride {
		t.Fatalf("dispatched %d events after cancellation at 100", n)
	}
	if s.Now() >= 1e12 {
		t.Fatalf("clock jumped to the horizon (%v) despite cancellation", s.Now())
	}
}

// TestRunUntilContextNilAndUncancelled: a nil context and an uncancelled
// context must behave exactly like RunUntil.
func TestRunUntilContextNilAndUncancelled(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		s := New()
		fired := 0
		s.ScheduleAfter(1, 0, func() { fired++ })
		s.ScheduleAfter(2, 0, func() { fired++ })
		s.ScheduleAfter(99, 0, func() { fired++ }) // beyond horizon
		n, err := s.RunUntilContext(ctx, 10)
		if err != nil {
			t.Fatalf("ctx=%v: %v", ctx, err)
		}
		if n != 2 || fired != 2 {
			t.Fatalf("ctx=%v: dispatched %d (fired %d), want 2", ctx, n, fired)
		}
		if s.Now() != 10 {
			t.Fatalf("ctx=%v: clock = %v, want horizon 10", ctx, s.Now())
		}
	}
}
