package des

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		s.Schedule(tm, 0, func() { order = append(order, tm) })
	}
	s.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("dispatched %d events, want 5", len(order))
	}
}

func TestTieBreakByPriorityThenSeq(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(1, 2, func() { order = append(order, "low-late") })
	s.Schedule(1, 1, func() { order = append(order, "high-a") })
	s.Schedule(1, 1, func() { order = append(order, "high-b") })
	s.Run()
	want := []string{"high-a", "high-b", "low-late"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	s.Schedule(2.5, 0, func() {
		if s.Now() != 2.5 {
			t.Errorf("clock = %v inside event, want 2.5", s.Now())
		}
	})
	s.Run()
	if s.Now() != 2.5 {
		t.Fatalf("final clock = %v, want 2.5", s.Now())
	}
}

func TestScheduleAfter(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(1, 0, func() {
		s.ScheduleAfter(2, 0, func() {
			fired = true
			if s.Now() != 3 {
				t.Errorf("relative event at %v, want 3", s.Now())
			}
		})
	})
	s.Run()
	if !fired {
		t.Fatal("relative event never fired")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	h := s.Schedule(1, 0, func() { fired = true })
	if !s.Cancel(h) {
		t.Fatal("cancel of pending event returned false")
	}
	if s.Cancel(h) {
		t.Fatal("double cancel returned true")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	s := New()
	h := s.Schedule(1, 0, func() {})
	s.Run()
	if s.Cancel(h) {
		t.Fatal("cancel after fire returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var order []int
	var handles []Handle
	for i := 0; i < 10; i++ {
		i := i
		handles = append(handles, s.Schedule(float64(i), 0, func() { order = append(order, i) }))
	}
	s.Cancel(handles[5])
	s.Cancel(handles[0])
	s.Run()
	if len(order) != 8 {
		t.Fatalf("fired %d events, want 8", len(order))
	}
	for _, v := range order {
		if v == 5 || v == 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, 0, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.Schedule(1, 0, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time did not panic")
		}
	}()
	s.Schedule(math.NaN(), 0, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.ScheduleAfter(-1, 0, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), 0, func() { count++ })
	}
	n := s.RunUntil(5.5)
	if n != 5 || count != 5 {
		t.Fatalf("RunUntil dispatched %d (count %d), want 5", n, count)
	}
	if s.Now() != 5.5 {
		t.Fatalf("clock = %v, want horizon 5.5", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	// Continue to the end.
	s.RunUntil(100)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestRunUntilExactBoundaryIncluded(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(5, 0, func() { fired = true })
	s.RunUntil(5)
	if !fired {
		t.Fatal("event at horizon boundary not dispatched")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), 0, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3 after Stop", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", s.Pending())
	}
}

func TestPeekTime(t *testing.T) {
	s := New()
	if _, ok := s.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue returned ok")
	}
	s.Schedule(3, 0, func() {})
	s.Schedule(1, 0, func() {})
	if tm, ok := s.PeekTime(); !ok || tm != 1 {
		t.Fatalf("PeekTime = %v/%v, want 1/true", tm, ok)
	}
}

func TestEventSchedulingDuringDispatch(t *testing.T) {
	// A classic M/M/1-style cascade: each event schedules the next.
	s := New()
	count := 0
	var next func()
	next = func() {
		count++
		if count < 100 {
			s.ScheduleAfter(1, 0, next)
		}
	}
	s.Schedule(0, 0, next)
	s.Run()
	if count != 100 {
		t.Fatalf("cascade count = %d, want 100", count)
	}
	if s.Now() != 99 {
		t.Fatalf("clock = %v, want 99", s.Now())
	}
}

// Property-style stress test: random schedule/cancel interleavings always
// dispatch in non-decreasing time order and never dispatch cancelled events.
func TestRandomizedStress(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 20; trial++ {
		s := New()
		cancelled := map[int]bool{}
		fired := map[int]bool{}
		lastTime := math.Inf(-1)
		var handles []Handle
		id := 0
		for i := 0; i < 500; i++ {
			myID := id
			id++
			h := s.Schedule(r.Float64()*100, r.Intn(3), func() {
				if s.Now() < lastTime {
					t.Errorf("time went backwards: %v < %v", s.Now(), lastTime)
				}
				lastTime = s.Now()
				fired[myID] = true
			})
			handles = append(handles, h)
			if r.Float64() < 0.3 && len(handles) > 0 {
				victim := r.Intn(len(handles))
				if s.Cancel(handles[victim]) {
					cancelled[victim] = true
				}
			}
		}
		s.Run()
		for idx := range cancelled {
			if fired[idx] {
				t.Fatalf("trial %d: cancelled event %d fired", trial, idx)
			}
		}
		if len(fired)+len(cancelled) != 500 {
			t.Fatalf("trial %d: fired %d + cancelled %d != 500", trial, len(fired), len(cancelled))
		}
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	s := New()
	r := xrand.New(1)
	// Keep a rolling queue of 1000 pending events.
	for i := 0; i < 1000; i++ {
		s.ScheduleAfter(r.Float64(), 0, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(r.Float64(), 0, func() {})
		s.Step()
	}
}

func BenchmarkScheduleCancel(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		h := s.ScheduleAfter(1, 0, func() {})
		s.Cancel(h)
	}
}
