// Package dist provides the service-time and firing-delay distributions
// shared by the event-driven CPU simulator (internal/cpu) and the stochastic
// Petri-net engine (internal/petri).
//
// Every distribution is an immutable value type implementing Distribution.
// Sampling draws from an explicitly passed *xrand.Rand so that simulations
// stay reproducible: the same seed yields the same trajectory regardless of
// which distributions are mixed in a model.
package dist

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Distribution is a non-negative continuous probability distribution used
// for service times, think times and transition firing delays.
type Distribution interface {
	// Sample draws one value using the given generator. Samples must be
	// non-negative; the simulation engines panic otherwise.
	Sample(r *xrand.Rand) float64
	// Mean returns the expected value.
	Mean() float64
	// Var returns the variance.
	Var() float64
	String() string
}

// ---------------------------------------------------------------------------

// Exponential is the exponential distribution with the given rate
// (mean 1/Rate). It is the only distribution eligible for exact CTMC
// analysis of a Petri net (memorylessness).
type Exponential struct {
	Rate float64
}

// NewExponential returns an exponential distribution with the given rate.
func NewExponential(rate float64) Exponential {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("dist: exponential rate must be positive and finite, got %v", rate))
	}
	return Exponential{Rate: rate}
}

// ExpMean returns an exponential distribution with the given mean.
func ExpMean(mean float64) Exponential { return NewExponential(1 / mean) }

func (e Exponential) Sample(r *xrand.Rand) float64 { return r.ExpFloat64() / e.Rate }
func (e Exponential) Mean() float64                { return 1 / e.Rate }
func (e Exponential) Var() float64                 { return 1 / (e.Rate * e.Rate) }
func (e Exponential) String() string               { return fmt.Sprintf("Exp(rate=%g)", e.Rate) }

// ---------------------------------------------------------------------------

// Deterministic is the degenerate distribution concentrated at Value. The
// paper's Power Down Threshold and Power Up Delay transitions are
// deterministic, which is exactly what breaks the plain Markov model.
type Deterministic struct {
	Value float64
}

// NewDeterministic returns the constant distribution at the given value.
func NewDeterministic(value float64) Deterministic {
	if value < 0 || math.IsNaN(value) {
		panic(fmt.Sprintf("dist: deterministic value must be non-negative, got %v", value))
	}
	return Deterministic{Value: value}
}

func (d Deterministic) Sample(*xrand.Rand) float64 { return d.Value }
func (d Deterministic) Mean() float64              { return d.Value }
func (d Deterministic) Var() float64               { return 0 }
func (d Deterministic) String() string             { return fmt.Sprintf("Det(%g)", d.Value) }

// ---------------------------------------------------------------------------

// Uniform is the continuous uniform distribution on [Low, High).
type Uniform struct {
	Low, High float64
}

// NewUniform returns a uniform distribution on [low, high).
func NewUniform(low, high float64) Uniform {
	if math.IsNaN(low) || math.IsNaN(high) || low < 0 || high <= low {
		panic(fmt.Sprintf("dist: uniform needs 0 <= low < high, got [%v, %v)", low, high))
	}
	return Uniform{Low: low, High: high}
}

func (u Uniform) Sample(r *xrand.Rand) float64 { return u.Low + (u.High-u.Low)*r.Float64() }
func (u Uniform) Mean() float64                { return (u.Low + u.High) / 2 }
func (u Uniform) Var() float64 {
	w := u.High - u.Low
	return w * w / 12
}
func (u Uniform) String() string { return fmt.Sprintf("Uni[%g,%g)", u.Low, u.High) }

// ---------------------------------------------------------------------------

// Erlang is the Erlang-K distribution: the sum of K independent exponential
// phases of the given per-phase Rate (mean K/Rate). It is the phase-type
// approximation of a deterministic delay used by the ErlangMarkov estimator.
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang returns an Erlang distribution with k phases of the given rate.
func NewErlang(k int, rate float64) Erlang {
	if k < 1 {
		panic(fmt.Sprintf("dist: Erlang needs k >= 1, got %d", k))
	}
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("dist: Erlang rate must be positive and finite, got %v", rate))
	}
	return Erlang{K: k, Rate: rate}
}

// ErlangMean returns an Erlang distribution with k phases and the given
// overall mean (per-phase rate k/mean).
func ErlangMean(k int, mean float64) Erlang { return NewErlang(k, float64(k)/mean) }

func (e Erlang) Sample(r *xrand.Rand) float64 {
	if e.K == 1 {
		// A single phase is exactly exponential; the ziggurat draw is ~3x
		// cheaper than a uniform plus a log.
		return r.ExpFloat64() / e.Rate
	}
	// For K >= 2 the product of K open-interval uniforms through one log
	// beats K separate ExpFloat64 calls and is identical in law.
	prod := 1.0
	for i := 0; i < e.K; i++ {
		prod *= r.Float64Open()
	}
	return -math.Log(prod) / e.Rate
}
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }
func (e Erlang) Var() float64  { return float64(e.K) / (e.Rate * e.Rate) }
func (e Erlang) String() string {
	return fmt.Sprintf("Erlang(k=%d, rate=%g)", e.K, e.Rate)
}

// ---------------------------------------------------------------------------

// Weibull is the Weibull distribution with shape Shape and scale Scale.
// Shape < 1 gives the heavy-tailed service times observed in real sensor
// workloads; Shape = 1 reduces to Exponential(1/Scale).
type Weibull struct {
	Shape, Scale float64
}

// NewWeibull returns a Weibull distribution with the given shape and scale.
func NewWeibull(shape, scale float64) Weibull {
	if shape <= 0 || scale <= 0 || math.IsNaN(shape) || math.IsNaN(scale) {
		panic(fmt.Sprintf("dist: Weibull needs positive shape and scale, got %v and %v", shape, scale))
	}
	return Weibull{Shape: shape, Scale: scale}
}

func (w Weibull) Sample(r *xrand.Rand) float64 {
	// X = scale * E^(1/shape) with E ~ Exp(1): the inverse-CDF transform
	// with the -log(U) draw replaced by the (same-law, cheaper) ziggurat.
	return w.Scale * math.Pow(r.ExpFloat64(), 1/w.Shape)
}
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }
func (w Weibull) Var() float64 {
	m := math.Gamma(1 + 1/w.Shape)
	return w.Scale * w.Scale * (math.Gamma(1+2/w.Shape) - m*m)
}
func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(k=%g, scale=%g)", w.Shape, w.Scale)
}

// ---------------------------------------------------------------------------

// HyperExponential is a probabilistic mixture of exponentials: with
// probability Probs[i] a sample is drawn from Exponential(Rates[i]). Its
// coefficient of variation exceeds 1, covering the bursty side of M/G/1.
type HyperExponential struct {
	Probs []float64
	Rates []float64
}

// NewHyperExponential returns a mixture of exponentials. The probabilities
// must sum to 1 (within 1e-9) and pair one-to-one with positive rates.
func NewHyperExponential(probs, rates []float64) HyperExponential {
	if len(probs) == 0 || len(probs) != len(rates) {
		panic(fmt.Sprintf("dist: hyperexponential needs matching probs and rates, got %d and %d", len(probs), len(rates)))
	}
	sum := 0.0
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			panic(fmt.Sprintf("dist: hyperexponential prob %d is %v", i, p))
		}
		if rates[i] <= 0 || math.IsNaN(rates[i]) {
			panic(fmt.Sprintf("dist: hyperexponential rate %d is %v", i, rates[i]))
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("dist: hyperexponential probs sum to %v, want 1", sum))
	}
	return HyperExponential{
		Probs: append([]float64(nil), probs...),
		Rates: append([]float64(nil), rates...),
	}
}

func (h HyperExponential) Sample(r *xrand.Rand) float64 {
	u := r.Float64()
	acc := 0.0
	for i, p := range h.Probs {
		acc += p
		if u < acc {
			return r.ExpFloat64() / h.Rates[i]
		}
	}
	return r.ExpFloat64() / h.Rates[len(h.Rates)-1]
}

func (h HyperExponential) Mean() float64 {
	m := 0.0
	for i, p := range h.Probs {
		m += p / h.Rates[i]
	}
	return m
}

// Var returns the variance via the second moment E[X^2] = sum p_i * 2/rate_i^2.
func (h HyperExponential) Var() float64 {
	m, m2 := 0.0, 0.0
	for i, p := range h.Probs {
		m += p / h.Rates[i]
		m2 += 2 * p / (h.Rates[i] * h.Rates[i])
	}
	return m2 - m*m
}

func (h HyperExponential) String() string {
	return fmt.Sprintf("HyperExp(%d phases)", len(h.Probs))
}
