package dist

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// sampleMoments draws n samples and returns their empirical mean and
// variance.
func sampleMoments(d Distribution, seed uint64, n int) (mean, variance float64) {
	r := xrand.New(seed)
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestMomentsAnalyticAndEmpirical(t *testing.T) {
	cases := []struct {
		name     string
		d        Distribution
		mean     float64
		variance float64
	}{
		{"Exponential", NewExponential(4), 0.25, 0.0625},
		{"ExpMean", ExpMean(0.1), 0.1, 0.01},
		{"Deterministic", NewDeterministic(0.5), 0.5, 0},
		{"Uniform", NewUniform(1, 3), 2, 4.0 / 12},
		{"Erlang", NewErlang(4, 8), 0.5, 4.0 / 64},
		{"ErlangMean", ErlangMean(3, 0.9), 0.9, 0.27}, // k/rate^2 = 3/(3/0.9)^2
		{"WeibullExp", NewWeibull(1, 2), 2, 4},        // shape 1 == Exp(mean 2)
		{"Weibull2", NewWeibull(2, 1), math.Sqrt(math.Pi) / 2, 1 - math.Pi/4},
		{"HyperExp", NewHyperExponential([]float64{0.6, 0.4}, []float64{10, 1}),
			0.6/10 + 0.4/1, 2*0.6/100 + 2*0.4/1 - (0.6/10+0.4/1)*(0.6/10+0.4/1)},
	}
	const n = 200000
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.d.Mean(); math.Abs(got-tc.mean) > 1e-12 {
				t.Errorf("Mean() = %v, want %v", got, tc.mean)
			}
			if got := tc.d.Var(); math.Abs(got-tc.variance) > 1e-12 {
				t.Errorf("Var() = %v, want %v", got, tc.variance)
			}
			em, ev := sampleMoments(tc.d, 99, n)
			if math.Abs(em-tc.mean) > 0.02*tc.mean+4*math.Sqrt(tc.variance/n) {
				t.Errorf("empirical mean = %v, want ~%v", em, tc.mean)
			}
			if tc.variance == 0 {
				if ev > 1e-12 {
					t.Errorf("empirical variance = %v, want 0", ev)
				}
			} else if math.Abs(ev-tc.variance)/tc.variance > 0.05 {
				t.Errorf("empirical variance = %v, want ~%v", ev, tc.variance)
			}
		})
	}
}

func TestSamplingReproducible(t *testing.T) {
	dists := []Distribution{
		NewExponential(2),
		NewDeterministic(1),
		NewUniform(0, 1),
		NewErlang(3, 6),
		NewWeibull(1.5, 2),
		NewHyperExponential([]float64{0.5, 0.5}, []float64{4, 1}),
	}
	for _, d := range dists {
		a, b := xrand.New(7), xrand.New(7)
		other := xrand.New(8)
		identical, differs := true, false
		for i := 0; i < 100; i++ {
			va, vb := d.Sample(a), d.Sample(b)
			if va != vb {
				identical = false
			}
			if va < 0 {
				t.Fatalf("%s: negative sample %v", d, va)
			}
			if va != d.Sample(other) {
				differs = true
			}
		}
		if !identical {
			t.Errorf("%s: same seed produced different streams", d)
		}
		if _, isDet := d.(Deterministic); !isDet && !differs {
			t.Errorf("%s: different seeds produced identical streams", d)
		}
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := map[string]func(){
		"exp zero rate":        func() { NewExponential(0) },
		"exp negative rate":    func() { NewExponential(-1) },
		"deterministic neg":    func() { NewDeterministic(-0.1) },
		"uniform inverted":     func() { NewUniform(2, 1) },
		"uniform negative":     func() { NewUniform(-1, 1) },
		"erlang zero phases":   func() { NewErlang(0, 1) },
		"erlang bad rate":      func() { NewErlang(2, 0) },
		"weibull zero shape":   func() { NewWeibull(0, 1) },
		"weibull zero scale":   func() { NewWeibull(1, 0) },
		"hyperexp empty":       func() { NewHyperExponential(nil, nil) },
		"hyperexp mismatch":    func() { NewHyperExponential([]float64{1}, []float64{1, 2}) },
		"hyperexp bad sum":     func() { NewHyperExponential([]float64{0.5, 0.2}, []float64{1, 2}) },
		"hyperexp zero rate":   func() { NewHyperExponential([]float64{0.5, 0.5}, []float64{1, 0}) },
		"hyperexp negative pr": func() { NewHyperExponential([]float64{1.5, -0.5}, []float64{1, 2}) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: constructor accepted invalid input", name)
				}
			}()
			fn()
		})
	}
}

func TestErlangMatchesSumOfExponentials(t *testing.T) {
	// Erlang(k=1) must be distributed exactly like Exponential at the same
	// rate; compare empirical CDF moments.
	e1 := NewErlang(1, 5)
	ex := NewExponential(5)
	m1, v1 := sampleMoments(e1, 3, 100000)
	m2, v2 := sampleMoments(ex, 3, 100000)
	if math.Abs(m1-m2) > 0.01 || math.Abs(v1-v2) > 0.01 {
		t.Fatalf("Erlang(1) moments (%v, %v) differ from Exponential (%v, %v)", m1, v1, m2, v2)
	}
}
