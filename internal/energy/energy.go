// Package energy models the power and energy side of the paper: per-state
// power draw of a sensor-node processor (Table 3), the energy integral of
// equation 25, and battery lifetime estimation for the sensor-node
// extension.
package energy

import (
	"fmt"
	"math"
)

// State enumerates the four processor power states of the paper's CPU
// model. The order matches the presentation in Table 3.
type State int

const (
	// Standby is the deep low-power mode entered after the Power Down
	// Threshold expires.
	Standby State = iota
	// PowerUp is the fixed-duration wake-up transition (Power Up Delay).
	PowerUp
	// Idle is powered on with an empty job queue.
	Idle
	// Active is executing a job.
	Active
	// NumStates is the number of processor states.
	NumStates
)

// States lists all processor states in canonical order.
var States = [NumStates]State{Standby, PowerUp, Idle, Active}

func (s State) String() string {
	switch s {
	case Standby:
		return "standby"
	case PowerUp:
		return "powerup"
	case Idle:
		return "idle"
	case Active:
		return "active"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Fractions holds the long-run fraction of time spent in each state. A
// valid value is non-negative and sums to 1.
type Fractions [NumStates]float64

// Sum returns the total of all fractions.
func (f Fractions) Sum() float64 {
	s := 0.0
	for _, v := range f {
		s += v
	}
	return s
}

// Validate checks that fractions are non-negative and sum to 1 within tol.
func (f Fractions) Validate(tol float64) error {
	for i, v := range f {
		if v < -tol || math.IsNaN(v) {
			return fmt.Errorf("energy: fraction of %s is %v", State(i), v)
		}
	}
	if d := math.Abs(f.Sum() - 1); d > tol {
		return fmt.Errorf("energy: fractions sum to %v (off by %v)", f.Sum(), d)
	}
	return nil
}

// PowerModel is a per-state power table in milliwatts.
type PowerModel struct {
	// Name identifies the processor.
	Name string
	// MW holds the power draw per state in milliwatts.
	MW [NumStates]float64
}

// Milliwatts returns the power draw of a state.
func (p PowerModel) Milliwatts(s State) float64 { return p.MW[s] }

// AveragePowerMW returns the weighted average power in milliwatts for the
// given state fractions (the parenthesised term of equation 25).
func (p PowerModel) AveragePowerMW(f Fractions) float64 {
	s := 0.0
	for i, frac := range f {
		s += frac * p.MW[i]
	}
	return s
}

// EnergyJoules evaluates equation 25: the total energy over a period of
// `seconds` given steady-state fractions. Powers are milliwatts, so the
// product is divided by 1000 to yield Joules.
func (p PowerModel) EnergyJoules(f Fractions, seconds float64) float64 {
	return p.AveragePowerMW(f) * seconds / 1000
}

// PXA271 is the Intel PXA271 power table used by the paper (Table 3,
// sourced from Jung et al., EWSN 2007).
var PXA271 = PowerModel{
	Name: "PXA271",
	MW: [NumStates]float64{
		Standby: 17,
		PowerUp: 192.442,
		Idle:    88,
		Active:  193,
	},
}

// MSP430F1611 is an illustrative power table with the magnitudes of a
// TI MSP430-class microcontroller (Telos-style node) for the example
// programs; the values are representative datasheet magnitudes at 3 V,
// not measurements from the paper.
var MSP430F1611 = PowerModel{
	Name: "MSP430F1611",
	MW: [NumStates]float64{
		Standby: 0.0153, // LPM3
		PowerUp: 1.2,
		Idle:    0.162, // LPM0
		Active:  5.4,   // 8 MHz active
	},
}

// ATmega128L is an illustrative power table with Mica2-class magnitudes,
// again representative rather than measured.
var ATmega128L = PowerModel{
	Name: "ATmega128L",
	MW: [NumStates]float64{
		Standby: 0.075,
		PowerUp: 20,
		Idle:    9.6,
		Active:  33,
	},
}

// Models lists the built-in power models by name.
var Models = map[string]PowerModel{
	PXA271.Name:      PXA271,
	MSP430F1611.Name: MSP430F1611,
	ATmega128L.Name:  ATmega128L,
}

// ---------------------------------------------------------------------------
// Battery and lifetime

// Battery models an ideal energy reservoir, sufficient for the first-order
// lifetime estimates of the sensor-node example (the paper's motivation:
// "minimizing energy ... would go a long ways toward extending the lifetime
// of the network").
type Battery struct {
	// CapacitymAh is the rated capacity in milliamp-hours.
	CapacitymAh float64
	// Volts is the nominal supply voltage.
	Volts float64
}

// Validate checks that the battery is physically meaningful: capacity and
// voltage must be positive and finite. The `!(x > 0)` form deliberately
// catches NaN, which a plain `x <= 0` comparison lets through.
func (b Battery) Validate() error {
	if !(b.CapacitymAh > 0) || math.IsInf(b.CapacitymAh, 0) {
		return fmt.Errorf("energy: Battery.CapacitymAh must be positive and finite, got %v", b.CapacitymAh)
	}
	if !(b.Volts > 0) || math.IsInf(b.Volts, 0) {
		return fmt.Errorf("energy: Battery.Volts must be positive and finite, got %v", b.Volts)
	}
	return nil
}

// EnergyJoules returns the total stored energy.
func (b Battery) EnergyJoules() float64 {
	return b.CapacitymAh / 1000 * 3600 * b.Volts
}

// LifetimeSeconds returns how long the battery sustains a constant average
// draw given in milliwatts. It returns +Inf for a non-positive draw.
func (b Battery) LifetimeSeconds(avgMilliwatts float64) float64 {
	if avgMilliwatts <= 0 {
		return math.Inf(1)
	}
	return b.EnergyJoules() / (avgMilliwatts / 1000)
}

// AA2850 is a pair of AA cells (2850 mAh at 3.0 V), the supply of a typical
// Mica-class sensor node.
var AA2850 = Battery{CapacitymAh: 2850, Volts: 3.0}

// BatteryState is the live charge of one battery: the running energy budget
// a simulator drains as a node spends power. It separates the two ways
// energy leaves a sensor node — continuous draw (CPU state power, idle
// listening), integrated over time, and instantaneous events (a packet
// transmission or reception), deducted at the event — and predicts the
// exact time a constant continuous draw will empty the budget, which is
// what lets an event-driven simulator schedule a node's death at the
// crossing time instead of discovering it a whole event too late.
//
// The state deliberately allows a small negative excursion: instantaneous
// event costs at the instant of death are deducted in full (the node's
// last transaction completes), after which Depleted reports true and the
// owner is expected to kill the node and stop charging it.
type BatteryState struct {
	remainJ float64
}

// NewBatteryState returns a full battery.
func NewBatteryState(b Battery) BatteryState {
	return BatteryState{remainJ: b.EnergyJoules()}
}

// RemainingJ is the energy budget left, in joules (never negative).
func (s *BatteryState) RemainingJ() float64 {
	if s.remainJ < 0 {
		return 0
	}
	return s.remainJ
}

// Depleted reports whether the budget is exhausted.
func (s *BatteryState) Depleted() bool { return s.remainJ <= 0 }

// DrainJ deducts an instantaneous event cost (a packet Tx/Rx, a sensor
// read) from the budget.
func (s *BatteryState) DrainJ(j float64) { s.remainJ -= j }

// DrainContinuous integrates a constant draw of watts over seconds.
func (s *BatteryState) DrainContinuous(watts, seconds float64) {
	s.remainJ -= watts * seconds
}

// TimeToEmpty returns how many seconds a constant continuous draw of watts
// sustains before the budget crosses zero: the death-crossing offset an
// event scheduler turns into an absolute death time. It returns 0 when the
// budget is already spent and +Inf for a non-positive draw.
func (s *BatteryState) TimeToEmpty(watts float64) float64 {
	if s.remainJ <= 0 {
		return 0
	}
	if watts <= 0 {
		return math.Inf(1)
	}
	return s.remainJ / watts
}
