package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStateString(t *testing.T) {
	want := map[State]string{Standby: "standby", PowerUp: "powerup", Idle: "idle", Active: "active"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestFractionsValidate(t *testing.T) {
	good := Fractions{0.25, 0.25, 0.25, 0.25}
	if err := good.Validate(1e-9); err != nil {
		t.Fatal(err)
	}
	bad := Fractions{0.5, 0.5, 0.5, 0}
	if err := bad.Validate(1e-9); err == nil {
		t.Fatal("sum 1.5 accepted")
	}
	neg := Fractions{-0.1, 0.4, 0.4, 0.3}
	if err := neg.Validate(1e-9); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestPXA271Table3Values(t *testing.T) {
	// The exact numbers from the paper's Table 3.
	if PXA271.Milliwatts(Standby) != 17 {
		t.Error("standby power wrong")
	}
	if PXA271.Milliwatts(Idle) != 88 {
		t.Error("idle power wrong")
	}
	if PXA271.Milliwatts(PowerUp) != 192.442 {
		t.Error("powerup power wrong")
	}
	if PXA271.Milliwatts(Active) != 193 {
		t.Error("active power wrong")
	}
}

func TestEnergyJoulesEquation25(t *testing.T) {
	// All time in standby for 1000 s at 17 mW = 17 J.
	f := Fractions{1, 0, 0, 0}
	if got := PXA271.EnergyJoules(f, 1000); math.Abs(got-17) > 1e-12 {
		t.Fatalf("standby-only energy = %v, want 17", got)
	}
	// An even split weighs each state's power by 1/4.
	even := Fractions{0.25, 0.25, 0.25, 0.25}
	want := (17 + 192.442 + 88 + 193) / 4.0
	if got := PXA271.AveragePowerMW(even); math.Abs(got-want) > 1e-12 {
		t.Fatalf("average power = %v, want %v", got, want)
	}
}

func TestEnergyMonotoneInIdleShare(t *testing.T) {
	// Shifting time from standby to idle must increase energy (88 > 17),
	// the mechanism behind the paper's Figure 5.
	f := func(x uint8) bool {
		s := float64(x) / 255
		f1 := Fractions{Standby: 1 - s, Idle: s}
		f2 := Fractions{Standby: 1 - s/2, Idle: s / 2}
		return PXA271.EnergyJoules(f1, 1000) >= PXA271.EnergyJoules(f2, 1000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelsRegistry(t *testing.T) {
	for _, name := range []string{"PXA271", "MSP430F1611", "ATmega128L"} {
		m, ok := Models[name]
		if !ok {
			t.Fatalf("model %q missing", name)
		}
		if m.Name != name {
			t.Fatalf("model %q has name %q", name, m.Name)
		}
		// Sanity: active must dominate standby on every real processor.
		if m.Milliwatts(Active) <= m.Milliwatts(Standby) {
			t.Fatalf("%s: active %v <= standby %v", name, m.Milliwatts(Active), m.Milliwatts(Standby))
		}
	}
}

func TestBatteryEnergy(t *testing.T) {
	b := Battery{CapacitymAh: 1000, Volts: 3}
	// 1 Ah * 3600 s * 3 V = 10800 J.
	if got := b.EnergyJoules(); math.Abs(got-10800) > 1e-9 {
		t.Fatalf("battery energy = %v, want 10800", got)
	}
}

func TestBatteryLifetime(t *testing.T) {
	b := Battery{CapacitymAh: 1000, Volts: 3}
	// 10800 J at 10 mW = 0.01 W lasts 1.08e6 s.
	if got := b.LifetimeSeconds(10); math.Abs(got-1.08e6) > 1 {
		t.Fatalf("lifetime = %v, want 1.08e6", got)
	}
	if !math.IsInf(b.LifetimeSeconds(0), 1) {
		t.Fatal("zero draw should give infinite lifetime")
	}
}

func TestBatteryValidate(t *testing.T) {
	if err := AA2850.Validate(); err != nil {
		t.Fatalf("stock AA pair rejected: %v", err)
	}
	cases := []struct {
		name string
		b    Battery
	}{
		{"zero capacity", Battery{CapacitymAh: 0, Volts: 3}},
		{"negative capacity", Battery{CapacitymAh: -1, Volts: 3}},
		{"NaN capacity", Battery{CapacitymAh: math.NaN(), Volts: 3}},
		{"Inf capacity", Battery{CapacitymAh: math.Inf(1), Volts: 3}},
		{"zero volts", Battery{CapacitymAh: 1000, Volts: 0}},
		{"NaN volts", Battery{CapacitymAh: 1000, Volts: math.NaN()}},
		{"-Inf volts", Battery{CapacitymAh: 1000, Volts: math.Inf(-1)}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestBatteryStateDrain(t *testing.T) {
	b := Battery{CapacitymAh: 1, Volts: 3} // 10.8 J
	s := NewBatteryState(b)
	if got := s.RemainingJ(); math.Abs(got-10.8) > 1e-12 {
		t.Fatalf("fresh battery %v J, want 10.8", got)
	}
	if s.Depleted() {
		t.Fatal("fresh battery depleted")
	}
	s.DrainJ(0.8)
	s.DrainContinuous(0.5, 10) // 5 J
	if got := s.RemainingJ(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("after drains: %v J, want 5", got)
	}
	// 5 J at 0.5 W crosses zero in 10 s.
	if got := s.TimeToEmpty(0.5); math.Abs(got-10) > 1e-12 {
		t.Fatalf("TimeToEmpty = %v, want 10", got)
	}
	if !math.IsInf(s.TimeToEmpty(0), 1) {
		t.Fatal("zero draw must never empty the battery")
	}
	// A last-gasp event may push the budget negative; the reported
	// remaining energy clamps at zero and the state reads depleted.
	s.DrainJ(6)
	if !s.Depleted() {
		t.Fatal("overdrawn battery not depleted")
	}
	if got := s.RemainingJ(); got != 0 {
		t.Fatalf("overdrawn battery reports %v J, want clamped 0", got)
	}
	if got := s.TimeToEmpty(1); got != 0 {
		t.Fatalf("TimeToEmpty of a spent battery = %v, want 0", got)
	}
}

func TestLifetimeInverseInPower(t *testing.T) {
	f := func(p uint16) bool {
		mw := 1 + float64(p%1000)
		l1 := AA2850.LifetimeSeconds(mw)
		l2 := AA2850.LifetimeSeconds(2 * mw)
		return math.Abs(l1/l2-2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
