package energy

import (
	"fmt"
	"math"
)

// Radio is the first-order radio energy model standard in network-level
// WSN energy studies (Heinzelman et al.; see PAPERS.md for its use by the
// ad hoc network models related to the paper): transmitting b bits over
// distance d costs
//
//	E_tx(b, d) = E_elec·b + E_amp·b·d²
//
// where E_elec is the per-bit electronics cost and E_amp·d² the amplifier
// cost against the free-space path loss, receiving costs E_elec·b, and
// aggregating relayed data costs E_da·b. Sensing a sample of b bits costs
// E_sense·b. The model complements the paper's Petri-net CPU model: the
// CPU side of a node is simulated, the radio side is attributed per packet
// from this table.
type Radio struct {
	// ElecJPerBit is the transceiver electronics energy per bit (Tx or Rx).
	ElecJPerBit float64
	// AmpJPerBitM2 is the transmit amplifier energy per bit per square
	// meter of distance.
	AmpJPerBitM2 float64
	// AggJPerBit is the data-aggregation energy per relayed bit.
	AggJPerBit float64
	// SenseJPerBit is the sensing energy per sampled bit.
	SenseJPerBit float64
	// PacketBits is the payload size of one packet in bits.
	PacketBits float64
	// ListenMW is the idle-listening power draw in milliwatts, charged for
	// the whole run (a duty-cycling MAC would scale it down).
	ListenMW float64
}

// FirstOrderRadio returns the canonical parameterization: 50 nJ/bit
// electronics, 100 pJ/bit/m² amplifier, 5 nJ/bit aggregation and sensing,
// 2048-bit packets, no idle listening.
func FirstOrderRadio() Radio {
	return Radio{
		ElecJPerBit:  50e-9,
		AmpJPerBitM2: 100e-12,
		AggJPerBit:   5e-9,
		SenseJPerBit: 5e-9,
		PacketBits:   2048,
	}
}

// Validate checks the table for physically meaningful values.
func (r Radio) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"ElecJPerBit", r.ElecJPerBit},
		{"AmpJPerBitM2", r.AmpJPerBitM2},
		{"AggJPerBit", r.AggJPerBit},
		{"SenseJPerBit", r.SenseJPerBit},
		{"ListenMW", r.ListenMW},
	} {
		if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("energy: Radio.%s must be finite and non-negative, got %v", v.name, v.val)
		}
	}
	if !(r.PacketBits > 0) || math.IsInf(r.PacketBits, 0) {
		return fmt.Errorf("energy: Radio.PacketBits must be positive and finite, got %v", r.PacketBits)
	}
	return nil
}

// TxJ returns the energy in joules to transmit bits over distance d meters.
func (r Radio) TxJ(bits, d float64) float64 {
	return r.ElecJPerBit*bits + r.AmpJPerBitM2*bits*d*d
}

// RxJ returns the energy in joules to receive bits.
func (r Radio) RxJ(bits float64) float64 {
	return r.ElecJPerBit * bits
}

// AggregateJ returns the energy in joules to aggregate bits of relayed data.
func (r Radio) AggregateJ(bits float64) float64 {
	return r.AggJPerBit * bits
}

// SenseJ returns the energy in joules to acquire bits of sensor data.
func (r Radio) SenseJ(bits float64) float64 {
	return r.SenseJPerBit * bits
}

// PacketTxJ returns TxJ for one packet of PacketBits over distance d.
func (r Radio) PacketTxJ(d float64) float64 { return r.TxJ(r.PacketBits, d) }

// PacketRxJ returns RxJ for one packet of PacketBits.
func (r Radio) PacketRxJ() float64 { return r.RxJ(r.PacketBits) }
