package energy

import (
	"math"
	"testing"
)

func TestFirstOrderRadioTx(t *testing.T) {
	r := FirstOrderRadio()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// At d = 0 only the electronics term remains.
	if got, want := r.TxJ(1000, 0), r.ElecJPerBit*1000; got != want {
		t.Fatalf("TxJ(1000, 0) = %v, want %v", got, want)
	}
	// The amplifier term grows with the square of the distance.
	if got, want := r.TxJ(1000, 10), r.ElecJPerBit*1000+r.AmpJPerBitM2*1000*10*10; math.Abs(got-want) > 1e-18 {
		t.Fatalf("TxJ(1000, 10) = %v, want %v", got, want)
	}
	if r.RxJ(2048) != r.ElecJPerBit*2048 {
		t.Fatalf("RxJ(2048) = %v", r.RxJ(2048))
	}
	if r.AggregateJ(100) != r.AggJPerBit*100 || r.SenseJ(100) != r.SenseJPerBit*100 {
		t.Fatal("aggregation/sensing costs wrong")
	}
	if r.PacketTxJ(5) != r.TxJ(r.PacketBits, 5) || r.PacketRxJ() != r.RxJ(r.PacketBits) {
		t.Fatal("packet helpers disagree with bit-level methods")
	}
}

func TestRadioTxMonotone(t *testing.T) {
	r := FirstOrderRadio()
	// Monotone in both bits and distance.
	for d := 0.0; d < 100; d += 7 {
		if r.TxJ(100, d) > r.TxJ(200, d) {
			t.Fatalf("TxJ not monotone in bits at d=%v", d)
		}
		if r.TxJ(100, d) > r.TxJ(100, d+1) {
			t.Fatalf("TxJ not monotone in distance at d=%v", d)
		}
	}
}

func TestRadioValidate(t *testing.T) {
	bad := []Radio{
		{ElecJPerBit: -1, PacketBits: 1},
		{AmpJPerBitM2: math.NaN(), PacketBits: 1},
		{AggJPerBit: math.Inf(1), PacketBits: 1},
		{SenseJPerBit: -1e-12, PacketBits: 1},
		{ListenMW: -0.1, PacketBits: 1},
		{PacketBits: 0},
		{PacketBits: math.NaN()},
		{PacketBits: math.Inf(1)},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("bad radio %d accepted: %+v", i, r)
		}
	}
	if err := (Radio{PacketBits: 1}).Validate(); err != nil {
		t.Fatalf("minimal valid radio rejected: %v", err)
	}
}
