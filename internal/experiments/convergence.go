package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
	"repro/internal/report"
)

// Convergence (X-6) quantifies the paper's Section-6 caveat: "the drawback
// to Petri nets is their long simulation time that is required before the
// percentages stabilize. Evaluating a Markov model means just evaluating an
// analytical expression." At a small PUD the Markov closed form is
// essentially exact, so it serves as the reference; the table reports the
// Petri net's error and confidence width as the simulated horizon grows,
// along with measured wall-clock time — including the Markov evaluation
// time for contrast.
func Convergence(opt Options, horizons []float64) (*report.Table, error) {
	opt = opt.withDefaults()
	if len(horizons) == 0 {
		horizons = []float64{10, 100, 1000, 10000}
	}
	cfg := opt.Base
	cfg.PUD = 0.001 // regime where the closed form is exact
	ref, err := (core.Markov{}).Estimate(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("X-6: Petri-net convergence toward the exact solution (PDT=%g s, PUD=%g s, %d replications)",
			cfg.PDT, cfg.PUD, maxInt(cfg.Replications, 1)),
		"Method / horizon (s)", "Σ|Δ| vs exact (pp)", "Mean 95% CI (pp)", "Wall time")
	for _, h := range horizons {
		c := cfg
		c.SimTime = h
		c.Warmup = h / 10
		start := time.Now()
		pn, err := (core.PetriNet{}).Estimate(c)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		meanCI := 0.0
		for _, s := range energy.States {
			meanCI += pn.FractionsCI[s] * 100
		}
		meanCI /= float64(energy.NumStates)
		t.AddRow(
			fmt.Sprintf("PetriNet @ %g", h),
			report.F(sumAbsFractionDiff(ref, pn), 3),
			report.F(meanCI, 3),
			elapsed.Round(time.Microsecond).String())
	}
	start := time.Now()
	if _, err := (core.Markov{}).Estimate(cfg); err != nil {
		return nil, err
	}
	t.AddRow("Markov (closed form)", "0 (reference)", "-", time.Since(start).Round(time.Microsecond).String())
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Transient (X-7) shows the cold-start behaviour the steady-state tables
// hide: the expected token count of the power-state places of the Figure-3
// net over the first seconds after switch-on, computed by replicated
// transient simulation (TimeNet's transient analysis mode).
func Transient(opt Options, horizon float64, step float64, reps int) (*report.Figure, error) {
	opt = opt.withDefaults()
	if horizon <= 0 {
		horizon = 10
	}
	if step <= 0 {
		step = 0.25
	}
	if reps <= 0 {
		reps = 2000
	}
	cfg := opt.Base
	n := core.BuildCPUNet(cfg)
	res, err := petri.SimulateTransient(n, petri.TransientOptions{
		Seed:         cfg.Seed,
		Horizon:      horizon,
		Step:         step,
		Replications: reps,
	})
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		Title: fmt.Sprintf("X-7: transient state probabilities from cold start (PDT=%g s, PUD=%g s, %d replications)",
			cfg.PDT, cfg.PUD, reps),
		XLabel: "time since switch-on (s)",
		YLabel: "probability",
	}
	for state, place := range map[string]string{
		"standby": core.PlaceStandBy,
		"idle":    core.PlaceIdle,
		"active":  core.PlaceActive,
	} {
		id, ok := n.PlaceByName(place)
		if !ok {
			return nil, fmt.Errorf("experiments: missing place %q", place)
		}
		fig.AddSeries(state, res.Times, res.PlaceMean[id])
	}
	return fig, nil
}
