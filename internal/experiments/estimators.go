package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/sensornode"
	"repro/internal/workload"
)

// This file adapts the extension experiments' row generators to the core
// Estimator interface, so ErlangAblation, WorkloadComparison and Lifetime
// evaluate through Runner.RunBatch like the paper sweeps: shared worker
// pool, context cancellation down to the event loop, and the process-wide
// (config, method) result cache. Each adapter is a pure function of its
// Config — every parameter that varies between instances is part of Name()
// — which is the contract the cache keys on.

// workloadKind selects the arrival process of a workloadEstimator.
type workloadKind int

const (
	wlPoisson workloadKind = iota
	wlPeriodic
	wlMMPP
	wlClosed
)

// workloadEstimator runs the event-driven CPU simulator under a named
// arrival process derived from the Config: the X-3 comparison's rows. The
// generator is constructed fresh on every call (MMPP phase and other
// source state must not leak between runs), so the estimator stays a pure
// function of the Config.
type workloadEstimator struct {
	kind workloadKind
}

// Name implements core.Estimator; the kind is part of the cache identity.
func (w workloadEstimator) Name() string {
	switch w.kind {
	case wlPoisson:
		return "Workload(poisson)"
	case wlPeriodic:
		return "Workload(periodic)"
	case wlMMPP:
		return "Workload(mmpp)"
	default:
		return "Workload(closed)"
	}
}

// rowLabel renders the X-3 table's row heading for this workload at the
// given configuration (the MMPP label embeds its effective rate).
func (w workloadEstimator) rowLabel(cfg core.Config) string {
	switch w.kind {
	case wlPoisson:
		return "open Poisson"
	case wlPeriodic:
		return "periodic"
	case wlMMPP:
		return fmt.Sprintf("bursty MMPP (rate %.2f)", w.mmpp(cfg).Rate())
	default:
		return "closed (N=1, matched rate)"
	}
}

// mmpp builds the X-3 bursty source: a two-phase MMPP whose high phase
// bursts at 5x the nominal rate.
func (workloadEstimator) mmpp(cfg core.Config) *workload.MMPP2 {
	return workload.NewMMPP2(cfg.Lambda*5, cfg.Lambda/9, 1, 0.25)
}

// Estimate implements core.Estimator.
func (w workloadEstimator) Estimate(cfg core.Config) (*core.Estimate, error) {
	return w.EstimateContext(context.Background(), cfg)
}

// EstimateContext implements core.Estimator; cancellation aborts the
// replicated simulations mid-run.
func (w workloadEstimator) EstimateContext(ctx context.Context, cfg core.Config) (*core.Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	reps := cfg.Replications
	if reps == 0 {
		reps = 10
	}
	c := cpu.Config{
		Service: dist.ExpMean(1 / cfg.Mu),
		PDT:     cfg.PDT,
		PUD:     cfg.PUD,
		SimTime: cfg.SimTime,
		Warmup:  cfg.Warmup,
		Seed:    cfg.Seed,
	}
	switch w.kind {
	case wlPoisson:
		c.Arrivals = workload.NewPoisson(cfg.Lambda)
	case wlPeriodic:
		c.Arrivals = workload.NewPeriodic(1 / cfg.Lambda)
	case wlMMPP:
		c.Arrivals = w.mmpp(cfg)
	case wlClosed:
		think := 1/cfg.Lambda - 1/cfg.Mu
		if think <= 0 {
			return nil, fmt.Errorf("experiments: closed workload needs 1/lambda > 1/mu (got lambda=%g, mu=%g)", cfg.Lambda, cfg.Mu)
		}
		c.Closed = &workload.Closed{Customers: 1, Think: dist.ExpMean(think)}
	}
	rep, err := cpu.RunReplicationsContext(ctx, c, reps)
	if err != nil {
		return nil, err
	}
	est := &core.Estimate{
		Method:      w.Name(),
		Fractions:   rep.MeanFractions(),
		EnergyJ:     rep.EnergyJoules(cfg.Power, cfg.SimTime),
		EnergyCIJ:   rep.EnergyJoulesCI(cfg.Power, cfg.SimTime),
		MeanJobs:    rep.MeanJobs.Mean(),
		MeanLatency: rep.MeanLatency.Mean(),
	}
	for _, s := range energy.States {
		est.FractionsCI[s] = rep.FractionCI(s)
	}
	return est, nil
}

// lifetimeEstimator runs the composite CPU+radio sensor-node net and
// reports node-level power, throughput and battery lifetime through the
// Estimate's NodeMetrics: the X-5 sweep's row generator. The node
// parameters (radio, duty cycle, battery) are fixed per instance and baked
// into Name(), so the cache distinguishes differently equipped nodes; the
// CPU model comes from the scenario Config.
type lifetimeEstimator struct {
	node sensornode.Config
}

// Name implements core.Estimator; every fixed node parameter participates,
// keeping the estimator a pure function of (Name, Config).
func (l lifetimeEstimator) Name() string {
	n := l.node
	return fmt.Sprintf("Lifetime(tx=%g,listen=%g/%g,radio=%g/%g/%g,batt=%gmAh@%gV)",
		n.TxTime, n.ListenPeriod, n.ListenWindow,
		n.Radio.SleepMW, n.Radio.TxMW, n.Radio.ListenMW,
		n.Battery.CapacitymAh, n.Battery.Volts)
}

// Estimate implements core.Estimator.
func (l lifetimeEstimator) Estimate(cfg core.Config) (*core.Estimate, error) {
	return l.EstimateContext(context.Background(), cfg)
}

// EstimateContext implements core.Estimator; cancellation aborts the
// composite-net replications mid-simulation.
func (l lifetimeEstimator) EstimateContext(ctx context.Context, cfg core.Config) (*core.Estimate, error) {
	nc := l.node
	nc.CPU = cfg
	res, err := sensornode.EstimateContext(ctx, nc, cfg.Replications)
	if err != nil {
		return nil, err
	}
	return &core.Estimate{
		Method:    l.Name(),
		Fractions: res.CPUFractions,
		// Total node energy over the measured horizon, by analogy with the
		// CPU-only estimators' equation-25 accounting.
		EnergyJ: res.TotalAvgMW * cfg.SimTime / 1000,
		Node: core.NodeMetrics{
			CPUAvgMW:         res.CPUAvgMW,
			RadioAvgMW:       res.RadioAvgMW,
			TotalAvgMW:       res.TotalAvgMW,
			PacketsPerSecond: res.PacketsPerSecond,
			LifetimeSeconds:  res.LifetimeSeconds,
		},
	}, nil
}
