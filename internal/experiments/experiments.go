// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the extension experiments catalogued in
// DESIGN.md §5. Each runner returns a report.Table or report.Figure that
// cmd/wsnenergy renders as text, CSV or Markdown. Whole-sweep evaluation
// (Figures 4/5, Tables 4/5) fans out over the core Runner's worker pool.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/report"
)

// Options parameterizes the paper sweeps.
type Options struct {
	// Base is the shared model configuration (default core.PaperConfig).
	Base core.Config
	// PDTs is the Power Down Threshold sweep of Figures 4/5
	// (default 0.0, 0.1, ..., 1.0 as in the figures' x axes).
	PDTs []float64
	// PUDs is the Power Up Delay set of Tables 4/5
	// (default 0.001, 0.3, 10.0).
	PUDs []float64
	// Estimators are the compared methods (default core.Methods()).
	Estimators []core.Estimator
	// Parallelism bounds the sweep worker pool (default: all CPUs).
	Parallelism int
}

// Default returns the paper's experiment options.
func Default() Options {
	return Options{
		Base:       core.PaperConfig(),
		PDTs:       []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		PUDs:       []float64{0.001, 0.3, 10.0},
		Estimators: core.Methods(),
	}
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	d := Default()
	if o.Base.Lambda == 0 {
		o.Base = d.Base
	}
	if len(o.PDTs) == 0 {
		o.PDTs = d.PDTs
	}
	if len(o.PUDs) == 0 {
		o.PUDs = d.PUDs
	}
	if len(o.Estimators) == 0 {
		o.Estimators = d.Estimators
	}
	return o
}

// sweepPoint holds every estimator's result at one PDT value.
type sweepPoint struct {
	PDT       float64
	Estimates []*core.Estimate // parallel to the estimator list
}

// runSweepCtx evaluates all estimators across the PDT sweep at a fixed
// PUD, fanning the sweep points out over the Runner's worker pool. Results
// are deterministic for a given Options.Base.Seed at any parallelism.
func runSweepCtx(ctx context.Context, opt Options, pud float64) ([]sweepPoint, error) {
	r, err := core.NewRunner(
		core.WithConfig(opt.Base),
		core.WithEstimators(opt.Estimators...),
		core.WithParallelism(opt.Parallelism), // 0 = all CPUs; negative errors
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	scenarios := make([]core.Scenario, len(opt.PDTs))
	for i, pdt := range opt.PDTs {
		cfg := opt.Base
		cfg.PDT = pdt
		cfg.PUD = pud
		scenarios[i] = core.Scenario{Name: fmt.Sprintf("PDT=%g PUD=%g", pdt, pud), Config: cfg}
	}
	results, err := r.RunAll(ctx, scenarios)
	if err != nil {
		return nil, fmt.Errorf("experiments: sweep PUD=%v: %w", pud, err)
	}
	points := make([]sweepPoint, len(results))
	for i, res := range results {
		points[i] = sweepPoint{PDT: opt.PDTs[i], Estimates: res.Estimates}
	}
	return points, nil
}

// sumAbsFractionDiff returns the summed absolute difference of the four
// state fractions between two estimates, in percentage points.
func sumAbsFractionDiff(a, b *core.Estimate) float64 {
	d := 0.0
	for _, s := range energy.States {
		d += abs(a.Fractions[s]-b.Fractions[s]) * 100
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// pairNames lists the method pairs of Tables 4 and 5 in paper order.
var pairNames = [][2]int{{0, 1}, {0, 2}, {1, 2}} // Sim-Markov, Sim-PN, Markov-PN

// pairLabel renders the column header for a method pair.
func pairLabel(opt Options, pair [2]int) string {
	short := func(name string) string {
		switch name {
		case "Simulation":
			return "Sim"
		case "PetriNet":
			return "PN"
		}
		return name
	}
	return fmt.Sprintf("Avg %s-%s", short(opt.Estimators[pair[0]].Name()), short(opt.Estimators[pair[1]].Name()))
}

// requireThree validates that the option set carries the paper's three
// estimators for the pairwise tables.
func requireThree(opt Options) error {
	if len(opt.Estimators) != 3 {
		return fmt.Errorf("experiments: Tables 4/5 need exactly 3 estimators, got %d", len(opt.Estimators))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Structural tables (Tables 1-3 are inputs, reproduced for completeness)

// Table1 reproduces the Petri-net transition parameter table.
func Table1() *report.Table {
	t := report.NewTable("Table 1: CPU Jobs Petri Net Transition Parameters",
		"Transition", "Firing Distribution", "Delay", "Priority")
	t.AddRow(core.TransAR, "Exponential", "1/lambda (Arrivals)", "NA")
	t.AddRow(core.TransT1, "Instantaneous", "-", "4")
	t.AddRow(core.TransT2, "Instantaneous", "-", "1")
	t.AddRow(core.TransSR, "Exponential", "1/mu (ServiceRate)", "NA")
	t.AddRow(core.TransPDT, "Deterministic", "PDD", "NA")
	t.AddRow(core.TransT5, "Instantaneous", "-", "2")
	t.AddRow(core.TransT6, "Instantaneous", "-", "3")
	t.AddRow(core.TransPUT, "Deterministic", "PUD", "NA")
	return t
}

// Table2 reproduces the simulation parameter table for a configuration.
func Table2(cfg core.Config) *report.Table {
	t := report.NewTable("Table 2: Simulation Parameters", "Parameter", "Value")
	t.AddRow("Total Simulated Time", fmt.Sprintf("%g sec", cfg.SimTime))
	t.AddRow("Arrival Rate", fmt.Sprintf("%g per sec", cfg.Lambda))
	t.AddRow("Service Rate", fmt.Sprintf("%g per sec (mean service %g sec)", cfg.Mu, 1/cfg.Mu))
	return t
}

// Table3 reproduces the power-rate table for a power model.
func Table3(p energy.PowerModel) *report.Table {
	t := report.NewTable(fmt.Sprintf("Table 3: Power Rate Parameters for the %s CPU (mW)", p.Name),
		"State", "Power Rate (mW)")
	t.AddRow("Standby", report.F(p.MW[energy.Standby], 3))
	t.AddRow("Idle", report.F(p.MW[energy.Idle], 3))
	t.AddRow("Powering Up", report.F(p.MW[energy.PowerUp], 3))
	t.AddRow("Active", report.F(p.MW[energy.Active], 3))
	return t
}

// ---------------------------------------------------------------------------
// Figure 4: steady-state percentages vs Power Down Threshold

// Figure4 regenerates the steady-state-percentage sweep at the first
// configured PUD (the paper uses 0.001 s).
func Figure4(opt Options) (*report.Figure, error) {
	return Figure4Ctx(context.Background(), opt)
}

// Figure4Ctx is Figure4 with cancellation: a cancelled context aborts the
// sweep between points.
func Figure4Ctx(ctx context.Context, opt Options) (*report.Figure, error) {
	opt = opt.withDefaults()
	pud := opt.PUDs[0]
	points, err := runSweepCtx(ctx, opt, pud)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		Title:  fmt.Sprintf("Figure 4: Steady-state percentages vs Power Down Threshold (PUD=%g s)", pud),
		XLabel: "Power Down Threshold (sec)",
		YLabel: "Percentage of time (%)",
	}
	for ei, est := range opt.Estimators {
		for _, s := range energy.States {
			x := make([]float64, len(points))
			y := make([]float64, len(points))
			for i, pt := range points {
				x[i] = pt.PDT
				y[i] = pt.Estimates[ei].Fractions[s] * 100
			}
			fig.AddSeries(fmt.Sprintf("%s/%s", est.Name(), s), x, y)
		}
	}
	return fig, nil
}

// Figure5 regenerates the energy sweep at the first configured PUD.
func Figure5(opt Options) (*report.Figure, error) {
	return Figure5Ctx(context.Background(), opt)
}

// Figure5Ctx is Figure5 with cancellation.
func Figure5Ctx(ctx context.Context, opt Options) (*report.Figure, error) {
	opt = opt.withDefaults()
	pud := opt.PUDs[0]
	points, err := runSweepCtx(ctx, opt, pud)
	if err != nil {
		return nil, err
	}
	fig := &report.Figure{
		Title:  fmt.Sprintf("Figure 5: Energy (J) vs Power Down Threshold (PUD=%g s, %g s horizon)", pud, opt.Base.SimTime),
		XLabel: "Power Down Threshold (sec)",
		YLabel: "Energy (Joules)",
	}
	for ei, est := range opt.Estimators {
		x := make([]float64, len(points))
		y := make([]float64, len(points))
		for i, pt := range points {
			x[i] = pt.PDT
			y[i] = pt.Estimates[ei].EnergyJ
		}
		fig.AddSeries(est.Name(), x, y)
	}
	return fig, nil
}

// ---------------------------------------------------------------------------
// Tables 4 and 5: pairwise deviations across the PUD set

// Table4 regenerates the steady-state-percentage deviation table: for each
// PUD, the mean over the PDT sweep of the summed absolute per-state
// differences (percentage points) between each pair of methods.
func Table4(opt Options) (*report.Table, error) {
	return Table4Ctx(context.Background(), opt)
}

// Table4Ctx is Table4 with cancellation.
func Table4Ctx(ctx context.Context, opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	if err := requireThree(opt); err != nil {
		return nil, err
	}
	t := report.NewTable("Table 4: Δ Steady State Percentages (%) for Varying Power Up Delay",
		"Power Up Delay (sec)",
		pairLabel(opt, pairNames[0]), pairLabel(opt, pairNames[1]), pairLabel(opt, pairNames[2]))
	for _, pud := range opt.PUDs {
		points, err := runSweepCtx(ctx, opt, pud)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%g", pud)}
		for _, pair := range pairNames {
			sum := 0.0
			for _, pt := range points {
				sum += sumAbsFractionDiff(pt.Estimates[pair[0]], pt.Estimates[pair[1]])
			}
			row = append(row, report.F(sum/float64(len(points)), 3))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table5 regenerates the energy deviation table: mean over the PDT sweep of
// the absolute energy difference (Joules) between each pair of methods.
func Table5(opt Options) (*report.Table, error) {
	return Table5Ctx(context.Background(), opt)
}

// Table5Ctx is Table5 with cancellation.
func Table5Ctx(ctx context.Context, opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	if err := requireThree(opt); err != nil {
		return nil, err
	}
	t := report.NewTable("Table 5: Δ Energy Consumption (Joules) for Varying Power Up Delay",
		"Power Up Delay (sec)",
		pairLabel(opt, pairNames[0]), pairLabel(opt, pairNames[1]), pairLabel(opt, pairNames[2]))
	for _, pud := range opt.PUDs {
		points, err := runSweepCtx(ctx, opt, pud)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%g", pud)}
		for _, pair := range pairNames {
			sum := 0.0
			for _, pt := range points {
				sum += abs(pt.Estimates[pair[0]].EnergyJ - pt.Estimates[pair[1]].EnergyJ)
			}
			row = append(row, report.F(sum/float64(len(points)), 3))
		}
		t.AddRow(row...)
	}
	return t, nil
}
