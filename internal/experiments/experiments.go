// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5) plus the extension experiments catalogued in
// DESIGN.md §5. Each runner returns a report.Table or report.Figure that
// cmd/wsnenergy renders as text, CSV or Markdown. Whole-sweep evaluation
// (Figures 4/5, Tables 4/5) fans out over the core Runner's worker pool.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/report"
)

// Options parameterizes the paper sweeps.
type Options struct {
	// Base is the shared model configuration (default core.PaperConfig).
	Base core.Config
	// PDTs is the Power Down Threshold sweep of Figures 4/5
	// (default 0.0, 0.1, ..., 1.0 as in the figures' x axes).
	PDTs []float64
	// PUDs is the Power Up Delay set of Tables 4/5
	// (default 0.001, 0.3, 10.0).
	PUDs []float64
	// Estimators are the compared methods (default core.Methods()).
	Estimators []core.Estimator
	// Parallelism bounds the sweep worker pool (default: all CPUs).
	Parallelism int
}

// Default returns the paper's experiment options.
func Default() Options {
	return Options{
		Base:       core.PaperConfig(),
		PDTs:       []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		PUDs:       []float64{0.001, 0.3, 10.0},
		Estimators: core.Methods(),
	}
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	d := Default()
	if o.Base.Lambda == 0 {
		o.Base = d.Base
	}
	if len(o.PDTs) == 0 {
		o.PDTs = d.PDTs
	}
	if len(o.PUDs) == 0 {
		o.PUDs = d.PUDs
	}
	if len(o.Estimators) == 0 {
		o.Estimators = d.Estimators
	}
	return o
}

// sweepPoint holds every estimator's result at one PDT value.
type sweepPoint struct {
	PDT       float64
	Estimates []*core.Estimate // parallel to the estimator list
}

// SweepScenarios returns the PDT-sweep scenario list at a fixed PUD — the
// exact batch the Figure 4/5 and Table 4/5 machinery evaluates, exposed so
// external coordinators (internal/shard, `wsnenergy shard plan`) can
// partition the same batch across processes.
func SweepScenarios(opt Options, pud float64) []core.Scenario {
	opt = opt.withDefaults()
	scenarios := make([]core.Scenario, len(opt.PDTs))
	for i, pdt := range opt.PDTs {
		cfg := opt.Base
		cfg.PDT = pdt
		cfg.PUD = pud
		scenarios[i] = core.Scenario{Name: fmt.Sprintf("PDT=%g PUD=%g", pdt, pud), Config: cfg}
	}
	return scenarios
}

// GridScenarios returns the full scenario grid of a sweep artifact in
// canonical order: "fig4" and "fig5" sweep the PDTs at the first
// configured PUD; "table4" and "table5" concatenate the PDT sweep for
// every PUD (PUD-major). The order is the contract the From-results
// renderers and the shard merger rely on.
func GridScenarios(name string, opt Options) ([]core.Scenario, error) {
	opt = opt.withDefaults()
	switch name {
	case "fig4", "fig5":
		return SweepScenarios(opt, opt.PUDs[0]), nil
	case "table4", "table5":
		var out []core.Scenario
		for _, pud := range opt.PUDs {
			out = append(out, SweepScenarios(opt, pud)...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("experiments: %q is not a shardable sweep (want fig4, fig5, table4 or table5)", name)
	}
}

// newSweepRunner builds the Runner every sweep artifact shares: base
// config, the configured estimators, and no explicit master seed (the
// Runner defaults it to Base.Seed) — the parameterization worker processes
// must replicate for a sharded sweep to merge byte-identically.
func newSweepRunner(opt Options) (*core.Runner, error) {
	r, err := core.NewRunner(
		core.WithConfig(opt.Base),
		core.WithEstimators(opt.Estimators...),
		core.WithParallelism(opt.Parallelism), // 0 = all CPUs; negative errors
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return r, nil
}

// pointsFromEstimates shapes one PDT sweep's estimate slices into points.
func pointsFromEstimates(opt Options, ests [][]*core.Estimate) []sweepPoint {
	points := make([]sweepPoint, len(ests))
	for i := range ests {
		points[i] = sweepPoint{PDT: opt.PDTs[i], Estimates: ests[i]}
	}
	return points
}

// sweepEstimates validates and slices a result list covering exactly the
// PDT sweep repeated once per element of puds (PUD-major), returning one
// estimate matrix per PUD.
func sweepEstimates(opt Options, puds []float64, results []core.Result) ([][][]*core.Estimate, error) {
	want := len(opt.PDTs) * len(puds)
	if len(results) != want {
		return nil, fmt.Errorf("experiments: %d results for a %d-scenario grid (%d PDTs × %d PUDs)",
			len(results), want, len(opt.PDTs), len(puds))
	}
	perPUD := make([][][]*core.Estimate, len(puds))
	for p := range puds {
		block := results[p*len(opt.PDTs) : (p+1)*len(opt.PDTs)]
		ests := make([][]*core.Estimate, len(block))
		for i, res := range block {
			if res.Err != nil {
				return nil, fmt.Errorf("experiments: scenario %d: %w", res.Index, res.Err)
			}
			if len(res.Estimates) != len(opt.Estimators) {
				return nil, fmt.Errorf("experiments: scenario %d carries %d estimates, want %d",
					res.Index, len(res.Estimates), len(opt.Estimators))
			}
			ests[i] = res.Estimates
		}
		perPUD[p] = ests
	}
	return perPUD, nil
}

// runSweepCtx evaluates all estimators across the PDT sweep at a fixed
// PUD, fanning the sweep points out over the Runner's worker pool. Results
// are deterministic for a given Options.Base.Seed at any parallelism.
func runSweepCtx(ctx context.Context, opt Options, pud float64) ([]sweepPoint, error) {
	r, err := newSweepRunner(opt)
	if err != nil {
		return nil, err
	}
	results, err := r.RunAll(ctx, SweepScenarios(opt, pud))
	if err != nil {
		return nil, fmt.Errorf("experiments: sweep PUD=%v: %w", pud, err)
	}
	perPUD, err := sweepEstimates(opt, []float64{pud}, results)
	if err != nil {
		return nil, err
	}
	return pointsFromEstimates(opt, perPUD[0]), nil
}

// sumAbsFractionDiff returns the summed absolute difference of the four
// state fractions between two estimates, in percentage points.
func sumAbsFractionDiff(a, b *core.Estimate) float64 {
	d := 0.0
	for _, s := range energy.States {
		d += abs(a.Fractions[s]-b.Fractions[s]) * 100
	}
	return d
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// pairNames lists the method pairs of Tables 4 and 5 in paper order.
var pairNames = [][2]int{{0, 1}, {0, 2}, {1, 2}} // Sim-Markov, Sim-PN, Markov-PN

// pairLabel renders the column header for a method pair.
func pairLabel(opt Options, pair [2]int) string {
	short := func(name string) string {
		switch name {
		case "Simulation":
			return "Sim"
		case "PetriNet":
			return "PN"
		}
		return name
	}
	return fmt.Sprintf("Avg %s-%s", short(opt.Estimators[pair[0]].Name()), short(opt.Estimators[pair[1]].Name()))
}

// requireThree validates that the option set carries the paper's three
// estimators for the pairwise tables.
func requireThree(opt Options) error {
	if len(opt.Estimators) != 3 {
		return fmt.Errorf("experiments: Tables 4/5 need exactly 3 estimators, got %d", len(opt.Estimators))
	}
	return nil
}

// ---------------------------------------------------------------------------
// Structural tables (Tables 1-3 are inputs, reproduced for completeness)

// Table1 reproduces the Petri-net transition parameter table.
func Table1() *report.Table {
	t := report.NewTable("Table 1: CPU Jobs Petri Net Transition Parameters",
		"Transition", "Firing Distribution", "Delay", "Priority")
	t.AddRow(core.TransAR, "Exponential", "1/lambda (Arrivals)", "NA")
	t.AddRow(core.TransT1, "Instantaneous", "-", "4")
	t.AddRow(core.TransT2, "Instantaneous", "-", "1")
	t.AddRow(core.TransSR, "Exponential", "1/mu (ServiceRate)", "NA")
	t.AddRow(core.TransPDT, "Deterministic", "PDD", "NA")
	t.AddRow(core.TransT5, "Instantaneous", "-", "2")
	t.AddRow(core.TransT6, "Instantaneous", "-", "3")
	t.AddRow(core.TransPUT, "Deterministic", "PUD", "NA")
	return t
}

// Table2 reproduces the simulation parameter table for a configuration.
func Table2(cfg core.Config) *report.Table {
	t := report.NewTable("Table 2: Simulation Parameters", "Parameter", "Value")
	t.AddRow("Total Simulated Time", fmt.Sprintf("%g sec", cfg.SimTime))
	t.AddRow("Arrival Rate", fmt.Sprintf("%g per sec", cfg.Lambda))
	t.AddRow("Service Rate", fmt.Sprintf("%g per sec (mean service %g sec)", cfg.Mu, 1/cfg.Mu))
	return t
}

// Table3 reproduces the power-rate table for a power model.
func Table3(p energy.PowerModel) *report.Table {
	t := report.NewTable(fmt.Sprintf("Table 3: Power Rate Parameters for the %s CPU (mW)", p.Name),
		"State", "Power Rate (mW)")
	t.AddRow("Standby", report.F(p.MW[energy.Standby], 3))
	t.AddRow("Idle", report.F(p.MW[energy.Idle], 3))
	t.AddRow("Powering Up", report.F(p.MW[energy.PowerUp], 3))
	t.AddRow("Active", report.F(p.MW[energy.Active], 3))
	return t
}

// ---------------------------------------------------------------------------
// Figure 4: steady-state percentages vs Power Down Threshold

// Figure4 regenerates the steady-state-percentage sweep at the first
// configured PUD (the paper uses 0.001 s).
func Figure4(opt Options) (*report.Figure, error) {
	return Figure4Ctx(context.Background(), opt)
}

// Figure4Ctx is Figure4 with cancellation: a cancelled context aborts the
// sweep between points.
func Figure4Ctx(ctx context.Context, opt Options) (*report.Figure, error) {
	opt = opt.withDefaults()
	points, err := runSweepCtx(ctx, opt, opt.PUDs[0])
	if err != nil {
		return nil, err
	}
	return renderFigure4(opt, points), nil
}

// Figure4FromResults renders Figure 4 from precomputed results covering
// GridScenarios("fig4", opt) in order — the merge half of a sharded sweep.
// Because per-scenario seeds are content-derived and the result
// serialization round-trips float64 exactly, the output is byte-identical
// to Figure4Ctx evaluating the same options in-process.
func Figure4FromResults(opt Options, results []core.Result) (*report.Figure, error) {
	opt = opt.withDefaults()
	perPUD, err := sweepEstimates(opt, opt.PUDs[:1], results)
	if err != nil {
		return nil, err
	}
	return renderFigure4(opt, pointsFromEstimates(opt, perPUD[0])), nil
}

// renderFigure4 builds the figure from evaluated sweep points.
func renderFigure4(opt Options, points []sweepPoint) *report.Figure {
	pud := opt.PUDs[0]
	fig := &report.Figure{
		Title:  fmt.Sprintf("Figure 4: Steady-state percentages vs Power Down Threshold (PUD=%g s)", pud),
		XLabel: "Power Down Threshold (sec)",
		YLabel: "Percentage of time (%)",
	}
	for ei, est := range opt.Estimators {
		for _, s := range energy.States {
			x := make([]float64, len(points))
			y := make([]float64, len(points))
			for i, pt := range points {
				x[i] = pt.PDT
				y[i] = pt.Estimates[ei].Fractions[s] * 100
			}
			fig.AddSeries(fmt.Sprintf("%s/%s", est.Name(), s), x, y)
		}
	}
	return fig
}

// Figure5 regenerates the energy sweep at the first configured PUD.
func Figure5(opt Options) (*report.Figure, error) {
	return Figure5Ctx(context.Background(), opt)
}

// Figure5Ctx is Figure5 with cancellation.
func Figure5Ctx(ctx context.Context, opt Options) (*report.Figure, error) {
	opt = opt.withDefaults()
	points, err := runSweepCtx(ctx, opt, opt.PUDs[0])
	if err != nil {
		return nil, err
	}
	return renderFigure5(opt, points), nil
}

// Figure5FromResults renders Figure 5 from precomputed results covering
// GridScenarios("fig5", opt) in order; see Figure4FromResults.
func Figure5FromResults(opt Options, results []core.Result) (*report.Figure, error) {
	opt = opt.withDefaults()
	perPUD, err := sweepEstimates(opt, opt.PUDs[:1], results)
	if err != nil {
		return nil, err
	}
	return renderFigure5(opt, pointsFromEstimates(opt, perPUD[0])), nil
}

// renderFigure5 builds the figure from evaluated sweep points.
func renderFigure5(opt Options, points []sweepPoint) *report.Figure {
	pud := opt.PUDs[0]
	fig := &report.Figure{
		Title:  fmt.Sprintf("Figure 5: Energy (J) vs Power Down Threshold (PUD=%g s, %g s horizon)", pud, opt.Base.SimTime),
		XLabel: "Power Down Threshold (sec)",
		YLabel: "Energy (Joules)",
	}
	for ei, est := range opt.Estimators {
		x := make([]float64, len(points))
		y := make([]float64, len(points))
		for i, pt := range points {
			x[i] = pt.PDT
			y[i] = pt.Estimates[ei].EnergyJ
		}
		fig.AddSeries(est.Name(), x, y)
	}
	return fig
}

// ---------------------------------------------------------------------------
// Tables 4 and 5: pairwise deviations across the PUD set

// Table4 regenerates the steady-state-percentage deviation table: for each
// PUD, the mean over the PDT sweep of the summed absolute per-state
// differences (percentage points) between each pair of methods.
func Table4(opt Options) (*report.Table, error) {
	return Table4Ctx(context.Background(), opt)
}

// Table4Ctx is Table4 with cancellation. The full PDT×PUD grid runs as one
// batch, so every (point, estimator) pair fans out over the worker pool at
// once (points shared with Figure 4/5 still come from the cache).
func Table4Ctx(ctx context.Context, opt Options) (*report.Table, error) {
	// Fail fast on a wrong estimator set before paying for the sweep.
	if err := requireThree(opt.withDefaults()); err != nil {
		return nil, err
	}
	results, err := runGridCtx(ctx, opt, "table4")
	if err != nil {
		return nil, err
	}
	return Table4FromResults(opt, results)
}

// Table4FromResults renders Table 4 from precomputed results covering
// GridScenarios("table4", opt) in order — the merge half of a sharded
// sweep, byte-identical to Table4Ctx evaluating the same options.
func Table4FromResults(opt Options, results []core.Result) (*report.Table, error) {
	opt = opt.withDefaults()
	if err := requireThree(opt); err != nil {
		return nil, err
	}
	perPUD, err := sweepEstimates(opt, opt.PUDs, results)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 4: Δ Steady State Percentages (%) for Varying Power Up Delay",
		"Power Up Delay (sec)",
		pairLabel(opt, pairNames[0]), pairLabel(opt, pairNames[1]), pairLabel(opt, pairNames[2]))
	for p, pud := range opt.PUDs {
		points := pointsFromEstimates(opt, perPUD[p])
		row := []string{fmt.Sprintf("%g", pud)}
		for _, pair := range pairNames {
			sum := 0.0
			for _, pt := range points {
				sum += sumAbsFractionDiff(pt.Estimates[pair[0]], pt.Estimates[pair[1]])
			}
			row = append(row, report.F(sum/float64(len(points)), 3))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runGridCtx evaluates a sweep artifact's whole scenario grid as one
// batch.
func runGridCtx(ctx context.Context, opt Options, name string) ([]core.Result, error) {
	opt = opt.withDefaults()
	scenarios, err := GridScenarios(name, opt)
	if err != nil {
		return nil, err
	}
	r, err := newSweepRunner(opt)
	if err != nil {
		return nil, err
	}
	results, err := r.RunAll(ctx, scenarios)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s grid: %w", name, err)
	}
	return results, nil
}

// Table5 regenerates the energy deviation table: mean over the PDT sweep of
// the absolute energy difference (Joules) between each pair of methods.
func Table5(opt Options) (*report.Table, error) {
	return Table5Ctx(context.Background(), opt)
}

// Table5Ctx is Table5 with cancellation; like Table4Ctx it evaluates the
// whole grid as one batch.
func Table5Ctx(ctx context.Context, opt Options) (*report.Table, error) {
	// Fail fast on a wrong estimator set before paying for the sweep.
	if err := requireThree(opt.withDefaults()); err != nil {
		return nil, err
	}
	results, err := runGridCtx(ctx, opt, "table5")
	if err != nil {
		return nil, err
	}
	return Table5FromResults(opt, results)
}

// Table5FromResults renders Table 5 from precomputed results covering
// GridScenarios("table5", opt) in order; see Table4FromResults.
func Table5FromResults(opt Options, results []core.Result) (*report.Table, error) {
	opt = opt.withDefaults()
	if err := requireThree(opt); err != nil {
		return nil, err
	}
	perPUD, err := sweepEstimates(opt, opt.PUDs, results)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 5: Δ Energy Consumption (Joules) for Varying Power Up Delay",
		"Power Up Delay (sec)",
		pairLabel(opt, pairNames[0]), pairLabel(opt, pairNames[1]), pairLabel(opt, pairNames[2]))
	for p, pud := range opt.PUDs {
		points := pointsFromEstimates(opt, perPUD[p])
		row := []string{fmt.Sprintf("%g", pud)}
		for _, pair := range pairNames {
			sum := 0.0
			for _, pt := range points {
				sum += abs(pt.Estimates[pair[0]].EnergyJ - pt.Estimates[pair[1]].EnergyJ)
			}
			row = append(row, report.F(sum/float64(len(points)), 3))
		}
		t.AddRow(row...)
	}
	return t, nil
}
