package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
)

// quickOptions shrinks the sweeps so the full experiment suite runs in
// seconds under go test; cmd/wsnenergy uses the full Default() options.
func quickOptions() Options {
	opt := Default()
	opt.Base.SimTime = 400
	opt.Base.Warmup = 50
	opt.Base.Replications = 3
	opt.PDTs = []float64{0, 0.5, 1.0}
	opt.PUDs = []float64{0.001, 10}
	return opt
}

func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestTable1Static(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 8 {
		t.Fatalf("Table 1 rows = %d, want 8 transitions", len(tb.Rows))
	}
	ascii := tb.ASCII()
	for _, name := range []string{"AR", "T1", "T2", "SR", "PDT", "T5", "T6", "PUT", "Deterministic"} {
		if !strings.Contains(ascii, name) {
			t.Fatalf("Table 1 missing %q:\n%s", name, ascii)
		}
	}
}

func TestTable2(t *testing.T) {
	tb := Table2(core.PaperConfig())
	ascii := tb.ASCII()
	for _, want := range []string{"1000 sec", "1 per sec", "mean service 0.1 sec"} {
		if !strings.Contains(ascii, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, ascii)
		}
	}
}

func TestTable3(t *testing.T) {
	tb := Table3(energy.PXA271)
	ascii := tb.ASCII()
	for _, want := range []string{"17.000", "88.000", "192.442", "193.000"} {
		if !strings.Contains(ascii, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, ascii)
		}
	}
}

func TestFigure4ShapeAndTrends(t *testing.T) {
	fig, err := Figure4(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 3 methods x 4 states.
	if len(fig.Series) != 12 {
		t.Fatalf("series = %d, want 12", len(fig.Series))
	}
	// Locate the Markov standby and idle series (analytic, noise-free)
	// and verify the paper's trends: standby falls, idle rises with PDT.
	for _, s := range fig.Series {
		switch s.Name {
		case "Markov/standby":
			if !(s.Y[0] > s.Y[len(s.Y)-1]) {
				t.Errorf("standby should fall with PDT: %v", s.Y)
			}
		case "Markov/idle":
			if !(s.Y[0] < s.Y[len(s.Y)-1]) {
				t.Errorf("idle should rise with PDT: %v", s.Y)
			}
		case "Markov/active":
			for _, v := range s.Y {
				if math.Abs(v-10) > 1 { // rho = 10%
					t.Errorf("active should stay ~10%%: %v", s.Y)
					break
				}
			}
		}
	}
	// Render paths do not panic and contain the series names.
	if !strings.Contains(fig.CSV(), "Simulation/standby") {
		t.Fatal("figure CSV missing simulation series")
	}
	if !strings.Contains(fig.ASCIIChart(60, 16), "PetriNet/idle") {
		t.Fatal("figure chart missing legend")
	}
}

func TestFigure5EnergyRises(t *testing.T) {
	fig, err := Figure5(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("%s: energy should rise with PDT: %v", s.Name, s.Y)
		}
		// Physical bounds for the PXA271 over 400 s: between all-standby
		// and all-active.
		for _, v := range s.Y {
			if v < 17*0.4 || v > 193*0.4 {
				t.Errorf("%s: energy %v J outside bounds", s.Name, v)
			}
		}
	}
}

func TestTable4ReproducesPaperOrdering(t *testing.T) {
	tb, err := Table4(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want one per PUD", len(tb.Rows))
	}
	// Columns: PUD, Sim-Markov, Sim-PN, Markov-PN.
	smallD := tb.Rows[0]
	largeD := tb.Rows[1]
	simMarkovSmall := parseCell(t, smallD[1])
	simMarkovLarge := parseCell(t, largeD[1])
	simPNLarge := parseCell(t, largeD[2])
	// The paper's core finding: Markov error explodes with D while the
	// Petri net stays near the simulation.
	if simMarkovLarge < 5*simMarkovSmall {
		t.Errorf("Sim-Markov should explode with D: small=%v large=%v", simMarkovSmall, simMarkovLarge)
	}
	if simMarkovLarge < 3*simPNLarge {
		t.Errorf("at D=10, Markov error (%v) should dominate PN error (%v)", simMarkovLarge, simPNLarge)
	}
}

func TestTable5EnergyOrdering(t *testing.T) {
	tb, err := Table5(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	largeD := tb.Rows[len(tb.Rows)-1]
	simMarkov := parseCell(t, largeD[1])
	simPN := parseCell(t, largeD[2])
	if simMarkov < 2*simPN {
		t.Errorf("at D=10, |Sim-Markov| energy (%v J) should dominate |Sim-PN| (%v J)", simMarkov, simPN)
	}
}

func TestTablesRequireThreeEstimators(t *testing.T) {
	opt := quickOptions()
	opt.Estimators = []core.Estimator{core.Markov{}}
	if _, err := Table4(opt); err == nil {
		t.Fatal("Table4 accepted 1 estimator")
	}
	if _, err := Table5(opt); err == nil {
		t.Fatal("Table5 accepted 1 estimator")
	}
}

func TestErlangAblationConverges(t *testing.T) {
	opt := quickOptions()
	opt.Base.SimTime = 2000
	opt.Base.Replications = 6
	tb, err := ErlangAblation(opt, []int{1, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: Markov, K=1, K=8, K=32, PetriNet.
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
	k1 := parseCell(t, tb.Rows[1][1])
	k32 := parseCell(t, tb.Rows[3][1])
	if k32 >= k1 {
		t.Errorf("Erlang error should shrink with K: K=1 %v vs K=32 %v", k1, k32)
	}
	markov := parseCell(t, tb.Rows[0][1])
	if k32 >= markov {
		t.Errorf("Erlang K=32 (%v) should beat plain Markov (%v) at large D", k32, markov)
	}
}

func TestPolicyAblationTradeoff(t *testing.T) {
	opt := quickOptions()
	opt.Base.SimTime = 2000
	tb, err := PolicyAblation(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 policies", len(tb.Rows))
	}
	eNever := parseCell(t, tb.Rows[0][1])
	eAlways := parseCell(t, tb.Rows[2][1])
	lNever := parseCell(t, tb.Rows[0][2])
	lAlways := parseCell(t, tb.Rows[2][2])
	if eAlways >= eNever {
		t.Errorf("always-sleep should save energy: %v vs %v", eAlways, eNever)
	}
	if lAlways <= lNever {
		t.Errorf("always-sleep should cost latency: %v vs %v", lAlways, lNever)
	}
}

func TestWorkloadComparison(t *testing.T) {
	opt := quickOptions()
	opt.Base.SimTime = 1500
	tb, err := WorkloadComparison(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("rows = %d, want >= 4 workloads", len(tb.Rows))
	}
	// The periodic workload at rate 1 with PDT 0.5 never sleeps mid-gap
	// less often than Poisson... at minimum all energies are physical.
	for _, row := range tb.Rows {
		e := parseCell(t, row[1])
		if e < 17*1.5 || e > 193*1.5 {
			t.Errorf("workload %s: energy %v J outside bounds", row[0], e)
		}
	}
}

func TestCTMCCrossCheckAgreement(t *testing.T) {
	opt := quickOptions()
	tb, err := CTMCCrossCheck(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 states", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		exact := parseCell(t, row[1])
		sim := parseCell(t, row[2])
		erl := parseCell(t, row[3])
		if math.Abs(exact-sim) > 0.03 {
			t.Errorf("state %s: CTMC %v vs sim %v", row[0], exact, sim)
		}
		if math.Abs(exact-erl) > 0.01 {
			t.Errorf("state %s: CTMC %v vs Erlang %v", row[0], exact, erl)
		}
	}
}

func TestLifetimeDecreasesWithLoad(t *testing.T) {
	opt := quickOptions()
	tb, err := Lifetime(opt, []float64{0.2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	light := parseCell(t, tb.Rows[0][5])
	heavy := parseCell(t, tb.Rows[1][5])
	if heavy >= light {
		t.Errorf("lifetime should fall with load: %v vs %v days", light, heavy)
	}
}

func TestConvergenceErrorShrinksWithHorizon(t *testing.T) {
	opt := quickOptions()
	opt.Base.Replications = 4
	tb, err := Convergence(opt, []float64{20, 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Rows: PN @ 20, PN @ 2000, Markov reference.
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	short := parseCell(t, tb.Rows[0][1])
	long := parseCell(t, tb.Rows[1][1])
	if long >= short {
		t.Errorf("PN error did not shrink with horizon: %v -> %v", short, long)
	}
	shortCI := parseCell(t, tb.Rows[0][2])
	longCI := parseCell(t, tb.Rows[1][2])
	if longCI >= shortCI {
		t.Errorf("PN CI did not shrink with horizon: %v -> %v", shortCI, longCI)
	}
}

func TestTransientFigure(t *testing.T) {
	opt := quickOptions()
	fig, err := Transient(opt, 5, 0.5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if s.Name == "standby" {
			// Cold start: the CPU begins in standby with certainty.
			if s.Y[0] != 1 {
				t.Errorf("P(standby) at t=0 = %v, want 1", s.Y[0])
			}
			// By the end of the window it must have dropped toward the
			// stationary value (~0.54 at PDT=0.5).
			if last := s.Y[len(s.Y)-1]; last > 0.8 {
				t.Errorf("P(standby) did not decay: %v", last)
			}
		}
	}
}

func TestNetworkLifetime(t *testing.T) {
	tb, err := NetworkLifetime(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 topologies", len(tb.Rows))
	}
	// The 8-node line must not outlive the 4-node line (more traffic
	// funnels into the bottleneck).
	life4 := parseCell(t, tb.Rows[0][4])
	life8 := parseCell(t, tb.Rows[1][4])
	if life8 > life4 {
		t.Errorf("8-node line (%v d) outlives 4-node line (%v d)", life8, life4)
	}
}

// TestSweepDeterministicAcrossParallelism pins the Runner rewire's
// contract: a sweep's numbers must not depend on the worker-pool size.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	opt := quickOptions()
	opt.Base.Replications = 2
	opt.Parallelism = 1
	seq, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the memoized results of the first sweep so the parallel run
	// actually evaluates estimators on the worker pool instead of
	// answering from the cache.
	core.ResetEstimateCache()
	opt.Parallelism = 4
	par, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Series) != len(par.Series) {
		t.Fatalf("series count differs: %d vs %d", len(seq.Series), len(par.Series))
	}
	for si := range seq.Series {
		for i := range seq.Series[si].Y {
			if seq.Series[si].Y[i] != par.Series[si].Y[i] {
				t.Fatalf("series %s point %d: sequential %v != parallel %v",
					seq.Series[si].Name, i, seq.Series[si].Y[i], par.Series[si].Y[i])
			}
		}
	}
}

func TestDefaultsFilled(t *testing.T) {
	var opt Options
	opt = opt.withDefaults()
	if len(opt.PDTs) != 11 || len(opt.PUDs) != 3 || len(opt.Estimators) != 3 {
		t.Fatalf("defaults wrong: %d PDTs, %d PUDs, %d estimators",
			len(opt.PDTs), len(opt.PUDs), len(opt.Estimators))
	}
	if opt.Base.Lambda != 1 {
		t.Fatal("base config not defaulted")
	}
}
