package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dist"
	"repro/internal/energy"
	"repro/internal/network"
	"repro/internal/petri"
	"repro/internal/report"
	"repro/internal/sensornode"
	"repro/internal/workload"
)

// ErlangAblation (X-1) quantifies how many Erlang phases a Markov chain
// needs before constant delays stop hurting it: at the largest configured
// PUD it compares the plain supplementary-variable model and ErlangMarkov
// with growing K against a high-precision simulation.
func ErlangAblation(opt Options, ks []int) (*report.Table, error) {
	return ErlangAblationCtx(context.Background(), opt, ks)
}

// ErlangAblationCtx is ErlangAblation through Runner.RunBatch: all methods
// evaluate concurrently on the worker pool against one fixed-seed scenario
// (seed derivation off, so every method sees the configuration's own seed —
// the historical cross-method comparability contract), repeated points are
// answered from the process-wide result cache, and a cancelled context
// aborts the simulations mid-replication.
func ErlangAblationCtx(ctx context.Context, opt Options, ks []int) (*report.Table, error) {
	opt = opt.withDefaults()
	if len(ks) == 0 {
		ks = []int{1, 2, 4, 8, 16, 32, 64}
	}
	cfg := opt.Base
	cfg.PUD = opt.PUDs[len(opt.PUDs)-1]
	ests := make([]core.Estimator, 0, len(ks)+3)
	ests = append(ests, core.Simulation{}, core.Markov{})
	for _, k := range ks {
		ests = append(ests, core.ErlangMarkov{K: k})
	}
	ests = append(ests, core.PetriNet{})
	r, err := core.NewRunner(
		core.WithConfig(cfg),
		core.WithEstimators(ests...),
		core.WithParallelism(opt.Parallelism),
		core.WithSeedDerivation(false),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res, err := r.Run(ctx, core.Scenario{Name: "erlang-ablation"})
	if err != nil {
		return nil, fmt.Errorf("experiments: erlang ablation: %w", err)
	}
	ref := res.Estimates[0] // Simulation, the reference
	t := report.NewTable(
		fmt.Sprintf("X-1: Erlang-phase ablation at PUD=%g s, PDT=%g s (reference: simulation)", cfg.PUD, cfg.PDT),
		"Method", "Σ|Δ fraction| vs Sim (pp)", "Energy (J)", "|Δ energy| vs Sim (J)")
	add := func(name string, est *core.Estimate) {
		t.AddRow(name,
			report.F(sumAbsFractionDiff(ref, est), 3),
			report.F(est.EnergyJ, 3),
			report.F(abs(est.EnergyJ-ref.EnergyJ), 3))
	}
	add("Markov (supplementary variables)", res.Estimates[1])
	for i := range ks {
		add(res.Estimates[2+i].Method, res.Estimates[2+i])
	}
	add("PetriNet (DSPN simulation)", res.Estimates[len(res.Estimates)-1])
	return t, nil
}

// PolicyAblation (X-2) compares power-management policies on the paper's
// workload: never sleeping, the paper's timeout, and immediate sleep —
// the energy/latency trade-off that motivates the Power Down Threshold.
func PolicyAblation(opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	base := opt.Base
	t := report.NewTable(
		fmt.Sprintf("X-2: Power-policy ablation (lambda=%g, mu=%g, PUD=%g s, %g s horizon)",
			base.Lambda, base.Mu, base.PUD, base.SimTime),
		"Policy", "Energy (J)", "Mean latency (s)", "Power cycles/s", "Standby (%)", "Idle (%)")
	policies := []struct {
		name   string
		policy cpu.Policy
		pdt    float64
	}{
		{"never-sleep (M/M/1)", cpu.PolicyNeverSleep, base.PDT},
		{fmt.Sprintf("timeout PDT=%g s", base.PDT), cpu.PolicyTimeout, base.PDT},
		{"always-sleep (PDT=0)", cpu.PolicyAlwaysSleep, 0},
	}
	reps := base.Replications
	if reps == 0 {
		reps = 10
	}
	for _, p := range policies {
		rep, err := cpu.RunReplications(cpu.Config{
			Arrivals: workload.NewPoisson(base.Lambda),
			Service:  dist.ExpMean(1 / base.Mu),
			PDT:      p.pdt,
			PUD:      base.PUD,
			Policy:   p.policy,
			SimTime:  base.SimTime,
			Warmup:   base.Warmup,
			Seed:     base.Seed,
		}, reps)
		if err != nil {
			return nil, err
		}
		f := rep.MeanFractions()
		t.AddRow(p.name,
			report.F(rep.EnergyJoules(base.Power, base.SimTime), 3),
			report.F(rep.MeanLatency.Mean(), 4),
			report.F(rep.PowerCycles.Mean()/base.SimTime, 4),
			report.F(f[energy.Standby]*100, 2),
			report.F(f[energy.Idle]*100, 2))
	}
	return t, nil
}

// WorkloadComparison (X-3) contrasts the open Poisson workload with
// periodic, bursty (MMPP) and closed generators at matched average rates,
// showing how burstiness shifts the energy budget.
func WorkloadComparison(opt Options) (*report.Table, error) {
	return WorkloadComparisonCtx(context.Background(), opt)
}

// WorkloadComparisonCtx is WorkloadComparison through Runner.RunBatch: the
// workload rows are workloadEstimator instances evaluating concurrently on
// the worker pool against one fixed-seed scenario, cached process-wide,
// and cancellable mid-replication.
func WorkloadComparisonCtx(ctx context.Context, opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	base := opt.Base
	kinds := []workloadKind{wlPoisson, wlPeriodic, wlMMPP}
	if think := 1/base.Lambda - 1/base.Mu; think > 0 {
		kinds = append(kinds, wlClosed)
	}
	ests := make([]core.Estimator, len(kinds))
	for i, k := range kinds {
		ests[i] = workloadEstimator{kind: k}
	}
	r, err := core.NewRunner(
		core.WithConfig(base),
		core.WithEstimators(ests...),
		core.WithParallelism(opt.Parallelism),
		core.WithSeedDerivation(false),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	res, err := r.Run(ctx, core.Scenario{Name: "workload-comparison"})
	if err != nil {
		return nil, fmt.Errorf("experiments: workload comparison: %w", err)
	}
	t := report.NewTable(
		fmt.Sprintf("X-3: Workload comparison (rate≈%g/s, PDT=%g s, PUD=%g s)", base.Lambda, base.PDT, base.PUD),
		"Workload", "Energy (J)", "Mean latency (s)", "Standby (%)", "Idle (%)", "Active (%)")
	for i, k := range kinds {
		est := res.Estimates[i]
		f := est.Fractions
		t.AddRow(workloadEstimator{kind: k}.rowLabel(base),
			report.F(est.EnergyJ, 3),
			report.F(est.MeanLatency, 4),
			report.F(f[energy.Standby]*100, 2),
			report.F(f[energy.Idle]*100, 2),
			report.F(f[energy.Active]*100, 2))
	}
	return t, nil
}

// CTMCCrossCheck (X-4) validates the numerical pipeline: the
// exponentialized Figure-3 net solved exactly (reachability graph -> CTMC)
// against its own simulation and the independently built Erlang(K=1) chain.
func CTMCCrossCheck(opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	cfg := opt.Base
	cfg.PUD = 0.3
	const queueCap = 40
	n := core.BuildCPUNetExp(cfg, queueCap)
	exact, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		return nil, err
	}
	sim, err := petri.Simulate(n, petri.SimOptions{Seed: cfg.Seed, Warmup: cfg.Warmup, Duration: cfg.SimTime * 20})
	if err != nil {
		return nil, err
	}
	erl, err := (core.ErlangMarkov{K: 1}).Estimate(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("X-4: exponentialized CPU net, exact CTMC (%d tangible markings) vs simulation vs Erlang(K=1)", len(exact.Markings)),
		"State", "CTMC exact", "Net simulation", "ErlangMarkov K=1")
	places := map[energy.State]string{
		energy.Standby: core.PlaceStandBy,
		energy.PowerUp: core.PlacePowerUp,
		energy.Idle:    core.PlaceIdle,
		energy.Active:  core.PlaceActive,
	}
	for _, s := range energy.States {
		t.AddRow(s.String(),
			report.F(exact.PlaceAvgByName(n, places[s]), 5),
			report.F(sim.PlaceAvgByName(n, places[s]), 5),
			report.F(erl.Fractions[s], 5))
	}
	return t, nil
}

// NetworkLifetime (X-9) analyzes multi-hop topologies: per-node load grows
// toward the sink, so lifetime is set by the most burdened node (the sink
// under a CPU-dominated budget; the first relay when the radio dominates).
func NetworkLifetime(opt Options) (*report.Table, error) {
	opt = opt.withDefaults()
	t := report.NewTable(
		"X-9: network lifetime by topology (0.5 samples/s per node, PXA271 + CC2420-class radio, 2xAA)",
		"Topology", "Nodes", "Bottleneck node", "Bottleneck load (jobs/s)", "Network lifetime (days)")
	topologies := []struct {
		name  string
		nodes []network.Node
	}{
		{"line x4", network.LineTopology(4, 0.5)},
		{"line x8", network.LineTopology(8, 0.5)},
		{"star x8", network.StarTopology(8, 0.5)},
		{"binary tree depth 3", network.BinaryTreeTopology(3, 0.5)},
	}
	for _, topo := range topologies {
		cfg := network.DefaultConfig(0)
		cfg.Nodes = topo.nodes
		cfg.CPU = opt.Base
		res, err := network.Analyze(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: topology %s: %w", topo.name, err)
		}
		var bottleneckLoad float64
		for _, nr := range res.Nodes {
			if nr.ID == res.Bottleneck {
				bottleneckLoad = nr.ProcessRate
			}
		}
		t.AddRow(topo.name,
			fmt.Sprintf("%d", len(topo.nodes)),
			fmt.Sprintf("%d", res.Bottleneck),
			report.F(bottleneckLoad, 2),
			report.F(res.LifetimeDays(), 1))
	}
	return t, nil
}

// Lifetime (X-5) estimates whole-node battery lifetime across sensing
// loads using the composite CPU+radio net.
func Lifetime(opt Options, lambdas []float64) (*report.Table, error) {
	return LifetimeCtx(context.Background(), opt, lambdas)
}

// LifetimeCtx is Lifetime through Runner.RunBatch: one scenario per sensing
// load, evaluated concurrently on the worker pool by the composite-net
// lifetime estimator (fixed seeds, so the rows reproduce the sequential
// table bit for bit), cached process-wide, and cancellable mid-replication
// — the long sweeps that online battery-lifetime estimation needs.
func LifetimeCtx(ctx context.Context, opt Options, lambdas []float64) (*report.Table, error) {
	opt = opt.withDefaults()
	if len(lambdas) == 0 {
		lambdas = []float64{0.1, 0.5, 1, 2, 5}
	}
	base := sensornode.DefaultConfig()
	base.CPU = opt.Base
	r, err := core.NewRunner(
		core.WithConfig(opt.Base),
		core.WithEstimators(lifetimeEstimator{node: base}),
		core.WithParallelism(opt.Parallelism),
		core.WithSeedDerivation(false),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	scenarios := make([]core.Scenario, len(lambdas))
	for i, lam := range lambdas {
		cfg := opt.Base
		cfg.Lambda = lam
		if lam >= cfg.Mu {
			cfg.Mu = lam * 10
		}
		scenarios[i] = core.Scenario{Name: fmt.Sprintf("lambda=%g", lam), Config: cfg}
	}
	results, err := r.RunAll(ctx, scenarios)
	if err != nil {
		return nil, fmt.Errorf("experiments: lifetime: %w", err)
	}
	t := report.NewTable(
		fmt.Sprintf("X-5: sensor-node lifetime on %.0f mAh @ %.1f V (PDT=%g s)",
			base.Battery.CapacitymAh, base.Battery.Volts, base.CPU.PDT),
		"Arrival rate (/s)", "CPU avg (mW)", "Radio avg (mW)", "Total (mW)", "Packets/s", "Lifetime (days)")
	for i, lam := range lambdas {
		node := results[i].Estimates[0].Node
		t.AddRow(
			fmt.Sprintf("%g", lam),
			report.F(node.CPUAvgMW, 3),
			report.F(node.RadioAvgMW, 3),
			report.F(node.TotalAvgMW, 3),
			report.F(node.PacketsPerSecond, 3),
			report.F(node.LifetimeSeconds/86400, 1))
	}
	return t, nil
}
