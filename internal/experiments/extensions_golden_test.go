package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// The testdata goldens were rendered by the pre-RunBatch (sequential,
// uncached, direct-call) implementations of the three extension
// experiments, at reduced effort so the comparison runs in test time:
//
//	opt := Default()
//	opt.Base.SimTime = 400; opt.Base.Warmup = 50; opt.Base.Replications = 3
//	opt.PUDs = []float64{0.001, 10}
//	ErlangAblation(opt, []int{1, 8})
//	WorkloadComparison(opt)
//	Lifetime(opt, []float64{0.5, 2})
//
// Byte-for-byte equality here is the acceptance criterion for the RunBatch
// port: evaluation now flows through the Runner's worker pool and result
// cache, but with seed derivation disabled the numbers must not move at
// any parallelism.
//
// The files are re-rendered whenever xrand.StreamVersion bumps (currently
// the version-3 ziggurat exponential law); between bumps no change may
// move them.
func goldenOptions() Options {
	opt := Default()
	opt.Base.SimTime = 400
	opt.Base.Warmup = 50
	opt.Base.Replications = 3
	opt.PUDs = []float64{0.001, 10}
	return opt
}

func assertGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from the pre-RunBatch output.\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestErlangAblationMatchesPreRunBatchGolden(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		core.ResetEstimateCache()
		opt := goldenOptions()
		opt.Parallelism = parallelism
		tb, err := ErlangAblation(opt, []int{1, 8})
		if err != nil {
			t.Fatal(err)
		}
		assertGolden(t, "erlang_ablation.golden", tb.ASCII())
	}
}

func TestWorkloadComparisonMatchesPreRunBatchGolden(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		core.ResetEstimateCache()
		opt := goldenOptions()
		opt.Parallelism = parallelism
		tb, err := WorkloadComparison(opt)
		if err != nil {
			t.Fatal(err)
		}
		assertGolden(t, "workload_comparison.golden", tb.ASCII())
	}
}

func TestLifetimeMatchesPreRunBatchGolden(t *testing.T) {
	for _, parallelism := range []int{1, 4} {
		core.ResetEstimateCache()
		opt := goldenOptions()
		opt.Parallelism = parallelism
		tb, err := Lifetime(opt, []float64{0.5, 2})
		if err != nil {
			t.Fatal(err)
		}
		assertGolden(t, "lifetime.golden", tb.ASCII())
	}
}

// TestExtensionExperimentsHitTheCache pins the "cached" half of the port:
// re-rendering a table must be answered from the process-wide result cache
// instead of re-running the simulations.
func TestExtensionExperimentsHitTheCache(t *testing.T) {
	core.ResetEstimateCache()
	t.Cleanup(core.ResetEstimateCache)
	opt := goldenOptions()
	if _, err := WorkloadComparison(opt); err != nil {
		t.Fatal(err)
	}
	entries, hits := core.EstimateCacheStats()
	if entries == 0 {
		t.Fatal("workload comparison did not populate the result cache")
	}
	if _, err := WorkloadComparison(opt); err != nil {
		t.Fatal(err)
	}
	entries2, hits2 := core.EstimateCacheStats()
	if entries2 != entries {
		t.Fatalf("repeat run grew the cache: %d -> %d entries", entries, entries2)
	}
	if wantMin := hits + uint64(entries); hits2 < wantMin {
		t.Fatalf("repeat run missed the cache: hits %d -> %d, want >= %d", hits, hits2, wantMin)
	}
}
