package experiments

// The field experiment family (X-10, X-11, X-12): network-scale questions
// the static analytic model cannot answer, evaluated on the event-driven
// field simulator. X-10 sweeps field size × sample rate through the core
// Runner — field estimators are registered core.Estimators, so the sweeps
// share the result cache, worker pool and cancellation with the paper
// sweeps — X-11 breaks down where the bottleneck node's energy goes, and
// X-12 starves the batteries so nodes actually die mid-run: it tabulates
// the measured death timeline, the traffic each death strands, and how far
// the surviving field keeps delivering as the topology decays.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/field"
	"repro/internal/report"
)

// FieldSizes and FieldRates are the default X-10 sweep axes.
var (
	FieldSizes = []int{9, 25, 49}
	FieldRates = []float64{0.25, 0.5, 1.0}
)

// FieldLifetime is FieldLifetimeCtx without cancellation.
func FieldLifetime(opt Options, sizes []int, rates []float64) (*report.Table, error) {
	return FieldLifetimeCtx(context.Background(), opt, sizes, rates)
}

// FieldLifetimeCtx simulates 4-ary-tree fields of the given sizes at the
// given per-node sample rates and tabulates time-to-first-node-death: one
// row per (size, rate) with the bottleneck node's draw, the sink's
// delivered throughput and the network lifetime.
func FieldLifetimeCtx(ctx context.Context, opt Options, sizes []int, rates []float64) (*report.Table, error) {
	opt = opt.withDefaults()
	if len(sizes) == 0 {
		sizes = FieldSizes
	}
	if len(rates) == 0 {
		rates = FieldRates
	}
	ests := make([]core.Estimator, len(sizes))
	for i, n := range sizes {
		ests[i] = field.DefaultEstimator(n)
	}
	r, err := core.NewRunner(
		core.WithConfig(opt.Base),
		core.WithEstimators(ests...),
		core.WithParallelism(opt.Parallelism),
	)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	scenarios := make([]core.Scenario, len(rates))
	for i, rate := range rates {
		cfg := opt.Base
		cfg.Lambda = rate
		scenarios[i] = core.Scenario{Name: fmt.Sprintf("rate=%g", rate), Config: cfg}
	}
	results, err := r.RunAll(ctx, scenarios)
	if err != nil {
		return nil, fmt.Errorf("experiments: field sweep: %w", err)
	}
	t := report.NewTable(
		"X-10: simulated time to first node death vs field size and sample rate (4-ary tree, first-order radio, 2xAA)",
		"Nodes", "Sample rate (/s)", "Bottleneck draw (mW)", "Delivered (pkt/s)", "Network lifetime (days)")
	for i, res := range results {
		if res.Err != nil {
			return nil, fmt.Errorf("experiments: field sweep %q: %w", res.Scenario.Name, res.Err)
		}
		for j, est := range res.Estimates {
			t.AddRow(
				fmt.Sprintf("%d", sizes[j]),
				report.F(rates[i], 2),
				report.F(est.Node.TotalAvgMW, 3),
				report.F(est.Node.PacketsPerSecond, 2),
				report.F(est.Node.LifetimeSeconds/86400, 1))
		}
	}
	return t, nil
}

// FieldDeath is FieldDeathCtx without cancellation.
func FieldDeath(opt Options, n int) (*report.Table, error) {
	return FieldDeathCtx(context.Background(), opt, n)
}

// FieldDeathCtx simulates one n-node tree field on batteries starved to a
// small fraction of an AA pair — sized so the hottest nodes deplete around
// the middle of the horizon — and reports the measured death timeline: for
// each death, the exact battery-zero crossing (not event-quantized), the
// packets that died queued inside the node, and what the sink had received
// by then. The closing rows give the measured network lifetime (first
// death) and the field-wide drop accounting.
func FieldDeathCtx(ctx context.Context, opt Options, n int) (*report.Table, error) {
	opt = opt.withDefaults()
	if n <= 0 {
		n = 25
	}
	est := field.DefaultEstimator(n)
	nodes, err := est.Nodes(0.5)
	if err != nil {
		return nil, err
	}
	cfg := field.Config{
		Nodes: nodes,
		CPU:   opt.Base,
		Radio: est.Radio,
		// Size the budget so a node drawing roughly the PXA271 idle floor
		// dies ~40% into the run: small enough that depletion reshapes the
		// field, large enough that early trajectories are representative.
		Battery: starvedBattery(opt.Base.Power.MW[energy.Idle], opt.Base.Warmup+opt.Base.SimTime),
		Horizon: opt.Base.SimTime,
		Warmup:  opt.Base.Warmup,
		Seed:    opt.Base.Seed,
	}
	res, err := field.SimulateContext(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: field death: %w", err)
	}
	t := report.NewTable(
		fmt.Sprintf("X-12: lifetime to first death, %d-node tree at 0.5 samples/s on %.2g mAh (measured lifetime %.1f s; %d of %d nodes died; %d pkt delivered, %d dropped in dying nodes, %d unroutable)",
			n, cfg.Battery.CapacitymAh, res.FirstDeathSeconds, len(res.Deaths), n,
			res.Delivered, res.DroppedInFlight, res.DroppedNoRoute),
		"Death", "Node", "Time (s)", "Of horizon", "Dropped with node", "Delivered before")
	byID := make(map[int]*field.NodeResult, len(res.Nodes))
	for i := range res.Nodes {
		byID[res.Nodes[i].ID] = &res.Nodes[i]
	}
	for i, d := range res.Deaths {
		delivered := uint64(0)
		if nr := byID[d.ID]; nr != nil {
			delivered = nr.DeliveredBefore
		}
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", d.ID),
			report.F(d.Time, 3),
			fmt.Sprintf("%.1f%%", d.Time/(cfg.Warmup+cfg.Horizon)*100),
			fmt.Sprintf("%d", d.Dropped),
			fmt.Sprintf("%d", delivered))
	}
	if len(res.Deaths) == 0 {
		t.AddRow("-", "-", "no node died within the horizon", "-", "-", "-")
	}
	return t, nil
}

// starvedBattery sizes a battery (at 3 V) so a constant draw of floorMW
// milliwatts empties it 40% of the way through totalSeconds of simulation.
func starvedBattery(floorMW, totalSeconds float64) energy.Battery {
	j := floorMW / 1000 * totalSeconds * 0.4
	return energy.Battery{CapacitymAh: j / 3600 / 3 * 1000, Volts: 3}
}

// FieldBreakdown is FieldBreakdownCtx without cancellation.
func FieldBreakdown(opt Options, n int) (*report.Table, error) {
	return FieldBreakdownCtx(context.Background(), opt, n)
}

// FieldBreakdownCtx simulates one n-node tree field and reports the energy
// breakdown of its hottest nodes — the bottleneck first — attributing each
// node's budget to CPU, transmit, receive, aggregation, sensing and
// listening.
func FieldBreakdownCtx(ctx context.Context, opt Options, n int) (*report.Table, error) {
	opt = opt.withDefaults()
	if n <= 0 {
		n = 25
	}
	est := field.DefaultEstimator(n)
	nodes, err := est.Nodes(0.5)
	if err != nil {
		return nil, err
	}
	cfg := field.Config{
		Nodes:   nodes,
		CPU:     opt.Base,
		Radio:   est.Radio,
		Battery: est.Battery,
		Horizon: opt.Base.SimTime,
		Warmup:  opt.Base.Warmup,
		Seed:    opt.Base.Seed,
	}
	res, err := field.SimulateContext(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: field breakdown: %w", err)
	}
	byDraw := make([]*field.NodeResult, len(res.Nodes))
	for i := range res.Nodes {
		byDraw[i] = &res.Nodes[i]
	}
	sort.Slice(byDraw, func(i, j int) bool {
		if byDraw[i].AvgPowerMW != byDraw[j].AvgPowerMW {
			return byDraw[i].AvgPowerMW > byDraw[j].AvgPowerMW
		}
		return byDraw[i].ID < byDraw[j].ID
	})
	top := len(byDraw)
	if top > 6 {
		top = 6
	}
	t := report.NewTable(
		fmt.Sprintf("X-11: bottleneck energy breakdown, %d-node tree at 0.5 samples/s (top %d nodes by draw; network lifetime %.1f days)",
			n, top, res.LifetimeDays()),
		"Node", "Processed (job/s)", "Tx (pkt/s)", "CPU (J)", "Radio (J)", "Draw (mW)", "Lifetime (days)")
	for _, nr := range byDraw[:top] {
		label := fmt.Sprintf("%d", nr.ID)
		if nr.ID == res.Bottleneck {
			label += " (bottleneck)"
		}
		t.AddRow(label,
			report.F(float64(nr.Processed)/res.Time, 2),
			report.F(float64(nr.TxPackets)/res.Time, 2),
			report.F(nr.CPUEnergyJ, 1),
			report.F(nr.RadioEnergyJ, 3),
			report.F(nr.AvgPowerMW, 3),
			report.F(nr.LifetimeDays(), 1))
	}
	return t, nil
}
