package field

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/energy"
)

// starvedConfig returns a small line field with a battery tiny enough that
// every node depletes well inside the horizon under the paper's CPU model.
func starvedConfig(n int, capacitymAh float64) Config {
	cfg := Config{
		Nodes:   LineTopology(n, 0.8, 12),
		CPU:     testCPU(),
		Radio:   energy.FirstOrderRadio(),
		Battery: energy.Battery{CapacitymAh: capacitymAh, Volts: 3},
		Horizon: 300,
		Warmup:  30,
		Seed:    42,
	}
	cfg.Radio.ListenMW = 0.05
	return cfg
}

// TestFieldDeathExactCrossing pins the crossing-time guarantee analytically:
// with an all-zero CPU power table and a listen-only radio, every node's
// draw is a known constant, so its battery must cross zero at exactly
// capacity/draw seconds — a time that is not any Petri-net event time. The
// scheduler must report that exact crossing, not the next quantized event.
func TestFieldDeathExactCrossing(t *testing.T) {
	const listenMW = 0.4
	cfg := Config{
		Nodes: LineTopology(3, 0.8, 10),
		CPU:   testCPU(),
		Radio: energy.Radio{PacketBits: 2048, ListenMW: listenMW},
		// 100 J at 0.4 mW -> empty at 10/1.296 h... scale to land mid-run:
		// capacity J = mAh/1000*3600*V; pick mAh so death hits ~137.3 s.
		Battery: energy.Battery{CapacitymAh: listenMW / 1000 * 137.3 / 3600 / 3 * 1000, Volts: 3},
		Horizon: 300,
		Warmup:  30,
		Seed:    7,
	}
	cfg.CPU.Power = energy.PowerModel{Name: "zero"}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Battery.EnergyJoules() / (listenMW / 1000)
	// The battery integrates piecewise at event boundaries, so the crossing
	// matches the closed form to accumulated rounding, not the last bit.
	const tol = 1e-9
	if len(res.Deaths) != 3 {
		t.Fatalf("want all 3 nodes dead, got deaths %+v", res.Deaths)
	}
	for i, d := range res.Deaths {
		if math.Abs(d.Time-want) > tol*want {
			t.Fatalf("death %d at %v, want crossing %v (diff %v)", i, d.Time, want, d.Time-want)
		}
	}
	if res.FirstDeathSeconds != res.Deaths[0].Time || res.LifetimeSeconds != res.FirstDeathSeconds {
		t.Fatalf("FirstDeathSeconds=%v LifetimeSeconds=%v, want first death %v",
			res.FirstDeathSeconds, res.LifetimeSeconds, res.Deaths[0].Time)
	}
	if res.Bottleneck != res.Deaths[0].ID {
		t.Fatalf("bottleneck %d, want first dead node %d", res.Bottleneck, res.Deaths[0].ID)
	}
	for _, nr := range res.Nodes {
		if !nr.Died || math.Abs(nr.DeathTime-want) > tol*want {
			t.Fatalf("node %d: Died=%v DeathTime=%v, want death at %v", nr.ID, nr.Died, nr.DeathTime, want)
		}
		if nr.RemainingJ != 0 {
			t.Fatalf("node %d: dead node reports RemainingJ=%v", nr.ID, nr.RemainingJ)
		}
		if nr.LifetimeSeconds != nr.DeathTime {
			t.Fatalf("node %d: LifetimeSeconds=%v, want measured %v", nr.ID, nr.LifetimeSeconds, nr.DeathTime)
		}
		// Listen energy accrues over exactly the alive measured window.
		if wantListen := listenMW * (nr.DeathTime - cfg.Warmup) / 1000; nr.ListenEnergyJ != wantListen {
			t.Fatalf("node %d: ListenEnergyJ=%v, want alive-window %v", nr.ID, nr.ListenEnergyJ, wantListen)
		}
	}
}

// TestFieldDeathReroute starves a line field so the middle relay dies first
// (it carries the leaf's traffic on top of its own) and checks that the
// orphaned leaf is rerouted past the corpse to the sink, keeps delivering,
// and that the relay's queued packets were dropped and counted.
func TestFieldDeathReroute(t *testing.T) {
	cfg := starvedConfig(3, 2)
	// The sink always does at least a relay's CPU work (it processes every
	// packet the relay forwards), so bias the relay's draw through the
	// d²-dependent transmit term: long hops and a high relay sample rate
	// make its radio dominate and kill it first.
	cfg.Nodes = LineTopology(3, 0.8, 400)
	cfg.Nodes[1].SampleRate = 4

	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) == 0 || res.Deaths[0].ID != 1 {
		t.Fatalf("want relay 1 to die first, deaths: %+v", res.Deaths)
	}
	var relay, leaf *NodeResult
	for i := range res.Nodes {
		switch res.Nodes[i].ID {
		case 1:
			relay = &res.Nodes[i]
		case 2:
			leaf = &res.Nodes[i]
		}
	}
	if !relay.Died {
		t.Fatal("relay not marked dead")
	}
	if relay.DeathTime != res.Deaths[0].Time || relay.DeathTime != res.FirstDeathSeconds {
		t.Fatalf("relay DeathTime=%v, timeline %v, FirstDeathSeconds=%v", relay.DeathTime, res.Deaths[0].Time, res.FirstDeathSeconds)
	}
	if res.LifetimeSeconds != res.FirstDeathSeconds || res.Bottleneck != 1 {
		t.Fatalf("measured lifetime must be the first death: lifetime=%v first=%v bottleneck=%d",
			res.LifetimeSeconds, res.FirstDeathSeconds, res.Bottleneck)
	}
	// The leaf must have been rerouted to the relay's parent — the sink —
	// over the combined distance.
	if leaf.Parent != 0 {
		t.Fatalf("leaf parent %d after relay death, want sink 0", leaf.Parent)
	}
	if want := Distance(cfg.Nodes[2].Pos, cfg.Nodes[0].Pos); leaf.Distance != want {
		t.Fatalf("leaf distance %v after reroute, want %v", leaf.Distance, want)
	}
	if relay.DeliveredBefore > res.Delivered {
		t.Fatalf("DeliveredBefore %d exceeds final Delivered %d", relay.DeliveredBefore, res.Delivered)
	}
	if res.DroppedInFlight == 0 {
		// A relay dying under 4 samples/s load essentially always holds
		// queued work; its loss must be counted.
		t.Fatalf("relay died with no dropped packets counted (deaths %+v)", res.Deaths)
	}
	if res.DroppedInFlight != sumDropped(res) {
		t.Fatalf("DroppedInFlight %d != sum of per-node DroppedAtDeath %d", res.DroppedInFlight, sumDropped(res))
	}
	// Tx/Rx balance stays exact: transmission is atomic, drops happen in
	// queues, so every measured transmitted packet was received by someone.
	var tx, rx uint64
	for _, nr := range res.Nodes {
		tx += nr.TxPackets
		rx += nr.RxPackets
	}
	if tx != rx {
		t.Fatalf("field Tx %d != Rx %d", tx, rx)
	}
}

func sumDropped(res *Result) uint64 {
	var s uint64
	for _, nr := range res.Nodes {
		s += nr.DroppedAtDeath
	}
	return s
}

// TestFieldDeathEnergyConservation checks the battery ledger end to end:
// with Warmup=0 the measured window is the node's whole life, so a dead
// node's reported energy must equal its battery capacity up to the one
// last-gasp instantaneous event the model deliberately lets complete at the
// crossing instant.
func TestFieldDeathEnergyConservation(t *testing.T) {
	cfg := starvedConfig(3, 0.5)
	cfg.Warmup = 0
	cfg.Horizon = 300
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) != 3 {
		t.Fatalf("want every node dead, deaths: %+v", res.Deaths)
	}
	capJ := cfg.Battery.EnergyJoules()
	// The largest single instantaneous drain: one max-distance packet hop
	// plus a sensing charge — the permitted overshoot at the crossing.
	maxHop := cfg.Radio.PacketTxJ(2*12) + cfg.Radio.PacketRxJ() + cfg.Radio.AggregateJ(cfg.Radio.PacketBits)
	slack := 64 * maxHop // several packets can land in one cascade instant
	for _, nr := range res.Nodes {
		if nr.EnergyJ < capJ-1e-9 {
			t.Fatalf("node %d: spent %v J but died with capacity %v J unaccounted", nr.ID, nr.EnergyJ, capJ)
		}
		if nr.EnergyJ > capJ+slack {
			t.Fatalf("node %d: spent %v J, overshoots capacity %v J by more than the last-gasp bound %v",
				nr.ID, nr.EnergyJ, capJ, slack)
		}
	}
}

// TestFieldDeathDuringWarmup kills nodes before measurement begins: all
// measured counters and energies must read zero, the death timeline must
// still record the exact (pre-warmup) crossing, and the run must complete.
func TestFieldDeathDuringWarmup(t *testing.T) {
	cfg := starvedConfig(2, 0.01) // ~0.1 J: dies in under a second
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) != 2 {
		t.Fatalf("want both nodes dead, deaths: %+v", res.Deaths)
	}
	for _, nr := range res.Nodes {
		if !nr.Died || nr.DeathTime >= cfg.Warmup {
			t.Fatalf("node %d: want death inside warmup, got Died=%v DeathTime=%v", nr.ID, nr.Died, nr.DeathTime)
		}
		if nr.Samples != 0 || nr.Processed != 0 || nr.TxPackets != 0 || nr.RxPackets != 0 {
			t.Fatalf("node %d: measured counters nonzero for a warmup death: %+v", nr.ID, nr)
		}
		if nr.EnergyJ != 0 || nr.ListenEnergyJ != 0 || nr.CPUEnergyJ != 0 {
			t.Fatalf("node %d: measured energy nonzero for a warmup death: %+v", nr.ID, nr)
		}
		if nr.CPUFractions != (energy.Fractions{}) {
			t.Fatalf("node %d: fractions %v for a warmup death, want all zero", nr.ID, nr.CPUFractions)
		}
	}
	if res.Delivered != 0 {
		t.Fatalf("delivered %d packets from a field dead before measurement", res.Delivered)
	}
}

// TestFieldDeathOrderIndependence re-runs a deadly field with the node
// slice reversed: deaths, reroutes and every result field must be
// identical — the death path must inherit the simulator's independence
// from caller ordering.
func TestFieldDeathOrderIndependence(t *testing.T) {
	cfg := starvedConfig(5, 0.7)
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Deaths) == 0 {
		t.Fatal("starved field produced no deaths; the test needs some")
	}
	rev := append([]Node(nil), cfg.Nodes...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	cfg.Nodes = rev
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("death trajectories depend on node ordering:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFieldDeadSinkDropsAtSender kills the sink (the only node, so the
// leaf's whole ancestor chain dies) and checks that the orphan's later
// packets are dropped at the sender — counted, no energy spent, and the
// simulation still terminates cleanly.
func TestFieldDeadSinkDropsAtSender(t *testing.T) {
	cfg := starvedConfig(2, 0.7)
	// The sink does all the relaying work in a 2-line and additionally
	// processes the leaf's packets; bias it further so it dies long before
	// the leaf.
	cfg.Nodes[0].SampleRate = 4
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) == 0 || res.Deaths[0].ID != 0 {
		t.Fatalf("want the sink to die first, deaths: %+v", res.Deaths)
	}
	var leaf *NodeResult
	for i := range res.Nodes {
		if res.Nodes[i].ID == 1 {
			leaf = &res.Nodes[i]
		}
	}
	// The leaf keeps its configured parent for reporting (there is nothing
	// live to reroute to) and its post-death packets surface as no-route
	// drops.
	if leaf.Parent != 0 {
		t.Fatalf("leaf parent %d, want configured parent 0", leaf.Parent)
	}
	if res.DroppedNoRoute == 0 {
		t.Fatal("sink died first yet no packets were dropped for lack of a route")
	}
	// No-route drops are never transmitted: the leaf's Tx count must equal
	// the sink's Rx count exactly.
	var sink *NodeResult
	for i := range res.Nodes {
		if res.Nodes[i].ID == 0 {
			sink = &res.Nodes[i]
		}
	}
	if leaf.TxPackets != sink.RxPackets {
		t.Fatalf("leaf Tx %d != sink Rx %d", leaf.TxPackets, sink.RxPackets)
	}
}

// TestFieldNoDeathNewFields spot-checks the new result fields on a healthy
// field: survivors report infinite DeathTime, a positive remaining budget,
// and the field reports no deaths and an infinite FirstDeathSeconds while
// LifetimeSeconds stays the extrapolated minimum.
func TestFieldNoDeathNewFields(t *testing.T) {
	cfg := Config{
		Nodes:   TreeTopology(7, 2, 0.5, 10),
		CPU:     testCPU(),
		Radio:   energy.FirstOrderRadio(),
		Battery: energy.AA2850,
		Horizon: 200,
		Warmup:  20,
		Seed:    3,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deaths) != 0 || !math.IsInf(res.FirstDeathSeconds, 1) {
		t.Fatalf("healthy field reports deaths: %+v first=%v", res.Deaths, res.FirstDeathSeconds)
	}
	if res.DroppedInFlight != 0 || res.DroppedNoRoute != 0 {
		t.Fatalf("healthy field dropped packets: inflight=%d noroute=%d", res.DroppedInFlight, res.DroppedNoRoute)
	}
	capJ := cfg.Battery.EnergyJoules()
	for _, nr := range res.Nodes {
		if nr.Died || !math.IsInf(nr.DeathTime, 1) {
			t.Fatalf("node %d: survivor marked dead (DeathTime=%v)", nr.ID, nr.DeathTime)
		}
		if nr.RemainingJ <= 0 || nr.RemainingJ >= capJ {
			t.Fatalf("node %d: RemainingJ=%v, want inside (0, %v)", nr.ID, nr.RemainingJ, capJ)
		}
		if nr.DeliveredBefore != res.Delivered {
			t.Fatalf("node %d: survivor DeliveredBefore=%d, want full %d", nr.ID, nr.DeliveredBefore, res.Delivered)
		}
		if nr.DroppedAtDeath != 0 {
			t.Fatalf("node %d: survivor dropped %d packets", nr.ID, nr.DroppedAtDeath)
		}
	}
}

// TestFieldValidateNonFinite table-drives the NaN/Inf rejection sweep over
// every numeric gate of Config.Validate — each mutation must be refused,
// because a NaN that slips past `x <= 0` poisons every downstream lifetime.
func TestFieldValidateNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	base := func() Config {
		return Config{
			Nodes:   LineTopology(3, 0.5, 10),
			CPU:     testCPU(),
			Radio:   energy.FirstOrderRadio(),
			Battery: energy.AA2850,
			Horizon: 100,
			Warmup:  10,
			Seed:    1,
		}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"battery capacity NaN", func(c *Config) { c.Battery.CapacitymAh = nan }},
		{"battery capacity Inf", func(c *Config) { c.Battery.CapacitymAh = inf }},
		{"battery capacity zero", func(c *Config) { c.Battery.CapacitymAh = 0 }},
		{"battery volts NaN", func(c *Config) { c.Battery.Volts = nan }},
		{"battery volts -Inf", func(c *Config) { c.Battery.Volts = math.Inf(-1) }},
		{"horizon NaN", func(c *Config) { c.Horizon = nan }},
		{"horizon Inf", func(c *Config) { c.Horizon = inf }},
		{"warmup NaN", func(c *Config) { c.Warmup = nan }},
		{"warmup Inf", func(c *Config) { c.Warmup = inf }},
		{"mu NaN", func(c *Config) { c.CPU.Mu = nan }},
		{"mu Inf", func(c *Config) { c.CPU.Mu = inf }},
		{"pdt NaN", func(c *Config) { c.CPU.PDT = nan }},
		{"pud Inf", func(c *Config) { c.CPU.PUD = inf }},
		{"power NaN", func(c *Config) { c.CPU.Power.MW[energy.Active] = nan }},
		{"power Inf", func(c *Config) { c.CPU.Power.MW[energy.Idle] = inf }},
		{"rate NaN", func(c *Config) { c.Nodes[1].SampleRate = nan }},
		{"rate Inf", func(c *Config) { c.Nodes[1].SampleRate = inf }},
		{"radio elec NaN", func(c *Config) { c.Radio.ElecJPerBit = nan }},
		{"radio listen Inf", func(c *Config) { c.Radio.ListenMW = inf }},
		{"radio packet bits NaN", func(c *Config) { c.Radio.PacketBits = nan }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			if err := cfg.Validate(); err != nil {
				t.Fatalf("base config invalid: %v", err)
			}
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("Validate accepted the mutation")
			}
			if _, err := Simulate(cfg); err == nil {
				t.Fatalf("Simulate accepted the mutation")
			}
		})
	}
}
