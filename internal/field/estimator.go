package field

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/energy"
)

// Estimator runs a field simulation as a registered core.Estimator, so
// whole sensor fields sweep through the Runner/RunBatch machinery — result
// cache, shards, deadline skipping — exactly like the single-CPU methods.
// The scenario Config supplies the per-node CPU model, the sample rate
// (Lambda), the horizon (SimTime/Warmup) and the seed; the topology and
// radio/battery tables are fixed in the estimator and encoded in its Name,
// which keeps cache keys faithful.
type Estimator struct {
	// Topology selects the constructor: "line", "star" or "tree".
	Topology string
	// N is the node count, Fanout the tree arity (tree topology only).
	N, Fanout int
	// Spacing is the inter-node distance in meters (the star radius).
	Spacing float64
	// Radio and Battery parameterize the non-CPU energy accounting.
	Radio   energy.Radio
	Battery energy.Battery
}

// DefaultEstimator returns a field estimator over an n-node 4-ary tree at
// 10 m spacing with the canonical radio on AA batteries.
func DefaultEstimator(n int) Estimator {
	return Estimator{
		Topology: "tree",
		N:        n,
		Fanout:   4,
		Spacing:  10,
		Radio:    energy.FirstOrderRadio(),
		Battery:  energy.AA2850,
	}
}

// Name identifies the estimator including every non-scenario parameter, so
// two differently parameterized field estimators never share a cache entry.
func (e Estimator) Name() string {
	r := e.Radio
	return fmt.Sprintf("Field(%s,n=%d,fanout=%d,spacing=%gm,radio=%g/%g/%g/%g@%gb+%gmW,batt=%gmAh@%gV)",
		e.Topology, e.N, e.Fanout, e.Spacing,
		r.ElecJPerBit, r.AmpJPerBitM2, r.AggJPerBit, r.SenseJPerBit, r.PacketBits, r.ListenMW,
		e.Battery.CapacitymAh, e.Battery.Volts)
}

// Nodes constructs the estimator's topology at the given sample rate.
func (e Estimator) Nodes(rate float64) ([]Node, error) {
	switch e.Topology {
	case "line":
		return LineTopology(e.N, rate, e.Spacing), nil
	case "star":
		return StarTopology(e.N, rate, e.Spacing), nil
	case "tree":
		return TreeTopology(e.N, e.Fanout, rate, e.Spacing), nil
	default:
		return nil, fmt.Errorf("field: unknown topology %q (want line, star or tree)", e.Topology)
	}
}

// Estimate runs the field to completion.
func (e Estimator) Estimate(cfg core.Config) (*core.Estimate, error) {
	return e.EstimateContext(context.Background(), cfg)
}

// EstimateContext simulates the field for the scenario and reports the
// bottleneck node's state shares and power draw, the field-wide energy,
// the sink's delivered throughput and the network lifetime — measured at
// the first battery-zero crossing when a node actually died within the
// horizon, extrapolated from steady-state draw otherwise (the bottleneck
// is then the first node to die rather than the highest extrapolated
// drain).
func (e Estimator) EstimateContext(ctx context.Context, cfg core.Config) (*core.Estimate, error) {
	nodes, err := e.Nodes(cfg.Lambda)
	if err != nil {
		return nil, err
	}
	res, err := SimulateContext(ctx, Config{
		Nodes:   nodes,
		CPU:     cfg,
		Radio:   e.Radio,
		Battery: e.Battery,
		Horizon: cfg.SimTime,
		Warmup:  cfg.Warmup,
		Seed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var bn *NodeResult
	for i := range res.Nodes {
		if res.Nodes[i].ID == res.Bottleneck {
			bn = &res.Nodes[i]
			break
		}
	}
	if bn == nil {
		return nil, fmt.Errorf("field: bottleneck node %d missing from results", res.Bottleneck)
	}
	cpuMW := bn.CPUEnergyJ / res.Time * 1000
	return &core.Estimate{
		Method:    e.Name(),
		Fractions: bn.CPUFractions,
		EnergyJ:   res.TotalEnergyJ,
		Node: core.NodeMetrics{
			CPUAvgMW:         cpuMW,
			RadioAvgMW:       bn.AvgPowerMW - cpuMW,
			TotalAvgMW:       bn.AvgPowerMW,
			PacketsPerSecond: float64(res.Delivered) / res.Time,
			LifetimeSeconds:  res.LifetimeSeconds,
		},
	}, nil
}

func init() {
	// "field" resolves the default tree estimator; a numeric suffix sets
	// the node count ("field100" → 100 nodes). Line and star variants get
	// their own names with the same suffix convention.
	factory := func(topology string, def int) core.Factory {
		return func(arg string) (core.Estimator, error) {
			n := def
			if arg != "" {
				v, err := strconv.Atoi(arg)
				if err != nil || v < 1 {
					return nil, fmt.Errorf("field: bad node count %q", arg)
				}
				n = v
			}
			e := DefaultEstimator(n)
			e.Topology = topology
			return e, nil
		}
	}
	core.MustRegister("field", factory("tree", 25), "wsnfield")
	core.MustRegister("fieldline", factory("line", 25))
	core.MustRegister("fieldstar", factory("star", 25))
}
