// Package field is an event-driven sensor-field simulator: it scales the
// paper's single-processor EDSPN model to a whole wireless sensor network.
// Every node runs its own compiled instance of the Figure-3 CPU net (drawn
// from the shared engine pool), all instances advance under one global
// event scheduler, and the nodes are coupled through a routing tree: each
// packet a node's CPU finishes processing is transmitted to its parent,
// where it arrives as fresh workload in the parent's CPU net. Radio energy
// is attributed per packet from the first-order model (energy.Radio),
// using node positions and the e_elec + e_amp·d² transmit law.
//
// This answers the network-level questions the paper's motivation raises
// but a single-node model cannot: network lifetime to first node death,
// where the energy bottleneck sits in a topology, and how lifetime scales
// with density and sample rate.
package field

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
	"repro/internal/xrand"
)

// PlaceOutbox is the per-node packet outbox: every SR firing (a finished
// CPU job) deposits one token here, and the field scheduler drains it into
// radio transmissions toward the node's parent. It extends the Figure-3
// net without altering its dynamics — the outbox has no outgoing arcs, so
// CPU trajectories are untouched by its presence.
const PlaceOutbox = "Outbox"

// Position is a node location in meters.
type Position struct {
	X, Y float64
}

// Distance returns the Euclidean distance between two positions.
func Distance(a, b Position) float64 {
	return math.Hypot(a.X-b.X, a.Y-b.Y)
}

// Node places one sensor node in the field.
type Node struct {
	// ID identifies the node; IDs must be unique but need not be dense.
	ID int
	// Parent is the next hop toward the sink; the single node with
	// Parent == ID is the sink.
	Parent int
	// SampleRate is the node's own sensing rate in samples/s (the Lambda
	// of its CPU net). Must be positive — every node senses.
	SampleRate float64
	// Pos is the node position; transmit energy grows with the square of
	// the distance to the parent.
	Pos Position
}

// Config describes a field simulation.
type Config struct {
	// Nodes is the placed, routed node set.
	Nodes []Node
	// CPU carries the per-node processor parameters (Mu, PDT, PUD, Power).
	// Lambda is ignored: each node's arrival rate is its SampleRate.
	CPU core.Config
	// Radio is the per-packet radio energy table.
	Radio energy.Radio
	// Battery supplies each node.
	Battery energy.Battery
	// Horizon is the measured duration in seconds; Warmup is simulated
	// but excluded from energy accounting and packet counters.
	Horizon float64
	Warmup  float64
	// Seed drives all randomness. Each node derives its private stream
	// from (Seed, ID) — see NodeSeed — so results are independent of node
	// ordering and of scheduling interleave.
	Seed uint64
}

// DefaultConfig returns a field of the given nodes running the paper's CPU
// model with the canonical first-order radio on AA batteries.
func DefaultConfig(nodes []Node) Config {
	cpu := core.PaperConfig()
	return Config{
		Nodes:   nodes,
		CPU:     cpu,
		Radio:   energy.FirstOrderRadio(),
		Battery: energy.AA2850,
		Horizon: cpu.SimTime,
		Warmup:  cpu.Warmup,
		Seed:    cpu.Seed,
	}
}

// Validate checks the configuration: a non-empty node set forming a tree
// with exactly one sink, positive sample rates, a meaningful CPU model and
// physically valid radio and battery tables.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("field: no nodes")
	}
	// The `!(x > 0)` / `!(x >= 0)` forms deliberately catch NaN, which a
	// plain `x <= 0` or `x < 0` comparison lets through — a NaN that slips
	// past validation here poisons every lifetime downstream.
	if !(c.Horizon > 0) || math.IsInf(c.Horizon, 0) {
		return fmt.Errorf("field: Horizon must be positive and finite, got %v", c.Horizon)
	}
	if !(c.Warmup >= 0) || math.IsInf(c.Warmup, 0) {
		return fmt.Errorf("field: Warmup must be non-negative and finite, got %v", c.Warmup)
	}
	if !(c.CPU.Mu > 0) || math.IsInf(c.CPU.Mu, 0) {
		return fmt.Errorf("field: CPU.Mu must be positive and finite, got %v", c.CPU.Mu)
	}
	if !(c.CPU.PDT >= 0) || math.IsInf(c.CPU.PDT, 0) || !(c.CPU.PUD >= 0) || math.IsInf(c.CPU.PUD, 0) {
		return fmt.Errorf("field: CPU delays must be non-negative and finite, got PDT=%v PUD=%v", c.CPU.PDT, c.CPU.PUD)
	}
	for _, mw := range c.CPU.Power.MW {
		if mw < 0 || math.IsNaN(mw) || math.IsInf(mw, 0) {
			return fmt.Errorf("field: CPU power table has invalid entry %v", mw)
		}
	}
	if err := c.Radio.Validate(); err != nil {
		return err
	}
	if err := c.Battery.Validate(); err != nil {
		return fmt.Errorf("field: %w", err)
	}
	byID := make(map[int]int, len(c.Nodes))
	sink := -1
	for i, n := range c.Nodes {
		if _, dup := byID[n.ID]; dup {
			return fmt.Errorf("field: duplicate node ID %d", n.ID)
		}
		byID[n.ID] = i
		if !(n.SampleRate > 0) || math.IsInf(n.SampleRate, 0) {
			return fmt.Errorf("field: node %d: SampleRate must be positive and finite, got %v", n.ID, n.SampleRate)
		}
		if n.Parent == n.ID {
			if sink >= 0 {
				return fmt.Errorf("field: nodes %d and %d both claim to be the sink", c.Nodes[sink].ID, n.ID)
			}
			sink = i
		}
	}
	if sink < 0 {
		return fmt.Errorf("field: no sink (a node with Parent == ID)")
	}
	// Every node must reach the sink without cycles.
	for _, n := range c.Nodes {
		seen := 0
		for cur := n.ID; cur != c.Nodes[sink].ID; {
			pi, ok := byID[cur]
			if !ok {
				return fmt.Errorf("field: node %d routes through unknown node %d", n.ID, cur)
			}
			cur = c.Nodes[pi].Parent
			if seen++; seen > len(c.Nodes) {
				return fmt.Errorf("field: routing cycle involving node %d", n.ID)
			}
		}
	}
	return nil
}

// NodeSeed derives node id's private RNG seed from the field seed, using
// the same SplitMix64 diffusion the replication and shard machinery use.
// The seed depends only on (fieldSeed, id) — never on the node's index,
// the topology, or the scheduling interleave — so a node's CPU trajectory
// is reproducible in isolation (the 1-node equivalence test relies on
// this).
func NodeSeed(fieldSeed uint64, id int) uint64 {
	r := xrand.NewStream(fieldSeed, uint64(id))
	return r.Uint64()
}

// BuildNodeNet returns the Figure-3 CPU net for one node — the node's
// sample rate as its arrival rate — extended with the Outbox place fed by
// SR. Exported so tests can reproduce a field node's net exactly.
func BuildNodeNet(cpu core.Config, sampleRate float64) *petri.Net {
	cpu.Lambda = sampleRate
	n := core.BuildCPUNet(cpu)
	n.Name = "field-node"
	outbox := n.AddPlace(PlaceOutbox)
	sr, ok := n.TransitionByName(core.TransSR)
	if !ok {
		panic("field: CPU net lost its SR transition")
	}
	n.Output(sr, outbox, 1)
	return n
}

// ---------------------------------------------------------------------------
// Topology constructors

// LineTopology places n nodes in a chain at the given spacing: node 0 is
// the sink at the origin, node i relays through node i-1. All nodes sense
// at rate.
func LineTopology(n int, rate, spacing float64) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		parent := i - 1
		if i == 0 {
			parent = 0
		}
		nodes[i] = Node{
			ID:         i,
			Parent:     parent,
			SampleRate: rate,
			Pos:        Position{X: float64(i) * spacing},
		}
	}
	return nodes
}

// StarTopology places n-1 nodes on a circle of the given radius around the
// sink (node 0) at the origin, each transmitting directly to it.
func StarTopology(n int, rate, radius float64) []Node {
	nodes := make([]Node, n)
	nodes[0] = Node{ID: 0, Parent: 0, SampleRate: rate}
	for i := 1; i < n; i++ {
		angle := 2 * math.Pi * float64(i-1) / float64(n-1)
		nodes[i] = Node{
			ID:         i,
			Parent:     0,
			SampleRate: rate,
			Pos:        Position{X: radius * math.Cos(angle), Y: radius * math.Sin(angle)},
		}
	}
	return nodes
}

// TreeTopology places n nodes as a complete fanout-ary tree rooted at the
// sink (node 0): node i's parent is (i-1)/fanout. Depth-d nodes sit on row
// y = d·spacing, spread horizontally by spacing, so deeper rows are denser
// and transmit over comparable distances.
func TreeTopology(n, fanout int, rate, spacing float64) []Node {
	if fanout < 1 {
		fanout = 1
	}
	nodes := make([]Node, n)
	depth := make([]int, n)
	rowNext := map[int]int{}
	for i := range nodes {
		parent := 0
		if i > 0 {
			parent = (i - 1) / fanout
			depth[i] = depth[parent] + 1
		}
		col := rowNext[depth[i]]
		rowNext[depth[i]]++
		nodes[i] = Node{
			ID:         i,
			Parent:     parent,
			SampleRate: rate,
			Pos:        Position{X: float64(col) * spacing, Y: float64(depth[i]) * spacing},
		}
	}
	return nodes
}
