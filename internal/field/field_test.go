package field

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/network"
	"repro/internal/petri"
)

func testCPU() core.Config {
	cfg := core.PaperConfig()
	cfg.SimTime = 0 // fields take Horizon from field.Config, not the CPU config
	return cfg
}

// TestOneNodeFieldMatchesSimulate is the composition-hook equivalence test:
// a field of one node must reproduce a plain petri.Simulate of the same
// net and seed bit for bit — same firings, same state fractions — because
// the only field-level interaction (outbox draining) touches no timer and
// draws no randomness.
func TestOneNodeFieldMatchesSimulate(t *testing.T) {
	const (
		id      = 7 // non-dense ID: seeding must key on the ID, not the index
		rate    = 1.2
		horizon = 300.0
		warmup  = 25.0
		seed    = 20080901
	)
	cpu := testCPU()
	cfg := Config{
		Nodes:   []Node{{ID: id, Parent: id, SampleRate: rate}},
		CPU:     cpu,
		Radio:   energy.FirstOrderRadio(),
		Battery: energy.AA2850,
		Horizon: horizon,
		Warmup:  warmup,
		Seed:    seed,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	net := BuildNodeNet(cpu, rate)
	want, err := petri.Simulate(net, petri.SimOptions{
		Seed:     NodeSeed(seed, id),
		Warmup:   warmup,
		Duration: horizon,
	})
	if err != nil {
		t.Fatal(err)
	}

	n := res.Nodes[0]
	ar, _ := net.TransitionByName(core.TransAR)
	sr, _ := net.TransitionByName(core.TransSR)
	if n.Samples != want.Firings[ar] || n.Processed != want.Firings[sr] {
		t.Fatalf("firings diverge: field %d/%d, plain %d/%d",
			n.Samples, n.Processed, want.Firings[ar], want.Firings[sr])
	}
	if res.Delivered != want.Firings[sr] {
		t.Fatalf("delivered %d != plain SR firings %d", res.Delivered, want.Firings[sr])
	}
	for state, place := range map[energy.State]string{
		energy.Standby: core.PlaceStandBy,
		energy.PowerUp: core.PlacePowerUp,
		energy.Idle:    core.PlaceIdle,
		energy.Active:  core.PlaceActive,
	} {
		if got := n.CPUFractions[state]; got != want.PlaceAvgByName(net, place) {
			t.Fatalf("fraction of %s diverges: field %v, plain %v",
				place, got, want.PlaceAvgByName(net, place))
		}
	}
	if want := cpu.Power.EnergyJoules(n.CPUFractions, horizon); n.CPUEnergyJ != want {
		t.Fatalf("CPU energy %v != %v", n.CPUEnergyJ, want)
	}
	// A single sink has no radio traffic: only sensing and listening cost.
	if n.TxPackets != 0 || n.RxPackets != 0 || n.TxEnergyJ != 0 || n.RxEnergyJ != 0 {
		t.Fatalf("lone sink has radio traffic: %+v", n)
	}
}

// TestFieldEnergyAccounting is the energy conservation property test:
// the field total equals the sum of per-node energies, each node total
// equals its component breakdown, and packet counters balance hop by hop.
func TestFieldEnergyAccounting(t *testing.T) {
	cfg := Config{
		Nodes:   TreeTopology(13, 3, 0.8, 12),
		CPU:     testCPU(),
		Radio:   energy.FirstOrderRadio(),
		Battery: energy.AA2850,
		Horizon: 400,
		Warmup:  40,
		Seed:    7,
	}
	cfg.Radio.ListenMW = 0.05
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var total float64
	rxFromChildren := map[int]uint64{}
	for _, n := range res.Nodes {
		total += n.EnergyJ
		if sum := n.TxEnergyJ + n.RxEnergyJ + n.AggEnergyJ + n.SenseEnergyJ + n.ListenEnergyJ; n.RadioEnergyJ != sum {
			t.Fatalf("node %d: radio subtotal %v != component sum %v", n.ID, n.RadioEnergyJ, sum)
		}
		if n.EnergyJ != n.CPUEnergyJ+n.RadioEnergyJ {
			t.Fatalf("node %d: total %v != CPU %v + radio %v", n.ID, n.EnergyJ, n.CPUEnergyJ, n.RadioEnergyJ)
		}
		if n.CPUEnergyJ < 0 || n.RadioEnergyJ < 0 || n.EnergyJ < 0 {
			t.Fatalf("node %d: negative energy: %+v", n.ID, n)
		}
		if n.Parent != n.ID {
			rxFromChildren[n.Parent] += n.TxPackets
		}
	}
	if res.TotalEnergyJ != total {
		t.Fatalf("TotalEnergyJ %v != per-node sum %v", res.TotalEnergyJ, total)
	}
	var sink *NodeResult
	for i := range res.Nodes {
		n := &res.Nodes[i]
		if n.RxPackets != rxFromChildren[n.ID] {
			t.Fatalf("node %d received %d packets, children transmitted %d",
				n.ID, n.RxPackets, rxFromChildren[n.ID])
		}
		if n.Parent == n.ID {
			sink = n
		}
	}
	if res.Delivered != sink.Processed {
		t.Fatalf("delivered %d != sink completions %d", res.Delivered, sink.Processed)
	}
	if res.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	// Nodes closer to the sink carry more traffic; the bottleneck must be
	// an interior node, not a leaf.
	var bn *NodeResult
	for i := range res.Nodes {
		if res.Nodes[i].ID == res.Bottleneck {
			bn = &res.Nodes[i]
		}
	}
	if bn == nil {
		t.Fatalf("bottleneck %d not reported", res.Bottleneck)
	}
	if bn.LifetimeSeconds != res.LifetimeSeconds {
		t.Fatalf("bottleneck lifetime %v != network lifetime %v", bn.LifetimeSeconds, res.LifetimeSeconds)
	}
	for _, n := range res.Nodes {
		if n.LifetimeSeconds < res.LifetimeSeconds {
			t.Fatalf("node %d outlives... dies at %v, before reported network lifetime %v",
				n.ID, n.LifetimeSeconds, res.LifetimeSeconds)
		}
	}
}

// TestFieldMatchesAnalyticLine is the cross-check oracle: on a
// CPU-dominated line topology the simulated per-node and network lifetimes
// must agree with the analytic network.Analyze (Markov CPU + airtime
// radio) within tolerance.
func TestFieldMatchesAnalyticLine(t *testing.T) {
	const (
		n       = 5
		rate    = 0.5
		horizon = 4000.0
		warmup  = 400.0
		tol     = 0.06
	)
	cpu := testCPU()
	fieldCfg := Config{
		Nodes: LineTopology(n, rate, 1),
		CPU:   cpu,
		// Zero radio coefficients: energy is CPU-only on both sides of the
		// comparison.
		Radio:   energy.Radio{PacketBits: 2048},
		Battery: energy.AA2850,
		Horizon: horizon,
		Warmup:  warmup,
		Seed:    20080901,
	}
	sim, err := Simulate(fieldCfg)
	if err != nil {
		t.Fatal(err)
	}

	anNodes := make([]network.Node, n)
	for i := range anNodes {
		parent := i - 1 // -1 marks the sink in the analytic model
		anNodes[i] = network.Node{ID: i, Parent: parent, SampleRate: rate}
	}
	an, err := network.Analyze(network.Config{
		Nodes:        anNodes,
		CPU:          core.PaperConfig(),
		TxTime:       1e-9, // vanishing airtime: the analytic radio draw is ~0
		RxTime:       1e-9,
		ListenPeriod: 1,
		ListenWindow: 0,
		Battery:      energy.AA2850,
	})
	if err != nil {
		t.Fatal(err)
	}

	relDiff := func(a, b float64) float64 { return math.Abs(a-b) / b }
	if d := relDiff(sim.LifetimeSeconds, an.LifetimeSeconds); d > tol {
		t.Fatalf("network lifetime diverges %.1f%%: simulated %v s, analytic %v s",
			100*d, sim.LifetimeSeconds, an.LifetimeSeconds)
	}
	if sim.Bottleneck != an.Bottleneck {
		t.Fatalf("bottleneck diverges: simulated %d, analytic %d", sim.Bottleneck, an.Bottleneck)
	}
	for i, sn := range sim.Nodes {
		if d := relDiff(sn.LifetimeSeconds, an.Nodes[i].LifetimeSeconds); d > tol {
			t.Fatalf("node %d lifetime diverges %.1f%%: simulated %v s, analytic %v s",
				sn.ID, 100*d, sn.LifetimeSeconds, an.Nodes[i].LifetimeSeconds)
		}
	}
}

// TestFieldPlacementIndependence: results are a function of (topology,
// seed) only — the order nodes are listed in must not matter, because
// per-node seeds derive from IDs and the scheduler breaks ties
// deterministically.
func TestFieldPlacementIndependence(t *testing.T) {
	base := Config{
		Nodes:   TreeTopology(10, 2, 1, 8),
		CPU:     testCPU(),
		Radio:   energy.FirstOrderRadio(),
		Battery: energy.AA2850,
		Horizon: 200,
		Warmup:  20,
		Seed:    99,
	}
	want, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}

	shuffled := base
	shuffled.Nodes = append([]Node(nil), base.Nodes...)
	for i := range shuffled.Nodes { // deterministic reversal is enough
		j := len(shuffled.Nodes) - 1 - i
		if i >= j {
			break
		}
		shuffled.Nodes[i], shuffled.Nodes[j] = shuffled.Nodes[j], shuffled.Nodes[i]
	}
	got, err := Simulate(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("results depend on node listing order:\nwant %+v\ngot  %+v", want, got)
	}

	// And the run is reproducible outright.
	again, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, again) {
		t.Fatal("identical configs produced different results")
	}
}

func TestFieldValidate(t *testing.T) {
	good := DefaultConfig(LineTopology(3, 0.5, 10))
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := map[string]func(*Config){
		"no nodes":       func(c *Config) { c.Nodes = nil },
		"zero horizon":   func(c *Config) { c.Horizon = 0 },
		"neg warmup":     func(c *Config) { c.Warmup = -1 },
		"zero mu":        func(c *Config) { c.CPU.Mu = 0 },
		"neg pdt":        func(c *Config) { c.CPU.PDT = -1 },
		"neg power":      func(c *Config) { c.CPU.Power.MW[0] = -5 },
		"bad radio":      func(c *Config) { c.Radio.ElecJPerBit = -1 },
		"bad battery":    func(c *Config) { c.Battery.CapacitymAh = 0 },
		"dup id":         func(c *Config) { c.Nodes[2].ID = c.Nodes[1].ID },
		"zero rate":      func(c *Config) { c.Nodes[1].SampleRate = 0 },
		"no sink":        func(c *Config) { c.Nodes[0].Parent = 1 },
		"two sinks":      func(c *Config) { c.Nodes[1].Parent = 1 },
		"unknown parent": func(c *Config) { c.Nodes[2].Parent = 42 },
		"cycle": func(c *Config) {
			c.Nodes = append(c.Nodes, Node{ID: 3, Parent: 4, SampleRate: 1}, Node{ID: 4, Parent: 3, SampleRate: 1})
		},
	}
	for name, mutate := range cases {
		cfg := DefaultConfig(LineTopology(3, 0.5, 10))
		cfg.Nodes = append([]Node(nil), cfg.Nodes...)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

func TestTopologies(t *testing.T) {
	for name, nodes := range map[string][]Node{
		"line": LineTopology(6, 0.5, 10),
		"star": StarTopology(6, 0.5, 10),
		"tree": TreeTopology(6, 2, 0.5, 10),
	} {
		cfg := DefaultConfig(nodes)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: constructor produced invalid topology: %v", name, err)
		}
	}
	// Star children all sit at the configured radius.
	for _, n := range StarTopology(8, 1, 25)[1:] {
		if d := Distance(n.Pos, Position{}); math.Abs(d-25) > 1e-9 {
			t.Fatalf("star node %d at distance %v, want 25", n.ID, d)
		}
	}
	// Tree parents follow the (i-1)/fanout rule.
	tree := TreeTopology(10, 3, 1, 5)
	for i := 1; i < len(tree); i++ {
		if tree[i].Parent != (i-1)/3 {
			t.Fatalf("tree node %d has parent %d", i, tree[i].Parent)
		}
	}
}

func TestFieldEstimatorRegistry(t *testing.T) {
	est, err := core.NewEstimator("field12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(est.Name(), "n=12") || !strings.Contains(est.Name(), "tree") {
		t.Fatalf("field12 resolved to %q", est.Name())
	}
	if _, err := core.NewEstimator("fieldline"); err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewEstimator("fieldstar9"); err != nil {
		t.Fatal(err)
	}

	cfg := core.PaperConfig()
	cfg.SimTime = 60
	cfg.Warmup = 10
	cfg.Lambda = 0.5
	got, err := est.EstimateContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.EnergyJ <= 0 || got.Node.LifetimeSeconds <= 0 || got.Node.PacketsPerSecond <= 0 {
		t.Fatalf("degenerate estimate: %+v", got)
	}
	if err := got.Fractions.Validate(0.02); err != nil {
		t.Fatalf("bottleneck fractions: %v", err)
	}
	if got.Node.TotalAvgMW <= got.Node.CPUAvgMW {
		t.Fatalf("radio share missing: %+v", got.Node)
	}

	bad := Estimator{Topology: "mesh", N: 4}
	if _, err := bad.EstimateContext(context.Background(), cfg); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestFieldCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := DefaultConfig(TreeTopology(20, 4, 2, 10))
	cfg.Horizon = 5000
	if _, err := SimulateContext(ctx, cfg); err == nil {
		t.Fatal("cancelled context did not abort the field")
	}
}
