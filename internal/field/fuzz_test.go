package field

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/xrand"
)

// FuzzFieldSimulate drives the simulator over randomized small topologies —
// random trees, sample rates, radio parameters, placements, battery sizes
// from instantly-fatal to effectively infinite — and asserts the accounting
// invariants that must hold for every field:
//
//   - the simulation completes without error;
//   - no energy component is negative and no lifetime is NaN;
//   - the field total equals the per-node sum and packet flows balance
//     exactly even across mid-run deaths (drops happen in queues, never
//     mid-transmission);
//   - dead nodes accrue nothing after their crossing: their listen energy
//     is exactly the alive-window closed form, their CPU energy is bounded
//     by the alive window at peak draw, and their budget reads empty;
//   - with deaths the network lifetime is the measured first crossing;
//     without, it stays the extrapolated minimum and survivors obey
//     traffic monotonicity (more traffic never lengthens a lifetime).
func FuzzFieldSimulate(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint16(1000), uint16(300), uint8(10), uint16(65535))
	f.Add(uint64(42), uint8(2), uint16(1), uint16(65535), uint8(0), uint16(40))
	f.Add(uint64(20080901), uint8(6), uint16(30000), uint16(1), uint8(200), uint16(0))
	f.Add(uint64(7), uint8(5), uint16(20000), uint16(500), uint8(120), uint16(5))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, rateRaw, radioRaw uint16, spacingRaw uint8, battRaw uint16) {
		n := 2 + int(nRaw%6)
		rng := xrand.New(seed)
		nodes := make([]Node, n)
		baseRate := 0.05 + float64(rateRaw)/65535*1.5
		for i := range nodes {
			parent := 0
			if i > 0 {
				parent = rng.Intn(i) // parents precede children: always a tree
			}
			nodes[i] = Node{
				ID:         i,
				Parent:     parent,
				SampleRate: baseRate * (0.5 + rng.Float64()),
				Pos: Position{
					X: float64(spacingRaw) * rng.Float64(),
					Y: float64(spacingRaw) * rng.Float64(),
				},
			}
		}
		scale := 0.1 + float64(radioRaw)/65535*10
		cfg := DefaultConfig(nodes)
		cfg.Radio = energy.Radio{
			ElecJPerBit:  50e-9 * scale,
			AmpJPerBitM2: 100e-12 * scale,
			AggJPerBit:   5e-9 * scale,
			SenseJPerBit: 5e-9 * scale,
			PacketBits:   256 + float64(radioRaw%2048),
			ListenMW:     0.01 * scale,
		}
		cfg.Horizon = 25
		cfg.Warmup = 2.5
		cfg.Seed = seed
		// Battery from ~0.005 J (death within the first event or two,
		// warmup included) up to the stock AA pair (no node ever dies);
		// the draw under PXA271 is ~0.02-0.2 W, so the low half of the
		// range deals mid-run deaths and the top survives the horizon.
		if battRaw == 65535 {
			cfg.Battery = energy.AA2850
		} else {
			cfg.Battery = energy.Battery{CapacitymAh: 0.0005 + float64(battRaw)*0.0001, Volts: 3}
		}
		hz := cfg.Warmup + cfg.Horizon

		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}

		var total float64
		var txSum, rxSum, samples, droppedAtDeath uint64
		minLife := math.Inf(1)
		firstDeath := math.Inf(1)
		maxMW := cfg.Radio.ListenMW
		for _, mw := range cfg.CPU.Power.MW {
			maxMW += mw
		}
		for _, nr := range res.Nodes {
			for name, v := range map[string]float64{
				"CPU": nr.CPUEnergyJ, "Tx": nr.TxEnergyJ, "Rx": nr.RxEnergyJ,
				"Agg": nr.AggEnergyJ, "Sense": nr.SenseEnergyJ, "Listen": nr.ListenEnergyJ,
				"Radio": nr.RadioEnergyJ, "Total": nr.EnergyJ, "Remaining": nr.RemainingJ,
			} {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("node %d: %s energy %v", nr.ID, name, v)
				}
			}
			if math.IsNaN(nr.LifetimeSeconds) || nr.LifetimeSeconds <= 0 {
				t.Fatalf("node %d: lifetime %v", nr.ID, nr.LifetimeSeconds)
			}
			total += nr.EnergyJ
			txSum += nr.TxPackets
			rxSum += nr.RxPackets
			samples += nr.Samples
			droppedAtDeath += nr.DroppedAtDeath
			if nr.LifetimeSeconds < minLife {
				minLife = nr.LifetimeSeconds
			}

			if nr.Died {
				if !(nr.DeathTime > 0) || nr.DeathTime > hz {
					t.Fatalf("node %d: death time %v outside (0, %v]", nr.ID, nr.DeathTime, hz)
				}
				if nr.DeathTime < firstDeath {
					firstDeath = nr.DeathTime
				}
				if nr.LifetimeSeconds != nr.DeathTime {
					t.Fatalf("node %d: dead lifetime %v != death time %v", nr.ID, nr.LifetimeSeconds, nr.DeathTime)
				}
				if nr.RemainingJ != 0 {
					t.Fatalf("node %d: dead with %v J remaining", nr.ID, nr.RemainingJ)
				}
				if nr.DeliveredBefore > res.Delivered {
					t.Fatalf("node %d: DeliveredBefore %d > Delivered %d", nr.ID, nr.DeliveredBefore, res.Delivered)
				}
				// Nothing accrues after the crossing: listen energy is
				// exactly the alive measured window, and CPU energy cannot
				// exceed that window at peak draw.
				aliveMeasured := 0.0
				if nr.DeathTime > cfg.Warmup {
					aliveMeasured = math.Min(nr.DeathTime, hz) - cfg.Warmup
				}
				if want := cfg.Radio.ListenMW * aliveMeasured / 1000; nr.ListenEnergyJ != want {
					t.Fatalf("node %d: listen %v J, want alive-window %v J", nr.ID, nr.ListenEnergyJ, want)
				}
				if nr.CPUEnergyJ > maxMW*aliveMeasured/1000*(1+1e-12) {
					t.Fatalf("node %d: CPU %v J exceeds alive window %v s at peak draw", nr.ID, nr.CPUEnergyJ, aliveMeasured)
				}
				if sum := nr.CPUFractions.Sum(); sum > 1+1e-9 {
					t.Fatalf("node %d: dead-node fractions sum to %v", nr.ID, sum)
				}
			} else {
				if !math.IsInf(nr.DeathTime, 1) || nr.DroppedAtDeath != 0 {
					t.Fatalf("node %d: survivor with DeathTime=%v DroppedAtDeath=%d", nr.ID, nr.DeathTime, nr.DroppedAtDeath)
				}
				// Monotonicity: adding the energy of one more transmitted
				// packet to the node's budget never lengthens its lifetime.
				extra := (nr.EnergyJ + cfg.Radio.PacketTxJ(nr.Distance) + cfg.Radio.PacketRxJ()) / res.Time * 1000
				if longer := cfg.Battery.LifetimeSeconds(extra); longer > nr.LifetimeSeconds {
					t.Fatalf("node %d: more traffic lengthened lifetime: %v -> %v",
						nr.ID, nr.LifetimeSeconds, longer)
				}
			}
		}
		if res.TotalEnergyJ != total {
			t.Fatalf("TotalEnergyJ %v != sum %v", res.TotalEnergyJ, total)
		}
		// Transmission is atomic: every measured transmitted packet was
		// received, deaths or not — losses happen in queues (counted per
		// dead node) or pre-transmit (no-route drops), never on the air.
		if txSum != rxSum {
			t.Fatalf("field Tx %d != Rx %d", txSum, rxSum)
		}
		if res.DroppedInFlight != droppedAtDeath {
			t.Fatalf("DroppedInFlight %d != per-node sum %d", res.DroppedInFlight, droppedAtDeath)
		}
		// Everything the sink absorbed was sensed by someone. Samples count
		// the measured window only, while a handful of packets sensed during
		// warmup can be delivered just after it — allow that bounded
		// in-flight leakage but nothing more (a delivery double-count would
		// blow far past it).
		if slack := uint64(64 * n); res.Delivered > samples+slack {
			t.Fatalf("Delivered %d > sensed %d + in-flight slack %d", res.Delivered, samples, slack)
		}
		if len(res.Deaths) == 0 {
			if !math.IsInf(res.FirstDeathSeconds, 1) {
				t.Fatalf("no deaths but FirstDeathSeconds=%v", res.FirstDeathSeconds)
			}
			if res.LifetimeSeconds != minLife {
				t.Fatalf("network lifetime %v != min node lifetime %v", res.LifetimeSeconds, minLife)
			}
		} else {
			// Measured beats extrapolated: lifetime is the first crossing
			// (an extrapolated survivor estimate may legitimately undercut
			// it, so the min-over-nodes rule no longer applies).
			if res.FirstDeathSeconds != firstDeath || res.LifetimeSeconds != firstDeath {
				t.Fatalf("first death %v but FirstDeathSeconds=%v LifetimeSeconds=%v",
					firstDeath, res.FirstDeathSeconds, res.LifetimeSeconds)
			}
			if res.Deaths[0].Time != firstDeath || res.Bottleneck != res.Deaths[0].ID {
				t.Fatalf("death timeline %+v inconsistent with first death %v / bottleneck %d",
					res.Deaths, firstDeath, res.Bottleneck)
			}
			for i := 1; i < len(res.Deaths); i++ {
				if res.Deaths[i].Time < res.Deaths[i-1].Time {
					t.Fatalf("death timeline out of order: %+v", res.Deaths)
				}
			}
		}
	})
}
