package field

import (
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/xrand"
)

// FuzzFieldSimulate drives the simulator over randomized small topologies —
// random trees, sample rates, radio parameters, placements — and asserts
// the accounting invariants that must hold for every field:
//
//   - the simulation completes without error;
//   - no energy component is negative and no lifetime is NaN;
//   - the field total equals the per-node sum and packet flows balance;
//   - monotonicity: charging a node more traffic energy can only shorten
//     its lifetime, and the network lifetime is the minimum node lifetime.
func FuzzFieldSimulate(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint16(1000), uint16(300), uint8(10))
	f.Add(uint64(42), uint8(2), uint16(1), uint16(65535), uint8(0))
	f.Add(uint64(20080901), uint8(6), uint16(30000), uint16(1), uint8(200))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, rateRaw, radioRaw uint16, spacingRaw uint8) {
		n := 2 + int(nRaw%6)
		rng := xrand.New(seed)
		nodes := make([]Node, n)
		baseRate := 0.05 + float64(rateRaw)/65535*1.5
		for i := range nodes {
			parent := 0
			if i > 0 {
				parent = rng.Intn(i) // parents precede children: always a tree
			}
			nodes[i] = Node{
				ID:         i,
				Parent:     parent,
				SampleRate: baseRate * (0.5 + rng.Float64()),
				Pos: Position{
					X: float64(spacingRaw) * rng.Float64(),
					Y: float64(spacingRaw) * rng.Float64(),
				},
			}
		}
		scale := 0.1 + float64(radioRaw)/65535*10
		cfg := DefaultConfig(nodes)
		cfg.Radio = energy.Radio{
			ElecJPerBit:  50e-9 * scale,
			AmpJPerBitM2: 100e-12 * scale,
			AggJPerBit:   5e-9 * scale,
			SenseJPerBit: 5e-9 * scale,
			PacketBits:   256 + float64(radioRaw%2048),
			ListenMW:     0.01 * scale,
		}
		cfg.Horizon = 25
		cfg.Warmup = 2.5
		cfg.Seed = seed

		res, err := Simulate(cfg)
		if err != nil {
			t.Fatalf("config %+v: %v", cfg, err)
		}

		var total float64
		minLife := math.Inf(1)
		for _, nr := range res.Nodes {
			for name, v := range map[string]float64{
				"CPU": nr.CPUEnergyJ, "Tx": nr.TxEnergyJ, "Rx": nr.RxEnergyJ,
				"Agg": nr.AggEnergyJ, "Sense": nr.SenseEnergyJ, "Listen": nr.ListenEnergyJ,
				"Radio": nr.RadioEnergyJ, "Total": nr.EnergyJ,
			} {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("node %d: %s energy %v", nr.ID, name, v)
				}
			}
			if math.IsNaN(nr.LifetimeSeconds) || nr.LifetimeSeconds <= 0 {
				t.Fatalf("node %d: lifetime %v", nr.ID, nr.LifetimeSeconds)
			}
			total += nr.EnergyJ
			if nr.LifetimeSeconds < minLife {
				minLife = nr.LifetimeSeconds
			}

			// Monotonicity: adding the energy of one more transmitted
			// packet to the node's budget never lengthens its lifetime.
			extra := (nr.EnergyJ + cfg.Radio.PacketTxJ(nr.Distance) + cfg.Radio.PacketRxJ()) / res.Time * 1000
			if longer := cfg.Battery.LifetimeSeconds(extra); longer > nr.LifetimeSeconds {
				t.Fatalf("node %d: more traffic lengthened lifetime: %v -> %v",
					nr.ID, nr.LifetimeSeconds, longer)
			}
		}
		if res.TotalEnergyJ != total {
			t.Fatalf("TotalEnergyJ %v != sum %v", res.TotalEnergyJ, total)
		}
		if res.LifetimeSeconds != minLife {
			t.Fatalf("network lifetime %v != min node lifetime %v", res.LifetimeSeconds, minLife)
		}
	})
}
