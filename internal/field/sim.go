package field

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
)

// NodeResult is one node's outcome over the measured period.
type NodeResult struct {
	// ID and Parent identify the node and its next hop (Parent == ID for
	// the sink). Distance is the transmit distance to the parent in
	// meters.
	ID, Parent int
	Distance   float64
	// SampleRate echoes the node's own sensing rate.
	SampleRate float64
	// Samples counts the node's own sensed samples (AR firings),
	// Processed the CPU jobs it completed (SR firings, own + relayed).
	Samples, Processed uint64
	// TxPackets and RxPackets count radio packets sent to the parent and
	// received from children.
	TxPackets, RxPackets uint64
	// CPUFractions are the processor state shares (Figure-3 places).
	CPUFractions energy.Fractions
	// Energy breakdown in joules over the measured period.
	CPUEnergyJ, TxEnergyJ, RxEnergyJ, AggEnergyJ, SenseEnergyJ, ListenEnergyJ float64
	// RadioEnergyJ is the radio subtotal, EnergyJ the node total.
	RadioEnergyJ, EnergyJ float64
	// AvgPowerMW is the node's average draw; LifetimeSeconds the battery
	// lifetime extrapolated from it (first-order, same definition as the
	// analytic network.Analyze, so the two are directly comparable).
	AvgPowerMW      float64
	LifetimeSeconds float64
}

// LifetimeDays converts the node lifetime to days.
func (r *NodeResult) LifetimeDays() float64 { return r.LifetimeSeconds / 86400 }

// Result is the outcome of a field simulation.
type Result struct {
	// Time is the measured duration in seconds.
	Time float64
	// Nodes holds per-node results in ascending ID order.
	Nodes []NodeResult
	// Delivered counts packets absorbed at the sink during measurement.
	Delivered uint64
	// TotalEnergyJ is the field-wide energy spent over the measured
	// period; it equals the sum of the per-node EnergyJ values.
	TotalEnergyJ float64
	// LifetimeSeconds is the network lifetime under the first-node-death
	// definition: the minimum node lifetime. Bottleneck is the ID of that
	// node (lowest ID on ties).
	LifetimeSeconds float64
	Bottleneck      int
}

// LifetimeDays converts the network lifetime to days.
func (r *Result) LifetimeDays() float64 { return r.LifetimeSeconds / 86400 }

// nodeIDs caches the place and transition IDs a field node's net resolves
// to. BuildNodeNet is deterministic, so the IDs are identical across all
// per-rate compilations; they are still resolved per compiled net.
type nodeIDs struct {
	p6, buffer, outbox             petri.PlaceID
	standby, powerup, idle, active petri.PlaceID
	ar, sr                         petri.TransitionID
}

type compiledNode struct {
	comp *petri.Compiled
	ids  nodeIDs
}

// nodeState is one node's live simulation state.
type nodeState struct {
	node   Node
	parent int // index into the state slice, -1 for the sink
	dist   float64
	sess   *petri.Session
	ids    nodeIDs

	txPackets, rxPackets uint64
	txJ, rxJ, aggJ       float64
}

// Simulate runs the field to its horizon and returns per-node and
// network-level energy, traffic and lifetime results.
func Simulate(cfg Config) (*Result, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cooperative cancellation: the per-node
// engines poll the context during event processing, so cancellation lands
// mid-run even in large fields.
func SimulateContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := open(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer f.close()
	if err := f.run(ctx); err != nil {
		return nil, err
	}
	return f.finish()
}

type fieldSim struct {
	cfg    Config
	nodes  []nodeState
	heap   eventHeap
	warmup float64
	hz     float64

	delivered uint64
}

// open compiles the distinct per-rate nets, opens one engine session per
// node (seeded from NodeSeed) and schedules the initial events.
func open(ctx context.Context, cfg Config) (*fieldSim, error) {
	f := &fieldSim{
		cfg:    cfg,
		warmup: cfg.Warmup,
		hz:     cfg.Warmup + cfg.Horizon,
	}
	// Ascending-ID node order makes every downstream iteration (and the
	// reported result order) independent of the caller's slice order.
	nodes := append([]Node(nil), cfg.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	byID := make(map[int]int, len(nodes))
	for i, n := range nodes {
		byID[n.ID] = i
	}

	// One compiled net per distinct sample rate; nodes sharing a rate
	// share the compilation and its engine pool.
	compiled := map[float64]*compiledNode{}
	f.nodes = make([]nodeState, len(nodes))
	for i, n := range nodes {
		cn, ok := compiled[n.SampleRate]
		if !ok {
			net := BuildNodeNet(cfg.CPU, n.SampleRate)
			comp, err := petri.Compile(net)
			if err != nil {
				return nil, fmt.Errorf("field: node %d: %w", n.ID, err)
			}
			cn = &compiledNode{comp: comp, ids: resolveIDs(net)}
			compiled[n.SampleRate] = cn
		}
		parent := -1
		var dist float64
		if n.Parent != n.ID {
			parent = byID[n.Parent]
			dist = Distance(n.Pos, nodes[parent].Pos)
		}
		sess, err := cn.comp.OpenSession(ctx, petri.SimOptions{
			Seed:     NodeSeed(cfg.Seed, n.ID),
			Warmup:   cfg.Warmup,
			Duration: cfg.Horizon,
		})
		if err != nil {
			f.close()
			return nil, fmt.Errorf("field: node %d: %w", n.ID, err)
		}
		f.nodes[i] = nodeState{node: n, parent: parent, dist: dist, sess: sess, ids: cn.ids}
	}
	f.heap.init(len(f.nodes))
	for i := range f.nodes {
		f.heap.update(i, f.nodes[i].sess.NextEventTime())
	}
	return f, nil
}

func resolveIDs(n *petri.Net) nodeIDs {
	place := func(name string) petri.PlaceID {
		id, ok := n.PlaceByName(name)
		if !ok {
			panic(fmt.Sprintf("field: node net lost place %q", name))
		}
		return id
	}
	trans := func(name string) petri.TransitionID {
		id, ok := n.TransitionByName(name)
		if !ok {
			panic(fmt.Sprintf("field: node net lost transition %q", name))
		}
		return id
	}
	return nodeIDs{
		p6:      place(core.PlaceP6),
		buffer:  place(core.PlaceCPUBuffer),
		outbox:  place(PlaceOutbox),
		standby: place(core.PlaceStandBy),
		powerup: place(core.PlacePowerUp),
		idle:    place(core.PlaceIdle),
		active:  place(core.PlaceActive),
		ar:      trans(core.TransAR),
		sr:      trans(core.TransSR),
	}
}

// close abandons every still-open session (error paths; finish closes
// sessions by finishing them).
func (f *fieldSim) close() {
	for i := range f.nodes {
		if s := f.nodes[i].sess; s != nil {
			s.Close()
		}
	}
}

// run is the global event loop: repeatedly advance the globally earliest
// node to its next event time and forward whatever packets that event (and
// any cascade it triggers upstream) produced.
func (f *fieldSim) run(ctx context.Context) error {
	poll := 0
	for {
		i, te := f.heap.min()
		if i < 0 || te > f.hz {
			return nil
		}
		if poll++; poll&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n := &f.nodes[i]
		if err := n.sess.StepTo(te); err != nil {
			return err
		}
		if err := f.deliver(i, te); err != nil {
			return err
		}
		f.heap.update(i, n.sess.NextEventTime())
	}
}

// deliver drains node i's outbox and pushes the packets up the routing
// chain: each hop charges transmit energy at the sender (distance-
// dependent), receive and aggregation energy at the receiver, and injects
// the packets as workload into the receiver's CPU net. The receiver is
// first stepped to the current time, so a relayed packet can trigger
// further completions that continue the cascade toward the sink within the
// same instant.
func (f *fieldSim) deliver(i int, te float64) error {
	measured := te >= f.warmup
	radio := &f.cfg.Radio
	for {
		n := &f.nodes[i]
		k := n.sess.Tokens(n.ids.outbox)
		if k == 0 {
			return nil
		}
		if err := n.sess.Inject(petri.Injection{Place: n.ids.outbox, Tokens: -k}); err != nil {
			return err
		}
		if n.parent < 0 {
			// The sink absorbs its completed packets (uplink to the base
			// station is outside the field's energy budget).
			if measured {
				f.delivered += uint64(k)
			}
			return nil
		}
		p := &f.nodes[n.parent]
		if err := p.sess.StepTo(te); err != nil {
			return err
		}
		if err := p.sess.Inject(
			petri.Injection{Place: p.ids.p6, Tokens: k},
			petri.Injection{Place: p.ids.buffer, Tokens: k},
		); err != nil {
			return err
		}
		if measured {
			bits := float64(k) * radio.PacketBits
			n.txPackets += uint64(k)
			n.txJ += radio.TxJ(bits, n.dist)
			p.rxPackets += uint64(k)
			p.rxJ += radio.RxJ(bits)
			p.aggJ += radio.AggregateJ(bits)
		}
		f.heap.update(n.parent, p.sess.NextEventTime())
		i = n.parent
	}
}

// finish closes every session at the horizon and assembles the result:
// CPU energy from the time-averaged state fractions and the power table,
// radio energy from the per-packet accounting, lifetime by extrapolating
// the battery at the node's average draw.
func (f *fieldSim) finish() (*Result, error) {
	cfg := f.cfg
	out := &Result{
		Time:            cfg.Horizon,
		Nodes:           make([]NodeResult, len(f.nodes)),
		Delivered:       f.delivered,
		LifetimeSeconds: math.Inf(1),
		Bottleneck:      -1,
	}
	for i := range f.nodes {
		n := &f.nodes[i]
		res, err := n.sess.Finish()
		n.sess = nil
		if err != nil {
			return nil, fmt.Errorf("field: node %d: %w", n.node.ID, err)
		}
		nr := NodeResult{
			ID:         n.node.ID,
			Parent:     n.node.Parent,
			Distance:   n.dist,
			SampleRate: n.node.SampleRate,
			Samples:    res.Firings[n.ids.ar],
			Processed:  res.Firings[n.ids.sr],
			TxPackets:  n.txPackets,
			RxPackets:  n.rxPackets,
			TxEnergyJ:  n.txJ,
			RxEnergyJ:  n.rxJ,
			AggEnergyJ: n.aggJ,
		}
		nr.CPUFractions[energy.Standby] = res.PlaceAvg[n.ids.standby]
		nr.CPUFractions[energy.PowerUp] = res.PlaceAvg[n.ids.powerup]
		nr.CPUFractions[energy.Idle] = res.PlaceAvg[n.ids.idle]
		nr.CPUFractions[energy.Active] = res.PlaceAvg[n.ids.active]
		nr.CPUEnergyJ = cfg.CPU.Power.EnergyJoules(nr.CPUFractions, cfg.Horizon)
		nr.SenseEnergyJ = cfg.Radio.SenseJ(float64(nr.Samples) * cfg.Radio.PacketBits)
		nr.ListenEnergyJ = cfg.Radio.ListenMW * cfg.Horizon / 1000
		nr.RadioEnergyJ = nr.TxEnergyJ + nr.RxEnergyJ + nr.AggEnergyJ + nr.SenseEnergyJ + nr.ListenEnergyJ
		nr.EnergyJ = nr.CPUEnergyJ + nr.RadioEnergyJ
		nr.AvgPowerMW = nr.EnergyJ / cfg.Horizon * 1000
		nr.LifetimeSeconds = cfg.Battery.LifetimeSeconds(nr.AvgPowerMW)
		if math.IsNaN(nr.LifetimeSeconds) || nr.EnergyJ < 0 {
			return nil, fmt.Errorf("field: node %d: invalid energy accounting (%v J, lifetime %v s)",
				nr.ID, nr.EnergyJ, nr.LifetimeSeconds)
		}
		out.TotalEnergyJ += nr.EnergyJ
		if nr.LifetimeSeconds < out.LifetimeSeconds {
			out.LifetimeSeconds = nr.LifetimeSeconds
			out.Bottleneck = nr.ID
		}
		out.Nodes[i] = nr
	}
	if out.Bottleneck < 0 {
		// All lifetimes infinite (zero draw): call the sink the bottleneck.
		out.Bottleneck = out.Nodes[0].ID
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Per-node event heap
//
// An indexed binary min-heap over (next event time, node index): the key
// array is indexed by node, update re-sifts in place. The index tie-break
// keeps the pop order deterministic under equal event times, which —
// together with per-node seeding — makes field trajectories independent of
// map iteration and node ordering.

type eventHeap struct {
	at   []float64
	heap []int
	pos  []int
}

func (h *eventHeap) init(n int) {
	h.at = make([]float64, n)
	h.heap = make([]int, 0, n)
	h.pos = make([]int, n)
	for i := range h.pos {
		h.at[i] = math.Inf(1)
		h.pos[i] = -1
	}
}

func (h *eventHeap) less(a, b int) bool {
	return h.at[a] < h.at[b] || (h.at[a] == h.at[b] && a < b)
}

// min returns the node with the earliest event, or (-1, +Inf) when no node
// has one scheduled.
func (h *eventHeap) min() (int, float64) {
	if len(h.heap) == 0 {
		return -1, math.Inf(1)
	}
	i := h.heap[0]
	return i, h.at[i]
}

// update sets node i's next event time (or +Inf to deschedule it).
func (h *eventHeap) update(i int, at float64) {
	if math.IsInf(at, 1) {
		h.remove(i)
		return
	}
	h.at[i] = at
	if h.pos[i] < 0 {
		h.pos[i] = len(h.heap)
		h.heap = append(h.heap, i)
		h.siftUp(h.pos[i])
		return
	}
	if !h.siftUp(h.pos[i]) {
		h.siftDown(h.pos[i])
	}
}

func (h *eventHeap) remove(i int) {
	at := h.pos[i]
	if at < 0 {
		return
	}
	h.at[i] = math.Inf(1)
	h.pos[i] = -1
	last := len(h.heap) - 1
	if at != last {
		moved := h.heap[last]
		h.heap[at] = moved
		h.pos[moved] = at
		h.heap = h.heap[:last]
		if !h.siftUp(at) {
			h.siftDown(at)
		}
	} else {
		h.heap = h.heap[:last]
	}
}

func (h *eventHeap) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		h.pos[h.heap[i]] = i
		h.pos[h.heap[parent]] = parent
		i = parent
		moved = true
	}
	return moved
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		smallest := i
		for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
			if h.less(h.heap[c], h.heap[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		h.heap[i], h.heap[smallest] = h.heap[smallest], h.heap[i]
		h.pos[h.heap[i]] = i
		h.pos[h.heap[smallest]] = smallest
		i = smallest
	}
}
