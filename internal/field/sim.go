package field

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/petri"
)

// NodeResult is one node's outcome over the measured period.
type NodeResult struct {
	// ID and Parent identify the node and its next hop (Parent == ID for
	// the sink). Distance is the transmit distance to the parent in
	// meters.
	ID, Parent int
	Distance   float64
	// SampleRate echoes the node's own sensing rate.
	SampleRate float64
	// Samples counts the node's own sensed samples (AR firings),
	// Processed the CPU jobs it completed (SR firings, own + relayed).
	Samples, Processed uint64
	// TxPackets and RxPackets count radio packets sent to the parent and
	// received from children.
	TxPackets, RxPackets uint64
	// CPUFractions are the processor state shares (Figure-3 places).
	CPUFractions energy.Fractions
	// Energy breakdown in joules over the measured period.
	CPUEnergyJ, TxEnergyJ, RxEnergyJ, AggEnergyJ, SenseEnergyJ, ListenEnergyJ float64
	// RadioEnergyJ is the radio subtotal, EnergyJ the node total.
	RadioEnergyJ, EnergyJ float64
	// AvgPowerMW is the node's average draw while alive in the measured
	// window. LifetimeSeconds is the node's battery lifetime: for a node
	// that died mid-run it is the measured DeathTime; for a survivor it is
	// extrapolated from the average draw (first-order, same definition as
	// the analytic network.Analyze, so the two are directly comparable).
	AvgPowerMW      float64
	LifetimeSeconds float64
	// Died reports that the node's battery hit zero mid-run; DeathTime is
	// the exact crossing time in absolute simulation seconds (warmup
	// included), +Inf for survivors. For a dead node the energy fields
	// above cover the measured window up to DeathTime only, and
	// CPUFractions are the state shares of its alive measured time (all
	// zero when it died during warmup).
	Died      bool
	DeathTime float64
	// DeliveredBefore counts the packets the sink had absorbed when this
	// node died — the traffic impact marker of each death. Survivors
	// report the run's full Delivered count.
	DeliveredBefore uint64
	// DroppedAtDeath counts the packets that died with the node: queued
	// and in-service jobs (own samples and relayed traffic alike) plus
	// finished packets still waiting in its outbox.
	DroppedAtDeath uint64
	// RemainingJ is the battery budget left at the end of the run, zero
	// for dead nodes. Unlike the measured energy fields it accounts the
	// whole run including warmup — batteries drain physically from t=0.
	RemainingJ float64
}

// LifetimeDays converts the node lifetime to days.
func (r *NodeResult) LifetimeDays() float64 { return r.LifetimeSeconds / 86400 }

// DeathEvent is one entry of a field's death timeline.
type DeathEvent struct {
	// ID names the node that died; Time is the exact battery-zero
	// crossing in absolute simulation seconds — the scheduler kills the
	// node at the predicted crossing of its piecewise-constant draw, not
	// at the next quantized event.
	ID   int
	Time float64
	// Dropped counts the packets lost with the node (see
	// NodeResult.DroppedAtDeath).
	Dropped uint64
}

// Result is the outcome of a field simulation.
type Result struct {
	// Time is the measured duration in seconds.
	Time float64
	// Nodes holds per-node results in ascending ID order.
	Nodes []NodeResult
	// Delivered counts packets absorbed at the sink during measurement.
	Delivered uint64
	// TotalEnergyJ is the field-wide energy spent over the measured
	// period; it equals the sum of the per-node EnergyJ values.
	TotalEnergyJ float64
	// LifetimeSeconds is the network lifetime under the first-node-death
	// definition. When a node actually depleted its battery within the
	// horizon it is the measured FirstDeathSeconds; otherwise it is the
	// minimum extrapolated node lifetime, as before depletion existed.
	// Bottleneck is the ID of the first node to die (lowest ID on ties of
	// the extrapolated path).
	LifetimeSeconds float64
	Bottleneck      int
	// FirstDeathSeconds is the measured network lifetime: the exact
	// battery crossing time of the first death, +Inf when every node
	// survives the horizon (lifetime then remains an extrapolation).
	FirstDeathSeconds float64
	// Deaths is the chronological death timeline.
	Deaths []DeathEvent
	// DroppedInFlight counts packets lost inside dying nodes (queued,
	// in service, or in the outbox at the crossing time); DroppedNoRoute
	// counts packets dropped at live senders whose whole ancestor chain —
	// sink included — was dead, leaving no live route.
	DroppedInFlight uint64
	DroppedNoRoute  uint64
}

// LifetimeDays converts the network lifetime to days.
func (r *Result) LifetimeDays() float64 { return r.LifetimeSeconds / 86400 }

// nodeIDs caches the place and transition IDs a field node's net resolves
// to. BuildNodeNet is deterministic, so the IDs are identical across all
// per-rate compilations; they are still resolved per compiled net.
type nodeIDs struct {
	p6, buffer, outbox             petri.PlaceID
	standby, powerup, idle, active petri.PlaceID
	ar, sr                         petri.TransitionID
	// states indexes the four processor-state places by energy.State, the
	// order the live power-draw scan walks them in.
	states [energy.NumStates]petri.PlaceID
}

type compiledNode struct {
	comp *petri.Compiled
	ids  nodeIDs
}

// Sentinel parent indexes of a nodeState. A live interior node points at
// its current routing parent's index; reroutes keep the invariant that the
// pointed-at node is alive.
const (
	parentSink = -1 // the node is the sink: it absorbs its own packets
	parentNone = -2 // every ancestor up to and including the sink is dead
)

// nodeState is one node's live simulation state.
type nodeState struct {
	node   Node
	parent int // index into the state slice, or a sentinel above
	dist   float64
	sess   *petri.Session
	ids    nodeIDs

	txPackets, rxPackets uint64
	txJ, rxJ, aggJ       float64

	// Live battery accounting. The node's marking — and therefore its
	// continuous draw — is piecewise constant between the scheduler's
	// touches of the node (the global heap guarantees no internal event
	// fires between them), so drain integrates exactly: touch() accrues
	// drawW over [lastT, t] and refresh() re-derives drawW and the
	// predicted battery-zero crossing deathAt from the current marking.
	batt     energy.BatteryState
	alive    bool
	measured bool // the session crossed the warmup boundary (firing counters were re-based)
	lastT    float64
	drawW    float64 // continuous draw in watts: state power + listen
	deathAt  float64 // predicted crossing time, +Inf when none
	stateTok [energy.NumStates]int
	// resInt integrates measured-window state residency in the field
	// layer, so a node that dies early still reports exact fractions and
	// CPU energy without finishing its session at the horizon.
	resInt     [energy.NumStates]float64
	senseFired uint64 // AR firings already charged as sensing energy

	deathTime        float64
	deliveredBefore  uint64
	samplesAtDeath   uint64
	processedAtDeath uint64
	droppedAtDeath   uint64
}

// Simulate runs the field to its horizon and returns per-node and
// network-level energy, traffic and lifetime results.
func Simulate(cfg Config) (*Result, error) {
	return SimulateContext(context.Background(), cfg)
}

// SimulateContext is Simulate with cooperative cancellation: the per-node
// engines poll the context during event processing, so cancellation lands
// mid-run even in large fields.
func SimulateContext(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := open(ctx, cfg)
	if err != nil {
		return nil, err
	}
	defer f.close()
	if err := f.run(ctx); err != nil {
		return nil, err
	}
	return f.finish()
}

type fieldSim struct {
	cfg      Config
	nodes    []nodeState
	heap     eventHeap
	warmup   float64
	hz       float64
	sensePkJ float64 // sensing energy of one sample, charged per AR firing

	delivered       uint64
	deaths          []DeathEvent
	droppedInFlight uint64
	droppedNoRoute  uint64
}

// open compiles the distinct per-rate nets, opens one engine session per
// node (seeded from NodeSeed) and schedules the initial events.
func open(ctx context.Context, cfg Config) (*fieldSim, error) {
	f := &fieldSim{
		cfg:    cfg,
		warmup: cfg.Warmup,
		hz:     cfg.Warmup + cfg.Horizon,
	}
	// Ascending-ID node order makes every downstream iteration (and the
	// reported result order) independent of the caller's slice order.
	nodes := append([]Node(nil), cfg.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	byID := make(map[int]int, len(nodes))
	for i, n := range nodes {
		byID[n.ID] = i
	}

	// One compiled net per distinct sample rate; nodes sharing a rate
	// share the compilation and its engine pool.
	compiled := map[float64]*compiledNode{}
	f.nodes = make([]nodeState, len(nodes))
	for i, n := range nodes {
		cn, ok := compiled[n.SampleRate]
		if !ok {
			net := BuildNodeNet(cfg.CPU, n.SampleRate)
			comp, err := petri.Compile(net)
			if err != nil {
				return nil, fmt.Errorf("field: node %d: %w", n.ID, err)
			}
			cn = &compiledNode{comp: comp, ids: resolveIDs(net)}
			compiled[n.SampleRate] = cn
		}
		parent := -1
		var dist float64
		if n.Parent != n.ID {
			parent = byID[n.Parent]
			dist = Distance(n.Pos, nodes[parent].Pos)
		}
		sess, err := cn.comp.OpenSession(ctx, petri.SimOptions{
			Seed:     NodeSeed(cfg.Seed, n.ID),
			Warmup:   cfg.Warmup,
			Duration: cfg.Horizon,
		})
		if err != nil {
			f.close()
			return nil, fmt.Errorf("field: node %d: %w", n.ID, err)
		}
		f.nodes[i] = nodeState{node: n, parent: parent, dist: dist, sess: sess, ids: cn.ids}
	}
	f.sensePkJ = cfg.Radio.SenseJ(cfg.Radio.PacketBits)
	f.heap.init(len(f.nodes))
	for i := range f.nodes {
		n := &f.nodes[i]
		n.alive = true
		n.batt = energy.NewBatteryState(cfg.Battery)
		n.measured = cfg.Warmup == 0
		f.refresh(i) // derives the initial draw, death prediction and heap key
	}
	return f, nil
}

func resolveIDs(n *petri.Net) nodeIDs {
	place := func(name string) petri.PlaceID {
		id, ok := n.PlaceByName(name)
		if !ok {
			panic(fmt.Sprintf("field: node net lost place %q", name))
		}
		return id
	}
	trans := func(name string) petri.TransitionID {
		id, ok := n.TransitionByName(name)
		if !ok {
			panic(fmt.Sprintf("field: node net lost transition %q", name))
		}
		return id
	}
	ids := nodeIDs{
		p6:      place(core.PlaceP6),
		buffer:  place(core.PlaceCPUBuffer),
		outbox:  place(PlaceOutbox),
		standby: place(core.PlaceStandBy),
		powerup: place(core.PlacePowerUp),
		idle:    place(core.PlaceIdle),
		active:  place(core.PlaceActive),
		ar:      trans(core.TransAR),
		sr:      trans(core.TransSR),
	}
	ids.states[energy.Standby] = ids.standby
	ids.states[energy.PowerUp] = ids.powerup
	ids.states[energy.Idle] = ids.idle
	ids.states[energy.Active] = ids.active
	return ids
}

// close abandons every still-open session (error paths; finish closes
// sessions by finishing them).
func (f *fieldSim) close() {
	for i := range f.nodes {
		if s := f.nodes[i].sess; s != nil {
			s.Close()
		}
	}
}

// run is the global event loop: repeatedly advance the globally earliest
// node to its next event time — its next internal Petri-net event or its
// predicted battery-zero crossing, whichever comes first — and forward
// whatever packets that event (and any cascade it triggers upstream)
// produced. A popped crossing kills the node at the exact crossing time:
// the internal event that would have fired at or after it never does.
func (f *fieldSim) run(ctx context.Context) error {
	poll := 0
	for {
		i, te := f.heap.min()
		if i < 0 || te > f.hz {
			return nil
		}
		if poll++; poll&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		n := &f.nodes[i]
		if n.deathAt <= te {
			f.kill(i)
			continue
		}
		if err := n.sess.StepTo(te); err != nil {
			return err
		}
		f.touch(i, te)
		if err := f.deliver(i, te); err != nil {
			return err
		}
	}
}

// touch accrues node i's continuous battery drain — CPU state power plus
// listen draw, constant since its last touch — up to time t, and folds the
// measured-window slice of the interval into the residency integrals.
func (f *fieldSim) touch(i int, t float64) {
	n := &f.nodes[i]
	dt := t - n.lastT
	if dt <= 0 {
		return
	}
	n.batt.DrainContinuous(n.drawW, dt)
	m0, m1 := n.lastT, t
	if m0 < f.warmup {
		m0 = f.warmup
	}
	if m1 > f.hz {
		m1 = f.hz
	}
	if m1 > m0 {
		for s, tok := range n.stateTok {
			if tok != 0 {
				n.resInt[s] += float64(tok) * (m1 - m0)
			}
		}
	}
	n.lastT = t
}

// refresh re-derives node i's live quantities after its marking or battery
// changed at n.lastT: charges sensing energy for new samples, recomputes
// the continuous draw from the current state marking, predicts the
// battery-zero crossing, and re-keys the node in the event heap with
// min(next internal event, predicted crossing).
func (f *fieldSim) refresh(i int) {
	n := &f.nodes[i]
	if !n.measured && n.lastT >= f.warmup {
		// The engine re-based its firing counters to zero at the warmup
		// boundary; re-base the sensing-charge baseline with it.
		n.measured = true
		n.senseFired = 0
	}
	if ar := n.sess.Firings(n.ids.ar); ar > n.senseFired {
		n.batt.DrainJ(float64(ar-n.senseFired) * f.sensePkJ)
		n.senseFired = ar
	}
	mw := f.cfg.Radio.ListenMW
	for s, p := range n.ids.states {
		tok := n.sess.Tokens(p)
		n.stateTok[s] = tok
		mw += float64(tok) * f.cfg.CPU.Power.MW[s]
	}
	n.drawW = mw / 1000
	n.deathAt = n.lastT + n.batt.TimeToEmpty(n.drawW)
	next := n.sess.NextEventTime()
	if n.deathAt < next {
		next = n.deathAt
	}
	f.heap.update(i, next)
}

// kill processes node i's death at its predicted crossing time: accrue its
// last alive interval, freeze its measured counters, count the packets
// that die with it, close its session, remove it from the scheduler, and
// reroute its orphaned children to the nearest live ancestor — its own
// current parent, live by induction (every earlier death rerouted this
// node's subtree the same way). Children of a dead sink are left with no
// route; their future packets are dropped at the sender.
func (f *fieldSim) kill(i int) {
	n := &f.nodes[i]
	td := n.deathAt
	f.touch(i, td)
	n.alive = false
	n.deathTime = td
	n.deliveredBefore = f.delivered
	if n.measured {
		n.samplesAtDeath = n.sess.Firings(n.ids.ar)
		n.processedAtDeath = n.sess.Firings(n.ids.sr)
	}
	dropped := n.sess.Tokens(n.ids.outbox) + n.sess.Tokens(n.ids.buffer) + n.sess.Tokens(n.ids.active)
	n.droppedAtDeath = uint64(dropped)
	f.droppedInFlight += uint64(dropped)
	n.sess.Close()
	n.sess = nil
	f.heap.remove(i)

	newParent := n.parent
	if newParent == parentSink {
		newParent = parentNone
	}
	for j := range f.nodes {
		c := &f.nodes[j]
		if !c.alive || c.parent != i {
			continue
		}
		c.parent = newParent
		if newParent >= 0 {
			c.dist = Distance(c.node.Pos, f.nodes[newParent].node.Pos)
		} else {
			c.dist = 0
		}
	}
	f.deaths = append(f.deaths, DeathEvent{ID: n.node.ID, Time: td, Dropped: uint64(dropped)})
}

// deliver drains node i's outbox and pushes the packets up the routing
// chain: each hop charges transmit energy at the sender (distance-
// dependent), receive and aggregation energy at the receiver, and injects
// the packets as workload into the receiver's CPU net. The receiver is
// first stepped to the current time, so a relayed packet can trigger
// further completions that continue the cascade toward the sink within the
// same instant. Radio costs drain the batteries of both endpoints in all
// simulated time; the per-node energy counters cover the measured window
// only. Each node's live quantities are refreshed once its role in the
// cascade ends, so battery-zero crossings caused by this instant's radio
// events are scheduled before the next event pops.
func (f *fieldSim) deliver(i int, te float64) error {
	measured := te >= f.warmup
	radio := &f.cfg.Radio
	for {
		n := &f.nodes[i]
		k := n.sess.Tokens(n.ids.outbox)
		if k == 0 {
			f.refresh(i)
			return nil
		}
		if err := n.sess.Inject(petri.Injection{Place: n.ids.outbox, Tokens: -k}); err != nil {
			return err
		}
		if n.parent == parentSink {
			// The sink absorbs its completed packets (uplink to the base
			// station is outside the field's energy budget).
			if measured {
				f.delivered += uint64(k)
			}
			f.refresh(i)
			return nil
		}
		if n.parent == parentNone {
			// The whole ancestor chain, sink included, is dead: there is
			// no live route, so the sender drops the packets without
			// transmitting (no energy spent).
			f.droppedNoRoute += uint64(k)
			f.refresh(i)
			return nil
		}
		p := &f.nodes[n.parent]
		bits := float64(k) * radio.PacketBits
		txJ := radio.TxJ(bits, n.dist)
		n.batt.DrainJ(txJ)
		f.touch(n.parent, te)
		p.batt.DrainJ(radio.RxJ(bits) + radio.AggregateJ(bits))
		if err := p.sess.StepTo(te); err != nil {
			return err
		}
		if err := p.sess.Inject(
			petri.Injection{Place: p.ids.p6, Tokens: k},
			petri.Injection{Place: p.ids.buffer, Tokens: k},
		); err != nil {
			return err
		}
		if measured {
			n.txPackets += uint64(k)
			n.txJ += txJ
			p.rxPackets += uint64(k)
			p.rxJ += radio.RxJ(bits)
			p.aggJ += radio.AggregateJ(bits)
		}
		f.refresh(i)
		i = n.parent
	}
}

// finish closes every surviving session at the horizon and assembles the
// result: CPU energy from the time-averaged state fractions and the power
// table, radio energy from the per-packet accounting, lifetime measured at
// the first battery-zero crossing when one happened and extrapolated from
// average draw otherwise. Dead nodes are assembled from the field layer's
// own incremental accounting — their sessions were closed at the crossing
// time, so nothing after death is counted.
func (f *fieldSim) finish() (*Result, error) {
	cfg := f.cfg
	out := &Result{
		Time:              cfg.Horizon,
		Nodes:             make([]NodeResult, len(f.nodes)),
		Delivered:         f.delivered,
		LifetimeSeconds:   math.Inf(1),
		Bottleneck:        -1,
		FirstDeathSeconds: math.Inf(1),
		Deaths:            f.deaths,
		DroppedInFlight:   f.droppedInFlight,
		DroppedNoRoute:    f.droppedNoRoute,
	}
	for i := range f.nodes {
		n := &f.nodes[i]
		nr := NodeResult{
			ID:              n.node.ID,
			Parent:          f.parentID(n),
			Distance:        n.dist,
			SampleRate:      n.node.SampleRate,
			TxPackets:       n.txPackets,
			RxPackets:       n.rxPackets,
			TxEnergyJ:       n.txJ,
			RxEnergyJ:       n.rxJ,
			AggEnergyJ:      n.aggJ,
			DeathTime:       math.Inf(1),
			DeliveredBefore: f.delivered,
		}
		if n.alive {
			// Settle the tail interval so RemainingJ reflects continuous
			// draw up to the horizon (no crossing can hide in the tail:
			// it would have been scheduled and killed the node).
			f.touch(i, f.hz)
			res, err := n.sess.Finish()
			n.sess = nil
			if err != nil {
				return nil, fmt.Errorf("field: node %d: %w", n.node.ID, err)
			}
			nr.Samples = res.Firings[n.ids.ar]
			nr.Processed = res.Firings[n.ids.sr]
			nr.CPUFractions[energy.Standby] = res.PlaceAvg[n.ids.standby]
			nr.CPUFractions[energy.PowerUp] = res.PlaceAvg[n.ids.powerup]
			nr.CPUFractions[energy.Idle] = res.PlaceAvg[n.ids.idle]
			nr.CPUFractions[energy.Active] = res.PlaceAvg[n.ids.active]
			nr.CPUEnergyJ = cfg.CPU.Power.EnergyJoules(nr.CPUFractions, cfg.Horizon)
			nr.SenseEnergyJ = cfg.Radio.SenseJ(float64(nr.Samples) * cfg.Radio.PacketBits)
			nr.ListenEnergyJ = cfg.Radio.ListenMW * cfg.Horizon / 1000
			nr.RemainingJ = n.batt.RemainingJ()
		} else {
			aliveMeasured := 0.0
			if n.deathTime > f.warmup {
				aliveMeasured = math.Min(n.deathTime, f.hz) - f.warmup
			}
			nr.Samples = n.samplesAtDeath
			nr.Processed = n.processedAtDeath
			var cpuMWs float64
			for s, integral := range n.resInt {
				if aliveMeasured > 0 {
					nr.CPUFractions[s] = integral / aliveMeasured
				}
				cpuMWs += integral * cfg.CPU.Power.MW[s]
			}
			nr.CPUEnergyJ = cpuMWs / 1000
			nr.SenseEnergyJ = cfg.Radio.SenseJ(float64(nr.Samples) * cfg.Radio.PacketBits)
			// Listen draw accrues only while the node is alive — a dead
			// relay no longer listens.
			nr.ListenEnergyJ = cfg.Radio.ListenMW * aliveMeasured / 1000
			nr.Died = true
			nr.DeathTime = n.deathTime
			nr.DeliveredBefore = n.deliveredBefore
			nr.DroppedAtDeath = n.droppedAtDeath
		}
		nr.RadioEnergyJ = nr.TxEnergyJ + nr.RxEnergyJ + nr.AggEnergyJ + nr.SenseEnergyJ + nr.ListenEnergyJ
		nr.EnergyJ = nr.CPUEnergyJ + nr.RadioEnergyJ
		if n.alive {
			nr.AvgPowerMW = nr.EnergyJ / cfg.Horizon * 1000
			nr.LifetimeSeconds = cfg.Battery.LifetimeSeconds(nr.AvgPowerMW)
		} else {
			if alive := nr.DeathTime - f.warmup; alive > 0 {
				nr.AvgPowerMW = nr.EnergyJ / math.Min(alive, cfg.Horizon) * 1000
			}
			nr.LifetimeSeconds = nr.DeathTime
		}
		if math.IsNaN(nr.LifetimeSeconds) || nr.EnergyJ < 0 {
			return nil, fmt.Errorf("field: node %d: invalid energy accounting (%v J, lifetime %v s)",
				nr.ID, nr.EnergyJ, nr.LifetimeSeconds)
		}
		out.TotalEnergyJ += nr.EnergyJ
		if nr.LifetimeSeconds < out.LifetimeSeconds {
			out.LifetimeSeconds = nr.LifetimeSeconds
			out.Bottleneck = nr.ID
		}
		out.Nodes[i] = nr
	}
	if len(f.deaths) > 0 {
		// Measured beats extrapolated: the network lifetime is the exact
		// first crossing and the bottleneck is the node that died first.
		out.FirstDeathSeconds = f.deaths[0].Time
		out.LifetimeSeconds = f.deaths[0].Time
		out.Bottleneck = f.deaths[0].ID
	}
	if out.Bottleneck < 0 {
		// All lifetimes infinite (zero draw): call the sink the
		// bottleneck — resolved by its Parent == ID marker, not by slice
		// position (node 0 need not be the sink).
		for i := range out.Nodes {
			if out.Nodes[i].Parent == out.Nodes[i].ID {
				out.Bottleneck = out.Nodes[i].ID
				break
			}
		}
	}
	return out, nil
}

// parentID maps a nodeState's live parent index back to a node ID for
// reporting: the current routing parent (reroutes included), the node's own
// ID for the sink, and the original configured parent for a node left with
// no live route.
func (f *fieldSim) parentID(n *nodeState) int {
	switch {
	case n.parent >= 0:
		return f.nodes[n.parent].node.ID
	case n.parent == parentSink:
		return n.node.ID
	default:
		return n.node.Parent
	}
}

// ---------------------------------------------------------------------------
// Per-node event heap
//
// An indexed binary min-heap over (next event time, node index): the key
// array is indexed by node, update re-sifts in place. The index tie-break
// keeps the pop order deterministic under equal event times, which —
// together with per-node seeding — makes field trajectories independent of
// map iteration and node ordering.

type eventHeap struct {
	at   []float64
	heap []int
	pos  []int
}

func (h *eventHeap) init(n int) {
	h.at = make([]float64, n)
	h.heap = make([]int, 0, n)
	h.pos = make([]int, n)
	for i := range h.pos {
		h.at[i] = math.Inf(1)
		h.pos[i] = -1
	}
}

func (h *eventHeap) less(a, b int) bool {
	return h.at[a] < h.at[b] || (h.at[a] == h.at[b] && a < b)
}

// min returns the node with the earliest event, or (-1, +Inf) when no node
// has one scheduled.
func (h *eventHeap) min() (int, float64) {
	if len(h.heap) == 0 {
		return -1, math.Inf(1)
	}
	i := h.heap[0]
	return i, h.at[i]
}

// update sets node i's next event time (or +Inf to deschedule it).
func (h *eventHeap) update(i int, at float64) {
	if math.IsInf(at, 1) {
		h.remove(i)
		return
	}
	h.at[i] = at
	if h.pos[i] < 0 {
		h.pos[i] = len(h.heap)
		h.heap = append(h.heap, i)
		h.siftUp(h.pos[i])
		return
	}
	if !h.siftUp(h.pos[i]) {
		h.siftDown(h.pos[i])
	}
}

func (h *eventHeap) remove(i int) {
	at := h.pos[i]
	if at < 0 {
		return
	}
	h.at[i] = math.Inf(1)
	h.pos[i] = -1
	last := len(h.heap) - 1
	if at != last {
		moved := h.heap[last]
		h.heap[at] = moved
		h.pos[moved] = at
		h.heap = h.heap[:last]
		if !h.siftUp(at) {
			h.siftDown(at)
		}
	} else {
		h.heap = h.heap[:last]
	}
}

func (h *eventHeap) siftUp(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.heap[i], h.heap[parent]) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		h.pos[h.heap[i]] = i
		h.pos[h.heap[parent]] = parent
		i = parent
		moved = true
	}
	return moved
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.heap)
	for {
		smallest := i
		for c := 2*i + 1; c <= 2*i+2 && c < n; c++ {
			if h.less(h.heap[c], h.heap[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			return
		}
		h.heap[i], h.heap[smallest] = h.heap[smallest], h.heap[i]
		h.pos[h.heap[i]] = i
		h.pos[h.heap[smallest]] = smallest
		i = smallest
	}
}
