package linalg

// Cancellation tests for the context-aware solver entry points: a cancelled
// context must abort the iteration mid-solve with ctx.Err(), and the
// background-context wrappers must keep solving as before.

import (
	"context"
	"errors"
	"testing"
)

// ringGenerator builds the CSR generator of an n-state unidirectional ring
// CTMC — irreducible, so both stationary solvers accept it.
func ringGenerator(n int) *CSR {
	entries := make([]Coord, 0, 2*n)
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		entries = append(entries,
			Coord{Row: i, Col: next, Val: 1},
			Coord{Row: i, Col: i, Val: -1},
		)
	}
	return NewCSR(n, n, entries)
}

func TestStationaryCTMCContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StationaryCTMCContext(ctx, ringGenerator(50), GaussSeidelOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled power iteration returned %v, want context.Canceled", err)
	}
}

func TestStationaryCTMCDirectContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := StationaryCTMCDirectContext(ctx, ringGenerator(50)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled direct solve returned %v, want context.Canceled", err)
	}
}

func TestFactorizeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := NewDense(8, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, i, 2)
	}
	if _, err := FactorizeContext(ctx, a); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled factorization returned %v, want context.Canceled", err)
	}
}

// TestContextWrappersStillSolve pins that the background-context wrappers
// return the same solutions as before the context plumbing.
func TestContextWrappersStillSolve(t *testing.T) {
	q := ringGenerator(10)
	direct, err := StationaryCTMCDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	power, err := StationaryCTMC(q, GaussSeidelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if d := direct[i] - 0.1; d > 1e-9 || d < -1e-9 {
			t.Fatalf("direct pi[%d] = %v, want uniform 0.1", i, direct[i])
		}
		if d := power[i] - 0.1; d > 1e-6 || d < -1e-6 {
			t.Fatalf("power pi[%d] = %v, want uniform 0.1", i, power[i])
		}
	}
}
