// Package linalg provides the small amount of dense and sparse linear
// algebra needed to solve continuous-time Markov chains numerically:
// LU factorization with partial pivoting for direct steady-state solves,
// Gauss–Seidel and power iteration for large sparse generators, and basic
// vector utilities.
package linalg

import (
	"context"
	"fmt"
	"math"
)

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewDense allocates a zero matrix of the given shape.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseFromRows builds a matrix from row slices, which must be non-empty
// and of equal length. The data is copied.
func NewDenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty row data")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new transposed matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MulVec returns m * x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch: %d cols vs %d vec", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// VecMul returns x^T * m (left multiplication), the natural operation for
// probability row vectors.
func (m *Dense) VecMul(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("linalg: VecMul dimension mismatch: %d rows vs %d vec", m.Rows, len(x)))
	}
	y := make([]float64, m.Cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Dense
	pivot []int
	sign  int
}

// Factorize computes the LU factorization of a square matrix. It returns an
// error if the matrix is singular to working precision.
func Factorize(a *Dense) (*LU, error) {
	return FactorizeContext(context.Background(), a)
}

// FactorizeContext is Factorize with cooperative cancellation: the O(n³)
// elimination polls the context every few columns and aborts mid-factorize
// with ctx.Err() when it is cancelled.
func FactorizeContext(ctx context.Context, a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cannot factorize %dx%d non-square matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		if k%solveCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(lu.At(i, k)); ab > maxAbs {
				maxAbs, p = ab, i
			}
		}
		if maxAbs < 1e-300 {
			return nil, fmt.Errorf("linalg: matrix is singular at column %d", k)
		}
		pivot[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				lu.Data[k*n+j], lu.Data[p*n+j] = lu.Data[p*n+j], lu.Data[k*n+j]
			}
			sign = -sign
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) * inv
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve returns the solution x of A x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic(fmt.Sprintf("linalg: Solve dimension mismatch: %d vs %d", len(b), n))
	}
	x := append([]float64(nil), b...)
	// Apply the row interchanges recorded during factorization; the stored
	// factors use fully swapped rows (LAPACK convention), so all swaps must
	// precede the substitution passes.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
	}
	// Forward substitution with the unit lower triangle.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.lu.At(i, j) * x[j]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve is a convenience wrapper: factorize A and solve A x = b.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// ---------------------------------------------------------------------------
// Vector helpers

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm1 returns the L1 norm.
func Norm1(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-abs norm.
func NormInf(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		if ab := math.Abs(v); ab > s {
			s = ab
		}
	}
	return s
}

// Normalize1 scales a in place so its entries sum to 1 and returns a.
// It panics if the sum is zero or not finite.
func Normalize1(a []float64) []float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("linalg: cannot normalize vector with sum %v", s))
	}
	for i := range a {
		a[i] /= s
	}
	return a
}
