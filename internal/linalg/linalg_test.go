package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 2)
	if m.At(0, 0) != 1 || m.At(1, 2) != 7 || m.At(0, 1) != 0 {
		t.Fatal("dense get/set/add broken")
	}
}

func TestNewDenseFromRows(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("from-rows layout wrong")
	}
}

func TestNewDenseFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	NewDenseFromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatal("transpose wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", y)
	}
}

func TestVecMul(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {3, 4}})
	y := m.VecMul([]float64{1, 1})
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("VecMul = %v, want [4 6]", y)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := NewDenseFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system solved without error")
	}
}

func TestSolveNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := Factorize(a); err == nil {
		t.Fatal("non-square factorized without error")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseFromRows([][]float64{{4, 3}, {6, 3}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-(-6)) > 1e-10 {
		t.Fatalf("det = %v, want -6", f.Det())
	}
}

// Property: for random well-conditioned systems, Solve(A, A*x) == x.
func TestSolveRoundTripProperty(t *testing.T) {
	r := xrand.New(42)
	f := func(seed uint16) bool {
		n := 1 + int(seed%8)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			a.Add(i, i, float64(n)+2) // diagonally dominant -> well-conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot wrong")
	}
	if Norm1([]float64{-1, 2}) != 3 {
		t.Fatal("Norm1 wrong")
	}
	if NormInf([]float64{-5, 2}) != 5 {
		t.Fatal("NormInf wrong")
	}
	v := Normalize1([]float64{1, 3})
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Fatal("Normalize1 wrong")
	}
}

func TestNormalizeZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize1 of zero vector did not panic")
		}
	}()
	Normalize1([]float64{0, 0})
}

func TestCSRBasics(t *testing.T) {
	m := NewCSR(3, 3, []Coord{
		{0, 1, 2}, {1, 0, 3}, {2, 2, 4}, {0, 1, 1}, // duplicate merges to 3
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	d := m.ToDense()
	if d.At(0, 1) != 3 || d.At(1, 0) != 3 || d.At(2, 2) != 4 {
		t.Fatal("CSR entries wrong after duplicate merge")
	}
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(10)
		var entries []Coord
		for k := 0; k < n*2; k++ {
			entries = append(entries, Coord{r.Intn(n), r.Intn(n), r.NormFloat64()})
		}
		m := NewCSR(n, n, entries)
		d := m.ToDense()
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		y1, y2 := m.MulVec(x), d.MulVec(x)
		y3, y4 := m.VecMul(x), d.VecMul(x)
		for i := 0; i < n; i++ {
			if math.Abs(y1[i]-y2[i]) > 1e-12 || math.Abs(y3[i]-y4[i]) > 1e-12 {
				t.Fatal("CSR and dense products disagree")
			}
		}
	}
}

func TestCSRRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range entry accepted")
		}
	}()
	NewCSR(2, 2, []Coord{{2, 0, 1}})
}

// twoStateGenerator returns the generator of a two-state CTMC with rates
// a (0->1) and b (1->0); its stationary distribution is (b, a)/(a+b).
func twoStateGenerator(a, b float64) *CSR {
	return NewCSR(2, 2, []Coord{
		{0, 0, -a}, {0, 1, a},
		{1, 0, b}, {1, 1, -b},
	})
}

func TestStationaryTwoState(t *testing.T) {
	q := twoStateGenerator(2, 3)
	for name, solve := range map[string]func(*CSR) ([]float64, error){
		"power":  func(q *CSR) ([]float64, error) { return StationaryCTMC(q, GaussSeidelOptions{}) },
		"direct": StationaryCTMCDirect,
	} {
		pi, err := solve(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(pi[0]-0.6) > 1e-8 || math.Abs(pi[1]-0.4) > 1e-8 {
			t.Fatalf("%s: pi = %v, want [0.6 0.4]", name, pi)
		}
	}
}

// TestStationaryMM1K checks both solvers against the closed-form M/M/1/K
// queue distribution pi_n ∝ rho^n.
func TestStationaryMM1K(t *testing.T) {
	const (
		lambda = 2.0
		mu     = 3.0
		K      = 10
	)
	var entries []Coord
	for n := 0; n <= K; n++ {
		if n < K {
			entries = append(entries, Coord{n, n + 1, lambda}, Coord{n, n, -lambda})
		}
		if n > 0 {
			entries = append(entries, Coord{n, n - 1, mu}, Coord{n, n, -mu})
		}
	}
	q := NewCSR(K+1, K+1, entries)
	rho := lambda / mu
	norm := 0.0
	for n := 0; n <= K; n++ {
		norm += math.Pow(rho, float64(n))
	}
	piDirect, err := StationaryCTMCDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	piPower, err := StationaryCTMC(q, GaussSeidelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n <= K; n++ {
		want := math.Pow(rho, float64(n)) / norm
		if math.Abs(piDirect[n]-want) > 1e-9 {
			t.Fatalf("direct pi[%d] = %v, want %v", n, piDirect[n], want)
		}
		if math.Abs(piPower[n]-want) > 1e-7 {
			t.Fatalf("power pi[%d] = %v, want %v", n, piPower[n], want)
		}
	}
}

func TestStationaryBalance(t *testing.T) {
	// For any solution, pi*Q should be ~0.
	q := twoStateGenerator(0.7, 1.9)
	pi, err := StationaryCTMCDirect(q)
	if err != nil {
		t.Fatal(err)
	}
	res := q.VecMul(pi)
	if NormInf(res) > 1e-10 {
		t.Fatalf("balance residual = %v", res)
	}
}

func BenchmarkLUSolve50(b *testing.B) {
	r := xrand.New(1)
	n := 50
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		a.Add(i, i, 100)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRMulVec(b *testing.B) {
	r := xrand.New(2)
	n := 1000
	var entries []Coord
	for i := 0; i < n; i++ {
		for k := 0; k < 5; k++ {
			entries = append(entries, Coord{i, r.Intn(n), r.NormFloat64()})
		}
	}
	m := NewCSR(n, n, entries)
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MulVec(x)
	}
}
