package linalg

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Coord is one non-zero entry of a sparse matrix in coordinate form.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed sparse row matrix, the storage used for large CTMC
// generators built from Petri-net reachability graphs.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int
	ColIdx       []int
	Val          []float64
}

// NewCSR builds a CSR matrix from coordinate entries. Duplicate (row, col)
// entries are summed.
func NewCSR(rows, cols int, entries []Coord) *CSR {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid CSR shape %dx%d", rows, cols))
	}
	es := append([]Coord(nil), entries...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Row != es[j].Row {
			return es[i].Row < es[j].Row
		}
		return es[i].Col < es[j].Col
	})
	// Merge duplicates.
	merged := es[:0]
	for _, e := range es {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("linalg: CSR entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols))
		}
		if n := len(merged); n > 0 && merged[n-1].Row == e.Row && merged[n-1].Col == e.Col {
			merged[n-1].Val += e.Val
		} else {
			merged = append(merged, e)
		}
	}
	m := &CSR{
		RowsN:  rows,
		ColsN:  cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int, len(merged)),
		Val:    make([]float64, len(merged)),
	}
	for i, e := range merged {
		m.RowPtr[e.Row+1]++
		m.ColIdx[i] = e.Col
		m.Val[i] = e.Val
	}
	for i := 0; i < rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec returns m * x.
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.ColsN {
		panic(fmt.Sprintf("linalg: CSR MulVec dimension mismatch: %d vs %d", m.ColsN, len(x)))
	}
	y := make([]float64, m.RowsN)
	for i := 0; i < m.RowsN; i++ {
		s := 0.0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	return y
}

// VecMul returns x^T * m.
func (m *CSR) VecMul(x []float64) []float64 {
	if len(x) != m.RowsN {
		panic(fmt.Sprintf("linalg: CSR VecMul dimension mismatch: %d vs %d", m.RowsN, len(x)))
	}
	y := make([]float64, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColIdx[k]] += xi * m.Val[k]
		}
	}
	return y
}

// ToDense expands the matrix; intended for tests and small systems.
func (m *CSR) ToDense() *Dense {
	d := NewDense(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Add(i, m.ColIdx[k], m.Val[k])
		}
	}
	return d
}

// GaussSeidelOptions configures the iterative stationary solver.
type GaussSeidelOptions struct {
	MaxIter int     // maximum sweeps (default 10000)
	Tol     float64 // L1 change tolerance (default 1e-12)
}

// solveCancelStride is how many iterations of a linear-algebra loop pass
// between context polls: each iteration already costs O(nnz) or O(n²), so
// the poll is invisible, but a cancelled solve still aborts within a few
// sweeps instead of running to convergence.
const solveCancelStride = 16

// StationaryCTMC solves pi Q = 0, sum(pi) = 1 for an irreducible CTMC
// generator Q given in CSR form (rows = source states, Q[i][j] = rate i->j,
// diagonal = -sum of row). It uses the standard transformation to a DTMC via
// uniformization followed by power iteration, which is robust for the
// moderately sized generators produced by reachability analysis.
func StationaryCTMC(q *CSR, opt GaussSeidelOptions) ([]float64, error) {
	return StationaryCTMCContext(context.Background(), q, opt)
}

// StationaryCTMCContext is StationaryCTMC with cooperative cancellation:
// the power loop polls the context every few sweeps and aborts mid-solve
// with ctx.Err() when it is cancelled, so a large chain does not hold its
// caller hostage until convergence.
func StationaryCTMCContext(ctx context.Context, q *CSR, opt GaussSeidelOptions) ([]float64, error) {
	if q.RowsN != q.ColsN {
		return nil, fmt.Errorf("linalg: generator must be square, got %dx%d", q.RowsN, q.ColsN)
	}
	n := q.RowsN
	if opt.MaxIter == 0 {
		opt.MaxIter = 20000
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-13
	}
	// Uniformization rate: a bit above the largest exit rate.
	maxExit := 0.0
	for i := 0; i < n; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			if q.ColIdx[k] == i {
				if r := -q.Val[k]; r > maxExit {
					maxExit = r
				}
			}
		}
	}
	if maxExit == 0 {
		// No transitions at all: any distribution is stationary; return uniform.
		pi := make([]float64, n)
		for i := range pi {
			pi[i] = 1 / float64(n)
		}
		return pi, nil
	}
	lambda := maxExit * 1.02
	// P = I + Q/lambda. Power-iterate pi <- pi P.
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < opt.MaxIter; iter++ {
		if iter%solveCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		next := q.VecMul(pi)
		for i := range next {
			next[i] = pi[i] + next[i]/lambda
		}
		// Normalize to fight drift.
		sum := 0.0
		for _, v := range next {
			sum += v
		}
		if sum <= 0 || math.IsNaN(sum) {
			return nil, fmt.Errorf("linalg: power iteration diverged at iteration %d", iter)
		}
		diff := 0.0
		for i := range next {
			next[i] /= sum
			diff += math.Abs(next[i] - pi[i])
		}
		pi = next
		if diff < opt.Tol {
			return pi, nil
		}
	}
	return pi, nil
}

// StationaryCTMCDirect solves pi Q = 0 with a dense LU factorization by
// replacing one balance equation with the normalization constraint. Suitable
// for generators up to a few thousand states.
func StationaryCTMCDirect(q *CSR) ([]float64, error) {
	return StationaryCTMCDirectContext(context.Background(), q)
}

// StationaryCTMCDirectContext is StationaryCTMCDirect with cooperative
// cancellation threaded into the O(n³) factorization, which dominates the
// solve for the chains this path is chosen for.
func StationaryCTMCDirectContext(ctx context.Context, q *CSR) ([]float64, error) {
	if q.RowsN != q.ColsN {
		return nil, fmt.Errorf("linalg: generator must be square, got %dx%d", q.RowsN, q.ColsN)
	}
	n := q.RowsN
	// Build A = Q^T with the last row replaced by ones; b = e_n.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			a.Add(q.ColIdx[k], i, q.Val[k]) // transpose
		}
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	f, err := FactorizeContext(ctx, a)
	if err != nil {
		return nil, fmt.Errorf("linalg: direct stationary solve: %w", err)
	}
	pi := f.Solve(b)
	// Clamp tiny negatives from roundoff and renormalize.
	for i, v := range pi {
		if v < 0 && v > -1e-9 {
			pi[i] = 0
		} else if v < 0 {
			return nil, fmt.Errorf("linalg: stationary solution has negative probability %v at state %d", v, i)
		}
	}
	return Normalize1(pi), nil
}
