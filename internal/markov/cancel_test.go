package markov

// Cancellation tests for the context-aware CTMC entry points (closing the
// PR 3 ROADMAP follow-up): steady-state, uniformization and the Erlang
// phase expansion must abort mid-iteration, not just up front.

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSteadyStateContextCancelled(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "b", 1)
	c.AddRate("b", "a", 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SteadyStateContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled steady state returned %v, want context.Canceled", err)
	}
}

func TestTransientContextCancelled(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "b", 1000)
	c.AddRate("b", "a", 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// lambda*t is large, so an uncancelled run would take many thousands of
	// uniformization steps.
	if _, err := c.TransientContext(ctx, []float64{1, 0}, 1000, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled uniformization returned %v, want context.Canceled", err)
	}
}

// TestErlangCPUSolveContextCancelsMidSolve: at large K the phase-expanded
// chain has thousands of states; cancellation shortly after the solve
// starts must abort it long before convergence.
func TestErlangCPUSolveContextCancelsMidSolve(t *testing.T) {
	e := ErlangCPU{Lambda: 0.9, Mu: 1.0, T: 1, D: 1, K: 64}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.SolveContext(ctx)
	if err == nil {
		// The solve may legitimately win the race on a fast machine; rerun
		// with a pre-cancelled context to pin the error path.
		ctx2, cancel2 := context.WithCancel(context.Background())
		cancel2()
		_, err = e.SolveContext(ctx2)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Erlang solve returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v, want well under the full solve time", elapsed)
	}
}

// TestSolveContextMatchesSolve pins that threading the context did not
// change the numerics.
func TestSolveContextMatchesSolve(t *testing.T) {
	e := ErlangCPU{Lambda: 0.5, Mu: 1.0, T: 0.5, D: 0.2, K: 4}
	a, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.SolveContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanJobs != b.MeanJobs || a.Fractions != b.Fractions {
		t.Fatalf("Solve and SolveContext disagree: %+v vs %+v", a, b)
	}
}
