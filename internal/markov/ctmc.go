// Package markov provides the Markov-chain side of the paper's comparison:
// a general continuous-time Markov chain (CTMC) with steady-state and
// transient (uniformization) solvers, birth–death chains, the paper's
// closed-form supplementary-variable CPU model (equations 11–24), and an
// Erlang phase-type expansion of the CPU model that makes the deterministic
// delays Markovian (the paper's "future work" direction).
package markov

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// CTMC is a continuous-time Markov chain under construction: named states
// plus transition rates. Build it incrementally with State and AddRate, then
// solve.
type CTMC struct {
	names   []string
	index   map[string]int
	entries []linalg.Coord
}

// NewCTMC returns an empty chain.
func NewCTMC() *CTMC {
	return &CTMC{index: map[string]int{}}
}

// State returns the index of the named state, creating it if needed.
func (c *CTMC) State(name string) int {
	if i, ok := c.index[name]; ok {
		return i
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.index[name] = i
	return i
}

// Name returns the name of state i.
func (c *CTMC) Name(i int) string { return c.names[i] }

// Lookup returns the index of a state that must already exist.
func (c *CTMC) Lookup(name string) (int, bool) {
	i, ok := c.index[name]
	return i, ok
}

// Len returns the number of states.
func (c *CTMC) Len() int { return len(c.names) }

// AddRate adds a transition rate from one named state to another. Rates
// accumulate if called repeatedly for the same pair.
func (c *CTMC) AddRate(from, to string, rate float64) {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("markov: invalid rate %v from %q to %q", rate, from, to))
	}
	if rate == 0 {
		return
	}
	f, t := c.State(from), c.State(to)
	if f == t {
		return // self-loops do not affect a CTMC
	}
	c.entries = append(c.entries, linalg.Coord{Row: f, Col: t, Val: rate})
}

// Generator assembles the CSR generator matrix with diagonal completion.
func (c *CTMC) Generator() *linalg.CSR {
	n := len(c.names)
	if n == 0 {
		panic("markov: empty chain")
	}
	exit := make([]float64, n)
	entries := make([]linalg.Coord, 0, len(c.entries)+n)
	for _, e := range c.entries {
		entries = append(entries, e)
		exit[e.Row] += e.Val
	}
	for i := 0; i < n; i++ {
		entries = append(entries, linalg.Coord{Row: i, Col: i, Val: -exit[i]})
	}
	return linalg.NewCSR(n, n, entries)
}

// SteadyState solves for the stationary distribution, using a direct LU
// solve for small chains and uniformized power iteration for large ones.
func (c *CTMC) SteadyState() ([]float64, error) {
	return c.SteadyStateContext(context.Background())
}

// SteadyStateContext is SteadyState with cooperative cancellation threaded
// into the linear algebra: a cancelled context aborts the LU elimination or
// the power loop mid-iteration with ctx.Err(), not just up front.
func (c *CTMC) SteadyStateContext(ctx context.Context) ([]float64, error) {
	q := c.Generator()
	if c.Len() <= 2000 {
		return linalg.StationaryCTMCDirectContext(ctx, q)
	}
	return linalg.StationaryCTMCContext(ctx, q, linalg.GaussSeidelOptions{})
}

// Transient computes the state distribution at time t from the initial
// distribution pi0 using uniformization (Jensen's method) with truncation
// error below eps (default 1e-12).
func (c *CTMC) Transient(pi0 []float64, t float64, eps float64) ([]float64, error) {
	return c.TransientContext(context.Background(), pi0, t, eps)
}

// TransientContext is Transient with cooperative cancellation: the
// uniformization loop polls the context every few matrix-vector products
// and aborts mid-solve with ctx.Err() when it is cancelled — for stiff
// chains (large lambda*t) the loop runs tens of thousands of products.
func (c *CTMC) TransientContext(ctx context.Context, pi0 []float64, t float64, eps float64) ([]float64, error) {
	n := c.Len()
	if len(pi0) != n {
		return nil, fmt.Errorf("markov: initial distribution has %d entries, want %d", len(pi0), n)
	}
	if t < 0 {
		return nil, fmt.Errorf("markov: negative time %v", t)
	}
	if eps <= 0 {
		eps = 1e-12
	}
	q := c.Generator()
	// Uniformization rate.
	lam := 0.0
	for i := 0; i < n; i++ {
		for k := q.RowPtr[i]; k < q.RowPtr[i+1]; k++ {
			if q.ColIdx[k] == i {
				if r := -q.Val[k]; r > lam {
					lam = r
				}
			}
		}
	}
	if lam == 0 || t == 0 {
		return append([]float64(nil), pi0...), nil
	}
	lam *= 1.02
	// v_k = pi0 * P^k with P = I + Q/lam; result = sum poisson(k; lam t) v_k.
	v := append([]float64(nil), pi0...)
	out := make([]float64, n)
	// Poisson weights computed iteratively in log space to avoid overflow.
	lt := lam * t
	logw := -lt // log weight of k=0
	cum := 0.0
	for k := 0; ; k++ {
		if k%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		w := math.Exp(logw)
		for i := range out {
			out[i] += w * v[i]
		}
		cum += w
		if 1-cum < eps && float64(k) > lt {
			break
		}
		if k > 10_000_000 {
			return nil, fmt.Errorf("markov: uniformization did not converge (lambda*t = %v)", lt)
		}
		// Advance v <- v P and the Poisson weight.
		qv := q.VecMul(v)
		for i := range v {
			v[i] += qv[i] / lam
		}
		logw += math.Log(lt) - math.Log(float64(k+1))
	}
	// Normalize away the truncated tail.
	return linalg.Normalize1(out), nil
}

// ---------------------------------------------------------------------------
// Birth–death chains

// BirthDeath solves the stationary distribution of a birth–death chain with
// n+1 states, birth rates birth[i] (i -> i+1, length n) and death rates
// death[i] (i+1 -> i, length n), via the closed-form product solution.
func BirthDeath(birth, death []float64) ([]float64, error) {
	if len(birth) != len(death) {
		return nil, fmt.Errorf("markov: birth/death length mismatch %d vs %d", len(birth), len(death))
	}
	n := len(birth)
	pi := make([]float64, n+1)
	pi[0] = 1
	for i := 0; i < n; i++ {
		if death[i] <= 0 {
			return nil, fmt.Errorf("markov: death rate %d must be positive, got %v", i, death[i])
		}
		if birth[i] < 0 {
			return nil, fmt.Errorf("markov: birth rate %d must be non-negative, got %v", i, birth[i])
		}
		pi[i+1] = pi[i] * birth[i] / death[i]
	}
	return linalg.Normalize1(pi), nil
}
