package markov

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCTMCTwoState(t *testing.T) {
	c := NewCTMC()
	c.AddRate("up", "down", 2)
	c.AddRate("down", "up", 3)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	up, _ := c.Lookup("up")
	down, _ := c.Lookup("down")
	if math.Abs(pi[up]-0.6) > 1e-10 || math.Abs(pi[down]-0.4) > 1e-10 {
		t.Fatalf("pi = %v, want [0.6 0.4] for up/down", pi)
	}
}

func TestCTMCStateDedup(t *testing.T) {
	c := NewCTMC()
	a := c.State("a")
	if c.State("a") != a {
		t.Fatal("State not idempotent")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Name(a) != "a" {
		t.Fatal("Name wrong")
	}
}

func TestCTMCRatesAccumulate(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "b", 1)
	c.AddRate("a", "b", 2)
	c.AddRate("b", "a", 3)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	if math.Abs(pi[a]-0.5) > 1e-10 {
		t.Fatalf("pi_a = %v, want 0.5 (rates 3 vs 3)", pi[a])
	}
}

func TestCTMCSelfLoopIgnored(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "a", 100)
	c.AddRate("a", "b", 1)
	c.AddRate("b", "a", 1)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-10 {
		t.Fatalf("self-loop affected distribution: %v", pi)
	}
}

func TestCTMCInvalidRatePanics(t *testing.T) {
	c := NewCTMC()
	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v accepted", bad)
				}
			}()
			c.AddRate("a", "b", bad)
		}()
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "b", 1)
	c.AddRate("b", "a", 4)
	pi0 := []float64{1, 0}
	long, err := c.Transient(pi0, 100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if math.Abs(long[i]-ss[i]) > 1e-9 {
			t.Fatalf("transient at t=100 %v does not match steady state %v", long, ss)
		}
	}
}

func TestTransientMatchesClosedFormTwoState(t *testing.T) {
	// For a two-state chain with rates a, b, starting in state 0:
	// p0(t) = b/(a+b) + a/(a+b) e^{-(a+b)t}.
	const a, b = 1.5, 0.5
	c := NewCTMC()
	c.AddRate("s0", "s1", a)
	c.AddRate("s1", "s0", b)
	for _, tt := range []float64{0, 0.1, 0.5, 1, 2, 5} {
		pi, err := c.Transient([]float64{1, 0}, tt, 1e-13)
		if err != nil {
			t.Fatal(err)
		}
		want := b/(a+b) + a/(a+b)*math.Exp(-(a+b)*tt)
		if math.Abs(pi[0]-want) > 1e-9 {
			t.Fatalf("p0(%v) = %v, want %v", tt, pi[0], want)
		}
	}
}

func TestTransientZeroTime(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "b", 1)
	pi, err := c.Transient([]float64{0.3, 0.7}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pi[0] != 0.3 || pi[1] != 0.7 {
		t.Fatalf("t=0 transient changed distribution: %v", pi)
	}
}

func TestTransientValidation(t *testing.T) {
	c := NewCTMC()
	c.AddRate("a", "b", 1)
	if _, err := c.Transient([]float64{1}, 1, 0); err == nil {
		t.Fatal("wrong-length pi0 accepted")
	}
	if _, err := c.Transient([]float64{1, 0}, -1, 0); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestTransientProbabilityConserved(t *testing.T) {
	f := func(seed uint8) bool {
		tt := float64(seed) / 16
		c := NewCTMC()
		c.AddRate("a", "b", 2)
		c.AddRate("b", "c", 1)
		c.AddRate("c", "a", 0.5)
		pi, err := c.Transient([]float64{1, 0, 0}, tt, 1e-12)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range pi {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBirthDeathMM1(t *testing.T) {
	// Truncated M/M/1 with lambda=1, mu=2 over 20 states: pi_n ∝ 0.5^n.
	n := 20
	birth := make([]float64, n)
	death := make([]float64, n)
	for i := range birth {
		birth[i], death[i] = 1, 2
	}
	pi, err := BirthDeath(birth, death)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if math.Abs(pi[i]/pi[i-1]-0.5) > 1e-12 {
			t.Fatalf("ratio pi[%d]/pi[%d] = %v, want 0.5", i, i-1, pi[i]/pi[i-1])
		}
	}
}

func TestBirthDeathMatchesCTMC(t *testing.T) {
	birth := []float64{1, 2, 0.5}
	death := []float64{3, 1, 2}
	pi, err := BirthDeath(birth, death)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCTMC()
	names := []string{"0", "1", "2", "3"}
	for i := 0; i < 3; i++ {
		c.AddRate(names[i], names[i+1], birth[i])
		c.AddRate(names[i+1], names[i], death[i])
	}
	pi2, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pi {
		if math.Abs(pi[i]-pi2[i]) > 1e-10 {
			t.Fatalf("birth-death %v != CTMC %v", pi, pi2)
		}
	}
}

func TestBirthDeathValidation(t *testing.T) {
	if _, err := BirthDeath([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := BirthDeath([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero death rate accepted")
	}
	if _, err := BirthDeath([]float64{-1}, []float64{1}); err == nil {
		t.Fatal("negative birth rate accepted")
	}
}
