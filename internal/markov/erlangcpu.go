package markov

import (
	"context"
	"fmt"
	"math"

	"repro/internal/energy"
)

// ErlangCPU approximates the power-managed CPU as a true CTMC by replacing
// each deterministic delay with an Erlang-K phase chain of the same mean:
// the Power Down Threshold T becomes K exponential phases of rate K/T and
// the Power Up Delay D becomes K phases of rate K/D. As K grows the Erlang
// delay converges to the constant delay, so the chain converges to the
// paper's DSPN — this implements the "effective method of modeling constant
// delays in Markov chains" that the paper's conclusion calls for, and is
// ablated in experiment X-1.
type ErlangCPU struct {
	// Lambda, Mu, T, D are the CPUModel parameters.
	Lambda, Mu, T, D float64
	// K is the number of Erlang phases per deterministic delay (>= 1).
	K int
	// QueueCap truncates the job queue; 0 selects an automatic cap large
	// enough that the truncated tail mass is negligible at rho = Lambda/Mu.
	QueueCap int
}

// ErlangCPUResult is the stationary solution of the phase-expanded chain.
type ErlangCPUResult struct {
	// Fractions are the aggregated state probabilities.
	Fractions energy.Fractions
	// MeanJobs is the expected number of jobs in the system.
	MeanJobs float64
	// States is the size of the expanded chain.
	States int
}

// Solve builds and solves the phase-expanded CTMC.
//
// State encoding:
//
//	standby            — empty queue, powered down
//	powerup(j, n)      — wake-up phase j in 1..K with n >= 1 jobs queued
//	idle(j)            — powered on, empty queue, idle-timer phase j in 1..K
//	active(n)          — serving with n >= 1 jobs in system
func (e ErlangCPU) Solve() (*ErlangCPUResult, error) {
	return e.SolveContext(context.Background())
}

// SolveContext is Solve with cooperative cancellation threaded into the
// stationary solve. At large K the expanded chain has K*(queue cap+1)+K+1
// states and the solve dominates the call by orders of magnitude, so a
// cancelled context aborts mid-iteration instead of running to convergence.
func (e ErlangCPU) SolveContext(ctx context.Context) (*ErlangCPUResult, error) {
	if e.Lambda <= 0 || e.Mu <= 0 {
		return nil, fmt.Errorf("markov: rates must be positive (lambda=%v mu=%v)", e.Lambda, e.Mu)
	}
	rho := e.Lambda / e.Mu
	if rho >= 1 {
		return nil, fmt.Errorf("markov: unstable queue, rho = %v", rho)
	}
	if e.K < 1 {
		return nil, fmt.Errorf("markov: K must be >= 1, got %d", e.K)
	}
	if e.T < 0 || e.D < 0 {
		return nil, fmt.Errorf("markov: negative delay (T=%v D=%v)", e.T, e.D)
	}
	qcap := e.QueueCap
	if qcap == 0 {
		// Choose so that rho^qcap is far below estimation noise, plus room
		// for the arrivals that pile up during the power-up delay.
		qcap = 30 + int(3*e.Lambda*e.D)
		for qcap < 4000 && math.Pow(rho, float64(qcap)) > 1e-12 {
			qcap++
		}
	}

	c := NewCTMC()
	standby := "standby"
	idle := func(j int) string { return fmt.Sprintf("idle/%d", j) }
	up := func(j, n int) string { return fmt.Sprintf("up/%d/%d", j, n) }
	active := func(n int) string { return fmt.Sprintf("act/%d", n) }

	// Zero-valued delays collapse their phase chains entirely: D = 0 wakes
	// straight into service, T = 0 powers down the moment the queue empties.
	hasPowerUp := e.D > 0
	hasIdle := e.T > 0

	// Standby: an arrival starts the wake-up sequence (or service, with no
	// power-up delay).
	if hasPowerUp {
		c.AddRate(standby, up(1, 1), e.Lambda)
	} else {
		c.AddRate(standby, active(1), e.Lambda)
	}

	// Power-up phases: arrivals queue; phases advance; the last phase
	// turns the CPU on serving.
	if hasPowerUp {
		phD := float64(e.K) / e.D
		for j := 1; j <= e.K; j++ {
			for n := 1; n <= qcap; n++ {
				if n < qcap {
					c.AddRate(up(j, n), up(j, n+1), e.Lambda)
				}
				next := active(n)
				if j < e.K {
					next = up(j+1, n)
				}
				c.AddRate(up(j, n), next, phD)
			}
		}
	}

	// Active states: service completions and arrivals.
	afterLastJob := standby
	if hasIdle {
		afterLastJob = idle(1)
	}
	for n := 1; n <= qcap; n++ {
		if n < qcap {
			c.AddRate(active(n), active(n+1), e.Lambda)
		}
		if n > 1 {
			c.AddRate(active(n), active(n-1), e.Mu)
		} else {
			c.AddRate(active(1), afterLastJob, e.Mu)
		}
	}

	// Idle phases: an arrival returns to service; the timer expiring in
	// the last phase powers down.
	if hasIdle {
		phT := float64(e.K) / e.T
		for j := 1; j <= e.K; j++ {
			c.AddRate(idle(j), active(1), e.Lambda)
			next := standby
			if j < e.K {
				next = idle(j + 1)
			}
			c.AddRate(idle(j), next, phT)
		}
	}

	pi, err := c.SteadyStateContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("markov: Erlang CPU steady state (%d states): %w", c.Len(), err)
	}

	res := &ErlangCPUResult{States: c.Len()}
	if i, ok := c.Lookup(standby); ok {
		res.Fractions[energy.Standby] = pi[i]
	}
	for j := 1; j <= e.K; j++ {
		if i, ok := c.Lookup(idle(j)); ok {
			res.Fractions[energy.Idle] += pi[i]
		}
		for n := 1; n <= qcap; n++ {
			if i, ok := c.Lookup(up(j, n)); ok {
				res.Fractions[energy.PowerUp] += pi[i]
				res.MeanJobs += float64(n) * pi[i]
			}
		}
	}
	for n := 1; n <= qcap; n++ {
		if i, ok := c.Lookup(active(n)); ok {
			res.Fractions[energy.Active] += pi[i]
			res.MeanJobs += float64(n) * pi[i]
		}
	}
	return res, nil
}

// EnergyJoulesOver returns the equation-25 energy of the solved fractions
// over a fixed horizon.
func (r *ErlangCPUResult) EnergyJoulesOver(p energy.PowerModel, seconds float64) float64 {
	return p.EnergyJoules(r.Fractions, seconds)
}
