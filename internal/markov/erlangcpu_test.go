package markov

import (
	"math"
	"testing"

	"repro/internal/energy"
)

func TestErlangCPUValidation(t *testing.T) {
	bad := []ErlangCPU{
		{Lambda: 0, Mu: 1, K: 1},
		{Lambda: 1, Mu: 1, K: 1},                    // rho = 1
		{Lambda: 1, Mu: 2, K: 0},                    // no phases
		{Lambda: 1, Mu: 2, K: 1, T: -1},             // negative T
		{Lambda: 1, Mu: 2, K: 1, T: 0.5, D: -0.001}, // negative D
	}
	for i, e := range bad {
		if _, err := e.Solve(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, e)
		}
	}
}

func TestErlangCPUFractionsSumToOne(t *testing.T) {
	for _, k := range []int{1, 2, 8} {
		e := ErlangCPU{Lambda: 1, Mu: 10, T: 0.5, D: 0.3, K: k}
		res, err := e.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Fractions.Validate(1e-8); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
}

// TestErlangK1MatchesExponentializedModel: with K=1 both delays are plain
// exponentials; the utilization must still be exactly rho because the work
// arriving per unit time is unchanged by the power-down policy.
func TestErlangCPUUtilizationIsRho(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		e := ErlangCPU{Lambda: 1, Mu: 10, T: 0.5, D: 0.3, K: k}
		res, err := e.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Fractions[energy.Active]-0.1) > 1e-6 {
			t.Fatalf("K=%d: utilization = %v, want 0.1", k, res.Fractions[energy.Active])
		}
	}
}

// TestErlangConvergesToSupVarAtSmallD: for small D the supplementary
// variable solution is essentially exact, so the Erlang chain with large K
// must approach it.
func TestErlangConvergesToSupVarAtSmallD(t *testing.T) {
	m := CPUModel{Lambda: 1, Mu: 10, T: 0.5, D: 0.001}
	want := m.StateProbs()
	e := ErlangCPU{Lambda: m.Lambda, Mu: m.Mu, T: m.T, D: m.D, K: 32}
	res, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range energy.States {
		if math.Abs(res.Fractions[s]-want[s]) > 0.01 {
			t.Fatalf("state %s: erlang %v vs supvar %v", s, res.Fractions[s], want[s])
		}
	}
}

// TestErlangErrorShrinksWithK: the distance between consecutive K solutions
// shrinks, demonstrating convergence to the deterministic-delay process.
func TestErlangErrorShrinksWithK(t *testing.T) {
	cfg := func(k int) ErlangCPU {
		return ErlangCPU{Lambda: 1, Mu: 10, T: 0.5, D: 2, K: k, QueueCap: 60}
	}
	var prev *ErlangCPUResult
	var lastDelta float64 = math.Inf(1)
	for _, k := range []int{1, 4, 16, 64} {
		res, err := cfg(k).Solve()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			delta := 0.0
			for _, s := range energy.States {
				delta += math.Abs(res.Fractions[s] - prev.Fractions[s])
			}
			if delta > lastDelta+1e-9 {
				t.Fatalf("K=%d: successive delta %v did not shrink (prev %v)", k, delta, lastDelta)
			}
			lastDelta = delta
		}
		prev = res
	}
	if lastDelta > 0.05 {
		t.Fatalf("final successive delta %v too large; no convergence", lastDelta)
	}
}

func TestErlangCPUZeroDelays(t *testing.T) {
	// T = 0, D = 0 collapses to: standby when empty, active otherwise.
	e := ErlangCPU{Lambda: 1, Mu: 10, T: 0, D: 0, K: 4}
	res, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fractions[energy.Standby]-0.9) > 1e-6 {
		t.Fatalf("standby = %v, want 0.9", res.Fractions[energy.Standby])
	}
	if math.Abs(res.Fractions[energy.Active]-0.1) > 1e-6 {
		t.Fatalf("active = %v, want 0.1", res.Fractions[energy.Active])
	}
	if res.Fractions[energy.Idle] != 0 || res.Fractions[energy.PowerUp] != 0 {
		t.Fatalf("idle/powerup = %v/%v, want 0/0", res.Fractions[energy.Idle], res.Fractions[energy.PowerUp])
	}
	// Mean jobs matches M/M/1 exactly in this limit.
	if math.Abs(res.MeanJobs-0.1/0.9) > 1e-6 {
		t.Fatalf("L = %v, want %v", res.MeanJobs, 0.1/0.9)
	}
}

func TestErlangCPUEnergy(t *testing.T) {
	e := ErlangCPU{Lambda: 1, Mu: 10, T: 0.5, D: 0.001, K: 8}
	res, err := e.Solve()
	if err != nil {
		t.Fatal(err)
	}
	eng := res.EnergyJoulesOver(energy.PXA271, 1000)
	// Must land between all-standby (17 J) and all-active (193 J).
	if eng < 17 || eng > 193 {
		t.Fatalf("energy = %v J, outside physical bounds", eng)
	}
}

func BenchmarkErlangCPUSolveK8(b *testing.B) {
	e := ErlangCPU{Lambda: 1, Mu: 10, T: 0.5, D: 0.3, K: 8, QueueCap: 40}
	for i := 0; i < b.N; i++ {
		if _, err := e.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
