package markov_test

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/markov"
)

// ExampleCPUModel evaluates the paper's closed-form state probabilities at
// the Table-2 operating point.
func ExampleCPUModel() {
	m := markov.CPUModel{Lambda: 1, Mu: 10, T: 0.5, D: 0.001}
	p := m.StateProbs()
	fmt.Printf("standby %.3f idle %.3f active %.3f\n",
		p[energy.Standby], p[energy.Idle], p[energy.Active])
	fmt.Printf("energy over 1000 jobs: %.1f J\n", m.EnergyJoules(energy.PXA271, 1000))
	// Output:
	// standby 0.546 idle 0.354 active 0.100
	// energy over 1000 jobs: 59.8 J
}

// ExampleCTMC builds and solves a small chain by name.
func ExampleCTMC() {
	c := markov.NewCTMC()
	c.AddRate("sunny", "rainy", 1)
	c.AddRate("rainy", "sunny", 3)
	pi, err := c.SteadyState()
	if err != nil {
		panic(err)
	}
	sunny, _ := c.Lookup("sunny")
	fmt.Printf("P(sunny) = %.2f\n", pi[sunny])
	// Output: P(sunny) = 0.75
}
