package markov

import (
	"fmt"
	"math"

	"repro/internal/energy"
)

// CPUModel is the paper's Markov model of a power-managed processor
// (Section 4.1): Poisson arrivals at rate Lambda, exponential service at
// rate Mu, a deterministic Power Down Threshold T (idle -> standby) and a
// deterministic Power Up Delay D (standby -> serving), analyzed with Cox's
// method of supplementary variables. All results are the closed forms of
// equations (11)–(24).
//
// The stationary solution is exact for D -> 0 and an approximation for
// larger D; quantifying that approximation error against the Petri net and
// the event simulator is the core experiment of the paper (Tables 4 and 5).
type CPUModel struct {
	// Lambda is the Poisson job arrival rate (jobs/s).
	Lambda float64
	// Mu is the exponential service rate (jobs/s).
	Mu float64
	// T is the Power Down Threshold (s): contiguous idle time after which
	// the CPU drops to standby.
	T float64
	// D is the Power Up Delay (s): constant wake-up latency.
	D float64
}

// Validate checks parameter ranges, including queue stability (rho < 1).
func (m CPUModel) Validate() error {
	if m.Lambda <= 0 || math.IsNaN(m.Lambda) {
		return fmt.Errorf("markov: arrival rate must be positive, got %v", m.Lambda)
	}
	if m.Mu <= 0 || math.IsNaN(m.Mu) {
		return fmt.Errorf("markov: service rate must be positive, got %v", m.Mu)
	}
	if m.Lambda >= m.Mu {
		return fmt.Errorf("markov: unstable queue: rho = %v >= 1", m.Lambda/m.Mu)
	}
	if m.T < 0 || m.D < 0 {
		return fmt.Errorf("markov: thresholds must be non-negative, got T=%v D=%v", m.T, m.D)
	}
	return nil
}

// Rho returns the offered load lambda/mu.
func (m CPUModel) Rho() float64 { return m.Lambda / m.Mu }

// denominator evaluates the common denominator of equations (17)–(19):
// e^{λT} + (1-ρ)(1-e^{-λD}) + ρλD.
func (m CPUModel) denominator() float64 {
	rho := m.Rho()
	return math.Exp(m.Lambda*m.T) + (1-rho)*(1-math.Exp(-m.Lambda*m.D)) + rho*m.Lambda*m.D
}

// StateProbs returns the stationary probabilities of the four processor
// states. Standby is equation (17), PowerUp is (18), Idle follows from
// (12), and Active is the utilization G0(1) of equation (19). The four
// values sum to 1 analytically.
func (m CPUModel) StateProbs() energy.Fractions {
	rho := m.Rho()
	den := m.denominator()
	ps := (1 - rho) / den
	pi := (math.Exp(m.Lambda*m.T) - 1) * ps
	pu := (1 - rho) * (1 - math.Exp(-m.Lambda*m.D)) / den
	util := rho * (math.Exp(m.Lambda*m.T) + m.Lambda*m.D) / den
	var f energy.Fractions
	f[energy.Standby] = ps
	f[energy.Idle] = pi
	f[energy.PowerUp] = pu
	f[energy.Active] = util
	return f
}

// MeanJobs returns L(1), the stationary mean number of jobs in the system
// (equation 21).
func (m CPUModel) MeanJobs() float64 {
	rho := m.Rho()
	lam := m.Lambda
	den := m.denominator()
	num := math.Exp(lam*m.T) + 0.5*(1-rho)*lam*lam*m.D*m.D + (2-rho)*lam*m.D
	return rho / (1 - rho) * num / den
}

// MeanLatency returns the mean per-job latency via Little's law
// (equation 22).
func (m CPUModel) MeanLatency() float64 {
	return m.MeanJobs() / m.Lambda
}

// TotalTime returns the paper's total running time for n jobs
// (equation 23): (N + L(1)^2) / lambda.
func (m CPUModel) TotalTime(n int) float64 {
	l := m.MeanJobs()
	return (float64(n) + l*l) / m.Lambda
}

// EnergyJoules evaluates equation (24): expected energy to process n jobs
// under the given power model, in Joules.
func (m CPUModel) EnergyJoules(p energy.PowerModel, n int) float64 {
	return p.EnergyJoules(m.StateProbs(), m.TotalTime(n))
}

// EnergyJoulesOver returns the energy over a fixed horizon (seconds), the
// quantity plotted in Figure 5 when the horizon is the paper's 1000 s
// simulated period.
func (m CPUModel) EnergyJoulesOver(p energy.PowerModel, seconds float64) float64 {
	return p.EnergyJoules(m.StateProbs(), seconds)
}

// MM1Probs returns the reference M/M/1 limit of the model (T -> infinity,
// D = 0): utilization rho and idle probability 1-rho. Used as a validation
// anchor in tests.
func (m CPUModel) MM1Probs() energy.Fractions {
	rho := m.Rho()
	var f energy.Fractions
	f[energy.Idle] = 1 - rho
	f[energy.Active] = rho
	return f
}
