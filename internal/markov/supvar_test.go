package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/energy"
)

// paperModel returns the paper's Table 2 operating point: lambda = 1 job/s,
// mean service 0.1 s (mu = 10/s), with the given thresholds.
func paperModel(T, D float64) CPUModel {
	return CPUModel{Lambda: 1, Mu: 10, T: T, D: D}
}

func TestValidate(t *testing.T) {
	if err := paperModel(0.5, 0.001).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CPUModel{
		{Lambda: 0, Mu: 1},
		{Lambda: 1, Mu: 0},
		{Lambda: 2, Mu: 1},            // unstable
		{Lambda: 1, Mu: 2, T: -1},     // negative threshold
		{Lambda: 1, Mu: 2, D: -0.001}, // negative delay
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted: %+v", i, m)
		}
	}
}

// TestProbabilitiesSumToOne verifies the paper's normalization (eq. 10):
// ps + pi + pu + G0(1) = 1 holds analytically for random parameters.
func TestProbabilitiesSumToOne(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		lambda := 0.05 + float64(a%400)/100 // up to ~4
		mu := lambda*1.05 + float64(b%500)/50
		T := float64(c%300) / 100 // 0..3
		D := float64(d%2000) / 100
		m := CPUModel{Lambda: lambda, Mu: mu, T: T, D: D}
		return math.Abs(m.StateProbs().Sum()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestExactAtZeroDelay: with D = 0 the model is exact; the idle/standby
// split is (e^{λT}-1) : 1 and utilization is exactly rho.
func TestExactAtZeroDelay(t *testing.T) {
	m := paperModel(0.5, 0)
	p := m.StateProbs()
	if math.Abs(p[energy.Active]-0.1) > 1e-12 {
		t.Fatalf("utilization = %v, want rho = 0.1", p[energy.Active])
	}
	if p[energy.PowerUp] != 0 {
		t.Fatalf("powerup = %v, want 0 at D=0", p[energy.PowerUp])
	}
	ratio := p[energy.Idle] / p[energy.Standby]
	want := math.Exp(m.Lambda*m.T) - 1
	if math.Abs(ratio-want) > 1e-9 {
		t.Fatalf("idle:standby = %v, want %v", ratio, want)
	}
}

// TestMM1LimitLargeT: as T grows the CPU never sleeps; idle -> 1-rho and
// active -> rho (the M/M/1 limit).
func TestMM1LimitLargeT(t *testing.T) {
	m := paperModel(20, 0.001) // e^{20} >> other terms
	p := m.StateProbs()
	if math.Abs(p[energy.Active]-0.1) > 1e-6 {
		t.Fatalf("active = %v, want 0.1", p[energy.Active])
	}
	if math.Abs(p[energy.Idle]-0.9) > 1e-6 {
		t.Fatalf("idle = %v, want 0.9", p[energy.Idle])
	}
	if p[energy.Standby] > 1e-6 || p[energy.PowerUp] > 1e-6 {
		t.Fatalf("standby/powerup = %v/%v, want ~0", p[energy.Standby], p[energy.PowerUp])
	}
	// Mean jobs approaches the M/M/1 value rho/(1-rho).
	if math.Abs(m.MeanJobs()-0.1/0.9) > 1e-4 {
		t.Fatalf("L = %v, want ~%v", m.MeanJobs(), 0.1/0.9)
	}
}

// TestImmediateSleepLimit: at T = 0 and D = 0 the CPU sleeps whenever the
// queue is empty: standby = 1-rho, active = rho, idle = 0.
func TestImmediateSleepLimit(t *testing.T) {
	m := paperModel(0, 0)
	p := m.StateProbs()
	if math.Abs(p[energy.Standby]-0.9) > 1e-12 || math.Abs(p[energy.Active]-0.1) > 1e-12 {
		t.Fatalf("probs = %v, want standby 0.9 / active 0.1", p)
	}
	if p[energy.Idle] != 0 {
		t.Fatalf("idle = %v, want 0", p[energy.Idle])
	}
}

func TestStandbyDecreasesWithThreshold(t *testing.T) {
	// Raising the Power Down Threshold keeps the CPU idle longer, so the
	// standby share must fall monotonically (Figure 4's main trend).
	prev := math.Inf(1)
	for _, T := range []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} {
		ps := paperModel(T, 0.001).StateProbs()[energy.Standby]
		if ps >= prev {
			t.Fatalf("standby fraction not decreasing at T=%v: %v >= %v", T, ps, prev)
		}
		prev = ps
	}
}

func TestEnergyIncreasesWithThreshold(t *testing.T) {
	// Figure 5: energy grows with the Power Down Threshold because idle
	// power (88 mW) exceeds standby power (17 mW).
	prev := 0.0
	for _, T := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
		e := paperModel(T, 0.001).EnergyJoulesOver(energy.PXA271, 1000)
		if e <= prev {
			t.Fatalf("energy not increasing at T=%v: %v <= %v", T, e, prev)
		}
		prev = e
	}
}

func TestMeanJobsAndLatencyLittleLaw(t *testing.T) {
	m := paperModel(0.5, 0.3)
	if math.Abs(m.MeanLatency()-m.MeanJobs()/m.Lambda) > 1e-15 {
		t.Fatal("Little's law identity violated by construction")
	}
}

func TestTotalTimeEquation23(t *testing.T) {
	m := paperModel(0.5, 0.001)
	l := m.MeanJobs()
	want := (1000 + l*l) / m.Lambda
	if math.Abs(m.TotalTime(1000)-want) > 1e-12 {
		t.Fatalf("TotalTime = %v, want %v", m.TotalTime(1000), want)
	}
}

func TestEnergyJoulesEquation24(t *testing.T) {
	m := paperModel(0.5, 0.001)
	p := m.StateProbs()
	avgMW := 17*p[energy.Standby] + 192.442*p[energy.PowerUp] + 88*p[energy.Idle] + 193*p[energy.Active]
	want := avgMW * m.TotalTime(1000) / 1000
	if math.Abs(m.EnergyJoules(energy.PXA271, 1000)-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", m.EnergyJoules(energy.PXA271, 1000), want)
	}
}

// TestUtilizationDriftsWithD documents the approximation error the paper
// reports in Tables 4/5: the supplementary-variable utilization formula
// overestimates the true constant utilization rho as D grows.
func TestUtilizationDriftsWithD(t *testing.T) {
	rho := 0.1
	small := paperModel(0.5, 0.001).StateProbs()[energy.Active]
	big := paperModel(0.5, 10).StateProbs()[energy.Active]
	if math.Abs(small-rho) > 1e-3 {
		t.Fatalf("small-D utilization = %v, want ~rho", small)
	}
	if big < rho+0.1 {
		t.Fatalf("large-D utilization = %v; expected the documented over-estimate (> %v)", big, rho+0.1)
	}
}

func TestMM1Probs(t *testing.T) {
	p := paperModel(1, 1).MM1Probs()
	if math.Abs(p[energy.Active]-0.1) > 1e-12 || math.Abs(p[energy.Idle]-0.9) > 1e-12 {
		t.Fatalf("MM1Probs = %v", p)
	}
}
