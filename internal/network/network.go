// Package network lifts the single-node energy model to a multi-hop
// wireless sensor network — the setting of the paper's motivating
// applications (surveillance, habitat monitoring). Nodes form a routing
// tree toward a sink; every node samples its sensor at a configurable rate
// and forwards both its own and its descendants' packets, so nodes close to
// the sink carry more traffic, burn more energy and die first. Network
// lifetime is the time until the first node exhausts its battery, the usual
// first-failure definition.
//
// Per-node energy is computed with the same machinery as the paper: the
// CPU side via any core.Estimator (Markov closed form by default, Petri net
// or simulation if requested) and the radio side from transmit/receive/
// listen airtime.
package network

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/sensornode"
)

// Node is one sensor in the tree.
type Node struct {
	// ID is a unique identifier.
	ID int
	// Parent is the ID of the next hop toward the sink; -1 for the sink
	// itself.
	Parent int
	// SampleRate is the node's own sensing rate (jobs and packets per
	// second).
	SampleRate float64
}

// Config describes the network.
type Config struct {
	// Nodes lists every node; exactly one must have Parent == -1.
	Nodes []Node
	// CPU is the per-node processor configuration; Lambda is overridden
	// per node by its total processing load.
	CPU core.Config
	// Estimator computes per-node CPU fractions (default core.Markov{}).
	Estimator core.Estimator
	// Radio is the radio power table.
	Radio sensornode.RadioPower
	// TxTime and RxTime are per-packet transmit and receive airtimes.
	TxTime, RxTime float64
	// ListenPeriod and ListenWindow configure duty-cycled idle listening.
	ListenPeriod, ListenWindow float64
	// Battery is each node's energy reservoir.
	Battery energy.Battery
}

// DefaultConfig returns a line topology of n nodes rooted at node 0 with
// Mica-class parameters.
func DefaultConfig(n int) Config {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, Parent: i - 1, SampleRate: 0.5}
	}
	cpu := core.PaperConfig()
	return Config{
		Nodes:        nodes,
		CPU:          cpu,
		Radio:        sensornode.CC2420,
		TxTime:       0.01,
		RxTime:       0.01,
		ListenPeriod: 1,
		ListenWindow: 0.05,
		Battery:      energy.AA2850,
	}
}

// NodeReport is the per-node analysis result.
type NodeReport struct {
	ID int
	// Subtree is the number of nodes (including itself) whose traffic the
	// node carries.
	Subtree int
	// ProcessRate is the node's CPU load: own samples plus relayed
	// packets per second.
	ProcessRate float64
	// TxRate and RxRate are packets transmitted and received per second.
	TxRate, RxRate float64
	// CPUAvgMW, RadioAvgMW and TotalMW are average power draws.
	CPUAvgMW, RadioAvgMW, TotalMW float64
	// LifetimeSeconds is the node's battery lifetime.
	LifetimeSeconds float64
}

// Result is the network-level analysis.
type Result struct {
	Nodes []NodeReport
	// LifetimeSeconds is the first-node-death network lifetime.
	LifetimeSeconds float64
	// Bottleneck is the ID of the first node to die.
	Bottleneck int
}

// LifetimeDays converts the network lifetime to days.
func (r *Result) LifetimeDays() float64 { return r.LifetimeSeconds / 86400 }

// Analyze computes per-node load, power and lifetime, and the network
// lifetime.
func Analyze(cfg Config) (*Result, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("network: no nodes")
	}
	if cfg.Estimator == nil {
		cfg.Estimator = core.Markov{}
	}
	if cfg.TxTime <= 0 || cfg.RxTime <= 0 {
		return nil, fmt.Errorf("network: TxTime and RxTime must be positive")
	}
	if cfg.ListenPeriod <= 0 || cfg.ListenWindow < 0 {
		return nil, fmt.Errorf("network: invalid listen duty cycle")
	}
	index := map[int]int{}
	sink := -1
	for i, nd := range cfg.Nodes {
		if _, dup := index[nd.ID]; dup {
			return nil, fmt.Errorf("network: duplicate node id %d", nd.ID)
		}
		index[nd.ID] = i
		if nd.Parent == -1 {
			if sink != -1 {
				return nil, fmt.Errorf("network: multiple sinks (%d and %d)", cfg.Nodes[sink].ID, nd.ID)
			}
			sink = i
		}
		if nd.SampleRate < 0 {
			return nil, fmt.Errorf("network: node %d has negative sample rate", nd.ID)
		}
	}
	if sink == -1 {
		return nil, fmt.Errorf("network: no sink (exactly one node needs Parent == -1)")
	}

	// Per-node forwarded traffic: walk each node's path to the sink and
	// add its sample rate to every ancestor (and itself). Also validate
	// reachability and detect cycles.
	relayRate := make([]float64, len(cfg.Nodes)) // packets/s through node (own + descendants)
	subtree := make([]int, len(cfg.Nodes))
	for i, nd := range cfg.Nodes {
		cur := i
		for hops := 0; ; hops++ {
			if hops > len(cfg.Nodes) {
				return nil, fmt.Errorf("network: routing cycle involving node %d", nd.ID)
			}
			relayRate[cur] += nd.SampleRate
			subtree[cur]++
			p := cfg.Nodes[cur].Parent
			if p == -1 {
				break
			}
			pi, ok := index[p]
			if !ok {
				return nil, fmt.Errorf("network: node %d routes to unknown parent %d", cfg.Nodes[cur].ID, p)
			}
			cur = pi
		}
	}

	res := &Result{LifetimeSeconds: math.Inf(1), Bottleneck: -1}
	for i, nd := range cfg.Nodes {
		// The node processes one CPU job per packet it handles (its own
		// samples plus everything it relays).
		load := relayRate[i]
		cpuCfg := cfg.CPU
		cpuCfg.Lambda = load
		var cpuFrac energy.Fractions
		switch {
		case load == 0:
			cpuFrac[energy.Standby] = 1
		default:
			if cpuCfg.Lambda >= cpuCfg.Mu {
				return nil, fmt.Errorf("network: node %d overloaded: %v jobs/s at mu=%v", nd.ID, load, cpuCfg.Mu)
			}
			est, err := cfg.Estimator.Estimate(cpuCfg)
			if err != nil {
				return nil, fmt.Errorf("network: node %d: %w", nd.ID, err)
			}
			cpuFrac = est.Fractions
		}
		cpuMW := cfg.CPU.Power.AveragePowerMW(cpuFrac)

		txRate := relayRate[i]                 // everything it handles goes up (sink: delivered)
		rxRate := relayRate[i] - nd.SampleRate // received from children
		if cfg.Nodes[i].Parent == -1 {
			txRate = 0 // the sink delivers locally
		}
		txShare := txRate * cfg.TxTime
		rxShare := rxRate * cfg.RxTime
		listenShare := (1 - txShare - rxShare) * cfg.ListenWindow / (cfg.ListenPeriod + cfg.ListenWindow)
		sleepShare := 1 - txShare - rxShare - listenShare
		if sleepShare < 0 {
			return nil, fmt.Errorf("network: node %d radio over-committed (tx %v + rx %v of airtime)", nd.ID, txShare, rxShare)
		}
		radioMW := txShare*cfg.Radio.TxMW + rxShare*cfg.Radio.ListenMW +
			listenShare*cfg.Radio.ListenMW + sleepShare*cfg.Radio.SleepMW

		total := cpuMW + radioMW
		life := cfg.Battery.LifetimeSeconds(total)
		res.Nodes = append(res.Nodes, NodeReport{
			ID:              nd.ID,
			Subtree:         subtree[i],
			ProcessRate:     load,
			TxRate:          txRate,
			RxRate:          rxRate,
			CPUAvgMW:        cpuMW,
			RadioAvgMW:      radioMW,
			TotalMW:         total,
			LifetimeSeconds: life,
		})
		if life < res.LifetimeSeconds {
			res.LifetimeSeconds = life
			res.Bottleneck = nd.ID
		}
	}
	sort.Slice(res.Nodes, func(i, j int) bool { return res.Nodes[i].ID < res.Nodes[j].ID })
	return res, nil
}

// LineTopology returns n nodes in a chain: node 0 is the sink, node i
// routes through node i-1.
func LineTopology(n int, sampleRate float64) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{ID: i, Parent: i - 1, SampleRate: sampleRate}
	}
	return nodes
}

// StarTopology returns n nodes all routing directly to a sink (node 0).
func StarTopology(n int, sampleRate float64) []Node {
	nodes := make([]Node, n)
	nodes[0] = Node{ID: 0, Parent: -1, SampleRate: sampleRate}
	for i := 1; i < n; i++ {
		nodes[i] = Node{ID: i, Parent: 0, SampleRate: sampleRate}
	}
	return nodes
}

// BinaryTreeTopology returns a complete binary tree of the given depth
// (node 0 is the sink/root).
func BinaryTreeTopology(depth int, sampleRate float64) []Node {
	n := 1<<(depth+1) - 1
	nodes := make([]Node, n)
	for i := 0; i < n; i++ {
		parent := (i - 1) / 2
		if i == 0 {
			parent = -1
		}
		nodes[i] = Node{ID: i, Parent: parent, SampleRate: sampleRate}
	}
	return nodes
}
