package network

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
)

func TestAnalyzeLine(t *testing.T) {
	cfg := DefaultConfig(4)
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(res.Nodes))
	}
	// In a line, node 0 (sink) carries all 4 nodes' traffic, node 3 only
	// its own.
	if res.Nodes[0].Subtree != 4 || res.Nodes[3].Subtree != 1 {
		t.Fatalf("subtrees = %v", res.Nodes)
	}
	if res.Nodes[0].ProcessRate != 2.0 { // 4 * 0.5
		t.Fatalf("sink load = %v, want 2", res.Nodes[0].ProcessRate)
	}
	// With a PXA271 the CPU dwarfs the radio, so the most compute-loaded
	// node — the sink, which processes every packet — dies first.
	if res.Bottleneck != 0 {
		t.Fatalf("bottleneck = %d, want the sink (0) under a CPU-dominated budget", res.Bottleneck)
	}
	if !(res.LifetimeSeconds > 0) || math.IsInf(res.LifetimeSeconds, 1) {
		t.Fatalf("lifetime = %v", res.LifetimeSeconds)
	}
}

func TestRadioDominatedBottleneckIsFirstRelay(t *testing.T) {
	// With a negligible CPU the budget is pure radio airtime; the sink
	// only receives while node 1 both receives and transmits, so node 1
	// dies first — the classic funneling effect near the sink.
	cfg := DefaultConfig(4)
	cfg.CPU.Power = energy.PowerModel{Name: "negligible", MW: [energy.NumStates]float64{0.001, 0.001, 0.001, 0.001}}
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck != 1 {
		t.Fatalf("bottleneck = %d, want first relay (1) under a radio-dominated budget", res.Bottleneck)
	}
}

func TestLifetimeOrderingInLine(t *testing.T) {
	res, err := Analyze(DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Among relay nodes (1..4), lifetime grows with distance from sink.
	for i := 2; i < 5; i++ {
		if res.Nodes[i].LifetimeSeconds < res.Nodes[i-1].LifetimeSeconds {
			t.Fatalf("node %d outlives node %d: %v < %v", i-1, i,
				res.Nodes[i].LifetimeSeconds, res.Nodes[i-1].LifetimeSeconds)
		}
	}
}

func TestStarTopologyBalanced(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Nodes = StarTopology(6, 0.5)
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All leaves identical.
	leafLife := res.Nodes[1].LifetimeSeconds
	for _, nr := range res.Nodes[2:] {
		if math.Abs(nr.LifetimeSeconds-leafLife) > 1e-6 {
			t.Fatalf("leaf lifetimes differ: %v vs %v", nr.LifetimeSeconds, leafLife)
		}
	}
	// Star lifetime is bottlenecked by a leaf (the sink doesn't transmit,
	// but it processes 6x the load). Whichever — lifetime must be the min.
	minLife := math.Inf(1)
	for _, nr := range res.Nodes {
		minLife = math.Min(minLife, nr.LifetimeSeconds)
	}
	if res.LifetimeSeconds != minLife {
		t.Fatalf("network lifetime %v != min node lifetime %v", res.LifetimeSeconds, minLife)
	}
}

func TestBinaryTreeSubtrees(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.Nodes = BinaryTreeTopology(2, 0.2) // 7 nodes
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 7 {
		t.Fatalf("nodes = %d, want 7", len(res.Nodes))
	}
	if res.Nodes[0].Subtree != 7 {
		t.Fatalf("root subtree = %d, want 7", res.Nodes[0].Subtree)
	}
	if res.Nodes[1].Subtree != 3 || res.Nodes[2].Subtree != 3 {
		t.Fatalf("internal subtrees = %d/%d, want 3/3", res.Nodes[1].Subtree, res.Nodes[2].Subtree)
	}
	for i := 3; i < 7; i++ {
		if res.Nodes[i].Subtree != 1 {
			t.Fatalf("leaf %d subtree = %d", i, res.Nodes[i].Subtree)
		}
	}
}

func TestDeeperLineDiesFaster(t *testing.T) {
	short, err := Analyze(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	long, err := Analyze(DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if long.LifetimeSeconds >= short.LifetimeSeconds {
		t.Fatalf("10-hop line should die before 3-hop line: %v vs %v",
			long.LifetimeSeconds, short.LifetimeSeconds)
	}
}

func TestValidationErrors(t *testing.T) {
	base := DefaultConfig(3)
	cases := []func(*Config){
		func(c *Config) { c.Nodes = nil },
		func(c *Config) { c.Nodes[0].Parent = 0 },                     // no sink... actually cycle
		func(c *Config) { c.Nodes = []Node{{ID: 0, Parent: 5}} },      // unknown parent, no sink
		func(c *Config) { c.Nodes[1].ID = 0 },                         // duplicate id
		func(c *Config) { c.Nodes[2].SampleRate = -1 },                // negative rate
		func(c *Config) { c.TxTime = 0 },                              // bad airtime
		func(c *Config) { c.ListenPeriod = 0 },                        // bad duty cycle
		func(c *Config) { c.Nodes[1].Parent = -1 },                    // two sinks
		func(c *Config) { c.Nodes[0].SampleRate = 20; c.CPU.Mu = 10 }, // overload: 20+... >= mu
	}
	for i, mutate := range cases {
		cfg := DefaultConfig(3)
		mutate(&cfg)
		if _, err := Analyze(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	_ = base
}

func TestCycleDetected(t *testing.T) {
	cfg := DefaultConfig(3)
	// 1 -> 2 -> 1 cycle with 0 as sink.
	cfg.Nodes = []Node{
		{ID: 0, Parent: -1, SampleRate: 0.1},
		{ID: 1, Parent: 2, SampleRate: 0.1},
		{ID: 2, Parent: 1, SampleRate: 0.1},
	}
	if _, err := Analyze(cfg); err == nil {
		t.Fatal("routing cycle accepted")
	}
}

func TestPetriEstimatorWorksForNetwork(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.CPU.SimTime = 300
	cfg.CPU.Warmup = 30
	cfg.CPU.Replications = 2
	cfg.Estimator = core.PetriNet{}
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the Markov-estimated analysis: same ordering.
	cfg2 := DefaultConfig(3)
	res2, err := Analyze(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bottleneck != res2.Bottleneck {
		t.Fatalf("estimators disagree on bottleneck: %d vs %d", res.Bottleneck, res2.Bottleneck)
	}
	for i := range res.Nodes {
		if math.Abs(res.Nodes[i].TotalMW-res2.Nodes[i].TotalMW)/res2.Nodes[i].TotalMW > 0.05 {
			t.Fatalf("node %d power differs: %v vs %v", i, res.Nodes[i].TotalMW, res2.Nodes[i].TotalMW)
		}
	}
}

func TestZeroLoadNodeSleepsForever(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Nodes = []Node{
		{ID: 0, Parent: -1, SampleRate: 0},
		{ID: 1, Parent: 0, SampleRate: 0},
	}
	res, err := Analyze(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Only standby CPU + duty-cycled listening burn power.
	for _, nr := range res.Nodes {
		if nr.CPUAvgMW != 17 { // PXA271 standby
			t.Fatalf("idle node CPU = %v mW, want 17 (pure standby)", nr.CPUAvgMW)
		}
		if nr.TxRate != 0 || nr.RxRate != 0 {
			t.Fatal("idle network has traffic")
		}
	}
}
