package petri

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
)

// BatchMeansOptions configures single-long-run steady-state estimation:
// after a warmup, the run is divided into equal-length batches and each
// place's time-averaged token count per batch forms the sample for a
// Student-t interval. This is the estimator TimeNet uses for stationary
// simulation, and an alternative to independent replications when the
// model warms up slowly.
type BatchMeansOptions struct {
	// Seed drives all sampling.
	Seed uint64
	// Warmup is simulated but excluded.
	Warmup float64
	// BatchLength is the duration of one batch.
	BatchLength float64
	// Batches is the number of batches (>= 2 for a CI; default 30).
	Batches int
	// Memory selects the execution policy.
	Memory MemoryPolicy
	// MaxVanishingChain bounds zero-time firing chains.
	MaxVanishingChain int
}

// BatchMeansResult reports the batch-means estimate per place.
type BatchMeansResult struct {
	// PlaceAvg[p] summarizes the batch means of place p's token count.
	PlaceAvg []stats.Summary
	// Batches is the number of completed batches.
	Batches int
	// Deadlocked reports that the net deadlocked during the run.
	Deadlocked bool
}

// Mean returns the grand mean and 95% half-width for the named place.
func (r *BatchMeansResult) Mean(n *Net, name string) (mean, ci float64) {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	return r.PlaceAvg[id].Mean(), r.PlaceAvg[id].CI(0.95)
}

// SimulateBatchMeans runs one long simulation of Batches*BatchLength
// measured time (after warmup) and returns per-place batch-means
// statistics.
func SimulateBatchMeans(n *Net, opt BatchMeansOptions) (*BatchMeansResult, error) {
	return SimulateBatchMeansContext(context.Background(), n, opt)
}

// SimulateBatchMeansContext is SimulateBatchMeans with cooperative
// cancellation: a cancelled context aborts the long run mid-simulation
// (between events, not batches) with an error wrapping ctx.Err().
func SimulateBatchMeansContext(ctx context.Context, n *Net, opt BatchMeansOptions) (*BatchMeansResult, error) {
	c, err := Compile(n)
	if err != nil {
		return nil, err
	}
	return c.SimulateBatchMeansContext(ctx, opt)
}

// SimulateBatchMeans is batch-means estimation on a compiled net; see the
// package-level SimulateBatchMeans.
func (c *Compiled) SimulateBatchMeans(opt BatchMeansOptions) (*BatchMeansResult, error) {
	return c.SimulateBatchMeansContext(context.Background(), opt)
}

// SimulateBatchMeansContext is Compiled.SimulateBatchMeans with cooperative
// cancellation; see the package-level variant.
func (c *Compiled) SimulateBatchMeansContext(ctx context.Context, opt BatchMeansOptions) (*BatchMeansResult, error) {
	n := c.net
	if opt.BatchLength <= 0 {
		return nil, fmt.Errorf("petri: BatchLength must be positive, got %v", opt.BatchLength)
	}
	if opt.Batches == 0 {
		opt.Batches = 30
	}
	if opt.Batches < 2 {
		return nil, fmt.Errorf("petri: need >= 2 batches for an interval, got %d", opt.Batches)
	}
	if opt.Warmup < 0 {
		return nil, fmt.Errorf("petri: Warmup must be non-negative, got %v", opt.Warmup)
	}
	e, err := c.acquireEngine(ctx, SimOptions{
		Seed:              opt.Seed,
		Duration:          opt.Warmup + float64(opt.Batches)*opt.BatchLength,
		Memory:            opt.Memory,
		MaxVanishingChain: opt.MaxVanishingChain,
	})
	if err != nil {
		return nil, err
	}
	defer c.releaseEngine(e)
	if err := e.start(); err != nil {
		return nil, err
	}

	res := &BatchMeansResult{PlaceAvg: make([]stats.Summary, len(n.Places))}
	// integrals[p] accumulates the token-time integral within the current
	// batch, updated incrementally between events.
	integrals := make([]float64, len(n.Places))
	lastT := 0.0
	batchEnd := opt.Warmup + opt.BatchLength
	measuringFrom := opt.Warmup

	flushTo := func(t float64) {
		// Integrate the constant marking over [max(lastT, warmup), t],
		// splitting at batch boundaries.
		for lastT < t {
			segEnd := math.Min(t, batchEnd)
			from := math.Max(lastT, measuringFrom)
			if segEnd > from {
				dt := segEnd - from
				for p, tokens := range e.marking {
					integrals[p] += float64(tokens) * dt
				}
			}
			lastT = segEnd
			if lastT >= batchEnd && res.Batches < opt.Batches {
				for p := range integrals {
					res.PlaceAvg[p].Add(integrals[p] / opt.BatchLength)
					integrals[p] = 0
				}
				res.Batches++
				batchEnd += opt.BatchLength
			}
		}
	}

	horizon := opt.Warmup + float64(opt.Batches)*opt.BatchLength
	for res.Batches < opt.Batches {
		t, id := e.nextTimed()
		if id < 0 {
			res.Deadlocked = true
			flushTo(horizon)
			break
		}
		if t > horizon {
			flushTo(horizon)
			break
		}
		flushTo(t)
		e.advanceTo(t)
		if err := e.fireTimed(int32(id)); err != nil {
			return nil, err
		}
	}
	return res, nil
}
