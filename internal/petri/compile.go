package petri

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/dist"
)

// Firing-delay specializations (see Compiled.delayKind).
const (
	delayKindGeneric = uint8(iota)
	delayKindExp
	delayKindDet
)

// carc is a compiled arc: a place index and multiplicity, flattened into the
// Compiled net's contiguous arc arrays for cache-friendly scanning.
type carc struct {
	place  int32
	weight int32
}

// cond is one compiled enabling condition, packed into a single word so
// the hot loop does one load per condition: when the owning place's token
// count crosses the threshold, transition t gains or loses one unsatisfied
// condition. A transition with zero unsatisfied conditions is enabled.
//
// Layout: bits 0–30 transition id, bit 31 timed flag, bits 32–62
// threshold, bit 63 form (0: unsatisfied while count < threshold — input
// arcs; 1: unsatisfied while count >= threshold — inhibitor arcs and
// capacity bounds). Since "count >= K" is the negation of "count < K", a
// condition's satisfaction flips exactly when (count < K) changes,
// independent of the form bit.
type cond uint64

const condTimedBit = cond(1) << 31

func makeCond(t int32, thresh int, geq, timed bool) cond {
	if thresh < 0 {
		// Only capacity bounds can go negative (output weight exceeding
		// the capacity); token counts are non-negative, so "count >= 0"
		// (always unsatisfied) is equivalent.
		thresh = 0
	}
	c := cond(uint32(t))
	if timed {
		c |= condTimedBit
	}
	c |= cond(uint64(uint32(thresh)&0x7fffffff) << 32)
	if geq {
		c |= cond(1) << 63
	}
	return c
}

func (c cond) transition() int32 { return int32(c & 0x7fffffff) }
func (c cond) timed() bool       { return c&condTimedBit != 0 }
func (c cond) thresh() int       { return int(uint32(c>>32) & 0x7fffffff) }
func (c cond) geq() bool         { return c>>63 != 0 }

// unsatisfied evaluates the condition against a token count.
func (c cond) unsatisfied(v int) bool { return (v < c.thresh()) != c.geq() }

// immGroup is one immediate-priority level of a compiled net.
type immGroup struct {
	priority int
	// members lists the level's immediate transitions in ascending id
	// order, matching the scan order of Net.EnabledImmediatesAtTopPriority
	// so conflict resolution draws random numbers identically.
	members []int32
}

// Compiled is the immutable, dependency-compiled form of a Net, built once
// by Compile and shared by every simulation run (and every replication
// goroutine — nothing in it is mutated after construction).
//
// It precomputes what the discrete-event engine needs per event:
//
//   - flattened input/output/inhibitor arc arrays per transition;
//   - per-transition net token deltas (self-loops cancel out), so firing
//     touches only the places whose count actually changes;
//   - per-place threshold conditions (conds): the compiled form of "which
//     transitions' enabling can change when this place's count crosses
//     which value", letting the engine maintain per-transition
//     unsatisfied-condition counters with a handful of integer compares
//     per event instead of rescanning arcs;
//   - the immediate transitions grouped by priority, highest first;
//   - the short lists of transitions that escape the counter scheme
//     (guards read arbitrary marking state, multi-server transitions need
//     their enabling degree re-derived) and are re-checked conventionally.
//
// With these, the per-event work is proportional to what the event
// changes, never to the size of the net.
type Compiled struct {
	net *Net

	// Flattened arc arrays: transition t's input arcs occupy
	// in[inOff[t]:inOff[t+1]], and likewise for outputs and inhibitors.
	in, out, inh          []carc
	inOff, outOff, inhOff []int32

	// deltas[deltaOff[t]:deltaOff[t+1]] is transition t's net marking
	// change: output minus input multiplicity per place, places with zero
	// net effect omitted, ascending by place id.
	deltas   []carc
	deltaOff []int32

	// conds[condOff[p]:condOff[p+1]] are the threshold conditions owned by
	// place p, covering the input, inhibitor and capacity conditions of
	// every unguarded transition (multi-server transitions excluded — see
	// specialTimed).
	conds   []cond
	condOff []int32

	// progs[progOff[t]:progOff[t+1]] is transition t's firing program: the
	// per-transition fusion of deltas and conds into one flat word stream
	// the engine executes per firing with zero indirection. Each record is
	// a header word — place (bits 0–30), condition count (32–47), signed
	// token delta (48–63) — followed by that place's condition words.
	progs   []uint64
	progOff []int32

	// hasCapOut[t] reports that transition t has a capacity-bounded output
	// place, so its enabling depends on output places too.
	hasCapOut []bool
	// multi[t] reports multi-server firing semantics (Servers not in {0,1}).
	multi []bool
	// guarded[t] reports an attached guard predicate.
	guarded []bool
	// special[t] = multi[t] || guarded[t]: the transition is outside the
	// unsatisfied-condition counter scheme and needs a full re-check.
	special []bool
	// complexEnab[t] reports that enabling t requires more than the input
	// arc check: inhibitors, a capacity-bounded output or a guard.
	complexEnab []bool

	// timed lists the timed transitions in ascending id order.
	timed []int32
	// delayKind/delayParam specialize the two dominant firing-delay
	// distributions so the hot loop skips the interface dispatch:
	// exponential (param = rate, sample = ExpFloat64()/rate — the exact
	// expression dist.Exponential.Sample evaluates) and deterministic
	// (param = value, no RNG draw). Everything else stays on the
	// dist.Distribution interface.
	delayKind  []uint8
	delayParam []float64
	// groups are the immediate-priority levels, highest priority first.
	groups []immGroup
	// groupOf[t] is the index into groups for an immediate transition and
	// -1 for a timed one.
	groupOf []int32

	// guardedImms lists the guarded immediate transitions (ascending):
	// their enabling is re-evaluated with a full check after every firing
	// that changed the marking, since a guard may read any place.
	guardedImms []int32
	// specialTimed lists the timed transitions outside the counter scheme
	// (guarded, or multi-server — whose enabling degree must be re-derived
	// every event, exactly as the scalar engine did), ascending.
	specialTimed []int32

	// timedDeps[p] and immDeps[p] list, in ascending id order, the timed
	// and immediate transitions whose enabling can be affected by a change
	// to place p — the human-readable inverse index behind conds, retained
	// for analysis and tests.
	timedDeps [][]int32
	immDeps   [][]int32

	// enginePool recycles run-ready engines (the per-run scratch state:
	// marking, timers, heap, counters, accumulators) across simulations of
	// this net, so replication sweeps reuse one engine per worker instead
	// of allocating a fresh scratch set per replication. Engines are sized
	// to this net and never migrate between compiled nets. See
	// acquireEngine/releaseEngine in sim.go.
	enginePool sync.Pool
}

// Compile validates the net and builds its compiled form. The net must not
// be structurally modified (places, transitions, arcs, guards) after
// compilation; marking state is never stored in the net, so simulating a
// compiled net concurrently from many goroutines is safe as long as guards
// are pure functions of the marking.
func Compile(n *Net) (*Compiled, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nT := len(n.Transitions)
	nP := len(n.Places)
	c := &Compiled{
		net:         n,
		inOff:       make([]int32, nT+1),
		outOff:      make([]int32, nT+1),
		inhOff:      make([]int32, nT+1),
		deltaOff:    make([]int32, nT+1),
		hasCapOut:   make([]bool, nT),
		multi:       make([]bool, nT),
		guarded:     make([]bool, nT),
		special:     make([]bool, nT),
		complexEnab: make([]bool, nT),
		groupOf:     make([]int32, nT),
		delayKind:   make([]uint8, nT),
		delayParam:  make([]float64, nT),
		timedDeps:   make([][]int32, nP),
		immDeps:     make([][]int32, nP),
	}

	for i := range n.Transitions {
		tr := &n.Transitions[i]
		for _, a := range tr.Inputs {
			c.in = append(c.in, carc{int32(a.Place), int32(a.Weight)})
		}
		for _, a := range tr.Outputs {
			c.out = append(c.out, carc{int32(a.Place), int32(a.Weight)})
			if n.Places[a.Place].Capacity > 0 {
				c.hasCapOut[i] = true
			}
		}
		for _, a := range tr.Inhibitors {
			c.inh = append(c.inh, carc{int32(a.Place), int32(a.Weight)})
		}
		c.inOff[i+1] = int32(len(c.in))
		c.outOff[i+1] = int32(len(c.out))
		c.inhOff[i+1] = int32(len(c.inh))
		c.multi[i] = tr.Servers != 0 && tr.Servers != 1
		c.guarded[i] = tr.Guard != nil
		c.special[i] = c.multi[i] || c.guarded[i]
		c.complexEnab[i] = c.hasCapOut[i] || c.guarded[i] || len(tr.Inhibitors) > 0
		c.groupOf[i] = -1
		if tr.Kind == Timed {
			c.timed = append(c.timed, int32(i))
			if c.multi[i] || c.guarded[i] {
				c.specialTimed = append(c.specialTimed, int32(i))
			}
			switch d := tr.Delay.(type) {
			case dist.Exponential:
				c.delayKind[i], c.delayParam[i] = delayKindExp, d.Rate
			case dist.Deterministic:
				c.delayKind[i], c.delayParam[i] = delayKindDet, d.Value
			}
		} else if c.guarded[i] {
			c.guardedImms = append(c.guardedImms, int32(i))
		}

		// Net marking deltas, ascending by place.
		net := map[int32]int32{}
		for _, a := range tr.Inputs {
			net[int32(a.Place)] -= int32(a.Weight)
		}
		for _, a := range tr.Outputs {
			net[int32(a.Place)] += int32(a.Weight)
		}
		var places []int32
		for p, d := range net {
			if d != 0 {
				places = append(places, p)
			}
		}
		slices.Sort(places)
		for _, p := range places {
			c.deltas = append(c.deltas, carc{p, net[p]})
		}
		c.deltaOff[i+1] = int32(len(c.deltas))
	}

	// Immediate-priority groups, highest priority first, members ascending.
	byPriority := make(map[int][]int32)
	var priorities []int
	for i := range n.Transitions {
		if n.Transitions[i].Kind != Immediate {
			continue
		}
		p := n.Transitions[i].Priority
		if _, seen := byPriority[p]; !seen {
			priorities = append(priorities, p)
		}
		byPriority[p] = append(byPriority[p], int32(i))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(priorities)))
	for _, p := range priorities {
		c.groups = append(c.groups, immGroup{priority: p, members: byPriority[p]})
	}
	for gi, g := range c.groups {
		for _, t := range g.members {
			c.groupOf[t] = int32(gi)
		}
	}

	c.buildConditions(nP)
	c.buildDeps(nP)
	if err := c.buildPrograms(nT); err != nil {
		return nil, err
	}
	return c, nil
}

// buildPrograms fuses each transition's net deltas with the affected
// places' conditions into a flat firing program.
func (c *Compiled) buildPrograms(nT int) error {
	c.progOff = make([]int32, nT+1)
	for t := 0; t < nT; t++ {
		for _, d := range c.deltas[c.deltaOff[t]:c.deltaOff[t+1]] {
			if d.weight < -32768 || d.weight > 32767 {
				return fmt.Errorf("petri: net token delta %d of transition %q exceeds the compiled engine's ±32767 range", d.weight, c.net.Transitions[t].Name)
			}
			cs := c.conds[c.condOff[d.place]:c.condOff[d.place+1]]
			if len(cs) > 65535 {
				return fmt.Errorf("petri: place %q has %d enabling conditions, exceeding the compiled engine's 65535-per-place limit", c.net.Places[d.place].Name, len(cs))
			}
			header := uint64(uint32(d.place)) |
				uint64(uint16(len(cs)))<<32 |
				uint64(uint16(int16(d.weight)))<<48
			c.progs = append(c.progs, header)
			for _, cd := range cs {
				c.progs = append(c.progs, uint64(cd))
			}
		}
		c.progOff[t+1] = int32(len(c.progs))
	}
	return nil
}

// buildConditions compiles the per-place threshold conditions for every
// unguarded, non-multi-server transition. Guards (arbitrary marking
// predicates) and multi-server transitions (degree, not just enabling) are
// handled by full re-checks via guardedImms/specialTimed instead.
func (c *Compiled) buildConditions(nP int) {
	n := c.net
	perPlace := make([][]cond, nP)
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if c.guarded[i] || (tr.Kind == Timed && c.multi[i]) {
			continue
		}
		timed := tr.Kind == Timed
		for _, a := range tr.Inputs {
			perPlace[a.Place] = append(perPlace[a.Place],
				makeCond(int32(i), a.Weight, false, timed))
		}
		for _, a := range tr.Inhibitors {
			perPlace[a.Place] = append(perPlace[a.Place],
				makeCond(int32(i), a.Weight, true, timed))
		}
		if c.hasCapOut[i] {
			for _, a := range tr.Outputs {
				capacity := n.Places[a.Place].Capacity
				if capacity <= 0 {
					continue
				}
				consumed := 0
				for _, in := range tr.Inputs {
					if in.Place == a.Place {
						consumed += in.Weight
					}
				}
				// Unsatisfied iff m - consumed + w > capacity, i.e.
				// m >= capacity + consumed - w + 1.
				perPlace[a.Place] = append(perPlace[a.Place],
					makeCond(int32(i), capacity+consumed-a.Weight+1, true, timed))
			}
		}
	}
	c.condOff = make([]int32, nP+1)
	for p, cs := range perPlace {
		c.conds = append(c.conds, cs...)
		c.condOff[p+1] = int32(len(c.conds))
	}
}

// buildDeps derives the place → dependent-transitions inverse index.
func (c *Compiled) buildDeps(nP int) {
	n := c.net
	addDep := func(p PlaceID, t int) {
		deps := &c.timedDeps
		if n.Transitions[t].Kind == Immediate {
			deps = &c.immDeps
		}
		l := (*deps)[p]
		if len(l) > 0 && l[len(l)-1] == int32(t) {
			return
		}
		(*deps)[p] = append(l, int32(t))
	}
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if tr.Guard != nil {
			// A guard can read the whole marking: conservatively depend on
			// every place.
			for p := 0; p < nP; p++ {
				addDep(PlaceID(p), i)
			}
			continue
		}
		for _, a := range tr.Inputs {
			addDep(a.Place, i)
		}
		for _, a := range tr.Inhibitors {
			addDep(a.Place, i)
		}
		if c.hasCapOut[i] {
			for _, a := range tr.Outputs {
				if n.Places[a.Place].Capacity > 0 {
					addDep(a.Place, i)
				}
			}
		}
	}
	for p := 0; p < nP; p++ {
		c.timedDeps[p] = dedupSorted(c.timedDeps[p])
		c.immDeps[p] = dedupSorted(c.immDeps[p])
	}
}

// MustCompile is Compile that panics on error, for nets known to be valid.
func MustCompile(n *Net) *Compiled {
	c, err := Compile(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Net returns the net this compiled form was built from.
func (c *Compiled) Net() *Net { return c.net }

// dedupSorted removes duplicates from an ascending slice in place.
func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// enabled reports whether transition t may fire in marking m, mirroring
// Net.Enabled over the flattened arc arrays. The common case — input arcs
// only — stays on a single contiguous scan; inhibitors, capacities and
// guards divert to the slow path. The engine uses this for guarded and
// multi-server transitions and for one-off queries; unguarded single-server
// enabling is answered by the unsatisfied-condition counters.
func (c *Compiled) enabled(m Marking, t int32) bool {
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		if m[a.place] < int(a.weight) {
			return false
		}
	}
	if !c.complexEnab[t] {
		return true
	}
	return c.enabledComplex(m, t)
}

// enabledComplex checks the inhibitor, capacity and guard conditions of a
// transition whose input arcs are already satisfied.
func (c *Compiled) enabledComplex(m Marking, t int32) bool {
	for _, a := range c.inh[c.inhOff[t]:c.inhOff[t+1]] {
		if m[a.place] >= int(a.weight) {
			return false
		}
	}
	if c.hasCapOut[t] {
		for _, a := range c.out[c.outOff[t]:c.outOff[t+1]] {
			p := &c.net.Places[a.place]
			if p.Capacity > 0 {
				// Net effect on the place: outputs minus inputs consumed
				// by this same firing.
				consumed := 0
				for _, in := range c.in[c.inOff[t]:c.inOff[t+1]] {
					if in.place == a.place {
						consumed += int(in.weight)
					}
				}
				if m[a.place]-consumed+int(a.weight) > p.Capacity {
					return false
				}
			}
		}
	}
	if c.guarded[t] {
		if g := c.net.Transitions[t].Guard; g != nil && !g(m) {
			return false
		}
	}
	return true
}

// enablingDegree mirrors Net.EnablingDegree over the flattened arcs.
func (c *Compiled) enablingDegree(m Marking, t int32) int {
	if !c.enabled(m, t) {
		return 0
	}
	tr := &c.net.Transitions[t]
	if tr.Servers == 0 || tr.Servers == 1 {
		return 1
	}
	deg := -1
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		d := m[a.place] / int(a.weight)
		if deg < 0 || d < deg {
			deg = d
		}
	}
	if deg < 0 {
		deg = 1 // source transition
	}
	if tr.Servers > 1 && deg > tr.Servers {
		deg = tr.Servers
	}
	return deg
}
