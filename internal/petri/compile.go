package petri

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/dist"
)

// Firing-delay specializations (see Compiled.delayKind). Every shipped
// distribution has a compiled sampler kind, so the hot loop never goes
// through dist.Distribution interface dispatch; each compiled sampler draws
// the exact xrand sequence and evaluates the exact arithmetic of the
// distribution's Sample method, keeping trajectories bit-identical.
// delayKindGeneric is the fallback for user-supplied distributions (and for
// shipped ones whose parameters bypass their constructor validation, so the
// generic path's invalid-sample panic still fires).
const (
	delayKindGeneric = uint8(iota)
	delayKindExp
	delayKindDet
	delayKindUniform
	delayKindErlang
	delayKindWeibull
	delayKindHyperExp
)

// maxFusedChain bounds how many immediate firings Compile folds into one
// firing program. Chains longer than the cap (only possible when the fused
// transition re-guarantees its own enabling — a structural livelock) fall
// back to the general resolver for the remainder.
const maxFusedChain = 16

// maxChainPreconds bounds the runtime preconditions a fused chain may
// carry. Every precondition is one load-and-compare on the pre-firing
// marking, paid on every firing of the parent, so a chain that needs more
// facts than this is unlikely to pay for itself.
const maxChainPreconds = 6

// carc is a compiled arc: a place index and multiplicity, flattened into the
// Compiled net's contiguous arc arrays for cache-friendly scanning.
type carc struct {
	place  int32
	weight int32
}

// cond is one compiled enabling condition, packed into a single word so
// the hot loop does one load per condition: when the owning place's token
// count crosses the threshold, transition t gains or loses one unsatisfied
// condition. A transition with zero unsatisfied conditions is enabled.
//
// Layout: bits 0–30 transition id, bit 31 timed flag, bits 32–62
// threshold, bit 63 form (0: unsatisfied while count < threshold — input
// arcs; 1: unsatisfied while count >= threshold — inhibitor arcs and
// capacity bounds). Since "count >= K" is the negation of "count < K", a
// condition's satisfaction flips exactly when (count < K) changes,
// independent of the form bit.
type cond uint64

const condTimedBit = cond(1) << 31

func makeCond(t int32, thresh int, geq, timed bool) cond {
	if thresh < 0 {
		// Only capacity bounds can go negative (output weight exceeding
		// the capacity); token counts are non-negative, so "count >= 0"
		// (always unsatisfied) is equivalent.
		thresh = 0
	}
	c := cond(uint32(t))
	if timed {
		c |= condTimedBit
	}
	c |= cond(uint64(uint32(thresh)&0x7fffffff) << 32)
	if geq {
		c |= cond(1) << 63
	}
	return c
}

func (c cond) transition() int32 { return int32(c & 0x7fffffff) }
func (c cond) timed() bool       { return c&condTimedBit != 0 }
func (c cond) thresh() int       { return int(uint32(c>>32) & 0x7fffffff) }
func (c cond) geq() bool         { return c>>63 != 0 }

// unsatisfied evaluates the condition against a token count.
func (c cond) unsatisfied(v int) bool { return (v < c.thresh()) != c.geq() }

// precond is one runtime precondition of a fused vanishing chain, checked
// against the pre-firing marking before the chain's combined program is
// applied. Packed like cond so the check is one load per entry: bits 0–30
// place id, bits 32–62 threshold, bit 63 form (0: requires count >=
// threshold, 1: requires count < threshold).
type precond uint64

func makePrecond(p int32, thresh int, lt bool) precond {
	pc := precond(uint32(p))
	pc |= precond(uint64(uint32(thresh)&0x7fffffff) << 32)
	if lt {
		pc |= precond(1) << 63
	}
	return pc
}

func (pc precond) place() int32 { return int32(pc & 0x7fffffff) }
func (pc precond) thresh() int  { return int(uint32(pc>>32) & 0x7fffffff) }
func (pc precond) lt() bool     { return pc>>63 != 0 }

// holds evaluates the precondition against a token count.
func (pc precond) holds(v int) bool { return (v < pc.thresh()) == pc.lt() }

// immGroup is one immediate-priority level of a compiled net.
type immGroup struct {
	priority int
	// members lists the level's immediate transitions in ascending id
	// order, matching the scan order of Net.EnabledImmediatesAtTopPriority
	// so conflict resolution draws random numbers identically.
	members []int32
}

// Compiled is the immutable, dependency-compiled form of a Net, built once
// by Compile and shared by every simulation run (and every replication
// goroutine — nothing in it is mutated after construction).
//
// It precomputes what the discrete-event engine needs per event:
//
//   - flattened input/output/inhibitor arc arrays per transition;
//   - per-transition net token deltas (self-loops cancel out), so firing
//     touches only the places whose count actually changes;
//   - per-place threshold conditions (conds): the compiled form of "which
//     transitions' enabling can change when this place's count crosses
//     which value", letting the engine maintain per-transition
//     unsatisfied-condition counters with a handful of integer compares
//     per event instead of rescanning arcs;
//   - the immediate transitions grouped by priority, highest first;
//   - the short lists of transitions that escape the counter scheme
//     (guards read arbitrary marking state, multi-server transitions need
//     their enabling degree re-derived) and are re-checked conventionally.
//
// With these, the per-event work is proportional to what the event
// changes, never to the size of the net.
type Compiled struct {
	net *Net

	// Flattened arc arrays: transition t's input arcs occupy
	// in[inOff[t]:inOff[t+1]], and likewise for outputs and inhibitors.
	in, out, inh          []carc
	inOff, outOff, inhOff []int32

	// deltas[deltaOff[t]:deltaOff[t+1]] is transition t's net marking
	// change: output minus input multiplicity per place, places with zero
	// net effect omitted, ascending by place id.
	deltas   []carc
	deltaOff []int32

	// conds[condOff[p]:condOff[p+1]] are the threshold conditions owned by
	// place p, covering the input, inhibitor and capacity conditions of
	// every unguarded transition (multi-server transitions excluded — see
	// specialTimed).
	conds   []cond
	condOff []int32

	// progs[progOff[t]:progOff[t+1]] is transition t's firing program: the
	// per-transition fusion of deltas and conds into one flat word stream
	// the engine executes per firing with zero indirection. Each record is
	// a header word — place (bits 0–30), condition count (32–47), signed
	// token delta (48–63) — followed by that place's condition words.
	//
	// When a vanishing chain is statically guaranteed to follow t's firing
	// (see buildFusedChains), the program holds the combined net delta of t
	// plus the whole chain, so the intermediate vanishing markings are never
	// materialized.
	progs   []uint64
	progOff []int32

	// fusedChain[fusedOff[t]:fusedOff[t+1]] lists the immediate transitions
	// whose firings are fused into t's program, in firing order. The engine
	// still counts their firings and vanishing-chain steps individually, so
	// throughput and livelock accounting match the unfused semantics.
	fusedChain []int32
	fusedOff   []int32

	// preconds[precondOff[t]:precondOff[t+1]] are the runtime preconditions
	// on the pre-firing marking under which t's fused chain (and terminal
	// conflict step, if any) replays the resolver exactly. When any fails,
	// the engine fires t's solo program and hands over to the resolver.
	preconds   []precond
	precondOff []int32
	// boundsDep[t] reports that t's chain proof leaned on capacity or
	// P-invariant upper bounds of the unperturbed net — facts an external
	// Session.Inject can break, so the chain is disabled after one.
	boundsDep []bool

	// conflictGroup[t] is the immediate-priority level fused as the
	// terminal step of timed transition t's firing: after t's chain the
	// level is proven fully live, so the resolver's weighted draw is
	// replayed inline from the conflict tables. -1 when absent.
	conflictGroup []int32
	// confWeights[confOff[g]:confOff[g+1]] are priority level g's member
	// weights in member order, and confTotal[g] their sum — accumulated at
	// compile time in the same order the resolver adds them, so the
	// all-members-live draw is bit-identical to the scan it replaces.
	confWeights []float64
	confOff     []int32
	confTotal   []float64

	// soloProgs[soloOff[t]:soloOff[t+1]] is the parent-only firing program
	// of a transition whose progs entry absorbed a fused chain; empty for
	// unfused transitions (their progs entry already is the solo program).
	soloProgs []uint64
	soloOff   []int32

	// hasCapOut[t] reports that transition t has a capacity-bounded output
	// place, so its enabling depends on output places too.
	hasCapOut []bool
	// negPlace[p] reports that some transition can drive place p negative:
	// it holds several input arcs on p, and enabling only requires the
	// largest of them while firing consumes their sum. Token counts on such
	// places have no non-negativity floor, which invalidates the static
	// enabling guarantee behind vanishing-chain fusion (see fusionTarget).
	negPlace []bool
	// multi[t] reports multi-server firing semantics (Servers not in {0,1}).
	multi []bool
	// guarded[t] reports an attached guard predicate.
	guarded []bool
	// special[t] = multi[t] || guarded[t]: the transition is outside the
	// unsatisfied-condition counter scheme and needs a full re-check.
	special []bool
	// complexEnab[t] reports that enabling t requires more than the input
	// arc check: inhibitors, a capacity-bounded output or a guard.
	complexEnab []bool

	// timed lists the timed transitions in ascending id order.
	timed []int32
	// delayKind/delayParam/delayParam2 devirtualize the firing-delay
	// sampling: the engine switches on the kind and evaluates the exact
	// expression the distribution's Sample method would, drawing the same
	// xrand stream. Parameter packing per kind: Exp (rate, -), Det (value,
	// -), Uniform (low, high-low), Erlang (rate, K), Weibull (scale,
	// 1/shape), HyperExp (index into hypers, -). Distributions outside the
	// shipped set stay on the dist.Distribution interface (delayKindGeneric).
	delayKind   []uint8
	delayParam  []float64
	delayParam2 []float64
	// hypers holds the hyper-exponential mixtures referenced by delayParam.
	hypers []dist.HyperExponential
	// groups are the immediate-priority levels, highest priority first.
	groups []immGroup
	// groupOf[t] is the index into groups for an immediate transition and
	// -1 for a timed one.
	groupOf []int32

	// guardedImms lists the guarded immediate transitions (ascending):
	// their enabling is re-evaluated with a full check after every firing
	// that changed the marking, since a guard may read any place.
	guardedImms []int32
	// specialTimed lists the timed transitions outside the counter scheme
	// (guarded, or multi-server — whose enabling degree must be re-derived
	// every event, exactly as the scalar engine did), ascending.
	specialTimed []int32

	// timedDeps[p] and immDeps[p] list, in ascending id order, the timed
	// and immediate transitions whose enabling can be affected by a change
	// to place p — the human-readable inverse index behind conds, retained
	// for analysis and tests.
	timedDeps [][]int32
	immDeps   [][]int32

	// enginePool recycles run-ready engines (the per-run scratch state:
	// marking, timers, heap, counters, accumulators) across simulations of
	// this net, so replication sweeps reuse one engine per worker instead
	// of allocating a fresh scratch set per replication. Engines are sized
	// to this net and never migrate between compiled nets. See
	// acquireEngine/releaseEngine in sim.go.
	enginePool sync.Pool
}

// Compile validates the net and builds its compiled form. The net must not
// be structurally modified (places, transitions, arcs, guards) after
// compilation; marking state is never stored in the net, so simulating a
// compiled net concurrently from many goroutines is safe as long as guards
// are pure functions of the marking.
func Compile(n *Net) (*Compiled, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nT := len(n.Transitions)
	nP := len(n.Places)
	c := &Compiled{
		net:         n,
		inOff:       make([]int32, nT+1),
		outOff:      make([]int32, nT+1),
		inhOff:      make([]int32, nT+1),
		deltaOff:    make([]int32, nT+1),
		hasCapOut:   make([]bool, nT),
		negPlace:    make([]bool, nP),
		multi:       make([]bool, nT),
		guarded:     make([]bool, nT),
		special:     make([]bool, nT),
		complexEnab: make([]bool, nT),
		groupOf:     make([]int32, nT),
		delayKind:   make([]uint8, nT),
		delayParam:  make([]float64, nT),
		delayParam2: make([]float64, nT),
		timedDeps:   make([][]int32, nP),
		immDeps:     make([][]int32, nP),
	}

	for i := range n.Transitions {
		tr := &n.Transitions[i]
		for _, a := range tr.Inputs {
			c.in = append(c.in, carc{int32(a.Place), int32(a.Weight)})
		}
		for _, a := range tr.Outputs {
			c.out = append(c.out, carc{int32(a.Place), int32(a.Weight)})
			if n.Places[a.Place].Capacity > 0 {
				c.hasCapOut[i] = true
			}
		}
		for _, a := range tr.Inhibitors {
			c.inh = append(c.inh, carc{int32(a.Place), int32(a.Weight)})
		}
		c.inOff[i+1] = int32(len(c.in))
		c.outOff[i+1] = int32(len(c.out))
		c.inhOff[i+1] = int32(len(c.inh))
		c.multi[i] = tr.Servers != 0 && tr.Servers != 1
		c.guarded[i] = tr.Guard != nil
		c.special[i] = c.multi[i] || c.guarded[i]
		c.complexEnab[i] = c.hasCapOut[i] || c.guarded[i] || len(tr.Inhibitors) > 0
		c.groupOf[i] = -1
		if tr.Kind == Timed {
			c.timed = append(c.timed, int32(i))
			if c.multi[i] || c.guarded[i] {
				c.specialTimed = append(c.specialTimed, int32(i))
			}
			c.compileSampler(i, tr.Delay)
		} else if c.guarded[i] {
			c.guardedImms = append(c.guardedImms, int32(i))
		}

		// Duplicate input arcs on one place consume their sum while
		// enabling only checks each arc alone, so firing can take the
		// place negative; record that (see negPlace).
		maxIn := map[int32]int32{}
		sumIn := map[int32]int32{}
		for _, a := range tr.Inputs {
			p, w := int32(a.Place), int32(a.Weight)
			if w > maxIn[p] {
				maxIn[p] = w
			}
			sumIn[p] += w
		}
		for p, sum := range sumIn {
			if sum > maxIn[p] {
				c.negPlace[p] = true
			}
		}

		// Net marking deltas, ascending by place.
		net := map[int32]int32{}
		for _, a := range tr.Inputs {
			net[int32(a.Place)] -= int32(a.Weight)
		}
		for _, a := range tr.Outputs {
			net[int32(a.Place)] += int32(a.Weight)
		}
		var places []int32
		for p, d := range net {
			if d != 0 {
				places = append(places, p)
			}
		}
		slices.Sort(places)
		for _, p := range places {
			c.deltas = append(c.deltas, carc{p, net[p]})
		}
		c.deltaOff[i+1] = int32(len(c.deltas))
	}

	// Immediate-priority groups, highest priority first, members ascending.
	byPriority := make(map[int][]int32)
	var priorities []int
	for i := range n.Transitions {
		if n.Transitions[i].Kind != Immediate {
			continue
		}
		p := n.Transitions[i].Priority
		if _, seen := byPriority[p]; !seen {
			priorities = append(priorities, p)
		}
		byPriority[p] = append(byPriority[p], int32(i))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(priorities)))
	for _, p := range priorities {
		c.groups = append(c.groups, immGroup{priority: p, members: byPriority[p]})
	}
	for gi, g := range c.groups {
		for _, t := range g.members {
			c.groupOf[t] = int32(gi)
		}
	}

	c.buildConditions(nP)
	c.buildDeps(nP)
	c.buildConflictTables()
	c.buildFusedChains(nT, nP)
	if err := c.buildPrograms(nT); err != nil {
		return nil, err
	}
	return c, nil
}

// compileSampler records the devirtualized sampler kind and parameters of a
// timed transition's delay distribution. Parameters that would bypass the
// shipped constructors' validation (and so could sample negative or NaN
// delays) keep the generic interface path, whose runtime check still fires.
func (c *Compiled) compileSampler(i int, delay dist.Distribution) {
	switch d := delay.(type) {
	case dist.Exponential:
		if !(d.Rate > 0) {
			return
		}
		c.delayKind[i], c.delayParam[i] = delayKindExp, d.Rate
	case dist.Deterministic:
		if !(d.Value >= 0) {
			return
		}
		c.delayKind[i], c.delayParam[i] = delayKindDet, d.Value
	case dist.Uniform:
		if !(d.Low >= 0 && d.High > d.Low) || math.IsInf(d.High, 1) {
			// An infinite High sneaks past NewUniform; its span times a
			// zero draw is NaN, which only the generic path's check
			// catches.
			return
		}
		// Sample is Low + (High-Low)*U; the span is a deterministic float
		// subtraction, so precomputing it preserves bit-exactness.
		c.delayKind[i] = delayKindUniform
		c.delayParam[i], c.delayParam2[i] = d.Low, d.High-d.Low
	case dist.Erlang:
		if d.K < 1 || !(d.Rate > 0) {
			return
		}
		c.delayKind[i] = delayKindErlang
		c.delayParam[i], c.delayParam2[i] = d.Rate, float64(d.K)
	case dist.Weibull:
		if !(d.Shape > 0 && d.Scale > 0) {
			return
		}
		c.delayKind[i] = delayKindWeibull
		c.delayParam[i], c.delayParam2[i] = d.Scale, 1/d.Shape
	case dist.HyperExponential:
		if len(d.Probs) == 0 || len(d.Probs) != len(d.Rates) {
			return
		}
		sum := 0.0
		for j, p := range d.Probs {
			if !(p >= 0) || !(d.Rates[j] > 0) {
				return
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return
		}
		c.delayKind[i] = delayKindHyperExp
		c.delayParam[i] = float64(len(c.hypers))
		c.hypers = append(c.hypers, d)
	}
}

// buildConflictTables precomputes, per immediate-priority level, the member
// weights in member order and their sum. The resolver's weighted draw adds
// live members' weights in member order, so when a whole level is live the
// compile-time total and the sequential subtraction against these tables
// reproduce its floating-point arithmetic bit for bit.
func (c *Compiled) buildConflictTables() {
	c.confOff = make([]int32, len(c.groups)+1)
	for gi, g := range c.groups {
		total := 0.0
		for _, id := range g.members {
			w := c.net.Transitions[id].Weight
			c.confWeights = append(c.confWeights, w)
			total += w
		}
		c.confTotal = append(c.confTotal, total)
		c.confOff[gi+1] = int32(len(c.confWeights))
	}
}

// ---------------------------------------------------------------------------
// Vanishing-chain fusion
//
// buildFusedChains statically replays, per transition t, the resolver's
// run after t fires: which immediate fires next, or which fully-live
// priority level it would draw from. The replay rests on facts about the
// pre-firing marking m_pre:
//
//   - token counts are non-negative, except on places a duplicate-input-arc
//     transition can drive negative (negPlace);
//   - t was enabled at m_pre (the engine checks this at fire time), so
//     every input arc, inhibitor and capacity bound of t itself holds;
//   - for timed t, m_pre was tangible, so every immediate was disabled;
//   - place capacities and P-invariants bound every reachable count
//     (broken by Session.Inject, hence boundsDep);
//   - runtime preconditions: facts the compiler could not prove are
//     emitted as compiled threshold checks on m_pre, and the chain applies
//     only when all of them hold (engine.chainOK).
//
// The current marking after k fused firings is m_pre plus the accumulated
// net delta, so interval facts on m_pre translate to enabling proofs and
// disabling proofs along the chain. Where a member is neither provably
// enabled nor provably disabled, the builder prefers forcing it disabled
// (descending to lower levels — vanishing chains overwhelmingly drain
// downward) and falls back to forcing it enabled when the descent proves
// nothing fires below. Every fused firing the proof yields is exactly the
// firing the resolver would pick with no RNG draw; a terminal step may
// instead be a proven fully-live level, whose weighted draw the engine
// replays from the conflict tables. Either way, fusing is bit-exact.

// factNegInf/factPosInf are the interval-analysis sentinels, kept far from
// the int64 limits so bound arithmetic cannot overflow.
const (
	factNegInf = int64(math.MinInt64 / 4)
	factPosInf = int64(math.MaxInt64 / 4)
)

// chainBuilder carries the static interval facts about the pre-firing
// marking m_pre during the chain analysis of one parent transition.
type chainBuilder struct {
	c *Compiled
	// invUB[p] is the tightest capacity/P-invariant upper bound on p over
	// all reachable markings of the unperturbed net (factPosInf if none).
	invUB []int64

	// Per-parent facts: lb[p] <= m_pre[p] <= min(ubSafe[p], ubBound[p]).
	// ubSafe holds injection-proof knowledge (the parent's own enabling,
	// committed preconditions); ubBound the capacity/invariant bounds,
	// whose use flags the chain boundsDep. lbForced[p] records that lb[p]
	// was raised by a committed >=-precondition — a second, higher demand
	// on the same place means the chain is consuming it faster than one
	// marking can plausibly supply, so extension stops there rather than
	// shadow a shorter chain with rarely-true preconditions.
	lb       []int64
	lbForced []bool
	ubSafe   []int64
	ubBound  []int64
	// acc[p] is the accumulated net token delta of the parent plus the
	// fused firings so far: the current count is m_pre[p] + acc[p].
	acc []int64

	timedParent bool
	preconds    []precond
	usedBounds  bool
	undo        []factUndo
}

// factUndo restores one place's facts when a speculative descent is
// abandoned.
type factUndo struct {
	p        int32
	lb, ub   int64
	lbForced bool
}

// builderMark snapshots the builder for backtracking.
type builderMark struct {
	npre, nundo int
	bounds      bool
}

func (b *chainBuilder) mark() builderMark {
	return builderMark{npre: len(b.preconds), nundo: len(b.undo), bounds: b.usedBounds}
}

func (b *chainBuilder) restore(m builderMark) {
	for i := len(b.undo) - 1; i >= m.nundo; i-- {
		u := b.undo[i]
		b.lb[u.p], b.ubSafe[u.p], b.lbForced[u.p] = u.lb, u.ub, u.lbForced
	}
	b.undo = b.undo[:m.nundo]
	b.preconds = b.preconds[:m.npre]
	b.usedBounds = m.bounds
}

func newChainBuilder(c *Compiled, nP int) *chainBuilder {
	b := &chainBuilder{
		c:        c,
		invUB:    make([]int64, nP),
		lb:       make([]int64, nP),
		lbForced: make([]bool, nP),
		ubSafe:   make([]int64, nP),
		ubBound:  make([]int64, nP),
		acc:      make([]int64, nP),
	}
	b.computeInvariantBounds(nP)
	return b
}

// computeInvariantBounds derives per-place upper bounds valid in every
// reachable marking of the unperturbed net: place capacities, and
// floor(y·M0 / y[p]) for each P-semiflow y — since y·M is conserved and
// the other support terms are non-negative. A semiflow whose support
// touches a negative-capable place loses that last step and is skipped, as
// is the whole invariant analysis when Farkas aborts on a blowup.
func (b *chainBuilder) computeInvariantBounds(nP int) {
	for p := 0; p < nP; p++ {
		b.invUB[p] = factPosInf
		if cp := b.c.net.Places[p].Capacity; cp > 0 {
			b.invUB[p] = int64(cp)
		}
	}
	invs, err := PInvariants(b.c.net)
	if err != nil {
		return
	}
	for _, y := range invs {
		valid := true
		v := int64(0)
		for q, yq := range y {
			if yq < 0 || (yq > 0 && b.c.negPlace[q]) {
				valid = false
				break
			}
			v += int64(yq) * int64(b.c.net.Places[q].Initial)
		}
		if !valid {
			continue
		}
		for p, yp := range y {
			if yp > 0 {
				if ub := v / int64(yp); ub < b.invUB[p] {
					b.invUB[p] = ub
				}
			}
		}
	}
}

// reset initializes the facts for one parent transition t: the generic
// floors and ceilings, t's own enabling facts (the engine verifies them at
// fire time, so they survive injection), and t's firing folded into the
// accumulator.
func (b *chainBuilder) reset(t int32) {
	c := b.c
	for p := range b.lb {
		if c.negPlace[p] {
			b.lb[p] = factNegInf
		} else {
			b.lb[p] = 0
		}
		b.lbForced[p] = false
		b.ubSafe[p] = factPosInf
		b.ubBound[p] = b.invUB[p]
		b.acc[p] = 0
	}
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		if int64(a.weight) > b.lb[a.place] {
			b.lb[a.place] = int64(a.weight)
		}
	}
	for _, a := range c.inh[c.inhOff[t]:c.inhOff[t+1]] {
		if ub := int64(a.weight) - 1; ub < b.ubSafe[a.place] {
			b.ubSafe[a.place] = ub
		}
	}
	if c.hasCapOut[t] {
		for _, a := range c.out[c.outOff[t]:c.outOff[t+1]] {
			if cp := c.net.Places[a.place].Capacity; cp > 0 {
				if ub := int64(cp) + b.consumed(t, a.place) - int64(a.weight); ub < b.ubSafe[a.place] {
					b.ubSafe[a.place] = ub
				}
			}
		}
	}
	for _, d := range c.deltas[c.deltaOff[t]:c.deltaOff[t+1]] {
		b.acc[d.place] = int64(d.weight)
	}
	b.timedParent = c.net.Transitions[t].Kind == Timed
	b.preconds = b.preconds[:0]
	b.undo = b.undo[:0]
	b.usedBounds = false
}

// consumed sums t's input-arc weights on place p (the capacity check nets
// a firing's own consumption against its production).
func (b *chainBuilder) consumed(t, p int32) int64 {
	s := int64(0)
	for _, a := range b.c.in[b.c.inOff[t]:b.c.inOff[t+1]] {
		if a.place == p {
			s += int64(a.weight)
		}
	}
	return s
}

// commitPrecond records a runtime precondition and folds it into the m_pre
// facts so later steps can build on it. Preconditions already implied by
// the facts are dropped; ones the facts contradict — or past the budget —
// fail the commit (the caller abandons that option).
func (b *chainBuilder) commitPrecond(pc precond) bool {
	p := pc.place()
	th := int64(pc.thresh())
	if pc.lt() {
		if b.ubSafe[p] <= th-1 {
			return true
		}
		if b.lb[p] >= th {
			return false // never satisfiable alongside the other facts
		}
	} else {
		if b.lb[p] >= th {
			return true
		}
		if th > b.ubSafe[p] || th > b.ubBound[p] {
			return false
		}
	}
	if len(b.preconds) >= maxChainPreconds {
		return false
	}
	b.undo = append(b.undo, factUndo{p: p, lb: b.lb[p], ub: b.ubSafe[p], lbForced: b.lbForced[p]})
	b.preconds = append(b.preconds, pc)
	if pc.lt() {
		b.ubSafe[p] = th - 1
	} else {
		b.lb[p] = th
		b.lbForced[p] = true
	}
	return true
}

// Member classification at the current accumulated marking.
const (
	clUNK = iota
	clEN
	clDIS
)

type memberClass struct {
	status int
	// bounds reports the EN or DIS proof consumed a capacity/invariant
	// bound (invalid after Session.Inject).
	bounds bool
	// forceEN lists the m_pre preconditions under which every enabling
	// conjunct holds (valid only when forceENok); forceENBounds reports
	// that conjuncts not in the list were satisfied via ubBound.
	forceEN       []precond
	forceENok     bool
	forceENBounds bool
	// forceDIS is one m_pre precondition forcing a failing conjunct.
	forceDIS   precond
	forceDISok bool
}

// classify derives what the facts prove about immediate transition u at
// the current accumulated marking, and which preconditions could settle it
// either way.
func (b *chainBuilder) classify(u int32) memberClass {
	c := b.c
	mc := memberClass{status: clUNK}
	in := c.in[c.inOff[u]:c.inOff[u+1]]
	inh := c.inh[c.inhOff[u]:c.inhOff[u+1]]
	simple := !c.guarded[u] && len(inh) == 0 && !c.hasCapOut[u]

	// DIS via tangibility: the pre-event marking of a timed parent was
	// tangible, so u was disabled there; an unguarded input-arcs-only
	// member stays disabled while no input place has gained tokens.
	if b.timedParent && simple && len(in) > 0 {
		still := true
		for _, a := range in {
			if b.acc[a.place] > 0 {
				still = false
				break
			}
		}
		if still {
			mc.status = clDIS
			return mc
		}
	}
	// DIS via one provably failing conjunct.
	for _, a := range in {
		w := int64(a.weight)
		if b.ubSafe[a.place]+b.acc[a.place] < w {
			mc.status = clDIS
			return mc
		}
		if b.ubBound[a.place]+b.acc[a.place] < w {
			mc.status = clDIS
			mc.bounds = true
			return mc
		}
	}
	for _, a := range inh {
		if b.lb[a.place]+b.acc[a.place] >= int64(a.weight) {
			mc.status = clDIS
			return mc
		}
	}
	if c.hasCapOut[u] {
		for _, a := range c.out[c.outOff[u]:c.outOff[u+1]] {
			cp := int64(c.net.Places[a.place].Capacity)
			if cp <= 0 {
				continue
			}
			room := cp + b.consumed(u, a.place) - int64(a.weight)
			if b.lb[a.place]+b.acc[a.place] > room {
				mc.status = clDIS
				return mc
			}
		}
	}

	mc.forceDIS, mc.forceDISok = b.forceDISFor(u)
	if c.guarded[u] {
		// A guard only restricts further: enabling is never provable and
		// no m_pre precondition can force it.
		return mc
	}

	// EN proof (every conjunct) and the force-EN precondition set.
	en, enBounds, forceOK := true, false, true
	var force []precond
	for _, a := range in {
		w := int64(a.weight)
		if b.lb[a.place]+b.acc[a.place] >= w {
			continue
		}
		en = false
		th := w - b.acc[a.place]
		if th < 0 {
			// Only reachable for negPlace inputs; m_pre >= 0 is stricter
			// and packable, and a stricter precondition is always sound.
			th = 0
		}
		if th > int64(math.MaxInt32) || th > b.ubSafe[a.place] || th > b.ubBound[a.place] || b.lbForced[a.place] {
			forceOK = false
			continue
		}
		force = append(force, makePrecond(a.place, int(th), false))
	}
	for _, a := range inh {
		w := int64(a.weight)
		if b.ubSafe[a.place]+b.acc[a.place] <= w-1 {
			continue
		}
		if b.ubBound[a.place]+b.acc[a.place] <= w-1 {
			enBounds = true
			continue
		}
		en = false
		th := w - b.acc[a.place] // require m_pre < th
		if th < 0 || th > int64(math.MaxInt32) || (th == 0 && !c.negPlace[a.place]) || b.lb[a.place] >= th {
			forceOK = false
			continue
		}
		force = append(force, makePrecond(a.place, int(th), true))
	}
	if c.hasCapOut[u] {
		for _, a := range c.out[c.outOff[u]:c.outOff[u+1]] {
			cp := int64(c.net.Places[a.place].Capacity)
			if cp <= 0 {
				continue
			}
			room := cp + b.consumed(u, a.place) - int64(a.weight)
			if b.ubSafe[a.place]+b.acc[a.place] <= room {
				continue
			}
			if b.ubBound[a.place]+b.acc[a.place] <= room {
				enBounds = true
				continue
			}
			en = false
			th := room - b.acc[a.place] + 1 // require m_pre < th
			if th < 0 || th > int64(math.MaxInt32) || (th == 0 && !c.negPlace[a.place]) || b.lb[a.place] >= th {
				forceOK = false
				continue
			}
			force = append(force, makePrecond(a.place, int(th), true))
		}
	}
	if en {
		mc.status = clEN
		mc.bounds = enBounds
		return mc
	}
	if forceOK && b.timedParent && simple && len(in) > 0 && b.impliesEnabledAtPre(u, force) {
		// Forcing every conjunct would assert u was enabled at the
		// tangible pre-event marking — a contradiction, so the chain
		// could never apply at runtime.
		forceOK = false
	}
	mc.forceEN, mc.forceENok, mc.forceENBounds = force, forceOK, enBounds
	return mc
}

// impliesEnabledAtPre reports whether the facts plus the hypothetical
// >=-preconditions would imply every input arc of u satisfied at m_pre
// itself (acc excluded) — impossible at a tangible marking.
func (b *chainBuilder) impliesEnabledAtPre(u int32, force []precond) bool {
	for _, a := range b.c.in[b.c.inOff[u]:b.c.inOff[u+1]] {
		lb := b.lb[a.place]
		for _, pc := range force {
			if !pc.lt() && pc.place() == a.place && int64(pc.thresh()) > lb {
				lb = int64(pc.thresh())
			}
		}
		if lb < int64(a.weight) {
			return false
		}
	}
	return true
}

// forceDISFor derives one m_pre precondition forcing a failing enabling
// conjunct of u: input arcs first, then inhibitors.
func (b *chainBuilder) forceDISFor(u int32) (precond, bool) {
	c := b.c
	for _, a := range c.in[c.inOff[u]:c.inOff[u+1]] {
		th := int64(a.weight) - b.acc[a.place] // require m_pre < th
		if th < 0 || th > int64(math.MaxInt32) || (th == 0 && !c.negPlace[a.place]) || b.lb[a.place] >= th {
			continue
		}
		return makePrecond(a.place, int(th), true), true
	}
	for _, a := range c.inh[c.inhOff[u]:c.inhOff[u+1]] {
		th := int64(a.weight) - b.acc[a.place] // require m_pre >= th
		if th < 0 {
			th = 0
		}
		if th > int64(math.MaxInt32) || th > b.ubSafe[a.place] || th > b.ubBound[a.place] {
			continue
		}
		return makePrecond(a.place, int(th), false), true
	}
	return 0, false
}

// tryFire determines the resolver's next action from priority level gi
// down, committing preconditions as needed. It returns the transition the
// resolver would certainly fire (fired >= 0), a level proven fully live
// whose draw can be replayed (conflict >= 0), or (-1, -1) when neither is
// provable. On (-1, -1) every speculative commit has been rolled back.
func (b *chainBuilder) tryFire(gi int) (fired int32, conflict int) {
	c := b.c
	if gi >= len(c.groups) {
		return -1, -1
	}
	members := c.groups[gi].members
	cls := make([]memberClass, len(members))
	live, enCount := 0, 0
	disBounds := false
	for i, u := range members {
		cls[i] = b.classify(u)
		switch cls[i].status {
		case clDIS:
			if cls[i].bounds {
				disBounds = true
			}
		case clEN:
			enCount++
			live++
		default:
			live++
		}
	}
	if live == 0 {
		// The whole level is proven dead: descend freely. The descent
		// relies on these DIS proofs, so commit their bounds use; a failed
		// deeper search is rolled back by the caller's mark.
		if disBounds {
			b.usedBounds = true
		}
		return b.tryFire(gi + 1)
	}
	// The resolver acts at this level; every outcome leans on the DIS
	// proofs above (they pin the live set).
	commitDIS := func() {
		if disBounds {
			b.usedBounds = true
		}
	}
	// forceConflict proves the whole level live — EN members as they are,
	// unknowns via committed force-EN preconditions — so the terminal
	// weighted draw can be replayed from the conflict tables (timed
	// parents only: inside the resolver the plain scan continues anyway).
	forceConflict := func() (int32, int) {
		if !b.timedParent || live != len(members) || len(members) < 2 {
			return -1, -1
		}
		for i := range cls {
			if cls[i].status == clUNK && !cls[i].forceENok {
				return -1, -1
			}
		}
		m := b.mark()
		for i := range cls {
			switch cls[i].status {
			case clEN:
				if cls[i].bounds {
					b.usedBounds = true
				}
			case clUNK:
				if cls[i].forceENBounds {
					b.usedBounds = true
				}
				for _, pc := range cls[i].forceEN {
					if !b.commitPrecond(pc) {
						b.restore(m)
						return -1, -1
					}
				}
			}
		}
		commitDIS()
		return -1, gi
	}
	unkCount := live - enCount
	if unkCount == 0 {
		if live == 1 {
			for i, u := range members {
				if cls[i].status == clEN {
					commitDIS()
					if cls[i].bounds {
						b.usedBounds = true
					}
					return u, -1
				}
			}
		}
		return forceConflict()
	}
	if enCount > 0 {
		// Proven-live members forbid descending past this level; forcing
		// the rest live is the only remaining option.
		return forceConflict()
	}
	// Every live member is unknown: prefer descending — force them all
	// disabled and look for a provable firing at a lower level.
	allDIS := true
	for i := range cls {
		if cls[i].status == clUNK && !cls[i].forceDISok {
			allDIS = false
			break
		}
	}
	if allDIS {
		m := b.mark()
		ok := true
		for i := range cls {
			if cls[i].status == clUNK && !b.commitPrecond(cls[i].forceDIS) {
				ok = false
				break
			}
		}
		if ok {
			commitDIS()
			if f, cg := b.tryFire(gi + 1); f >= 0 || cg >= 0 {
				return f, cg
			}
		}
		b.restore(m)
	}
	// The descent proved nothing fires below: force an enabling here.
	if live == 1 {
		idx := -1
		for i := range cls {
			if cls[i].status == clUNK {
				idx = i
			}
		}
		if cls[idx].forceENok {
			m := b.mark()
			for _, pc := range cls[idx].forceEN {
				if !b.commitPrecond(pc) {
					b.restore(m)
					return -1, -1
				}
			}
			if cls[idx].forceENBounds {
				b.usedBounds = true
			}
			commitDIS()
			return members[idx], -1
		}
		return -1, -1
	}
	return forceConflict()
}

// deadAtPre reports whether the committed facts imply some unguarded
// immediate was enabled at m_pre itself — impossible at the tangible
// pre-event marking of a timed parent, so a chain whose preconditions
// reach this state can never apply at runtime. The driver rolls back the
// step that produced the contradiction, keeping the still-satisfiable
// prefix.
func (b *chainBuilder) deadAtPre() bool {
	if !b.timedParent {
		return false
	}
	for _, g := range b.c.groups {
		for _, u := range g.members {
			if !b.c.guarded[u] && b.enabledAtPreImplied(u) {
				return true
			}
		}
	}
	return false
}

// enabledAtPreImplied reports whether the facts prove every enabling
// conjunct of u at m_pre (the accumulator excluded).
func (b *chainBuilder) enabledAtPreImplied(u int32) bool {
	c := b.c
	for _, a := range c.in[c.inOff[u]:c.inOff[u+1]] {
		if b.lb[a.place] < int64(a.weight) {
			return false
		}
	}
	for _, a := range c.inh[c.inhOff[u]:c.inhOff[u+1]] {
		if min(b.ubSafe[a.place], b.ubBound[a.place]) > int64(a.weight)-1 {
			return false
		}
	}
	if c.hasCapOut[u] {
		for _, a := range c.out[c.outOff[u]:c.outOff[u+1]] {
			cp := int64(c.net.Places[a.place].Capacity)
			if cp <= 0 {
				continue
			}
			room := cp + b.consumed(u, a.place) - int64(a.weight)
			if min(b.ubSafe[a.place], b.ubBound[a.place]) > room {
				return false
			}
		}
	}
	return true
}

// compressPreconds folds committed preconditions to the strictest one per
// (place, form): the conditions are conjunctive, so for the >=-form the
// largest threshold subsumes the rest, for the <-form the smallest.
func compressPreconds(pcs []precond) []precond {
	var out []precond
	for _, pc := range pcs {
		merged := false
		for i, prev := range out {
			if prev.place() != pc.place() || prev.lt() != pc.lt() {
				continue
			}
			if pc.lt() == (pc.thresh() < prev.thresh()) {
				out[i] = pc
			}
			merged = true
			break
		}
		if !merged {
			out = append(out, pc)
		}
	}
	return out
}

// buildFusedChains runs the static resolver replay for every transition
// and records the provable chain prefix, its runtime preconditions, the
// bounds dependency, and the terminal conflict level if one was proven.
func (c *Compiled) buildFusedChains(nT, nP int) {
	c.fusedOff = make([]int32, nT+1)
	c.precondOff = make([]int32, nT+1)
	c.conflictGroup = make([]int32, nT)
	c.boundsDep = make([]bool, nT)
	var b *chainBuilder
	if len(c.groups) > 0 {
		b = newChainBuilder(c, nP)
	}
	for t := 0; t < nT; t++ {
		c.conflictGroup[t] = -1
		if b != nil {
			b.reset(int32(t))
			chainStart := len(c.fusedChain)
			for len(c.fusedChain)-chainStart < maxFusedChain {
				m := b.mark()
				fired, conflict := b.tryFire(0)
				if conflict >= 0 {
					if b.deadAtPre() {
						b.restore(m)
						break
					}
					c.conflictGroup[t] = int32(conflict)
					break
				}
				if fired < 0 {
					b.restore(m)
					break
				}
				if b.deadAtPre() {
					b.restore(m)
					break
				}
				c.fusedChain = append(c.fusedChain, fired)
				for _, d := range c.deltas[c.deltaOff[fired]:c.deltaOff[fired+1]] {
					b.acc[d.place] += int64(d.weight)
				}
			}
			if len(c.fusedChain) > chainStart || c.conflictGroup[t] >= 0 {
				c.preconds = append(c.preconds, compressPreconds(b.preconds)...)
				c.boundsDep[t] = b.usedBounds
			}
		}
		c.fusedOff[t+1] = int32(len(c.fusedChain))
		c.precondOff[t+1] = int32(len(c.preconds))
	}
}

// FusedChain returns the immediate transitions fused into transition t's
// firing program, in firing order, or nil when the firing is unfused.
func (c *Compiled) FusedChain(t TransitionID) []TransitionID {
	chain := c.fusedChain[c.fusedOff[t]:c.fusedOff[t+1]]
	if len(chain) == 0 {
		return nil
	}
	out := make([]TransitionID, len(chain))
	for i, f := range chain {
		out[i] = TransitionID(f)
	}
	return out
}

// FusedPreconds renders transition t's runtime chain preconditions as
// human-readable "place OP n" strings (places by name), in table order. An
// empty result means t's chain (if any) applies unconditionally.
func (c *Compiled) FusedPreconds(t TransitionID) []string {
	pcs := c.preconds[c.precondOff[t]:c.precondOff[t+1]]
	if len(pcs) == 0 {
		return nil
	}
	out := make([]string, len(pcs))
	for i, pc := range pcs {
		op := ">="
		if pc.lt() {
			op = "<"
		}
		out[i] = fmt.Sprintf("%s %s %d", c.net.Places[pc.place()].Name, op, pc.thresh())
	}
	return out
}

// BoundsDependent reports whether transition t's fused chain relies on
// capacity or P-invariant bounds — proofs valid only on the unperturbed
// net's reachability set, so the chain is suspended for the rest of a run
// once Session.Inject perturbs the marking.
func (c *Compiled) BoundsDependent(t TransitionID) bool { return c.boundsDep[t] }

// FusedConflict returns the members of the proven-live immediate priority
// level terminating transition t's fused chain — the set the engine's
// replayed weighted draw chooses from — or nil when the chain has no
// conflict terminal.
func (c *Compiled) FusedConflict(t TransitionID) []TransitionID {
	gi := c.conflictGroup[t]
	if gi < 0 {
		return nil
	}
	members := c.groups[gi].members
	out := make([]TransitionID, len(members))
	for i, m := range members {
		out[i] = TransitionID(m)
	}
	return out
}

// soloProg returns t's chain-free firing program: the dedicated solo
// program when t has a fused chain, else the main program (which is
// already solo).
func (c *Compiled) soloProg(t int32) []uint64 {
	if c.fusedOff[t+1] > c.fusedOff[t] {
		return c.soloProgs[c.soloOff[t]:c.soloOff[t+1]]
	}
	return c.progs[c.progOff[t]:c.progOff[t+1]]
}

// buildPrograms fuses each transition's net deltas — combined with the
// deltas of its fused vanishing chain, places with zero net effect omitted —
// with the affected places' conditions into a flat firing program. A
// transition with a fused chain additionally gets a solo program (its own
// deltas alone): when a runtime precondition fails, the engine fires the
// bare transition and falls back to the resolver.
func (c *Compiled) buildPrograms(nT int) error {
	c.progOff = make([]int32, nT+1)
	c.soloOff = make([]int32, nT+1)
	comb := make(map[int32]int32)
	var places []int32
	appendProg := func(dst []uint64, t int, chain []int32) ([]uint64, error) {
		clear(comb)
		places = places[:0]
		addDeltas := func(id int32) {
			for _, d := range c.deltas[c.deltaOff[id]:c.deltaOff[id+1]] {
				if _, seen := comb[d.place]; !seen {
					places = append(places, d.place)
				}
				comb[d.place] += d.weight
			}
		}
		addDeltas(int32(t))
		for _, f := range chain {
			addDeltas(f)
		}
		slices.Sort(places)
		for _, p := range places {
			w := comb[p]
			if w == 0 {
				continue
			}
			if w < -32768 || w > 32767 {
				return nil, fmt.Errorf("petri: net token delta %d of transition %q exceeds the compiled engine's ±32767 range", w, c.net.Transitions[t].Name)
			}
			cs := c.conds[c.condOff[p]:c.condOff[p+1]]
			if len(cs) > 65535 {
				return nil, fmt.Errorf("petri: place %q has %d enabling conditions, exceeding the compiled engine's 65535-per-place limit", c.net.Places[p].Name, len(cs))
			}
			header := uint64(uint32(p)) |
				uint64(uint16(len(cs)))<<32 |
				uint64(uint16(int16(w)))<<48
			dst = append(dst, header)
			for _, cd := range cs {
				dst = append(dst, uint64(cd))
			}
		}
		return dst, nil
	}
	for t := 0; t < nT; t++ {
		chain := c.fusedChain[c.fusedOff[t]:c.fusedOff[t+1]]
		var err error
		if c.progs, err = appendProg(c.progs, t, chain); err != nil {
			return err
		}
		if len(chain) > 0 {
			if c.soloProgs, err = appendProg(c.soloProgs, t, nil); err != nil {
				return err
			}
		}
		c.progOff[t+1] = int32(len(c.progs))
		c.soloOff[t+1] = int32(len(c.soloProgs))
	}
	return nil
}

// buildConditions compiles the per-place threshold conditions for every
// unguarded, non-multi-server transition. Guards (arbitrary marking
// predicates) and multi-server transitions (degree, not just enabling) are
// handled by full re-checks via guardedImms/specialTimed instead.
func (c *Compiled) buildConditions(nP int) {
	n := c.net
	perPlace := make([][]cond, nP)
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if c.guarded[i] || (tr.Kind == Timed && c.multi[i]) {
			continue
		}
		timed := tr.Kind == Timed
		for _, a := range tr.Inputs {
			perPlace[a.Place] = append(perPlace[a.Place],
				makeCond(int32(i), a.Weight, false, timed))
		}
		for _, a := range tr.Inhibitors {
			perPlace[a.Place] = append(perPlace[a.Place],
				makeCond(int32(i), a.Weight, true, timed))
		}
		if c.hasCapOut[i] {
			for _, a := range tr.Outputs {
				capacity := n.Places[a.Place].Capacity
				if capacity <= 0 {
					continue
				}
				consumed := 0
				for _, in := range tr.Inputs {
					if in.Place == a.Place {
						consumed += in.Weight
					}
				}
				// Unsatisfied iff m - consumed + w > capacity, i.e.
				// m >= capacity + consumed - w + 1.
				perPlace[a.Place] = append(perPlace[a.Place],
					makeCond(int32(i), capacity+consumed-a.Weight+1, true, timed))
			}
		}
	}
	c.condOff = make([]int32, nP+1)
	for p, cs := range perPlace {
		c.conds = append(c.conds, cs...)
		c.condOff[p+1] = int32(len(c.conds))
	}
}

// buildDeps derives the place → dependent-transitions inverse index.
func (c *Compiled) buildDeps(nP int) {
	n := c.net
	addDep := func(p PlaceID, t int) {
		deps := &c.timedDeps
		if n.Transitions[t].Kind == Immediate {
			deps = &c.immDeps
		}
		l := (*deps)[p]
		if len(l) > 0 && l[len(l)-1] == int32(t) {
			return
		}
		(*deps)[p] = append(l, int32(t))
	}
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if tr.Guard != nil {
			// A guard can read the whole marking: conservatively depend on
			// every place.
			for p := 0; p < nP; p++ {
				addDep(PlaceID(p), i)
			}
			continue
		}
		for _, a := range tr.Inputs {
			addDep(a.Place, i)
		}
		for _, a := range tr.Inhibitors {
			addDep(a.Place, i)
		}
		if c.hasCapOut[i] {
			for _, a := range tr.Outputs {
				if n.Places[a.Place].Capacity > 0 {
					addDep(a.Place, i)
				}
			}
		}
	}
	for p := 0; p < nP; p++ {
		c.timedDeps[p] = dedupSorted(c.timedDeps[p])
		c.immDeps[p] = dedupSorted(c.immDeps[p])
	}
}

// MustCompile is Compile that panics on error, for nets known to be valid.
func MustCompile(n *Net) *Compiled {
	c, err := Compile(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Net returns the net this compiled form was built from.
func (c *Compiled) Net() *Net { return c.net }

// dedupSorted removes duplicates from an ascending slice in place.
func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// enabled reports whether transition t may fire in marking m, mirroring
// Net.Enabled over the flattened arc arrays. The common case — input arcs
// only — stays on a single contiguous scan; inhibitors, capacities and
// guards divert to the slow path. The engine uses this for guarded and
// multi-server transitions and for one-off queries; unguarded single-server
// enabling is answered by the unsatisfied-condition counters.
func (c *Compiled) enabled(m Marking, t int32) bool {
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		if m[a.place] < int(a.weight) {
			return false
		}
	}
	if !c.complexEnab[t] {
		return true
	}
	return c.enabledComplex(m, t)
}

// enabledComplex checks the inhibitor, capacity and guard conditions of a
// transition whose input arcs are already satisfied.
func (c *Compiled) enabledComplex(m Marking, t int32) bool {
	for _, a := range c.inh[c.inhOff[t]:c.inhOff[t+1]] {
		if m[a.place] >= int(a.weight) {
			return false
		}
	}
	if c.hasCapOut[t] {
		for _, a := range c.out[c.outOff[t]:c.outOff[t+1]] {
			p := &c.net.Places[a.place]
			if p.Capacity > 0 {
				// Net effect on the place: outputs minus inputs consumed
				// by this same firing.
				consumed := 0
				for _, in := range c.in[c.inOff[t]:c.inOff[t+1]] {
					if in.place == a.place {
						consumed += int(in.weight)
					}
				}
				if m[a.place]-consumed+int(a.weight) > p.Capacity {
					return false
				}
			}
		}
	}
	if c.guarded[t] {
		if g := c.net.Transitions[t].Guard; g != nil && !g(m) {
			return false
		}
	}
	return true
}

// enablingDegree mirrors Net.EnablingDegree over the flattened arcs.
func (c *Compiled) enablingDegree(m Marking, t int32) int {
	if !c.enabled(m, t) {
		return 0
	}
	tr := &c.net.Transitions[t]
	if tr.Servers == 0 || tr.Servers == 1 {
		return 1
	}
	deg := -1
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		d := m[a.place] / int(a.weight)
		if deg < 0 || d < deg {
			deg = d
		}
	}
	if deg < 0 {
		deg = 1 // source transition
	}
	if tr.Servers > 1 && deg > tr.Servers {
		deg = tr.Servers
	}
	return deg
}
