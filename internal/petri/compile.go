package petri

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"repro/internal/dist"
)

// Firing-delay specializations (see Compiled.delayKind). Every shipped
// distribution has a compiled sampler kind, so the hot loop never goes
// through dist.Distribution interface dispatch; each compiled sampler draws
// the exact xrand sequence and evaluates the exact arithmetic of the
// distribution's Sample method, keeping trajectories bit-identical.
// delayKindGeneric is the fallback for user-supplied distributions (and for
// shipped ones whose parameters bypass their constructor validation, so the
// generic path's invalid-sample panic still fires).
const (
	delayKindGeneric = uint8(iota)
	delayKindExp
	delayKindDet
	delayKindUniform
	delayKindErlang
	delayKindWeibull
	delayKindHyperExp
)

// maxFusedChain bounds how many immediate firings Compile folds into one
// firing program. Chains longer than the cap (only possible when the fused
// transition re-guarantees its own enabling — a structural livelock) fall
// back to the general resolver for the remainder.
const maxFusedChain = 16

// carc is a compiled arc: a place index and multiplicity, flattened into the
// Compiled net's contiguous arc arrays for cache-friendly scanning.
type carc struct {
	place  int32
	weight int32
}

// cond is one compiled enabling condition, packed into a single word so
// the hot loop does one load per condition: when the owning place's token
// count crosses the threshold, transition t gains or loses one unsatisfied
// condition. A transition with zero unsatisfied conditions is enabled.
//
// Layout: bits 0–30 transition id, bit 31 timed flag, bits 32–62
// threshold, bit 63 form (0: unsatisfied while count < threshold — input
// arcs; 1: unsatisfied while count >= threshold — inhibitor arcs and
// capacity bounds). Since "count >= K" is the negation of "count < K", a
// condition's satisfaction flips exactly when (count < K) changes,
// independent of the form bit.
type cond uint64

const condTimedBit = cond(1) << 31

func makeCond(t int32, thresh int, geq, timed bool) cond {
	if thresh < 0 {
		// Only capacity bounds can go negative (output weight exceeding
		// the capacity); token counts are non-negative, so "count >= 0"
		// (always unsatisfied) is equivalent.
		thresh = 0
	}
	c := cond(uint32(t))
	if timed {
		c |= condTimedBit
	}
	c |= cond(uint64(uint32(thresh)&0x7fffffff) << 32)
	if geq {
		c |= cond(1) << 63
	}
	return c
}

func (c cond) transition() int32 { return int32(c & 0x7fffffff) }
func (c cond) timed() bool       { return c&condTimedBit != 0 }
func (c cond) thresh() int       { return int(uint32(c>>32) & 0x7fffffff) }
func (c cond) geq() bool         { return c>>63 != 0 }

// unsatisfied evaluates the condition against a token count.
func (c cond) unsatisfied(v int) bool { return (v < c.thresh()) != c.geq() }

// immGroup is one immediate-priority level of a compiled net.
type immGroup struct {
	priority int
	// members lists the level's immediate transitions in ascending id
	// order, matching the scan order of Net.EnabledImmediatesAtTopPriority
	// so conflict resolution draws random numbers identically.
	members []int32
}

// Compiled is the immutable, dependency-compiled form of a Net, built once
// by Compile and shared by every simulation run (and every replication
// goroutine — nothing in it is mutated after construction).
//
// It precomputes what the discrete-event engine needs per event:
//
//   - flattened input/output/inhibitor arc arrays per transition;
//   - per-transition net token deltas (self-loops cancel out), so firing
//     touches only the places whose count actually changes;
//   - per-place threshold conditions (conds): the compiled form of "which
//     transitions' enabling can change when this place's count crosses
//     which value", letting the engine maintain per-transition
//     unsatisfied-condition counters with a handful of integer compares
//     per event instead of rescanning arcs;
//   - the immediate transitions grouped by priority, highest first;
//   - the short lists of transitions that escape the counter scheme
//     (guards read arbitrary marking state, multi-server transitions need
//     their enabling degree re-derived) and are re-checked conventionally.
//
// With these, the per-event work is proportional to what the event
// changes, never to the size of the net.
type Compiled struct {
	net *Net

	// Flattened arc arrays: transition t's input arcs occupy
	// in[inOff[t]:inOff[t+1]], and likewise for outputs and inhibitors.
	in, out, inh          []carc
	inOff, outOff, inhOff []int32

	// deltas[deltaOff[t]:deltaOff[t+1]] is transition t's net marking
	// change: output minus input multiplicity per place, places with zero
	// net effect omitted, ascending by place id.
	deltas   []carc
	deltaOff []int32

	// conds[condOff[p]:condOff[p+1]] are the threshold conditions owned by
	// place p, covering the input, inhibitor and capacity conditions of
	// every unguarded transition (multi-server transitions excluded — see
	// specialTimed).
	conds   []cond
	condOff []int32

	// progs[progOff[t]:progOff[t+1]] is transition t's firing program: the
	// per-transition fusion of deltas and conds into one flat word stream
	// the engine executes per firing with zero indirection. Each record is
	// a header word — place (bits 0–30), condition count (32–47), signed
	// token delta (48–63) — followed by that place's condition words.
	//
	// When a vanishing chain is statically guaranteed to follow t's firing
	// (see buildFusedChains), the program holds the combined net delta of t
	// plus the whole chain, so the intermediate vanishing markings are never
	// materialized.
	progs   []uint64
	progOff []int32

	// fusedChain[fusedOff[t]:fusedOff[t+1]] lists the immediate transitions
	// whose firings are fused into t's program, in firing order. The engine
	// still counts their firings and vanishing-chain steps individually, so
	// throughput and livelock accounting match the unfused semantics.
	fusedChain []int32
	fusedOff   []int32

	// hasCapOut[t] reports that transition t has a capacity-bounded output
	// place, so its enabling depends on output places too.
	hasCapOut []bool
	// negPlace[p] reports that some transition can drive place p negative:
	// it holds several input arcs on p, and enabling only requires the
	// largest of them while firing consumes their sum. Token counts on such
	// places have no non-negativity floor, which invalidates the static
	// enabling guarantee behind vanishing-chain fusion (see fusionTarget).
	negPlace []bool
	// multi[t] reports multi-server firing semantics (Servers not in {0,1}).
	multi []bool
	// guarded[t] reports an attached guard predicate.
	guarded []bool
	// special[t] = multi[t] || guarded[t]: the transition is outside the
	// unsatisfied-condition counter scheme and needs a full re-check.
	special []bool
	// complexEnab[t] reports that enabling t requires more than the input
	// arc check: inhibitors, a capacity-bounded output or a guard.
	complexEnab []bool

	// timed lists the timed transitions in ascending id order.
	timed []int32
	// delayKind/delayParam/delayParam2 devirtualize the firing-delay
	// sampling: the engine switches on the kind and evaluates the exact
	// expression the distribution's Sample method would, drawing the same
	// xrand stream. Parameter packing per kind: Exp (rate, -), Det (value,
	// -), Uniform (low, high-low), Erlang (rate, K), Weibull (scale,
	// 1/shape), HyperExp (index into hypers, -). Distributions outside the
	// shipped set stay on the dist.Distribution interface (delayKindGeneric).
	delayKind   []uint8
	delayParam  []float64
	delayParam2 []float64
	// hypers holds the hyper-exponential mixtures referenced by delayParam.
	hypers []dist.HyperExponential
	// groups are the immediate-priority levels, highest priority first.
	groups []immGroup
	// groupOf[t] is the index into groups for an immediate transition and
	// -1 for a timed one.
	groupOf []int32

	// guardedImms lists the guarded immediate transitions (ascending):
	// their enabling is re-evaluated with a full check after every firing
	// that changed the marking, since a guard may read any place.
	guardedImms []int32
	// specialTimed lists the timed transitions outside the counter scheme
	// (guarded, or multi-server — whose enabling degree must be re-derived
	// every event, exactly as the scalar engine did), ascending.
	specialTimed []int32

	// timedDeps[p] and immDeps[p] list, in ascending id order, the timed
	// and immediate transitions whose enabling can be affected by a change
	// to place p — the human-readable inverse index behind conds, retained
	// for analysis and tests.
	timedDeps [][]int32
	immDeps   [][]int32

	// enginePool recycles run-ready engines (the per-run scratch state:
	// marking, timers, heap, counters, accumulators) across simulations of
	// this net, so replication sweeps reuse one engine per worker instead
	// of allocating a fresh scratch set per replication. Engines are sized
	// to this net and never migrate between compiled nets. See
	// acquireEngine/releaseEngine in sim.go.
	enginePool sync.Pool
}

// Compile validates the net and builds its compiled form. The net must not
// be structurally modified (places, transitions, arcs, guards) after
// compilation; marking state is never stored in the net, so simulating a
// compiled net concurrently from many goroutines is safe as long as guards
// are pure functions of the marking.
func Compile(n *Net) (*Compiled, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	nT := len(n.Transitions)
	nP := len(n.Places)
	c := &Compiled{
		net:         n,
		inOff:       make([]int32, nT+1),
		outOff:      make([]int32, nT+1),
		inhOff:      make([]int32, nT+1),
		deltaOff:    make([]int32, nT+1),
		hasCapOut:   make([]bool, nT),
		negPlace:    make([]bool, nP),
		multi:       make([]bool, nT),
		guarded:     make([]bool, nT),
		special:     make([]bool, nT),
		complexEnab: make([]bool, nT),
		groupOf:     make([]int32, nT),
		delayKind:   make([]uint8, nT),
		delayParam:  make([]float64, nT),
		delayParam2: make([]float64, nT),
		timedDeps:   make([][]int32, nP),
		immDeps:     make([][]int32, nP),
	}

	for i := range n.Transitions {
		tr := &n.Transitions[i]
		for _, a := range tr.Inputs {
			c.in = append(c.in, carc{int32(a.Place), int32(a.Weight)})
		}
		for _, a := range tr.Outputs {
			c.out = append(c.out, carc{int32(a.Place), int32(a.Weight)})
			if n.Places[a.Place].Capacity > 0 {
				c.hasCapOut[i] = true
			}
		}
		for _, a := range tr.Inhibitors {
			c.inh = append(c.inh, carc{int32(a.Place), int32(a.Weight)})
		}
		c.inOff[i+1] = int32(len(c.in))
		c.outOff[i+1] = int32(len(c.out))
		c.inhOff[i+1] = int32(len(c.inh))
		c.multi[i] = tr.Servers != 0 && tr.Servers != 1
		c.guarded[i] = tr.Guard != nil
		c.special[i] = c.multi[i] || c.guarded[i]
		c.complexEnab[i] = c.hasCapOut[i] || c.guarded[i] || len(tr.Inhibitors) > 0
		c.groupOf[i] = -1
		if tr.Kind == Timed {
			c.timed = append(c.timed, int32(i))
			if c.multi[i] || c.guarded[i] {
				c.specialTimed = append(c.specialTimed, int32(i))
			}
			c.compileSampler(i, tr.Delay)
		} else if c.guarded[i] {
			c.guardedImms = append(c.guardedImms, int32(i))
		}

		// Duplicate input arcs on one place consume their sum while
		// enabling only checks each arc alone, so firing can take the
		// place negative; record that (see negPlace).
		maxIn := map[int32]int32{}
		sumIn := map[int32]int32{}
		for _, a := range tr.Inputs {
			p, w := int32(a.Place), int32(a.Weight)
			if w > maxIn[p] {
				maxIn[p] = w
			}
			sumIn[p] += w
		}
		for p, sum := range sumIn {
			if sum > maxIn[p] {
				c.negPlace[p] = true
			}
		}

		// Net marking deltas, ascending by place.
		net := map[int32]int32{}
		for _, a := range tr.Inputs {
			net[int32(a.Place)] -= int32(a.Weight)
		}
		for _, a := range tr.Outputs {
			net[int32(a.Place)] += int32(a.Weight)
		}
		var places []int32
		for p, d := range net {
			if d != 0 {
				places = append(places, p)
			}
		}
		slices.Sort(places)
		for _, p := range places {
			c.deltas = append(c.deltas, carc{p, net[p]})
		}
		c.deltaOff[i+1] = int32(len(c.deltas))
	}

	// Immediate-priority groups, highest priority first, members ascending.
	byPriority := make(map[int][]int32)
	var priorities []int
	for i := range n.Transitions {
		if n.Transitions[i].Kind != Immediate {
			continue
		}
		p := n.Transitions[i].Priority
		if _, seen := byPriority[p]; !seen {
			priorities = append(priorities, p)
		}
		byPriority[p] = append(byPriority[p], int32(i))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(priorities)))
	for _, p := range priorities {
		c.groups = append(c.groups, immGroup{priority: p, members: byPriority[p]})
	}
	for gi, g := range c.groups {
		for _, t := range g.members {
			c.groupOf[t] = int32(gi)
		}
	}

	c.buildConditions(nP)
	c.buildDeps(nP)
	c.buildFusedChains(nT)
	if err := c.buildPrograms(nT); err != nil {
		return nil, err
	}
	return c, nil
}

// compileSampler records the devirtualized sampler kind and parameters of a
// timed transition's delay distribution. Parameters that would bypass the
// shipped constructors' validation (and so could sample negative or NaN
// delays) keep the generic interface path, whose runtime check still fires.
func (c *Compiled) compileSampler(i int, delay dist.Distribution) {
	switch d := delay.(type) {
	case dist.Exponential:
		if !(d.Rate > 0) {
			return
		}
		c.delayKind[i], c.delayParam[i] = delayKindExp, d.Rate
	case dist.Deterministic:
		if !(d.Value >= 0) {
			return
		}
		c.delayKind[i], c.delayParam[i] = delayKindDet, d.Value
	case dist.Uniform:
		if !(d.Low >= 0 && d.High > d.Low) || math.IsInf(d.High, 1) {
			// An infinite High sneaks past NewUniform; its span times a
			// zero draw is NaN, which only the generic path's check
			// catches.
			return
		}
		// Sample is Low + (High-Low)*U; the span is a deterministic float
		// subtraction, so precomputing it preserves bit-exactness.
		c.delayKind[i] = delayKindUniform
		c.delayParam[i], c.delayParam2[i] = d.Low, d.High-d.Low
	case dist.Erlang:
		if d.K < 1 || !(d.Rate > 0) {
			return
		}
		c.delayKind[i] = delayKindErlang
		c.delayParam[i], c.delayParam2[i] = d.Rate, float64(d.K)
	case dist.Weibull:
		if !(d.Shape > 0 && d.Scale > 0) {
			return
		}
		c.delayKind[i] = delayKindWeibull
		c.delayParam[i], c.delayParam2[i] = d.Scale, 1/d.Shape
	case dist.HyperExponential:
		if len(d.Probs) == 0 || len(d.Probs) != len(d.Rates) {
			return
		}
		sum := 0.0
		for j, p := range d.Probs {
			if !(p >= 0) || !(d.Rates[j] > 0) {
				return
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return
		}
		c.delayKind[i] = delayKindHyperExp
		c.delayParam[i] = float64(len(c.hypers))
		c.hypers = append(c.hypers, d)
	}
}

// fusionTarget returns the only immediate transition eligible as a fused
// vanishing-chain step, or -1. Eligibility is structural: the transition is
// the sole member of the highest immediate priority level (so whenever it is
// enabled it fires next, with no weighted conflict draw), it is unguarded,
// and its enabling depends on input arcs alone (no inhibitors, no
// capacity-bounded outputs) — the only conditions a chain's accumulated
// token deltas can statically guarantee. The guarantee "chain delta ≥ arc
// weight implies enabled" additionally needs the input places' token counts
// to have a non-negativity floor, which duplicate-input-arc transitions
// break (negPlace); such targets are refused.
func (c *Compiled) fusionTarget() int32 {
	if len(c.groups) == 0 || len(c.groups[0].members) != 1 {
		return -1
	}
	t := c.groups[0].members[0]
	if c.guarded[t] || c.hasCapOut[t] || c.inhOff[t+1] > c.inhOff[t] {
		return -1
	}
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		if c.negPlace[a.place] {
			return -1
		}
	}
	return t
}

// buildFusedChains detects, per transition, the vanishing-chain prefix that
// is certain to follow its firing and records it for program fusion. A chain
// step is certain when the accumulated net delta of the parent plus the
// chain so far guarantees every input of the fusion target regardless of the
// surrounding marking (token counts are non-negative, so delta >= weight
// implies enough tokens). Because the target is the highest-priority
// immediate and has no conflict partners, the resolver would fire exactly
// this sequence with no RNG draws; fusing it is therefore bit-exact.
func (c *Compiled) buildFusedChains(nT int) {
	c.fusedOff = make([]int32, nT+1)
	target := c.fusionTarget()
	if target < 0 {
		return
	}
	tIn := c.in[c.inOff[target]:c.inOff[target+1]]
	tDelta := c.deltas[c.deltaOff[target]:c.deltaOff[target+1]]
	acc := make(map[int32]int32)
	for t := 0; t < nT; t++ {
		clear(acc)
		for _, d := range c.deltas[c.deltaOff[t]:c.deltaOff[t+1]] {
			acc[d.place] = d.weight
		}
		for steps := 0; steps < maxFusedChain; steps++ {
			guaranteed := true
			for _, a := range tIn {
				if acc[a.place] < a.weight {
					guaranteed = false
					break
				}
			}
			if !guaranteed {
				break
			}
			c.fusedChain = append(c.fusedChain, target)
			for _, d := range tDelta {
				acc[d.place] += d.weight
			}
		}
		c.fusedOff[t+1] = int32(len(c.fusedChain))
	}
}

// FusedChain returns the immediate transitions fused into transition t's
// firing program, in firing order, or nil when the firing is unfused.
func (c *Compiled) FusedChain(t TransitionID) []TransitionID {
	chain := c.fusedChain[c.fusedOff[t]:c.fusedOff[t+1]]
	if len(chain) == 0 {
		return nil
	}
	out := make([]TransitionID, len(chain))
	for i, f := range chain {
		out[i] = TransitionID(f)
	}
	return out
}

// buildPrograms fuses each transition's net deltas — combined with the
// deltas of its fused vanishing chain, places with zero net effect omitted —
// with the affected places' conditions into a flat firing program.
func (c *Compiled) buildPrograms(nT int) error {
	c.progOff = make([]int32, nT+1)
	comb := make(map[int32]int32)
	var places []int32
	for t := 0; t < nT; t++ {
		clear(comb)
		places = places[:0]
		addDeltas := func(id int32) {
			for _, d := range c.deltas[c.deltaOff[id]:c.deltaOff[id+1]] {
				if _, seen := comb[d.place]; !seen {
					places = append(places, d.place)
				}
				comb[d.place] += d.weight
			}
		}
		addDeltas(int32(t))
		for _, f := range c.fusedChain[c.fusedOff[t]:c.fusedOff[t+1]] {
			addDeltas(f)
		}
		slices.Sort(places)
		for _, p := range places {
			w := comb[p]
			if w == 0 {
				continue
			}
			if w < -32768 || w > 32767 {
				return fmt.Errorf("petri: net token delta %d of transition %q exceeds the compiled engine's ±32767 range", w, c.net.Transitions[t].Name)
			}
			cs := c.conds[c.condOff[p]:c.condOff[p+1]]
			if len(cs) > 65535 {
				return fmt.Errorf("petri: place %q has %d enabling conditions, exceeding the compiled engine's 65535-per-place limit", c.net.Places[p].Name, len(cs))
			}
			header := uint64(uint32(p)) |
				uint64(uint16(len(cs)))<<32 |
				uint64(uint16(int16(w)))<<48
			c.progs = append(c.progs, header)
			for _, cd := range cs {
				c.progs = append(c.progs, uint64(cd))
			}
		}
		c.progOff[t+1] = int32(len(c.progs))
	}
	return nil
}

// buildConditions compiles the per-place threshold conditions for every
// unguarded, non-multi-server transition. Guards (arbitrary marking
// predicates) and multi-server transitions (degree, not just enabling) are
// handled by full re-checks via guardedImms/specialTimed instead.
func (c *Compiled) buildConditions(nP int) {
	n := c.net
	perPlace := make([][]cond, nP)
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if c.guarded[i] || (tr.Kind == Timed && c.multi[i]) {
			continue
		}
		timed := tr.Kind == Timed
		for _, a := range tr.Inputs {
			perPlace[a.Place] = append(perPlace[a.Place],
				makeCond(int32(i), a.Weight, false, timed))
		}
		for _, a := range tr.Inhibitors {
			perPlace[a.Place] = append(perPlace[a.Place],
				makeCond(int32(i), a.Weight, true, timed))
		}
		if c.hasCapOut[i] {
			for _, a := range tr.Outputs {
				capacity := n.Places[a.Place].Capacity
				if capacity <= 0 {
					continue
				}
				consumed := 0
				for _, in := range tr.Inputs {
					if in.Place == a.Place {
						consumed += in.Weight
					}
				}
				// Unsatisfied iff m - consumed + w > capacity, i.e.
				// m >= capacity + consumed - w + 1.
				perPlace[a.Place] = append(perPlace[a.Place],
					makeCond(int32(i), capacity+consumed-a.Weight+1, true, timed))
			}
		}
	}
	c.condOff = make([]int32, nP+1)
	for p, cs := range perPlace {
		c.conds = append(c.conds, cs...)
		c.condOff[p+1] = int32(len(c.conds))
	}
}

// buildDeps derives the place → dependent-transitions inverse index.
func (c *Compiled) buildDeps(nP int) {
	n := c.net
	addDep := func(p PlaceID, t int) {
		deps := &c.timedDeps
		if n.Transitions[t].Kind == Immediate {
			deps = &c.immDeps
		}
		l := (*deps)[p]
		if len(l) > 0 && l[len(l)-1] == int32(t) {
			return
		}
		(*deps)[p] = append(l, int32(t))
	}
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if tr.Guard != nil {
			// A guard can read the whole marking: conservatively depend on
			// every place.
			for p := 0; p < nP; p++ {
				addDep(PlaceID(p), i)
			}
			continue
		}
		for _, a := range tr.Inputs {
			addDep(a.Place, i)
		}
		for _, a := range tr.Inhibitors {
			addDep(a.Place, i)
		}
		if c.hasCapOut[i] {
			for _, a := range tr.Outputs {
				if n.Places[a.Place].Capacity > 0 {
					addDep(a.Place, i)
				}
			}
		}
	}
	for p := 0; p < nP; p++ {
		c.timedDeps[p] = dedupSorted(c.timedDeps[p])
		c.immDeps[p] = dedupSorted(c.immDeps[p])
	}
}

// MustCompile is Compile that panics on error, for nets known to be valid.
func MustCompile(n *Net) *Compiled {
	c, err := Compile(n)
	if err != nil {
		panic(err)
	}
	return c
}

// Net returns the net this compiled form was built from.
func (c *Compiled) Net() *Net { return c.net }

// dedupSorted removes duplicates from an ascending slice in place.
func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// enabled reports whether transition t may fire in marking m, mirroring
// Net.Enabled over the flattened arc arrays. The common case — input arcs
// only — stays on a single contiguous scan; inhibitors, capacities and
// guards divert to the slow path. The engine uses this for guarded and
// multi-server transitions and for one-off queries; unguarded single-server
// enabling is answered by the unsatisfied-condition counters.
func (c *Compiled) enabled(m Marking, t int32) bool {
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		if m[a.place] < int(a.weight) {
			return false
		}
	}
	if !c.complexEnab[t] {
		return true
	}
	return c.enabledComplex(m, t)
}

// enabledComplex checks the inhibitor, capacity and guard conditions of a
// transition whose input arcs are already satisfied.
func (c *Compiled) enabledComplex(m Marking, t int32) bool {
	for _, a := range c.inh[c.inhOff[t]:c.inhOff[t+1]] {
		if m[a.place] >= int(a.weight) {
			return false
		}
	}
	if c.hasCapOut[t] {
		for _, a := range c.out[c.outOff[t]:c.outOff[t+1]] {
			p := &c.net.Places[a.place]
			if p.Capacity > 0 {
				// Net effect on the place: outputs minus inputs consumed
				// by this same firing.
				consumed := 0
				for _, in := range c.in[c.inOff[t]:c.inOff[t+1]] {
					if in.place == a.place {
						consumed += int(in.weight)
					}
				}
				if m[a.place]-consumed+int(a.weight) > p.Capacity {
					return false
				}
			}
		}
	}
	if c.guarded[t] {
		if g := c.net.Transitions[t].Guard; g != nil && !g(m) {
			return false
		}
	}
	return true
}

// enablingDegree mirrors Net.EnablingDegree over the flattened arcs.
func (c *Compiled) enablingDegree(m Marking, t int32) int {
	if !c.enabled(m, t) {
		return 0
	}
	tr := &c.net.Transitions[t]
	if tr.Servers == 0 || tr.Servers == 1 {
		return 1
	}
	deg := -1
	for _, a := range c.in[c.inOff[t]:c.inOff[t+1]] {
		d := m[a.place] / int(a.weight)
		if deg < 0 || d < deg {
			deg = d
		}
	}
	if deg < 0 {
		deg = 1 // source transition
	}
	if tr.Servers > 1 && deg > tr.Servers {
		deg = tr.Servers
	}
	return deg
}
