package petri

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/xrand"
)

// compileTestNet covers every enabling feature the compiler indexes:
// capacity bounds, inhibitors, guards, multi-server semantics, several
// immediate priorities and a transition with multiple arcs on one place.
func compileTestNet() *Net {
	n := NewNet("compile-test")
	a := n.AddPlaceInit("A", 2)
	b := n.AddPlace("B")
	n.SetCapacity(b, 3)
	c := n.AddPlace("C")
	d := n.AddPlaceInit("D", 1)

	t0 := n.AddTimed("T0", dist.NewExponential(1))
	n.Input(t0, a, 1)
	n.Output(t0, b, 1)
	n.SetInfiniteServer(t0)

	t1 := n.AddTimed("T1", dist.NewDeterministic(0.5))
	n.Input(t1, b, 1)
	n.Output(t1, a, 1)
	n.Inhibitor(t1, c, 2)

	t2 := n.AddTimed("T2", dist.NewExponential(2))
	n.Input(t2, d, 1)
	n.Output(t2, d, 1)
	n.SetGuard(t2, func(m Marking) bool { return m[c] == 0 })

	i0 := n.AddImmediate("I0", 3)
	n.Input(i0, b, 2)
	n.Output(i0, c, 1)

	i1 := n.AddImmediate("I1", 1)
	n.Input(i1, c, 1)
	n.SetGuard(i1, func(m Marking) bool { return m[a] > 0 })

	i2 := n.AddImmediate("I2", 1)
	n.Input(i2, c, 1)
	n.Output(i2, a, 1)
	n.SetWeight(i2, 4)
	return n
}

// randomMarkings draws markings with 0..4 tokens per place, clipped to the
// place capacity so they are reachable-shaped.
func randomMarkings(n *Net, count int, seed uint64) []Marking {
	rng := xrand.New(seed)
	ms := make([]Marking, count)
	for i := range ms {
		m := make(Marking, len(n.Places))
		for p := range m {
			m[p] = int(rng.Uint64() % 5)
			if cap := n.Places[p].Capacity; cap > 0 && m[p] > cap {
				m[p] = cap
			}
		}
		ms[i] = m
	}
	return ms
}

// TestCompiledEnablingMatchesNet checks the compiled enabling predicate and
// enabling degree against the exported Net methods on random markings.
func TestCompiledEnablingMatchesNet(t *testing.T) {
	n := compileTestNet()
	c := MustCompile(n)
	for _, m := range randomMarkings(n, 500, 11) {
		for i := range n.Transitions {
			if got, want := c.enabled(m, int32(i)), n.Enabled(m, TransitionID(i)); got != want {
				t.Fatalf("marking %v transition %s: compiled enabled=%v, Net=%v", m, n.Transitions[i].Name, got, want)
			}
			if got, want := c.enablingDegree(m, int32(i)), n.EnablingDegree(m, TransitionID(i)); got != want {
				t.Fatalf("marking %v transition %s: compiled degree=%d, Net=%d", m, n.Transitions[i].Name, got, want)
			}
		}
	}
}

// TestCompiledGroupsMatchEnabledImmediatesAtTopPriority checks that picking
// the first live compiled priority group reproduces the exported reference
// method — the engine's conflict sets are exactly the old ones.
func TestCompiledGroupsMatchEnabledImmediatesAtTopPriority(t *testing.T) {
	n := compileTestNet()
	c := MustCompile(n)
	for _, m := range randomMarkings(n, 500, 23) {
		want := n.EnabledImmediatesAtTopPriority(m)
		var got []TransitionID
		for _, g := range c.groups {
			for _, tr := range g.members {
				if c.enabled(m, tr) {
					got = append(got, TransitionID(tr))
				}
			}
			if len(got) > 0 {
				break
			}
		}
		if len(got) != len(want) {
			t.Fatalf("marking %v: compiled conflict set %v, want %v", m, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("marking %v: compiled conflict set %v, want %v", m, got, want)
			}
		}
	}
}

// TestCompileDependencyIndex spot-checks the inverse index: a place's
// dependents must include every transition with an input, inhibitor or
// capacity-bounded output on it, and guarded transitions everywhere.
func TestCompileDependencyIndex(t *testing.T) {
	n := compileTestNet()
	c := MustCompile(n)
	has := func(deps []int32, id TransitionID) bool {
		for _, d := range deps {
			if d == int32(id) {
				return true
			}
		}
		return false
	}
	t0, _ := n.TransitionByName("T0")
	t1, _ := n.TransitionByName("T1")
	t2, _ := n.TransitionByName("T2")
	i1, _ := n.TransitionByName("I1")
	a, _ := n.PlaceByName("A")
	b, _ := n.PlaceByName("B")
	d, _ := n.PlaceByName("D")

	if !has(c.timedDeps[a], t0) {
		t.Error("A must affect T0 (input arc)")
	}
	// B is capacity-bounded, so producing into it affects T0's enabling.
	if !has(c.timedDeps[b], t0) {
		t.Error("B must affect T0 (capacity-bounded output)")
	}
	if !has(c.timedDeps[b], t1) {
		t.Error("B must affect T1 (input arc)")
	}
	// T2 is guarded: it must depend on every place.
	for p := range n.Places {
		if !has(c.timedDeps[p], t2) {
			t.Errorf("place %s must affect guarded T2", n.Places[p].Name)
		}
		if !has(c.immDeps[p], i1) {
			t.Errorf("place %s must affect guarded I1", n.Places[p].Name)
		}
	}
	// D only affects T2 among unguarded... T2 is guarded; no other timed
	// transition touches D, so its timed deps are exactly {T2}.
	if len(c.timedDeps[d]) != 1 || c.timedDeps[d][0] != int32(t2) {
		t.Errorf("timedDeps[D] = %v, want [%d]", c.timedDeps[d], t2)
	}
}

// TestCompileRejectsInvalidNet preserves the validation contract of the
// old Simulate entry point.
func TestCompileRejectsInvalidNet(t *testing.T) {
	n := NewNet("empty")
	if _, err := Compile(n); err == nil {
		t.Fatal("Compile accepted a net with no places")
	}
}

// TestEngineSteadyStateAllocationFree asserts the core promise of the
// compiled engine: once warmed up, advancing the simulation does not
// allocate.
func TestEngineSteadyStateAllocationFree(t *testing.T) {
	n := compileTestNet()
	c := MustCompile(n)
	e, err := c.acquireEngine(nil, SimOptions{Seed: 5, Duration: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.releaseEngine(e)
	if err := e.start(); err != nil {
		t.Fatal(err)
	}
	step := func() {
		ft, id := e.nextTimed()
		if id < 0 {
			t.Fatal("net deadlocked unexpectedly")
		}
		e.advanceTo(ft)
		if err := e.fireTimed(int32(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the scratch buffers, then measure.
	for i := 0; i < 100; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(2000, step)
	if allocs > 0 {
		t.Fatalf("steady-state event loop allocates %.2f allocs/event, want 0", allocs)
	}
}
