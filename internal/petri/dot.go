package petri

import (
	"fmt"
	"strings"
)

// DOT renders the net in Graphviz format: places as circles (labelled with
// initial tokens), immediate transitions as thin bars, timed transitions as
// boxes annotated with their delay distribution, and inhibitor arcs with
// circle arrowheads.
func DOT(n *Net) string {
	return dot(n, nil)
}

// DOT renders the compiled net, additionally marking vanishing-chain fusion
// so exported graphs stay debuggable when the engine never materializes the
// intermediate markings: a transition whose program absorbed a fused chain
// is annotated "+ fuses T×k", and the absorbed immediate is drawn dashed
// with a "(fused)" note. The graph structure (nodes and arcs) is identical
// to DOT(c.Net()).
func (c *Compiled) DOT() string {
	n := c.net
	fusedInto := make(map[int32]bool)
	note := make([]string, len(n.Transitions))
	for t := range n.Transitions {
		chain := c.fusedChain[c.fusedOff[t]:c.fusedOff[t+1]]
		if len(chain) == 0 {
			continue
		}
		fusedInto[chain[0]] = true
		label := n.Transitions[chain[0]].Name
		if len(chain) > 1 {
			label = fmt.Sprintf("%s×%d", label, len(chain))
		}
		note[t] = fmt.Sprintf(" + fuses %s", label)
	}
	return dot(n, func(t int, attrs []string) ([]string, string) {
		if !fusedInto[int32(t)] {
			return attrs, note[t]
		}
		for i, a := range attrs {
			if a == "style=filled" {
				attrs[i] = `style="filled,dashed"`
				return attrs, " (fused)"
			}
		}
		return append(attrs, "style=dashed"), " (fused)"
	})
}

// dot is the shared renderer. annotate, when non-nil, may extend a
// transition's attribute list and append a suffix to its visible label.
func dot(n *Net, annotate func(t int, attrs []string) ([]string, string)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for i, p := range n.Places {
		label := p.Name
		if p.Initial > 0 {
			label = fmt.Sprintf("%s\\n●×%d", p.Name, p.Initial)
		}
		fmt.Fprintf(&b, "  p%d [shape=circle, label=\"%s\"];\n", i, label)
	}
	for i, t := range n.Transitions {
		var attrs []string
		var label string
		switch t.Kind {
		case Immediate:
			attrs = append(attrs,
				"shape=box", "style=filled", "fillcolor=black",
				"height=0.1", "width=0.4", "label=\"\"")
			label = fmt.Sprintf("%s (prio %d)", t.Name, t.Priority)
		default:
			label = fmt.Sprintf("%s\\n%s", t.Name, t.Delay)
		}
		suffix := ""
		if annotate != nil {
			attrs, suffix = annotate(i, attrs)
		}
		if t.Kind == Immediate {
			fmt.Fprintf(&b, "  t%d [%s, xlabel=\"%s%s\"];\n", i, strings.Join(attrs, ", "), label, suffix)
		} else if len(attrs) > 0 {
			fmt.Fprintf(&b, "  t%d [shape=box, %s, label=\"%s%s\"];\n", i, strings.Join(attrs, ", "), label, suffix)
		} else {
			fmt.Fprintf(&b, "  t%d [shape=box, label=\"%s%s\"];\n", i, label, suffix)
		}
	}
	for ti := range n.Transitions {
		t := &n.Transitions[ti]
		for _, a := range t.Inputs {
			fmt.Fprintf(&b, "  p%d -> t%d%s;\n", a.Place, ti, weightAttr(a.Weight, ""))
		}
		for _, a := range t.Outputs {
			fmt.Fprintf(&b, "  t%d -> p%d%s;\n", ti, a.Place, weightAttr(a.Weight, ""))
		}
		for _, a := range t.Inhibitors {
			fmt.Fprintf(&b, "  p%d -> t%d%s;\n", a.Place, ti, weightAttr(a.Weight, "arrowhead=odot"))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func weightAttr(w int, extra string) string {
	var attrs []string
	if w != 1 {
		attrs = append(attrs, fmt.Sprintf("label=\"%d\"", w))
	}
	if extra != "" {
		attrs = append(attrs, extra)
	}
	if len(attrs) == 0 {
		return ""
	}
	return " [" + strings.Join(attrs, ", ") + "]"
}
