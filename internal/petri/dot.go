package petri

import (
	"fmt"
	"strings"
)

// DOT renders the net in Graphviz format: places as circles (labelled with
// initial tokens), immediate transitions as thin bars, timed transitions as
// boxes annotated with their delay distribution, and inhibitor arcs with
// circle arrowheads.
func DOT(n *Net) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", n.Name)
	for i, p := range n.Places {
		label := p.Name
		if p.Initial > 0 {
			label = fmt.Sprintf("%s\\n●×%d", p.Name, p.Initial)
		}
		fmt.Fprintf(&b, "  p%d [shape=circle, label=\"%s\"];\n", i, label)
	}
	for i, t := range n.Transitions {
		switch t.Kind {
		case Immediate:
			fmt.Fprintf(&b, "  t%d [shape=box, style=filled, fillcolor=black, height=0.1, width=0.4, label=\"\", xlabel=\"%s (prio %d)\"];\n",
				i, t.Name, t.Priority)
		default:
			fmt.Fprintf(&b, "  t%d [shape=box, label=\"%s\\n%s\"];\n", i, t.Name, t.Delay)
		}
	}
	for ti := range n.Transitions {
		t := &n.Transitions[ti]
		for _, a := range t.Inputs {
			fmt.Fprintf(&b, "  p%d -> t%d%s;\n", a.Place, ti, weightAttr(a.Weight, ""))
		}
		for _, a := range t.Outputs {
			fmt.Fprintf(&b, "  t%d -> p%d%s;\n", ti, a.Place, weightAttr(a.Weight, ""))
		}
		for _, a := range t.Inhibitors {
			fmt.Fprintf(&b, "  p%d -> t%d%s;\n", a.Place, ti, weightAttr(a.Weight, "arrowhead=odot"))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func weightAttr(w int, extra string) string {
	var attrs []string
	if w != 1 {
		attrs = append(attrs, fmt.Sprintf("label=\"%d\"", w))
	}
	if extra != "" {
		attrs = append(attrs, extra)
	}
	if len(attrs) == 0 {
		return ""
	}
	return " [" + strings.Join(attrs, ", ") + "]"
}
