package petri

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// negativeDist is a deliberately broken distribution used to verify the
// engine's sampling contract.
type negativeDist struct{}

func (negativeDist) Sample(*xrand.Rand) float64 { return -1 }
func (negativeDist) Mean() float64              { return -1 }
func (negativeDist) Var() float64               { return 0 }
func (negativeDist) String() string             { return "Negative" }

func TestEngineRejectsNegativeDelaySamples(t *testing.T) {
	n := NewNet("broken")
	a := n.AddPlaceInit("A", 1)
	tr := n.AddTimed("T", negativeDist{})
	n.Input(tr, a, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay sample did not panic")
		}
	}()
	_, _ = Simulate(n, SimOptions{Seed: 1, Duration: 10})
}

func TestZeroDelayDeterministicFiresImmediately(t *testing.T) {
	n := NewNet("zero")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	tr := n.AddDeterministic("T", 0)
	n.Input(tr, a, 1)
	n.Output(tr, b, 1)
	res, err := Simulate(n, SimOptions{Seed: 1, Duration: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceAvg[a] != 0 || res.PlaceAvg[b] != 1 {
		t.Fatalf("zero-delay transition left averages A=%v B=%v", res.PlaceAvg[a], res.PlaceAvg[b])
	}
}

func TestSimultaneousDeterministicTieBreaksByIndex(t *testing.T) {
	// Two Det(1) transitions compete for one token; the engine breaks the
	// tie deterministically by transition index, so T1 always wins.
	n := NewNet("tie")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	c := n.AddPlace("C")
	t1 := n.AddDeterministic("T1", 1)
	n.Input(t1, a, 1)
	n.Output(t1, b, 1)
	t2 := n.AddDeterministic("T2", 1)
	n.Input(t2, a, 1)
	n.Output(t2, c, 1)
	for seed := uint64(0); seed < 5; seed++ {
		res, err := Simulate(n, SimOptions{Seed: seed, Duration: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalMarking[b] != 1 || res.FinalMarking[c] != 0 {
			t.Fatalf("seed %d: tie broken nondeterministically: %v", seed, res.FinalMarking)
		}
	}
}

func TestGuardHonoredDuringSimulation(t *testing.T) {
	// T moves tokens A -> B but its guard blocks until A has >= 3 tokens;
	// the feeder adds one token per second, so T first fires after the
	// third arrival and then drains while A stays >= 3.
	n := NewNet("guarded")
	a := n.AddPlace("A")
	b := n.AddPlace("B")
	feeder := n.AddDeterministic("Feed", 1)
	n.Output(feeder, a, 1)
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 1)
	n.Output(tr, b, 1)
	n.SetGuard(tr, func(m Marking) bool { return m[a] >= 3 })
	res, err := Simulate(n, SimOptions{Seed: 1, Duration: 10.5})
	if err != nil {
		t.Fatal(err)
	}
	// Feeds at t=1..10 (10 tokens). The guard lets T fire exactly when A
	// reaches 3, dropping it to 2 again; so B collects feeds 3..10 = 8.
	if res.FinalMarking[b] != 8 {
		t.Fatalf("guarded flow: B = %d, want 8 (marking %v)", res.FinalMarking[b], res.FinalMarking)
	}
	if res.FinalMarking[a] != 2 {
		t.Fatalf("A = %d, want 2", res.FinalMarking[a])
	}
}

func TestEventExactlyAtWarmupBoundary(t *testing.T) {
	// A deterministic firing at exactly t == warmup belongs to the
	// measured window (the marking after it is what gets measured).
	n := NewNet("boundary")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	tr := n.AddDeterministic("T", 2)
	n.Input(tr, a, 1)
	n.Output(tr, b, 1)
	res, err := Simulate(n, SimOptions{Seed: 1, Warmup: 2, Duration: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceAvg[b] != 1 {
		t.Fatalf("B average = %v, want 1 (event at warmup boundary measured)", res.PlaceAvg[b])
	}
	trID, _ := n.TransitionByName("T")
	if res.Firings[trID] != 1 {
		t.Fatalf("boundary firing counted %d times, want 1", res.Firings[trID])
	}
}

func TestArcMultiplicityBatchService(t *testing.T) {
	// A transition consuming 3 tokens per firing models batch service:
	// with arrivals every 1 s and batches of 3, throughput is 1/3 of the
	// arrival rate.
	n := NewNet("batch")
	q := n.AddPlace("Q")
	done := n.AddPlace("Done")
	arr := n.AddDeterministic("Arr", 1)
	n.Output(arr, q, 1)
	batch := n.AddImmediate("Batch", 1)
	n.Input(batch, q, 3)
	n.Output(batch, done, 1)
	res, err := Simulate(n, SimOptions{Seed: 1, Duration: 30.5})
	if err != nil {
		t.Fatal(err)
	}
	batchID, _ := n.TransitionByName("Batch")
	arrID, _ := n.TransitionByName("Arr")
	if res.Firings[arrID] != 30 {
		t.Fatalf("arrivals = %d, want 30", res.Firings[arrID])
	}
	if res.Firings[batchID] != 10 {
		t.Fatalf("batches = %d, want 10", res.Firings[batchID])
	}
}

// TestRaceAgeExponentialStatisticallyEquivalent: for exponential delays the
// memory policy must not matter (memorylessness); verify on the M/M/1 net.
func TestRaceAgeExponentialStatisticallyEquivalent(t *testing.T) {
	n1 := mm1Net(1, 5)
	r1, err := Simulate(n1, SimOptions{Seed: 77, Warmup: 100, Duration: 20000, Memory: RaceEnable})
	if err != nil {
		t.Fatal(err)
	}
	n2 := mm1Net(1, 5)
	r2, err := Simulate(n2, SimOptions{Seed: 78, Warmup: 100, Duration: 20000, Memory: RaceAge})
	if err != nil {
		t.Fatal(err)
	}
	busy1 := r1.PlaceAvgByName(n1, "ServerBusy")
	busy2 := r2.PlaceAvgByName(n2, "ServerBusy")
	if math.Abs(busy1-busy2) > 0.01 {
		t.Fatalf("memory policy changed exponential statistics: %v vs %v", busy1, busy2)
	}
}

// TestLargeMarkingStress pushes thousands of tokens through weighted arcs
// to shake out integer handling in the hot path.
func TestLargeMarkingStress(t *testing.T) {
	n := NewNet("stress")
	src := n.AddPlaceInit("Src", 100000)
	dst := n.AddPlace("Dst")
	tr := n.AddExponential("T", 1000)
	n.Input(tr, src, 10)
	n.Output(tr, dst, 10)
	res, err := Simulate(n, SimOptions{Seed: 5, Duration: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalMarking[src]+res.FinalMarking[dst] != 100000 {
		t.Fatalf("tokens lost: %v", res.FinalMarking)
	}
	trID, _ := n.TransitionByName("T")
	if res.Firings[trID] == 0 {
		t.Fatal("no firings under stress")
	}
}

// TestManyTransitionsPerformanceSanity builds a 100-transition ring and
// checks the engine still terminates promptly and conserves its token.
func TestManyTransitionsRing(t *testing.T) {
	n := NewNet("bigring")
	const k = 100
	places := make([]PlaceID, k)
	for i := 0; i < k; i++ {
		if i == 0 {
			places[i] = n.AddPlaceInit("P0", 1)
		} else {
			places[i] = n.AddPlace("P" + string(rune('A'+i%26)) + itoa(i))
		}
	}
	for i := 0; i < k; i++ {
		tr := n.AddExponential("T"+itoa(i), 10)
		n.Input(tr, places[i], 1)
		n.Output(tr, places[(i+1)%k], 1)
	}
	res, err := Simulate(n, SimOptions{Seed: 9, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, avg := range res.PlaceAvg {
		total += avg
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("ring token not conserved: total average %v", total)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
