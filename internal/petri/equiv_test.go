package petri_test

// Equivalence tests for the compiled-net engine: the dependency-compiled,
// heap-scheduled, allocation-free fast path must reproduce the scalar
// engine's results bit for bit — same RNG draw order, same event sequence,
// same accumulator arithmetic — on every shipped net, at several seeds, and
// under both memory policies.
//
// refSimulate below is a verbatim port of the pre-compilation engine
// (rescan-all syncTimers, linear-scan nextTimed, allocating
// EnabledImmediatesAtTopPriority), kept as the executable specification of
// the old-path semantics. The golden tables further down pin a subset of
// its outputs to literal values, so the reference copy and the fast path
// cannot drift together unnoticed.
//
// One deliberate caveat on "bit for bit": the goldens were captured from
// the scalar engine loop *after* stats.TimeWeighted.Set gained its
// lazy-integration early return (same PR). That change shifts time-average
// sums by last-ulp amounts relative to the pre-PR binary — integrating a
// constant stretch as one product instead of many — and is exactly what
// makes update-only-what-changed statistics reproducible. Equivalence here
// therefore means: identical trajectories (every RNG draw, firing, and
// marking) and identical accumulator arithmetic under the current stats
// semantics, not cross-version bit-stability of the last float ulp.

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/petri"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// ---------------------------------------------------------------------------
// Reference engine (pre-refactor semantics, exported-API port)

type refEngine struct {
	net     *petri.Net
	opt     petri.SimOptions
	rng     *xrand.Rand
	marking petri.Marking
	now     float64
	fireAt  []float64
	remain  []float64
	degree  []int

	measuring bool
	placeAcc  []stats.TimeWeighted
	busyAcc   []stats.TimeWeighted
	firings   []uint64
}

// refSimulate is the old petri.Simulate: validate, build scalar state, run.
func refSimulate(n *petri.Net, opt petri.SimOptions) (*petri.SimResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opt.MaxVanishingChain == 0 {
		opt.MaxVanishingChain = 100000
	}
	e := &refEngine{
		net:     n,
		opt:     opt,
		rng:     xrand.NewStream(opt.Seed, 0),
		marking: n.InitialMarking(),
		fireAt:  make([]float64, len(n.Transitions)),
		remain:  make([]float64, len(n.Transitions)),
		degree:  make([]int, len(n.Transitions)),
	}
	for i := range e.fireAt {
		e.fireAt[i] = math.Inf(1)
		e.remain[i] = -1
	}
	return e.run()
}

func (e *refEngine) run() (*petri.SimResult, error) {
	n := e.net
	horizon := e.opt.Warmup + e.opt.Duration
	e.placeAcc = make([]stats.TimeWeighted, len(n.Places))
	e.busyAcc = make([]stats.TimeWeighted, len(n.Places))
	e.firings = make([]uint64, len(n.Transitions))

	if err := e.resolveImmediates(); err != nil {
		return nil, err
	}
	e.syncTimers()
	if e.opt.Warmup == 0 {
		e.beginMeasurement()
	}

	deadlocked := false
	for {
		t, id := e.nextTimed()
		if id < 0 {
			deadlocked = true
			break
		}
		if t > horizon {
			break
		}
		if !e.measuring && t >= e.opt.Warmup {
			e.now = e.opt.Warmup
			e.beginMeasurement()
		}
		e.now = t
		if err := e.fireTimed(petri.TransitionID(id)); err != nil {
			return nil, err
		}
	}
	if !e.measuring {
		e.now = e.opt.Warmup
		e.beginMeasurement()
	}
	e.now = horizon

	res := &petri.SimResult{
		Time:          e.opt.Duration,
		PlaceAvg:      make([]float64, len(n.Places)),
		PlaceNonEmpty: make([]float64, len(n.Places)),
		Firings:       e.firings,
		Throughput:    make([]float64, len(n.Transitions)),
		Deadlocked:    deadlocked,
		FinalMarking:  e.marking.Clone(),
	}
	for i := range n.Places {
		res.PlaceAvg[i] = e.placeAcc[i].MeanAt(horizon)
		res.PlaceNonEmpty[i] = e.busyAcc[i].MeanAt(horizon)
	}
	for i := range n.Transitions {
		res.Throughput[i] = float64(e.firings[i]) / e.opt.Duration
	}
	return res, nil
}

func (e *refEngine) beginMeasurement() {
	e.measuring = true
	for i, v := range e.marking {
		e.placeAcc[i].Start(e.now, float64(v))
		b := 0.0
		if v > 0 {
			b = 1
		}
		e.busyAcc[i].Start(e.now, b)
	}
	for i := range e.firings {
		e.firings[i] = 0
	}
}

func (e *refEngine) recordMarking() {
	if !e.measuring {
		return
	}
	for i, v := range e.marking {
		b := 0.0
		if v > 0 {
			b = 1
		}
		e.placeAcc[i].Set(e.now, float64(v))
		e.busyAcc[i].Set(e.now, b)
	}
}

func (e *refEngine) nextTimed() (float64, int) {
	best := math.Inf(1)
	id := -1
	for i, t := range e.fireAt {
		if t < best {
			best = t
			id = i
		}
	}
	return best, id
}

func (e *refEngine) fireTimed(t petri.TransitionID) error {
	e.fireAt[t] = math.Inf(1)
	e.remain[t] = -1
	e.net.Fire(e.marking, t)
	if e.measuring {
		e.firings[t]++
	}
	if err := e.resolveImmediates(); err != nil {
		return err
	}
	e.recordMarking()
	e.syncTimers()
	return nil
}

func (e *refEngine) resolveImmediates() error {
	for steps := 0; ; steps++ {
		ids := e.net.EnabledImmediatesAtTopPriority(e.marking)
		if len(ids) == 0 {
			return nil
		}
		if steps >= e.opt.MaxVanishingChain {
			return errLivelock
		}
		var chosen petri.TransitionID
		if len(ids) == 1 {
			chosen = ids[0]
		} else {
			total := 0.0
			for _, id := range ids {
				total += e.net.Transitions[id].Weight
			}
			u := e.rng.Float64() * total
			chosen = ids[len(ids)-1]
			for _, id := range ids {
				u -= e.net.Transitions[id].Weight
				if u < 0 {
					chosen = id
					break
				}
			}
		}
		e.net.Fire(e.marking, chosen)
		if e.measuring {
			e.firings[chosen]++
		}
	}
}

type livelockError struct{}

func (livelockError) Error() string { return "ref: immediate-transition livelock" }

var errLivelock = livelockError{}

func (e *refEngine) syncTimers() {
	for i := range e.net.Transitions {
		tr := &e.net.Transitions[i]
		if tr.Kind != petri.Timed {
			continue
		}
		multi := tr.Servers != 0 && tr.Servers != 1
		deg := 1
		var enabled bool
		if multi {
			deg = e.net.EnablingDegree(e.marking, petri.TransitionID(i))
			enabled = deg > 0
		} else {
			enabled = e.net.Enabled(e.marking, petri.TransitionID(i))
		}
		scheduled := !math.IsInf(e.fireAt[i], 1)
		switch {
		case enabled && !scheduled:
			e.fireAt[i] = e.now + e.sampleDelay(tr, deg, i)
			e.degree[i] = deg
		case enabled && scheduled && multi && deg != e.degree[i]:
			e.fireAt[i] = e.now + e.sampleDelay(tr, deg, i)
			e.degree[i] = deg
		case !enabled && scheduled:
			if e.opt.Memory == petri.RaceAge && !multi {
				e.remain[i] = e.fireAt[i] - e.now
			}
			e.fireAt[i] = math.Inf(1)
		}
	}
}

func (e *refEngine) sampleDelay(tr *petri.Transition, deg, idx int) float64 {
	if e.opt.Memory == petri.RaceAge && e.remain[idx] >= 0 && (tr.Servers == 0 || tr.Servers == 1) {
		d := e.remain[idx]
		e.remain[idx] = -1
		return d
	}
	delay := tr.Delay.Sample(e.rng)
	if deg > 1 {
		delay /= float64(deg)
	}
	return delay
}

// ---------------------------------------------------------------------------
// Net zoo

// stressNet exercises every enabling feature at once: capacity bounds,
// inhibitors, guards, weighted same-priority immediate conflicts, a second
// priority level, k-server and infinite-server exponentials, deterministic
// and Erlang delays.
func stressNet() *petri.Net {
	n := petri.NewNet("stress")
	pool := n.AddPlaceInit("Pool", 4)
	q := n.AddPlace("Q")
	n.SetCapacity(q, 3)
	r := n.AddPlace("R")
	tick := n.AddPlaceInit("Tick", 1)

	// Arrivals: each pooled token independently moves to the bounded queue.
	ta := n.AddTimed("TA", dist.NewExponential(1.5))
	n.Input(ta, pool, 1)
	n.Output(ta, q, 1)
	n.SetInfiniteServer(ta)

	// Service: 2-server exponential draining the queue.
	ts := n.AddTimed("TS", dist.NewExponential(2.0))
	n.Input(ts, q, 1)
	n.Output(ts, pool, 1)
	n.SetServers(ts, 2)

	// A deterministic clock inhibited while the queue is congested.
	td := n.AddTimed("TD", dist.NewDeterministic(0.7))
	n.Input(td, tick, 1)
	n.Output(td, tick, 1)
	n.Inhibitor(td, q, 2)

	// Erlang recovery of diverted tokens.
	te := n.AddTimed("TE", dist.NewErlang(2, 3.0))
	n.Input(te, r, 1)
	n.Output(te, pool, 1)

	// When the queue fills, a weighted immediate conflict either diverts a
	// token (I1) or bounces it back to the pool (I2); both fire only when
	// the queue is actually full (guard).
	full := func(m petri.Marking) bool { return m[q] >= 3 }
	i1 := n.AddImmediate("I1", 2)
	n.Input(i1, q, 1)
	n.Output(i1, r, 1)
	n.SetGuard(i1, full)
	i2 := n.AddImmediate("I2", 2)
	n.Input(i2, q, 1)
	n.Output(i2, pool, 1)
	n.SetWeight(i2, 2.5)
	n.SetGuard(i2, full)

	// A higher-priority immediate that preempts the pair when two diverted
	// tokens accumulate.
	i3 := n.AddImmediate("I3", 5)
	n.Input(i3, r, 2)
	n.Output(i3, pool, 2)
	return n
}

// deadlockNet drains two tokens and stops: exercises the absorbing-state
// tail integration.
func deadlockNet() *petri.Net {
	n := petri.NewNet("deadlock")
	x := n.AddPlaceInit("X", 2)
	tx := n.AddTimed("TX", dist.NewExponential(1.0))
	n.Input(tx, x, 1)
	return n
}

func equivNets() map[string]*petri.Net {
	cfg := core.PaperConfig()
	return map[string]*petri.Net{
		"cpu":      core.BuildCPUNet(cfg),
		"closed":   core.BuildClosedCPUNet(cfg, 3, 1.0),
		"stress":   stressNet(),
		"deadlock": deadlockNet(),
		// Fusion-specific nets (see fusionprop_test.go): a fully fused
		// batch-admit chain, the guard-at-vanishing-marking trap, and the
		// devirtualized sampler kinds. Running them through this zoo also
		// covers the pooled-engine and replication paths.
		"batch":          fusionBatchNet(8),
		"guardTransient": guardTransientNet(),
		"mixedDists":     mixedDistNet(),
	}
}

// ---------------------------------------------------------------------------
// Compiled engine vs reference engine, bit for bit

func TestCompiledEngineMatchesReference(t *testing.T) {
	for name, n := range equivNets() {
		c, err := petri.Compile(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seed := range []uint64{1, 7, 42, 12345} {
			for _, mem := range []petri.MemoryPolicy{petri.RaceEnable, petri.RaceAge} {
				opt := petri.SimOptions{Seed: seed, Warmup: 25, Duration: 250, Memory: mem}
				want, err := refSimulate(n, opt)
				if err != nil {
					t.Fatalf("%s seed=%d %v: reference: %v", name, seed, mem, err)
				}
				got, err := c.Simulate(opt)
				if err != nil {
					t.Fatalf("%s seed=%d %v: compiled: %v", name, seed, mem, err)
				}
				assertIdentical(t, name, seed, mem, got, want)
			}
		}
	}
}

func assertIdentical(t *testing.T, name string, seed uint64, mem petri.MemoryPolicy, got, want *petri.SimResult) {
	t.Helper()
	ctx := func(what string, i int) string {
		return name + " seed=" + strconv.FormatUint(seed, 10) + " " + mem.String() + ": " + what + "[" + strconv.Itoa(i) + "]"
	}
	if got.Deadlocked != want.Deadlocked {
		t.Fatalf("%s: Deadlocked = %v, want %v", name, got.Deadlocked, want.Deadlocked)
	}
	if !got.FinalMarking.Equal(want.FinalMarking) {
		t.Fatalf("%s seed=%d %v: FinalMarking = %v, want %v", name, seed, mem, got.FinalMarking, want.FinalMarking)
	}
	for i := range want.PlaceAvg {
		if got.PlaceAvg[i] != want.PlaceAvg[i] {
			t.Errorf("%s = %x, want %x", ctx("PlaceAvg", i), got.PlaceAvg[i], want.PlaceAvg[i])
		}
		if got.PlaceNonEmpty[i] != want.PlaceNonEmpty[i] {
			t.Errorf("%s = %x, want %x", ctx("PlaceNonEmpty", i), got.PlaceNonEmpty[i], want.PlaceNonEmpty[i])
		}
	}
	for i := range want.Firings {
		if got.Firings[i] != want.Firings[i] {
			t.Errorf("%s = %d, want %d", ctx("Firings", i), got.Firings[i], want.Firings[i])
		}
		if got.Throughput[i] != want.Throughput[i] {
			t.Errorf("%s = %x, want %x", ctx("Throughput", i), got.Throughput[i], want.Throughput[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Golden values pinned per draw law

// engineGolden pins Simulate outputs (Warmup 50, Duration 500) to literals.
// They were first captured from the scalar engine loop immediately before
// the compiled fast path replaced it, and are re-captured whenever
// xrand.StreamVersion bumps (the current values are the version-3 ziggurat
// law); between bumps no engine change may move them (lazy-integration
// stats semantics — see the file comment). Hex float literals round-trip
// exactly.
type engineGolden struct {
	net      string
	seed     uint64
	memory   petri.MemoryPolicy
	placeAvg []float64
	firings  []uint64
	final    petri.Marking
}

var engineGoldens = []engineGolden{
	{net: "cpu", seed: 1, memory: petri.RaceEnable,
		placeAvg: []float64{0x1p+00, 0x0p+00, 0x1.21682f9433ceep-11, 0x1.adc3f294c78d5p-07, 0x1.1782965d10cb2p-01, 0x1.21682f9433ceep-11, 0x1.d06a1f2e144fep-02, 0x1.688b4338a76e8p-02, 0x1.9f7b6fd5b3854p-04},
		firings:  []uint64{0x1ee, 0x1ee, 0x114, 0xda, 0x1ee, 0x1ee, 0x114, 0x114},
		final:    petri.Marking{1, 0, 0, 0, 1, 0, 0, 0, 0}},
	{net: "cpu", seed: 1, memory: petri.RaceAge,
		placeAvg: []float64{0x1p+00, 0x0p+00, 0x1.3879c4112cf5cp-11, 0x1.af45d2d437d3fp-07, 0x1.332efed7dac53p-01, 0x1.3879c4112cf5cp-11, 0x1.9905c56e41df4p-02, 0x1.3126e978d4fdep-02, 0x1.9f7b6fd5b3854p-04},
		firings:  []uint64{0x1ee, 0x1ee, 0x12a, 0xc4, 0x1ee, 0x1ee, 0x12a, 0x12a},
		final:    petri.Marking{1, 0, 0, 0, 1, 0, 0, 0, 0}},
	{net: "cpu", seed: 42, memory: petri.RaceEnable,
		placeAvg: []float64{0x1p+00, 0x0p+00, 0x1.0c6f7a0b5028fp-11, 0x1.bb65126d13225p-07, 0x1.22ead8266a7bp-01, 0x1.0c6f7a0b5028fp-11, 0x1.b9a417f62561fp-02, 0x1.580f9e83bef8bp-02, 0x1.8651e5c999a5p-04},
		firings:  []uint64{0x1e1, 0x1e1, 0x100, 0xe1, 0x1e1, 0x1e1, 0x100, 0x100},
		final:    petri.Marking{1, 0, 0, 0, 1, 0, 0, 0, 0}},
	{net: "cpu", seed: 42, memory: petri.RaceAge,
		placeAvg: []float64{0x1p+00, 0x0p+00, 0x1.2ad81ade98dd3p-11, 0x1.bdc10d3faca14p-07, 0x1.3cff88215cd34p-01, 0x1.2ad81ade98dd3p-11, 0x1.856b83afd70d1p-02, 0x1.23d70a3d70a3dp-02, 0x1.8651e5c999a5p-04},
		firings:  []uint64{0x1e1, 0x1e1, 0x11d, 0xc4, 0x1e1, 0x1e1, 0x11d, 0x11d},
		final:    petri.Marking{1, 0, 0, 0, 1, 0, 0, 0, 0}},
	{net: "closed", seed: 1, memory: petri.RaceEnable,
		placeAvg: []float64{0x1.55f408808eff9p+01, 0x1.ff31acf8ad917p-12, 0x1.bdc4459786a6ap-05, 0x1.377811e605764p-03, 0x1.fd9ba1b179db2p-12, 0x1.b1e2481248733p-01, 0x1.258eae6dfcdd6p-01, 0x1.18a73348972bap-02},
		firings:  []uint64{0x541, 0xf3, 0x44e, 0x541, 0x541, 0xf3, 0xf3},
		final:    petri.Marking{3, 0, 0, 0, 0, 1, 1, 0}},
	{net: "closed", seed: 1, memory: petri.RaceAge,
		placeAvg: []float64{0x1.55e538d9f31fdp+01, 0x1.ce2a9f670cac1p-11, 0x1.c1782f3e7ea1p-05, 0x1.24328b5b97826p-02, 0x1.cd5f99c372d0ep-11, 0x1.6d73626bc3622p-01, 0x1.c23f918eef989p-02, 0x1.18a73348972bap-02},
		firings:  []uint64{0x541, 0x1b8, 0x389, 0x541, 0x541, 0x1b8, 0x1b8},
		final:    petri.Marking{3, 0, 0, 0, 0, 1, 1, 0}},
	{net: "closed", seed: 42, memory: petri.RaceEnable,
		placeAvg: []float64{0x1.5407e17a0b8b2p+01, 0x1.f969e3c94fdf4p-12, 0x1.05e32f6851ff6p-04, 0x1.38ff1ffafc1f9p-03, 0x1.f969e3c94fdf4p-12, 0x1.b1810ac4c7ce2p-01, 0x1.225cf69a0038bp-01, 0x1.1e4828558f2afp-02},
		firings:  []uint64{0x564, 0xf1, 0x473, 0x564, 0x564, 0xf1, 0xf1},
		final:    petri.Marking{3, 0, 0, 0, 0, 1, 1, 0}},
	{net: "closed", seed: 42, memory: petri.RaceAge,
		placeAvg: []float64{0x1.53fc6f64deadfp+01, 0x1.bfbdf090e0396p-11, 0x1.07b08f0215719p-04, 0x1.2b6783600212dp-02, 0x1.bfbdf090e0396p-11, 0x1.69dc4ed3dabe8p-01, 0x1.b5883c8f3045dp-02, 0x1.1e30611885374p-02},
		firings:  []uint64{0x563, 0x1ab, 0x3b8, 0x563, 0x563, 0x1ac, 0x1ab},
		final:    petri.Marking{3, 0, 0, 1, 0, 0, 0, 0}},
}

func TestCompiledEngineMatchesGoldens(t *testing.T) {
	nets := equivNets()
	for _, g := range engineGoldens {
		res, err := petri.Simulate(nets[g.net], petri.SimOptions{
			Seed: g.seed, Warmup: 50, Duration: 500, Memory: g.memory,
		})
		if err != nil {
			t.Fatalf("%s seed=%d %v: %v", g.net, g.seed, g.memory, err)
		}
		for i, want := range g.placeAvg {
			if res.PlaceAvg[i] != want {
				t.Errorf("%s seed=%d %v: PlaceAvg[%d] = %x, want golden %x",
					g.net, g.seed, g.memory, i, res.PlaceAvg[i], want)
			}
		}
		for i, want := range g.firings {
			if res.Firings[i] != want {
				t.Errorf("%s seed=%d %v: Firings[%d] = %d, want golden %d",
					g.net, g.seed, g.memory, i, res.Firings[i], want)
			}
		}
		if !res.FinalMarking.Equal(g.final) {
			t.Errorf("%s seed=%d %v: FinalMarking = %v, want golden %v",
				g.net, g.seed, g.memory, res.FinalMarking, g.final)
		}
	}
}

// ---------------------------------------------------------------------------
// Pooled-engine equivalence

// TestPooledEngineMatchesReference extends the bit-for-bit suite to the
// engine pool: the same Compiled is driven through every (net, seed,
// policy) combination twice in a row, so from the second run of each net
// onward the engine is a recycled one whose reset() state must be
// indistinguishable from a fresh allocation. Every run — first or recycled
// — must match the scalar reference exactly.
func TestPooledEngineMatchesReference(t *testing.T) {
	for name, n := range equivNets() {
		c, err := petri.Compile(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seed := range []uint64{3, 99} {
			for _, mem := range []petri.MemoryPolicy{petri.RaceEnable, petri.RaceAge} {
				opt := petri.SimOptions{Seed: seed, Warmup: 25, Duration: 250, Memory: mem}
				want, err := refSimulate(n, opt)
				if err != nil {
					t.Fatalf("%s seed=%d %v: reference: %v", name, seed, mem, err)
				}
				for round := 0; round < 2; round++ {
					got, err := c.Simulate(opt)
					if err != nil {
						t.Fatalf("%s seed=%d %v round %d: %v", name, seed, mem, round, err)
					}
					assertIdentical(t, name+" (pooled)", seed, mem, got, want)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Compile-once replication path

func TestCompiledReplicationsMatchPerRunCompilation(t *testing.T) {
	n := stressNet()
	opt := petri.SimOptions{Seed: 9, Warmup: 10, Duration: 100}
	viaNet, err := petri.SimulateReplications(n, opt, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	viaCompiled, err := c.SimulateReplications(opt, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaNet.PlaceAvg {
		if viaNet.PlaceAvg[i].Mean() != viaCompiled.PlaceAvg[i].Mean() ||
			viaNet.PlaceAvg[i].Var() != viaCompiled.PlaceAvg[i].Var() {
			t.Fatalf("place %d: per-run and compile-once aggregates differ", i)
		}
	}
}

// ---------------------------------------------------------------------------
// Paired old-path/new-path benchmarks. Running both in one `go test -bench`
// invocation keeps the speedup ratio meaningful on noisy machines: both
// sides see the same thermal/scheduling conditions.

// BenchmarkEngineCPUScalarReference times the pre-compilation engine
// semantics (rescan-all timers, linear next-event scan, allocating conflict
// sets) on the paper's Figure-3 net.
func BenchmarkEngineCPUScalarReference(b *testing.B) {
	n := core.BuildCPUNet(core.PaperConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := refSimulate(n, petri.SimOptions{Seed: uint64(i), Duration: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCPUCompiled times the compiled fast path on the same net,
// compiling once — the usage pattern of the replication and sweep layers.
func BenchmarkEngineCPUCompiled(b *testing.B) {
	n := core.BuildCPUNet(core.PaperConfig())
	c, err := petri.Compile(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Simulate(petri.SimOptions{Seed: uint64(i), Duration: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBatchAdmitScalarReference / ...Compiled pair the scalar
// and fused engines on the fusion-heavy batch-admit net: every timed batch
// arrival is followed by a deterministic chain of eight admit firings,
// which the compiled engine folds into the arrival's firing program. This
// is the workload shape where vanishing markings dominate the event count
// (cf. the Figure-3 AR→T1 admit path), so it shows the fusion win at its
// fullest; the CI regression gate tracks the compiled variant.
func BenchmarkEngineBatchAdmitScalarReference(b *testing.B) {
	n := fusionBatchNet(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := refSimulate(n, petri.SimOptions{Seed: uint64(i), Duration: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBatchAdmitCompiled(b *testing.B) {
	c, err := petri.Compile(fusionBatchNet(8))
	if err != nil {
		b.Fatal(err)
	}
	if c.FusedChain(petri.TransitionID(0)) == nil {
		b.Fatal("batch-admit chain did not fuse")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Simulate(petri.SimOptions{Seed: uint64(i), Duration: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompiledTransientRuns(t *testing.T) {
	c, err := petri.Compile(stressNet())
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SimulateTransient(petri.TransientOptions{
		Seed: 3, Horizon: 5, Step: 1, Replications: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The deterministic tick place holds exactly one token at all times.
	id, _ := c.Net().PlaceByName("Tick")
	for i, m := range res.PlaceMean[id] {
		if m != 1 {
			t.Fatalf("Tick mean at grid %d = %v, want 1", i, m)
		}
	}
}
