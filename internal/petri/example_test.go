package petri_test

import (
	"fmt"

	"repro/internal/petri"
)

// ExampleSimulate builds a two-state machine and measures the fraction of
// time each state is occupied.
func ExampleSimulate() {
	n := petri.NewNet("machine")
	up := n.AddPlaceInit("Up", 1)
	down := n.AddPlace("Down")
	fail := n.AddExponential("Fail", 1) // MTBF 1
	n.Input(fail, up, 1)
	n.Output(fail, down, 1)
	repair := n.AddExponential("Repair", 4) // MTTR 0.25
	n.Input(repair, down, 1)
	n.Output(repair, up, 1)

	res, err := petri.Simulate(n, petri.SimOptions{Seed: 1, Warmup: 100, Duration: 100000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("availability ≈ %.2f\n", res.PlaceAvg[up])
	// Output: availability ≈ 0.80
}

// ExampleSolveCTMC solves the same model exactly instead of simulating.
func ExampleSolveCTMC() {
	n := petri.NewNet("machine")
	up := n.AddPlaceInit("Up", 1)
	down := n.AddPlace("Down")
	fail := n.AddExponential("Fail", 1)
	n.Input(fail, up, 1)
	n.Output(fail, down, 1)
	repair := n.AddExponential("Repair", 4)
	n.Input(repair, down, 1)
	n.Output(repair, up, 1)

	res, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("availability = %.4f over %d states\n", res.PlaceAvg[up], len(res.Markings))
	// Output: availability = 0.8000 over 2 states
}

// ExamplePInvariants computes the conservation laws of a net.
func ExamplePInvariants() {
	n := petri.NewNet("ring")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	ab := n.AddExponential("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	ba := n.AddExponential("BA", 1)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)

	invs, err := petri.PInvariants(n)
	if err != nil {
		panic(err)
	}
	fmt.Printf("invariant %v conserves %d token(s)\n",
		invs[0], petri.InvariantValue(n.InitialMarking(), invs[0]))
	// Output: invariant [1 1] conserves 1 token(s)
}
