package petri

// Unit tests for compile-time vanishing-chain fusion: which chains the
// compiler detects, which near-miss structures it must refuse, how the
// fused programs look, and that the fused steady-state loop stays
// allocation-free.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

// batchAdmitNet is the canonical fusion-heavy shape: a timed source
// deposits `batch` work items at once, and the sole top-priority immediate
// admits them one by one into the service queue. After the source fires,
// the admit transition is statically guaranteed enabled `batch` times in a
// row, so the whole admit chain fuses into the source's firing program.
func batchAdmitNet(batch int) *Net {
	n := NewNet("batch-admit")
	gen := n.AddPlaceInit("Gen", 1)
	in := n.AddPlace("In")
	q := n.AddPlace("Q")
	done := n.AddPlace("Done")

	arr := n.AddTimed("Batch", dist.NewExponential(1))
	n.Input(arr, gen, 1)
	n.Output(arr, gen, 1)
	n.Output(arr, in, batch)

	admit := n.AddImmediate("Admit", 2)
	n.Input(admit, in, 1)
	n.Output(admit, q, 1)

	srv := n.AddTimed("Serve", dist.NewExponential(float64(batch)*1.25))
	n.Input(srv, q, 1)
	n.Output(srv, done, 1)

	sink := n.AddTimed("Drain", dist.NewExponential(float64(batch)*2))
	n.Input(sink, done, 1)
	return n
}

func chainNames(t *testing.T, c *Compiled, name string) []string {
	t.Helper()
	id, ok := c.Net().TransitionByName(name)
	if !ok {
		t.Fatalf("no transition %q", name)
	}
	var out []string
	for _, f := range c.FusedChain(id) {
		out = append(out, c.Net().Transitions[f].Name)
	}
	return out
}

func TestFusionDetectsBatchAdmitChain(t *testing.T) {
	c := MustCompile(batchAdmitNet(8))
	got := chainNames(t, c, "Batch")
	if len(got) != 8 {
		t.Fatalf("Batch fused chain = %v, want 8×Admit", got)
	}
	for _, name := range got {
		if name != "Admit" {
			t.Fatalf("Batch fused chain = %v, want only Admit", got)
		}
	}
	// The other transitions produce nothing the admit transition's inputs
	// are guaranteed by, so they must not fuse.
	for _, name := range []string{"Admit", "Serve", "Drain"} {
		if got := chainNames(t, c, name); got != nil {
			t.Fatalf("%s fused chain = %v, want none", name, got)
		}
	}
}

func TestFusionCombinedProgramSkipsIntermediatePlaces(t *testing.T) {
	n := batchAdmitNet(4)
	c := MustCompile(n)
	batch, _ := n.TransitionByName("Batch")
	in, _ := n.PlaceByName("In")
	q, _ := n.PlaceByName("Q")
	// The combined Batch+4×Admit delta cancels on In (+4 then -4) and lands
	// +4 on Q, so the program must touch Q but not In.
	touched := map[int32]bool{}
	prog := c.progs[c.progOff[batch]:c.progOff[batch+1]]
	for i := 0; i < len(prog); {
		h := prog[i]
		touched[int32(h&0x7fffffff)] = true
		i += 1 + int(uint16(h>>32))
	}
	if touched[int32(in)] {
		t.Error("combined program touches the cancelled intermediate place In")
	}
	if !touched[int32(q)] {
		t.Error("combined program does not touch the chain's net output Q")
	}
}

// TestFusionRefusesIneligibleTargets pins the structural safety conditions:
// each mutation below makes the admit chain illegal to fuse, and the
// compiler must refuse it.
func TestFusionRefusesIneligibleTargets(t *testing.T) {
	admitID := func(n *Net) TransitionID {
		id, ok := n.TransitionByName("Admit")
		if !ok {
			t.Fatal("no Admit")
		}
		return id
	}
	cases := []struct {
		name   string
		mutate func(n *Net)
	}{
		{"priority conflict partner", func(n *Net) {
			// A second immediate at the same priority: the conflict needs a
			// weighted draw, so the chain is no longer deterministic.
			p, _ := n.PlaceByName("In")
			alt := n.AddImmediate("Alt", 2)
			n.Input(alt, p, 1)
		}},
		{"guard on target", func(n *Net) {
			n.SetGuard(admitID(n), func(m Marking) bool { return true })
		}},
		{"inhibitor on target", func(n *Net) {
			p, _ := n.PlaceByName("Done")
			n.Inhibitor(admitID(n), p, 100)
		}},
		{"capacity-bounded output", func(n *Net) {
			p, _ := n.PlaceByName("Q")
			n.SetCapacity(p, 1000)
		}},
		{"input place can go negative", func(n *Net) {
			// A transition with duplicate input arcs on the admit
			// transition's input place: enabling checks each arc alone but
			// firing consumes their sum, so the place has no non-negativity
			// floor and "chain delta ≥ weight" no longer implies enabling.
			// (Found by FuzzFusionEquivalence — seed 23662 in the corpus.)
			in, _ := n.PlaceByName("In")
			d, _ := n.PlaceByName("Done")
			dup := n.AddTimed("Dup", dist.NewExponential(1))
			n.Input(dup, in, 1)
			n.Input(dup, in, 1)
			n.Output(dup, d, 1)
		}},
	}
	for _, tc := range cases {
		n := batchAdmitNet(4)
		tc.mutate(n)
		c := MustCompile(n)
		for i := range n.Transitions {
			if chain := c.FusedChain(TransitionID(i)); chain != nil {
				t.Errorf("%s: transition %s still fuses %v", tc.name, n.Transitions[i].Name, chain)
			}
		}
	}
}

// TestFusionHigherPriorityWinsOverGuarantee: a guaranteed immediate that is
// NOT the top priority level must not fuse — a higher-priority transition
// could preempt it at the intermediate marking.
func TestFusionHigherPriorityWinsOverGuarantee(t *testing.T) {
	n := batchAdmitNet(4)
	// An unrelated higher-priority immediate (disabled in practice, but the
	// compiler cannot know that).
	p := n.AddPlace("Trigger")
	hi := n.AddImmediate("Preempt", 9)
	n.Input(hi, p, 1)
	c := MustCompile(n)
	for i := range n.Transitions {
		if chain := c.FusedChain(TransitionID(i)); chain != nil {
			t.Fatalf("transition %s fuses %v despite a higher-priority level", n.Transitions[i].Name, chain)
		}
	}
}

// TestFusionSelfRegeneratingChainIsCapped: a target that re-guarantees its
// own enabling would fuse forever; the compiler must cap the chain (the
// runtime livelock bound still fires through the resolver).
func TestFusionSelfRegeneratingChainIsCapped(t *testing.T) {
	n := NewNet("livelock")
	p := n.AddPlace("P")
	src := n.AddTimed("Src", dist.NewExponential(1))
	n.Output(src, p, 1)
	imm := n.AddImmediate("Grow", 1)
	n.Input(imm, p, 1)
	n.Output(imm, p, 2) // net +1: re-guarantees itself
	c := MustCompile(n)
	if got := len(c.FusedChain(src)); got != maxFusedChain {
		t.Fatalf("self-regenerating chain length = %d, want the %d cap", got, maxFusedChain)
	}
	// The livelock must still be detected, with every fused firing counted.
	_, err := c.Simulate(SimOptions{Seed: 1, Duration: 10, MaxVanishingChain: 500})
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("livelock not detected through fused chains: %v", err)
	}
}

// TestFusionFiringCountsIncludeFusedMembers: fused immediates never reach
// the resolver, but their throughput accounting must be unchanged.
func TestFusionFiringCountsIncludeFusedMembers(t *testing.T) {
	n := batchAdmitNet(8)
	c := MustCompile(n)
	if chainNames(t, c, "Batch") == nil {
		t.Fatal("precondition: Batch must fuse its admit chain")
	}
	res, err := c.Simulate(SimOptions{Seed: 3, Duration: 200})
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := n.TransitionByName("Batch")
	admit, _ := n.TransitionByName("Admit")
	if res.Firings[admit] != 8*res.Firings[batch] {
		t.Fatalf("Admit firings = %d, want 8× Batch firings (%d)", res.Firings[admit], res.Firings[batch])
	}
}

// TestFusedSteadyStateLoopIsAllocationFree extends the engine's 0-alloc
// promise to a net whose every timed event executes a fused chain.
func TestFusedSteadyStateLoopIsAllocationFree(t *testing.T) {
	c := MustCompile(batchAdmitNet(8))
	e, err := c.acquireEngine(nil, SimOptions{Seed: 5, Duration: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.releaseEngine(e)
	if err := e.start(); err != nil {
		t.Fatal(err)
	}
	step := func() {
		ft, id := e.nextTimed()
		if id < 0 {
			t.Fatal("net deadlocked unexpectedly")
		}
		e.advanceTo(ft)
		if err := e.fireTimed(int32(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(2000, step)
	if allocs > 0 {
		t.Fatalf("fused steady-state loop allocates %.2f allocs/event, want 0", allocs)
	}
}

// TestCompiledDOTMarksFusedTransitions: exported graphs must stay
// debuggable — the parent names its fused chain and the absorbed immediate
// is visibly marked.
func TestCompiledDOTMarksFusedTransitions(t *testing.T) {
	c := MustCompile(batchAdmitNet(8))
	d := c.DOT()
	for _, want := range []string{"fuses Admit×8", "(fused)", "dashed"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Compiled.DOT missing %q:\n%s", want, d)
		}
	}
	// The plain net renderer must stay annotation-free.
	if plain := DOT(c.Net()); strings.Contains(plain, "fuse") {
		t.Fatalf("DOT(net) leaked fusion annotations:\n%s", plain)
	}
}

// TestCompiledSamplerKinds pins the devirtualized sampler classification,
// including the constructor-bypass fallback to the generic interface path.
func TestCompiledSamplerKinds(t *testing.T) {
	n := NewNet("kinds")
	p := n.AddPlaceInit("P", 1)
	add := func(name string, d dist.Distribution) TransitionID {
		id := n.AddTimed(name, d)
		n.Input(id, p, 1)
		n.Output(id, p, 1)
		return id
	}
	exp := add("exp", dist.NewExponential(2))
	det := add("det", dist.NewDeterministic(0.5))
	uni := add("uni", dist.NewUniform(1, 3))
	erl := add("erl", dist.NewErlang(3, 2))
	wei := add("wei", dist.NewWeibull(0.8, 1.5))
	hyp := add("hyp", dist.NewHyperExponential([]float64{0.3, 0.7}, []float64{1, 5}))
	bad := add("bad", dist.Uniform{Low: 2, High: 1}) // bypasses NewUniform validation
	badHyp := add("badHyp", dist.HyperExponential{Probs: []float64{1}, Rates: []float64{-2}})
	badExp := add("badExp", dist.Exponential{Rate: -1})
	// NewUniform accepts an infinite High, but span*0 would sample NaN with
	// no check on the compiled path; it must stay generic.
	infUni := add("infUni", dist.NewUniform(0, math.Inf(1)))
	c := MustCompile(n)
	want := map[TransitionID]uint8{
		exp: delayKindExp, det: delayKindDet, uni: delayKindUniform,
		erl: delayKindErlang, wei: delayKindWeibull, hyp: delayKindHyperExp,
		bad: delayKindGeneric, badHyp: delayKindGeneric,
		badExp: delayKindGeneric, infUni: delayKindGeneric,
	}
	for id, kind := range want {
		if got := c.delayKind[id]; got != kind {
			t.Errorf("%s: delayKind = %d, want %d", n.Transitions[id].Name, got, kind)
		}
	}
}
