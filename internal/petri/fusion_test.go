package petri

// Unit tests for compile-time vanishing-chain fusion: which chains the
// compiler detects, which near-miss structures it must refuse, how the
// fused programs look, and that the fused steady-state loop stays
// allocation-free.

import (
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/dist"
)

// batchAdmitNet is the canonical fusion-heavy shape: a timed source
// deposits `batch` work items at once, and the sole top-priority immediate
// admits them one by one into the service queue. After the source fires,
// the admit transition is statically guaranteed enabled `batch` times in a
// row, so the whole admit chain fuses into the source's firing program.
func batchAdmitNet(batch int) *Net {
	n := NewNet("batch-admit")
	gen := n.AddPlaceInit("Gen", 1)
	in := n.AddPlace("In")
	q := n.AddPlace("Q")
	done := n.AddPlace("Done")

	arr := n.AddTimed("Batch", dist.NewExponential(1))
	n.Input(arr, gen, 1)
	n.Output(arr, gen, 1)
	n.Output(arr, in, batch)

	admit := n.AddImmediate("Admit", 2)
	n.Input(admit, in, 1)
	n.Output(admit, q, 1)

	srv := n.AddTimed("Serve", dist.NewExponential(float64(batch)*1.25))
	n.Input(srv, q, 1)
	n.Output(srv, done, 1)

	sink := n.AddTimed("Drain", dist.NewExponential(float64(batch)*2))
	n.Input(sink, done, 1)
	return n
}

func chainNames(t *testing.T, c *Compiled, name string) []string {
	t.Helper()
	id, ok := c.Net().TransitionByName(name)
	if !ok {
		t.Fatalf("no transition %q", name)
	}
	var out []string
	for _, f := range c.FusedChain(id) {
		out = append(out, c.Net().Transitions[f].Name)
	}
	return out
}

func preconds(t *testing.T, c *Compiled, name string) []string {
	t.Helper()
	id, ok := c.Net().TransitionByName(name)
	if !ok {
		t.Fatalf("no transition %q", name)
	}
	return c.FusedPreconds(id)
}

func assertChain(t *testing.T, c *Compiled, name string, wantChain, wantPre []string) {
	t.Helper()
	if got := chainNames(t, c, name); !slices.Equal(got, wantChain) {
		t.Errorf("%s fused chain = %v, want %v", name, got, wantChain)
	}
	got := slices.Clone(preconds(t, c, name))
	slices.Sort(got)
	want := slices.Clone(wantPre)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Errorf("%s chain preconditions = %v, want %v", name, got, want)
	}
}

func TestFusionDetectsBatchAdmitChain(t *testing.T) {
	c := MustCompile(batchAdmitNet(8))
	got := chainNames(t, c, "Batch")
	if len(got) != 8 {
		t.Fatalf("Batch fused chain = %v, want 8×Admit", got)
	}
	for _, name := range got {
		if name != "Admit" {
			t.Fatalf("Batch fused chain = %v, want only Admit", got)
		}
	}
	// Batch's chain needs no runtime preconditions: the batch deposit alone
	// proves all 8 firings enabled, and once the accumulated delta on In
	// returns to zero, tangibility proves Admit disabled again — it was
	// disabled at the tangible pre-event marking and In has gained nothing.
	if pcs := preconds(t, c, "Batch"); pcs != nil {
		t.Errorf("Batch chain carries preconditions %v, want none", pcs)
	}
	// Admit's own firing fuses one more Admit behind the precondition that
	// the input held a second token before the first firing; the chain
	// cannot extend further (a third firing would escalate the same demand
	// to In ≥ 3, shadowing this chain at the common markings).
	assertChain(t, c, "Admit", []string{"Admit"}, []string{"In >= 2"})
	// Serve and Drain produce nothing on In, so tangibility proves Admit
	// stays disabled after they fire: no chain.
	for _, name := range []string{"Serve", "Drain"} {
		if got := chainNames(t, c, name); got != nil {
			t.Fatalf("%s fused chain = %v, want none", name, got)
		}
	}
}

func TestFusionCombinedProgramSkipsIntermediatePlaces(t *testing.T) {
	n := batchAdmitNet(4)
	c := MustCompile(n)
	batch, _ := n.TransitionByName("Batch")
	in, _ := n.PlaceByName("In")
	q, _ := n.PlaceByName("Q")
	// The combined Batch+4×Admit delta cancels on In (+4 then -4) and lands
	// +4 on Q, so the program must touch Q but not In.
	touched := map[int32]bool{}
	prog := c.progs[c.progOff[batch]:c.progOff[batch+1]]
	for i := 0; i < len(prog); {
		h := prog[i]
		touched[int32(h&0x7fffffff)] = true
		i += 1 + int(uint16(h>>32))
	}
	if touched[int32(in)] {
		t.Error("combined program touches the cancelled intermediate place In")
	}
	if !touched[int32(q)] {
		t.Error("combined program does not touch the chain's net output Q")
	}
}

// TestFusionRefusesGuardedTargets pins the one condition no precondition
// can discharge: a guard is an arbitrary marking predicate the static
// analysis cannot evaluate, so a guarded immediate can never be proven to
// fire (nor forced enabled) and nothing on its priority level fuses past
// it.
func TestFusionRefusesGuardedTargets(t *testing.T) {
	n := batchAdmitNet(4)
	id, _ := n.TransitionByName("Admit")
	n.SetGuard(id, func(m Marking) bool { return true })
	c := MustCompile(n)
	for i := range n.Transitions {
		tid := TransitionID(i)
		if chain := c.FusedChain(tid); chain != nil {
			t.Errorf("transition %s fuses %v past a guarded target", n.Transitions[i].Name, chain)
		}
		if conf := c.FusedConflict(tid); conf != nil {
			t.Errorf("transition %s got conflict terminal %v with a guarded member", n.Transitions[i].Name, conf)
		}
		if pcs := c.FusedPreconds(tid); pcs != nil {
			t.Errorf("transition %s carries preconditions %v without a chain", n.Transitions[i].Name, pcs)
		}
	}
}

// TestFusionPrecondChains pins the conditional chains: structures the
// purely structural analysis had to refuse wholesale now fuse behind
// runtime preconditions on the pre-firing marking, and chains whose
// precondition set would contradict the tangibility of that marking are
// pruned back to their satisfiable prefix.
func TestFusionPrecondChains(t *testing.T) {
	adm := []string{"Admit"}
	adm4 := []string{"Admit", "Admit", "Admit", "Admit"}
	cases := []struct {
		name   string
		mutate func(n *Net)
		want   map[string][2][]string // transition -> {chain, preconds}
	}{
		{
			name: "inhibitor on target",
			mutate: func(n *Net) {
				id, _ := n.TransitionByName("Admit")
				p, _ := n.PlaceByName("Done")
				n.Inhibitor(id, p, 100)
			},
			want: map[string][2][]string{
				// The batch chain fires all 4 admits when the inhibitor was
				// clear; a 5th step would demand In ≥ 1 at the pre-event
				// marking — with Done < 100 that proves Admit enabled at a
				// tangible marking, so the extension is pruned as dead.
				"Batch": {adm4, {"Done < 100"}},
				"Admit": {adm, {"In >= 2"}},
				// Serve raises Done toward the threshold, so its candidate
				// chain (In ≥ 1 ∧ Done < 99) is dead for the same reason.
				"Serve": {nil, nil},
				// Drain lowers Done: at Done = 100 exactly, its firing
				// un-inhibits Admit — a chain live at real markings.
				"Drain": {adm, {"In >= 1", "Done < 101"}},
			},
		},
		{
			name: "capacity-bounded output",
			mutate: func(n *Net) {
				p, _ := n.PlaceByName("Q")
				n.SetCapacity(p, 1000)
			},
			want: map[string][2][]string{
				"Batch": {adm4, {"Q < 997"}},
				"Admit": {adm, {"In >= 2", "Q < 999"}},
				// Serve frees one slot of the full queue; the capacity
				// bound Q ≤ 1000 supplies the post-firing room (see
				// TestFusionInvariantBoundSuspendedByInjection for the
				// injection story).
				"Serve": {adm, {"In >= 1"}},
				"Drain": {nil, nil},
			},
		},
		{
			name: "input place can go negative",
			mutate: func(n *Net) {
				// Duplicate input arcs: enabling checks each arc alone but
				// firing consumes their sum, so In can go negative and
				// loses its non-negativity floor. The chain survives with
				// an explicit In ≥ 0 floor as a precondition. (Found by
				// FuzzFusionEquivalence — seed 23662 in the corpus.)
				in, _ := n.PlaceByName("In")
				d, _ := n.PlaceByName("Done")
				dup := n.AddTimed("Dup", dist.NewExponential(1))
				n.Input(dup, in, 1)
				n.Input(dup, in, 1)
				n.Output(dup, d, 1)
			},
			want: map[string][2][]string{
				"Batch": {adm4, {"In >= 0"}},
				"Admit": {adm, {"In >= 2"}},
				"Dup":   {nil, nil},
			},
		},
	}
	for _, tc := range cases {
		n := batchAdmitNet(4)
		tc.mutate(n)
		c := MustCompile(n)
		for name, want := range tc.want {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				assertChain(t, c, name, want[0], want[1])
			})
		}
	}
}

// TestFusionConflictTerminal: a same-priority partner makes the postfix a
// weighted draw instead of a certain firing. The chain cannot absorb the
// firing, but the proven fully-live level is recorded as a conflict
// terminal for the engine to replay from the compiled weight tables.
func TestFusionConflictTerminal(t *testing.T) {
	n := batchAdmitNet(4)
	p, _ := n.PlaceByName("In")
	alt := n.AddImmediate("Alt", 2)
	n.Input(alt, p, 1)
	c := MustCompile(n)
	if chain := chainNames(t, c, "Batch"); chain != nil {
		t.Fatalf("Batch fused chain = %v, want none (conflict cannot be absorbed)", chain)
	}
	batch, _ := n.TransitionByName("Batch")
	var confNames []string
	for _, id := range c.FusedConflict(batch) {
		confNames = append(confNames, n.Transitions[id].Name)
	}
	if !slices.Equal(confNames, []string{"Admit", "Alt"}) {
		t.Fatalf("Batch conflict terminal = %v, want [Admit Alt]", confNames)
	}
	if pcs := preconds(t, c, "Batch"); pcs != nil {
		t.Fatalf("Batch conflict terminal carries preconditions %v, want none", pcs)
	}
	// Immediate parents never get conflict terminals: their firings already
	// run inside the resolver, whose own draw handles the level.
	admit, _ := n.TransitionByName("Admit")
	if conf := c.FusedConflict(admit); conf != nil {
		t.Fatalf("immediate parent Admit got conflict terminal %v", conf)
	}
}

// TestFusionProvesHigherPriorityLevelDead: an empty-trigger preemptor above
// the admit level does not block fusion — the tangibility of the pre-event
// marking proves it disabled, and nothing the chain fires feeds its input.
func TestFusionProvesHigherPriorityLevelDead(t *testing.T) {
	n := batchAdmitNet(4)
	p := n.AddPlace("Trigger")
	hi := n.AddImmediate("Preempt", 9)
	n.Input(hi, p, 1)
	c := MustCompile(n)
	assertChain(t, c, "Batch", []string{"Admit", "Admit", "Admit", "Admit"}, nil)
	// The immediates fuse too, each pinning the preemptor dead at their own
	// pre-firing marking with an explicit precondition.
	assertChain(t, c, "Admit", []string{"Admit"}, []string{"Trigger < 1", "In >= 2"})
	assertChain(t, c, "Preempt", []string{"Admit"}, []string{"Trigger < 2", "In >= 1"})
}

// TestFusionSelfRegeneratingChainIsCapped: a target that re-guarantees its
// own enabling would fuse forever; the compiler must cap the chain (the
// runtime livelock bound still fires through the resolver).
func TestFusionSelfRegeneratingChainIsCapped(t *testing.T) {
	n := NewNet("livelock")
	p := n.AddPlace("P")
	src := n.AddTimed("Src", dist.NewExponential(1))
	n.Output(src, p, 1)
	imm := n.AddImmediate("Grow", 1)
	n.Input(imm, p, 1)
	n.Output(imm, p, 2) // net +1: re-guarantees itself
	c := MustCompile(n)
	if got := len(c.FusedChain(src)); got != maxFusedChain {
		t.Fatalf("self-regenerating chain length = %d, want the %d cap", got, maxFusedChain)
	}
	// The livelock must still be detected, with every fused firing counted.
	_, err := c.Simulate(SimOptions{Seed: 1, Duration: 10, MaxVanishingChain: 500})
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("livelock not detected through fused chains: %v", err)
	}
}

// TestFusionFiringCountsIncludeFusedMembers: fused immediates never reach
// the resolver, but their throughput accounting must be unchanged.
func TestFusionFiringCountsIncludeFusedMembers(t *testing.T) {
	n := batchAdmitNet(8)
	c := MustCompile(n)
	if chainNames(t, c, "Batch") == nil {
		t.Fatal("precondition: Batch must fuse its admit chain")
	}
	res, err := c.Simulate(SimOptions{Seed: 3, Duration: 200})
	if err != nil {
		t.Fatal(err)
	}
	batch, _ := n.TransitionByName("Batch")
	admit, _ := n.TransitionByName("Admit")
	if res.Firings[admit] != 8*res.Firings[batch] {
		t.Fatalf("Admit firings = %d, want 8× Batch firings (%d)", res.Firings[admit], res.Firings[batch])
	}
}

// TestFusedSteadyStateLoopIsAllocationFree extends the engine's 0-alloc
// promise to a net whose every timed event executes a fused chain.
func TestFusedSteadyStateLoopIsAllocationFree(t *testing.T) {
	c := MustCompile(batchAdmitNet(8))
	e, err := c.acquireEngine(nil, SimOptions{Seed: 5, Duration: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer c.releaseEngine(e)
	if err := e.start(); err != nil {
		t.Fatal(err)
	}
	step := func() {
		ft, id := e.nextTimed()
		if id < 0 {
			t.Fatal("net deadlocked unexpectedly")
		}
		e.advanceTo(ft)
		if err := e.fireTimed(int32(id)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(2000, step)
	if allocs > 0 {
		t.Fatalf("fused steady-state loop allocates %.2f allocs/event, want 0", allocs)
	}
}

// TestCompiledDOTMarksFusedTransitions: exported graphs must stay
// debuggable — the parent names its fused chain and the absorbed immediate
// is visibly marked.
func TestCompiledDOTMarksFusedTransitions(t *testing.T) {
	c := MustCompile(batchAdmitNet(8))
	d := c.DOT()
	for _, want := range []string{"fuses Admit×8", "(fused)", "dashed"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Compiled.DOT missing %q:\n%s", want, d)
		}
	}
	// The plain net renderer must stay annotation-free.
	if plain := DOT(c.Net()); strings.Contains(plain, "fuse") {
		t.Fatalf("DOT(net) leaked fusion annotations:\n%s", plain)
	}
}

// TestCompiledSamplerKinds pins the devirtualized sampler classification,
// including the constructor-bypass fallback to the generic interface path.
func TestCompiledSamplerKinds(t *testing.T) {
	n := NewNet("kinds")
	p := n.AddPlaceInit("P", 1)
	add := func(name string, d dist.Distribution) TransitionID {
		id := n.AddTimed(name, d)
		n.Input(id, p, 1)
		n.Output(id, p, 1)
		return id
	}
	exp := add("exp", dist.NewExponential(2))
	det := add("det", dist.NewDeterministic(0.5))
	uni := add("uni", dist.NewUniform(1, 3))
	erl := add("erl", dist.NewErlang(3, 2))
	wei := add("wei", dist.NewWeibull(0.8, 1.5))
	hyp := add("hyp", dist.NewHyperExponential([]float64{0.3, 0.7}, []float64{1, 5}))
	bad := add("bad", dist.Uniform{Low: 2, High: 1}) // bypasses NewUniform validation
	badHyp := add("badHyp", dist.HyperExponential{Probs: []float64{1}, Rates: []float64{-2}})
	badExp := add("badExp", dist.Exponential{Rate: -1})
	// NewUniform accepts an infinite High, but span*0 would sample NaN with
	// no check on the compiled path; it must stay generic.
	infUni := add("infUni", dist.NewUniform(0, math.Inf(1)))
	c := MustCompile(n)
	want := map[TransitionID]uint8{
		exp: delayKindExp, det: delayKindDet, uni: delayKindUniform,
		erl: delayKindErlang, wei: delayKindWeibull, hyp: delayKindHyperExp,
		bad: delayKindGeneric, badHyp: delayKindGeneric,
		badExp: delayKindGeneric, infUni: delayKindGeneric,
	}
	for id, kind := range want {
		if got := c.delayKind[id]; got != kind {
			t.Errorf("%s: delayKind = %d, want %d", n.Transitions[id].Name, got, kind)
		}
	}
}
