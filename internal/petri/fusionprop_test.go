package petri_test

// Property tests for vanishing-chain fusion and the devirtualized sampler:
// on randomly generated nets the compiled engine must stay bit-identical to
// the scalar reference, conserve every P-invariant, and only ever visit
// markings reachable under the exported firing semantics. A Go fuzz harness
// exposes the same property to `go test -fuzz`.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/petri"
	"repro/internal/xrand"
)

// fusionBatchNet mirrors the internal batch-admit net shape from the
// exported API: a timed batch source whose admit chain fuses completely,
// drained by a whole-batch service. Per cycle the net fires two timed
// transitions and `batch` immediates, so vanishing firings dominate the
// event count — the workload shape the fusion fast path is built for.
func fusionBatchNet(batch int) *petri.Net {
	n := petri.NewNet("batch-admit-equiv")
	gen := n.AddPlaceInit("Gen", 1)
	in := n.AddPlace("In")
	q := n.AddPlace("Q")

	arr := n.AddTimed("Batch", dist.NewExponential(1))
	n.Input(arr, gen, 1)
	n.Output(arr, gen, 1)
	n.Output(arr, in, batch)

	admit := n.AddImmediate("Admit", 2)
	n.Input(admit, in, 1)
	n.Output(admit, q, 1)

	srv := n.AddTimed("Serve", dist.NewExponential(1.25))
	n.Input(srv, q, batch)
	return n
}

// guardTransientNet builds the trickiest legal fusion case: a guarded
// immediate at a lower priority whose guard is true ONLY at the vanishing
// marking the fused chain skips. The unfused engine evaluates the guard at
// that intermediate marking (and sees it flip back before the resolver
// reaches the guard's priority level); the fused engine never evaluates it
// there. Both must produce identical trajectories — the equivalence run
// proves guard transients cannot influence behavior once the chain head is
// the sole top-priority immediate.
func guardTransientNet() *petri.Net {
	n := petri.NewNet("guard-transient")
	p0 := n.AddPlaceInit("P0", 1)
	p1 := n.AddPlace("P1")
	p2 := n.AddPlace("P2")
	p3 := n.AddPlace("P3")

	ar := n.AddTimed("AR", dist.NewExponential(2))
	n.Input(ar, p0, 1)
	n.Output(ar, p0, 1)
	n.Output(ar, p1, 1)

	// Top singleton: fused into AR.
	t1 := n.AddImmediate("T1", 4)
	n.Input(t1, p1, 1)
	n.Output(t1, p2, 1)

	// Guard true exactly at the intermediate marking AR leaves behind.
	trap := n.AddImmediate("Trap", 1)
	n.Input(trap, p2, 1)
	n.Output(trap, p3, 1)
	n.SetGuard(trap, func(m petri.Marking) bool { return m[p1] >= 1 })

	// A guarded immediate that legitimately fires at tangible markings,
	// so the guardEnabled bookkeeping is exercised in both directions.
	pair := n.AddImmediate("Pair", 1)
	n.Input(pair, p2, 2)
	n.Output(pair, p3, 2)
	n.SetGuard(pair, func(m petri.Marking) bool { return m[p2] >= 2 })

	drain := n.AddTimed("Drain", dist.NewExponential(3))
	n.Input(drain, p3, 1)
	return n
}

// mixedDistNet exercises every devirtualized sampler kind in one net, with
// a fused admit chain on top.
func mixedDistNet() *petri.Net {
	n := petri.NewNet("mixed-dists")
	gen := n.AddPlaceInit("Gen", 1)
	in := n.AddPlace("In")
	q := n.AddPlace("Q")
	r := n.AddPlace("R")
	s := n.AddPlace("S")

	src := n.AddTimed("Src", dist.NewUniform(0.2, 1.1))
	n.Input(src, gen, 1)
	n.Output(src, gen, 1)
	n.Output(src, in, 2)

	adm := n.AddImmediate("Adm", 3)
	n.Input(adm, in, 1)
	n.Output(adm, q, 1)

	we := n.AddTimed("Wei", dist.NewWeibull(0.9, 0.4))
	n.Input(we, q, 1)
	n.Output(we, r, 1)

	er := n.AddTimed("Erl", dist.NewErlang(3, 4))
	n.Input(er, r, 1)
	n.Output(er, s, 1)

	hy := n.AddTimed("Hyp", dist.NewHyperExponential([]float64{0.35, 0.65}, []float64{0.8, 6}))
	n.Input(hy, s, 1)
	return n
}

// conflictNet: every source firing certainly enables two same-priority
// immediates with distinct weights, so the compiled engine replays the
// resolver's weighted conflict draw from its compile-time tables on every
// single event.
func conflictNet() *petri.Net {
	n := petri.NewNet("conflict")
	gen := n.AddPlaceInit("Gen", 1)
	in := n.AddPlace("In")
	qa := n.AddPlace("QA")
	qb := n.AddPlace("QB")

	src := n.AddTimed("Src", dist.NewExponential(1))
	n.Input(src, gen, 1)
	n.Output(src, gen, 1)
	n.Output(src, in, 1)

	a := n.AddImmediate("A", 2)
	n.SetWeight(a, 1.0)
	n.Input(a, in, 1)
	n.Output(a, qa, 1)

	b := n.AddImmediate("B", 2)
	n.SetWeight(b, 2.5)
	n.Input(b, in, 1)
	n.Output(b, qb, 1)

	da := n.AddTimed("DrainA", dist.NewExponential(2))
	n.Input(da, qa, 1)
	db := n.AddTimed("DrainB", dist.NewExponential(3))
	n.Input(db, qb, 1)
	return n
}

// invariantRingNet: an inhibitor whose clearance is only provable through a
// P-invariant — S0+S1 is conserved at 1, so S1 can never reach the
// inhibitor threshold 2 and the admit step fuses despite the inhibitor
// arc. The chain is bounds-dependent: Session.Inject can break the
// invariant, after which it must stop applying.
func invariantRingNet() *petri.Net {
	n := petri.NewNet("invariant-ring")
	s0 := n.AddPlaceInit("S0", 1)
	s1 := n.AddPlace("S1")
	gen := n.AddPlaceInit("Gen", 1)
	in := n.AddPlace("In")
	q := n.AddPlace("Q")

	flip := n.AddTimed("Flip", dist.NewExponential(0.7))
	n.Input(flip, s0, 1)
	n.Output(flip, s1, 1)
	flop := n.AddTimed("Flop", dist.NewExponential(1.3))
	n.Input(flop, s1, 1)
	n.Output(flop, s0, 1)

	src := n.AddTimed("Src", dist.NewExponential(2))
	n.Input(src, gen, 1)
	n.Output(src, gen, 1)
	n.Output(src, in, 1)

	admit := n.AddImmediate("Admit", 1)
	n.Input(admit, in, 1)
	n.Output(admit, q, 1)
	n.Inhibitor(admit, s1, 2)

	drain := n.AddTimed("Drain", dist.NewExponential(2.5))
	n.Input(drain, q, 1)
	return n
}

// TestFusionNetsMatchReference runs the dedicated fusion nets through the
// full bit-for-bit suite against the scalar reference engine.
func TestFusionNetsMatchReference(t *testing.T) {
	nets := map[string]*petri.Net{
		"batch8":         fusionBatchNet(8),
		"batch1":         fusionBatchNet(1),
		"guardTransient": guardTransientNet(),
		"mixedDists":     mixedDistNet(),
		"conflict":       conflictNet(),
		"invariantRing":  invariantRingNet(),
	}
	for name, n := range nets {
		c, err := petri.Compile(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seed := range []uint64{1, 17, 4242} {
			for _, mem := range []petri.MemoryPolicy{petri.RaceEnable, petri.RaceAge} {
				opt := petri.SimOptions{Seed: seed, Warmup: 10, Duration: 150, Memory: mem}
				want, err := refSimulate(n, opt)
				if err != nil {
					t.Fatalf("%s seed=%d %v: reference: %v", name, seed, mem, err)
				}
				got, err := c.Simulate(opt)
				if err != nil {
					t.Fatalf("%s seed=%d %v: compiled: %v", name, seed, mem, err)
				}
				assertIdentical(t, name, seed, mem, got, want)
			}
		}
	}
}

// TestFusionConflictDrawMatchesReference pins the conflict-terminal fast
// path: the source certainly enables the weighted A/B pair, the compiler
// records the level as a conflict terminal, and over a long run both
// branches are taken with the reference's exact draws (the bit-identical
// trajectory comparison runs in TestFusionNetsMatchReference).
func TestFusionConflictDrawMatchesReference(t *testing.T) {
	n := conflictNet()
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := n.TransitionByName("Src")
	if conf := c.FusedConflict(src); len(conf) != 2 {
		t.Fatalf("Src conflict terminal = %v, want the A/B pair", conf)
	}
	res, err := c.Simulate(petri.SimOptions{Seed: 11, Warmup: 10, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.TransitionByName("A")
	b, _ := n.TransitionByName("B")
	if res.Firings[a] == 0 || res.Firings[b] == 0 {
		t.Fatalf("conflict draw degenerated: A=%d B=%d firings", res.Firings[a], res.Firings[b])
	}
	// Weight 1 vs 2.5: B should win roughly 5/2 as often as A.
	ratio := float64(res.Firings[b]) / float64(res.Firings[a])
	if ratio < 1.8 || ratio > 3.4 {
		t.Fatalf("conflict weights ignored: B/A firing ratio = %.2f, want ≈2.5", ratio)
	}
}

// TestFusionInvariantBoundSuspendedByInjection: the invariant-ring chain is
// bounds-dependent, and an injection that breaks the conserved sum must
// suspend it — afterwards the inhibited admit transition may not fire, so
// the queue freezes while the input backs up.
func TestFusionInvariantBoundSuspendedByInjection(t *testing.T) {
	n := invariantRingNet()
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := n.TransitionByName("Src")
	if got := c.FusedChain(src); len(got) != 1 {
		t.Fatalf("Src fused chain = %v, want the single admit step", got)
	}
	if !c.BoundsDependent(src) {
		t.Fatal("Src chain not marked bounds-dependent despite the P-invariant proof")
	}
	s1, _ := n.PlaceByName("S1")
	in, _ := n.PlaceByName("In")
	admit, _ := n.TransitionByName("Admit")
	s, err := c.OpenSession(nil, petri.SimOptions{Seed: 7, Duration: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.StepTo(40); err != nil {
		t.Fatal(err)
	}
	if s.Firings(admit) == 0 {
		t.Fatal("admit chain never fired before the injection")
	}
	// Break the invariant: S1 jumps far past the inhibitor threshold, and
	// far enough that Flop cannot drain it below 2 within the window.
	if err := s.Inject(petri.Injection{Place: s1, Tokens: 500}); err != nil {
		t.Fatal(err)
	}
	admit0, in0 := s.Firings(admit), s.Tokens(in)
	if err := s.StepTo(80); err != nil {
		t.Fatal(err)
	}
	if got := s.Firings(admit); got != admit0 {
		t.Fatalf("inhibited admit still fired after the injection: %d -> %d firings", admit0, got)
	}
	if got := s.Tokens(in); got <= in0 {
		t.Fatalf("input did not back up after the injection: In %d -> %d", in0, got)
	}
}

// TestFusionPreservesExactReachability checks fusion against the exact
// engine: on a structurally bounded exponential net whose vanishing chain
// fuses, the CTMC reachability graph (reach.go) knows every tangible
// marking, and the simulation — which only ever stops at tangible markings
// — must end inside that set, with matching exact/simulated statistics.
func TestFusionPreservesExactReachability(t *testing.T) {
	n := petri.NewNet("cycle")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	cc := n.AddPlace("C")
	u := n.AddTimed("U", dist.NewExponential(2))
	n.Input(u, a, 1)
	n.Output(u, b, 1)
	step := n.AddImmediate("Step", 1)
	n.Input(step, b, 1)
	n.Output(step, cc, 1)
	v := n.AddTimed("V", dist.NewExponential(1))
	n.Input(v, cc, 1)
	n.Output(v, a, 1)

	comp, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if comp.FusedChain(u) == nil {
		t.Fatal("precondition: U must fuse its vanishing step")
	}
	exact, err := petri.SolveCTMC(n, petri.ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The vanishing marking B=1 must not be a CTMC state, and every
	// simulated final marking must be one of the tangible states.
	for _, m := range exact.Markings {
		if m[b] != 0 {
			t.Fatalf("vanishing marking %v leaked into the tangible set", m)
		}
	}
	for seed := uint64(0); seed < 8; seed++ {
		res, err := comp.Simulate(petri.SimOptions{Seed: seed, Warmup: 50, Duration: 2000})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range exact.Markings {
			if res.FinalMarking.Equal(m) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("seed %d: final marking %v not in the exact tangible set %v", seed, res.FinalMarking, exact.Markings)
		}
		if diff := res.PlaceAvg[a] - exact.PlaceAvg[a]; diff > 0.05 || diff < -0.05 {
			t.Fatalf("seed %d: simulated PlaceAvg[A]=%v vs exact %v", seed, res.PlaceAvg[a], exact.PlaceAvg[a])
		}
	}
}

// ---------------------------------------------------------------------------
// Random-net property tests

// randomNet generates a small valid net from a seed. Every immediate has at
// least one input (a sourceless immediate livelocks trivially); inhibitors
// and occasional weight-2 arcs keep the enabling logic honest. Roughly one
// net in three has a singleton top-priority immediate — a fusion candidate.
func randomNet(seed uint64) *petri.Net {
	rng := xrand.New(seed)
	n := petri.NewNet("fuzz")
	nP := 2 + rng.Intn(4)
	places := make([]petri.PlaceID, nP)
	for i := range places {
		places[i] = n.AddPlaceInit(string(rune('A'+i)), rng.Intn(3))
	}
	pick := func() petri.PlaceID { return places[rng.Intn(nP)] }
	w := func() int { return 1 + rng.Intn(2) }

	nT := 1 + rng.Intn(3)
	for i := 0; i < nT; i++ {
		var d dist.Distribution
		switch rng.Intn(4) {
		case 0:
			d = dist.NewDeterministic(0.1 + rng.Float64())
		case 1:
			d = dist.NewUniform(0.1, 0.5+rng.Float64())
		default:
			d = dist.NewExponential(0.5 + 2*rng.Float64())
		}
		id := n.AddTimed(string(rune('T'+i)), d)
		for k := rng.Intn(3); k > 0; k-- {
			n.Input(id, pick(), w())
		}
		for k := 1 + rng.Intn(2); k > 0; k-- {
			n.Output(id, pick(), w())
		}
		if rng.Intn(10) == 0 {
			n.Inhibitor(id, pick(), w())
		}
	}
	nI := rng.Intn(4)
	for i := 0; i < nI; i++ {
		id := n.AddImmediate(string(rune('a'+i)), 1+rng.Intn(3))
		if rng.Intn(3) > 0 {
			n.SetWeight(id, 0.5+2*rng.Float64())
		}
		n.Input(id, pick(), w())
		if k := rng.Intn(3); k > 0 {
			n.Output(id, pick(), w())
		}
		if rng.Intn(8) == 0 {
			n.Inhibitor(id, pick(), w())
		}
	}
	return n
}

// checkRandomNet compares the compiled engine against the scalar reference
// on one generated net and verifies P-invariant conservation and (on small
// state spaces) reachability of the final marking.
func checkRandomNet(t *testing.T, netSeed uint64) {
	t.Helper()
	n := randomNet(netSeed)
	if n.Validate() != nil {
		return
	}
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatalf("net %d: Compile: %v", netSeed, err)
	}
	invs, invErr := petri.PInvariants(n)
	init := n.InitialMarking()
	for _, simSeed := range []uint64{netSeed, netSeed + 101} {
		mem := petri.RaceEnable
		if simSeed%2 == 1 {
			mem = petri.RaceAge
		}
		opt := petri.SimOptions{Seed: simSeed, Warmup: 3, Duration: 40, Memory: mem, MaxVanishingChain: 300}
		want, refErr := refSimulate(n, opt)
		got, gotErr := c.Simulate(opt)
		if (refErr != nil) != (gotErr != nil) {
			t.Fatalf("net %d seed %d: reference err %v, compiled err %v", netSeed, simSeed, refErr, gotErr)
		}
		if refErr != nil {
			continue // both detected the livelock
		}
		assertIdentical(t, n.Name, simSeed, mem, got, want)
		if invErr == nil {
			for _, y := range invs {
				if petri.InvariantValue(got.FinalMarking, y) != petri.InvariantValue(init, y) {
					t.Fatalf("net %d seed %d: P-invariant %v violated: initial %v, final %v",
						netSeed, simSeed, y, init, got.FinalMarking)
				}
			}
		}
		assertReachable(t, n, got.FinalMarking, netSeed)
	}
}

// assertReachable BFS-explores the net's marking graph under the exported
// firing semantics (all transitions, so the set over-approximates any
// timed/immediate interleaving) and asserts the simulated final marking is
// a member. Nets whose state space exceeds the cap are skipped — the
// bit-for-bit comparison already pins their trajectories.
func assertReachable(t *testing.T, n *petri.Net, final petri.Marking, netSeed uint64) {
	t.Helper()
	const cap = 4000
	seen := map[string]bool{}
	queue := []petri.Marking{n.InitialMarking()}
	seen[n.InitialMarking().Key()] = true
	for len(queue) > 0 {
		if len(seen) > cap {
			return // unbounded or too large; skip the membership check
		}
		m := queue[0]
		queue = queue[1:]
		for i := range n.Transitions {
			if !n.Enabled(m, petri.TransitionID(i)) {
				continue
			}
			next := m.Clone()
			n.Fire(next, petri.TransitionID(i))
			if k := next.Key(); !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	if !seen[final.Key()] {
		t.Fatalf("net %d: final marking %v unreachable under the exported semantics", netSeed, final)
	}
}

// TestFusionRespectsSmallVanishingChainBound: a MaxVanishingChain smaller
// than a fused chain must still produce the livelock error the scalar
// engine raises partway through the chain — the fused block may not be
// applied atomically past the bound.
func TestFusionRespectsSmallVanishingChainBound(t *testing.T) {
	n := fusionBatchNet(8)
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []int{4, 8, 9} {
		opt := petri.SimOptions{Seed: 2, Duration: 50, MaxVanishingChain: bound}
		_, refErr := refSimulate(n, opt)
		_, gotErr := c.Simulate(opt)
		if (refErr != nil) != (gotErr != nil) {
			t.Fatalf("bound %d: reference err %v, compiled err %v", bound, refErr, gotErr)
		}
	}
}

// TestFusionPropertyRandomNets is the main property sweep.
func TestFusionPropertyRandomNets(t *testing.T) {
	fused, precond, conflict := 0, 0, 0
	for seed := uint64(0); seed < 150; seed++ {
		checkRandomNet(t, seed)
		n := randomNet(seed)
		if n.Validate() != nil {
			continue
		}
		if c, err := petri.Compile(n); err == nil {
			hasChain, hasPre, hasConf := false, false, false
			for i := range n.Transitions {
				id := petri.TransitionID(i)
				if c.FusedChain(id) != nil {
					hasChain = true
					if c.FusedPreconds(id) != nil {
						hasPre = true
					}
				}
				if c.FusedConflict(id) != nil {
					hasConf = true
				}
			}
			if hasChain {
				fused++
			}
			if hasPre {
				precond++
			}
			if hasConf {
				conflict++
			}
		}
	}
	// The sweep is only meaningful if a decent share of generated nets
	// actually exercises each fusion mechanism.
	if fused < 10 || precond < 10 || conflict < 3 {
		t.Fatalf("random nets exercised fusion %d / preconditions %d / conflicts %d times; generator drifted",
			fused, precond, conflict)
	}
}

// FuzzFusionEquivalence exposes the property to the native fuzzer:
// `go test -fuzz=FuzzFusionEquivalence ./internal/petri`.
func FuzzFusionEquivalence(f *testing.F) {
	for seed := uint64(0); seed < 24; seed++ {
		f.Add(seed * 7919)
	}
	// Seeds whose nets compile to a conflict terminal (a same-priority
	// weighted draw replayed from the compiled tables) — the rarest fusion
	// mechanism, pinned explicitly so the corpus always covers it.
	for _, seed := range []uint64{13, 28, 31, 90, 177, 190, 229, 248} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, netSeed uint64) {
		checkRandomNet(t, netSeed)
	})
}
