package petri

import (
	"fmt"
	"sort"
)

// IncidenceMatrix returns C with C[p][t] = W(t,p) - W(p,t): the net token
// change of place p when transition t fires. Inhibitor arcs do not
// contribute (they only constrain enabling).
func IncidenceMatrix(n *Net) [][]int {
	c := make([][]int, len(n.Places))
	for p := range c {
		c[p] = make([]int, len(n.Transitions))
	}
	for ti := range n.Transitions {
		tr := &n.Transitions[ti]
		for _, a := range tr.Inputs {
			c[a.Place][ti] -= a.Weight
		}
		for _, a := range tr.Outputs {
			c[a.Place][ti] += a.Weight
		}
	}
	return c
}

// PInvariants returns the minimal-support non-negative integer P-semiflows
// of the net: vectors y (indexed by place) with y^T C = 0. Every marking M
// reachable from M0 then satisfies y.M = y.M0, which is the conservation
// property verified by the engine's property tests.
//
// The computation is the classical Farkas algorithm; it returns an error if
// the intermediate row set explodes beyond a safety bound.
func PInvariants(n *Net) ([][]int, error) {
	c := IncidenceMatrix(n)
	return farkas(c, len(n.Places), len(n.Transitions))
}

// TInvariants returns the minimal-support non-negative integer T-semiflows:
// vectors x (indexed by transition) with C x = 0. Firing every transition
// x[t] times returns the net to its starting marking.
func TInvariants(n *Net) ([][]int, error) {
	c := IncidenceMatrix(n)
	// Transpose: rows become transitions.
	ct := make([][]int, len(n.Transitions))
	for t := range ct {
		ct[t] = make([]int, len(n.Places))
		for p := range n.Places {
			ct[t][p] = c[p][t]
		}
	}
	return farkas(ct, len(n.Transitions), len(n.Places))
}

// farkas computes the minimal-support non-negative annullers of the rows of
// an n×m matrix: vectors y >= 0 with y^T A = 0 (where A has n rows).
func farkas(a [][]int, nRows, nCols int) ([][]int, error) {
	const maxRows = 20000
	// Working tableau rows: [A-part | identity-part].
	type row struct {
		a []int // length nCols, current residual
		y []int // length nRows, the combination coefficients
	}
	rows := make([]row, nRows)
	for i := 0; i < nRows; i++ {
		r := row{a: append([]int(nil), a[i]...), y: make([]int, nRows)}
		r.y[i] = 1
		rows[i] = r
	}
	for col := 0; col < nCols; col++ {
		var zero, pos, neg []row
		for _, r := range rows {
			switch {
			case r.a[col] == 0:
				zero = append(zero, r)
			case r.a[col] > 0:
				pos = append(pos, r)
			default:
				neg = append(neg, r)
			}
		}
		if len(zero)+len(pos)*len(neg) > maxRows {
			return nil, fmt.Errorf("petri: Farkas row explosion at column %d (%d rows)", col, len(zero)+len(pos)*len(neg))
		}
		next := zero
		for _, rp := range pos {
			for _, rn := range neg {
				cp, cn := rp.a[col], -rn.a[col]
				g := gcd(cp, cn)
				fp, fn := cn/g, cp/g
				nr := row{a: make([]int, nCols), y: make([]int, nRows)}
				for j := 0; j < nCols; j++ {
					nr.a[j] = fp*rp.a[j] + fn*rn.a[j]
				}
				for j := 0; j < nRows; j++ {
					nr.y[j] = fp*rp.y[j] + fn*rn.y[j]
				}
				normalizeRow(nr.a, nr.y)
				next = append(next, nr)
			}
		}
		rows = next
	}
	// Collect the y-parts, dropping zero vectors and duplicates, then
	// filter to minimal support.
	var invs [][]int
	seen := map[string]bool{}
	for _, r := range rows {
		if isZeroVec(r.y) {
			continue
		}
		k := fmt.Sprint(r.y)
		if seen[k] {
			continue
		}
		seen[k] = true
		invs = append(invs, r.y)
	}
	invs = minimalSupport(invs)
	sort.Slice(invs, func(i, j int) bool { return lexLess(invs[i], invs[j]) })
	return invs, nil
}

// normalizeRow divides both row parts by the GCD of all entries.
func normalizeRow(a, y []int) {
	g := 0
	for _, v := range a {
		g = gcd(g, abs(v))
	}
	for _, v := range y {
		g = gcd(g, abs(v))
	}
	if g > 1 {
		for i := range a {
			a[i] /= g
		}
		for i := range y {
			y[i] /= g
		}
	}
}

// minimalSupport removes vectors whose support strictly contains the
// support of another vector.
func minimalSupport(invs [][]int) [][]int {
	var keep [][]int
	for i, v := range invs {
		minimal := true
		for j, w := range invs {
			if i == j {
				continue
			}
			if supportSubset(w, v) && !supportSubset(v, w) {
				minimal = false
				break
			}
		}
		if minimal {
			keep = append(keep, v)
		}
	}
	return keep
}

// supportSubset reports whether supp(a) ⊆ supp(b).
func supportSubset(a, b []int) bool {
	for i := range a {
		if a[i] != 0 && b[i] == 0 {
			return false
		}
	}
	return true
}

func isZeroVec(v []int) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

// InvariantValue returns the weighted token sum y.M of a marking under a
// P-invariant. For a valid P-invariant this value is constant over every
// reachable marking.
func InvariantValue(m Marking, y []int) int {
	if len(m) != len(y) {
		panic(fmt.Sprintf("petri: invariant length %d does not match marking length %d", len(y), len(m)))
	}
	s := 0
	for i := range m {
		s += m[i] * y[i]
	}
	return s
}

// CoveredPlaces reports, per place, whether some P-invariant has a positive
// coefficient there. Covered places are structurally bounded.
func CoveredPlaces(n *Net, invs [][]int) []bool {
	covered := make([]bool, len(n.Places))
	for _, y := range invs {
		for p, v := range y {
			if v > 0 {
				covered[p] = true
			}
		}
	}
	return covered
}
