package petri

import (
	"testing"

	"repro/internal/xrand"
)

// ringNet builds a simple conservative ring A -> B -> A.
func ringNet() *Net {
	n := NewNet("ring")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	ab := n.AddExponential("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	ba := n.AddExponential("BA", 1)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)
	return n
}

func TestIncidenceMatrix(t *testing.T) {
	n := ringNet()
	c := IncidenceMatrix(n)
	// C[A] = [-1, +1], C[B] = [+1, -1].
	if c[0][0] != -1 || c[0][1] != 1 || c[1][0] != 1 || c[1][1] != -1 {
		t.Fatalf("incidence = %v", c)
	}
}

func TestIncidenceMatrixWeights(t *testing.T) {
	n := NewNet("w")
	a := n.AddPlaceInit("A", 2)
	b := n.AddPlace("B")
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 2)
	n.Output(tr, b, 1)
	c := IncidenceMatrix(n)
	if c[0][0] != -2 || c[1][0] != 1 {
		t.Fatalf("incidence = %v", c)
	}
}

func TestIncidenceIgnoresInhibitors(t *testing.T) {
	n := NewNet("i")
	a := n.AddPlace("A")
	b := n.AddPlace("B")
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 1)
	n.Inhibitor(tr, b, 1)
	c := IncidenceMatrix(n)
	if c[1][0] != 0 {
		t.Fatalf("inhibitor contributed to incidence: %v", c)
	}
}

func TestPInvariantsRing(t *testing.T) {
	n := ringNet()
	invs, err := PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 {
		t.Fatalf("invariants = %v, want exactly one", invs)
	}
	if invs[0][0] != 1 || invs[0][1] != 1 {
		t.Fatalf("invariant = %v, want [1 1]", invs[0])
	}
}

func TestPInvariantsWeighted(t *testing.T) {
	// T consumes 2 from A, produces 1 in B => invariant [1, 2]:
	// tokens(A) + 2*tokens(B) is conserved.
	n := NewNet("w")
	a := n.AddPlaceInit("A", 4)
	b := n.AddPlace("B")
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 2)
	n.Output(tr, b, 1)
	back := n.AddImmediate("U", 1)
	n.Input(back, b, 1)
	n.Output(back, a, 2)
	invs, err := PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 2 {
		t.Fatalf("invariants = %v, want [[1 2]]", invs)
	}
}

func TestPInvariantsNoneForSource(t *testing.T) {
	// A pure source/sink net conserves nothing.
	n := NewNet("src")
	q := n.AddPlace("Q")
	arr := n.AddExponential("Arr", 1)
	n.Output(arr, q, 1)
	srv := n.AddExponential("Srv", 1)
	n.Input(srv, q, 1)
	invs, err := PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 0 {
		t.Fatalf("unexpected invariants %v", invs)
	}
}

func TestTInvariantsRing(t *testing.T) {
	n := ringNet()
	invs, err := TInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(invs) != 1 || invs[0][0] != 1 || invs[0][1] != 1 {
		t.Fatalf("T-invariants = %v, want [[1 1]]", invs)
	}
}

func TestTInvariantFiringReturnsMarking(t *testing.T) {
	// Firing each transition per the T-invariant restores the marking.
	n := ringNet()
	invs, err := TInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	m := n.InitialMarking()
	orig := m.Clone()
	for ti, count := range invs[0] {
		for k := 0; k < count; k++ {
			if !n.Enabled(m, TransitionID(ti)) {
				t.Skip("firing order matters; skip when not directly fireable")
			}
			n.Fire(m, TransitionID(ti))
		}
	}
	if !m.Equal(orig) {
		t.Fatalf("marking after T-invariant firing = %v, want %v", m, orig)
	}
}

func TestInvariantValueConservedUnderRandomFiring(t *testing.T) {
	// Property test: along any firing sequence of the ring net, the
	// P-invariant token sum never changes.
	n := ringNet()
	invs, err := PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(8)
	m := n.InitialMarking()
	want := InvariantValue(m, invs[0])
	for step := 0; step < 1000; step++ {
		var enabled []TransitionID
		for ti := range n.Transitions {
			if n.Enabled(m, TransitionID(ti)) {
				enabled = append(enabled, TransitionID(ti))
			}
		}
		if len(enabled) == 0 {
			break
		}
		n.Fire(m, enabled[r.Intn(len(enabled))])
		if got := InvariantValue(m, invs[0]); got != want {
			t.Fatalf("invariant value changed: %d -> %d at step %d", want, got, step)
		}
	}
}

func TestInvariantValueLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	InvariantValue(Marking{1, 2}, []int{1})
}

func TestCoveredPlaces(t *testing.T) {
	n := NewNet("c")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	q := n.AddPlace("Q") // fed by a source, unbounded
	ab := n.AddExponential("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	n.Output(ab, q, 1)
	ba := n.AddExponential("BA", 1)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)
	invs, err := PInvariants(n)
	if err != nil {
		t.Fatal(err)
	}
	cov := CoveredPlaces(n, invs)
	if !cov[a] || !cov[b] {
		t.Fatalf("ring places not covered: %v", cov)
	}
	if cov[q] {
		t.Fatal("unbounded place reported covered")
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 18, 6}, {18, 12, 6}, {5, 0, 5}, {0, 5, 5}, {0, 0, 0},
		{-12, 18, 6}, {7, 13, 1},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestFarkasFindsRingInvariantProperty: for random token-conserving rings
// (every transition moves exactly one token to the next place), the Farkas
// algorithm must always report the all-ones invariant.
func TestFarkasFindsRingInvariantProperty(t *testing.T) {
	r := xrand.New(55)
	for trial := 0; trial < 50; trial++ {
		k := 2 + r.Intn(8)
		n := NewNet("ring")
		places := make([]PlaceID, k)
		for i := 0; i < k; i++ {
			places[i] = n.AddPlaceInit(ringName("P", i), r.Intn(3))
		}
		for i := 0; i < k; i++ {
			tr := n.AddExponential(ringName("T", i), 1+r.Float64())
			n.Input(tr, places[i], 1)
			n.Output(tr, places[(i+1)%k], 1)
		}
		invs, err := PInvariants(n)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, y := range invs {
			allOnes := true
			for _, v := range y {
				if v != 1 {
					allOnes = false
					break
				}
			}
			if allOnes {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d (k=%d): all-ones invariant not found in %v", trial, k, invs)
		}
	}
}

func ringName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

func TestMinimalSupportFiltering(t *testing.T) {
	// [1 1 0] is minimal; [1 1 1] has strictly larger support and must be
	// dropped if both appear.
	invs := [][]int{{1, 1, 0}, {1, 1, 1}}
	got := minimalSupport(invs)
	if len(got) != 1 || got[0][2] != 0 {
		t.Fatalf("minimalSupport = %v", got)
	}
}
