package petri

import (
	"encoding/json"
	"fmt"

	"repro/internal/dist"
)

// netJSON is the on-disk representation consumed by cmd/petrisim. Guards
// are not serializable; nets loaded from JSON have none.
type netJSON struct {
	Name        string           `json:"name"`
	Places      []placeJSON      `json:"places"`
	Transitions []transitionJSON `json:"transitions"`
	Arcs        []arcJSON        `json:"arcs"`
}

type placeJSON struct {
	Name     string `json:"name"`
	Initial  int    `json:"initial,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
}

type transitionJSON struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"` // immediate|exponential|deterministic|uniform|erlang
	Priority int     `json:"priority,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
	Rate     float64 `json:"rate,omitempty"`
	Mean     float64 `json:"mean,omitempty"`
	Delay    float64 `json:"delay,omitempty"`
	Low      float64 `json:"low,omitempty"`
	High     float64 `json:"high,omitempty"`
	K        int     `json:"k,omitempty"`
	// Servers: 0/1 single-server, k > 1 k-server, -1 infinite-server.
	Servers int `json:"servers,omitempty"`
}

type arcJSON struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Weight int    `json:"weight,omitempty"`
	Kind   string `json:"kind,omitempty"` // "" (normal) | "inhibitor"
}

// MarshalJSON serializes the net. Only the built-in distribution kinds
// (exponential, deterministic, uniform, Erlang) round-trip; other
// distributions cause an error.
func MarshalJSON(n *Net) ([]byte, error) {
	out := netJSON{Name: n.Name}
	for _, p := range n.Places {
		out.Places = append(out.Places, placeJSON{Name: p.Name, Initial: p.Initial, Capacity: p.Capacity})
	}
	for ti := range n.Transitions {
		t := &n.Transitions[ti]
		tj := transitionJSON{Name: t.Name, Servers: t.Servers}
		switch t.Kind {
		case Immediate:
			tj.Kind = "immediate"
			tj.Priority = t.Priority
			tj.Weight = t.Weight
		case Timed:
			switch d := t.Delay.(type) {
			case dist.Exponential:
				tj.Kind = "exponential"
				tj.Rate = d.Rate
			case dist.Deterministic:
				tj.Kind = "deterministic"
				tj.Delay = d.Value
			case dist.Uniform:
				tj.Kind = "uniform"
				tj.Low, tj.High = d.Low, d.High
			case dist.Erlang:
				tj.Kind = "erlang"
				tj.K, tj.Rate = d.K, d.Rate
			default:
				return nil, fmt.Errorf("petri: cannot serialize delay distribution %s of transition %q", t.Delay, t.Name)
			}
		}
		out.Transitions = append(out.Transitions, tj)
		for _, a := range t.Inputs {
			out.Arcs = append(out.Arcs, arcJSON{From: n.Places[a.Place].Name, To: t.Name, Weight: a.Weight})
		}
		for _, a := range t.Outputs {
			out.Arcs = append(out.Arcs, arcJSON{From: t.Name, To: n.Places[a.Place].Name, Weight: a.Weight})
		}
		for _, a := range t.Inhibitors {
			out.Arcs = append(out.Arcs, arcJSON{From: n.Places[a.Place].Name, To: t.Name, Weight: a.Weight, Kind: "inhibitor"})
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON parses a net from its JSON representation and validates it.
func UnmarshalJSON(data []byte) (*Net, error) {
	var in netJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("petri: parsing net JSON: %w", err)
	}
	n := NewNet(in.Name)
	for _, p := range in.Places {
		if p.Initial < 0 {
			return nil, fmt.Errorf("petri: place %q has negative initial marking", p.Name)
		}
		id := n.AddPlaceInit(p.Name, p.Initial)
		if p.Capacity > 0 {
			n.SetCapacity(id, p.Capacity)
		}
	}
	for _, t := range in.Transitions {
		switch t.Kind {
		case "immediate":
			id := n.AddImmediate(t.Name, t.Priority)
			if t.Weight > 0 {
				n.SetWeight(id, t.Weight)
			}
		case "exponential":
			rate := t.Rate
			if rate == 0 && t.Mean > 0 {
				rate = 1 / t.Mean
			}
			if rate <= 0 {
				return nil, fmt.Errorf("petri: exponential transition %q needs rate or mean", t.Name)
			}
			id := n.AddExponential(t.Name, rate)
			switch {
			case t.Servers == InfiniteServers:
				n.SetInfiniteServer(id)
			case t.Servers > 1:
				n.SetServers(id, t.Servers)
			case t.Servers < InfiniteServers:
				return nil, fmt.Errorf("petri: transition %q has invalid servers %d", t.Name, t.Servers)
			}
		case "deterministic":
			if t.Delay < 0 {
				return nil, fmt.Errorf("petri: deterministic transition %q has negative delay", t.Name)
			}
			n.AddDeterministic(t.Name, t.Delay)
		case "uniform":
			if t.High <= t.Low {
				return nil, fmt.Errorf("petri: uniform transition %q needs low < high", t.Name)
			}
			n.AddTimed(t.Name, dist.NewUniform(t.Low, t.High))
		case "erlang":
			if t.K < 1 {
				return nil, fmt.Errorf("petri: erlang transition %q needs k >= 1", t.Name)
			}
			switch {
			case t.Rate > 0:
				n.AddTimed(t.Name, dist.NewErlang(t.K, t.Rate))
			case t.Mean > 0:
				n.AddTimed(t.Name, dist.ErlangMean(t.K, t.Mean))
			default:
				return nil, fmt.Errorf("petri: erlang transition %q needs rate or mean", t.Name)
			}
		default:
			return nil, fmt.Errorf("petri: unknown transition kind %q for %q", t.Kind, t.Name)
		}
	}
	for _, a := range in.Arcs {
		w := a.Weight
		if w == 0 {
			w = 1
		}
		fromP, fromIsPlace := n.PlaceByName(a.From)
		toT, toIsTrans := n.TransitionByName(a.To)
		fromT, fromIsTrans := n.TransitionByName(a.From)
		toP, toIsPlace := n.PlaceByName(a.To)
		switch {
		case a.Kind == "inhibitor":
			if !fromIsPlace || !toIsTrans {
				return nil, fmt.Errorf("petri: inhibitor arc %q -> %q must go from place to transition", a.From, a.To)
			}
			n.Inhibitor(toT, fromP, w)
		case fromIsPlace && toIsTrans:
			n.Input(toT, fromP, w)
		case fromIsTrans && toIsPlace:
			n.Output(fromT, toP, w)
		default:
			return nil, fmt.Errorf("petri: arc %q -> %q does not connect a place and a transition", a.From, a.To)
		}
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}
