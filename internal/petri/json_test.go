package petri

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

func buildRoundTripNet() *Net {
	n := NewNet("roundtrip")
	a := n.AddPlaceInit("A", 2)
	b := n.AddPlace("B")
	n.SetCapacity(b, 7)
	c := n.AddPlace("C")
	imm := n.AddImmediate("Imm", 3)
	n.SetWeight(imm, 2.5)
	n.Input(imm, a, 1)
	n.Output(imm, b, 2)
	exp := n.AddExponential("Exp", 1.5)
	n.Input(exp, b, 1)
	n.Output(exp, c, 1)
	n.SetInfiniteServer(exp)
	expC := n.AddExponential("ExpC", 2.5)
	n.Input(expC, b, 1)
	n.SetServers(expC, 3)
	det := n.AddDeterministic("Det", 0.25)
	n.Input(det, c, 1)
	n.Output(det, a, 1)
	uni := n.AddTimed("Uni", dist.NewUniform(1, 2))
	n.Input(uni, a, 1)
	n.Inhibitor(uni, b, 3)
	erl := n.AddTimed("Erl", dist.NewErlang(4, 8))
	n.Output(erl, a, 1)
	n.Input(erl, c, 1)
	return n
}

func TestJSONRoundTrip(t *testing.T) {
	n := buildRoundTripNet()
	data, err := MarshalJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := UnmarshalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Name != n.Name {
		t.Fatalf("name = %q, want %q", n2.Name, n.Name)
	}
	if len(n2.Places) != len(n.Places) || len(n2.Transitions) != len(n.Transitions) {
		t.Fatal("structure size mismatch after round trip")
	}
	for i, p := range n.Places {
		q := n2.Places[i]
		if p.Name != q.Name || p.Initial != q.Initial || p.Capacity != q.Capacity {
			t.Fatalf("place %d mismatch: %+v vs %+v", i, p, q)
		}
	}
	for i := range n.Transitions {
		p, q := &n.Transitions[i], &n2.Transitions[i]
		if p.Name != q.Name || p.Kind != q.Kind || p.Priority != q.Priority {
			t.Fatalf("transition %d mismatch: %+v vs %+v", i, p, q)
		}
		if p.Kind == Immediate && math.Abs(p.Weight-q.Weight) > 1e-12 {
			t.Fatalf("weight mismatch: %v vs %v", p.Weight, q.Weight)
		}
		if p.Kind == Timed {
			if p.Delay.String() != q.Delay.String() {
				t.Fatalf("delay mismatch: %s vs %s", p.Delay, q.Delay)
			}
		}
		if p.Servers != q.Servers {
			t.Fatalf("%s: servers %d vs %d after round trip", p.Name, p.Servers, q.Servers)
		}
		if len(p.Inputs) != len(q.Inputs) || len(p.Outputs) != len(q.Outputs) || len(p.Inhibitors) != len(q.Inhibitors) {
			t.Fatalf("arc counts mismatch on %s", p.Name)
		}
	}
}

func TestJSONRoundTripBehaviour(t *testing.T) {
	// The round-tripped net must simulate identically (same seed).
	n := mm1Net(1, 4)
	data, err := MarshalJSON(n)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := UnmarshalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Simulate(n, SimOptions{Seed: 9, Duration: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(n2, SimOptions{Seed: 9, Duration: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.PlaceAvg {
		if r1.PlaceAvg[i] != r2.PlaceAvg[i] {
			t.Fatalf("round-tripped net diverged: %v vs %v", r1.PlaceAvg, r2.PlaceAvg)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown kind":     `{"name":"x","places":[{"name":"A"}],"transitions":[{"name":"T","kind":"weird"}],"arcs":[]}`,
		"exp without rate": `{"name":"x","places":[{"name":"A"}],"transitions":[{"name":"T","kind":"exponential"}],"arcs":[]}`,
		"erlang without k": `{"name":"x","places":[{"name":"A"}],"transitions":[{"name":"T","kind":"erlang","mean":1}],"arcs":[]}`,
		"uniform bad":      `{"name":"x","places":[{"name":"A"}],"transitions":[{"name":"T","kind":"uniform","low":2,"high":1}],"arcs":[]}`,
		"arc to nothing":   `{"name":"x","places":[{"name":"A"}],"transitions":[{"name":"T","kind":"immediate"}],"arcs":[{"from":"A","to":"Z"}]}`,
		"inhibitor from T": `{"name":"x","places":[{"name":"A"}],"transitions":[{"name":"T","kind":"immediate"}],"arcs":[{"from":"T","to":"A","kind":"inhibitor"}]}`,
		"negative initial": `{"name":"x","places":[{"name":"A","initial":-1}],"transitions":[{"name":"T","kind":"immediate"}],"arcs":[]}`,
	}
	for name, raw := range cases {
		if _, err := UnmarshalJSON([]byte(raw)); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestUnmarshalExponentialMean(t *testing.T) {
	raw := `{"name":"x","places":[{"name":"A","initial":1}],
	 "transitions":[{"name":"T","kind":"exponential","mean":0.5}],
	 "arcs":[{"from":"A","to":"T"}]}`
	n, err := UnmarshalJSON([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	tr := n.Transitions[0]
	e, ok := tr.Delay.(dist.Exponential)
	if !ok || math.Abs(e.Rate-2) > 1e-12 {
		t.Fatalf("mean 0.5 should give rate 2, got %v", tr.Delay)
	}
}

func TestUnmarshalDefaultArcWeight(t *testing.T) {
	raw := `{"name":"x","places":[{"name":"A","initial":1}],
	 "transitions":[{"name":"T","kind":"immediate"}],
	 "arcs":[{"from":"A","to":"T"}]}`
	n, err := UnmarshalJSON([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if n.Transitions[0].Inputs[0].Weight != 1 {
		t.Fatal("default arc weight not 1")
	}
}

func TestMarshalRejectsExoticDistribution(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlaceInit("A", 1)
	tr := n.AddTimed("T", dist.NewWeibull(2, 1))
	n.Input(tr, a, 1)
	if _, err := MarshalJSON(n); err == nil || !strings.Contains(err.Error(), "serialize") {
		t.Fatalf("want serialization error, got %v", err)
	}
}
