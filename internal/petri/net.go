// Package petri implements Extended Deterministic and Stochastic Petri Nets
// (EDSPNs) in the style of TimeNet: places, immediate transitions with
// priorities and weights, timed transitions with arbitrary firing-delay
// distributions (exponential, deterministic, Erlang, ...), inhibitor arcs,
// guards and place capacities.
//
// The package provides three analysis engines:
//
//   - a discrete-event simulator with race-enabling memory semantics and
//     time-averaged token statistics (sim.go), the method the paper uses to
//     evaluate its CPU model;
//   - structural analysis: incidence matrix and P/T-invariants via the
//     Farkas algorithm (invariants.go);
//   - exact numerical analysis of nets whose timed transitions are all
//     exponential: reachability-graph construction with on-the-fly
//     elimination of vanishing markings, yielding a CTMC whose stationary
//     distribution gives exact token statistics (reach.go).
//
// Nets can be serialized to JSON (json.go) and exported to Graphviz DOT
// (dot.go).
package petri

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dist"
)

// PlaceID identifies a place within its net.
type PlaceID int

// TransitionID identifies a transition within its net.
type TransitionID int

// Kind discriminates transition firing semantics.
type Kind int

const (
	// Immediate transitions fire in zero time, before any timed
	// transition, ordered by priority (higher first) and selected by
	// weight among equal priorities.
	Immediate Kind = iota
	// Timed transitions fire after a delay sampled from a distribution.
	Timed
)

func (k Kind) String() string {
	switch k {
	case Immediate:
		return "immediate"
	case Timed:
		return "timed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Arc connects a place to a transition (input/inhibitor) or a transition to
// a place (output) with an integer multiplicity.
type Arc struct {
	Place  PlaceID
	Weight int
}

// Place is a token container.
type Place struct {
	Name    string
	Initial int
	// Capacity bounds the tokens the place can hold; 0 means unbounded.
	// A transition whose firing would overflow a bounded output place is
	// not enabled.
	Capacity int
}

// Guard is an extra enabling predicate evaluated on the current marking.
type Guard func(Marking) bool

// Transition consumes tokens from input places and produces tokens in
// output places when it fires.
type Transition struct {
	Name string
	Kind Kind
	// Delay is the firing-delay distribution for timed transitions.
	Delay dist.Distribution
	// Priority orders immediate transitions; higher fires first.
	// The paper's Table 1 assigns T1=4, T6=3, T5=2, T2=1.
	Priority int
	// Weight resolves random choices among enabled immediate transitions
	// of equal priority. Defaults to 1.
	Weight float64
	// Guard, when non-nil, must be true for the transition to be enabled.
	Guard Guard
	// Servers selects the firing semantics of an exponential timed
	// transition: 0 (or 1) is single-server, k > 1 is k-server, and
	// InfiniteServers scales the firing rate with the full enabling
	// degree (TimeNet's infinite-server semantics, needed for closed
	// workloads where each circulating customer carries its own clock).
	// Non-exponential timed transitions must be single-server.
	Servers int

	Inputs     []Arc
	Outputs    []Arc
	Inhibitors []Arc
}

// InfiniteServers marks a transition as infinite-server: its exponential
// rate is multiplied by the enabling degree.
const InfiniteServers = -1

// Net is an Extended Deterministic and Stochastic Petri Net.
type Net struct {
	Name        string
	Places      []Place
	Transitions []Transition
}

// NewNet creates an empty net with the given name.
func NewNet(name string) *Net {
	return &Net{Name: name}
}

// AddPlace adds a place with zero initial tokens and no capacity bound.
func (n *Net) AddPlace(name string) PlaceID {
	return n.AddPlaceInit(name, 0)
}

// AddPlaceInit adds a place with the given initial marking.
func (n *Net) AddPlaceInit(name string, initial int) PlaceID {
	if initial < 0 {
		panic(fmt.Sprintf("petri: initial marking of %q must be >= 0, got %d", name, initial))
	}
	n.Places = append(n.Places, Place{Name: name, Initial: initial})
	return PlaceID(len(n.Places) - 1)
}

// SetCapacity bounds the number of tokens place p can hold.
func (n *Net) SetCapacity(p PlaceID, capacity int) {
	if capacity < 1 {
		panic(fmt.Sprintf("petri: capacity must be >= 1, got %d", capacity))
	}
	n.Places[p].Capacity = capacity
}

// AddImmediate adds an immediate transition with the given priority and
// weight 1.
func (n *Net) AddImmediate(name string, priority int) TransitionID {
	n.Transitions = append(n.Transitions, Transition{
		Name: name, Kind: Immediate, Priority: priority, Weight: 1,
	})
	return TransitionID(len(n.Transitions) - 1)
}

// AddTimed adds a timed transition with the given firing-delay distribution.
func (n *Net) AddTimed(name string, d dist.Distribution) TransitionID {
	if d == nil {
		panic(fmt.Sprintf("petri: timed transition %q needs a delay distribution", name))
	}
	n.Transitions = append(n.Transitions, Transition{Name: name, Kind: Timed, Delay: d, Weight: 1})
	return TransitionID(len(n.Transitions) - 1)
}

// AddExponential adds a timed transition with exponential delay of the given
// rate. Exponential transitions are eligible for exact CTMC analysis.
func (n *Net) AddExponential(name string, rate float64) TransitionID {
	return n.AddTimed(name, dist.NewExponential(rate))
}

// AddDeterministic adds a timed transition with a constant delay.
func (n *Net) AddDeterministic(name string, delay float64) TransitionID {
	return n.AddTimed(name, dist.NewDeterministic(delay))
}

// SetWeight sets the conflict-resolution weight of an immediate transition.
func (n *Net) SetWeight(t TransitionID, w float64) {
	if w <= 0 {
		panic(fmt.Sprintf("petri: weight must be positive, got %v", w))
	}
	n.Transitions[t].Weight = w
}

// SetGuard attaches a guard predicate to a transition.
func (n *Net) SetGuard(t TransitionID, g Guard) { n.Transitions[t].Guard = g }

// SetServers selects k-server semantics (k >= 1) for an exponential timed
// transition: its rate is multiplied by min(k, enabling degree).
func (n *Net) SetServers(t TransitionID, k int) {
	if k < 1 {
		panic(fmt.Sprintf("petri: server count must be >= 1, got %d", k))
	}
	n.Transitions[t].Servers = k
}

// SetInfiniteServer selects infinite-server semantics for an exponential
// timed transition: its rate is multiplied by the full enabling degree.
func (n *Net) SetInfiniteServer(t TransitionID) {
	n.Transitions[t].Servers = InfiniteServers
}

// Input adds an arc from place p to transition t with multiplicity w.
func (n *Net) Input(t TransitionID, p PlaceID, w int) {
	n.checkArc(t, p, w)
	n.Transitions[t].Inputs = append(n.Transitions[t].Inputs, Arc{Place: p, Weight: w})
}

// Output adds an arc from transition t to place p with multiplicity w.
func (n *Net) Output(t TransitionID, p PlaceID, w int) {
	n.checkArc(t, p, w)
	n.Transitions[t].Outputs = append(n.Transitions[t].Outputs, Arc{Place: p, Weight: w})
}

// Inhibitor adds an inhibitor arc: transition t is enabled only while place
// p holds fewer than w tokens (w=1 means "p must be empty", the small-circle
// arcs of the paper's Figure 3).
func (n *Net) Inhibitor(t TransitionID, p PlaceID, w int) {
	n.checkArc(t, p, w)
	n.Transitions[t].Inhibitors = append(n.Transitions[t].Inhibitors, Arc{Place: p, Weight: w})
}

func (n *Net) checkArc(t TransitionID, p PlaceID, w int) {
	if int(t) < 0 || int(t) >= len(n.Transitions) {
		panic(fmt.Sprintf("petri: transition id %d out of range", t))
	}
	if int(p) < 0 || int(p) >= len(n.Places) {
		panic(fmt.Sprintf("petri: place id %d out of range", p))
	}
	if w < 1 {
		panic(fmt.Sprintf("petri: arc weight must be >= 1, got %d", w))
	}
}

// PlaceByName returns the id of the named place.
func (n *Net) PlaceByName(name string) (PlaceID, bool) {
	for i, p := range n.Places {
		if p.Name == name {
			return PlaceID(i), true
		}
	}
	return -1, false
}

// TransitionByName returns the id of the named transition.
func (n *Net) TransitionByName(name string) (TransitionID, bool) {
	for i, t := range n.Transitions {
		if t.Name == name {
			return TransitionID(i), true
		}
	}
	return -1, false
}

// InitialMarking returns a fresh marking with every place at its initial
// token count.
func (n *Net) InitialMarking() Marking {
	m := make(Marking, len(n.Places))
	for i, p := range n.Places {
		m[i] = p.Initial
	}
	return m
}

// Validate checks structural consistency: unique non-empty names, timed
// transitions with delay distributions, arcs in range, and positive weights.
func (n *Net) Validate() error {
	if len(n.Places) == 0 {
		return fmt.Errorf("petri: net %q has no places", n.Name)
	}
	if len(n.Transitions) == 0 {
		return fmt.Errorf("petri: net %q has no transitions", n.Name)
	}
	seen := make(map[string]bool, len(n.Places)+len(n.Transitions))
	for _, p := range n.Places {
		if p.Name == "" {
			return fmt.Errorf("petri: empty place name")
		}
		if seen[p.Name] {
			return fmt.Errorf("petri: duplicate name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Initial < 0 {
			return fmt.Errorf("petri: place %q has negative initial marking", p.Name)
		}
		if p.Capacity > 0 && p.Initial > p.Capacity {
			return fmt.Errorf("petri: place %q initial marking %d exceeds capacity %d", p.Name, p.Initial, p.Capacity)
		}
	}
	for _, t := range n.Transitions {
		if t.Name == "" {
			return fmt.Errorf("petri: empty transition name")
		}
		if seen[t.Name] {
			return fmt.Errorf("petri: duplicate name %q", t.Name)
		}
		seen[t.Name] = true
		if t.Kind == Timed && t.Delay == nil {
			return fmt.Errorf("petri: timed transition %q has no delay distribution", t.Name)
		}
		if t.Kind == Immediate && t.Weight <= 0 {
			return fmt.Errorf("petri: immediate transition %q has non-positive weight", t.Name)
		}
		if t.Servers != 0 && t.Servers != 1 {
			if t.Servers < InfiniteServers {
				return fmt.Errorf("petri: transition %q has invalid server count %d", t.Name, t.Servers)
			}
			if t.Kind != Timed {
				return fmt.Errorf("petri: immediate transition %q cannot have server semantics", t.Name)
			}
			if _, ok := t.Delay.(dist.Exponential); !ok {
				return fmt.Errorf("petri: multi-server transition %q must be exponential (memoryless rate scaling), has %s", t.Name, t.Delay)
			}
		}
		for _, arcs := range [][]Arc{t.Inputs, t.Outputs, t.Inhibitors} {
			for _, a := range arcs {
				if int(a.Place) < 0 || int(a.Place) >= len(n.Places) {
					return fmt.Errorf("petri: transition %q has arc to out-of-range place %d", t.Name, a.Place)
				}
				if a.Weight < 1 {
					return fmt.Errorf("petri: transition %q has arc with weight %d", t.Name, a.Weight)
				}
			}
		}
	}
	return nil
}

// Enabled reports whether transition t may fire in marking m: all input
// places hold enough tokens, all inhibitor places hold strictly fewer than
// the arc weight, bounded output places have room, and the guard (if any)
// holds.
func (n *Net) Enabled(m Marking, t TransitionID) bool {
	tr := &n.Transitions[t]
	for _, a := range tr.Inputs {
		if m[a.Place] < a.Weight {
			return false
		}
	}
	for _, a := range tr.Inhibitors {
		if m[a.Place] >= a.Weight {
			return false
		}
	}
	for _, a := range tr.Outputs {
		p := &n.Places[a.Place]
		if p.Capacity > 0 {
			// Net effect on the place: outputs minus inputs consumed by
			// this same firing.
			consumed := 0
			for _, in := range tr.Inputs {
				if in.Place == a.Place {
					consumed += in.Weight
				}
			}
			if m[a.Place]-consumed+a.Weight > p.Capacity {
				return false
			}
		}
	}
	if tr.Guard != nil && !tr.Guard(m) {
		return false
	}
	return true
}

// EnablingDegree returns the number of concurrent enablings of transition t
// in marking m: 0 when disabled, otherwise min over input arcs of
// floor(M(p)/w), capped at the transition's server count. Single-server
// transitions always report 1 when enabled; source transitions (no inputs)
// report 1.
func (n *Net) EnablingDegree(m Marking, t TransitionID) int {
	if !n.Enabled(m, t) {
		return 0
	}
	tr := &n.Transitions[t]
	if tr.Servers == 0 || tr.Servers == 1 {
		return 1
	}
	deg := -1
	for _, a := range tr.Inputs {
		d := m[a.Place] / a.Weight
		if deg < 0 || d < deg {
			deg = d
		}
	}
	if deg < 0 {
		deg = 1 // source transition
	}
	if tr.Servers > 1 && deg > tr.Servers {
		deg = tr.Servers
	}
	return deg
}

// Fire updates marking m in place by firing transition t. It panics if the
// transition is not enabled; callers must check Enabled first.
func (n *Net) Fire(m Marking, t TransitionID) {
	if !n.Enabled(m, t) {
		panic(fmt.Sprintf("petri: firing disabled transition %q", n.Transitions[t].Name))
	}
	tr := &n.Transitions[t]
	for _, a := range tr.Inputs {
		m[a.Place] -= a.Weight
	}
	for _, a := range tr.Outputs {
		m[a.Place] += a.Weight
	}
}

// AnyImmediateEnabled reports whether any immediate transition is enabled.
func (n *Net) AnyImmediateEnabled(m Marking) bool {
	for i := range n.Transitions {
		if n.Transitions[i].Kind == Immediate && n.Enabled(m, TransitionID(i)) {
			return true
		}
	}
	return false
}

// EnabledImmediatesAtTopPriority returns the enabled immediate transitions
// having the highest priority among all enabled immediates.
//
// This is the reference (and allocating) formulation: it rescans every
// transition and returns a fresh slice. The simulation engine no longer
// calls it per vanishing step — it resolves conflicts from the compiled
// priority groups with incremental enabled-set tracking and reusable
// scratch buffers (see Compile and engine.resolveImmediates, whose
// selection is asserted equivalent to this method by the equivalence
// tests). It remains exported for reachability analysis and for callers
// that want the straightforward semantics.
func (n *Net) EnabledImmediatesAtTopPriority(m Marking) []TransitionID {
	best := 0
	found := false
	var ids []TransitionID
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if tr.Kind != Immediate || !n.Enabled(m, TransitionID(i)) {
			continue
		}
		switch {
		case !found || tr.Priority > best:
			best = tr.Priority
			found = true
			ids = ids[:0]
			ids = append(ids, TransitionID(i))
		case tr.Priority == best:
			ids = append(ids, TransitionID(i))
		}
	}
	return ids
}

// ---------------------------------------------------------------------------
// Marking

// Marking is a token count per place, indexed by PlaceID.
type Marking []int

// Clone returns a copy of the marking.
func (m Marking) Clone() Marking {
	c := make(Marking, len(m))
	copy(c, m)
	return c
}

// Equal reports whether two markings are identical.
func (m Marking) Equal(o Marking) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Key returns a compact string usable as a map key for reachability sets.
func (m Marking) Key() string {
	var sb strings.Builder
	for i, v := range m {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// Total returns the total number of tokens.
func (m Marking) Total() int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// String renders the marking as "[1 0 2]".
func (m Marking) String() string {
	return fmt.Sprintf("%v", []int(m))
}
