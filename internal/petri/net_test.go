package petri

import (
	"strings"
	"testing"

	"repro/internal/dist"
)

// twoPlaceNet builds A --T--> B with one initial token in A.
func twoPlaceNet() (*Net, PlaceID, PlaceID, TransitionID) {
	n := NewNet("two")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	t := n.AddDeterministic("T", 1)
	n.Input(t, a, 1)
	n.Output(t, b, 1)
	return n, a, b, t
}

func TestBuilderAndValidate(t *testing.T) {
	n, _, _, _ := twoPlaceNet()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("no places", func(t *testing.T) {
		n := NewNet("x")
		n.AddImmediate("T", 1)
		if err := n.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("no transitions", func(t *testing.T) {
		n := NewNet("x")
		n.AddPlace("A")
		if err := n.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("duplicate names", func(t *testing.T) {
		n := NewNet("x")
		n.AddPlace("A")
		n.AddPlace("A")
		n.AddImmediate("T", 1)
		if err := n.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("want duplicate error, got %v", err)
		}
	})
	t.Run("place/transition name clash", func(t *testing.T) {
		n := NewNet("x")
		n.AddPlace("A")
		n.AddImmediate("A", 1)
		if err := n.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("capacity below initial", func(t *testing.T) {
		n := NewNet("x")
		p := n.AddPlaceInit("A", 5)
		n.SetCapacity(p, 2)
		n.AddImmediate("T", 1)
		if err := n.Validate(); err == nil {
			t.Fatal("want error")
		}
	})
}

func TestAddPlaceNegativeInitialPanics(t *testing.T) {
	n := NewNet("x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative initial accepted")
		}
	}()
	n.AddPlaceInit("A", -1)
}

func TestAddTimedNilDistPanics(t *testing.T) {
	n := NewNet("x")
	defer func() {
		if recover() == nil {
			t.Fatal("nil distribution accepted")
		}
	}()
	n.AddTimed("T", nil)
}

func TestArcValidation(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlace("A")
	tr := n.AddImmediate("T", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight arc accepted")
		}
	}()
	n.Input(tr, a, 0)
}

func TestEnablingInputTokens(t *testing.T) {
	n, a, _, tr := twoPlaceNet()
	m := n.InitialMarking()
	if !n.Enabled(m, tr) {
		t.Fatal("transition should be enabled with 1 token")
	}
	m[a] = 0
	if n.Enabled(m, tr) {
		t.Fatal("transition enabled without tokens")
	}
}

func TestEnablingMultiplicity(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 2)
	n.Output(tr, b, 3)
	m := n.InitialMarking()
	if n.Enabled(m, tr) {
		t.Fatal("enabled with 1 token but weight-2 input arc")
	}
	m[a] = 2
	if !n.Enabled(m, tr) {
		t.Fatal("not enabled with exactly enough tokens")
	}
	n.Fire(m, tr)
	if m[a] != 0 || m[b] != 3 {
		t.Fatalf("after fire marking = %v, want [0 3]", m)
	}
}

func TestInhibitorArc(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlaceInit("A", 1)
	blocker := n.AddPlace("Blocker")
	b := n.AddPlace("B")
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 1)
	n.Output(tr, b, 1)
	n.Inhibitor(tr, blocker, 1)
	m := n.InitialMarking()
	if !n.Enabled(m, tr) {
		t.Fatal("should be enabled with empty inhibitor place")
	}
	m[blocker] = 1
	if n.Enabled(m, tr) {
		t.Fatal("enabled despite inhibitor token")
	}
	// Weight-2 inhibitor blocks only at >= 2 tokens.
	n2 := NewNet("y")
	a2 := n2.AddPlaceInit("A", 1)
	bl2 := n2.AddPlace("Blocker")
	tr2 := n2.AddImmediate("T", 1)
	n2.Input(tr2, a2, 1)
	n2.Inhibitor(tr2, bl2, 2)
	m2 := n2.InitialMarking()
	m2[bl2] = 1
	if !n2.Enabled(m2, tr2) {
		t.Fatal("weight-2 inhibitor blocked at 1 token")
	}
	m2[bl2] = 2
	if n2.Enabled(m2, tr2) {
		t.Fatal("weight-2 inhibitor did not block at 2 tokens")
	}
}

func TestCapacityBlocksFiring(t *testing.T) {
	n := NewNet("x")
	src := n.AddPlaceInit("Src", 10)
	dst := n.AddPlace("Dst")
	n.SetCapacity(dst, 2)
	tr := n.AddImmediate("T", 1)
	n.Input(tr, src, 1)
	n.Output(tr, dst, 1)
	m := n.InitialMarking()
	for i := 0; i < 2; i++ {
		if !n.Enabled(m, tr) {
			t.Fatalf("should be enabled at dst=%d", m[dst])
		}
		n.Fire(m, tr)
	}
	if n.Enabled(m, tr) {
		t.Fatal("enabled when output place is at capacity")
	}
}

func TestCapacityAccountsForConsumedTokens(t *testing.T) {
	// A transition that consumes from and produces into the same bounded
	// place keeps the count constant, so it must stay enabled at capacity.
	n := NewNet("x")
	p := n.AddPlaceInit("P", 2)
	n.SetCapacity(p, 2)
	tr := n.AddTimed("T", dist.NewDeterministic(1))
	n.Input(tr, p, 1)
	n.Output(tr, p, 1)
	m := n.InitialMarking()
	if !n.Enabled(m, tr) {
		t.Fatal("self-loop at capacity should be enabled")
	}
}

func TestGuard(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlaceInit("A", 5)
	tr := n.AddImmediate("T", 1)
	n.Input(tr, a, 1)
	n.SetGuard(tr, func(m Marking) bool { return m[a] > 3 })
	m := n.InitialMarking()
	if !n.Enabled(m, tr) {
		t.Fatal("guard should pass with 5 tokens")
	}
	m[a] = 3
	if n.Enabled(m, tr) {
		t.Fatal("guard should fail with 3 tokens")
	}
}

func TestFireDisabledPanics(t *testing.T) {
	n, a, _, tr := twoPlaceNet()
	m := n.InitialMarking()
	m[a] = 0
	defer func() {
		if recover() == nil {
			t.Fatal("firing disabled transition did not panic")
		}
	}()
	n.Fire(m, tr)
}

func TestLookupByName(t *testing.T) {
	n, a, _, tr := twoPlaceNet()
	if id, ok := n.PlaceByName("A"); !ok || id != a {
		t.Fatal("PlaceByName failed")
	}
	if id, ok := n.TransitionByName("T"); !ok || id != tr {
		t.Fatal("TransitionByName failed")
	}
	if _, ok := n.PlaceByName("nope"); ok {
		t.Fatal("found nonexistent place")
	}
	if _, ok := n.TransitionByName("nope"); ok {
		t.Fatal("found nonexistent transition")
	}
}

func TestMarkingOps(t *testing.T) {
	m := Marking{1, 0, 2}
	c := m.Clone()
	c[0] = 9
	if m[0] != 1 {
		t.Fatal("Clone aliased")
	}
	if !m.Equal(Marking{1, 0, 2}) {
		t.Fatal("Equal false negative")
	}
	if m.Equal(Marking{1, 0}) || m.Equal(Marking{1, 0, 3}) {
		t.Fatal("Equal false positive")
	}
	if m.Key() != "1,0,2" {
		t.Fatalf("Key = %q", m.Key())
	}
	if m.Total() != 3 {
		t.Fatalf("Total = %d", m.Total())
	}
}

func TestTopPriorityImmediates(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlaceInit("A", 1)
	lo := n.AddImmediate("Lo", 1)
	hiA := n.AddImmediate("HiA", 5)
	hiB := n.AddImmediate("HiB", 5)
	for _, tr := range []TransitionID{lo, hiA, hiB} {
		n.Input(tr, a, 1)
	}
	ids := n.EnabledImmediatesAtTopPriority(n.InitialMarking())
	if len(ids) != 2 {
		t.Fatalf("top-priority set = %v, want the two priority-5 transitions", ids)
	}
	for _, id := range ids {
		if id == lo {
			t.Fatal("low-priority transition in top set")
		}
	}
}

func TestInitialMarking(t *testing.T) {
	n, a, b, _ := twoPlaceNet()
	m := n.InitialMarking()
	if m[a] != 1 || m[b] != 0 {
		t.Fatalf("initial marking = %v", m)
	}
	// Fresh copy each time.
	m[a] = 42
	if n.InitialMarking()[a] != 1 {
		t.Fatal("InitialMarking returned shared state")
	}
}

func TestDOTOutput(t *testing.T) {
	n, _, _, _ := twoPlaceNet()
	d := DOT(n)
	for _, want := range []string{"digraph", "A", "B", "Det(1)", "->"} {
		if !strings.Contains(d, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, d)
		}
	}
}

func TestDOTInhibitor(t *testing.T) {
	n := NewNet("x")
	a := n.AddPlace("A")
	tr := n.AddImmediate("T", 2)
	n.Inhibitor(tr, a, 1)
	if !strings.Contains(DOT(n), "odot") {
		t.Fatal("DOT output missing inhibitor arrowhead")
	}
}

func TestKindString(t *testing.T) {
	if Immediate.String() != "immediate" || Timed.String() != "timed" {
		t.Fatal("Kind.String wrong")
	}
}
