package petri

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dist"
)

// poolTestNet is a small open net with immediate and timed transitions —
// enough structure that a stale engine field would corrupt results.
func poolTestNet() *Net {
	n := NewNet("pool-test")
	q := n.AddPlace("Q")
	srv := n.AddPlaceInit("Srv", 1)
	busy := n.AddPlace("Busy")

	arr := n.AddTimed("Arr", dist.NewExponential(1))
	n.Output(arr, q, 1)

	grab := n.AddImmediate("Grab", 1)
	n.Input(grab, q, 1)
	n.Input(grab, srv, 1)
	n.Output(grab, busy, 1)

	done := n.AddTimed("Done", dist.NewExponential(4))
	n.Input(done, busy, 1)
	n.Output(done, srv, 1)
	return n
}

// TestEnginePoolReuseIsAllocFree pins the ROADMAP follow-up this PR lands:
// in steady state, acquiring an engine for a new run reuses a pooled
// scratch set instead of allocating one.
func TestEnginePoolReuseIsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; allocation counts are not meaningful")
	}
	c := MustCompile(poolTestNet())
	opt := SimOptions{Seed: 1, Duration: 50}
	// Warm the pool (first acquire allocates the engine).
	e, err := c.acquireEngine(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.releaseEngine(e)
	allocs := testing.AllocsPerRun(200, func() {
		e, err := c.acquireEngine(nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		c.releaseEngine(e)
	})
	if allocs != 0 {
		t.Fatalf("acquire/release allocated %v objects per cycle, want 0", allocs)
	}
}

// TestPooledSimulateReusesOneEngine checks that sequential Simulate calls on
// one compiled net recycle the same engine, and that a recycled engine's
// results are bit-identical to a never-pooled engine's (a fresh Compile).
func TestPooledSimulateReusesOneEngine(t *testing.T) {
	n := poolTestNet()
	opt := SimOptions{Seed: 7, Warmup: 5, Duration: 100}

	pooled := MustCompile(n)
	first, err := pooled.Simulate(opt) // populates the pool
	if err != nil {
		t.Fatal(err)
	}
	second, err := pooled.Simulate(opt) // runs on the recycled engine
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := MustCompile(n).Simulate(opt) // never-pooled reference
	if err != nil {
		t.Fatal(err)
	}
	for i := range first.PlaceAvg {
		if first.PlaceAvg[i] != second.PlaceAvg[i] || first.PlaceAvg[i] != fresh.PlaceAvg[i] {
			t.Fatalf("PlaceAvg[%d]: first %x, recycled %x, fresh %x", i,
				first.PlaceAvg[i], second.PlaceAvg[i], fresh.PlaceAvg[i])
		}
	}
	for i := range first.Firings {
		if first.Firings[i] != second.Firings[i] {
			t.Fatalf("Firings[%d]: first %d, recycled %d", i, first.Firings[i], second.Firings[i])
		}
	}
}

// TestSimResultDoesNotAliasPooledEngine: a SimResult must stay valid after
// its engine is recycled and reused by a later run.
func TestSimResultDoesNotAliasPooledEngine(t *testing.T) {
	c := MustCompile(poolTestNet())
	opt := SimOptions{Seed: 3, Duration: 100}
	res, err := c.Simulate(opt)
	if err != nil {
		t.Fatal(err)
	}
	firings := append([]uint64(nil), res.Firings...)
	final := res.FinalMarking.Clone()
	// Drive more runs through the pool; if res aliases engine scratch,
	// these overwrite it.
	for seed := uint64(100); seed < 104; seed++ {
		if _, err := c.Simulate(SimOptions{Seed: seed, Duration: 100}); err != nil {
			t.Fatal(err)
		}
	}
	for i := range firings {
		if res.Firings[i] != firings[i] {
			t.Fatalf("Firings[%d] mutated by a later pooled run: %d != %d", i, res.Firings[i], firings[i])
		}
	}
	if !res.FinalMarking.Equal(final) {
		t.Fatalf("FinalMarking mutated by a later pooled run")
	}
}

// TestSimulateContextCancelsMidRun: cancellation must abort a long
// simulation between events — promptly in wall-clock terms — with
// ctx.Err(), not run it to the horizon.
func TestSimulateContextCancelsMidRun(t *testing.T) {
	c := MustCompile(poolTestNet())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// ~1e9 simulated seconds ≈ minutes of wall clock if cancellation fails.
	_, err := c.SimulateContext(ctx, SimOptions{Seed: 1, Duration: 1e9})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SimulateContext returned %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want well under the full-horizon runtime", elapsed)
	}
}

// TestSimulateReplicationsContextCancelsInFlight: cancellation during a
// replication set must surface ctx.Err() from the in-flight replications.
func TestSimulateReplicationsContextCancelsInFlight(t *testing.T) {
	c := MustCompile(poolTestNet())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.SimulateReplicationsContext(ctx, SimOptions{Seed: 1, Duration: 1e8}, 8)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replication set returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestBatchMeansAndTransientObserveCancellation covers the two remaining
// execution modes the tentpole threads the context through.
func TestBatchMeansAndTransientObserveCancellation(t *testing.T) {
	c := MustCompile(poolTestNet())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SimulateBatchMeansContext(ctx, BatchMeansOptions{
		Seed: 1, BatchLength: 1e6, Batches: 100,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch means: %v, want context.Canceled", err)
	}
	if _, err := c.SimulateTransientContext(ctx, TransientOptions{
		Seed: 1, Horizon: 1e6, Step: 1, Replications: 4,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("transient: %v, want context.Canceled", err)
	}
}
