//go:build !race

package petri

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
