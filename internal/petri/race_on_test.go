//go:build race

package petri

// raceEnabled reports that this test binary runs under the race detector,
// where sync.Pool deliberately drops items at random and allocation counts
// are not meaningful.
const raceEnabled = true
