package petri

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/linalg"
)

// ErrNotMarkovian is returned by CTMC analysis when the net contains a
// timed transition whose delay is not exponential (e.g. the deterministic
// transitions of the paper's DSPN), which exact Markovian analysis cannot
// represent without state expansion.
var ErrNotMarkovian = errors.New("petri: net has non-exponential timed transitions; use Simulate or an Erlang phase expansion")

// ReachOptions bounds the reachability exploration.
type ReachOptions struct {
	// MaxMarkings caps the number of tangible markings explored
	// (default 200000). Exceeding the cap reports an unbounded or
	// too-large net.
	MaxMarkings int
	// MaxVanishingDepth caps consecutive immediate firings while
	// resolving a vanishing chain (default 10000).
	MaxVanishingDepth int
}

// CTMCResult is the exact stationary analysis of an exponential net.
type CTMCResult struct {
	// Markings lists the tangible markings (CTMC states).
	Markings []Marking
	// Generator is the CTMC generator over tangible markings.
	Generator *linalg.CSR
	// Pi is the stationary distribution over Markings.
	Pi []float64
	// PlaceAvg is the exact expected token count per place.
	PlaceAvg []float64
	// PlaceNonEmpty is the exact probability each place is non-empty.
	PlaceNonEmpty []float64
	// Throughput is the stationary firing rate per transition (timed and
	// immediate).
	Throughput []float64
}

// PlaceAvgByName returns the expected token count of the named place.
func (r *CTMCResult) PlaceAvgByName(n *Net, name string) float64 {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	return r.PlaceAvg[id]
}

// tangibleDist is a probability distribution over tangible markings reached
// after eliminating a vanishing chain, with the expected number of firings
// of each immediate transition along the way.
type tangibleDist struct {
	keys     []string
	markings []Marking
	probs    []float64
	immFires []float64 // indexed by TransitionID, expected firings
}

// SolveCTMC builds the tangible reachability graph of a net whose timed
// transitions are all exponential, eliminates vanishing markings on the
// fly, and solves the resulting CTMC for its stationary distribution.
func SolveCTMC(n *Net, opt ReachOptions) (*CTMCResult, error) {
	return SolveCTMCContext(context.Background(), n, opt)
}

// SolveCTMCContext is SolveCTMC with cooperative cancellation: the context
// is polled during reachability exploration (per frontier marking) and
// inside the stationary solve's linear-algebra iterations, so both halves
// of the analysis abort promptly with ctx.Err().
func SolveCTMCContext(ctx context.Context, n *Net, opt ReachOptions) (*CTMCResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	for i := range n.Transitions {
		tr := &n.Transitions[i]
		if tr.Kind != Timed {
			continue
		}
		if _, ok := tr.Delay.(dist.Exponential); !ok {
			return nil, fmt.Errorf("%w (transition %q has delay %s)", ErrNotMarkovian, tr.Name, tr.Delay)
		}
	}
	if opt.MaxMarkings == 0 {
		opt.MaxMarkings = 200000
	}
	if opt.MaxVanishingDepth == 0 {
		opt.MaxVanishingDepth = 10000
	}

	index := map[string]int{}
	var markings []Marking
	var frontier []int

	addTangible := func(m Marking) (int, error) {
		k := m.Key()
		if id, ok := index[k]; ok {
			return id, nil
		}
		if len(markings) >= opt.MaxMarkings {
			return -1, fmt.Errorf("petri: tangible marking cap %d exceeded; net may be unbounded (add place capacities)", opt.MaxMarkings)
		}
		id := len(markings)
		index[k] = id
		markings = append(markings, m.Clone())
		frontier = append(frontier, id)
		return id, nil
	}

	// Resolve the initial marking to its tangible distribution.
	init, err := resolveVanishing(n, n.InitialMarking(), opt.MaxVanishingDepth)
	if err != nil {
		return nil, err
	}
	for _, m := range init.markings {
		if _, err := addTangible(m); err != nil {
			return nil, err
		}
	}

	type flow struct {
		to   int
		rate float64
	}
	flows := map[int][]flow{}
	// immRate[t] accumulates, per source state, rate × expected immediate
	// firings; summed with pi later for throughput.
	nT := len(n.Transitions)
	immRatePerState := map[int][]float64{}

	for explored := 0; len(frontier) > 0; explored++ {
		if explored%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		id := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		m := markings[id]
		for ti := range n.Transitions {
			tr := &n.Transitions[ti]
			if tr.Kind != Timed || !n.Enabled(m, TransitionID(ti)) {
				continue
			}
			// Multi-server semantics scale the rate with the degree.
			rate := tr.Delay.(dist.Exponential).Rate * float64(n.EnablingDegree(m, TransitionID(ti)))
			next := m.Clone()
			n.Fire(next, TransitionID(ti))
			td, err := resolveVanishing(n, next, opt.MaxVanishingDepth)
			if err != nil {
				return nil, err
			}
			for i, tm := range td.markings {
				toID, err := addTangible(tm)
				if err != nil {
					return nil, err
				}
				flows[id] = append(flows[id], flow{to: toID, rate: rate * td.probs[i]})
			}
			acc := immRatePerState[id]
			if acc == nil {
				acc = make([]float64, nT)
				immRatePerState[id] = acc
			}
			for t2 := 0; t2 < nT; t2++ {
				acc[t2] += rate * td.immFires[t2]
			}
		}
	}

	// Assemble the generator.
	nStates := len(markings)
	var entries []linalg.Coord
	for from, fs := range flows {
		exit := 0.0
		for _, f := range fs {
			exit += f.rate
			if f.to != from {
				entries = append(entries, linalg.Coord{Row: from, Col: f.to, Val: f.rate})
			}
		}
		selfRate := 0.0
		for _, f := range fs {
			if f.to == from {
				selfRate += f.rate
			}
		}
		entries = append(entries, linalg.Coord{Row: from, Col: from, Val: -(exit - selfRate)})
	}
	q := linalg.NewCSR(nStates, nStates, entries)

	var pi []float64
	if nStates <= 2000 {
		pi, err = linalg.StationaryCTMCDirectContext(ctx, q)
	} else {
		pi, err = linalg.StationaryCTMCContext(ctx, q, linalg.GaussSeidelOptions{})
	}
	if err != nil {
		return nil, fmt.Errorf("petri: stationary solve over %d tangible markings: %w", nStates, err)
	}

	res := &CTMCResult{
		Markings:      markings,
		Generator:     q,
		Pi:            pi,
		PlaceAvg:      make([]float64, len(n.Places)),
		PlaceNonEmpty: make([]float64, len(n.Places)),
		Throughput:    make([]float64, nT),
	}
	for s, m := range markings {
		for p, tokens := range m {
			res.PlaceAvg[p] += pi[s] * float64(tokens)
			if tokens > 0 {
				res.PlaceNonEmpty[p] += pi[s]
			}
		}
		for ti := range n.Transitions {
			tr := &n.Transitions[ti]
			if tr.Kind == Timed && n.Enabled(m, TransitionID(ti)) {
				res.Throughput[ti] += pi[s] * tr.Delay.(dist.Exponential).Rate *
					float64(n.EnablingDegree(m, TransitionID(ti)))
			}
		}
		if acc := immRatePerState[s]; acc != nil {
			for ti, v := range acc {
				res.Throughput[ti] += pi[s] * v
			}
		}
	}
	return res, nil
}

// resolveVanishing eliminates zero-time (immediate) firings starting from m,
// returning the probability distribution over the tangible markings reached
// plus the expected firing count of each immediate transition. Weighted
// immediate conflicts branch the distribution; cycles of vanishing markings
// are detected and reported as errors.
func resolveVanishing(n *Net, m Marking, maxDepth int) (*tangibleDist, error) {
	td := &tangibleDist{immFires: make([]float64, len(n.Transitions))}
	idx := map[string]int{}
	onPath := map[string]bool{}

	var walk func(cur Marking, prob float64, depth int) error
	walk = func(cur Marking, prob float64, depth int) error {
		if depth > maxDepth {
			return fmt.Errorf("petri: vanishing chain longer than %d (immediate livelock?) at marking %v", maxDepth, cur)
		}
		ids := n.EnabledImmediatesAtTopPriority(cur)
		if len(ids) == 0 {
			k := cur.Key()
			if i, ok := idx[k]; ok {
				td.probs[i] += prob
			} else {
				idx[k] = len(td.markings)
				td.keys = append(td.keys, k)
				td.markings = append(td.markings, cur.Clone())
				td.probs = append(td.probs, prob)
			}
			return nil
		}
		k := cur.Key()
		if onPath[k] {
			return fmt.Errorf("petri: cycle of vanishing markings at %v; exact elimination of immediate cycles is not supported", cur)
		}
		onPath[k] = true
		defer delete(onPath, k)
		total := 0.0
		for _, id := range ids {
			total += n.Transitions[id].Weight
		}
		for _, id := range ids {
			p := prob * n.Transitions[id].Weight / total
			td.immFires[id] += p
			next := cur.Clone()
			n.Fire(next, id)
			if err := walk(next, p, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(m, 1, 0); err != nil {
		return nil, err
	}
	return td, nil
}
