package petri

import (
	"context"
	"errors"
	"math"
	"testing"
)

// mm1kNet builds an M/M/1/K queue: a source transition feeds a bounded
// place, a server empties it.
func mm1kNet(lambda, mu float64, k int) *Net {
	n := NewNet("mm1k")
	q := n.AddPlace("Queue")
	n.SetCapacity(q, k)
	arr := n.AddExponential("Arrive", lambda)
	n.Output(arr, q, 1)
	srv := n.AddExponential("Serve", mu)
	n.Input(srv, q, 1)
	return n
}

func TestSolveCTMCMM1K(t *testing.T) {
	const (
		lambda = 2.0
		mu     = 3.0
		k      = 8
	)
	n := mm1kNet(lambda, mu, k)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Markings) != k+1 {
		t.Fatalf("tangible markings = %d, want %d", len(res.Markings), k+1)
	}
	rho := lambda / mu
	norm := 0.0
	for i := 0; i <= k; i++ {
		norm += math.Pow(rho, float64(i))
	}
	// Expected queue length from the closed form.
	wantL := 0.0
	for i := 0; i <= k; i++ {
		wantL += float64(i) * math.Pow(rho, float64(i)) / norm
	}
	if math.Abs(res.PlaceAvgByName(n, "Queue")-wantL) > 1e-8 {
		t.Fatalf("E[N] = %v, want %v", res.PlaceAvg[0], wantL)
	}
	// Server throughput mu * P(queue non-empty).
	srvID, _ := n.TransitionByName("Serve")
	wantX := mu * (1 - 1/norm)
	if math.Abs(res.Throughput[srvID]-wantX) > 1e-8 {
		t.Fatalf("service throughput = %v, want %v", res.Throughput[srvID], wantX)
	}
	// Flow balance: accepted arrivals equal services.
	arrID, _ := n.TransitionByName("Arrive")
	pBlock := math.Pow(rho, float64(k)) / norm
	wantA := lambda * (1 - pBlock)
	if math.Abs(res.Throughput[arrID]-wantA) > 1e-8 {
		t.Fatalf("arrival throughput = %v, want %v", res.Throughput[arrID], wantA)
	}
}

func TestSolveCTMCMatchesSimulation(t *testing.T) {
	n := mm1kNet(1, 2, 5)
	exact, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(n, SimOptions{Seed: 11, Warmup: 200, Duration: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(exact.PlaceAvg[0] - sim.PlaceAvg[0]); d > 0.02 {
		t.Fatalf("CTMC E[N]=%v vs simulated %v (diff %v)", exact.PlaceAvg[0], sim.PlaceAvg[0], d)
	}
	if d := math.Abs(exact.PlaceNonEmpty[0] - sim.PlaceNonEmpty[0]); d > 0.02 {
		t.Fatalf("CTMC P(N>0)=%v vs simulated %v", exact.PlaceNonEmpty[0], sim.PlaceNonEmpty[0])
	}
}

func TestSolveCTMCVanishingElimination(t *testing.T) {
	// A --exp--> V (vanishing) --immediate--> B --exp--> A.
	// The CTMC must contain only the two tangible markings.
	n := NewNet("vanish")
	a := n.AddPlaceInit("A", 1)
	v := n.AddPlace("V")
	b := n.AddPlace("B")
	av := n.AddExponential("AV", 1)
	n.Input(av, a, 1)
	n.Output(av, v, 1)
	imm := n.AddImmediate("Imm", 1)
	n.Input(imm, v, 1)
	n.Output(imm, b, 1)
	ba := n.AddExponential("BA", 2)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Markings) != 2 {
		t.Fatalf("tangible markings = %d, want 2", len(res.Markings))
	}
	// pi solves rate balance of a 2-state chain with rates 1 and 2:
	// pi_A = 2/3, pi_B = 1/3.
	if math.Abs(res.PlaceAvgByName(n, "A")-2.0/3.0) > 1e-9 {
		t.Fatalf("pi_A = %v, want 2/3", res.PlaceAvgByName(n, "A"))
	}
	// The vanishing place is never occupied at a tangible instant.
	if res.PlaceAvgByName(n, "V") != 0 {
		t.Fatalf("vanishing place average = %v, want 0", res.PlaceAvgByName(n, "V"))
	}
	// The immediate fires exactly as often as AV.
	avID, _ := n.TransitionByName("AV")
	immID, _ := n.TransitionByName("Imm")
	if math.Abs(res.Throughput[avID]-res.Throughput[immID]) > 1e-9 {
		t.Fatalf("immediate throughput %v != AV throughput %v", res.Throughput[immID], res.Throughput[avID])
	}
}

func TestSolveCTMCWeightedBranch(t *testing.T) {
	// A --exp(1)--> branch: T1 (w=1) -> B1 --exp(1)--> A
	//                        T2 (w=3) -> B2 --exp(1)--> A
	// Stationary: pi_A = 1/2, pi_B1 = 1/8, pi_B2 = 3/8.
	n := NewNet("wbranch")
	a := n.AddPlaceInit("A", 1)
	c := n.AddPlace("C")
	b1 := n.AddPlace("B1")
	b2 := n.AddPlace("B2")
	ac := n.AddExponential("AC", 1)
	n.Input(ac, a, 1)
	n.Output(ac, c, 1)
	t1 := n.AddImmediate("T1", 1)
	n.Input(t1, c, 1)
	n.Output(t1, b1, 1)
	t2 := n.AddImmediate("T2", 1)
	n.SetWeight(t2, 3)
	n.Input(t2, c, 1)
	n.Output(t2, b2, 1)
	r1 := n.AddExponential("R1", 1)
	n.Input(r1, b1, 1)
	n.Output(r1, a, 1)
	r2 := n.AddExponential("R2", 1)
	n.Input(r2, b2, 1)
	n.Output(r2, a, 1)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlaceAvgByName(n, "A")-0.5) > 1e-9 {
		t.Fatalf("pi_A = %v, want 0.5", res.PlaceAvgByName(n, "A"))
	}
	if math.Abs(res.PlaceAvgByName(n, "B1")-0.125) > 1e-9 {
		t.Fatalf("pi_B1 = %v, want 0.125", res.PlaceAvgByName(n, "B1"))
	}
	if math.Abs(res.PlaceAvgByName(n, "B2")-0.375) > 1e-9 {
		t.Fatalf("pi_B2 = %v, want 0.375", res.PlaceAvgByName(n, "B2"))
	}
	// Weighted immediate throughputs split 1:3.
	t1ID, _ := n.TransitionByName("T1")
	t2ID, _ := n.TransitionByName("T2")
	if math.Abs(res.Throughput[t2ID]-3*res.Throughput[t1ID]) > 1e-9 {
		t.Fatalf("branch throughputs %v, %v not in 1:3 ratio", res.Throughput[t1ID], res.Throughput[t2ID])
	}
}

func TestSolveCTMCWeightedBranchMatchesSimulation(t *testing.T) {
	n := NewNet("wbranch2")
	a := n.AddPlaceInit("A", 1)
	c := n.AddPlace("C")
	b1 := n.AddPlace("B1")
	b2 := n.AddPlace("B2")
	ac := n.AddExponential("AC", 1)
	n.Input(ac, a, 1)
	n.Output(ac, c, 1)
	t1 := n.AddImmediate("T1", 1)
	n.Input(t1, c, 1)
	n.Output(t1, b1, 1)
	t2 := n.AddImmediate("T2", 1)
	n.SetWeight(t2, 3)
	n.Input(t2, c, 1)
	n.Output(t2, b2, 1)
	r1 := n.AddExponential("R1", 1)
	n.Input(r1, b1, 1)
	n.Output(r1, a, 1)
	r2 := n.AddExponential("R2", 1)
	n.Input(r2, b2, 1)
	n.Output(r2, a, 1)
	exact, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(n, SimOptions{Seed: 21, Warmup: 100, Duration: 50000})
	if err != nil {
		t.Fatal(err)
	}
	for p := range n.Places {
		if d := math.Abs(exact.PlaceAvg[p] - sim.PlaceAvg[p]); d > 0.02 {
			t.Fatalf("place %s: CTMC %v vs sim %v", n.Places[p].Name, exact.PlaceAvg[p], sim.PlaceAvg[p])
		}
	}
}

func TestSolveCTMCRejectsDeterministic(t *testing.T) {
	n := NewNet("dspn")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	d := n.AddDeterministic("D", 1)
	n.Input(d, a, 1)
	n.Output(d, b, 1)
	_, err := SolveCTMC(n, ReachOptions{})
	if !errors.Is(err, ErrNotMarkovian) {
		t.Fatalf("want ErrNotMarkovian, got %v", err)
	}
}

func TestSolveCTMCUnboundedDetected(t *testing.T) {
	// Pure source into an uncapped place: infinite state space.
	n := NewNet("unbounded")
	q := n.AddPlace("Q")
	arr := n.AddExponential("Arr", 1)
	n.Output(arr, q, 1)
	_, err := SolveCTMC(n, ReachOptions{MaxMarkings: 50})
	if err == nil {
		t.Fatal("unbounded net solved without error")
	}
}

func TestSolveCTMCVanishingCycleError(t *testing.T) {
	// Timed firing leads into an immediate 2-cycle.
	n := NewNet("immcycle")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	c := n.AddPlace("C")
	ab := n.AddExponential("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	t1 := n.AddImmediate("T1", 1)
	n.Input(t1, b, 1)
	n.Output(t1, c, 1)
	t2 := n.AddImmediate("T2", 1)
	n.Input(t2, c, 1)
	n.Output(t2, b, 1)
	_, err := SolveCTMC(n, ReachOptions{})
	if err == nil {
		t.Fatal("vanishing cycle not detected")
	}
}

func TestSolveCTMCPriorityRespectedInVanishing(t *testing.T) {
	// Conflict between priorities 5 and 1: only the priority-5 branch is
	// ever taken during elimination.
	n := NewNet("prio")
	a := n.AddPlaceInit("A", 1)
	c := n.AddPlace("C")
	hi := n.AddPlace("Hi")
	lo := n.AddPlace("Lo")
	ac := n.AddExponential("AC", 1)
	n.Input(ac, a, 1)
	n.Output(ac, c, 1)
	thi := n.AddImmediate("THi", 5)
	n.Input(thi, c, 1)
	n.Output(thi, hi, 1)
	tlo := n.AddImmediate("TLo", 1)
	n.Input(tlo, c, 1)
	n.Output(tlo, lo, 1)
	back := n.AddExponential("Back", 1)
	n.Input(back, hi, 1)
	n.Output(back, a, 1)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceAvgByName(n, "Lo") != 0 {
		t.Fatalf("low-priority branch reached: pi = %v", res.PlaceAvgByName(n, "Lo"))
	}
	tloID, _ := n.TransitionByName("TLo")
	if res.Throughput[tloID] != 0 {
		t.Fatal("low-priority immediate has non-zero throughput")
	}
}

func TestPiSumsToOne(t *testing.T) {
	n := mm1kNet(1.3, 2.1, 12)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range res.Pi {
		sum += p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("pi sums to %v", sum)
	}
}

func BenchmarkSolveCTMCMM1K100(b *testing.B) {
	n := mm1kNet(1, 2, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCTMC(n, ReachOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSolveCTMCContextCancelled: the reachability exploration and the
// stationary solve must both observe cancellation mid-analysis.
func TestSolveCTMCContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveCTMCContext(ctx, mm1kNet(1, 2, 40), ReachOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SolveCTMC returned %v, want context.Canceled", err)
	}
}
