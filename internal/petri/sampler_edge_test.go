package petri

import (
	"reflect"
	"testing"

	"repro/internal/dist"
)

// opaqueDist hides a distribution's concrete type behind a wrapper struct,
// so compileSampler's type switch falls through to delayKindGeneric and the
// engine samples via the dist.Distribution interface. Comparing runs of the
// same net with and without the wrapper checks that every devirtualized
// sampler kind draws the exact xrand stream its Sample method would.
type opaqueDist struct {
	dist.Distribution
}

// samplerEdgeNet puts the distribution under test on a service transition
// that is enabled, disabled and re-enabled as an exponential arrival stream
// fills and drains its queue — so the run exercises repeated sampling at
// scattered points of the RNG stream, not one draw at time zero.
func samplerEdgeNet(d dist.Distribution) *Net {
	n := NewNet("sampler-edge")
	queue := n.AddPlace("Queue")
	arrive := n.AddExponential("Arrive", 3)
	n.Output(arrive, queue, 1)
	serve := n.AddTimed("Serve", d)
	n.Input(serve, queue, 1)
	return n
}

// TestSamplerEdgeCasesMatchGenericPath runs each compiled sampler kind at a
// degenerate parameter edge — where the distribution collapses onto a
// simpler law and an off-by-one in the devirtualized expression would be
// easiest to introduce — against the interface fallback, and requires
// bit-identical trajectories.
func TestSamplerEdgeCasesMatchGenericPath(t *testing.T) {
	cases := []struct {
		name string
		d    dist.Distribution
		kind uint8
	}{
		// Weibull with shape 1 is an exponential; 1/shape is exactly 1.
		{"weibull-shape-1", dist.NewWeibull(1, 0.4), delayKindWeibull},
		// Erlang with k=1 is an exponential: a single-draw sum.
		{"erlang-k-1", dist.NewErlang(1, 2.5), delayKindErlang},
		// A one-branch hyper-exponential still draws the branch-selection
		// uniform before the exponential, and the compiled path must too.
		{"hyperexp-single", dist.NewHyperExponential([]float64{1}, []float64{2}), delayKindHyperExp},
		// Deterministic 0 fires with zero delay: scheduling at now itself.
		{"det-0", dist.NewDeterministic(0), delayKindDet},
		// Non-degenerate controls for the same kinds.
		{"weibull-shape-2", dist.NewWeibull(2, 0.4), delayKindWeibull},
		{"erlang-k-4", dist.NewErlang(4, 2.5), delayKindErlang},
		{"hyperexp-2", dist.NewHyperExponential([]float64{0.3, 0.7}, []float64{1, 5}), delayKindHyperExp},
		{"uniform", dist.NewUniform(0.1, 0.5), delayKindUniform},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast, err := Compile(samplerEdgeNet(tc.d))
			if err != nil {
				t.Fatal(err)
			}
			slow, err := Compile(samplerEdgeNet(opaqueDist{tc.d}))
			if err != nil {
				t.Fatal(err)
			}
			serve, _ := fast.Net().TransitionByName("Serve")
			if got := fast.delayKind[serve]; got != tc.kind {
				t.Fatalf("compiled sampler kind = %d, want %d", got, tc.kind)
			}
			if got := slow.delayKind[serve]; got != delayKindGeneric {
				t.Fatalf("wrapped distribution compiled to kind %d, want generic", got)
			}
			for seed := uint64(1); seed <= 3; seed++ {
				opt := SimOptions{Seed: seed, Warmup: 2, Duration: 300}
				a, err := fast.Simulate(opt)
				if err != nil {
					t.Fatal(err)
				}
				b, err := slow.Simulate(opt)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d: compiled %s sampler diverges from the interface path:\ncompiled %+v\ngeneric  %+v", seed, tc.name, a, b)
				}
			}
		})
	}
}
