package petri

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/queueing"
)

// mmInfNet builds an M/M/inf system: a Poisson source feeds a station whose
// service transition has infinite-server semantics.
func mmInfNet(lambda, mu float64, capN int) *Net {
	n := NewNet("mminf")
	q := n.AddPlace("InService")
	if capN > 0 {
		n.SetCapacity(q, capN)
	}
	arr := n.AddExponential("Arrive", lambda)
	n.Output(arr, q, 1)
	srv := n.AddExponential("Serve", mu)
	n.Input(srv, q, 1)
	n.SetInfiniteServer(srv)
	return n
}

// mmcNet builds an M/M/c queue via k-server semantics.
func mmcNet(lambda, mu float64, c, capN int) *Net {
	n := NewNet("mmc")
	q := n.AddPlace("System")
	if capN > 0 {
		n.SetCapacity(q, capN)
	}
	arr := n.AddExponential("Arrive", lambda)
	n.Output(arr, q, 1)
	srv := n.AddExponential("Serve", mu)
	n.Input(srv, q, 1)
	n.SetServers(srv, c)
	return n
}

func TestEnablingDegree(t *testing.T) {
	n := NewNet("deg")
	p := n.AddPlaceInit("P", 5)
	single := n.AddExponential("Single", 1)
	n.Input(single, p, 1)
	multi := n.AddExponential("Multi", 1)
	n.Input(multi, p, 2)
	n.SetInfiniteServer(multi)
	capped := n.AddExponential("Capped", 1)
	n.Input(capped, p, 1)
	n.SetServers(capped, 3)
	m := n.InitialMarking()
	if d := n.EnablingDegree(m, single); d != 1 {
		t.Fatalf("single-server degree = %d, want 1", d)
	}
	if d := n.EnablingDegree(m, multi); d != 2 { // floor(5/2)
		t.Fatalf("infinite-server degree = %d, want 2", d)
	}
	if d := n.EnablingDegree(m, capped); d != 3 { // min(5, 3)
		t.Fatalf("capped degree = %d, want 3", d)
	}
	m[p] = 0
	if d := n.EnablingDegree(m, multi); d != 0 {
		t.Fatalf("disabled degree = %d, want 0", d)
	}
}

func TestEnablingDegreeSourceTransition(t *testing.T) {
	n := NewNet("src")
	q := n.AddPlace("Q")
	arr := n.AddExponential("Arr", 1)
	n.Output(arr, q, 1)
	n.SetInfiniteServer(arr)
	if d := n.EnablingDegree(n.InitialMarking(), arr); d != 1 {
		t.Fatalf("source degree = %d, want 1", d)
	}
}

func TestValidateRejectsNonExponentialMultiServer(t *testing.T) {
	n := NewNet("bad")
	p := n.AddPlaceInit("P", 1)
	tr := n.AddTimed("T", dist.NewDeterministic(1))
	n.Input(tr, p, 1)
	n.SetInfiniteServer(tr)
	if err := n.Validate(); err == nil {
		t.Fatal("deterministic infinite-server accepted")
	}
}

func TestValidateRejectsImmediateMultiServer(t *testing.T) {
	n := NewNet("bad")
	p := n.AddPlaceInit("P", 1)
	tr := n.AddImmediate("T", 1)
	n.Input(tr, p, 1)
	n.Transitions[tr].Servers = 4
	if err := n.Validate(); err == nil {
		t.Fatal("immediate multi-server accepted")
	}
}

func TestSetServersValidatesArg(t *testing.T) {
	n := NewNet("x")
	tr := n.AddExponential("T", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("SetServers(0) accepted")
		}
	}()
	n.SetServers(tr, 0)
}

// TestMMInfSimulation: E[N] in M/M/inf is exactly lambda/mu.
func TestMMInfSimulation(t *testing.T) {
	const lambda, mu = 4.0, 1.0
	n := mmInfNet(lambda, mu, 0)
	res, err := Simulate(n, SimOptions{Seed: 3, Warmup: 100, Duration: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlaceAvg[0]-lambda/mu) > 0.1 {
		t.Fatalf("M/M/inf E[N] = %v, want %v", res.PlaceAvg[0], lambda/mu)
	}
	// Flow balance.
	srvID, _ := n.TransitionByName("Serve")
	if math.Abs(res.Throughput[srvID]-lambda) > 0.15 {
		t.Fatalf("service throughput = %v, want ~%v", res.Throughput[srvID], lambda)
	}
}

// TestMMInfCTMC: the exact solver agrees with the Poisson stationary law of
// M/M/inf (truncated at a generous capacity).
func TestMMInfCTMC(t *testing.T) {
	const lambda, mu = 2.0, 1.0
	n := mmInfNet(lambda, mu, 25)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Stationary distribution is Poisson(lambda/mu) (truncation error is
	// negligible at cap 25 for mean 2).
	if math.Abs(res.PlaceAvg[0]-2) > 1e-6 {
		t.Fatalf("E[N] = %v, want 2", res.PlaceAvg[0])
	}
	// P(N=0) = e^{-2}.
	if math.Abs((1-res.PlaceNonEmpty[0])-math.Exp(-2)) > 1e-6 {
		t.Fatalf("P(empty) = %v, want %v", 1-res.PlaceNonEmpty[0], math.Exp(-2))
	}
}

// TestMMcCTMCMatchesErlangC: the k-server net solved exactly agrees with
// the M/M/c closed forms from internal/queueing.
func TestMMcCTMCMatchesErlangC(t *testing.T) {
	const (
		lambda = 3.0
		mu     = 2.0
		c      = 2
	)
	ref := queueing.MMc{Lambda: lambda, Mu: mu, C: c}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	n := mmcNet(lambda, mu, c, 80)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlaceAvg[0]-ref.MeanJobs()) > 1e-4 {
		t.Fatalf("M/M/2 E[N] = %v, want %v", res.PlaceAvg[0], ref.MeanJobs())
	}
}

// TestMMcSimulationMatchesErlangC: same comparison through the simulator.
func TestMMcSimulationMatchesErlangC(t *testing.T) {
	const (
		lambda = 3.0
		mu     = 2.0
		c      = 2
	)
	ref := queueing.MMc{Lambda: lambda, Mu: mu, C: c}
	n := mmcNet(lambda, mu, c, 0)
	res, err := Simulate(n, SimOptions{Seed: 8, Warmup: 200, Duration: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlaceAvg[0]-ref.MeanJobs())/ref.MeanJobs() > 0.05 {
		t.Fatalf("M/M/2 simulated E[N] = %v, want ~%v", res.PlaceAvg[0], ref.MeanJobs())
	}
}

// closedCycleNet models N customers cycling between thinking
// (infinite-server) and a single-server station — the classic machine
// repairman.
func closedCycleNet(nCust int, thinkRate, serveRate float64) *Net {
	n := NewNet("repairman")
	think := n.AddPlaceInit("Thinking", nCust)
	queue := n.AddPlace("AtStation")
	submit := n.AddExponential("Submit", thinkRate)
	n.Input(submit, think, 1)
	n.Output(submit, queue, 1)
	n.SetInfiniteServer(submit)
	serve := n.AddExponential("Serve", serveRate)
	n.Input(serve, queue, 1)
	n.Output(serve, think, 1)
	return n
}

// TestMachineRepairmanCTMC validates the closed network against the
// classical machine-repairman birth-death solution.
func TestMachineRepairmanCTMC(t *testing.T) {
	const (
		nCust     = 4
		thinkRate = 0.5
		serveRate = 2.0
	)
	n := closedCycleNet(nCust, thinkRate, serveRate)
	res, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Markings) != nCust+1 {
		t.Fatalf("states = %d, want %d", len(res.Markings), nCust+1)
	}
	// Birth-death on k = customers at the station: birth (N-k)*thinkRate,
	// death serveRate.
	pi := make([]float64, nCust+1)
	pi[0] = 1
	sum := 1.0
	for k := 0; k < nCust; k++ {
		pi[k+1] = pi[k] * float64(nCust-k) * thinkRate / serveRate
		sum += pi[k+1]
	}
	wantEN := 0.0
	for k := 0; k <= nCust; k++ {
		pi[k] /= sum
		wantEN += float64(k) * pi[k]
	}
	queueID, _ := n.PlaceByName("AtStation")
	if math.Abs(res.PlaceAvg[queueID]-wantEN) > 1e-9 {
		t.Fatalf("repairman E[N] = %v, want %v", res.PlaceAvg[queueID], wantEN)
	}
}

// TestMachineRepairmanSimulation: the simulator reproduces the same closed
// network within noise, and conserves the population invariant.
func TestMachineRepairmanSimulation(t *testing.T) {
	n := closedCycleNet(4, 0.5, 2.0)
	exact, err := SolveCTMC(n, ReachOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(n, SimOptions{Seed: 12, Warmup: 100, Duration: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for p := range n.Places {
		if d := math.Abs(exact.PlaceAvg[p] - sim.PlaceAvg[p]); d > 0.05 {
			t.Fatalf("place %s: exact %v vs sim %v", n.Places[p].Name, exact.PlaceAvg[p], sim.PlaceAvg[p])
		}
	}
	// Population conservation.
	if math.Abs((sim.PlaceAvg[0]+sim.PlaceAvg[1])-4) > 1e-9 {
		t.Fatalf("population not conserved: %v", sim.PlaceAvg)
	}
}

func BenchmarkSimulateMMInf(b *testing.B) {
	n := mmInfNet(4, 1, 0)
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(n, SimOptions{Seed: uint64(i), Duration: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}
