package petri

import (
	"context"
	"fmt"
	"math"
)

// Injection is an external marking change applied to an open Session:
// Tokens (possibly negative) are added to Place. Composition layers use it
// to turn events of one net into token flow in another — e.g. a packet
// arriving at a sensor node becomes workload tokens in that node's CPU net.
type Injection struct {
	Place  PlaceID
	Tokens int
}

// Session is an incrementally driven simulation run of a compiled net: the
// same engine Simulate uses, but with the event loop inverted so an outside
// scheduler decides how far simulated time advances and may inject external
// token arrivals between events. A field of nodes is simulated by opening
// one Session per node and interleaving StepTo/Inject calls under a single
// global clock.
//
// A Session driven by StepTo to (or past) each of its own event times and
// then finished produces a SimResult bit-identical to Compiled.Simulate
// with the same options — session_test.go pins this equivalence.
//
// The zero Session is invalid; obtain one from Compiled.OpenSession. A
// Session is not safe for concurrent use. Every Session must be ended with
// exactly one Finish or Close call so its pooled engine is returned.
type Session struct {
	c    *Compiled
	e    *engine
	done bool
	err  error
}

// OpenSession starts an incremental run of the compiled net. The options
// carry the same meaning as in SimulateContext: statistics cover
// [Warmup, Warmup+Duration], and the context is polled during event
// processing. The net's initial vanishing chain is resolved and the initial
// timers are scheduled before OpenSession returns, so the session starts at
// a tangible marking at time 0.
func (c *Compiled) OpenSession(ctx context.Context, opt SimOptions) (*Session, error) {
	if opt.Warmup < 0 {
		return nil, fmt.Errorf("petri: SimOptions.Warmup must be non-negative, got %v", opt.Warmup)
	}
	e, err := c.acquireEngine(ctx, opt)
	if err != nil {
		return nil, err
	}
	if err := e.start(); err != nil {
		c.releaseEngine(e)
		return nil, err
	}
	if e.opt.Warmup == 0 {
		e.beginMeasurement()
	}
	return &Session{c: c, e: e}, nil
}

// fail poisons the session with err, releasing the engine. All later calls
// return the same error.
func (s *Session) fail(err error) error {
	s.err = err
	s.done = true
	s.c.releaseEngine(s.e)
	s.e = nil
	return err
}

// active returns an error when the session cannot accept further calls.
func (s *Session) active() error {
	if s.err != nil {
		return s.err
	}
	if s.done {
		return fmt.Errorf("petri: session already finished")
	}
	return nil
}

// Now returns the session's current simulated time.
func (s *Session) Now() float64 {
	if s.done {
		return math.NaN()
	}
	return s.e.now
}

// Horizon returns Warmup+Duration, the time Finish advances to.
func (s *Session) Horizon() float64 {
	if s.done {
		return math.NaN()
	}
	return s.e.opt.Warmup + s.e.opt.Duration
}

// NextEventTime returns the absolute time of the session's earliest
// scheduled internal event, or +Inf when none is scheduled (the net is
// deadlocked until an Inject re-enables it). An external scheduler merges
// these across sessions to find the globally next event.
func (s *Session) NextEventTime() float64 {
	if s.done {
		return math.NaN()
	}
	t, id := s.e.nextTimed()
	if id < 0 {
		return math.Inf(1)
	}
	return t
}

// Tokens returns the current token count of place p. Unlike firing
// counters, the marking is maintained during warmup too, so composition
// layers can observe traffic from time 0.
func (s *Session) Tokens(p PlaceID) int {
	if s.done || int(p) < 0 || int(p) >= len(s.e.marking) {
		return 0
	}
	return s.e.marking[p]
}

// Firings returns the measured-period firing count of transition t so far.
func (s *Session) Firings(t TransitionID) uint64 {
	if s.done || int(t) < 0 || int(t) >= len(s.e.firings) {
		return 0
	}
	return s.e.firings[t]
}

// StepTo fires every internal event scheduled at or before t, in the exact
// order the closed-loop engine would, and advances the clock to t. Time
// only moves forward: t must be at least Now. Stepping past the warmup
// boundary begins measurement at exactly the warmup time, matching run().
func (s *Session) StepTo(t float64) error {
	if err := s.active(); err != nil {
		return err
	}
	e := s.e
	if t < e.now {
		return fmt.Errorf("petri: StepTo(%v) before current time %v", t, e.now)
	}
	if hz := e.opt.Warmup + e.opt.Duration; t > hz {
		return fmt.Errorf("petri: StepTo(%v) beyond horizon %v", t, hz)
	}
	for {
		et, id := e.nextTimed()
		if id < 0 || et > t {
			break
		}
		if !e.measuring && et >= e.opt.Warmup {
			e.now = e.opt.Warmup
			e.beginMeasurement()
		}
		e.advanceTo(et)
		if err := e.fireTimed(int32(id)); err != nil {
			return s.fail(err)
		}
	}
	if !e.measuring && t >= e.opt.Warmup {
		e.now = e.opt.Warmup
		e.beginMeasurement()
	}
	e.advanceTo(t)
	return nil
}

// Inject applies external marking changes at the current time: each
// injection adds Tokens to Place, after which the resulting vanishing
// markings are resolved and the timers adjacent to the touched places are
// re-synchronized — exactly the bookkeeping an internal firing performs, so
// injected tokens enable, disable and re-arm transitions with the same
// semantics as token flow from arcs.
//
// Injections that would drive a place negative, or name an unknown place,
// are rejected up front with no state change. An immediate-transition
// livelock triggered by the injected tokens poisons the session.
func (s *Session) Inject(injs ...Injection) error {
	if err := s.active(); err != nil {
		return err
	}
	e := s.e
	for i, in := range injs {
		p := int(in.Place)
		if p < 0 || p >= len(e.marking) {
			return fmt.Errorf("petri: Inject: no place %d", p)
		}
		sum := e.marking[p] + in.Tokens
		for _, other := range injs[:i] {
			if other.Place == in.Place {
				sum += other.Tokens
			}
		}
		if sum < 0 {
			return fmt.Errorf("petri: Inject: place %q would go negative (%d)", e.net.Places[p].Name, sum)
		}
	}
	// No firing started this event: collect every timed flip, including
	// transitions a closed-loop event would re-check unconditionally.
	e.curTimed = -1
	changed := false
	for _, in := range injs {
		if in.Tokens == 0 {
			continue
		}
		changed = true
		s.applyDelta(int32(in.Place), in.Tokens)
	}
	if !changed {
		return nil
	}
	// The injected marking may lie outside the unperturbed net's
	// reachability set, invalidating the compiler's capacity/P-invariant
	// bounds for the rest of the run.
	e.bndBroken = true
	c := s.c
	if len(c.guardedImms) > 0 {
		for _, i := range c.guardedImms {
			en := c.enabled(e.marking, i)
			if en != e.guardEnabled[i] {
				e.guardEnabled[i] = en
				e.bumpGroup(c.groupOf[i], en)
			}
		}
	}
	if err := e.resolveImmediates(0); err != nil {
		return s.fail(err)
	}
	e.recordMarking()
	e.syncDirtyTimers(-1)
	e.clearDirty()
	return nil
}

// applyDelta adds d tokens to place p and propagates the change through the
// place's compiled threshold conditions — the same satisfaction-flip
// arithmetic fireAndUpdate applies to arc-driven deltas.
func (s *Session) applyDelta(p int32, d int) {
	e := s.e
	c := s.c
	v0 := e.marking[p]
	v1 := v0 + d
	e.marking[p] = v1
	e.dirty = append(e.dirty, p)
	for _, cd := range c.conds[c.condOff[p]:c.condOff[p+1]] {
		thresh := cd.thresh()
		l1 := v1 < thresh
		if (v0 < thresh) == l1 {
			continue
		}
		tt := cd.transition()
		if l1 != cd.geq() { // became unsatisfied
			if e.unsat[tt] == 0 {
				e.noteFlip(tt, cd.timed(), false)
			}
			e.unsat[tt]++
		} else {
			e.unsat[tt]--
			if e.unsat[tt] == 0 {
				e.noteFlip(tt, cd.timed(), true)
			}
		}
	}
}

// Finish fires any remaining events up to the horizon, closes the
// statistics at the horizon and returns the run's SimResult — the exact
// result assembly of the closed-loop engine, including the deadlock
// convention (an empty schedule means the final marking absorbs the
// remaining time). The session's engine is returned to the pool; the
// session cannot be used afterwards.
func (s *Session) Finish() (*SimResult, error) {
	if err := s.active(); err != nil {
		return nil, err
	}
	e := s.e
	horizon := e.opt.Warmup + e.opt.Duration
	if err := s.StepTo(horizon); err != nil {
		return nil, err
	}
	n := e.net
	res := &SimResult{
		Time:          e.opt.Duration,
		PlaceAvg:      make([]float64, len(n.Places)),
		PlaceNonEmpty: make([]float64, len(n.Places)),
		Firings:       append([]uint64(nil), e.firings...),
		Throughput:    make([]float64, len(n.Transitions)),
		Deadlocked:    e.nothingScheduled(),
		FinalMarking:  e.marking.Clone(),
	}
	for i := range n.Places {
		st := &e.pstats[i]
		res.PlaceAvg[i] = e.timeAvg(st.tokInt, st.tokT, st.tokV, horizon)
		res.PlaceNonEmpty[i] = e.timeAvg(st.busyInt, st.busyT, st.busyV, horizon)
	}
	for i := range n.Transitions {
		res.Throughput[i] = float64(e.firings[i]) / e.opt.Duration
	}
	s.done = true
	s.c.releaseEngine(e)
	s.e = nil
	return res, nil
}

// Close abandons the session without producing a result, returning its
// engine to the pool. It is a no-op after Finish, Close or a poisoning
// error.
func (s *Session) Close() {
	if s.done {
		return
	}
	s.done = true
	s.c.releaseEngine(s.e)
	s.e = nil
}
