package petri_test

// Tests for the incremental Session API: driven to completion it must be
// bit-identical to the closed-loop Simulate — same RNG draws, same event
// order, same accumulator arithmetic — and Inject must move tokens with
// the same enabling semantics as arc-driven token flow.

import (
	"context"
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/petri"
)

// sameSimResult compares two results for exact equality (no tolerance:
// equivalence here means identical trajectories and arithmetic).
func sameSimResult(t *testing.T, name string, want, got *petri.SimResult) {
	t.Helper()
	if want.Time != got.Time || want.Deadlocked != got.Deadlocked {
		t.Fatalf("%s: Time/Deadlocked mismatch: want %v/%v, got %v/%v",
			name, want.Time, want.Deadlocked, got.Time, got.Deadlocked)
	}
	for i := range want.PlaceAvg {
		if want.PlaceAvg[i] != got.PlaceAvg[i] || want.PlaceNonEmpty[i] != got.PlaceNonEmpty[i] {
			t.Fatalf("%s: place %d stats mismatch: want %v/%v, got %v/%v", name, i,
				want.PlaceAvg[i], want.PlaceNonEmpty[i], got.PlaceAvg[i], got.PlaceNonEmpty[i])
		}
		if want.FinalMarking[i] != got.FinalMarking[i] {
			t.Fatalf("%s: final marking of place %d: want %d, got %d",
				name, i, want.FinalMarking[i], got.FinalMarking[i])
		}
	}
	for i := range want.Firings {
		if want.Firings[i] != got.Firings[i] || want.Throughput[i] != got.Throughput[i] {
			t.Fatalf("%s: transition %d firings mismatch: want %d/%v, got %d/%v", name, i,
				want.Firings[i], want.Throughput[i], got.Firings[i], got.Throughput[i])
		}
	}
}

// TestSessionMatchesSimulate drives a Session over the whole net zoo in
// three ways — Finish alone, event-by-event via NextEventTime, and an
// arbitrary fixed-dt grid oblivious to the event times — and requires the
// result to be bit-identical to the closed-loop engine in every case.
func TestSessionMatchesSimulate(t *testing.T) {
	ctx := context.Background()
	for name, n := range equivNets() {
		c, err := petri.Compile(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, seed := range []uint64{1, 42} {
			for _, mem := range []petri.MemoryPolicy{petri.RaceEnable, petri.RaceAge} {
				opt := petri.SimOptions{Seed: seed, Warmup: 25, Duration: 250, Memory: mem}
				want, err := c.Simulate(opt)
				if err != nil {
					t.Fatalf("%s: Simulate: %v", name, err)
				}
				drivers := map[string]func(s *petri.Session) error{
					"finish-only": func(s *petri.Session) error { return nil },
					"event-by-event": func(s *petri.Session) error {
						for {
							next := s.NextEventTime()
							if math.IsInf(next, 1) || next > s.Horizon() {
								return nil
							}
							if err := s.StepTo(next); err != nil {
								return err
							}
						}
					},
					"fixed-grid": func(s *petri.Session) error {
						for at := 7.3; at < s.Horizon(); at += 7.3 {
							if err := s.StepTo(at); err != nil {
								return err
							}
						}
						return nil
					},
				}
				for dname, drive := range drivers {
					s, err := c.OpenSession(ctx, opt)
					if err != nil {
						t.Fatalf("%s/%s: OpenSession: %v", name, dname, err)
					}
					if err := drive(s); err != nil {
						t.Fatalf("%s/%s: drive: %v", name, dname, err)
					}
					got, err := s.Finish()
					if err != nil {
						t.Fatalf("%s/%s: Finish: %v", name, dname, err)
					}
					sameSimResult(t, name+"/"+dname, want, got)
				}
			}
		}
	}
}

// sinkServerNet is a net with no internal token source: Queue feeds a
// single-server exponential Serve into Done. Without injections it is
// dead from time 0.
func sinkServerNet() (*petri.Net, petri.PlaceID, petri.PlaceID) {
	n := petri.NewNet("sink")
	q := n.AddPlace("Queue")
	done := n.AddPlace("Done")
	serve := n.AddTimed("Serve", dist.NewExponential(5))
	n.Input(serve, q, 1)
	n.Output(serve, done, 1)
	return n, q, done
}

func TestSessionInjectDrivesDeadNet(t *testing.T) {
	n, q, done := sinkServerNet()
	serve, _ := n.TransitionByName("Serve")
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.OpenSession(context.Background(), petri.SimOptions{Seed: 3, Duration: 100})
	if err != nil {
		t.Fatal(err)
	}
	if next := s.NextEventTime(); !math.IsInf(next, 1) {
		t.Fatalf("dead net has scheduled event at %v", next)
	}
	if err := s.Inject(petri.Injection{Place: q, Tokens: 3}); err != nil {
		t.Fatal(err)
	}
	if next := s.NextEventTime(); math.IsInf(next, 1) {
		t.Fatal("injection did not arm the server")
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Firings[serve] != 3 {
		t.Fatalf("Serve fired %d times, want 3", res.Firings[serve])
	}
	if res.FinalMarking[done] != 3 || res.FinalMarking[q] != 0 {
		t.Fatalf("final marking Done=%d Queue=%d, want 3/0", res.FinalMarking[done], res.FinalMarking[q])
	}
	if !res.Deadlocked {
		t.Fatal("drained net should report deadlock")
	}
}

// TestSessionInjectResolvesImmediates: tokens injected into a place feeding
// an enabled immediate must be moved on before Inject returns (the marking
// left behind is tangible, like after any internal event).
func TestSessionInjectResolvesImmediates(t *testing.T) {
	n := petri.NewNet("imm")
	a := n.AddPlace("A")
	b := n.AddPlace("B")
	move := n.AddImmediate("Move", 1)
	n.Input(move, a, 1)
	n.Output(move, b, 1)
	// A timed self-loop keeps the net from being trivially dead.
	tick := n.AddPlaceInit("Tick", 1)
	beat := n.AddTimed("Beat", dist.NewDeterministic(1))
	n.Input(beat, tick, 1)
	n.Output(beat, tick, 1)

	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.OpenSession(context.Background(), petri.SimOptions{Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Inject(petri.Injection{Place: a, Tokens: 4}); err != nil {
		t.Fatal(err)
	}
	if got := s.Tokens(a); got != 0 {
		t.Fatalf("A holds %d tokens after Inject, want 0 (immediate must drain it)", got)
	}
	if got := s.Tokens(b); got != 4 {
		t.Fatalf("B holds %d tokens, want 4", got)
	}
}

func TestSessionInjectValidation(t *testing.T) {
	n, q, _ := sinkServerNet()
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.OpenSession(context.Background(), petri.SimOptions{Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Inject(petri.Injection{Place: petri.PlaceID(99), Tokens: 1}); err == nil {
		t.Fatal("unknown place accepted")
	}
	if err := s.Inject(petri.Injection{Place: q, Tokens: -1}); err == nil {
		t.Fatal("negative marking accepted")
	}
	// Split across two injections of the same place: the combined result
	// must be validated, not each delta in isolation.
	if err := s.Inject(petri.Injection{Place: q, Tokens: 1}, petri.Injection{Place: q, Tokens: -2}); err == nil {
		t.Fatal("combined negative marking accepted")
	}
	// A rejected Inject leaves the session untouched and usable.
	if got := s.Tokens(q); got != 0 {
		t.Fatalf("Queue holds %d tokens after rejected injections, want 0", got)
	}
	if err := s.Inject(petri.Injection{Place: q, Tokens: 2}, petri.Injection{Place: q, Tokens: -1}); err != nil {
		t.Fatalf("valid combined injection rejected: %v", err)
	}
	if got := s.Tokens(q); got != 1 {
		t.Fatalf("Queue holds %d tokens, want 1", got)
	}
}

// TestSessionInjectMatchesArrivalNet: a deterministic system driven by
// injections must reproduce the trajectory of the same system driven by an
// internal arrival transition firing at the same instants.
func TestSessionInjectMatchesArrivalNet(t *testing.T) {
	build := func(withSource bool) *petri.Net {
		n := petri.NewNet("det")
		q := n.AddPlace("Queue")
		idle := n.AddPlaceInit("Idle", 1)
		busy := n.AddPlace("Busy")
		if withSource {
			arrive := n.AddTimed("Arrive", dist.NewDeterministic(1))
			n.Output(arrive, q, 1)
		}
		start := n.AddImmediate("Start", 1)
		n.Input(start, q, 1)
		n.Input(start, idle, 1)
		n.Output(start, busy, 1)
		serve := n.AddTimed("Serve", dist.NewDeterministic(0.3))
		n.Input(serve, busy, 1)
		n.Output(serve, idle, 1)
		return n
	}
	opt := petri.SimOptions{Seed: 9, Duration: 10}

	ref := build(true)
	want, err := petri.Simulate(ref, opt)
	if err != nil {
		t.Fatal(err)
	}
	refServe, _ := ref.TransitionByName("Serve")

	inj := build(false)
	q, _ := inj.PlaceByName("Queue")
	serve, _ := inj.TransitionByName("Serve")
	c, err := petri.Compile(inj)
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.OpenSession(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the deterministic arrivals at t = 1, 2, ..., 10.
	for i := 1; i <= 10; i++ {
		if err := s.StepTo(float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := s.Inject(petri.Injection{Place: q, Tokens: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if want.Firings[refServe] != got.Firings[serve] {
		t.Fatalf("Serve fired %d times under injection, want %d", got.Firings[serve], want.Firings[refServe])
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	n, _, _ := sinkServerNet()
	c, err := petri.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	opt := petri.SimOptions{Seed: 1, Duration: 10}

	if _, err := c.OpenSession(context.Background(), petri.SimOptions{Seed: 1, Duration: 10, Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
	if _, err := c.OpenSession(context.Background(), petri.SimOptions{Seed: 1}); err == nil {
		t.Fatal("zero duration accepted")
	}

	s, err := c.OpenSession(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.StepTo(5); err != nil {
		t.Fatal(err)
	}
	if err := s.StepTo(4); err == nil {
		t.Fatal("time moved backwards")
	}
	if err := s.StepTo(11); err == nil {
		t.Fatal("stepped beyond horizon")
	}
	if _, err := s.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finish(); err == nil {
		t.Fatal("second Finish succeeded")
	}
	if err := s.StepTo(6); err == nil {
		t.Fatal("StepTo after Finish succeeded")
	}
	if err := s.Inject(); err == nil {
		t.Fatal("Inject after Finish succeeded")
	}
	if !math.IsNaN(s.Now()) || !math.IsNaN(s.Horizon()) || !math.IsNaN(s.NextEventTime()) {
		t.Fatal("finished session should report NaN times")
	}
	s.Close() // no-op after Finish

	// Close without Finish is allowed and idempotent.
	s2, err := c.OpenSession(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s2.Close()
	if _, err := s2.Finish(); err == nil {
		t.Fatal("Finish after Close succeeded")
	}
}
