package petri

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// MemoryPolicy selects how timed transitions treat their sampled firing
// delay across marking changes (German's execution policies).
type MemoryPolicy int

const (
	// RaceEnable resamples the delay whenever the transition becomes
	// enabled after having been disabled; a transition that stays enabled
	// across other firings keeps its scheduled time. This is the standard
	// DSPN policy and the one the paper's CPU model requires (the Power
	// Down Threshold timer restarts when a job arrives).
	RaceEnable MemoryPolicy = iota
	// RaceAge keeps the remaining delay across disabling: when the
	// transition is re-enabled, the clock resumes where it stopped.
	RaceAge
)

func (p MemoryPolicy) String() string {
	switch p {
	case RaceEnable:
		return "race-enable"
	case RaceAge:
		return "race-age"
	default:
		return fmt.Sprintf("MemoryPolicy(%d)", int(p))
	}
}

// SimOptions configures a simulation run.
type SimOptions struct {
	// Seed drives all sampling; identical seeds reproduce runs exactly.
	Seed uint64
	// Warmup is simulated but excluded from statistics.
	Warmup float64
	// Duration is the measured period after warmup. Required.
	Duration float64
	// Memory selects the execution policy (default RaceEnable).
	Memory MemoryPolicy
	// MaxVanishingChain bounds consecutive immediate firings between two
	// tangible markings; exceeding it indicates an immediate-transition
	// livelock. Default 1e5.
	MaxVanishingChain int
}

// SimResult reports time-averaged statistics over the measured period.
type SimResult struct {
	// Time is the measured duration.
	Time float64
	// PlaceAvg is the time-averaged token count per place ("steady-state
	// percentage" when the place holds at most one token).
	PlaceAvg []float64
	// PlaceNonEmpty is the fraction of measured time each place held at
	// least one token.
	PlaceNonEmpty []float64
	// Firings counts firings per transition during the measured period.
	Firings []uint64
	// Throughput is firings per unit time.
	Throughput []float64
	// Deadlocked reports that the net reached a marking with no enabled
	// transitions before the horizon; the final marking is then held for
	// the remaining time (absorbing state).
	Deadlocked bool
	// FinalMarking is the marking at the end of the run.
	FinalMarking Marking
}

// PlaceAvgByName returns the average token count of the named place.
func (r *SimResult) PlaceAvgByName(n *Net, name string) float64 {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	return r.PlaceAvg[id]
}

// Simulate executes the net once and returns time-averaged statistics.
func Simulate(n *Net, opt SimOptions) (*SimResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("petri: SimOptions.Duration must be positive, got %v", opt.Duration)
	}
	if opt.Warmup < 0 {
		return nil, fmt.Errorf("petri: SimOptions.Warmup must be non-negative, got %v", opt.Warmup)
	}
	if opt.MaxVanishingChain == 0 {
		opt.MaxVanishingChain = 100000
	}
	e := &engine{
		net:     n,
		opt:     opt,
		rng:     newEngineRand(opt.Seed),
		marking: n.InitialMarking(),
		fireAt:  make([]float64, len(n.Transitions)),
		remain:  make([]float64, len(n.Transitions)),
		degree:  make([]int, len(n.Transitions)),
	}
	for i := range e.fireAt {
		e.fireAt[i] = math.Inf(1)
		e.remain[i] = -1
	}
	return e.run()
}

// newEngineRand derives the engine's random stream from a seed; kept in one
// place so every execution mode (steady-state, transient, batch means)
// shares the seed-to-stream mapping.
func newEngineRand(seed uint64) *xrand.Rand { return xrand.NewStream(seed, 0) }

// engine is the single-run execution state.
type engine struct {
	net     *Net
	opt     SimOptions
	rng     *xrand.Rand
	marking Marking
	now     float64
	// fireAt[t] is the absolute scheduled firing time of timed transition
	// t, or +Inf when not scheduled (disabled).
	fireAt []float64
	// remain[t] stores the interrupted remaining delay under RaceAge;
	// -1 means no stored age.
	remain []float64
	// degree[t] is the enabling degree the current schedule of a
	// multi-server transition was sampled at; a change forces a
	// (memoryless) resample.
	degree []int

	measuring bool
	placeAcc  []stats.TimeWeighted
	busyAcc   []stats.TimeWeighted
	firings   []uint64
}

func (e *engine) run() (*SimResult, error) {
	n := e.net
	horizon := e.opt.Warmup + e.opt.Duration
	e.placeAcc = make([]stats.TimeWeighted, len(n.Places))
	e.busyAcc = make([]stats.TimeWeighted, len(n.Places))
	e.firings = make([]uint64, len(n.Transitions))

	// Resolve any immediates enabled in the initial marking, then start
	// the timers.
	if err := e.resolveImmediates(); err != nil {
		return nil, err
	}
	e.syncTimers()
	if e.opt.Warmup == 0 {
		e.beginMeasurement()
	}

	deadlocked := false
	for {
		t, id := e.nextTimed()
		if id < 0 {
			deadlocked = true
			break
		}
		if t > horizon {
			break
		}
		// Crossing the warmup boundary starts measurement at exactly the
		// warmup time with the pre-event marking.
		if !e.measuring && t >= e.opt.Warmup {
			e.now = e.opt.Warmup
			e.beginMeasurement()
		}
		e.advanceTo(t)
		if err := e.fireTimed(TransitionID(id)); err != nil {
			return nil, err
		}
	}
	if !e.measuring {
		// Deadlock during warmup: measure the absorbing marking from the
		// warmup boundary onward.
		e.now = e.opt.Warmup
		e.beginMeasurement()
	}
	e.advanceTo(horizon)

	res := &SimResult{
		Time:          e.opt.Duration,
		PlaceAvg:      make([]float64, len(n.Places)),
		PlaceNonEmpty: make([]float64, len(n.Places)),
		Firings:       e.firings,
		Throughput:    make([]float64, len(n.Transitions)),
		Deadlocked:    deadlocked,
		FinalMarking:  e.marking.Clone(),
	}
	for i := range n.Places {
		res.PlaceAvg[i] = e.placeAcc[i].MeanAt(horizon)
		res.PlaceNonEmpty[i] = e.busyAcc[i].MeanAt(horizon)
	}
	for i := range n.Transitions {
		res.Throughput[i] = float64(e.firings[i]) / e.opt.Duration
	}
	return res, nil
}

func (e *engine) beginMeasurement() {
	e.measuring = true
	for i, v := range e.marking {
		e.placeAcc[i].Start(e.now, float64(v))
		e.busyAcc[i].Start(e.now, boolTo01(v > 0))
	}
	// Reset firing counters: only measured-period firings count.
	for i := range e.firings {
		e.firings[i] = 0
	}
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// advanceTo moves the clock to t, integrating statistics.
func (e *engine) advanceTo(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("petri: clock moved backwards %v -> %v", e.now, t))
	}
	e.now = t
}

// recordMarking pushes the current marking into the accumulators at the
// current time. Must be called after every tangible marking change.
func (e *engine) recordMarking() {
	if !e.measuring {
		return
	}
	for i, v := range e.marking {
		e.placeAcc[i].Set(e.now, float64(v))
		e.busyAcc[i].Set(e.now, boolTo01(v > 0))
	}
}

// nextTimed returns the earliest scheduled timed transition, breaking time
// ties by transition index (deterministic). id is -1 when nothing is
// scheduled.
func (e *engine) nextTimed() (float64, int) {
	best := math.Inf(1)
	id := -1
	for i, t := range e.fireAt {
		if t < best {
			best = t
			id = i
		}
	}
	return best, id
}

// fireTimed fires the scheduled timed transition, resolves the resulting
// vanishing markings and re-synchronizes all timers.
func (e *engine) fireTimed(t TransitionID) error {
	e.fireAt[t] = math.Inf(1)
	e.remain[t] = -1
	if !e.net.Enabled(e.marking, t) {
		return fmt.Errorf("petri: internal error: scheduled transition %q not enabled at fire time", e.net.Transitions[t].Name)
	}
	e.net.Fire(e.marking, t)
	if e.measuring {
		e.firings[t]++
	}
	if err := e.resolveImmediates(); err != nil {
		return err
	}
	e.recordMarking()
	e.syncTimers()
	return nil
}

// resolveImmediates fires enabled immediate transitions (highest priority
// first, weighted random choice within a priority level) until the marking
// is tangible. The chain happens in zero simulated time.
func (e *engine) resolveImmediates() error {
	for steps := 0; ; steps++ {
		ids := e.net.EnabledImmediatesAtTopPriority(e.marking)
		if len(ids) == 0 {
			return nil
		}
		if steps >= e.opt.MaxVanishingChain {
			return fmt.Errorf("petri: immediate-transition livelock after %d zero-time firings (marking %v)", steps, e.marking)
		}
		var chosen TransitionID
		if len(ids) == 1 {
			chosen = ids[0]
		} else {
			total := 0.0
			for _, id := range ids {
				total += e.net.Transitions[id].Weight
			}
			u := e.rng.Float64() * total
			chosen = ids[len(ids)-1]
			for _, id := range ids {
				u -= e.net.Transitions[id].Weight
				if u < 0 {
					chosen = id
					break
				}
			}
		}
		e.net.Fire(e.marking, chosen)
		if e.measuring {
			e.firings[chosen]++
		}
	}
}

// syncTimers reconciles the scheduled timed transitions with the current
// marking under the configured memory policy. Multi-server exponential
// transitions resample whenever their enabling degree changes, which is
// statistically exact by memorylessness.
func (e *engine) syncTimers() {
	for i := range e.net.Transitions {
		tr := &e.net.Transitions[i]
		if tr.Kind != Timed {
			continue
		}
		multi := tr.Servers != 0 && tr.Servers != 1
		deg := 1
		var enabled bool
		if multi {
			deg = e.net.EnablingDegree(e.marking, TransitionID(i))
			enabled = deg > 0
		} else {
			enabled = e.net.Enabled(e.marking, TransitionID(i))
		}
		scheduled := !math.IsInf(e.fireAt[i], 1)
		switch {
		case enabled && !scheduled:
			e.fireAt[i] = e.now + e.sampleDelay(tr, deg, i)
			e.degree[i] = deg
		case enabled && scheduled && multi && deg != e.degree[i]:
			e.fireAt[i] = e.now + e.sampleDelay(tr, deg, i)
			e.degree[i] = deg
		case !enabled && scheduled:
			if e.opt.Memory == RaceAge && !multi {
				e.remain[i] = e.fireAt[i] - e.now
			}
			e.fireAt[i] = math.Inf(1)
		}
	}
}

// sampleDelay draws the firing delay of transition tr at the given enabling
// degree, honoring race-age resumption for single-server transitions.
func (e *engine) sampleDelay(tr *Transition, deg int, idx int) float64 {
	if e.opt.Memory == RaceAge && e.remain[idx] >= 0 && (tr.Servers == 0 || tr.Servers == 1) {
		d := e.remain[idx]
		e.remain[idx] = -1
		return d
	}
	delay := tr.Delay.Sample(e.rng)
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("petri: transition %q sampled invalid delay %v", tr.Name, delay))
	}
	if deg > 1 {
		// Exponential with rate scaled by the degree: dividing a rate-r
		// sample by deg yields a rate-(r*deg) sample.
		delay /= float64(deg)
	}
	return delay
}

// ---------------------------------------------------------------------------
// Replications

// ReplicatedResult aggregates independent replications of a simulation.
type ReplicatedResult struct {
	Replications int
	// PlaceAvg[i] summarizes the per-replication time-averaged token
	// count of place i.
	PlaceAvg []stats.Summary
	// PlaceNonEmpty[i] summarizes the per-replication fraction of time
	// place i was non-empty.
	PlaceNonEmpty []stats.Summary
	// Throughput[i] summarizes per-replication firings per unit time.
	Throughput []stats.Summary
	// Deadlocks counts replications that deadlocked.
	Deadlocks int
}

// MeanTokens returns the across-replication mean token count of the named
// place with its 95% confidence half-width.
func (r *ReplicatedResult) MeanTokens(n *Net, name string) (mean, ci float64) {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	return r.PlaceAvg[id].Mean(), r.PlaceAvg[id].CI(0.95)
}

// SimulateReplications runs reps independent replications, deriving each
// replication's random stream from (opt.Seed, replication index).
// Replications execute in parallel across the available CPUs; because each
// replication's seed depends only on its index and results are folded in
// index order, the aggregate is bit-identical to a sequential run. The net
// itself is never mutated by simulation, so sharing it between goroutines
// is safe as long as any guard functions are pure.
func SimulateReplications(n *Net, opt SimOptions, reps int) (*ReplicatedResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("petri: replications must be >= 1, got %d", reps)
	}
	results := make([]*SimResult, reps)
	errs := make([]error, reps)
	parallelFor(reps, func(rep int) {
		o := opt
		o.Seed = opt.Seed + uint64(rep)*0x9e3779b97f4a7c15
		results[rep], errs[rep] = Simulate(n, o)
	})
	out := &ReplicatedResult{
		Replications:  reps,
		PlaceAvg:      make([]stats.Summary, len(n.Places)),
		PlaceNonEmpty: make([]stats.Summary, len(n.Places)),
		Throughput:    make([]stats.Summary, len(n.Transitions)),
	}
	for rep := 0; rep < reps; rep++ {
		if errs[rep] != nil {
			return nil, fmt.Errorf("petri: replication %d: %w", rep, errs[rep])
		}
		res := results[rep]
		for i := range n.Places {
			out.PlaceAvg[i].Add(res.PlaceAvg[i])
			out.PlaceNonEmpty[i].Add(res.PlaceNonEmpty[i])
		}
		for i := range n.Transitions {
			out.Throughput[i].Add(res.Throughput[i])
		}
		if res.Deadlocked {
			out.Deadlocks++
		}
	}
	return out, nil
}

// parallelFor runs body(0..n-1) across min(n, GOMAXPROCS) goroutines and
// waits for completion. Iteration order is unspecified; callers must write
// into index-addressed slots to stay deterministic.
func parallelFor(n int, body func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
