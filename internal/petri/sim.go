package petri

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/xrand"
	"repro/internal/xsync"
)

// MemoryPolicy selects how timed transitions treat their sampled firing
// delay across marking changes (German's execution policies).
type MemoryPolicy int

const (
	// RaceEnable resamples the delay whenever the transition becomes
	// enabled after having been disabled; a transition that stays enabled
	// across other firings keeps its scheduled time. This is the standard
	// DSPN policy and the one the paper's CPU model requires (the Power
	// Down Threshold timer restarts when a job arrives).
	RaceEnable MemoryPolicy = iota
	// RaceAge keeps the remaining delay across disabling: when the
	// transition is re-enabled, the clock resumes where it stopped.
	RaceAge
)

func (p MemoryPolicy) String() string {
	switch p {
	case RaceEnable:
		return "race-enable"
	case RaceAge:
		return "race-age"
	default:
		return fmt.Sprintf("MemoryPolicy(%d)", int(p))
	}
}

// SimOptions configures a simulation run.
type SimOptions struct {
	// Seed drives all sampling; identical seeds reproduce runs exactly.
	Seed uint64
	// Warmup is simulated but excluded from statistics.
	Warmup float64
	// Duration is the measured period after warmup. Required.
	Duration float64
	// Memory selects the execution policy (default RaceEnable).
	Memory MemoryPolicy
	// MaxVanishingChain bounds consecutive immediate firings between two
	// tangible markings; exceeding it indicates an immediate-transition
	// livelock. Default 1e5.
	MaxVanishingChain int
}

// SimResult reports time-averaged statistics over the measured period.
type SimResult struct {
	// Time is the measured duration.
	Time float64
	// PlaceAvg is the time-averaged token count per place ("steady-state
	// percentage" when the place holds at most one token).
	PlaceAvg []float64
	// PlaceNonEmpty is the fraction of measured time each place held at
	// least one token.
	PlaceNonEmpty []float64
	// Firings counts firings per transition during the measured period.
	Firings []uint64
	// Throughput is firings per unit time.
	Throughput []float64
	// Deadlocked reports that the net reached a marking with no enabled
	// transitions before the horizon; the final marking is then held for
	// the remaining time (absorbing state).
	Deadlocked bool
	// FinalMarking is the marking at the end of the run.
	FinalMarking Marking
}

// PlaceAvgByName returns the average token count of the named place.
func (r *SimResult) PlaceAvgByName(n *Net, name string) float64 {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	return r.PlaceAvg[id]
}

// Simulate executes the net once and returns time-averaged statistics.
//
// It compiles the net first; callers running many simulations of the same
// net (replications, sweeps) should Compile once and use
// Compiled.Simulate to amortize the compilation.
func Simulate(n *Net, opt SimOptions) (*SimResult, error) {
	return SimulateContext(context.Background(), n, opt)
}

// SimulateContext is Simulate with cooperative cancellation: the engine
// polls the context every few hundred events and aborts the run
// mid-simulation with ctx.Err() when it is cancelled.
func SimulateContext(ctx context.Context, n *Net, opt SimOptions) (*SimResult, error) {
	c, err := Compile(n)
	if err != nil {
		return nil, err
	}
	return c.SimulateContext(ctx, opt)
}

// Simulate executes the compiled net once and returns time-averaged
// statistics. It is safe to call concurrently from many goroutines.
func (c *Compiled) Simulate(opt SimOptions) (*SimResult, error) {
	return c.SimulateContext(context.Background(), opt)
}

// SimulateContext is Compiled.Simulate with cooperative cancellation; see
// the package-level SimulateContext.
func (c *Compiled) SimulateContext(ctx context.Context, opt SimOptions) (*SimResult, error) {
	if opt.Warmup < 0 {
		return nil, fmt.Errorf("petri: SimOptions.Warmup must be non-negative, got %v", opt.Warmup)
	}
	e, err := c.acquireEngine(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer c.releaseEngine(e)
	return e.run()
}

// engine is the single-run execution state of a compiled net. Every event
// costs work proportional to what it changes: the fired transition's arcs,
// the transitions adjacent to the touched places, and the heap reshuffles —
// never the size of the whole net. The steady-state loop performs no heap
// allocations; all scratch buffers are preallocated in newEngine, and the
// whole engine is recycled between runs through the compiled net's pool
// (acquireEngine resets it in place instead of reallocating).
type engine struct {
	comp *Compiled
	net  *Net
	opt  SimOptions
	rng  xrand.Rand

	// ctx is polled every cancelCheckStride events by fireTimed; nil
	// disables polling. ctxCountdown counts events down to the next poll.
	ctx          context.Context
	ctxCountdown int

	marking Marking
	now     float64

	// fireAt[t] is the absolute scheduled firing time of timed transition
	// t, or +Inf when not scheduled (disabled).
	fireAt []float64
	// remain[t] stores the interrupted remaining delay under RaceAge;
	// -1 means no stored age.
	remain []float64
	// degree[t] is the enabling degree the current schedule of a
	// multi-server transition was sampled at; a change forces a
	// (memoryless) resample.
	degree []int

	// heap is a 4-ary min-heap over the scheduled timed transitions,
	// ordered by (fireAt, id) — the id tie-break reproduces the
	// lowest-index-first determinism of a linear scan and makes the
	// minimum unique, so the pop order is independent of the heap's
	// internal arrangement (and of its arity). Nodes cache the firing time
	// inline, so sifting compares sequential node memory instead of
	// chasing fireAt through a second array. heapPos[t] is t's index in
	// heap, -1 while unscheduled.
	//
	// Nets with at most linearSchedulerMax timed transitions skip the heap
	// entirely (linear=true): heapPos degrades to a 0/-1 scheduled flag,
	// nSched counts the scheduled timers, and nextTimed scans fireAt
	// directly. The scan visits c.timed in ascending id with a strict
	// less-than, which is exactly the heap's (fireAt, id) order, so the
	// two schedulers pop identical event sequences.
	heap    []timerNode
	heapPos []int32
	linear  bool
	nSched  int

	// unsat[t] counts the unsatisfied enabling conditions of unguarded
	// single-server transition t (inputs below weight, inhibitors at or
	// above weight, capacity bounds exceeded); zero means enabled. It is
	// maintained incrementally by the compiled threshold conditions as
	// token counts cross arc weights. Guarded transitions are outside the
	// scheme: guardEnabled caches their last full evaluation.
	unsat        []int32
	guardEnabled []bool
	// groupLive[g] counts the enabled members of immediate-priority group
	// g, kept in lockstep with unsat/guardEnabled; liveGroups counts the
	// groups with at least one enabled member, so "is the marking
	// tangible?" is a single compare.
	groupLive  []int32
	liveGroups int

	// bndBroken is set by Session.Inject: injected tokens escape the
	// reachability set the compiler's capacity/P-invariant bounds cover,
	// so fused chains flagged boundsDep stop applying (chainOK). The
	// injection-proof chains keep running — their facts are re-verified at
	// fire time or by runtime preconditions.
	bndBroken bool

	// dirty accumulates the places the current event's firings changed and
	// candTimed the timed transitions whose enabling flipped. Both may
	// hold duplicates — the statistics sweep skips places whose count
	// matches the accumulator's held value, and a second syncOne on an
	// already-reconciled transition is a no-op — so the hot loop appends
	// without dedup bookkeeping.
	dirty     []int32
	candTimed []int32
	// immScratch is the reusable conflict-set buffer.
	immScratch []int32
	// curTimed is the timed transition whose firing started the current
	// event (-1 during startup), excluded from flip collection because the
	// timer sync re-checks it unconditionally.
	curTimed int32

	// Inline per-place time-weighted accumulators, replicating
	// stats.TimeWeighted's lazy-integration arithmetic operation for
	// operation so the reported averages are bit-identical to the scalar
	// engine's: integral += lastV * (now - lastT) exactly when the value
	// changes.
	measuring    bool
	raceAge      bool
	measureStart float64
	pstats       []placeStat
	firings      []uint64
}

// placeStat holds one place's token-count and non-empty accumulators in a
// single cache-friendly record.
type placeStat struct {
	tokInt, tokT, tokV    float64
	busyInt, busyT, busyV float64
}

// timerNode is one scheduler-heap entry: a scheduled timed transition with
// its absolute firing time cached inline (the authoritative copy stays in
// engine.fireAt).
type timerNode struct {
	at float64
	id int32
}

// cancelCheckStride is how many timed-event firings pass between context
// polls: frequent enough that cancellation lands promptly in wall-clock
// terms, rare enough that the poll is invisible in event-loop profiles.
const cancelCheckStride = 512

// linearSchedulerMax is the largest timed-transition count for which the
// engine replaces the scheduler heap with a direct fireAt scan. At this
// size the scan is one or two cache lines, cheaper than maintaining heap
// order on every schedule/unschedule; past it the heap's O(log n) wins.
const linearSchedulerMax = 16

// acquireEngine validates the options and returns a run-ready engine for
// the compiled net: a recycled one from the pool when available, a freshly
// allocated one otherwise. Callers must return it with releaseEngine once
// the run's results have been copied out.
func (c *Compiled) acquireEngine(ctx context.Context, opt SimOptions) (*engine, error) {
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("petri: duration must be positive, got %v", opt.Duration)
	}
	if opt.MaxVanishingChain == 0 {
		opt.MaxVanishingChain = 100000
	}
	if e, ok := c.enginePool.Get().(*engine); ok {
		e.reset(ctx, opt)
		return e, nil
	}
	return newEngine(c, ctx, opt), nil
}

// releaseEngine returns an engine to its compiled net's pool. The engine's
// scratch state may be reused by any later acquireEngine, so results must
// not alias engine-owned slices (run copies them out). The context is
// dropped eagerly: an idle pooled engine must not pin a finished run's
// request-scoped values or cancel chain.
func (c *Compiled) releaseEngine(e *engine) {
	e.ctx = nil
	c.enginePool.Put(e)
}

// newEngine allocates the scratch state of an engine over a compiled net
// and resets it for a first run. Options must be pre-validated
// (acquireEngine is the only caller besides tests).
func newEngine(c *Compiled, ctx context.Context, opt SimOptions) *engine {
	n := c.net
	nT := len(n.Transitions)
	nP := len(n.Places)
	maxGroup := 0
	for _, g := range c.groups {
		if len(g.members) > maxGroup {
			maxGroup = len(g.members)
		}
	}
	e := &engine{
		comp:         c,
		net:          n,
		marking:      make(Marking, nP),
		fireAt:       make([]float64, nT),
		remain:       make([]float64, nT),
		degree:       make([]int, nT),
		heap:         make([]timerNode, 0, len(c.timed)),
		heapPos:      make([]int32, nT),
		unsat:        make([]int32, nT),
		guardEnabled: make([]bool, nT),
		groupLive:    make([]int32, len(c.groups)),
		dirty:        make([]int32, 0, 4*nP),
		candTimed:    make([]int32, 0, 4*len(c.timed)),
		immScratch:   make([]int32, 0, maxGroup),
		pstats:       make([]placeStat, nP),
		firings:      make([]uint64, nT),
		linear:       len(c.timed) <= linearSchedulerMax,
	}
	e.reset(ctx, opt)
	return e
}

// reset rewinds an engine to the exact state newEngine produces for the
// given options, without allocating: the initial marking is copied back in,
// timers, counters, accumulators and the scheduler heap are cleared, and
// the embedded RNG is reseeded in place. A pooled engine that went through
// reset is bit-for-bit indistinguishable from a freshly allocated one — the
// equivalence suite in equiv_test.go pins this.
func (e *engine) reset(ctx context.Context, opt SimOptions) {
	if opt.MaxVanishingChain == 0 {
		opt.MaxVanishingChain = 100000
	}
	e.opt = opt
	e.ctx = ctx
	e.ctxCountdown = cancelCheckStride
	e.rng.SeedStream(opt.Seed, 0)
	e.now = 0
	for i, p := range e.net.Places {
		e.marking[i] = p.Initial
	}
	for i := range e.fireAt {
		e.fireAt[i] = math.Inf(1)
		e.remain[i] = -1
		e.degree[i] = 0
		e.heapPos[i] = -1
		e.unsat[i] = 0
		e.guardEnabled[i] = false
		e.firings[i] = 0
	}
	e.heap = e.heap[:0]
	e.nSched = 0
	for i := range e.groupLive {
		e.groupLive[i] = 0
	}
	e.liveGroups = 0
	e.bndBroken = false
	e.dirty = e.dirty[:0]
	e.candTimed = e.candTimed[:0]
	e.curTimed = -1
	e.measuring = false
	e.raceAge = opt.Memory == RaceAge
	e.measureStart = 0
	for i := range e.pstats {
		e.pstats[i] = placeStat{}
	}
}

// start resolves immediates enabled in the initial marking and schedules
// the initial timers, leaving the engine at a tangible marking at time 0.
func (e *engine) start() error {
	c := e.comp
	// Seed the unsatisfied-condition counters from the initial marking;
	// the compiled conditions are the single source of truth for which
	// (place, threshold) pairs matter.
	for p := range e.marking {
		v := e.marking[p]
		for _, cd := range c.conds[c.condOff[p]:c.condOff[p+1]] {
			if cd.unsatisfied(v) {
				e.unsat[cd.transition()]++
			}
		}
	}
	// Seed the guarded caches and the per-group enabled counts.
	for gi := range c.groups {
		for _, t := range c.groups[gi].members {
			var en bool
			if c.guarded[t] {
				en = c.enabled(e.marking, t)
				e.guardEnabled[t] = en
			} else {
				en = e.unsat[t] == 0
			}
			if en {
				e.groupLive[gi]++
			}
		}
	}
	for _, n := range e.groupLive {
		if n > 0 {
			e.liveGroups++
		}
	}
	if err := e.resolveImmediates(0); err != nil {
		return err
	}
	// The initial timer sync visits every timed transition in id order —
	// one full pass, exactly like the first syncTimers of the scalar
	// engine, so the RNG draw order is preserved. Flip candidates
	// collected during the initial vanishing chain are subsumed by it.
	for _, t := range e.comp.timed {
		e.syncOne(t)
	}
	e.candTimed = e.candTimed[:0]
	e.clearDirty()
	return nil
}

func (e *engine) run() (*SimResult, error) {
	n := e.net
	horizon := e.opt.Warmup + e.opt.Duration
	if err := e.start(); err != nil {
		return nil, err
	}
	if e.opt.Warmup == 0 {
		e.beginMeasurement()
	}

	deadlocked := false
	for {
		t, id := e.nextTimed()
		if id < 0 {
			deadlocked = true
			break
		}
		if t > horizon {
			break
		}
		// Crossing the warmup boundary starts measurement at exactly the
		// warmup time with the pre-event marking.
		if !e.measuring && t >= e.opt.Warmup {
			e.now = e.opt.Warmup
			e.beginMeasurement()
		}
		e.advanceTo(t)
		if err := e.fireTimed(int32(id)); err != nil {
			return nil, err
		}
	}
	if !e.measuring {
		// Deadlock during warmup: measure the absorbing marking from the
		// warmup boundary onward.
		e.now = e.opt.Warmup
		e.beginMeasurement()
	}
	e.advanceTo(horizon)

	res := &SimResult{
		Time:          e.opt.Duration,
		PlaceAvg:      make([]float64, len(n.Places)),
		PlaceNonEmpty: make([]float64, len(n.Places)),
		// Copied, not aliased: the engine (and its firings buffer) goes
		// back to the pool when this run's caller releases it.
		Firings:      append([]uint64(nil), e.firings...),
		Throughput:   make([]float64, len(n.Transitions)),
		Deadlocked:   deadlocked,
		FinalMarking: e.marking.Clone(),
	}
	for i := range n.Places {
		st := &e.pstats[i]
		res.PlaceAvg[i] = e.timeAvg(st.tokInt, st.tokT, st.tokV, horizon)
		res.PlaceNonEmpty[i] = e.timeAvg(st.busyInt, st.busyT, st.busyV, horizon)
	}
	for i := range n.Transitions {
		res.Throughput[i] = float64(e.firings[i]) / e.opt.Duration
	}
	return res, nil
}

func (e *engine) beginMeasurement() {
	e.measuring = true
	e.measureStart = e.now
	for i, v := range e.marking {
		e.pstats[i] = placeStat{
			tokT: e.now, tokV: float64(v),
			busyT: e.now, busyV: boolTo01(v > 0),
		}
	}
	// Reset firing counters: only measured-period firings count.
	for i := range e.firings {
		e.firings[i] = 0
	}
}

// timeAvg finalizes one accumulator at the horizon, mirroring
// stats.TimeWeighted.MeanAt (integrate the held value to the horizon,
// divide by the measured span).
func (e *engine) timeAvg(integral, lastT, lastV, h float64) float64 {
	if h > lastT {
		integral += lastV * (h - lastT)
	}
	return integral / (h - e.measureStart)
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// advanceTo moves the clock to t.
func (e *engine) advanceTo(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("petri: clock moved backwards %v -> %v", e.now, t))
	}
	e.now = t
}

// clearDirty resets the touched-place set after a timer sync.
func (e *engine) clearDirty() {
	e.dirty = e.dirty[:0]
}

// fireAndUpdate fires transition t (which must be enabled) by applying its
// compiled net deltas — including the deltas of any vanishing chain fused
// into t's program, so a whole deterministic immediate sequence lands as
// one combined marking change — and propagates each place change through
// that place's threshold conditions: unsatisfied-condition counters move by
// one exactly when the count crosses an arc weight, immediate enabled
// counts (groupLive) track counter flips, and single-server timed
// transitions whose enabling flipped are collected as candidates for the
// end-of-chain timer sync. Self-loops have no net delta and cost nothing;
// nothing here scans a transition's arcs to re-derive enabling.
func (e *engine) fireAndUpdate(t int32) {
	c := e.comp
	e.applyProg(c.progs[c.progOff[t]:c.progOff[t+1]])
}

// applyProg interprets one firing program against the marking and the
// incremental enabling state. It is the shared body of the main (fused) and
// solo program paths.
func (e *engine) applyProg(prog []uint64) {
	c := e.comp
	marking := e.marking
	unsat := e.unsat
	for i := 0; i < len(prog); {
		h := prog[i]
		i++
		p := int32(h & 0x7fffffff)
		end := i + int(uint16(h>>32))
		v0 := marking[p]
		v1 := v0 + int(int16(uint16(h>>48)))
		marking[p] = v1
		e.dirty = append(e.dirty, p)
		for ; i < end; i++ {
			cd := cond(prog[i])
			// Satisfaction flips exactly when (count < thresh) changes,
			// whichever form the condition has.
			thresh := cd.thresh()
			l1 := v1 < thresh
			if (v0 < thresh) == l1 {
				continue
			}
			tt := cd.transition()
			if l1 != cd.geq() { // became unsatisfied
				if unsat[tt] == 0 { // enabled -> disabled flip
					e.noteFlip(tt, cd.timed(), false)
				}
				unsat[tt]++
			} else {
				unsat[tt]--
				if unsat[tt] == 0 { // disabled -> enabled flip
					e.noteFlip(tt, cd.timed(), true)
				}
			}
		}
	}
	// Guards may read any place: re-evaluate guarded immediates after any
	// marking change. (The list is empty for guard-free nets.)
	if len(c.guardedImms) > 0 && len(prog) > 0 {
		for _, i := range c.guardedImms {
			en := c.enabled(marking, i)
			if en != e.guardEnabled[i] {
				e.guardEnabled[i] = en
				e.bumpGroup(c.groupOf[i], en)
			}
		}
	}
}

// chainOK reports whether t's fused chain (and terminal conflict draw)
// applies at the current marking: the chain's compile-time bounds must
// still be valid (boundsDep vs bndBroken) and every runtime precondition
// must hold against the pre-firing marking. Callers must check BEFORE
// applying any program of t.
func (e *engine) chainOK(t int32) bool {
	c := e.comp
	if c.boundsDep[t] && e.bndBroken {
		return false
	}
	for _, pc := range c.preconds[c.precondOff[t]:c.precondOff[t+1]] {
		if !pc.holds(e.marking[pc.place()]) {
			return false
		}
	}
	return true
}

// fireImm fires immediate transition chosen — with its fused chain when the
// chain's preconditions hold, bare otherwise — charging the zero-time
// firings against the livelock bound. It returns the updated step count.
func (e *engine) fireImm(chosen int32, steps int) (int, error) {
	c := e.comp
	fused := int(c.fusedOff[chosen+1] - c.fusedOff[chosen])
	prog := c.progs[c.progOff[chosen]:c.progOff[chosen+1]]
	if fused != 0 && !e.chainOK(chosen) {
		fused = 0
		prog = c.soloProg(chosen)
	}
	if steps+1+fused > e.opt.MaxVanishingChain {
		// The chain fused into this firing would cross the livelock
		// bound mid-block, exactly where the unfused engine errors.
		return steps, fmt.Errorf("petri: immediate-transition livelock after %d zero-time firings (marking %v)", e.opt.MaxVanishingChain, e.marking)
	}
	e.applyProg(prog)
	steps += 1 + fused
	if e.measuring {
		e.firings[chosen]++
		if fused != 0 {
			e.countFusedFirings(chosen)
		}
	}
	return steps, nil
}

// noteFlip reacts to an enabling flip of an unguarded single-server
// transition: immediates adjust their priority group's enabled count,
// timed transitions become candidates for the end-of-chain timer sync.
// Flips of the timed transition that started the current event are
// dropped: syncDirtyTimers always re-checks it explicitly.
func (e *engine) noteFlip(t int32, timed, enabled bool) {
	if timed {
		if t != e.curTimed {
			e.candTimed = append(e.candTimed, t)
		}
		return
	}
	e.bumpGroup(e.comp.groupOf[t], enabled)
}

// bumpGroup adjusts a priority group's enabled-member count and the count
// of live groups.
func (e *engine) bumpGroup(g int32, enabled bool) {
	if enabled {
		if e.groupLive[g] == 0 {
			e.liveGroups++
		}
		e.groupLive[g]++
	} else {
		e.groupLive[g]--
		if e.groupLive[g] == 0 {
			e.liveGroups--
		}
	}
}

// nextTimed returns the earliest scheduled timed transition, breaking time
// ties by transition index (deterministic). id is -1 when nothing is
// scheduled.
func (e *engine) nextTimed() (float64, int) {
	if e.linear {
		if e.nSched == 0 {
			return math.Inf(1), -1
		}
		// Ascending-id scan with strict less-than: the first occurrence of
		// the minimum wins, matching the heap's (fireAt, id) order.
		// Unscheduled timers sit at +Inf and never win the comparison.
		best := math.Inf(1)
		id := -1
		for _, t := range e.comp.timed {
			if at := e.fireAt[t]; at < best {
				best, id = at, int(t)
			}
		}
		if id < 0 {
			// Every scheduled timer is at +Inf (a degenerate sampler):
			// surface the lowest-id scheduled one, as the heap would.
			for _, t := range e.comp.timed {
				if e.heapPos[t] >= 0 {
					return best, int(t)
				}
			}
		}
		return best, id
	}
	if len(e.heap) == 0 {
		return math.Inf(1), -1
	}
	n := e.heap[0]
	return n.at, int(n.id)
}

// nothingScheduled reports whether no timed transition is scheduled — the
// deadlock test, valid under either scheduler.
func (e *engine) nothingScheduled() bool {
	if e.linear {
		return e.nSched == 0
	}
	return len(e.heap) == 0
}

// fireTimed fires the scheduled timed transition, resolves the resulting
// vanishing markings and re-synchronizes the timers adjacent to the touched
// places. It is the per-event body of every execution mode (steady state,
// transient, batch means), so the cooperative cancellation poll lives here:
// every cancelCheckStride events the run's context is checked, and a
// cancelled context aborts the simulation mid-run with ctx.Err().
func (e *engine) fireTimed(t int32) error {
	if e.ctx != nil {
		if e.ctxCountdown--; e.ctxCountdown <= 0 {
			e.ctxCountdown = cancelCheckStride
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
	}
	e.curTimed = t
	e.unschedule(t)
	e.fireAt[t] = math.Inf(1)
	e.remain[t] = -1
	enabled := e.unsat[t] == 0
	if e.comp.special[t] {
		enabled = e.comp.enabled(e.marking, t)
	}
	if !enabled {
		return fmt.Errorf("petri: internal error: scheduled transition %q not enabled at fire time", e.net.Transitions[t].Name)
	}
	c := e.comp
	fused := int(c.fusedOff[t+1] - c.fusedOff[t])
	if (fused != 0 || c.conflictGroup[t] >= 0) && !e.chainOK(t) {
		// A runtime precondition failed (or injection broke the bounds):
		// fire the bare transition and let the resolver take over.
		e.applyProg(c.soloProg(t))
		if e.measuring {
			e.firings[t]++
		}
		if err := e.resolveImmediates(0); err != nil {
			return err
		}
	} else {
		if fused > e.opt.MaxVanishingChain {
			// The scalar engine would hit the livelock bound partway through
			// this chain; the fused program cannot stop midway, so refuse to
			// apply it at all — error presence matches the unfused semantics.
			return fmt.Errorf("petri: immediate-transition livelock after %d zero-time firings (marking %v)", e.opt.MaxVanishingChain, e.marking)
		}
		e.fireAndUpdate(t)
		if e.measuring {
			e.firings[t]++
			if fused != 0 {
				e.countFusedFirings(t)
			}
		}
		steps := fused
		if gi := c.conflictGroup[t]; gi >= 0 {
			// The chain's terminal is a proven fully-live priority level:
			// replay the resolver's weighted draw from the compile-time
			// tables — the total and the member order match its arithmetic
			// bit for bit — then fire the winner.
			if steps >= e.opt.MaxVanishingChain {
				return fmt.Errorf("petri: immediate-transition livelock after %d zero-time firings (marking %v)", steps, e.marking)
			}
			members := c.groups[gi].members
			weights := c.confWeights[c.confOff[gi]:c.confOff[gi+1]]
			u := e.rng.Float64() * c.confTotal[gi]
			chosen := members[len(members)-1]
			for k, id := range members {
				u -= weights[k]
				if u < 0 {
					chosen = id
					break
				}
			}
			var err error
			if steps, err = e.fireImm(chosen, steps); err != nil {
				return err
			}
		}
		if err := e.resolveImmediates(steps); err != nil {
			return err
		}
	}
	e.recordMarking()
	e.syncDirtyTimers(t)
	e.clearDirty()
	return nil
}

// recordMarking pushes the changed places' token counts into the
// accumulators at the current time. Untouched places cannot have changed,
// touched places that returned to their pre-event count are skipped by the
// preVal comparison, and TimeWeighted.Set defers integration across
// unchanged values — so restricting the sweep to the genuinely changed
// places yields bit-identical averages to a full rescan.
func (e *engine) recordMarking() {
	if !e.measuring {
		return
	}
	now := e.now
	marking := e.marking
	pstats := e.pstats
	for _, p := range e.dirty {
		st := &pstats[p]
		fv := float64(marking[p])
		// The accumulator holds the value since its last change — the
		// pre-event value — so this one comparison filters both places
		// whose count ended up unchanged and duplicate dirty entries.
		if fv == st.tokV {
			continue
		}
		st.tokInt += st.tokV * (now - st.tokT)
		st.tokT, st.tokV = now, fv
		b := boolTo01(fv > 0)
		if b != st.busyV {
			st.busyInt += st.busyV * (now - st.busyT)
			st.busyT, st.busyV = now, b
		}
	}
}

// resolveImmediates fires enabled immediate transitions (highest priority
// first, weighted random choice within a priority level) until the marking
// is tangible. The chain happens in zero simulated time. The enabled set
// is maintained incrementally (unsat counters, guardEnabled, and the
// groupLive/liveGroups tallies), so each step costs the priority-group
// scan plus the re-checks adjacent to the fired transition — and no
// allocation.
//
// steps counts the zero-time firings already charged to this vanishing
// chain: the immediates fused into the triggering firing's program. Each
// resolver firing then advances it by one plus its own fused-chain length,
// so the MaxVanishingChain livelock bound counts every individual immediate
// firing, fused or not, exactly like the unfused engine.
func (e *engine) resolveImmediates(steps int) error {
	maxSteps := e.opt.MaxVanishingChain
	for e.liveGroups > 0 {
		gi := 0
		for e.groupLive[gi] == 0 {
			gi++
		}
		if steps >= maxSteps {
			return fmt.Errorf("petri: immediate-transition livelock after %d zero-time firings (marking %v)", steps, e.marking)
		}
		group := &e.comp.groups[gi]
		var chosen int32
		if len(group.members) == 1 {
			// Singleton priority level: the live count says its only
			// member is enabled; no conflict, no draw.
			chosen = group.members[0]
		} else if int(e.groupLive[gi]) == len(group.members) {
			// Every member is live: skip the subset scan and draw from the
			// precomputed tables. The compile-time total was summed in
			// member order — the same order the scan would add live
			// weights — so the draw arithmetic is bit-identical.
			weights := e.comp.confWeights[e.comp.confOff[gi]:e.comp.confOff[gi+1]]
			u := e.rng.Float64() * e.comp.confTotal[gi]
			chosen = group.members[len(group.members)-1]
			for k, id := range group.members {
				u -= weights[k]
				if u < 0 {
					chosen = id
					break
				}
			}
		} else {
			ids := e.immScratch[:0]
			for _, t := range group.members {
				var en bool
				if e.comp.guarded[t] {
					en = e.guardEnabled[t]
				} else {
					en = e.unsat[t] == 0
				}
				if en {
					ids = append(ids, t)
				}
			}
			if len(ids) == 0 {
				panic("petri: internal error: live priority group has no enabled members")
			}
			chosen = ids[0]
			if len(ids) > 1 {
				total := 0.0
				for _, id := range ids {
					total += e.net.Transitions[id].Weight
				}
				u := e.rng.Float64() * total
				chosen = ids[len(ids)-1]
				for _, id := range ids {
					u -= e.net.Transitions[id].Weight
					if u < 0 {
						chosen = id
						break
					}
				}
			}
		}
		var err error
		if steps, err = e.fireImm(chosen, steps); err != nil {
			return err
		}
	}
	return nil
}

// countFusedFirings credits the measured-period firing counters of the
// immediate transitions fused into t's program. Callers handle t's own
// counter inline and only divert here when the chain is non-empty.
func (e *engine) countFusedFirings(t int32) {
	c := e.comp
	for _, f := range c.fusedChain[c.fusedOff[t]:c.fusedOff[t+1]] {
		e.firings[f]++
	}
}

// syncDirtyTimers reconciles the timed transitions whose schedule may need
// to change with the current marking, in ascending id order — the same
// order a full syncTimers scan would visit them, so delay samples are
// drawn from the RNG identically. The candidate set is: single-server
// transitions whose enabling flipped during the firing chain (collected by
// fireAndUpdate), the guarded/multi-server specials (re-derived every
// event, exactly like the scalar engine's full scan), and the fired
// transition itself (it must be rescheduled if still enabled, even when it
// has no arcs). A negative fired means the marking changed without a
// firing (Session.Inject): only flips and specials are reconciled.
//
// A single-server timed transition whose enabling never flipped kept both
// its enabling status and (trivially) its degree, and after every sync
// enabled ⇔ scheduled holds, so skipping it can neither miss a state
// change nor a resample.
func (e *engine) syncDirtyTimers(fired int32) {
	cand := append(e.candTimed, e.comp.specialTimed...)
	if fired >= 0 {
		cand = append(cand, fired)
	}
	// Insertion sort: the candidate set is tiny (flips, specials, fired).
	// Duplicates are harmless — the first syncOne reconciles the
	// transition and a repeat visit hits a no-op case.
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && cand[j] < cand[j-1]; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	for _, t := range cand {
		e.syncOne(t)
	}
	e.candTimed = cand[:0]
}

// syncOne applies the memory-policy schedule reconciliation to one timed
// transition — the per-transition body of the scalar engine's syncTimers.
// Multi-server exponential transitions resample whenever their enabling
// degree changes, which is statistically exact by memorylessness.
func (e *engine) syncOne(t int32) {
	deg := 1
	var enabled, multi bool
	if !e.comp.special[t] {
		enabled = e.unsat[t] == 0
	} else if multi = e.comp.multi[t]; multi {
		deg = e.comp.enablingDegree(e.marking, t)
		enabled = deg > 0
	} else {
		enabled = e.comp.enabled(e.marking, t)
	}
	scheduled := e.heapPos[t] >= 0
	switch {
	case enabled && !scheduled:
		e.fireAt[t] = e.now + e.sampleDelay(t, deg)
		e.degree[t] = deg
		e.schedule(t)
	case enabled && scheduled && multi && deg != e.degree[t]:
		e.fireAt[t] = e.now + e.sampleDelay(t, deg)
		e.degree[t] = deg
		e.reschedule(t)
	case !enabled && scheduled:
		if e.raceAge && !multi {
			e.remain[t] = e.fireAt[t] - e.now
		}
		e.fireAt[t] = math.Inf(1)
		e.unschedule(t)
	}
}

// sampleDelay draws the firing delay of transition t at the given enabling
// degree, honoring race-age resumption for single-server transitions. The
// compiled sampler kinds cover every shipped distribution; each evaluates
// the exact expression (and draws the exact xrand sequence) the
// distribution's Sample method would, so devirtualizing the dispatch cannot
// change a trajectory. Only distributions outside the shipped set — or with
// constructor-bypassing parameters — pay the interface call, which also
// guards against invalid samples.
func (e *engine) sampleDelay(t int32, deg int) float64 {
	c := e.comp
	if e.raceAge && e.remain[t] >= 0 && !c.multi[t] {
		d := e.remain[t]
		e.remain[t] = -1
		return d
	}
	var delay float64
	switch c.delayKind[t] {
	case delayKindExp:
		delay = e.rng.ExpFloat64() / c.delayParam[t]
	case delayKindDet:
		delay = c.delayParam[t]
	case delayKindUniform:
		delay = c.delayParam[t] + c.delayParam2[t]*e.rng.Float64()
	case delayKindErlang:
		if c.delayParam2[t] == 1 {
			// Mirrors dist.Erlang.Sample's single-phase shortcut exactly.
			delay = e.rng.ExpFloat64() / c.delayParam[t]
			break
		}
		prod := 1.0
		for i := 0; i < int(c.delayParam2[t]); i++ {
			prod *= e.rng.Float64Open()
		}
		delay = -math.Log(prod) / c.delayParam[t]
	case delayKindWeibull:
		delay = c.delayParam[t] * math.Pow(e.rng.ExpFloat64(), c.delayParam2[t])
	case delayKindHyperExp:
		// A direct call on the concrete mixture value — static dispatch,
		// no interface, and by construction the same draw sequence.
		delay = c.hypers[int(c.delayParam[t])].Sample(&e.rng)
	default:
		tr := &e.net.Transitions[t]
		delay = tr.Delay.Sample(&e.rng)
		if delay < 0 || math.IsNaN(delay) {
			panic(fmt.Sprintf("petri: transition %q sampled invalid delay %v", tr.Name, delay))
		}
	}
	if deg > 1 {
		// Exponential with rate scaled by the degree: dividing a rate-r
		// sample by deg yields a rate-(r*deg) sample.
		delay /= float64(deg)
	}
	return delay
}

// ---------------------------------------------------------------------------
// Scheduled-transition 4-ary min-heap
//
// A 4-ary layout halves the tree height of a binary heap, trading a wider
// per-level child scan (up to four sequential timerNode compares, one cache
// line) for fewer levels. Only the (fireAt, id) pop order is observable,
// and the id tie-break makes the minimum unique, so neither the arity nor
// the hole-based sifting can change simulation results.

// heapNodeLess orders heap nodes by (fireAt, id).
func heapNodeLess(a, b timerNode) bool {
	return a.at < b.at || (a.at == b.at && a.id < b.id)
}

// siftUp moves the node at i toward the root until its parent is no larger,
// shifting displaced parents down into the hole; it reports whether the
// node moved (so fix-ups know to try sifting down instead).
func (e *engine) siftUp(i int) bool {
	h := e.heap
	n := h[i]
	moved := false
	for i > 0 {
		parent := (i - 1) >> 2
		if !heapNodeLess(n, h[parent]) {
			break
		}
		h[i] = h[parent]
		e.heapPos[h[i].id] = int32(i)
		i = parent
		moved = true
	}
	if moved {
		h[i] = n
		e.heapPos[n.id] = int32(i)
	}
	return moved
}

func (e *engine) siftDown(i int) {
	h := e.heap
	size := len(h)
	n := h[i]
	for {
		first := 4*i + 1
		if first >= size {
			break
		}
		end := first + 4
		if end > size {
			end = size
		}
		smallest := first
		for c := first + 1; c < end; c++ {
			if heapNodeLess(h[c], h[smallest]) {
				smallest = c
			}
		}
		if !heapNodeLess(h[smallest], n) {
			break
		}
		h[i] = h[smallest]
		e.heapPos[h[i].id] = int32(i)
		i = smallest
	}
	h[i] = n
	e.heapPos[n.id] = int32(i)
}

// schedule inserts unscheduled transition t into the scheduler at its
// current fireAt. In linear mode the fireAt array is the schedule; only the
// scheduled flag and count need maintaining.
func (e *engine) schedule(t int32) {
	if e.linear {
		e.heapPos[t] = 0
		e.nSched++
		return
	}
	i := len(e.heap)
	e.heap = append(e.heap, timerNode{at: e.fireAt[t], id: t})
	e.heapPos[t] = int32(i)
	e.siftUp(i)
}

// reschedule restores scheduler order after t's fireAt changed.
func (e *engine) reschedule(t int32) {
	if e.linear {
		return
	}
	i := int(e.heapPos[t])
	e.heap[i].at = e.fireAt[t]
	if !e.siftUp(i) {
		e.siftDown(i)
	}
}

// unschedule removes t from the scheduler if present.
func (e *engine) unschedule(t int32) {
	i := int(e.heapPos[t])
	if i < 0 {
		return
	}
	e.heapPos[t] = -1
	if e.linear {
		e.nSched--
		return
	}
	last := len(e.heap) - 1
	if i != last {
		moved := e.heap[last]
		e.heap[i] = moved
		e.heapPos[moved.id] = int32(i)
		e.heap = e.heap[:last]
		if !e.siftUp(i) {
			e.siftDown(i)
		}
	} else {
		e.heap = e.heap[:last]
	}
}

// ---------------------------------------------------------------------------
// Replications

// ReplicatedResult aggregates independent replications of a simulation.
type ReplicatedResult struct {
	Replications int
	// PlaceAvg[i] summarizes the per-replication time-averaged token
	// count of place i.
	PlaceAvg []stats.Summary
	// PlaceNonEmpty[i] summarizes the per-replication fraction of time
	// place i was non-empty.
	PlaceNonEmpty []stats.Summary
	// Throughput[i] summarizes per-replication firings per unit time.
	Throughput []stats.Summary
	// Deadlocks counts replications that deadlocked.
	Deadlocks int
}

// MeanTokens returns the across-replication mean token count of the named
// place with its 95% confidence half-width.
func (r *ReplicatedResult) MeanTokens(n *Net, name string) (mean, ci float64) {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	return r.PlaceAvg[id].Mean(), r.PlaceAvg[id].CI(0.95)
}

// SimulateReplications runs reps independent replications, deriving each
// replication's random stream from (opt.Seed, replication index). The net
// is compiled once and shared by all replications; see
// Compiled.SimulateReplications.
func SimulateReplications(n *Net, opt SimOptions, reps int) (*ReplicatedResult, error) {
	return SimulateReplicationsContext(context.Background(), n, opt, reps)
}

// SimulateReplicationsContext is SimulateReplications with cooperative
// cancellation: a cancelled context aborts every in-flight replication
// mid-simulation (not just between replications) and the call returns an
// error wrapping ctx.Err().
func SimulateReplicationsContext(ctx context.Context, n *Net, opt SimOptions, reps int) (*ReplicatedResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("petri: replications must be >= 1, got %d", reps)
	}
	c, err := Compile(n)
	if err != nil {
		return nil, err
	}
	return c.SimulateReplicationsContext(ctx, opt, reps)
}

// SimulateReplications runs reps independent replications of the compiled
// net. Replications execute in parallel across the available CPUs; because
// each replication's seed depends only on its index and results are folded
// in index order, the aggregate is bit-identical to a sequential run. The
// compiled net is never mutated by simulation, so sharing it between
// goroutines is safe as long as any guard functions are pure. Each worker
// draws its engine from the compiled net's pool, so a replication sweep
// allocates a bounded number of engines regardless of reps.
func (c *Compiled) SimulateReplications(opt SimOptions, reps int) (*ReplicatedResult, error) {
	return c.SimulateReplicationsContext(context.Background(), opt, reps)
}

// SimulateReplicationsContext is Compiled.SimulateReplications with
// cooperative cancellation; see the package-level variant.
func (c *Compiled) SimulateReplicationsContext(ctx context.Context, opt SimOptions, reps int) (*ReplicatedResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("petri: replications must be >= 1, got %d", reps)
	}
	n := c.net
	results := make([]*SimResult, reps)
	errs := make([]error, reps)
	xsync.ParallelFor(reps, func(rep int) {
		o := opt
		o.Seed = opt.Seed + uint64(rep)*0x9e3779b97f4a7c15
		results[rep], errs[rep] = c.SimulateContext(ctx, o)
	})
	out := &ReplicatedResult{
		Replications:  reps,
		PlaceAvg:      make([]stats.Summary, len(n.Places)),
		PlaceNonEmpty: make([]stats.Summary, len(n.Places)),
		Throughput:    make([]stats.Summary, len(n.Transitions)),
	}
	for rep := 0; rep < reps; rep++ {
		if errs[rep] != nil {
			return nil, fmt.Errorf("petri: replication %d: %w", rep, errs[rep])
		}
		res := results[rep]
		for i := range n.Places {
			out.PlaceAvg[i].Add(res.PlaceAvg[i])
			out.PlaceNonEmpty[i].Add(res.PlaceNonEmpty[i])
		}
		for i := range n.Transitions {
			out.Throughput[i].Add(res.Throughput[i])
		}
		if res.Deadlocked {
			out.Deadlocks++
		}
	}
	return out, nil
}
