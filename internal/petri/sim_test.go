package petri

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// mm1Net builds an open M/M/1 queue as a Petri net: a source transition
// Arrive (exp rate lambda) deposits tokens into Queue; Serve (exp rate mu)
// consumes them one at a time through a single-server structure.
func mm1Net(lambda, mu float64) *Net {
	n := NewNet("mm1")
	queue := n.AddPlace("Queue")
	server := n.AddPlaceInit("ServerIdle", 1)
	busy := n.AddPlace("ServerBusy")
	arrive := n.AddExponential("Arrive", lambda)
	n.Output(arrive, queue, 1)
	start := n.AddImmediate("Start", 1)
	n.Input(start, queue, 1)
	n.Input(start, server, 1)
	n.Output(start, busy, 1)
	serve := n.AddExponential("Serve", mu)
	n.Input(serve, busy, 1)
	n.Output(serve, server, 1)
	return n
}

func TestSimulateMM1Utilization(t *testing.T) {
	const lambda, mu = 1.0, 10.0 // rho = 0.1, the paper's operating point
	n := mm1Net(lambda, mu)
	res, err := Simulate(n, SimOptions{Seed: 1, Warmup: 100, Duration: 20000})
	if err != nil {
		t.Fatal(err)
	}
	busy := res.PlaceAvgByName(n, "ServerBusy")
	if math.Abs(busy-0.1) > 0.01 {
		t.Fatalf("M/M/1 utilization = %v, want ~0.1", busy)
	}
	// Mean number in system = rho/(1-rho) = 1/9; here Queue holds waiting
	// jobs and ServerBusy the one in service.
	l := res.PlaceAvgByName(n, "Queue") + busy
	if math.Abs(l-1.0/9.0) > 0.02 {
		t.Fatalf("M/M/1 mean jobs = %v, want ~%v", l, 1.0/9.0)
	}
}

func TestSimulateMM1Throughput(t *testing.T) {
	n := mm1Net(2, 5)
	res, err := Simulate(n, SimOptions{Seed: 2, Warmup: 100, Duration: 20000})
	if err != nil {
		t.Fatal(err)
	}
	arrID, _ := n.TransitionByName("Arrive")
	srvID, _ := n.TransitionByName("Serve")
	if math.Abs(res.Throughput[arrID]-2) > 0.1 {
		t.Fatalf("arrival throughput = %v, want ~2", res.Throughput[arrID])
	}
	// Flow balance: served rate equals arrival rate in steady state.
	if math.Abs(res.Throughput[srvID]-res.Throughput[arrID]) > 0.1 {
		t.Fatalf("service throughput %v != arrival throughput %v",
			res.Throughput[srvID], res.Throughput[arrID])
	}
}

func TestSimulateDeterministicCycle(t *testing.T) {
	// A token alternates: 1 time unit in A, 3 in B => averages 0.25/0.75.
	n := NewNet("cycle")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	ab := n.AddDeterministic("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	ba := n.AddDeterministic("BA", 3)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)
	res, err := Simulate(n, SimOptions{Seed: 3, Duration: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlaceAvg[a]-0.25) > 1e-9 {
		t.Fatalf("A average = %v, want exactly 0.25 (deterministic net)", res.PlaceAvg[a])
	}
	if math.Abs(res.PlaceAvg[b]-0.75) > 1e-9 {
		t.Fatalf("B average = %v, want exactly 0.75", res.PlaceAvg[b])
	}
}

func TestRaceEnableVsRaceAge(t *testing.T) {
	// Work (Det 5) is interrupted by an inhibitor token during [2, 4].
	// Race-enable restarts the delay at t=4 (fires at 9); race-age resumes
	// the remaining 3 units (fires at 7). Observing the Done place at
	// horizon 8 separates the two policies.
	build := func() *Net {
		n := NewNet("preempt")
		run := n.AddPlaceInit("Run", 1)
		done := n.AddPlace("Done")
		pause := n.AddPlace("Pause")
		aux := n.AddPlaceInit("Aux", 1)
		sink := n.AddPlace("Sink")
		work := n.AddDeterministic("Work", 5)
		n.Input(work, run, 1)
		n.Output(work, done, 1)
		n.Inhibitor(work, pause, 1)
		goT := n.AddDeterministic("Go", 2)
		n.Input(goT, aux, 1)
		n.Output(goT, pause, 1)
		back := n.AddDeterministic("Back", 2)
		n.Input(back, pause, 1)
		n.Output(back, sink, 1)
		return n
	}
	nEnable := build()
	resEnable, err := Simulate(nEnable, SimOptions{Seed: 1, Duration: 8, Memory: RaceEnable})
	if err != nil {
		t.Fatal(err)
	}
	if got := resEnable.FinalMarking[1]; got != 0 {
		t.Fatalf("race-enable: Done = %d at t=8, want 0 (restarted timer fires at 9)", got)
	}
	nAge := build()
	resAge, err := Simulate(nAge, SimOptions{Seed: 1, Duration: 8, Memory: RaceAge})
	if err != nil {
		t.Fatal(err)
	}
	if got := resAge.FinalMarking[1]; got != 1 {
		t.Fatalf("race-age: Done = %d at t=8, want 1 (resumed timer fires at 7)", got)
	}
}

func TestWarmupExcluded(t *testing.T) {
	// Token moves A -> B at t=1; with warmup 2 the measured period sees
	// only B occupied.
	n, a, b, _ := twoPlaceNet()
	res, err := Simulate(n, SimOptions{Seed: 1, Warmup: 2, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceAvg[a] != 0 || res.PlaceAvg[b] != 1 {
		t.Fatalf("warmup not excluded: A=%v B=%v", res.PlaceAvg[a], res.PlaceAvg[b])
	}
	// Firings during warmup must not count.
	trID, _ := n.TransitionByName("T")
	if res.Firings[trID] != 0 {
		t.Fatalf("warmup firing counted: %d", res.Firings[trID])
	}
}

func TestDeadlockAbsorbs(t *testing.T) {
	n, a, b, _ := twoPlaceNet()
	res, err := Simulate(n, SimOptions{Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("one-shot net should report deadlock")
	}
	if math.Abs(res.PlaceAvg[a]-0.1) > 1e-9 {
		t.Fatalf("A average = %v, want 0.1 (occupied 1 of 10 time units)", res.PlaceAvg[a])
	}
	if math.Abs(res.PlaceAvg[b]-0.9) > 1e-9 {
		t.Fatalf("B average = %v, want 0.9", res.PlaceAvg[b])
	}
}

func TestSimulateDeterminism(t *testing.T) {
	n1 := mm1Net(1, 3)
	n2 := mm1Net(1, 3)
	r1, err := Simulate(n1, SimOptions{Seed: 42, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(n2, SimOptions{Seed: 42, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.PlaceAvg {
		if r1.PlaceAvg[i] != r2.PlaceAvg[i] {
			t.Fatalf("same seed produced different place averages: %v vs %v", r1.PlaceAvg, r2.PlaceAvg)
		}
	}
	r3, err := Simulate(mm1Net(1, 3), SimOptions{Seed: 43, Duration: 500})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.PlaceAvg {
		if r1.PlaceAvg[i] != r3.PlaceAvg[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical results")
	}
}

func TestImmediateWeightsSplitFlow(t *testing.T) {
	// Tokens arrive at C and branch through immediates with weights 1:3.
	n := NewNet("branch")
	src := n.AddPlaceInit("Src", 1)
	c := n.AddPlace("C")
	b1 := n.AddPlace("B1")
	b2 := n.AddPlace("B2")
	arr := n.AddExponential("Arr", 10)
	n.Input(arr, src, 1)
	n.Output(arr, c, 1)
	n.Output(arr, src, 1)
	t1 := n.AddImmediate("T1", 1)
	n.Input(t1, c, 1)
	n.Output(t1, b1, 1)
	t2 := n.AddImmediate("T2", 1)
	n.SetWeight(t2, 3)
	n.Input(t2, c, 1)
	n.Output(t2, b2, 1)
	res, err := Simulate(n, SimOptions{Seed: 5, Duration: 5000})
	if err != nil {
		t.Fatal(err)
	}
	t1ID, _ := n.TransitionByName("T1")
	t2ID, _ := n.TransitionByName("T2")
	total := float64(res.Firings[t1ID] + res.Firings[t2ID])
	frac := float64(res.Firings[t2ID]) / total
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("weight-3 branch took %v of flow, want ~0.75", frac)
	}
}

func TestImmediatePriorityWinsConflict(t *testing.T) {
	// Two immediates compete for the same token; the higher priority one
	// must always win.
	n := NewNet("prio")
	src := n.AddPlaceInit("Src", 1)
	c := n.AddPlace("C")
	hi := n.AddPlace("Hi")
	lo := n.AddPlace("Lo")
	arr := n.AddExponential("Arr", 5)
	n.Input(arr, src, 1)
	n.Output(arr, c, 1)
	n.Output(arr, src, 1)
	thi := n.AddImmediate("THi", 9)
	n.Input(thi, c, 1)
	n.Output(thi, hi, 1)
	tlo := n.AddImmediate("TLo", 1)
	n.Input(tlo, c, 1)
	n.Output(tlo, lo, 1)
	res, err := Simulate(n, SimOptions{Seed: 6, Duration: 2000})
	if err != nil {
		t.Fatal(err)
	}
	tloID, _ := n.TransitionByName("TLo")
	if res.Firings[tloID] != 0 {
		t.Fatalf("low-priority transition fired %d times against higher priority", res.Firings[tloID])
	}
}

func TestImmediateLivelockDetected(t *testing.T) {
	n := NewNet("livelock")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	t1 := n.AddImmediate("T1", 1)
	n.Input(t1, a, 1)
	n.Output(t1, b, 1)
	t2 := n.AddImmediate("T2", 1)
	n.Input(t2, b, 1)
	n.Output(t2, a, 1)
	_, err := Simulate(n, SimOptions{Seed: 1, Duration: 10, MaxVanishingChain: 100})
	if err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Fatalf("want livelock error, got %v", err)
	}
}

func TestInitialVanishingResolved(t *testing.T) {
	// An immediate enabled at t=0 fires before statistics start.
	n := NewNet("init")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	t1 := n.AddImmediate("T1", 1)
	n.Input(t1, a, 1)
	n.Output(t1, b, 1)
	sink := n.AddPlace("Sink")
	slow := n.AddDeterministic("Slow", 100)
	n.Input(slow, b, 1)
	n.Output(slow, sink, 1)
	res, err := Simulate(n, SimOptions{Seed: 1, Duration: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceAvg[a] != 0 {
		t.Fatalf("A average = %v, want 0 (vanished at t=0)", res.PlaceAvg[a])
	}
	if res.PlaceAvg[b] != 1 {
		t.Fatalf("B average = %v, want 1", res.PlaceAvg[b])
	}
}

func TestPlaceNonEmptyFraction(t *testing.T) {
	// Token spends 1 of every 4 time units in A; A holds 1 token then, so
	// non-empty fraction equals the average.
	n := NewNet("cycle")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	ab := n.AddDeterministic("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	ba := n.AddDeterministic("BA", 3)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)
	res, err := Simulate(n, SimOptions{Seed: 1, Duration: 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PlaceNonEmpty[a]-0.25) > 1e-9 {
		t.Fatalf("A non-empty fraction = %v, want 0.25", res.PlaceNonEmpty[a])
	}
}

func TestSimOptionsValidation(t *testing.T) {
	n, _, _, _ := twoPlaceNet()
	if _, err := Simulate(n, SimOptions{Duration: 0}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Simulate(n, SimOptions{Duration: 1, Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestSimulateInvalidNet(t *testing.T) {
	n := NewNet("bad")
	n.AddPlace("A")
	if _, err := Simulate(n, SimOptions{Duration: 1}); err == nil {
		t.Fatal("invalid net accepted")
	}
}

func TestReplications(t *testing.T) {
	n := mm1Net(1, 5)
	rep, err := SimulateReplications(n, SimOptions{Seed: 7, Warmup: 50, Duration: 2000}, 20)
	if err != nil {
		t.Fatal(err)
	}
	mean, ci := rep.MeanTokens(n, "ServerBusy")
	if ci <= 0 {
		t.Fatal("replication CI should be positive")
	}
	if math.Abs(mean-0.2) > 3*ci+0.01 {
		t.Fatalf("utilization = %v ± %v, want ~0.2", mean, ci)
	}
	if rep.Replications != 20 {
		t.Fatalf("Replications = %d", rep.Replications)
	}
}

func TestReplicationsValidation(t *testing.T) {
	n := mm1Net(1, 5)
	if _, err := SimulateReplications(n, SimOptions{Duration: 1}, 0); err == nil {
		t.Fatal("zero replications accepted")
	}
}

// TestParallelReplicationsMatchSequential forces single-worker execution
// and checks the parallel fold produces bit-identical aggregates.
func TestParallelReplicationsMatchSequential(t *testing.T) {
	n := mm1Net(1, 5)
	opt := SimOptions{Seed: 7, Warmup: 20, Duration: 500}
	parallel, err := SimulateReplications(n, opt, 12)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(1)
	sequential, err := SimulateReplications(mm1Net(1, 5), opt, 12)
	runtime.GOMAXPROCS(old)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel.PlaceAvg {
		if parallel.PlaceAvg[i].Mean() != sequential.PlaceAvg[i].Mean() ||
			parallel.PlaceAvg[i].Var() != sequential.PlaceAvg[i].Var() {
			t.Fatalf("place %d: parallel and sequential aggregates differ", i)
		}
	}
}

func TestMemoryPolicyString(t *testing.T) {
	if RaceEnable.String() != "race-enable" || RaceAge.String() != "race-age" {
		t.Fatal("MemoryPolicy.String wrong")
	}
}

func BenchmarkSimulateMM1(b *testing.B) {
	n := mm1Net(1, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(n, SimOptions{Seed: uint64(i), Duration: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// poolStationsNet builds a net with 20 timed transitions — above
// linearSchedulerMax, so it compiles to the heap scheduler by default — in
// which ten arrival/service station pairs contend for a 3-token resource
// pool, churning the schedule with constant enable/disable flips.
func poolStationsNet() *Net {
	n := NewNet("pool-stations")
	pool := n.AddPlaceInit("Pool", 3)
	for i := 0; i < 10; i++ {
		queue := n.AddPlace(fmt.Sprintf("Queue%d", i))
		busy := n.AddPlace(fmt.Sprintf("Busy%d", i))
		arrive := n.AddExponential(fmt.Sprintf("Arrive%d", i), 1+0.1*float64(i))
		n.Output(arrive, queue, 1)
		start := n.AddImmediate(fmt.Sprintf("Start%d", i), 1)
		n.Input(start, queue, 1)
		n.Input(start, pool, 1)
		n.Output(start, busy, 1)
		serve := n.AddExponential(fmt.Sprintf("Serve%d", i), 2+0.2*float64(i))
		n.Input(serve, busy, 1)
		n.Output(serve, pool, 1)
	}
	return n
}

// TestLinearSchedulerMatchesHeap forces both scheduler implementations over
// the same compiled nets and seeds and requires bit-identical results: the
// linear fireAt scan and the 4-ary heap must pop the exact same (fireAt, id)
// sequence. Covered in both directions — a small net (linear by default)
// forced onto the heap, and a 20-timer net (heap by default) forced linear.
func TestLinearSchedulerMatchesHeap(t *testing.T) {
	nets := map[string]*Net{
		"mm1":   mm1Net(2, 5),
		"pool":  poolStationsNet(),
		"batch": batchAdmitNet(8),
	}
	for name, n := range nets {
		c, err := Compile(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for seed := uint64(1); seed <= 4; seed++ {
			opt := SimOptions{Seed: seed, Warmup: 5, Duration: 500}
			run := func(linear bool) *SimResult {
				e := newEngine(c, nil, opt)
				e.linear = linear
				res, err := e.run()
				if err != nil {
					t.Fatalf("%s seed %d linear=%v: %v", name, seed, linear, err)
				}
				return res
			}
			heap, lin := run(false), run(true)
			if !reflect.DeepEqual(heap, lin) {
				t.Errorf("%s seed %d: linear and heap schedulers diverge:\nheap   %+v\nlinear %+v", name, seed, heap, lin)
			}
		}
	}
}
