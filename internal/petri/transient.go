package petri

import (
	"context"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/xsync"
)

// TransientOptions configures transient (time-dependent) analysis by
// replicated simulation: the expected token count of every place is
// estimated on a regular time grid, TimeNet's "transient analysis" mode.
type TransientOptions struct {
	// Seed drives all sampling.
	Seed uint64
	// Horizon is the end of the observation window.
	Horizon float64
	// Step is the grid spacing; estimates are produced at 0, Step,
	// 2*Step, ..., Horizon.
	Step float64
	// Replications is the number of independent runs (default 100).
	Replications int
	// Memory selects the execution policy (default RaceEnable).
	Memory MemoryPolicy
	// MaxVanishingChain bounds zero-time firing chains (default 1e5).
	MaxVanishingChain int
}

// TransientResult holds per-grid-point expected token counts.
type TransientResult struct {
	// Times is the grid.
	Times []float64
	// PlaceMean[p][i] is the mean token count of place p at Times[i]
	// across replications.
	PlaceMean [][]float64
	// PlaceCI[p][i] is the 95% half-width of PlaceMean[p][i].
	PlaceCI [][]float64
	// Replications echoes the run count.
	Replications int
}

// MeanAt returns the estimated expected token count of the named place at
// the grid point nearest to t.
func (r *TransientResult) MeanAt(n *Net, name string, t float64) float64 {
	id, ok := n.PlaceByName(name)
	if !ok {
		panic(fmt.Sprintf("petri: no place named %q", name))
	}
	best, bestDist := 0, math.Inf(1)
	for i, gt := range r.Times {
		if d := math.Abs(gt - t); d < bestDist {
			best, bestDist = i, d
		}
	}
	return r.PlaceMean[id][best]
}

// SimulateTransient estimates E[tokens(p, t)] on a regular grid by running
// independent replications and sampling each trajectory at the grid
// points. Unlike Simulate, which time-averages one long run, this captures
// the transient approach to steady state from the initial marking. The net
// is compiled once and shared by all replications.
func SimulateTransient(n *Net, opt TransientOptions) (*TransientResult, error) {
	return SimulateTransientContext(context.Background(), n, opt)
}

// SimulateTransientContext is SimulateTransient with cooperative
// cancellation: a cancelled context aborts every in-flight trajectory
// mid-replication with an error wrapping ctx.Err().
func SimulateTransientContext(ctx context.Context, n *Net, opt TransientOptions) (*TransientResult, error) {
	c, err := Compile(n)
	if err != nil {
		return nil, err
	}
	return c.SimulateTransientContext(ctx, opt)
}

// SimulateTransient is transient analysis of a compiled net; see the
// package-level SimulateTransient.
func (c *Compiled) SimulateTransient(opt TransientOptions) (*TransientResult, error) {
	return c.SimulateTransientContext(context.Background(), opt)
}

// SimulateTransientContext is Compiled.SimulateTransient with cooperative
// cancellation; see the package-level variant.
func (c *Compiled) SimulateTransientContext(ctx context.Context, opt TransientOptions) (*TransientResult, error) {
	n := c.net
	if opt.Horizon <= 0 {
		return nil, fmt.Errorf("petri: TransientOptions.Horizon must be positive, got %v", opt.Horizon)
	}
	if opt.Step <= 0 || opt.Step > opt.Horizon {
		return nil, fmt.Errorf("petri: TransientOptions.Step must be in (0, horizon], got %v", opt.Step)
	}
	if opt.Replications == 0 {
		opt.Replications = 100
	}
	if opt.Replications < 1 {
		return nil, fmt.Errorf("petri: replications must be >= 1, got %d", opt.Replications)
	}
	nGrid := int(opt.Horizon/opt.Step) + 1
	acc := make([][]stats.Summary, len(n.Places))
	for p := range acc {
		acc[p] = make([]stats.Summary, nGrid)
	}
	// Sample trajectories in parallel, then fold them in index order so
	// the estimate is independent of scheduling.
	trajectories := make([][][]int, opt.Replications)
	errs := make([]error, opt.Replications)
	xsync.ParallelFor(opt.Replications, func(rep int) {
		trajectories[rep], errs[rep] = sampleTrajectory(ctx, c, SimOptions{
			Seed:              opt.Seed + uint64(rep)*0x9e3779b97f4a7c15,
			Duration:          opt.Horizon,
			Memory:            opt.Memory,
			MaxVanishingChain: opt.MaxVanishingChain,
		}, opt.Step, nGrid)
	})
	for rep := 0; rep < opt.Replications; rep++ {
		if errs[rep] != nil {
			return nil, fmt.Errorf("petri: transient replication %d: %w", rep, errs[rep])
		}
		samples := trajectories[rep]
		for p := range acc {
			for i := 0; i < nGrid; i++ {
				acc[p][i].Add(float64(samples[i][p]))
			}
		}
	}
	res := &TransientResult{
		Times:        make([]float64, nGrid),
		PlaceMean:    make([][]float64, len(n.Places)),
		PlaceCI:      make([][]float64, len(n.Places)),
		Replications: opt.Replications,
	}
	for i := 0; i < nGrid; i++ {
		res.Times[i] = float64(i) * opt.Step
	}
	for p := range acc {
		res.PlaceMean[p] = make([]float64, nGrid)
		res.PlaceCI[p] = make([]float64, nGrid)
		for i := 0; i < nGrid; i++ {
			res.PlaceMean[p][i] = acc[p][i].Mean()
			res.PlaceCI[p][i] = acc[p][i].CI(0.95)
		}
	}
	return res, nil
}

// sampleTrajectory runs one replication, recording the marking at each grid
// point with the right-continuous (cadlag) convention: a grid point that
// coincides exactly with an event time records the post-event marking; at
// t=0 the post-vanishing initial marking is used.
func sampleTrajectory(ctx context.Context, c *Compiled, opt SimOptions, step float64, nGrid int) ([][]int, error) {
	e, err := c.acquireEngine(ctx, opt)
	if err != nil {
		return nil, err
	}
	defer c.releaseEngine(e)
	if err := e.start(); err != nil {
		return nil, err
	}
	samples := make([][]int, nGrid)
	next := 0
	record := func(upTo float64) {
		for next < nGrid && float64(next)*step <= upTo {
			samples[next] = e.marking.Clone()
			next++
		}
	}
	record(0)
	for next < nGrid {
		t, id := e.nextTimed()
		if id < 0 {
			break // deadlock: marking persists
		}
		// Grid points strictly before the event keep the current marking.
		record(math.Nextafter(t, 0))
		if next >= nGrid {
			break
		}
		e.advanceTo(t)
		if err := e.fireTimed(int32(id)); err != nil {
			return nil, err
		}
	}
	// Fill any remaining points with the final (absorbing) marking.
	for next < nGrid {
		samples[next] = e.marking.Clone()
		next++
	}
	return samples, nil
}
