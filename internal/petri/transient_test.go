package petri

import (
	"math"
	"testing"

	"repro/internal/markov"
)

func TestTransientTwoStateMatchesUniformization(t *testing.T) {
	// Net: A <-> B with rates 1.5 and 0.5; the probability of a token in
	// A at time t has the closed form of the two-state chain, which the
	// markov package's uniformization reproduces exactly. The transient
	// simulation must agree within its confidence intervals.
	n := NewNet("two-state")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	ab := n.AddExponential("AB", 1.5)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	ba := n.AddExponential("BA", 0.5)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)

	res, err := SimulateTransient(n, TransientOptions{
		Seed: 5, Horizon: 3, Step: 0.5, Replications: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}

	c := markov.NewCTMC()
	c.AddRate("A", "B", 1.5)
	c.AddRate("B", "A", 0.5)
	for i, tt := range res.Times {
		pi, err := c.Transient([]float64{1, 0}, tt, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		got := res.PlaceMean[a][i]
		tol := 3*res.PlaceCI[a][i] + 0.01
		if math.Abs(got-pi[0]) > tol {
			t.Errorf("t=%v: P(A) simulated %v vs exact %v (tol %v)", tt, got, pi[0], tol)
		}
	}
	// t=0 must be exact.
	if res.PlaceMean[a][0] != 1 || res.PlaceMean[b][0] != 0 {
		t.Fatalf("t=0 distribution wrong: A=%v B=%v", res.PlaceMean[a][0], res.PlaceMean[b][0])
	}
}

func TestTransientDeterministicStep(t *testing.T) {
	// One token moves A -> B at exactly t=1 (deterministic): before 1 the
	// mean of B is 0, from 1 on it is 1, across every replication.
	n, a, b, _ := twoPlaceNet()
	res, err := SimulateTransient(n, TransientOptions{
		Seed: 1, Horizon: 2, Step: 0.25, Replications: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range res.Times {
		wantB := 0.0
		if tt >= 1 {
			wantB = 1
		}
		if res.PlaceMean[b][i] != wantB {
			t.Errorf("t=%v: E[B] = %v, want %v", tt, res.PlaceMean[b][i], wantB)
		}
		if res.PlaceMean[a][i] != 1-wantB {
			t.Errorf("t=%v: E[A] = %v, want %v", tt, res.PlaceMean[a][i], 1-wantB)
		}
		if res.PlaceCI[b][i] != 0 {
			t.Errorf("deterministic trajectory has CI %v", res.PlaceCI[b][i])
		}
	}
}

func TestTransientConvergesToStationary(t *testing.T) {
	n := mm1Net(1, 5)
	res, err := SimulateTransient(n, TransientOptions{
		Seed: 2, Horizon: 40, Step: 40, Replications: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	busyID, _ := n.PlaceByName("ServerBusy")
	last := len(res.Times) - 1
	if math.Abs(res.PlaceMean[busyID][last]-0.2) > 0.03 {
		t.Fatalf("transient at t=40: utilization %v, want ~0.2", res.PlaceMean[busyID][last])
	}
}

func TestTransientMeanAt(t *testing.T) {
	n, _, _, _ := twoPlaceNet()
	res, err := SimulateTransient(n, TransientOptions{Seed: 1, Horizon: 2, Step: 1, Replications: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanAt(n, "B", 1.9); got != 1 {
		t.Fatalf("MeanAt(B, 1.9) = %v, want 1 (nearest grid point 2)", got)
	}
	if got := res.MeanAt(n, "B", 0.2); got != 0 {
		t.Fatalf("MeanAt(B, 0.2) = %v, want 0", got)
	}
}

func TestTransientValidation(t *testing.T) {
	n, _, _, _ := twoPlaceNet()
	cases := []TransientOptions{
		{Horizon: 0, Step: 1},
		{Horizon: 1, Step: 0},
		{Horizon: 1, Step: 2},
		{Horizon: 1, Step: 0.5, Replications: -1},
	}
	for i, opt := range cases {
		if _, err := SimulateTransient(n, opt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTransientDeadlockAbsorbs(t *testing.T) {
	// After the single firing the net deadlocks; all later grid points
	// must report the absorbing marking.
	n, _, b, _ := twoPlaceNet()
	res, err := SimulateTransient(n, TransientOptions{Seed: 3, Horizon: 10, Step: 5, Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceMean[b][2] != 1 {
		t.Fatalf("absorbing marking not held: %v", res.PlaceMean[b])
	}
}

func TestBatchMeansMM1(t *testing.T) {
	n := mm1Net(1, 5)
	res, err := SimulateBatchMeans(n, BatchMeansOptions{
		Seed: 4, Warmup: 100, BatchLength: 500, Batches: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Batches != 40 {
		t.Fatalf("batches = %d, want 40", res.Batches)
	}
	mean, ci := res.Mean(n, "ServerBusy")
	if ci <= 0 {
		t.Fatal("batch-means CI should be positive")
	}
	if math.Abs(mean-0.2) > 3*ci+0.01 {
		t.Fatalf("utilization = %v ± %v, want ~0.2", mean, ci)
	}
}

func TestBatchMeansMatchesReplications(t *testing.T) {
	// Both steady-state estimators target the same quantity; their point
	// estimates must agree within joint noise.
	n := mm1Net(2, 5)
	bm, err := SimulateBatchMeans(n, BatchMeansOptions{Seed: 5, Warmup: 100, BatchLength: 400, Batches: 30})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SimulateReplications(n, SimOptions{Seed: 6, Warmup: 100, Duration: 2000}, 6)
	if err != nil {
		t.Fatal(err)
	}
	qID, _ := n.PlaceByName("Queue")
	bmMean, bmCI := bm.PlaceAvg[qID].Mean(), bm.PlaceAvg[qID].CI(0.95)
	repMean, repCI := rep.PlaceAvg[qID].Mean(), rep.PlaceAvg[qID].CI(0.95)
	if math.Abs(bmMean-repMean) > 3*(bmCI+repCI)+0.02 {
		t.Fatalf("batch means %v±%v vs replications %v±%v", bmMean, bmCI, repMean, repCI)
	}
}

func TestBatchMeansDeterministicExact(t *testing.T) {
	// The 1-on/3-off cycle gives every batch of length 4k the exact mean
	// 0.25, so the CI collapses to ~0.
	n := NewNet("cycle")
	a := n.AddPlaceInit("A", 1)
	b := n.AddPlace("B")
	ab := n.AddDeterministic("AB", 1)
	n.Input(ab, a, 1)
	n.Output(ab, b, 1)
	ba := n.AddDeterministic("BA", 3)
	n.Input(ba, b, 1)
	n.Output(ba, a, 1)
	res, err := SimulateBatchMeans(n, BatchMeansOptions{Seed: 1, BatchLength: 4, Batches: 10})
	if err != nil {
		t.Fatal(err)
	}
	mean, ci := res.Mean(n, "A")
	if math.Abs(mean-0.25) > 1e-9 || ci > 1e-9 {
		t.Fatalf("deterministic batch means: %v ± %v, want exactly 0.25 ± 0", mean, ci)
	}
}

func TestBatchMeansValidation(t *testing.T) {
	n := mm1Net(1, 5)
	cases := []BatchMeansOptions{
		{BatchLength: 0},
		{BatchLength: 1, Batches: 1},
		{BatchLength: 1, Warmup: -1},
	}
	for i, opt := range cases {
		if _, err := SimulateBatchMeans(n, opt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBatchMeansDeadlock(t *testing.T) {
	n, _, b, _ := twoPlaceNet()
	res, err := SimulateBatchMeans(n, BatchMeansOptions{Seed: 1, BatchLength: 2, Batches: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("deadlock not reported")
	}
	// After t=1 the token sits in B forever: batch 1 mean is 0.5, batches
	// 2..5 are 1.0.
	if res.Batches != 5 {
		t.Fatalf("batches = %d, want 5", res.Batches)
	}
	mean, _ := res.Mean(n, "B")
	if math.Abs(mean-(0.5+1+1+1+1)/5) > 1e-9 {
		t.Fatalf("B mean = %v, want 0.9", mean)
	}
	_ = b
}

func BenchmarkTransientMM1(b *testing.B) {
	n := mm1Net(1, 5)
	for i := 0; i < b.N; i++ {
		if _, err := SimulateTransient(n, TransientOptions{
			Seed: uint64(i), Horizon: 50, Step: 5, Replications: 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
