// Package queueing collects the closed-form queueing results used as
// validation anchors for the simulators and Petri-net models: M/M/1,
// M/M/1/K, M/M/c (Erlang C), M/G/1 (Pollaczek–Khinchine) and the M/M/1
// queue with server setup time, which is the exponential-wakeup analogue of
// the paper's CPU model.
package queueing

import (
	"fmt"
	"math"
)

// MM1 describes a stable M/M/1 queue.
type MM1 struct {
	Lambda, Mu float64
}

// Validate checks positivity and stability.
func (q MM1) Validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 {
		return fmt.Errorf("queueing: rates must be positive (lambda=%v, mu=%v)", q.Lambda, q.Mu)
	}
	if q.Lambda >= q.Mu {
		return fmt.Errorf("queueing: unstable queue, rho = %v", q.Lambda/q.Mu)
	}
	return nil
}

// Rho returns the utilization lambda/mu.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanJobs returns E[N] = rho/(1-rho).
func (q MM1) MeanJobs() float64 {
	r := q.Rho()
	return r / (1 - r)
}

// MeanLatency returns E[T] = 1/(mu-lambda).
func (q MM1) MeanLatency() float64 { return 1 / (q.Mu - q.Lambda) }

// MeanWait returns the mean waiting time E[W] = rho/(mu-lambda).
func (q MM1) MeanWait() float64 { return q.Rho() / (q.Mu - q.Lambda) }

// ProbN returns P(N = n) = (1-rho) rho^n.
func (q MM1) ProbN(n int) float64 {
	r := q.Rho()
	return (1 - r) * math.Pow(r, float64(n))
}

// ---------------------------------------------------------------------------

// MM1K describes an M/M/1/K queue (blocking after K jobs in system).
type MM1K struct {
	Lambda, Mu float64
	K          int
}

// Validate checks parameters.
func (q MM1K) Validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 {
		return fmt.Errorf("queueing: rates must be positive")
	}
	if q.K < 1 {
		return fmt.Errorf("queueing: K must be >= 1, got %d", q.K)
	}
	return nil
}

// ProbN returns P(N = n) for 0 <= n <= K.
func (q MM1K) ProbN(n int) float64 {
	if n < 0 || n > q.K {
		return 0
	}
	rho := q.Lambda / q.Mu
	if math.Abs(rho-1) < 1e-12 {
		return 1 / float64(q.K+1)
	}
	return (1 - rho) * math.Pow(rho, float64(n)) / (1 - math.Pow(rho, float64(q.K+1)))
}

// MeanJobs returns E[N].
func (q MM1K) MeanJobs() float64 {
	s := 0.0
	for n := 1; n <= q.K; n++ {
		s += float64(n) * q.ProbN(n)
	}
	return s
}

// BlockingProb returns P(N = K), the fraction of lost arrivals.
func (q MM1K) BlockingProb() float64 { return q.ProbN(q.K) }

// Throughput returns the accepted-arrival (= departure) rate.
func (q MM1K) Throughput() float64 { return q.Lambda * (1 - q.BlockingProb()) }

// ---------------------------------------------------------------------------

// MMc describes an M/M/c queue.
type MMc struct {
	Lambda, Mu float64
	C          int
}

// Validate checks positivity and stability.
func (q MMc) Validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 || q.C < 1 {
		return fmt.Errorf("queueing: invalid M/M/c parameters")
	}
	if q.Lambda >= float64(q.C)*q.Mu {
		return fmt.Errorf("queueing: unstable M/M/c, rho = %v", q.Lambda/(float64(q.C)*q.Mu))
	}
	return nil
}

// ErlangC returns the probability an arrival waits (all servers busy).
func (q MMc) ErlangC() float64 {
	c := float64(q.C)
	a := q.Lambda / q.Mu // offered load in Erlangs
	rho := a / c
	// Sum_{k<c} a^k/k! and the c-th term, computed iteratively.
	sum := 0.0
	term := 1.0 // a^0/0!
	for k := 0; k < q.C; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	// term is now a^c/c!.
	pc := term / (1 - rho)
	return pc / (sum + pc)
}

// MeanWait returns the mean waiting time in queue.
func (q MMc) MeanWait() float64 {
	c := float64(q.C)
	return q.ErlangC() / (c*q.Mu - q.Lambda)
}

// MeanJobs returns E[N] including jobs in service.
func (q MMc) MeanJobs() float64 {
	return q.Lambda*q.MeanWait() + q.Lambda/q.Mu
}

// ---------------------------------------------------------------------------

// MG1 describes an M/G/1 queue via the first two moments of service time.
type MG1 struct {
	Lambda float64
	// ES and ES2 are E[S] and E[S^2] of the service distribution.
	ES, ES2 float64
}

// Validate checks stability.
func (q MG1) Validate() error {
	if q.Lambda <= 0 || q.ES <= 0 || q.ES2 < q.ES*q.ES {
		return fmt.Errorf("queueing: invalid M/G/1 parameters")
	}
	if q.Lambda*q.ES >= 1 {
		return fmt.Errorf("queueing: unstable M/G/1, rho = %v", q.Lambda*q.ES)
	}
	return nil
}

// MeanWait returns the Pollaczek–Khinchine mean waiting time
// lambda E[S^2] / (2 (1 - rho)).
func (q MG1) MeanWait() float64 {
	rho := q.Lambda * q.ES
	return q.Lambda * q.ES2 / (2 * (1 - rho))
}

// MeanJobs returns E[N] by Little's law.
func (q MG1) MeanJobs() float64 {
	return q.Lambda * (q.MeanWait() + q.ES)
}

// ---------------------------------------------------------------------------

// MM1Setup is an M/M/1 queue whose server turns off when idle and requires
// an exponential setup time (rate Theta) when work arrives at an off
// server. This is the exponential-wakeup analogue of the paper's CPU model
// with T = 0, for which exact results are classical (Welch 1964; see also
// Gandhi et al. on server farms with setup costs).
type MM1Setup struct {
	Lambda, Mu, Theta float64
}

// Validate checks positivity and stability.
func (q MM1Setup) Validate() error {
	if q.Lambda <= 0 || q.Mu <= 0 || q.Theta <= 0 {
		return fmt.Errorf("queueing: rates must be positive")
	}
	if q.Lambda >= q.Mu {
		return fmt.Errorf("queueing: unstable queue")
	}
	return nil
}

// MeanJobs returns E[N] = rho/(1-rho) + lambda/theta: the M/M/1 value plus
// the extra backlog accumulated while the server sets up.
func (q MM1Setup) MeanJobs() float64 {
	rho := q.Lambda / q.Mu
	return rho/(1-rho) + q.Lambda/q.Theta
}

// MeanLatency returns E[T] = E[N]/lambda (Little's law): 1/(mu-lambda) + 1/theta.
func (q MM1Setup) MeanLatency() float64 { return q.MeanJobs() / q.Lambda }

// SetupProb returns the stationary probability the server is in setup:
// P(setup) = (1-rho) * (lambda/theta) / (1 + lambda/theta). Derived from
// the decomposition of the off/setup/busy/idle cycle with immediate
// power-down (T = 0): each idle period ends instantly, so the server is
// either off (waiting for an arrival), in setup, or busy.
func (q MM1Setup) SetupProb() float64 {
	rho := q.Lambda / q.Mu
	x := q.Lambda / q.Theta
	return (1 - rho) * x / (1 + x)
}

// OffProb returns the stationary probability the server is off.
func (q MM1Setup) OffProb() float64 {
	rho := q.Lambda / q.Mu
	x := q.Lambda / q.Theta
	return (1 - rho) / (1 + x)
}

// BusyProb returns the utilization, which work conservation pins at rho.
func (q MM1Setup) BusyProb() float64 { return q.Lambda / q.Mu }
