package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/markov"
)

func TestMM1KnownValues(t *testing.T) {
	q := MM1{Lambda: 1, Mu: 2} // rho = 0.5
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Rho() != 0.5 {
		t.Fatal("rho wrong")
	}
	if q.MeanJobs() != 1 {
		t.Fatalf("E[N] = %v, want 1", q.MeanJobs())
	}
	if q.MeanLatency() != 1 {
		t.Fatalf("E[T] = %v, want 1", q.MeanLatency())
	}
	if q.MeanWait() != 0.5 {
		t.Fatalf("E[W] = %v, want 0.5", q.MeanWait())
	}
	if math.Abs(q.ProbN(0)-0.5) > 1e-12 || math.Abs(q.ProbN(2)-0.125) > 1e-12 {
		t.Fatal("ProbN wrong")
	}
}

func TestMM1Validation(t *testing.T) {
	if err := (MM1{Lambda: 2, Mu: 1}).Validate(); err == nil {
		t.Fatal("unstable queue accepted")
	}
	if err := (MM1{Lambda: 0, Mu: 1}).Validate(); err == nil {
		t.Fatal("zero lambda accepted")
	}
}

func TestMM1LittleLawProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lambda := 0.1 + float64(a%100)/25
		mu := lambda + 0.1 + float64(b%100)/25
		q := MM1{Lambda: lambda, Mu: mu}
		return math.Abs(q.MeanJobs()-lambda*q.MeanLatency()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMM1ProbsSumToOne(t *testing.T) {
	q := MM1{Lambda: 3, Mu: 4}
	sum := 0.0
	for n := 0; n < 500; n++ {
		sum += q.ProbN(n)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestMM1KProbs(t *testing.T) {
	q := MM1K{Lambda: 2, Mu: 3, K: 10}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for n := 0; n <= q.K; n++ {
		sum += q.ProbN(n)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if q.ProbN(-1) != 0 || q.ProbN(11) != 0 {
		t.Fatal("out-of-range ProbN not zero")
	}
}

func TestMM1KRhoEqualOne(t *testing.T) {
	q := MM1K{Lambda: 1, Mu: 1, K: 4}
	for n := 0; n <= 4; n++ {
		if math.Abs(q.ProbN(n)-0.2) > 1e-12 {
			t.Fatalf("rho=1 ProbN(%d) = %v, want uniform 0.2", n, q.ProbN(n))
		}
	}
}

func TestMM1KThroughputBalance(t *testing.T) {
	q := MM1K{Lambda: 2, Mu: 3, K: 5}
	// Accepted arrivals equal departures: mu * P(N > 0).
	dep := q.Mu * (1 - q.ProbN(0))
	if math.Abs(q.Throughput()-dep) > 1e-12 {
		t.Fatalf("throughput %v != departures %v", q.Throughput(), dep)
	}
}

func TestMM1KApproachesMM1(t *testing.T) {
	unbounded := MM1{Lambda: 1, Mu: 2}
	bounded := MM1K{Lambda: 1, Mu: 2, K: 60}
	if math.Abs(bounded.MeanJobs()-unbounded.MeanJobs()) > 1e-9 {
		t.Fatalf("M/M/1/60 E[N]=%v vs M/M/1 %v", bounded.MeanJobs(), unbounded.MeanJobs())
	}
}

func TestMMcReducesToMM1(t *testing.T) {
	c1 := MMc{Lambda: 1, Mu: 2, C: 1}
	if err := c1.Validate(); err != nil {
		t.Fatal(err)
	}
	// Erlang C with one server equals rho.
	if math.Abs(c1.ErlangC()-0.5) > 1e-12 {
		t.Fatalf("ErlangC = %v, want rho = 0.5", c1.ErlangC())
	}
	ref := MM1{Lambda: 1, Mu: 2}
	if math.Abs(c1.MeanJobs()-ref.MeanJobs()) > 1e-12 {
		t.Fatalf("M/M/1 via M/M/c: %v vs %v", c1.MeanJobs(), ref.MeanJobs())
	}
}

func TestMMcKnownValue(t *testing.T) {
	// Classic table value: c=2, a=1 (rho=0.5): ErlangC = 1/3.
	q := MMc{Lambda: 2, Mu: 2, C: 2}
	if math.Abs(q.ErlangC()-1.0/3.0) > 1e-12 {
		t.Fatalf("ErlangC = %v, want 1/3", q.ErlangC())
	}
}

func TestMMcMoreServersLessWait(t *testing.T) {
	w2 := MMc{Lambda: 3, Mu: 2, C: 2}.MeanWait()
	w4 := MMc{Lambda: 3, Mu: 2, C: 4}.MeanWait()
	if w4 >= w2 {
		t.Fatalf("wait did not drop with servers: %v >= %v", w4, w2)
	}
}

func TestMG1ExponentialReducesToMM1(t *testing.T) {
	// Exponential service: E[S]=1/mu, E[S^2]=2/mu^2.
	const lambda, mu = 1.0, 2.0
	g := MG1{Lambda: lambda, ES: 1 / mu, ES2: 2 / (mu * mu)}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	ref := MM1{Lambda: lambda, Mu: mu}
	if math.Abs(g.MeanWait()-ref.MeanWait()) > 1e-12 {
		t.Fatalf("PK wait %v != M/M/1 wait %v", g.MeanWait(), ref.MeanWait())
	}
	if math.Abs(g.MeanJobs()-ref.MeanJobs()) > 1e-12 {
		t.Fatalf("PK jobs %v != M/M/1 jobs %v", g.MeanJobs(), ref.MeanJobs())
	}
}

func TestMG1DeterministicHalvesWait(t *testing.T) {
	// M/D/1 waits half as long as M/M/1 at equal rho.
	const lambda, mu = 1.0, 2.0
	md1 := MG1{Lambda: lambda, ES: 1 / mu, ES2: 1 / (mu * mu)} // Var = 0
	mm1 := MM1{Lambda: lambda, Mu: mu}
	if math.Abs(md1.MeanWait()-mm1.MeanWait()/2) > 1e-12 {
		t.Fatalf("M/D/1 wait = %v, want half of %v", md1.MeanWait(), mm1.MeanWait())
	}
}

func TestMM1SetupAgainstCTMC(t *testing.T) {
	// Numerically solve the setup queue as a CTMC (truncated) and compare
	// every closed form.
	const lambda, mu, theta = 1.0, 4.0, 2.0
	q := MM1Setup{Lambda: lambda, Mu: mu, Theta: theta}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	const cap = 120
	c := markov.NewCTMC()
	off := "off"
	setup := func(n int) string { return "s" + itoa(n) }
	busy := func(n int) string { return "b" + itoa(n) }
	c.AddRate(off, setup(1), lambda)
	for n := 1; n <= cap; n++ {
		if n < cap {
			c.AddRate(setup(n), setup(n+1), lambda)
			c.AddRate(busy(n), busy(n+1), lambda)
		}
		c.AddRate(setup(n), busy(n), theta)
		if n > 1 {
			c.AddRate(busy(n), busy(n-1), mu)
		} else {
			c.AddRate(busy(1), off, mu)
		}
	}
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	var pOff, pSetup, pBusy, meanJobs float64
	for i := 0; i < c.Len(); i++ {
		name := c.Name(i)
		switch name[0] {
		case 'o':
			pOff = pi[i]
		case 's':
			pSetup += pi[i]
			meanJobs += float64(atoi(name[1:])) * pi[i]
		case 'b':
			pBusy += pi[i]
			meanJobs += float64(atoi(name[1:])) * pi[i]
		}
	}
	if math.Abs(pOff-q.OffProb()) > 1e-6 {
		t.Fatalf("OffProb: closed form %v vs CTMC %v", q.OffProb(), pOff)
	}
	if math.Abs(pSetup-q.SetupProb()) > 1e-6 {
		t.Fatalf("SetupProb: closed form %v vs CTMC %v", q.SetupProb(), pSetup)
	}
	if math.Abs(pBusy-q.BusyProb()) > 1e-6 {
		t.Fatalf("BusyProb: closed form %v vs CTMC %v", q.BusyProb(), pBusy)
	}
	if math.Abs(meanJobs-q.MeanJobs()) > 1e-4 {
		t.Fatalf("MeanJobs: closed form %v vs CTMC %v", q.MeanJobs(), meanJobs)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func atoi(s string) int {
	n := 0
	for _, ch := range s {
		n = n*10 + int(ch-'0')
	}
	return n
}

func TestMM1SetupLittleLaw(t *testing.T) {
	q := MM1Setup{Lambda: 1, Mu: 3, Theta: 0.5}
	if math.Abs(q.MeanLatency()-q.MeanJobs()/q.Lambda) > 1e-15 {
		t.Fatal("Little's law identity broken")
	}
}

func TestValidationErrors(t *testing.T) {
	if err := (MM1K{Lambda: 1, Mu: 1, K: 0}).Validate(); err == nil {
		t.Fatal("K=0 accepted")
	}
	if err := (MMc{Lambda: 5, Mu: 1, C: 2}).Validate(); err == nil {
		t.Fatal("unstable M/M/c accepted")
	}
	if err := (MG1{Lambda: 1, ES: 2, ES2: 8}).Validate(); err == nil {
		t.Fatal("unstable M/G/1 accepted")
	}
	if err := (MG1{Lambda: 1, ES: 0.5, ES2: 0.1}).Validate(); err == nil {
		t.Fatal("impossible second moment accepted")
	}
	if err := (MM1Setup{Lambda: 1, Mu: 2, Theta: 0}).Validate(); err == nil {
		t.Fatal("zero theta accepted")
	}
}
