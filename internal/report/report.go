// Package report renders experiment results as aligned ASCII tables, CSV,
// Markdown and terminal line charts, so every table and figure of the paper
// can be regenerated directly from cmd/wsnenergy.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it panics on column-count mismatch to catch
// harness bugs early.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// ASCII renders the table with aligned columns and a rule under the header.
func (t *Table) ASCII() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quoting cells that need it).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders a GitHub-style table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// F formats a float with the given number of decimals, trimming wide
// exponents sensibly for table cells.
func F(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	if math.IsInf(v, 0) {
		return "Inf"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}

// ---------------------------------------------------------------------------
// Figures

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a titled collection of series, renderable as a terminal chart
// or CSV.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// AddSeries appends a series; x and y must have equal non-zero length.
func (f *Figure) AddSeries(name string, x, y []float64) {
	if len(x) != len(y) || len(x) == 0 {
		panic(fmt.Sprintf("report: series %q has %d x and %d y points", name, len(x), len(y)))
	}
	f.Series = append(f.Series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
}

// CSV emits one row per x value with a column per series. Series may have
// different x grids; missing combinations are left empty.
func (f *Figure) CSV() string {
	// Collect the union of x values in order of first appearance, sorted.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sortFloats(xs)
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			for i, sx := range s.X {
				if sx == x {
					fmt.Fprintf(&b, "%g", s.Y[i])
					break
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// markers assigns a distinct glyph per series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCIIChart renders the series on a width x height character grid with
// axis annotations and a legend — enough to eyeball the shape of Figures 4
// and 5 in a terminal.
func (f *Figure) ASCIIChart(width, height int) string {
	if len(f.Series) == 0 {
		return "(empty figure)\n"
	}
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	pad := len(yTop)
	if len(yBot) > pad {
		pad = len(yBot)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", pad)
		if r == 0 {
			label = fmt.Sprintf("%*s", pad, yTop)
		} else if r == height-1 {
			label = fmt.Sprintf("%*s", pad, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", pad), width-len(fmt.Sprintf("%.3g", maxX)), fmt.Sprintf("%.3g", minX), fmt.Sprintf("%.3g", maxX))
	if f.XLabel != "" || f.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", f.XLabel, f.YLabel)
	}
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
